// Live monitoring pipeline: exercises the paper's §8 extensions end to
// end. A Perfmon-like metrics table serves dashboard queries while new
// samples stream in (buffered in delta siblings), the workload drifts from
// "recent high load" dashboards to "historical memory audit" reports, a
// shift detector notices, and the index re-optimizes for the new workload.
//
//	go run ./examples/live-monitoring
package main

import (
	"fmt"
	"math/rand"
	"time"

	tsunami "repro"
)

func main() {
	const rows = 120_000
	ds := tsunami.GeneratePerfmon(rows, 1)

	dashboards := tsunami.GenerateWorkload(ds.Store, []tsunami.TypeSpec{
		{Name: "recent-high-load", Dims: []tsunami.DimSpec{
			{Dim: 0, Sel: 0.08, Jitter: 0.2, Skew: tsunami.SkewRecent}, // time
			{Dim: 4, Sel: 0.1, Jitter: 0.2, Skew: tsunami.SkewRecent},  // load1
		}},
		{Name: "recent-cpu", Dims: []tsunami.DimSpec{
			{Dim: 0, Sel: 0.1, Jitter: 0.2, Skew: tsunami.SkewRecent},
			{Dim: 2, Sel: 0.1, Jitter: 0.2, Skew: tsunami.SkewRecent}, // cpu_user
		}},
	}, 100, 2)

	idx := tsunami.New(ds.Store, dashboards, tsunami.Options{})
	det := tsunami.NewShiftDetector(ds.Store, dashboards, tsunami.ShiftConfig{WindowSize: 120})
	fmt.Printf("built index over %d rows; detector fingerprinted %d query types\n",
		rows, det.NumTypes())

	// Phase 1: normal operation — dashboard queries plus streaming inserts.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		if err := idx.Insert([]int64{
			525000 + rng.Int63n(600), // fresh timestamps
			rng.Int63n(1000),
			rng.Int63n(10000), rng.Int63n(5000),
			rng.Int63n(3000), rng.Int63n(3000),
			500 + rng.Int63n(9500),
		}); err != nil {
			panic(err)
		}
	}
	fmt.Printf("phase 1: %d samples buffered in delta siblings\n", idx.NumBuffered())
	// Serve a live mix of both dashboard types.
	for k := 0; k < 70; k++ {
		for _, q := range []tsunami.Query{dashboards[k], dashboards[100+k]} {
			idx.Execute(q)
			det.Observe(q)
		}
	}
	fmt.Printf("phase 1: dashboard latency %v, shift detected: %v\n",
		avg(idx, dashboards[:100]), det.Analyze().ShiftDetected)

	// Fold the buffered samples into the clustered layout.
	if err := idx.MergeDeltas(); err != nil {
		panic(err)
	}
	fmt.Printf("merged deltas: table now %d rows, buffer empty: %v\n",
		idx.Store().NumRows(), idx.NumBuffered() == 0)

	// Phase 2: the workload drifts to historical audits.
	audits := tsunami.GenerateWorkload(idx.Store(), []tsunami.TypeSpec{
		{Name: "memory-audit", Dims: []tsunami.DimSpec{
			{Dim: 6, Sel: 0.05, Jitter: 0.2, Skew: tsunami.SkewExtremes}, // mem
			{Dim: 0, Sel: 0.3, Jitter: 0.2, Skew: tsunami.SkewLow},       // old data
		}},
		{Name: "machine-history", Dims: []tsunami.DimSpec{
			{Dim: 1, Sel: 0.02, Jitter: 0.2, Skew: tsunami.SkewUniform}, // machine
			{Dim: 0, Sel: 0.5, Jitter: 0.2, Skew: tsunami.SkewLow},
		}},
	}, 100, 4)
	for _, q := range audits[:150] {
		det.Observe(q)
	}
	rep := det.Analyze()
	fmt.Printf("phase 2: audit latency on stale layout %v; detector: novel=%.0f%% drift=%.2f shift=%v\n",
		avg(idx, audits[:100]), 100*rep.NovelFrac, rep.FreqDrift, rep.ShiftDetected)

	// Phase 3: re-optimize for the drifted workload.
	if rep.ShiftDetected {
		reopt, secs := idx.Reoptimize(audits)
		fmt.Printf("phase 3: re-optimized in %.2fs; audit latency now %v\n",
			secs, avg(reopt, audits[:100]))
	}
}

func avg(idx tsunami.Index, qs []tsunami.Query) time.Duration {
	for _, q := range qs {
		idx.Execute(q)
	}
	start := time.Now()
	for _, q := range qs {
		idx.Execute(q)
	}
	return time.Since(start) / time.Duration(len(qs))
}

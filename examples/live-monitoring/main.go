// Live monitoring over the observability endpoint: a LiveStore serves a
// Perfmon-like metrics table through an Executor while writers stream
// fresh samples in, and everything — queue depth, per-query latency
// histograms, ingest/merge timings, epoch publishes — records into one
// metrics registry exposed over HTTP. A workload-statistics collector
// rides along on the same store, fingerprinting every served query into
// heavy-hitter, selectivity, and SLO statistics. The monitor below never
// touches Stats() or the store directly: like a real dashboard it polls
// the endpoint (/statsz for rendered quantiles, /workloadz for the
// workload profile, /metrics for the raw Prometheus exposition a scraper
// would ingest) and renders what it sees.
//
//	go run ./examples/live-monitoring
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	tsunami "repro"
)

// statsz mirrors the /statsz JSON document (the monitor deliberately
// decodes it off the wire instead of importing registry types — this is
// what a dashboard in another process would do).
type statsz struct {
	Counters map[string]uint64  `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
	Hists    map[string]struct {
		Count uint64  `json:"count"`
		Mean  float64 `json:"mean"`
		P50   float64 `json:"p50"`
		P99   float64 `json:"p99"`
	} `json:"histograms"`
}

// workloadz mirrors the parts of the /workloadz JSON document the monitor
// renders: heavy-hitter shapes and SLO compliance.
type workloadz struct {
	Queries      uint64 `json:"queries"`
	Sampled      uint64 `json:"sampled"`
	SampleEvery  int    `json:"sample_every"`
	Fingerprints []struct {
		Shape string  `json:"shape"`
		Share float64 `json:"share"`
		P99   float64 `json:"p99_seconds"`
	} `json:"fingerprints"`
	SLO []struct {
		Latency float64 `json:"latency_seconds"`
		Target  float64 `json:"target"`
		BadFrac float64 `json:"bad_frac"`
		Burn    float64 `json:"burn_rate"`
	} `json:"slo"`
}

func main() {
	const rows = 60_000
	ds := tsunami.GeneratePerfmon(rows, 1)
	work := tsunami.WorkloadFor(ds, 40, 2)
	idx := tsunami.New(ds.Store, work, tsunami.Options{OptimizerIters: 2, MaxOptQueries: 32})

	// One registry across the stack: the store records ingest and
	// maintenance, the executor records queue wait/depth, both feed the
	// shared query-path histograms. The workload collector fingerprints
	// every query the store serves (the store binds it at Open, so it
	// knows dimension names and domains for selectivity stats).
	m := tsunami.NewMetrics()
	wl := tsunami.NewWorkloadStats(tsunami.WorkloadOptions{})
	defer wl.Close()
	ls := tsunami.NewLiveStore(idx, work, tsunami.LiveOptions{Metrics: m, Workload: wl, MergeThreshold: 4096})
	defer ls.Close()
	ex := tsunami.NewExecutorSource(ls, tsunami.ExecutorOptions{Workers: 2, Metrics: m})
	defer ex.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go http.Serve(ln, tsunami.MetricsHandlerWith(m, wl))
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %s/metrics (Prometheus), /statsz + /workloadz (JSON), /debug/pprof/\n\n", base)

	// Load: one writer streams perturbed samples (forcing background
	// merges straight through the monitored window), one reader drives
	// dashboard batches through the executor pool.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(3))
		batch := make([][]int64, 32)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for k := range batch {
				batch[k] = []int64{
					525000 + rng.Int63n(600), rng.Int63n(1000),
					rng.Int63n(10000), rng.Int63n(5000),
					rng.Int63n(3000), rng.Int63n(3000),
					500 + rng.Int63n(9500),
				}
			}
			if err := ls.InsertBatch(batch); err != nil {
				panic(err)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				ex.ExecuteBatch(work)
			}
		}
	}()

	// The monitor: poll /statsz like a dashboard refresh loop.
	fmt.Printf("%-5s %10s %10s %10s %6s %11s %7s %6s\n",
		"tick", "queries", "qry p50", "qry p99", "queue", "ingest p99", "merges", "epoch")
	client := &http.Client{Timeout: 2 * time.Second}
	for tick := 1; tick <= 5; tick++ {
		time.Sleep(400 * time.Millisecond)
		resp, err := client.Get(base + "/statsz")
		if err != nil {
			panic(err)
		}
		var s statsz
		err = json.NewDecoder(resp.Body).Decode(&s)
		resp.Body.Close()
		if err != nil {
			panic(err)
		}
		lat := s.Hists["tsunami_query_latency_seconds"]
		fmt.Printf("%-5d %10d %10s %10s %6.0f %11s %7d %6.0f\n",
			tick, lat.Count,
			fmtSec(lat.P50), fmtSec(lat.P99),
			s.Gauges["tsunami_exec_queue_depth"],
			fmtSec(s.Hists["tsunami_live_ingest_latency_seconds"].P99),
			s.Counters["tsunami_live_merges_total"],
			s.Gauges["tsunami_live_epoch"])
	}
	close(stop)
	wg.Wait()

	// The workload profile, off the wire like everything else: which query
	// shapes dominated the run, and how the latency SLOs fared under it.
	resp0, err := client.Get(base + "/workloadz")
	if err != nil {
		panic(err)
	}
	var w workloadz
	err = json.NewDecoder(resp0.Body).Decode(&w)
	resp0.Body.Close()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n/workloadz: %d queries recorded (%d sampled 1-in-%d), top shapes:\n",
		w.Queries, w.Sampled, w.SampleEvery)
	for i, f := range w.Fingerprints {
		if i == 3 {
			break
		}
		fmt.Printf("  #%d %-40s %5.1f%%  p99 %s\n", i+1, f.Shape, f.Share*100, fmtSec(f.P99))
	}
	for _, o := range w.SLO {
		fmt.Printf("  slo <%s target %.2f%%: %.3f%% bad, burn %.2fx\n",
			fmtSec(o.Latency), o.Target*100, o.BadFrac*100, o.Burn)
	}

	// Show the raw exposition surface too: the lines a Prometheus scraper
	// would store for the merge/backlog families the dashboard rendered.
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		panic(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		panic(err)
	}
	fmt.Println("\nraw /metrics exposition (merge + buffered-rows families):")
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.Contains(line, "tsunami_live_merges") || strings.Contains(line, "tsunami_live_buffered_rows") {
			fmt.Println("  " + line)
		}
	}
}

func fmtSec(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(time.Microsecond).String()
}

// Concurrent serving: one shared Tsunami index, no clones, queried by a
// worker-pool Executor — batches fanned across workers, plus intra-query
// parallelism that splits a single query's Grid Tree regions across the
// pool.
//
//	go run ./examples/concurrent-serving
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	tsunami "repro"
)

func main() {
	// Build one index; it is immutable on the read path, so every worker
	// below executes against this same value.
	ds := tsunami.GenerateTaxi(300_000, 1)
	work := tsunami.WorkloadFor(ds, 100, 2)
	fmt.Printf("building Tsunami over %d rows...\n", ds.Rows())
	idx := tsunami.New(ds.Store, work, tsunami.Options{})

	// Sanity: batch answers must match sequential execution.
	ex := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{Workers: runtime.NumCPU()})
	defer ex.Close()
	batch := ex.ExecuteBatch(work[:20])
	for i, q := range work[:20] {
		if batch[i] != idx.Execute(q) {
			log.Fatalf("batch result diverged on %s", q)
		}
	}
	fmt.Printf("batch of %d queries matches sequential execution\n", len(batch))

	// Throughput at increasing pool sizes. On a multi-core machine the
	// queries/sec column scales with workers until memory bandwidth
	// saturates.
	fmt.Printf("\n%-8s  %s\n", "workers", "throughput (q/s)")
	for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		pool := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{Workers: workers})
		pool.ExecuteBatch(work) // warm-up
		start := time.Now()
		batches := 0
		for time.Since(start) < 300*time.Millisecond {
			pool.ExecuteBatch(work)
			batches++
		}
		qps := float64(batches*len(work)) / time.Since(start).Seconds()
		pool.Close()
		fmt.Printf("%-8d  %.0f\n", workers, qps)
	}

	// Intra-query parallelism: a single broad query routed to many regions
	// is split across the pool and the partial results merged.
	intra := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{
		Workers:    runtime.NumCPU(),
		IntraQuery: true,
	})
	defer intra.Close()
	broad := work[0]
	if intra.Execute(broad) != idx.Execute(broad) {
		log.Fatalf("intra-query result diverged on %s", broad)
	}
	fmt.Printf("\nintra-query execution over %d regions matches sequential\n",
		idx.RegionsVisited(broad))
}

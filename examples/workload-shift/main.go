// Workload shift: the paper's adaptability scenario (§6.4, Fig 9a). The
// query workload over a TPC-H-like table changes "at midnight"; the stale
// Tsunami layout degrades, a re-optimization is triggered, and performance
// recovers — all within seconds at this scale (the paper reports under 4
// minutes for 300M rows).
//
//	go run ./examples/workload-shift
package main

import (
	"fmt"
	"time"

	tsunami "repro"
)

func main() {
	const rows = 150_000
	ds := tsunami.GenerateTPCH(rows, 1)

	// Workload A: recent-shipment analytics. Workload B (after midnight):
	// price-band and quantity analytics over old data.
	workA := tsunami.GenerateWorkload(ds.Store, []tsunami.TypeSpec{
		{Name: "recent-shipments", Dims: []tsunami.DimSpec{
			{Dim: 5, Sel: 0.08, Jitter: 0.2, Skew: tsunami.SkewRecent}, // shipdate
			{Dim: 2, Sel: 0.3, Jitter: 0.2, Skew: tsunami.SkewRecent},  // discount
		}},
		{Name: "recent-receipts", Dims: []tsunami.DimSpec{
			{Dim: 7, Sel: 0.06, Jitter: 0.2, Skew: tsunami.SkewRecent}, // receiptdate
		}},
	}, 100, 2)
	workB := tsunami.GenerateWorkload(ds.Store, []tsunami.TypeSpec{
		{Name: "price-bands", Dims: []tsunami.DimSpec{
			{Dim: 1, Sel: 0.05, Jitter: 0.2, Skew: tsunami.SkewExtremes}, // extendedprice
			{Dim: 0, Sel: 0.2, Jitter: 0.2, Skew: tsunami.SkewLow},       // quantity
		}},
		{Name: "old-shipments", Dims: []tsunami.DimSpec{
			{Dim: 5, Sel: 0.07, Jitter: 0.2, Skew: tsunami.SkewLow}, // shipdate
		}},
	}, 100, 3)

	idx := tsunami.New(ds.Store, workA, tsunami.Options{})
	fmt.Printf("%-42s %s\n", "phase", "avg query latency")
	fmt.Printf("%-42s %v\n", "workload A, optimized for A", avg(idx, workA))
	fmt.Printf("%-42s %v\n", "midnight: workload B on stale layout", avg(idx, workB))

	reopt, secs := idx.Reoptimize(workB)
	fmt.Printf("%-42s %v\n", "workload B after re-optimization", avg(reopt, workB))
	fmt.Printf("\nre-optimization + data re-organization took %.2fs for %d rows\n", secs, rows)
}

func avg(idx tsunami.Index, qs []tsunami.Query) time.Duration {
	for _, q := range qs {
		idx.Execute(q) // warm up
	}
	start := time.Now()
	for _, q := range qs {
		idx.Execute(q)
	}
	return time.Since(start) / time.Duration(len(qs))
}

// Correlation explorer: shows how the Augmented Grid exploits data
// correlations (§5). Builds the same stock-prices table three ways — an
// independent grid (Flood-style), a grid with a functional mapping for the
// tightly correlated open/close pair, and full Tsunami — and compares how
// many points each scans for the same queries.
//
//	go run ./examples/correlation-explorer
package main

import (
	"fmt"

	tsunami "repro"
)

func main() {
	const rows = 150_000
	ds := tsunami.GenerateStocks(rows, 1)
	work := tsunami.WorkloadFor(ds, 100, 2)

	// Flood cannot express correlations: its grid partitions open and
	// close independently even though close ≈ open.
	flood := tsunami.NewFlood(ds.Store, work, tsunami.Options{})
	// Tsunami's optimizer discovers the correlated pairs itself.
	full := tsunami.New(ds.Store, work, tsunami.Options{})
	// The ablation keeps one Augmented Grid over the whole space, isolating
	// the correlation machinery from the Grid Tree (Fig 12a).
	agOnly := tsunami.NewAugGridOnly(ds.Store, work, tsunami.Options{})

	// "Which days saw stocks open and close in the same narrow band?" —
	// the filters land on tightly correlated dimensions.
	probes := []tsunami.Query{
		tsunami.Count(
			tsunami.Filter{Dim: 1, Lo: 1000, Hi: 2000}, // open 10.00-20.00
			tsunami.Filter{Dim: 2, Lo: 1000, Hi: 2000}, // close 10.00-20.00
		),
		tsunami.Count(
			tsunami.Filter{Dim: 3, Lo: 500, Hi: 1500},   // low
			tsunami.Filter{Dim: 4, Lo: 800, Hi: 1800},   // high
			tsunami.Filter{Dim: 0, Lo: 9000, Hi: 12000}, // date window
		),
		tsunami.Sum(5, // total volume traded
			tsunami.Filter{Dim: 2, Lo: 5000, Hi: 8000},
			tsunami.Filter{Dim: 1, Lo: 5000, Hi: 8000},
		),
	}

	fmt.Printf("%-14s %12s %12s %12s\n", "query", "Flood scan", "AugGrid scan", "Tsunami scan")
	for i, q := range probes {
		rf := flood.Execute(q)
		ra := agOnly.Execute(q)
		rt := full.Execute(q)
		if rf.Count != ra.Count || ra.Count != rt.Count {
			panic("indexes disagree — this is a bug")
		}
		fmt.Printf("probe %-8d %12d %12d %12d   (count=%d)\n",
			i+1, rf.PointsScanned, ra.PointsScanned, rt.PointsScanned, rt.Count)
	}

	s := full.IndexStats()
	fmt.Printf("\nTsunami discovered %.1f functional mappings and %.1f conditional CDFs per region\n",
		s.AvgFMsPerRegion, s.AvgCCDFsPerRegion)
	fmt.Printf("sizes: Flood=%dB, AugGrid-only=%dB, Tsunami=%dB\n",
		flood.SizeBytes(), agOnly.SizeBytes(), full.SizeBytes())
}

// Quickstart: build a Tsunami index over a small sales table and run a few
// multi-dimensional aggregation queries against it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	tsunami "repro"
)

func main() {
	// A sales fact table: day, store id, price (cents), quantity. Prices
	// are loosely correlated with quantity, and recent days are generated
	// more densely — the kind of data Tsunami is built for.
	const n = 200_000
	rng := rand.New(rand.NewSource(7))
	day := make([]int64, n)
	store := make([]int64, n)
	price := make([]int64, n)
	qty := make([]int64, n)
	for i := range day {
		day[i] = rng.Int63n(730) // two years
		store[i] = rng.Int63n(50)
		qty[i] = 1 + rng.Int63n(20)
		price[i] = qty[i]*199 + rng.Int63n(500) // correlated with quantity
	}
	table, err := tsunami.NewTable([][]int64{day, store, price, qty},
		[]string{"day", "store", "price", "qty"})
	if err != nil {
		log.Fatal(err)
	}

	// A sample workload: the optimizer tailors the index to it. Most
	// queries ask about the most recent month; a few sweep a price band
	// over all time.
	var workload []tsunami.Query
	for i := 0; i < 100; i++ {
		d0 := 700 + rng.Int63n(25)
		workload = append(workload, tsunami.Count(
			tsunami.Filter{Dim: 0, Lo: d0, Hi: d0 + 5},
			tsunami.Filter{Dim: 1, Lo: rng.Int63n(40), Hi: rng.Int63n(10) + 40},
		))
		p0 := rng.Int63n(3000)
		workload = append(workload, tsunami.Count(
			tsunami.Filter{Dim: 2, Lo: p0, Hi: p0 + 400},
		))
	}

	idx := tsunami.New(table, workload, tsunami.Options{})

	// COUNT: how many sales did stores 10-19 make in the last week?
	q1 := tsunami.Count(
		tsunami.Filter{Dim: 0, Lo: 723, Hi: 729},
		tsunami.Filter{Dim: 1, Lo: 10, Hi: 19},
	)
	r1 := idx.Execute(q1)
	fmt.Printf("sales by stores 10-19 in the last week: %d (scanned %d of %d rows)\n",
		r1.Count, r1.PointsScanned, n)

	// SUM: total revenue from large orders in a price band.
	q2 := tsunami.Sum(2,
		tsunami.Filter{Dim: 2, Lo: 2000, Hi: 2600},
		tsunami.Filter{Dim: 3, Lo: 10, Hi: 20},
	)
	r2 := idx.Execute(q2)
	fmt.Printf("revenue from large orders at 20.00-26.00: %d.%02d (count %d)\n",
		r2.Sum/100, r2.Sum%100, r2.Count)

	// The optimized structure (Tab 4 of the paper).
	s := idx.IndexStats()
	fmt.Printf("index: %d Grid Tree nodes (depth %d), %d regions, %d grid cells, %d bytes\n",
		s.NumGridTreeNodes, s.GridTreeDepth, s.NumLeafRegions, s.TotalGridCells, idx.SizeBytes())
}

// Live serving: the epoch-based read-write mode end to end. A taxi table
// serves dashboard queries from four reader goroutines while four writer
// goroutines stream fresh trips in. Reads never take a lock: each resolves
// the current immutable index through an atomic epoch handle. Inserts
// publish copy-on-write versions; a background maintainer folds them into
// fresh clustered copies once enough accumulate. Mid-run the query mix
// shifts to a pattern the index was never optimized for — the shift
// detector notices and re-optimizes the drifted regions, also in the
// background, also published by one atomic swap. Finally the store
// snapshots itself (including not-yet-merged rows) and recovers from the
// snapshot.
//
//	go run ./examples/live-serving
package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	tsunami "repro"
)

func main() {
	const rows = 80_000
	ds := tsunami.GenerateTaxi(rows, 1)

	// Dashboards the index is optimized for: recent trips by distance.
	dashboards := tsunami.GenerateWorkload(ds.Store, []tsunami.TypeSpec{
		{Name: "recent-by-distance", Dims: []tsunami.DimSpec{
			{Dim: 0, Sel: 0.1, Jitter: 0.2, Skew: tsunami.SkewRecent}, // pickup_time
			{Dim: 2, Sel: 0.15, Jitter: 0.2},                         // distance
		}},
	}, 120, 2)

	fmt.Printf("building Tsunami over %d taxi rows...\n", rows)
	idx := tsunami.New(ds.Store, dashboards, tsunami.Options{OptimizerIters: 2, MaxOptQueries: 48})

	var mergesSeen, reoptsSeen atomic.Uint64
	ls := tsunami.NewLiveStore(idx, dashboards, tsunami.LiveOptions{
		MergeThreshold: 1000,
		Shift:          tsunami.ShiftConfig{WindowSize: 96, MinObserved: 48},
		OnEvent: func(ev tsunami.LiveEvent) {
			switch ev.Kind {
			case tsunami.LiveEventMerge:
				mergesSeen.Add(1)
				fmt.Printf("  [maintenance] merged %d rows into a fresh clustered copy in %.2fs (epoch %d)\n",
					ev.MergedRows, ev.Seconds, ev.Epoch)
			case tsunami.LiveEventReoptimize:
				reoptsSeen.Add(1)
				fmt.Printf("  [maintenance] workload shift: re-optimized %d regions in %.2fs (epoch %d)\n",
					ev.RegionsRebuilt, ev.Seconds, ev.Epoch)
			case tsunami.LiveEventError:
				fmt.Printf("  [maintenance] error: %v\n", ev.Err)
			}
		},
	})
	defer ls.Close()

	// Phase 1 — steady state: 4 writers stream trips, 4 readers serve
	// dashboards, and background merges keep the delta buffers small.
	fmt.Println("\nphase 1: 4 writers streaming trips, 4 readers serving dashboards")
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(10 + w)))
			buf := make([]int64, ds.Store.NumDims())
			batch := make([][]int64, 8)
			for !stop.Load() {
				// Fresh trips: existing rows with bumped timestamps.
				for k := range batch {
					row := append([]int64(nil), ds.Store.Row(rng.Intn(rows), buf)...)
					row[0] += 1000
					batch[k] = row
				}
				if err := ls.InsertBatch(batch); err != nil {
					panic(err)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	var served atomic.Uint64
	shifted := tsunami.GenerateWorkload(ds.Store, []tsunami.TypeSpec{
		{Name: "audit-by-fare", Dims: []tsunami.DimSpec{
			{Dim: 3, Sel: 0.1, Jitter: 0.2}, // fare — never in the optimized workload
			{Dim: 6, Sel: 0.3, Jitter: 0.2}, // passengers
		}},
	}, 120, 3)
	var phase atomic.Int32 // 0: dashboards, 1: shifted audit queries
	for r := 0; r < 4; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := r; !stop.Load(); k++ {
				if phase.Load() == 0 {
					ls.Execute(dashboards[k%len(dashboards)])
				} else {
					ls.Execute(shifted[k%len(shifted)])
				}
				served.Add(1)
			}
		}()
	}

	waitFor := func(what string, done func() bool) {
		deadline := time.Now().Add(30 * time.Second)
		for !done() && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if !done() {
			fmt.Printf("  (gave up waiting for %s)\n", what)
		}
	}
	waitFor("a background merge", func() bool { return mergesSeen.Load() >= 1 })
	st := ls.Stats()
	fmt.Printf("  served %d queries so far; epoch %d, %d clustered + %d buffered rows\n",
		served.Load(), st.Epoch, st.ClusteredRows, st.BufferedRows)

	// Phase 2 — the workload shifts to fare/passenger audits the index was
	// never optimized for; the detector fires and the drifted regions are
	// re-optimized behind the readers.
	fmt.Println("\nphase 2: query mix shifts to fare/passenger audits")
	phase.Store(1)
	waitFor("shift-triggered re-optimization", func() bool { return reoptsSeen.Load() >= 1 })
	stop.Store(true)
	wg.Wait()

	st = ls.Stats()
	fmt.Printf("  final: epoch %d, %d queries, %d inserts, %d merges, %d reoptimizations\n",
		st.Epoch, st.Queries, st.Inserts, st.Merges, st.Reoptimizations)

	// Phase 3 — snapshot (buffered rows included) and recover.
	path := filepath.Join(os.TempDir(), "live-serving.idx")
	f, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	if err := ls.Snapshot(f); err != nil {
		panic(err)
	}
	f.Close()
	defer os.Remove(path)

	f, err = os.Open(path)
	if err != nil {
		panic(err)
	}
	recovered, err := tsunami.RecoverLiveStore(f, nil, tsunami.LiveOptions{})
	f.Close()
	if err != nil {
		panic(err)
	}
	defer recovered.Close()

	probe := dashboards[0]
	a, b := ls.Execute(probe), recovered.Execute(probe)
	fmt.Printf("\nphase 3: snapshot -> recover: count %d vs %d, buffered rows carried: %d\n",
		a.Count, b.Count, recovered.Stats().BufferedRows)
	if a.Count != b.Count {
		panic("recovered store diverges")
	}
	fmt.Println("done")
}

// Sharded serving: partitioned multi-shard mode end to end. A taxi table
// is split across 4 LiveStore shards by a learned range partitioning of
// pickup_time, so recency dashboards touch one or two shards instead of
// the whole table. Four writer goroutines stream fresh trips in parallel —
// each shard has its own copy-on-write ingest section, so writers to
// different shards never contend — while readers scatter-gather through
// an Executor: the router prunes shards whose key range cannot intersect
// the query, the survivors run on the worker pool, and the partial
// COUNT/SUM aggregates merge (AVG merges exactly as a sum+count pair).
// Each shard merges its own buffers in the background. Finally the store
// writes a consistent multi-shard snapshot (one manifest + per-shard
// files) and recovers from it.
//
//	go run ./examples/sharded-serving
package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	tsunami "repro"
)

func main() {
	const rows = 80_000
	ds := tsunami.GenerateTaxi(rows, 1)

	// Dashboards the shards optimize for: recent trips by distance.
	dashboards := tsunami.GenerateWorkload(ds.Store, []tsunami.TypeSpec{
		{Name: "recent-by-distance", Dims: []tsunami.DimSpec{
			{Dim: 0, Sel: 0.1, Jitter: 0.2, Skew: tsunami.SkewRecent}, // pickup_time
			{Dim: 2, Sel: 0.15, Jitter: 0.2},                         // distance
		}},
	}, 120, 2)

	fmt.Printf("building 4 Tsunami shards over %d taxi rows (learned range cuts on pickup_time)...\n", rows)
	var merges atomic.Uint64
	ss, err := tsunami.NewShardedStore(ds.Store, dashboards,
		tsunami.Options{OptimizerIters: 2, MaxOptQueries: 48},
		tsunami.ShardedOptions{
			Shards:  4,
			Learned: true, // range partitioning on dim 0
			Live:    tsunami.LiveOptions{MergeThreshold: 1000},
			OnEvent: func(ev tsunami.ShardedEvent) {
				switch ev.Kind {
				case tsunami.LiveEventMerge:
					merges.Add(1)
					fmt.Printf("  [shard %d] merged %d rows in %.2fs (epoch %d)\n",
						ev.Shard, ev.MergedRows, ev.Seconds, ev.Epoch)
				case tsunami.LiveEventError:
					fmt.Printf("  [shard %d] error: %v\n", ev.Shard, ev.Err)
				}
			},
		})
	if err != nil {
		panic(err)
	}
	defer ss.Close()

	// Phase 1 — routed reads: a narrow recency dashboard only visits the
	// shards owning the top of the pickup_time range.
	lo, hi := ds.Store.MinMax(0)
	recent := tsunami.Count(tsunami.Filter{Dim: 0, Lo: hi - (hi-lo)/10, Hi: hi})
	res := ss.Execute(recent)
	st := ss.Stats()
	fmt.Printf("\nphase 1: routed read — last-10%%-of-time dashboard matched %d trips, fan-out %.0f of %d shards\n",
		res.Count, float64(st.ShardsScanned)/float64(st.Queries), st.Shards)

	// Phase 2 — parallel ingest + scatter-gather serving: 4 writers
	// stream fresh trips whose timestamps land across the range cuts, and
	// 4 readers serve dashboards through an Executor with intra-query
	// scatter-gather enabled.
	fmt.Println("\nphase 2: 4 writers streaming, readers scatter-gathering through the Executor")
	ex := tsunami.NewExecutorSource(ss, tsunami.ExecutorOptions{Workers: 4, IntraQuery: true})
	defer ex.Close()

	var stop atomic.Bool
	var served atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(10 + w)))
			buf := make([]int64, ds.Store.NumDims())
			batch := make([][]int64, 8)
			for !stop.Load() {
				for k := range batch {
					row := append([]int64(nil), ds.Store.Row(rng.Intn(rows), buf)...)
					row[0] += rng.Int63n(100_000) // fresh-ish trips across shards
					batch[k] = row
				}
				if err := ss.InsertBatch(batch); err != nil {
					panic(err)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	for r := 0; r < 4; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := r; !stop.Load(); k++ {
				ex.Execute(dashboards[k%len(dashboards)])
				served.Add(1)
			}
		}()
	}

	deadline := time.Now().Add(30 * time.Second)
	for merges.Load() < 4 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	st = ss.Stats()
	fmt.Printf("  served %d queries; %d inserts across shards; %d merges; mean fan-out %.2f (%d shard scans pruned)\n",
		served.Load(), st.Inserts, st.Merges, float64(st.ShardsScanned)/float64(st.Queries), st.ShardsPruned)
	avg := ss.Execute(tsunami.Sum(3, tsunami.Filter{Dim: 0, Lo: hi - (hi-lo)/10, Hi: tsunami.NoHi}))
	fmt.Printf("  AVG(fare) over recent trips: %.1f (merged exactly from per-shard sum+count pairs)\n", avg.Avg())

	// Phase 3 — consistent multi-shard snapshot and recovery.
	dir := filepath.Join(os.TempDir(), "sharded-serving-snap")
	defer os.RemoveAll(dir)
	if err := ss.Save(dir); err != nil {
		panic(err)
	}
	recovered, err := tsunami.RecoverShardedStore(dir, nil, tsunami.ShardedOptions{})
	if err != nil {
		panic(err)
	}
	defer recovered.Close()
	a, b := ss.Execute(tsunami.Count()), recovered.Execute(tsunami.Count())
	fmt.Printf("\nphase 3: save -> recover: %d vs %d total rows (buffered rows carried: %d)\n",
		a.Count, b.Count, recovered.Stats().BufferedRows)
	if a.Count != b.Count {
		panic("recovered store diverges")
	}
	fmt.Println("done")
}

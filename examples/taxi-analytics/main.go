// Taxi analytics: the paper's motivating scenario (§6.2). Generates the
// NYC-taxi-like dataset, builds Tsunami and every baseline over it, and
// answers the paper's example analytics questions on each, comparing work
// done.
//
//	go run ./examples/taxi-analytics
package main

import (
	"fmt"

	tsunami "repro"
)

func main() {
	const rows = 150_000
	ds := tsunami.GenerateTaxi(rows, 1)
	work := tsunami.WorkloadFor(ds, 100, 2)
	fmt.Printf("dataset: %s, %d rows, %d dims; workload: %d queries\n",
		ds.Name, ds.Rows(), ds.Dims(), len(work))

	idx := tsunami.New(ds.Store, work, tsunami.Options{})
	flood := tsunami.NewFlood(ds.Store, work, tsunami.Options{})
	kd := tsunami.NewKDTree(ds.Store, work, 2048)
	zo := tsunami.NewZOrder(ds.Store, 2048)

	// "How common were single-passenger trips between two particular parts
	// of Manhattan?" — an equality filter plus two zone ranges.
	q1 := tsunami.Count(
		tsunami.Filter{Dim: 6, Lo: 1, Hi: 1},    // passengers == 1
		tsunami.Filter{Dim: 7, Lo: 30, Hi: 60},  // pickup zone
		tsunami.Filter{Dim: 8, Lo: 90, Hi: 120}, // dropoff zone
	)

	// "What month of the past year saw the most short-distance trips?" —
	// twelve month-window COUNTs over recent data with a distance filter.
	const minutesPerMonth = 30 * 24 * 60
	const yearStart = 365 * 24 * 60 // second year of the two-year span
	months := make([]tsunami.Query, 12)
	for m := range months {
		lo := int64(yearStart + m*minutesPerMonth)
		months[m] = tsunami.Count(
			tsunami.Filter{Dim: 0, Lo: lo, Hi: lo + minutesPerMonth - 1},
			tsunami.Filter{Dim: 2, Lo: 0, Hi: 100}, // short trips: <= 1 mile
		)
	}

	for _, entry := range []struct {
		name string
		idx  tsunami.Index
	}{{"Tsunami", idx}, {"Flood", flood}, {"KDTree", kd}, {"ZOrder", zo}} {
		r1 := entry.idx.Execute(q1)
		var bestMonth int
		var bestCount, monthScan uint64
		for m, q := range months {
			r := entry.idx.Execute(q)
			monthScan += r.PointsScanned
			if r.Count > bestCount {
				bestCount, bestMonth = r.Count, m
			}
		}
		fmt.Printf("%-8s single-pax Manhattan trips: %5d (scanned %6d); busiest short-trip month: #%d with %d trips (scanned %d)\n",
			entry.name, r1.Count, r1.PointsScanned, bestMonth+1, bestCount, monthScan)
	}

	fmt.Printf("\nindex sizes: Tsunami=%dB Flood=%dB KDTree=%dB ZOrder=%dB\n",
		idx.SizeBytes(), flood.SizeBytes(), kd.SizeBytes(), zo.SizeBytes())
}

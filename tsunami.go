// Package tsunami is a Go implementation of Tsunami [Ding, Nathan, Alizadeh,
// Kraska — VLDB 2020], an in-memory, read-optimized, clustered learned
// multi-dimensional index that is robust to correlated data and skewed query
// workloads.
//
// Tsunami composes two structures: a Grid Tree, a lightweight decision tree
// that partitions data space into regions with low query skew, and an
// Augmented Grid per region, a generalization of Flood's learned grid that
// captures correlations through functional mappings and conditional CDFs.
// Both are optimized automatically for a dataset and a sample query
// workload.
//
// The package also exposes the paper's baselines — Flood, k-d tree,
// hyperoctree, Z-order, and a clustered single-dimensional index — over the
// same column store, plus the evaluation's dataset and workload generators,
// so the full experimental suite in the paper can be reproduced (see
// EXPERIMENTS.md).
//
// Every built index is immutable on the read path: Execute keeps per-query
// state in pooled execution contexts, so one shared index serves any number
// of concurrent goroutines with no cloning. For throughput-oriented serving,
// NewExecutor wraps an index in a fixed worker pool with batch execution
// (ExecuteBatch) and optional intra-query parallelism that splits a single
// query's Grid Tree regions across workers.
//
// Quick start:
//
//	table, _ := tsunami.NewTableFromRows(rows, []string{"time", "price", "qty"})
//	work := []tsunami.Query{
//		tsunami.Count(tsunami.Filter{Dim: 0, Lo: t0, Hi: t1}),
//	}
//	idx := tsunami.New(table, work, tsunami.Options{})
//	res := idx.Execute(tsunami.Count(tsunami.Filter{Dim: 0, Lo: t0, Hi: t1}))
//	fmt.Println(res.Count)
package tsunami

import (
	"repro/internal/auggrid"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/gridtree"
	"repro/internal/index"
	"repro/internal/query"
)

// Filter is an inclusive range predicate over one dimension; Lo == Hi
// expresses equality.
type Filter = query.Filter

// NoLo and NoHi mark one side of a Filter as unbounded.
const (
	NoLo = query.NoLo
	NoHi = query.NoHi
)

// Query is a conjunctive multi-dimensional range query with a COUNT or SUM
// aggregation.
type Query = query.Query

// Result is a query's aggregate plus scan statistics.
type Result = colstore.ScanResult

// Table is the in-memory column store indexes are clustered over.
type Table = colstore.Store

// Index is any clustered multi-dimensional index in this package.
type Index = index.Index

// Count builds a COUNT(*) query.
func Count(filters ...Filter) Query { return query.NewCount(filters...) }

// Sum builds a SUM(dim) query.
func Sum(dim int, filters ...Filter) Query { return query.NewSum(dim, filters...) }

// NewTable wraps column slices (all the same length) as a Table.
func NewTable(cols [][]int64, names []string) (*Table, error) {
	return colstore.FromColumns(cols, names)
}

// NewTableFromRows builds a Table from row-major data.
func NewTableFromRows(rows [][]int64, names []string) (*Table, error) {
	return colstore.FromRows(rows, names)
}

// Options configures a Tsunami build. The zero value uses the paper's
// defaults and is right for most uses.
type Options struct {
	// MaxCells caps each region grid's lookup table (default 1<<20).
	MaxCells int
	// OptimizerIters bounds the adaptive-gradient-descent outer loop
	// (default 6).
	OptimizerIters int
	// SampleSize is the cost-model evaluation sample (default 2048).
	SampleSize int
	// MaxOptQueries caps the workload replayed by the cost model
	// (default 100).
	MaxOptQueries int
	// MaxTreeNodes caps the Grid Tree size (default 64).
	MaxTreeNodes int
	// Seed drives all randomized pieces (default 1).
	Seed int64
}

func (o Options) coreConfig(v core.Variant) core.Config {
	return core.Config{
		Variant:  v,
		GridTree: gridtree.Config{MaxNodes: o.MaxTreeNodes},
		Grid: auggrid.OptimizeConfig{
			Eval: auggrid.EvalConfig{
				SampleSize: o.SampleSize,
				MaxQueries: o.MaxOptQueries,
				Seed:       o.Seed,
			},
			MaxCells: o.MaxCells,
			MaxIters: o.OptimizerIters,
			Seed:     o.Seed,
		},
	}
}

// TsunamiIndex is a built Tsunami index. It implements Index and exposes
// the paper's structure statistics and workload-shift re-optimization.
type TsunamiIndex = core.Tsunami

// Stats are the optimized index structure statistics (Tab 4 of the paper).
type Stats = core.Stats

// New optimizes and builds a Tsunami index over table for the sample
// workload. The table is cloned; the index owns its clustered copy.
func New(table *Table, workload []Query, o Options) *TsunamiIndex {
	return core.Build(table, workload, o.coreConfig(core.FullTsunami))
}

// NewAugGridOnly builds the Fig 12a ablation: a single Augmented Grid over
// the whole space (no Grid Tree).
func NewAugGridOnly(table *Table, workload []Query, o Options) *TsunamiIndex {
	return core.Build(table, workload, o.coreConfig(core.AugGridOnly))
}

// NewGridTreeOnly builds the Fig 12a ablation: the Grid Tree with a
// Flood-style independent grid in each region (no correlation handling).
func NewGridTreeOnly(table *Table, workload []Query, o Options) *TsunamiIndex {
	return core.Build(table, workload, o.coreConfig(core.GridTreeOnly))
}

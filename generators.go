package tsunami

import (
	"repro/internal/datasets"
	"repro/internal/workload"
)

// The paper's evaluation datasets (§6.2) are available as seeded synthetic
// generators with the same schemas and correlation structure, plus the
// workload synthesizer that produces each dataset's query types.

// Dataset is a named generated table.
type Dataset = datasets.Dataset

// GenerateTPCH generates the 8-dimensional TPC-H lineitem-like dataset.
func GenerateTPCH(rows int, seed int64) *Dataset { return datasets.TPCH(rows, seed) }

// GenerateTaxi generates the 9-dimensional NYC-taxi-like dataset.
func GenerateTaxi(rows int, seed int64) *Dataset { return datasets.Taxi(rows, seed) }

// GeneratePerfmon generates the 7-dimensional machine-monitoring dataset.
func GeneratePerfmon(rows int, seed int64) *Dataset { return datasets.Perfmon(rows, seed) }

// GenerateStocks generates the 7-dimensional daily-stock-prices dataset.
func GenerateStocks(rows int, seed int64) *Dataset { return datasets.Stocks(rows, seed) }

// GenerateUniform generates d-dimensional i.i.d. uniform data (Fig 10).
func GenerateUniform(rows, dims int, seed int64) *Dataset {
	return datasets.SyntheticUniform(rows, dims, seed)
}

// GenerateCorrelated generates d-dimensional data whose second half of
// dimensions is linearly correlated with the first half (Fig 10).
func GenerateCorrelated(rows, dims int, seed int64) *Dataset {
	return datasets.SyntheticCorrelated(rows, dims, seed)
}

// WorkloadSkew biases where a query template's filters land.
type WorkloadSkew = workload.Skew

// Skew values for query templates.
const (
	SkewUniform  = workload.Uniform
	SkewRecent   = workload.Recent
	SkewLow      = workload.Low
	SkewExtremes = workload.Extremes
)

// DimSpec is one filtered dimension of a query template.
type DimSpec = workload.DimSpec

// TypeSpec is a query template — one "query type" in the paper's sense
// (§4.3.1): a fixed set of filtered dimensions with similar selectivities.
type TypeSpec = workload.TypeSpec

// GenerateWorkload synthesizes perType queries per template over the
// table's value distribution.
func GenerateWorkload(table *Table, types []TypeSpec, perType int, seed int64) []Query {
	return workload.Generate(table, types, perType, seed)
}

// WorkloadFor returns the paper's workload for a generated dataset.
func WorkloadFor(d *Dataset, perType int, seed int64) []Query {
	return workload.ForDataset(d, perType, seed)
}

// Acceptance tests for online shard rebalancing, run against the public
// API. The harness is oracle-backed and randomized: a seeded random
// schema and a skewed workload drive concurrent ingest, queries, and
// forced rebalances (run with -race); at every quiesce point the
// ShardedStore's aggregates must equal a naive full scan over every row
// the writers ever acknowledged — so no row is lost or duplicated across
// migrations. Failures reproduce from the printed seed.
package tsunami_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	tsunami "repro"
	"repro/internal/testutil"
)

// TestRebalanceRandomizedOracle is the ISSUE 4 acceptance property.
func TestRebalanceRandomizedOracle(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRandomizedRebalance(t, seed)
		})
	}
}

func runRandomizedRebalance(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))

	// Seeded random schema: dim 0 is the "time" dimension rebalancing
	// cuts on; the rest mix correlated, low-cardinality, and uniform
	// columns.
	dims := 3 + rng.Intn(3)
	n := 4000 + rng.Intn(3000)
	const timeSpan = 500_000
	cols := make([][]int64, dims)
	for j := range cols {
		cols[j] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		t0 := rng.Int63n(timeSpan)
		cols[0][i] = t0
		for j := 1; j < dims; j++ {
			switch j % 3 {
			case 1:
				cols[j][i] = t0/2 + rng.Int63n(1000) // correlated with time
			case 2:
				cols[j][i] = rng.Int63n(8) // low cardinality
			default:
				cols[j][i] = rng.Int63n(100_000) // uniform
			}
		}
	}
	table, err := tsunami.NewTable(cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	work := testutil.RandomQueries(table, 40, seed+1)

	shards := 3 + rng.Intn(2)
	ss, err := tsunami.NewShardedStore(table, work,
		tsunami.Options{OptimizerIters: 1, MaxOptQueries: 16},
		tsunami.ShardedOptions{
			Shards:  shards,
			Learned: true,
			Live:    tsunami.LiveOptions{MergeThreshold: 400},
		})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	oracle := testutil.NewOracle(table)

	// Readers hammer the store for the whole run — through migrations,
	// merges, and flushes. Their answers race against ingest so they are
	// not compared here; the quiesce points below do the exact checks,
	// and the -race run proves the concurrent paths are data-race free.
	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		r := r
		readers.Add(1)
		go func() {
			defer readers.Done()
			for k := r; ; k++ {
				select {
				case <-done:
					return
				default:
				}
				ss.Execute(work[k%len(work)])
			}
		}()
	}
	defer func() {
		close(done)
		readers.Wait()
	}()

	// Skewed ingest: every fresh row's time value marches past the
	// current maximum, so all of them land in the last time shard — the
	// drift scenario rebalancing exists for.
	var clock atomic.Int64
	clock.Store(timeSpan)
	const (
		phases        = 2
		writersPP     = 3
		batchesPerWr  = 25
		rowsPerBatch  = 16
	)
	for phase := 0; phase < phases; phase++ {
		var writers sync.WaitGroup
		for w := 0; w < writersPP; w++ {
			wrng := rand.New(rand.NewSource(seed + int64(phase*writersPP+w+10)))
			writers.Add(1)
			go func() {
				defer writers.Done()
				for b := 0; b < batchesPerWr; b++ {
					batch := make([][]int64, rowsPerBatch)
					for k := range batch {
						row := make([]int64, dims)
						t0 := clock.Add(3 + wrng.Int63n(5))
						row[0] = t0
						for j := 1; j < dims; j++ {
							switch j % 3 {
							case 1:
								row[j] = t0/2 + wrng.Int63n(1000)
							case 2:
								row[j] = wrng.Int63n(8)
							default:
								row[j] = wrng.Int63n(100_000)
							}
						}
						batch[k] = row
					}
					if err := ss.InsertBatch(batch); err != nil {
						t.Errorf("writer: %v", err)
						return
					}
					oracle.Add(batch...)
				}
			}()
		}
		// Force a rebalance while the writers are streaming: migrations
		// race live ingest and live readers.
		if err := ss.Rebalance(); err != nil {
			t.Fatalf("phase %d rebalance: %v", phase, err)
		}
		writers.Wait()

		// Quiesce point: fold everything, then every aggregate must equal
		// the oracle (Check appends COUNT(*) and per-dimension SUMs, so a
		// lost or duplicated row cannot hide).
		if err := ss.Flush(); err != nil {
			t.Fatal(err)
		}
		if buffered := ss.Stats().BufferedRows; buffered != 0 {
			t.Fatalf("phase %d: %d rows buffered after Flush", phase, buffered)
		}
		probe := testutil.RandomQueries(oracle.Snapshot(), 60, seed+int64(phase)+100)
		oracle.Check(t, ss, probe)
	}

	// A final rebalance on the quiesced store, checked the same way: the
	// run forces at least phases+1 rebalances total.
	if err := ss.Rebalance(); err != nil {
		t.Fatal(err)
	}
	oracle.Check(t, ss, testutil.RandomQueries(oracle.Snapshot(), 60, seed+200))

	stats := ss.Stats()
	if want := uint64(phases * writersPP * batchesPerWr * rowsPerBatch); stats.Inserts != want {
		t.Errorf("store counted %d inserts, want %d", stats.Inserts, want)
	}
	if stats.RowsMigrated == 0 || stats.Generation < 2 {
		t.Errorf("rebalancing never migrated: %d rows moved, generation %d",
			stats.RowsMigrated, stats.Generation)
	}
	if skew, _ := ss.Skew(); skew >= 2 {
		t.Errorf("final skew %.2f, want < 2 after rebalancing", skew)
	}
	t.Logf("seed %d: dims=%d shards=%d rebalances=%d rowsMigrated=%d generation=%d",
		seed, dims, shards, stats.Rebalances, stats.RowsMigrated, stats.Generation)
}

package tsunami

import (
	"io"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/qcache"
	"repro/internal/sharded"
)

// This file exposes the serving subsystems:
//
//   - LiveStore (internal/live): an epoch-based read-write layer over a
//     built Tsunami index. Readers resolve the current immutable index
//     through an atomic epoch handle and execute lock-free; writers go
//     through a serialized copy-on-write ingest path; and a background
//     maintenance goroutine merges buffered rows into fresh clustered
//     copies, re-optimizes drifted region grids when the shift detector
//     fires, and takes periodic crash-recovery snapshots — each published
//     with a single atomic swap while old-epoch readers drain.
//
//   - ShardedStore (internal/sharded): N independent LiveStore shards
//     behind a partitioning router. Ingest scales with shard count (each
//     shard has its own copy-on-write writer section), reads scatter to
//     the shards the partitioner cannot prune and gather their partial
//     aggregates, and each shard runs its own maintenance. Save/Recover
//     coordinate a consistent multi-shard snapshot, and an online
//     rebalancer (ShardedOptions.Rebalance / ShardedStore.Rebalance)
//     re-learns the range cuts and migrates rows between shards when
//     skewed ingest unbalances them — without blocking readers, exactly,
//     and crash-consistently.

// LiveStore is a concurrently-writable serving layer over a Tsunami
// index. It implements Index (reads execute against the current epoch)
// and IndexSource (so an Executor built over it picks up epoch swaps).
//
// Any number of goroutines may call Execute concurrently with any number
// of goroutines calling Insert/InsertBatch; queries never block on writes
// or on background maintenance.
type LiveStore = live.Store

// LiveOptions configures a LiveStore.
type LiveOptions = live.Config

// LiveEvent describes one completed maintenance operation (merge,
// re-optimization, snapshot, or error); subscribe via LiveOptions.OnEvent.
type LiveEvent = live.Event

// LiveStats is a point-in-time summary of a LiveStore.
type LiveStats = live.Stats

// CacheStats is a point-in-time summary of a serving layer's result
// cache (LiveOptions.CacheEntries / ShardedOptions.CacheEntries): hit,
// miss, and eviction totals plus the current entry count. The cache is
// keyed on (epoch, exact canonical query) — literal filter bounds
// included — so every publish invalidates exactly and for free; see
// internal/qcache for why the key is not the workload fingerprint.
type CacheStats = qcache.Stats

// Maintenance event kinds reported through LiveOptions.OnEvent.
const (
	LiveEventMerge      = live.EventMerge
	LiveEventReoptimize = live.EventReoptimize
	LiveEventSnapshot   = live.EventSnapshot
	LiveEventError      = live.EventError
)

// NewLiveStore starts serving idx with live writes and background
// maintenance. optimized is the sample workload the index was built for;
// it fingerprints the workload-shift detector (pass nil to serve without
// shift-triggered re-optimization). The LiveStore owns idx from here on:
// don't mutate it directly anymore.
//
//	idx := tsunami.New(table, work, tsunami.Options{})
//	ls := tsunami.NewLiveStore(idx, work, tsunami.LiveOptions{MergeThreshold: 10_000})
//	defer ls.Close()
//
//	go func() { ls.Insert(row) }()          // writers
//	res := ls.Execute(q)                    // readers, lock-free
//
//	ex := tsunami.NewExecutor(ls, tsunami.ExecutorOptions{}) // batch serving
//	results := ex.ExecuteBatch(queries)
func NewLiveStore(idx *TsunamiIndex, optimized []Query, o LiveOptions) *LiveStore {
	return live.Open(idx, optimized, o)
}

// RecoverLiveStore reopens a LiveStore from a snapshot written by
// LiveStore.Snapshot, its periodic snapshots, or TsunamiIndex.Save —
// including rows that were buffered but not yet merged at snapshot time.
func RecoverLiveStore(r io.Reader, optimized []Query, o LiveOptions) (*LiveStore, error) {
	return live.Recover(r, optimized, o)
}

// ---------------------------------------------------------------------------
// Sharded serving.

// ShardedStore serves one logical table from N independent LiveStore
// shards: rows are routed to shards by a Partitioner, ingest to different
// shards proceeds with no cross-shard lock (throughput scales with shard
// count), and reads execute only on the shards the router cannot prune,
// merging their partial aggregates (COUNT/SUM add; AVG merges exactly
// because Result carries the sum+count pair).
//
// ShardedStore implements Index and IndexSource, and supports the
// Executor's intra-query interface: an Executor with IntraQuery enabled
// scatters each query's surviving shards across its worker pool and
// gathers the partials.
type ShardedStore = sharded.Store

// ShardedOptions configures a ShardedStore: shard count, partitioner
// choice, the per-shard LiveOptions, the snapshot directory, and the
// online rebalancer (ShardedOptions.Rebalance).
type ShardedOptions = sharded.Config

// RebalanceOptions tunes the online shard rebalancer: a background
// watcher compares shard sizes every CheckInterval and, when the largest
// shard exceeds MaxSkew times the mean, re-learns the range partitioner's
// equi-depth cuts from a sample of the live shards and migrates rows
// between neighbors — readers stay lock-free and exact throughout, and a
// crash mid-migration recovers consistently (the snapshot manifest
// carries the partitioner generation). ShardedStore.Rebalance triggers
// one manually.
type RebalanceOptions = sharded.RebalanceConfig

// ShardedStats is a point-in-time summary of a ShardedStore, including
// router pruning counters and per-shard LiveStats.
type ShardedStats = sharded.Stats

// ShardedEvent is one shard's maintenance event, tagged with the shard id.
type ShardedEvent = sharded.Event

// Partitioner assigns rows to shards and prunes shards for queries; see
// NewHashPartitioner and NewRangePartitioner for the built-in choices.
type Partitioner = sharded.Partitioner

// NewHashPartitioner spreads rows across shards by a mixed hash of one
// dimension — balanced on any data, but only equality filters on that
// dimension prune shards.
func NewHashPartitioner(dim, shards int) Partitioner { return sharded.NewHash(dim, shards) }

// NewRangePartitioner learns an equi-depth range partitioning of dim from
// the table, so shards start balanced and range filters on dim touch only
// the shards their interval overlaps. Partition on the dimension your
// range queries filter most (typically the clustered/time dimension).
func NewRangePartitioner(table *Table, dim, shards int) Partitioner {
	return sharded.LearnRange(table, dim, shards)
}

// NewShardedStore partitions table across shards, builds one Tsunami
// index per shard for the slice of the workload that shard can see, and
// starts serving with per-shard background maintenance.
//
//	ss, err := tsunami.NewShardedStore(table, work, tsunami.Options{},
//	    tsunami.ShardedOptions{Shards: 8, Learned: true})
//	defer ss.Close()
//
//	go func() { ss.InsertBatch(rows) }()   // writers scale with shards
//	res := ss.Execute(q)                   // routed, pruned, merged
//
//	ex := tsunami.NewExecutorSource(ss, tsunami.ExecutorOptions{IntraQuery: true})
//	res = ex.Execute(q)                    // parallel scatter-gather
func NewShardedStore(table *Table, workload []Query, o Options, so ShardedOptions) (*ShardedStore, error) {
	return sharded.Open(table, workload, o.coreConfig(core.FullTsunami), so)
}

// RecoverShardedStore reopens a ShardedStore from a snapshot directory
// written by ShardedStore.Save (or maintained under
// ShardedOptions.SnapshotDir): the manifest reconstructs the partitioner
// and every shard reloads, buffered rows included.
func RecoverShardedStore(dir string, workload []Query, so ShardedOptions) (*ShardedStore, error) {
	return sharded.Recover(dir, workload, so)
}

package tsunami

import (
	"io"

	"repro/internal/live"
)

// This file exposes the live serving subsystem (internal/live): an
// epoch-based read-write layer over a built Tsunami index. Readers resolve
// the current immutable index through an atomic epoch handle and execute
// lock-free; writers go through a serialized copy-on-write ingest path;
// and a background maintenance goroutine merges buffered rows into fresh
// clustered copies, re-optimizes drifted region grids when the shift
// detector fires, and takes periodic crash-recovery snapshots — each
// published with a single atomic swap while old-epoch readers drain.

// LiveStore is a concurrently-writable serving layer over a Tsunami
// index. It implements Index (reads execute against the current epoch)
// and IndexSource (so an Executor built over it picks up epoch swaps).
//
// Any number of goroutines may call Execute concurrently with any number
// of goroutines calling Insert/InsertBatch; queries never block on writes
// or on background maintenance.
type LiveStore = live.Store

// LiveOptions configures a LiveStore.
type LiveOptions = live.Config

// LiveEvent describes one completed maintenance operation (merge,
// re-optimization, snapshot, or error); subscribe via LiveOptions.OnEvent.
type LiveEvent = live.Event

// LiveStats is a point-in-time summary of a LiveStore.
type LiveStats = live.Stats

// Maintenance event kinds reported through LiveOptions.OnEvent.
const (
	LiveEventMerge      = live.EventMerge
	LiveEventReoptimize = live.EventReoptimize
	LiveEventSnapshot   = live.EventSnapshot
	LiveEventError      = live.EventError
)

// NewLiveStore starts serving idx with live writes and background
// maintenance. optimized is the sample workload the index was built for;
// it fingerprints the workload-shift detector (pass nil to serve without
// shift-triggered re-optimization). The LiveStore owns idx from here on:
// don't mutate it directly anymore.
//
//	idx := tsunami.New(table, work, tsunami.Options{})
//	ls := tsunami.NewLiveStore(idx, work, tsunami.LiveOptions{MergeThreshold: 10_000})
//	defer ls.Close()
//
//	go func() { ls.Insert(row) }()          // writers
//	res := ls.Execute(q)                    // readers, lock-free
//
//	ex := tsunami.NewExecutor(ls, tsunami.ExecutorOptions{}) // batch serving
//	results := ex.ExecuteBatch(queries)
func NewLiveStore(idx *TsunamiIndex, optimized []Query, o LiveOptions) *LiveStore {
	return live.Open(idx, optimized, o)
}

// RecoverLiveStore reopens a LiveStore from a snapshot written by
// LiveStore.Snapshot, its periodic snapshots, or TsunamiIndex.Save —
// including rows that were buffered but not yet merged at snapshot time.
func RecoverLiveStore(r io.Reader, optimized []Query, o LiveOptions) (*LiveStore, error) {
	return live.Recover(r, optimized, o)
}

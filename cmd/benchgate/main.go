// Command benchgate is the benchmark-regression gate CI runs on every PR:
// it parses `go test -bench` output, extracts the ns/op of the gated
// benchmarks, and compares each against a checked-in baseline, failing
// (exit 1) when a benchmark is slower than baseline by more than its
// allowed tolerance.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkScanKernels -benchtime 200ms ./internal/colstore | \
//	    go run ./cmd/benchgate -baseline .github/scan-baseline.json
//
//	go test ... -bench ... | go run ./cmd/benchgate -baseline f.json -update
//
// The baseline file maps a benchmark name prefix (sub-benchmark names as
// printed, without the -<GOMAXPROCS> suffix) to its reference ns/op and a
// relative tolerance. -update rewrites the baseline from the observed run
// instead of gating, which is how the reference numbers are refreshed
// after an intentional perf change (commit the result).
//
// The relative gates need no baseline file (immune to runner-hardware
// variance): -min-speedup requires kernel benchmarks to beat their
// scalar twins by a factor, measured within one run; the custom-metric
// gates read metrics benchmarks report via b.ReportMetric and compare
// them against a bound. -max-overhead gates `overhead-pct` (the
// differential BenchmarkObsOverhead — CI's observability budget);
// -min-hit-pct, -min-cache-speedup, -min-shed-pct, and -max-shed-p99-x
// gate the serving-discipline metrics BenchmarkTraffic reports
// (`hit-pct`, `cache-speedup-x`, `shed-pct`, `shed-p99-x`):
//
//	go test -run '^$' -bench BenchmarkObsOverhead -benchtime 1x . | \
//	    go run ./cmd/benchgate -max-overhead 2
//
//	go test -run '^$' -bench BenchmarkTraffic -benchtime 1x . | \
//	    go run ./cmd/benchgate -min-hit-pct 50 -min-cache-speedup 5 \
//	        -min-shed-pct 10 -max-shed-p99-x 10
//
// A second mode compares two committed tsunami-bench JSON artifacts and
// prints the metric-by-metric delta (the repo's benchmark timeline):
//
//	go run ./cmd/benchgate -compare BENCH_5.json BENCH_6.json
//
// Compare never exits non-zero for a slowdown — artifacts from different
// PRs come from different runners, so it reports environment mismatches
// (num_cpu, gomaxprocs, kernel tier) as warnings instead of gating.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one gated benchmark in the baseline file.
type Entry struct {
	// NsPerOp is the reference time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// Tolerance is the allowed relative slowdown before the gate fails
	// (0.20 = fail when observed > 1.2x baseline). Generous tolerances
	// absorb runner jitter; a real kernel regression is far larger.
	Tolerance float64 `json:"tolerance"`
}

// Baseline is the checked-in reference file.
type Baseline struct {
	// Note documents how to regenerate the file.
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "baseline JSON file (required)")
		update       = flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
		tolerance    = flag.Float64("tolerance", 0.20, "tolerance written by -update")
		minSpeedup   = flag.Float64("min-speedup", 0, "also require kernel/scalar speedup >= this, measured within this run (0 disables)")
		kernelPrefix = flag.String("kernel-prefix", "BenchmarkScanKernels", "benchmark prefix of the kernel side of the speedup gate")
		scalarPrefix = flag.String("scalar-prefix", "BenchmarkScanScalar", "benchmark prefix of the scalar side of the speedup gate")
		maxOverhead  = flag.Float64("max-overhead", 0, "fail when a benchmark's reported overhead-pct metric exceeds this many percent (0 disables)")
		minHitPct    = flag.Float64("min-hit-pct", 0, "fail when a benchmark's reported hit-pct metric is below this many percent (0 disables)")
		minCacheX    = flag.Float64("min-cache-speedup", 0, "fail when a benchmark's reported cache-speedup-x metric is below this factor (0 disables)")
		minShedPct   = flag.Float64("min-shed-pct", 0, "fail when a benchmark's reported shed-pct metric is below this many percent (0 disables)")
		maxShedP99X  = flag.Float64("max-shed-p99-x", 0, "fail when a benchmark's reported shed-p99-x metric exceeds this factor (0 disables)")
		compare      = flag.Bool("compare", false, "compare two tsunami-bench JSON reports (old new) and print the delta table")
	)
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchgate: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		return
	}
	// The absolute baseline is optional when a relative or custom-metric
	// gate is requested: those compare within one run (or against a
	// stated bound) and need no reference file.
	anyMetricGate := *maxOverhead > 0 || *minHitPct > 0 || *minCacheX > 0 || *minShedPct > 0 || *maxShedP99X > 0
	if *baselinePath == "" && *minSpeedup == 0 && !anyMetricGate {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline is required (or a relative gate: -min-speedup / a custom-metric gate)")
		os.Exit(2)
	}
	if *baselinePath == "" && *update {
		fmt.Fprintln(os.Stderr, "benchgate: -update needs -baseline")
		os.Exit(2)
	}

	observed, metrics, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(observed) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results on stdin")
		os.Exit(2)
	}

	if *update {
		if err := writeBaseline(*baselinePath, observed, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(observed), *baselinePath)
		return
	}

	failed := 0
	if *baselinePath != "" {
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		var base Baseline
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", *baselinePath, err)
			os.Exit(2)
		}

		names := make([]string, 0, len(base.Benchmarks))
		for name := range base.Benchmarks {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			entry := base.Benchmarks[name]
			got, ok := observed[name]
			if !ok {
				fmt.Printf("MISSING  %-40s baseline %.0f ns/op, not in this run\n", name, entry.NsPerOp)
				failed++
				continue
			}
			limit := entry.NsPerOp * (1 + entry.Tolerance)
			ratio := got / entry.NsPerOp
			if got > limit {
				fmt.Printf("FAIL     %-40s %.0f ns/op vs baseline %.0f (%.2fx, limit %.2fx)\n",
					name, got, entry.NsPerOp, ratio, 1+entry.Tolerance)
				failed++
			} else {
				fmt.Printf("ok       %-40s %.0f ns/op vs baseline %.0f (%.2fx)\n",
					name, got, entry.NsPerOp, ratio)
			}
		}
	}
	// Relative gate: kernel vs scalar measured in the same run on the same
	// machine, so it is immune to the runner-hardware variance the absolute
	// baseline gate is exposed to. Requires the run to include both
	// benchmark families.
	if *minSpeedup > 0 {
		pairs := 0
		kernelNames := make([]string, 0, len(observed))
		for name := range observed {
			if strings.HasPrefix(name, *kernelPrefix) {
				kernelNames = append(kernelNames, name)
			}
		}
		sort.Strings(kernelNames)
		for _, name := range kernelNames {
			kernelNs := observed[name]
			scalarNs, ok := observed[*scalarPrefix+name[len(*kernelPrefix):]]
			if !ok {
				continue
			}
			pairs++
			speedup := scalarNs / kernelNs
			if speedup < *minSpeedup {
				fmt.Printf("FAIL     %-40s %.2fx over scalar, want >= %.2fx\n", name, speedup, *minSpeedup)
				failed++
			} else {
				fmt.Printf("ok       %-40s %.2fx over scalar\n", name, speedup)
			}
		}
		if pairs == 0 {
			fmt.Printf("benchgate: -min-speedup set but no %s/%s pairs in this run\n", *kernelPrefix, *scalarPrefix)
			failed++
		}
	}
	// Custom-metric gates: benchmarks report a figure via b.ReportMetric
	// (the overhead-pct differential — see BenchmarkObsOverhead — or the
	// serving-discipline figures BenchmarkTraffic reports) and the gate
	// compares it against a stated bound. Measuring such figures inside
	// one benchmark and gating the reported metric is deliberate:
	// comparing two separate benchmark runs is NOT robust — a
	// multi-second noisy window on a loaded runner lands asymmetrically
	// and fakes (or masks) a regression several times the real one. With
	// -count N each gate takes the median of the runs' reported values.
	failed += gateMetric(metrics, "overhead-pct", *maxOverhead, false, "-max-overhead")
	failed += gateMetric(metrics, "hit-pct", *minHitPct, true, "-min-hit-pct")
	failed += gateMetric(metrics, "cache-speedup-x", *minCacheX, true, "-min-cache-speedup")
	failed += gateMetric(metrics, "shed-pct", *minShedPct, true, "-min-shed-pct")
	failed += gateMetric(metrics, "shed-p99-x", *maxShedP99X, false, "-max-shed-p99-x")
	if failed > 0 {
		fmt.Printf("benchgate: %d benchmark(s) regressed past tolerance\n", failed)
		os.Exit(1)
	}
}

// gateMetric gates every benchmark that reported the given custom metric
// against bound (a floor when wantMin, a ceiling otherwise), taking the
// median when -count repeated the benchmark. A zero bound disables the
// gate. A configured gate with no benchmark reporting the metric is a
// failure: a renamed or deleted benchmark must not silently pass CI.
func gateMetric(metrics map[string]map[string][]float64, unit string, bound float64, wantMin bool, flagName string) int {
	if bound == 0 {
		return 0
	}
	byName := metrics[unit]
	if len(byName) == 0 {
		fmt.Printf("benchgate: %s set but no benchmark reported a %s metric\n", flagName, unit)
		return 1
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := 0
	for _, name := range names {
		vals := append([]float64(nil), byName[name]...)
		sort.Float64s(vals)
		got := vals[len(vals)/2]
		if len(vals)%2 == 0 {
			got = (vals[len(vals)/2-1] + vals[len(vals)/2]) / 2
		}
		bad := got > bound
		rel := "<="
		if wantMin {
			bad = got < bound
			rel = ">="
		}
		if bad {
			fmt.Printf("FAIL     %-40s %.2f %s, want %s %.2f\n", name, got, unit, rel, bound)
			failed++
		} else {
			fmt.Printf("ok       %-40s %.2f %s (want %s %.2f)\n", name, got, unit, rel, bound)
		}
	}
	return failed
}

// parseBench extracts "Benchmark<Name>[-P] <N> <ns> ns/op ..." lines,
// keyed by name with the GOMAXPROCS suffix stripped — including the
// "#01"-style suffixes go test appends when a benchmark runs b.Run with
// one name several times. Repeated runs of one benchmark keep the
// fastest ns/op (the standard de-noising for the absolute and speedup
// gates). The second map collects every other "<value> <unit>" column —
// the custom metrics benchmarks report via b.ReportMetric — as
// unit -> benchmark name -> values in input order, for the
// custom-metric gates.
func parseBench(r *os.File) (map[string]float64, map[string]map[string][]float64, error) {
	out := make(map[string]float64)
	metrics := make(map[string]map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // echo, so the gate's input stays in the CI log
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if cut := strings.LastIndex(name, "-"); cut > 0 {
			if _, err := strconv.Atoi(name[cut+1:]); err == nil {
				name = name[:cut]
			}
		}
		if cut := strings.LastIndex(name, "#"); cut > 0 {
			if _, err := strconv.Atoi(name[cut+1:]); err == nil {
				name = name[:cut]
			}
		}
		// Units follow their values column-wise: "<value> ns/op",
		// "<value> overhead-pct", ...
		for i := 2; i < len(fields); i++ {
			if fields[i] == "ns/op" {
				ns, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, nil, fmt.Errorf("bad ns/op value in %q: %v", line, err)
				}
				if prev, ok := out[name]; !ok || ns < prev {
					out[name] = ns
				}
				continue
			}
			// Any other unit column is a custom metric; a column that
			// does not parse as a number (e.g. the iteration count
			// followed by a unit-less token) is not one.
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			if _, err := strconv.ParseFloat(fields[i], 64); err == nil {
				continue
			}
			byName := metrics[fields[i]]
			if byName == nil {
				byName = make(map[string][]float64)
				metrics[fields[i]] = byName
			}
			byName[name] = append(byName[name], v)
		}
	}
	return out, metrics, sc.Err()
}

// writeBaseline emits a fresh baseline file from the observed run.
func writeBaseline(path string, observed map[string]float64, tol float64) error {
	base := Baseline{
		Note:       "regenerate: go test -run '^$' -bench BenchmarkScanKernels -benchtime 200ms ./internal/colstore | go run ./cmd/benchgate -baseline <this file> -update",
		Benchmarks: make(map[string]Entry, len(observed)),
	}
	for name, ns := range observed {
		base.Benchmarks[name] = Entry{NsPerOp: ns, Tolerance: tol}
	}
	raw, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

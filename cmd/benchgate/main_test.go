package main

import (
	"strings"
	"testing"
)

const oldReport = `{
  "schema": "tsunami-bench/v1",
  "go_version": "go1.24.0",
  "goos": "linux", "goarch": "amd64",
  "num_cpu": 1, "gomaxprocs": 1,
  "experiments": {
    "scan": {
      "rows": 131072,
      "shapes": [
        {"shape": "count_1f", "mrows_per_s": 500, "speedup_vs_scalar": 3.7},
        {"shape": "sum_1f", "mrows_per_s": 400, "speedup_vs_scalar": 3.0}
      ]
    },
    "sharded": {
      "scaling_unreliable": false,
      "ingest": [
        {"shards": 1, "rows_per_s": 100000, "speedup_vs_1": 1},
        {"shards": 4, "rows_per_s": 67000, "speedup_vs_1": 0.67}
      ]
    }
  }
}`

const newReport = `{
  "schema": "tsunami-bench/v1",
  "go_version": "go1.24.0",
  "goos": "linux", "goarch": "amd64",
  "num_cpu": 1, "gomaxprocs": 4,
  "scan_kernel": "avx2",
  "experiments": {
    "scan": {
      "rows": 131072,
      "shapes": [
        {"shape": "count_1f", "mrows_per_s": 6000, "kernel_gb_per_s": 48.0},
        {"shape": "sum_1f", "mrows_per_s": 4000, "speedup_vs_scalar": 30.1}
      ]
    },
    "sharded": {
      "scaling_unreliable": true,
      "ingest": [
        {"shards": 1, "rows_per_s": 100000, "speedup_vs_1": 1},
        {"shards": 4, "rows_per_s": 120000, "speedup_vs_1": 1.2}
      ]
    }
  }
}`

func TestCompareReports(t *testing.T) {
	var sb strings.Builder
	if err := compareReports(&sb, []byte(oldReport), []byte(newReport)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	t.Log("\n" + out)

	// Shared metrics line up by label field, not array position, and the
	// delta is new/old.
	wantLines := []string{
		"scan.shapes[shape=count_1f].mrows_per_s",
		"12.00x", // 6000/500
		"sharded.ingest[shards=4].speedup_vs_1",
		"1.79x", // 1.2/0.67
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q", want)
		}
	}

	// Metric churn is reported, not fatal: fields only one side has.
	if !strings.Contains(out, "scan.shapes[shape=count_1f].kernel_gb_per_s") || !strings.Contains(out, "new") {
		t.Error("metric present only in the new report should be listed as new")
	}
	if !strings.Contains(out, "scan.shapes[shape=count_1f].speedup_vs_scalar") || !strings.Contains(out, "gone") {
		t.Error("metric present only in the old report should be listed as gone")
	}

	// Booleans flatten to 0/1 so flag flips show in the timeline.
	if !strings.Contains(out, "sharded.scaling_unreliable") {
		t.Error("boolean flags should appear as metrics")
	}

	// Environment differences warn but do not error.
	if !strings.Contains(out, "WARNING: gomaxprocs differs (old 1, new 4)") {
		t.Error("gomaxprocs mismatch should produce a warning")
	}
	if !strings.Contains(out, "WARNING: scan_kernel differs (old (unset), new avx2)") {
		t.Error("scan_kernel mismatch should produce a warning")
	}
	if strings.Contains(out, "WARNING: num_cpu") {
		t.Error("matching num_cpu must not warn")
	}
}

func TestCompareReportsBadJSON(t *testing.T) {
	var sb strings.Builder
	if err := compareReports(&sb, []byte("{"), []byte(newReport)); err == nil {
		t.Error("truncated old report should error")
	}
	if err := compareReports(&sb, []byte(oldReport), []byte("not json")); err == nil {
		t.Error("malformed new report should error")
	}
}

func TestFlattenElemKey(t *testing.T) {
	out := make(map[string]float64)
	flatten("x", map[string]any{
		"anon": []any{
			map[string]any{"v": 1.0},
			map[string]any{"v": 2.0},
		},
		"workers_arr": []any{
			map[string]any{"workers": 4.0, "qps": 9.0},
		},
	}, out)
	if out["x.anon[0].v"] != 1 || out["x.anon[1].v"] != 2 {
		t.Errorf("unlabeled arrays should key by index: %v", out)
	}
	if out["x.workers_arr[workers=4].qps"] != 9 {
		t.Errorf("labeled arrays should key by label field: %v", out)
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// report is the loosely-typed view of a tsunami-bench Report this command
// needs: enough header fields to warn when two artifacts were produced
// under incomparable conditions, with the experiment payloads kept generic
// so the delta table survives experiments gaining fields or whole new
// experiments appearing between PRs.
type report struct {
	Schema      string                     `json:"schema"`
	GoVersion   string                     `json:"go_version"`
	GOOS        string                     `json:"goos"`
	GOARCH      string                     `json:"goarch"`
	NumCPU      int                        `json:"num_cpu"`
	GOMAXPROCS  int                        `json:"gomaxprocs"`
	ScanKernel  string                     `json:"scan_kernel"`
	Experiments map[string]json.RawMessage `json:"experiments"`
}

// labelFields are object fields that identify an element of a metric
// array (bench emits []IngestPoint keyed by shards, []PoolPoint keyed by
// workers, []ScanShapePoint keyed by shape). When an array element has
// one, the path uses it instead of the positional index, so the delta
// lines up even if the set of points shifts between runs.
var labelFields = []string{"shape", "shards", "workers"}

// compareReports prints a metric-by-metric delta of two bench.Report
// files (the committed BENCH_<n>.json artifacts) to w. It returns an
// error only for unreadable input; metric churn between schema revisions
// is reported in the table, not fatal.
func compareReports(w io.Writer, oldRaw, newRaw []byte) error {
	var oldRep, newRep report
	if err := json.Unmarshal(oldRaw, &oldRep); err != nil {
		return fmt.Errorf("old report: %w", err)
	}
	if err := json.Unmarshal(newRaw, &newRep); err != nil {
		return fmt.Errorf("new report: %w", err)
	}

	// Environment mismatches don't fail the comparison — BENCH artifacts
	// from different PRs legitimately come from different runners — but
	// every delta below must be read through them.
	warn := func(field, oldV, newV string) {
		if oldV != newV {
			fmt.Fprintf(w, "WARNING: %s differs (old %s, new %s) — deltas reflect environment as well as code\n", field, oldV, newV)
		}
	}
	warn("schema", oldRep.Schema, newRep.Schema)
	warn("go_version", oldRep.GoVersion, newRep.GoVersion)
	warn("goos/goarch", oldRep.GOOS+"/"+oldRep.GOARCH, newRep.GOOS+"/"+newRep.GOARCH)
	warn("num_cpu", fmt.Sprint(oldRep.NumCPU), fmt.Sprint(newRep.NumCPU))
	warn("gomaxprocs", fmt.Sprint(oldRep.GOMAXPROCS), fmt.Sprint(newRep.GOMAXPROCS))
	warn("scan_kernel", orUnset(oldRep.ScanKernel), orUnset(newRep.ScanKernel))

	oldM := flattenExperiments(oldRep.Experiments)
	newM := flattenExperiments(newRep.Experiments)

	// The observability tax gets its own drift check: unlike throughput
	// (where runner variance swamps small moves), overhead is a ratio
	// measured within each run, so a point of movement means the
	// instrumentation itself got heavier or lighter.
	if oldV, inOld := oldM["obs.overhead_pct"]; inOld {
		if newV, inNew := newM["obs.overhead_pct"]; inNew && math.Abs(newV-oldV) > 1 {
			fmt.Fprintf(w, "WARNING: obs overhead drifted %.2f%% -> %.2f%% (more than 1 point) — the instrumentation cost itself changed\n", oldV, newV)
		}
	}

	keys := make([]string, 0, len(oldM)+len(newM))
	seen := make(map[string]bool, len(oldM)+len(newM))
	for k := range oldM {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range newM {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	fmt.Fprintf(w, "%-64s %14s %14s %9s\n", "metric", "old", "new", "delta")
	for _, k := range keys {
		oldV, inOld := oldM[k]
		newV, inNew := newM[k]
		switch {
		case !inOld:
			fmt.Fprintf(w, "%-64s %14s %14s %9s\n", k, "-", fmtNum(newV), "new")
		case !inNew:
			fmt.Fprintf(w, "%-64s %14s %14s %9s\n", k, fmtNum(oldV), "-", "gone")
		case oldV == 0:
			fmt.Fprintf(w, "%-64s %14s %14s %9s\n", k, fmtNum(oldV), fmtNum(newV), "-")
		default:
			fmt.Fprintf(w, "%-64s %14s %14s %8.2fx\n", k, fmtNum(oldV), fmtNum(newV), newV/oldV)
		}
	}
	return nil
}

func orUnset(s string) string {
	if s == "" {
		return "(unset)"
	}
	return s
}

func fmtNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// flattenExperiments turns the experiments map into dotted-path numeric
// metrics, e.g. "scan.shapes[count_1f].kernel_mrows_per_s" or
// "sharded.ingest[shards=4].speedup_vs_1". Booleans flatten to 0/1 so
// flags like scaling_unreliable show up in the timeline too.
func flattenExperiments(exps map[string]json.RawMessage) map[string]float64 {
	out := make(map[string]float64)
	for name, raw := range exps {
		var v any
		if err := json.Unmarshal(raw, &v); err != nil {
			continue
		}
		flatten(name, v, out)
	}
	return out
}

func flatten(path string, v any, out map[string]float64) {
	switch x := v.(type) {
	case float64:
		out[path] = x
	case bool:
		if x {
			out[path] = 1
		} else {
			out[path] = 0
		}
	case map[string]any:
		for k, sub := range x {
			flatten(path+"."+k, sub, out)
		}
	case []any:
		for i, el := range x {
			flatten(path+elemKey(el, i), el, out)
		}
	}
	// Strings carry no delta; drop them (the header warnings cover the
	// interesting ones like the kernel tier).
}

// elemKey names one array element: "[shape=count_1f]" when a label field
// is present, "[3]" otherwise.
func elemKey(el any, i int) string {
	if m, ok := el.(map[string]any); ok {
		for _, lf := range labelFields {
			if lv, ok := m[lf]; ok {
				return fmt.Sprintf("[%s=%v]", lf, lv)
			}
		}
	}
	return fmt.Sprintf("[%d]", i)
}

// runCompare is the -compare entry point: load both files, print the
// delta table.
func runCompare(oldPath, newPath string) error {
	oldRaw, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	newRaw, err := os.ReadFile(newPath)
	if err != nil {
		return err
	}
	fmt.Printf("benchgate: comparing %s -> %s\n", oldPath, newPath)
	return compareReports(os.Stdout, oldRaw, newRaw)
}

// Command tsunami-bench regenerates the tables and figures of the Tsunami
// paper's evaluation (§6) on generated datasets.
//
// Usage:
//
//	tsunami-bench -experiment fig7 -rows 200000
//	tsunami-bench -experiment sharded
//	tsunami-bench -experiment all -quick
//	tsunami-bench -experiment scan,concurrency,sharded -quick -json > BENCH.json
//
// Experiments: tab3, tab4, fig7, fig8, fig9a, fig9b, fig10, fig11a,
// fig11b, fig12a, fig12b, ablation, scan, groupby, concurrency, sharded,
// rebalance, traffic, all. -experiment accepts a comma-separated list; with
// -json the run emits one machine-readable bench.Report instead of tables
// (only scan, groupby, concurrency, sharded, obs, and traffic have JSON
// reporters — CI uploads that output as the per-PR BENCH artifact).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "comma-separated experiment ids (tab3, tab4, fig7..fig12b, ablation, scan, groupby, concurrency, sharded, rebalance, obs, traffic, all)")
		rows       = flag.Int("rows", 0, "base dataset rows (default 200000; paper used 184M-300M)")
		perType    = flag.Int("queries-per-type", 0, "queries per query type (default 100, as in the paper)")
		seed       = flag.Int64("seed", 42, "generator seed")
		quick      = flag.Bool("quick", false, "small fast run for smoke testing")
		asJSON     = flag.Bool("json", false, "emit one machine-readable JSON report (scan, groupby, concurrency, sharded, obs, traffic only)")
	)
	flag.Parse()

	o := bench.Options{
		Rows:           *rows,
		QueriesPerType: *perType,
		Seed:           *seed,
		Quick:          *quick,
	}
	ids := strings.Split(*experiment, ",")
	for i, id := range ids {
		ids[i] = strings.TrimSpace(id)
	}
	if *asJSON {
		if err := bench.RunJSON(os.Stdout, ids, o); err != nil {
			fmt.Fprintln(os.Stderr, "tsunami-bench:", err)
			os.Exit(2)
		}
		return
	}
	for _, id := range ids {
		if err := bench.Run(os.Stdout, id, o); err != nil {
			fmt.Fprintln(os.Stderr, "tsunami-bench:", err)
			os.Exit(2)
		}
	}
}

// Command tsunami-bench regenerates the tables and figures of the Tsunami
// paper's evaluation (§6) on generated datasets.
//
// Usage:
//
//	tsunami-bench -experiment fig7 -rows 200000
//	tsunami-bench -experiment sharded
//	tsunami-bench -experiment all -quick
//
// Experiments: tab3, tab4, fig7, fig8, fig9a, fig9b, fig10, fig11a,
// fig11b, fig12a, fig12b, ablation, concurrency, sharded, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (tab3, tab4, fig7..fig12b, ablation, concurrency, sharded, rebalance, all)")
		rows       = flag.Int("rows", 0, "base dataset rows (default 200000; paper used 184M-300M)")
		perType    = flag.Int("queries-per-type", 0, "queries per query type (default 100, as in the paper)")
		seed       = flag.Int64("seed", 42, "generator seed")
		quick      = flag.Bool("quick", false, "small fast run for smoke testing")
	)
	flag.Parse()

	o := bench.Options{
		Rows:           *rows,
		QueriesPerType: *perType,
		Seed:           *seed,
		Quick:          *quick,
	}
	if err := bench.Run(os.Stdout, *experiment, o); err != nil {
		fmt.Fprintln(os.Stderr, "tsunami-bench:", err)
		os.Exit(2)
	}
}

// Command tsunami-cli is an interactive shell over a Tsunami index: load or
// generate a dataset, run COUNT/SUM filter queries, EXPLAIN how the index
// answers them, stream inserts, and save/load the index.
//
//	tsunami-cli -dataset taxi -rows 100000
//	> count passengers=1 30<=pickup_zone<=60
//	> explain distance<=100 pickup_time>=900000
//	> sum fare distance<=100
//	> count distance<=100 by passengers
//	> insert 1000,1030,250,900,100,1000,2,17,42
//	> merge
//	> save /tmp/taxi.idx
//	> stats
//	> quit
//
// With -live the shell serves through a LiveStore: inserts are published
// copy-on-write and merge in the background once -merge-threshold rows
// are buffered, a shift detector watches the query stream and
// re-optimizes drifted regions, maintenance events are printed as they
// complete, and -snapshot/-snapshot-every persist crash-recovery
// snapshots (including buffered rows) while serving.
//
//	tsunami-cli -dataset taxi -live -merge-threshold 10000 \
//	    -snapshot /tmp/taxi.idx -snapshot-every 30s
//
// With -shards N the shell serves through a ShardedStore: rows are
// partitioned across N independent LiveStore shards (-partition range
// learns equi-depth cuts on -partition-dim; -partition hash spreads rows
// by a mixed hash), reads are routed to the shards the partitioner cannot
// prune, ingest to different shards runs in parallel, and
// -snapshot-dir/-snapshot-every maintain a recoverable snapshot
// directory. `save <dir>` writes a consistent multi-shard snapshot;
// -load <dir> recovers one — including directories left by a crash
// mid-rebalance, which are reconciled on recovery.
//
// With -rebalance-every the store also watches shard sizes and, when the
// largest shard exceeds -rebalance-skew times the mean, re-learns the
// range cuts and migrates rows between neighboring shards online —
// readers stay lock-free and exact throughout. `rebalance` triggers one
// manually; `stats` shows the skew, generation, and rows migrated.
//
//	tsunami-cli -dataset taxi -shards 4 -partition range \
//	    -rebalance-every 30s -rebalance-skew 2 \
//	    -snapshot-dir /tmp/taxi-shards -snapshot-every 30s
//
// Every mode records into one metrics registry: `stats` prints a unified
// serving summary (queries, latency quantiles, scan volume, ingest,
// maintenance) from it, `trace <query>` runs a query with explain-analyze
// stage timings, and -metrics ADDR serves the registry over HTTP —
// Prometheus text at /metrics, JSON quantiles at /statsz, and
// net/http/pprof under /debug/pprof/:
//
//	tsunami-cli -dataset taxi -live -metrics 127.0.0.1:9100
//	> trace count passengers=1
//	> stats
//
// In both serve modes SIGINT/SIGTERM shut down gracefully: ingest stops,
// maintenance quiesces, and a final snapshot is written before exit.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	tsunami "repro"
	"repro/internal/auggrid"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/gridtree"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/qparse"
	"repro/internal/query"
	"repro/internal/sharded"
	"repro/internal/workload"
	"repro/internal/wstats"
)

// session is the shell's target: a plain offline index, the same index
// served through a LiveStore (-live), or a ShardedStore (-shards N).
type session struct {
	idx   *core.Tsunami  // offline mode only
	live  *live.Store    // live mode only
	shard *sharded.Store // sharded mode only

	// ex fronts whichever target is active with the Executor's admission
	// control: shell queries go through Serve, so -max-inflight sheds and
	// -max-rows/-max-bytes reject over-budget queries at plan time.
	ex *tsunami.Executor

	// metrics is the registry every mode records into; the live and
	// sharded stores instrument themselves, the offline index is wrapped
	// here through qm so `stats` reads one schema regardless of mode.
	metrics *obs.Registry
	qm      *obs.QueryMetrics

	// wl is the workload-statistics collector behind `topq`, `slowlog`,
	// the stats workload lines, and /workloadz. The live and sharded
	// stores record into it themselves; plain mode records here.
	wl *wstats.Collector

	// lastSnap/lastStats anchor the rates (q/s, Mrows/s, GB/s) the
	// `stats` command prints for the interval since its previous run.
	lastSnap  obs.Snapshot
	lastStats time.Time

	// shutdown quiesces whichever serving mode is active (final
	// snapshots included); it is safe to call more than once.
	shutdown func()
}

func (s *session) index() *core.Tsunami {
	if s.live != nil {
		return s.live.Index()
	}
	if s.shard != nil {
		return s.shard.Shard(0).Index() // representative shard for explain/stats
	}
	return s.idx
}

func (s *session) execute(q query.Query) (colstore.ScanResult, error) {
	if s.live != nil || s.shard != nil {
		// The serving layer records its own metrics and workload stats;
		// the Executor adds admission on top.
		return s.ex.Serve(q, tsunami.PriorityInteractive)
	}
	start := time.Now()
	res, err := s.ex.Serve(q, tsunami.PriorityInteractive)
	if err != nil {
		return res, err
	}
	d := time.Since(start)
	s.qm.Observe(d, res.PointsScanned, res.BytesTouched)
	s.wl.Record(q, d, res.Count, res.PointsScanned, res.BytesTouched)
	return res, nil
}

// executeGrouped answers a GROUP BY query (parsed from a trailing
// "by <col>" clause), with the same admission and accounting split as
// execute: the serving layers record their own telemetry, plain mode
// records here.
func (s *session) executeGrouped(q query.Query) (colstore.GroupedResult, error) {
	if s.live != nil || s.shard != nil {
		return s.ex.ServeGrouped(q, tsunami.PriorityInteractive)
	}
	start := time.Now()
	res, err := s.ex.ServeGrouped(q, tsunami.PriorityInteractive)
	if err != nil {
		return res, err
	}
	d := time.Since(start)
	s.qm.Observe(d, res.PointsScanned, res.BytesTouched)
	s.wl.Record(q, d, res.TotalCount(), res.PointsScanned, res.BytesTouched)
	return res, nil
}

// executeTrace answers q with an explain-analyze trace, feeding the same
// metrics as execute so traced queries do not skew the aggregates.
func (s *session) executeTrace(q query.Query) (colstore.ScanResult, *obs.QueryTrace) {
	if s.live != nil {
		return s.live.ExecuteTrace(q)
	}
	if s.shard != nil {
		return s.shard.ExecuteTrace(q)
	}
	start := time.Now()
	res, tr := s.idx.ExecuteTrace(q)
	d := time.Since(start)
	s.qm.Observe(d, res.PointsScanned, res.BytesTouched)
	s.wl.Record(q, d, res.Count, res.PointsScanned, res.BytesTouched)
	return res, tr
}

// executeGroupedTrace is executeTrace for GROUP BY queries.
func (s *session) executeGroupedTrace(q query.Query) (colstore.GroupedResult, *obs.QueryTrace) {
	if s.live != nil {
		return s.live.ExecuteGroupedTrace(q)
	}
	if s.shard != nil {
		return s.shard.ExecuteGroupedTrace(q)
	}
	start := time.Now()
	res, tr := s.idx.ExecuteGroupedTrace(q)
	d := time.Since(start)
	s.qm.Observe(d, res.PointsScanned, res.BytesTouched)
	s.wl.Record(q, d, res.TotalCount(), res.PointsScanned, res.BytesTouched)
	return res, tr
}

func (s *session) insert(row []int64) error {
	if s.live != nil {
		return s.live.Insert(row)
	}
	if s.shard != nil {
		return s.shard.Insert(row)
	}
	return s.idx.Insert(row)
}

func (s *session) buffered() int {
	if s.shard != nil {
		return s.shard.Stats().BufferedRows
	}
	return s.index().NumBuffered()
}

func main() {
	var (
		dataset   = flag.String("dataset", "taxi", "dataset: tpch, taxi, perfmon, stocks, uniform, correlated")
		rows      = flag.Int("rows", 100_000, "rows to generate")
		dims      = flag.Int("dims", 8, "dimensions (synthetic datasets only)")
		seed      = flag.Int64("seed", 1, "generator seed")
		load      = flag.String("load", "", "load a saved index (file) or sharded snapshot (directory) instead of building")
		liveMode  = flag.Bool("live", false, "serve through a LiveStore: background merge, shift-triggered reoptimization")
		shards    = flag.Int("shards", 0, "serve through a ShardedStore with this many shards (0 = off)")
		partition = flag.String("partition", "range", "sharded partitioner: range (learned cuts) or hash")
		partDim   = flag.Int("partition-dim", 0, "dimension the sharded partitioner cuts or hashes on")
		mergeAt   = flag.Int("merge-threshold", 4096, "buffered rows triggering a background merge (-live, -shards)")
		regionAt  = flag.Int("region-merge-threshold", 0, "per-region buffered rows for partial merges, 0 = full merges (-live, -shards)")
		snapPath  = flag.String("snapshot", "", "periodic crash-recovery snapshot file (-live)")
		snapDir   = flag.String("snapshot-dir", "", "periodic crash-recovery snapshot directory (-shards)")
		snapEvery = flag.Duration("snapshot-every", 30*time.Second, "periodic snapshot interval (needs -snapshot or -snapshot-dir)")
		rebEvery  = flag.Duration("rebalance-every", 0, "shard imbalance check interval, 0 = no auto-rebalance (-shards with -partition range)")
		rebSkew   = flag.Float64("rebalance-skew", 2, "rebalance when the largest shard exceeds this multiple of the mean")
		metrics   = flag.String("metrics", "", "serve /metrics, /statsz, and /debug/pprof/ on this address (e.g. 127.0.0.1:9100)")
		cacheSize = flag.Int("cache", 4096, "epoch-keyed result cache entries, 0 = off (-live, -shards)")
		maxFlight = flag.Int("max-inflight", 0, "shed queries beyond this many in flight, 0 = no cap")
		maxRows   = flag.Uint64("max-rows", 0, "reject queries whose plan estimates more scanned rows, 0 = no budget")
		maxBytes  = flag.Uint64("max-bytes", 0, "reject queries whose plan estimates more touched bytes, 0 = no budget")
	)
	flag.Parse()
	if *liveMode && *shards > 0 {
		fatal(fmt.Errorf("-live and -shards are mutually exclusive"))
	}
	if *partition != "range" && *partition != "hash" {
		fatal(fmt.Errorf("unknown -partition %q (range, hash)", *partition))
	}
	// Reject the snapshot flag that the chosen mode would silently
	// ignore: an operator must not believe crash recovery is on when
	// nothing will ever be written.
	if *shards > 0 && *snapPath != "" {
		fatal(fmt.Errorf("-shards uses -snapshot-dir, not -snapshot"))
	}
	if *shards == 0 && *snapDir != "" {
		fatal(fmt.Errorf("-snapshot-dir needs -shards (use -snapshot with -live)"))
	}

	// One registry serves every mode: the live/sharded stores instrument
	// themselves through it, plain mode wraps index execution below, and
	// -metrics exposes it over HTTP. The workload collector rides along
	// the same way — the serving layer records into it per query, and
	// `topq`, `slowlog`, `stats`, and /workloadz read it back.
	reg := obs.NewRegistry()
	wl := wstats.New(wstats.Config{})

	liveCfg := live.Config{
		MergeThreshold:       *mergeAt,
		RegionMergeThreshold: *regionAt,
		CacheEntries:         *cacheSize,
		Metrics:              reg,
		Workload:             wl,
	}
	if *rebEvery > 0 && (*shards == 0 || *partition == "hash") {
		fatal(fmt.Errorf("-rebalance-every needs -shards with -partition range"))
	}
	shardCfg := sharded.Config{
		Shards:       *shards,
		Dim:          *partDim,
		Learned:      *partition != "hash",
		CacheEntries: *cacheSize,
		Metrics:      reg,
		Workload:     wl,
		Live:         liveCfg,
		SnapshotDir:  *snapDir,
		OnEvent:      printShardEvent,
		Rebalance: sharded.RebalanceConfig{
			CheckInterval: *rebEvery,
			MaxSkew:       *rebSkew,
		},
	}
	if *snapDir != "" {
		shardCfg.Live.SnapshotInterval = *snapEvery
	}

	s := &session{
		metrics:   reg,
		qm:        obs.NewQueryMetrics(reg),
		wl:        wl,
		lastStats: time.Now(),
		shutdown:  func() {},
	}
	var names []string
	var work []query.Query

	switch {
	case *shards > 0 && *load != "":
		st, err := sharded.Recover(*load, nil, shardCfg)
		if err != nil {
			fatal(err)
		}
		s.shard = st
		names = st.Shard(0).Index().Store().Names()
		fmt.Printf("recovered sharded store: %d shards (%s), %d rows\n",
			st.NumShards(), st.Partitioner(), st.Stats().ClusteredRows+st.Stats().BufferedRows)
	case *shards > 0:
		ds := generate(*dataset, *rows, *dims, *seed)
		work = workload.ForDataset(ds, 100, *seed+1)
		names = ds.Store.Names()
		fmt.Printf("building %d-shard Tsunami over %s (%d rows, %d dims, %d sample queries)...\n",
			*shards, ds.Name, ds.Rows(), ds.Dims(), len(work))
		start := time.Now()
		st, err := sharded.Open(ds.Store, work, buildConfig(*seed), shardCfg)
		if err != nil {
			fatal(err)
		}
		s.shard = st
		fmt.Printf("built in %.1fs; partitioner %s; columns: %s\n",
			time.Since(start).Seconds(), st.Partitioner(), strings.Join(names, ", "))
	case *load != "":
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		idx, err := core.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		s.idx = idx
		names = idx.Store().Names()
		fmt.Printf("loaded index: %d rows, %d dims\n", idx.Store().NumRows(), idx.Store().NumDims())
	default:
		ds := generate(*dataset, *rows, *dims, *seed)
		work = workload.ForDataset(ds, 100, *seed+1)
		fmt.Printf("building Tsunami over %s (%d rows, %d dims, %d sample queries)...\n",
			ds.Name, ds.Rows(), ds.Dims(), len(work))
		start := time.Now()
		s.idx = core.Build(ds.Store, work, buildConfig(*seed))
		names = s.idx.Store().Names()
		fmt.Printf("built in %.1fs; columns: %s\n", time.Since(start).Seconds(), strings.Join(names, ", "))
	}

	if *liveMode {
		cfg := liveCfg
		cfg.OnEvent = printLiveEvent
		if *snapPath != "" {
			cfg.SnapshotPath = *snapPath
			cfg.SnapshotInterval = *snapEvery
		}
		// A loaded index has no sample workload to fingerprint, so shift
		// detection only runs for freshly built indexes.
		s.live = live.Open(s.idx, work, cfg)
		s.idx = nil
		fmt.Printf("live serving: merge threshold %d, shift detection %v\n",
			*mergeAt, s.live.Stats().DetectorTypes > 0)
	}

	// Plain offline mode: the serving layers bind the collector inside
	// their Open paths; here the session records manually, so bind the
	// table directly (slow-query exemplars trace through the core index,
	// which records nothing, so a capture cannot re-enter the collector).
	if s.idx != nil {
		idx := s.idx
		st := idx.Store()
		lo := make([]int64, st.NumDims())
		hi := make([]int64, st.NumDims())
		for d := range lo {
			lo[d], hi[d] = st.MinMax(d)
		}
		wl.Bind(wstats.Binding{
			DimNames: st.Names(),
			DomainLo: lo,
			DomainHi: hi,
			Rows:     func() uint64 { return uint64(idx.Store().NumRows() + idx.NumBuffered()) },
			Trace: func(q query.Query) *obs.QueryTrace {
				_, tr := idx.ExecuteTrace(q)
				return tr
			},
		})
	}

	// Every mode serves through one Executor so the admission flags apply
	// uniformly (and the tsunami_admission_* fields always exist on
	// /statsz, at 0 when admission is off). The serving stores instrument
	// and record workload stats themselves; plain mode records in execute.
	admission := tsunami.AdmissionConfig{
		MaxInFlight: *maxFlight,
		MaxRows:     *maxRows,
		MaxBytes:    *maxBytes,
	}
	switch {
	case s.live != nil:
		s.ex = tsunami.NewExecutorSource(s.live, tsunami.ExecutorOptions{Metrics: reg, Admission: admission})
	case s.shard != nil:
		s.ex = tsunami.NewExecutorSource(s.shard, tsunami.ExecutorOptions{Metrics: reg, Admission: admission})
	default:
		s.ex = tsunami.NewExecutor(s.idx, tsunami.ExecutorOptions{Metrics: reg, Admission: admission})
	}

	// The observability endpoint binds synchronously so a bad address
	// fails loudly instead of the operator scraping a port nothing holds.
	var srv *http.Server
	if *metrics != "" {
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fatal(err)
		}
		srv = &http.Server{Handler: obs.Handler(reg,
			obs.Route{Path: "/workloadz", Handler: wstats.HTTPHandler(wl)})}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "tsunami-cli: metrics endpoint:", err)
			}
		}()
		fmt.Printf("metrics: http://%s/metrics (also /statsz, /workloadz, /debug/pprof/)\n", ln.Addr())
	}

	// Graceful shutdown, in dependency order: stop ingest and quiesce
	// maintenance (final snapshots included), drain the workload
	// collector, then let in-flight scrapes finish before the HTTP server
	// goes away. Ctrl-C on a plain offline shell just stops the endpoint.
	var finals []func()
	finals = append(finals, s.ex.Close)
	switch {
	case s.live != nil:
		ls := s.live
		finals = append(finals, func() {
			fmt.Println("shutting down: quiescing maintenance...")
			if err := ls.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "tsunami-cli: final snapshot:", err)
			}
		})
	case s.shard != nil:
		st := s.shard
		finals = append(finals, func() {
			fmt.Println("shutting down: quiescing shard maintenance...")
			if err := st.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "tsunami-cli: final snapshots:", err)
			}
		})
	}
	finals = append(finals, wl.Close)
	if srv != nil {
		finals = append(finals, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "tsunami-cli: metrics shutdown:", err)
			}
		})
	}
	var quiesce sync.Once
	s.shutdown = func() {
		quiesce.Do(func() {
			for _, f := range finals {
				f()
			}
		})
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println()
		s.shutdown()
		os.Exit(0)
	}()

	// Anchor the first `stats` rate window at serve time so build work
	// never dilutes the q/s and GB/s figures.
	s.lastSnap, s.lastStats = reg.Snapshot(), time.Now()

	fmt.Println(`type "help" for commands`)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			if quit := eval(s, names, line); quit {
				s.shutdown()
				return
			}
		}
		fmt.Print("> ")
	}
	s.shutdown()
}

func buildConfig(seed int64) core.Config {
	return core.Config{
		GridTree: gridtree.Config{MaxNodes: 64},
		Grid: auggrid.OptimizeConfig{
			Eval:     auggrid.EvalConfig{SampleSize: 2048, MaxQueries: 64, Seed: seed},
			MaxCells: 1 << 16,
			MaxIters: 4,
			Seed:     seed,
		},
	}
}

func printLiveEvent(ev live.Event) {
	switch ev.Kind {
	case live.EventMerge:
		fmt.Printf("\n[live] merged %d rows in %.2fs (epoch %d)\n> ", ev.MergedRows, ev.Seconds, ev.Epoch)
	case live.EventReoptimize:
		fmt.Printf("\n[live] workload shift: re-optimized %d regions in %.2fs (epoch %d)\n> ", ev.RegionsRebuilt, ev.Seconds, ev.Epoch)
	case live.EventSnapshot:
		fmt.Printf("\n[live] snapshot written in %.2fs\n> ", ev.Seconds)
	case live.EventError:
		fmt.Printf("\n[live] maintenance error: %v\n> ", ev.Err)
	}
}

func printShardEvent(ev sharded.Event) {
	switch ev.Kind {
	case live.EventMerge:
		fmt.Printf("\n[shard %d] merged %d rows in %.2fs (epoch %d)\n> ", ev.Shard, ev.MergedRows, ev.Seconds, ev.Epoch)
	case live.EventReoptimize:
		fmt.Printf("\n[shard %d] workload shift: re-optimized %d regions in %.2fs (epoch %d)\n> ", ev.Shard, ev.RegionsRebuilt, ev.Seconds, ev.Epoch)
	case live.EventSnapshot:
		fmt.Printf("\n[shard %d] snapshot written in %.2fs\n> ", ev.Shard, ev.Seconds)
	case live.EventRebalance:
		fmt.Printf("\n[store] rebalanced: migrated %d rows in %.2fs (generation %d)\n> ", ev.MergedRows, ev.Seconds, ev.Epoch)
	case live.EventError:
		if ev.Shard < 0 {
			fmt.Printf("\n[store] rebalance error: %v\n> ", ev.Err)
		} else {
			fmt.Printf("\n[shard %d] maintenance error: %v\n> ", ev.Shard, ev.Err)
		}
	}
}

// eval executes one command; returns true to quit.
func eval(s *session, names []string, line string) bool {
	verb := strings.ToLower(strings.Fields(line)[0])
	switch verb {
	case "quit", "exit":
		return true
	case "help":
		fmt.Print(`commands:
  count <pred>...        COUNT(*) under the predicates, e.g. count qty=3 10<=day<=20
  sum <col> <pred>...    SUM(col)
                         append "by <col>" for a grouped aggregate (GROUP BY),
                         e.g. count day<=100 by store / sum price by qty
  explain <pred>...      show which regions/cells the query touches (plan only)
  trace <count|sum ...>  explain-analyze: run the query, show per-stage and per-shard timings
  stats                  index structure + serving telemetry (latency quantiles, scan volume)
  topq [n]               heaviest query shapes by count with per-shape latency (default 10)
  slowlog                slow-query log: queries beyond the adaptive p99 threshold, with traces
  insert v1,v2,...       add a row (live/sharded: visible immediately, merged in background)
  merge                  fold buffered rows into the clustered layout now
  rebalance              re-learn shard cuts and migrate rows online (sharded, range partitioner)
  save <file|dir>        persist the index (sharded: a snapshot directory)
  quit
`)
	case "stats":
		printStats(s)
	case "topq":
		n := 10
		if fields := strings.Fields(line); len(fields) == 2 {
			v, err := strconv.Atoi(fields[1])
			if err != nil || v <= 0 {
				fmt.Println("usage: topq [n]")
				return false
			}
			n = v
		}
		s.wl.Sync()
		snap := s.wl.Snapshot()
		if len(snap.Fingerprints) == 0 {
			fmt.Println("no queries sampled yet")
			return false
		}
		if n > len(snap.Fingerprints) {
			n = len(snap.Fingerprints)
		}
		fmt.Printf("top %d query shapes (%s recorded, %d sampled 1-in-%d):\n",
			n, fmtCount(snap.Queries), snap.Sampled, snap.SampleEvery)
		for i, f := range snap.Fingerprints[:n] {
			fmt.Printf("#%d %-44s count~%d", i+1, f.Shape, f.Count)
			if f.ErrBound > 0 {
				fmt.Printf(" (±%d)", f.ErrBound)
			}
			fmt.Printf("  %.1f%%  p50 %s  p99 %s\n",
				100*f.Share, fmtSec(f.P50Seconds), fmtSec(f.P99Seconds))
		}
	case "slowlog":
		s.wl.Sync()
		snap := s.wl.Snapshot()
		if snap.SlowThresholdSeconds == 0 {
			fmt.Printf("slow threshold not armed yet (%d sampled; it arms from the sampled p99)\n", snap.Sampled)
			return false
		}
		fmt.Printf("slow-query log: threshold %s (adaptive p99-based), %d slow seen, %d exemplars:\n",
			fmtSec(snap.SlowThresholdSeconds), snap.SlowSeen, len(snap.Slow))
		for _, e := range snap.Slow {
			fmt.Printf("[%s] %s — %s (matched %d, scanned %d rows, %s)\n",
				e.When.Format("15:04:05.000"), e.Query, fmtSec(e.Seconds),
				e.Matched, e.Rows, fmtBytes(e.Bytes))
			if e.Trace != "" {
				fmt.Print(e.Trace)
			}
		}
	case "trace":
		rest := strings.TrimSpace(line[len("trace"):])
		if rest == "" {
			fmt.Println("usage: trace <count|sum ...>, e.g. trace count qty=3 10<=day<=20")
			return false
		}
		q, err := qparse.Parse(rest, names)
		if err != nil {
			fmt.Println(err)
			return false
		}
		if q.Grouped() {
			res, tr := s.executeGroupedTrace(q)
			fmt.Print(tr.String())
			printGrouped(q, names, res, 0)
			return false
		}
		res, tr := s.executeTrace(q)
		fmt.Print(tr.String())
		if strings.HasPrefix(strings.ToLower(rest), "sum") {
			fmt.Printf("sum=%d count=%d avg=%.2f\n", res.Sum, res.Count, res.Avg())
		} else {
			fmt.Printf("count=%d\n", res.Count)
		}
	case "insert":
		rest := strings.TrimSpace(line[len("insert"):])
		parts := strings.Split(rest, ",")
		row := make([]int64, 0, len(parts))
		for _, p := range parts {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				fmt.Printf("bad value %q\n", p)
				return false
			}
			row = append(row, v)
		}
		if err := s.insert(row); err != nil {
			fmt.Println(err)
			return false
		}
		fmt.Printf("inserted (%d pending merge)\n", s.buffered())
	case "merge":
		start := time.Now()
		var err error
		switch {
		case s.live != nil:
			err = s.live.Flush()
		case s.shard != nil:
			err = s.shard.Flush()
		default:
			err = s.idx.MergeDeltas()
		}
		if err != nil {
			fmt.Println(err)
			return false
		}
		if s.shard != nil {
			fmt.Printf("merged in %v; shards now hold %d rows\n", time.Since(start), s.shard.Stats().ClusteredRows)
		} else {
			fmt.Printf("merged in %v; table now %d rows\n", time.Since(start), s.index().Store().NumRows())
		}
	case "rebalance":
		if s.shard == nil {
			fmt.Println("rebalance needs -shards")
			return false
		}
		before := s.shard.Stats()
		start := time.Now()
		if err := s.shard.Rebalance(); err != nil {
			fmt.Println(err)
			return false
		}
		after := s.shard.Stats()
		skew, _ := s.shard.Skew()
		fmt.Printf("rebalanced in %v: migrated %d rows (generation %d, skew now %.2fx)\n",
			time.Since(start), after.RowsMigrated-before.RowsMigrated, after.Generation, skew)
	case "save":
		fields := strings.Fields(line)
		if len(fields) != 2 {
			fmt.Println("usage: save <file|dir>")
			return false
		}
		if s.shard != nil {
			if err := s.shard.Save(fields[1]); err != nil {
				fmt.Println(err)
				return false
			}
			fmt.Printf("saved %d-shard snapshot to %s\n", s.shard.NumShards(), fields[1])
			return false
		}
		f, err := os.Create(fields[1])
		if err != nil {
			fmt.Println(err)
			return false
		}
		if s.live != nil {
			err = s.live.Snapshot(f)
		} else {
			err = s.idx.Save(f)
		}
		f.Close()
		if err != nil {
			fmt.Println(err)
			return false
		}
		fmt.Printf("saved to %s\n", fields[1])
	case "count", "sum", "explain":
		q, err := qparse.Parse(line, names)
		if err != nil {
			fmt.Println(err)
			return false
		}
		if verb == "explain" {
			fmt.Print(s.index().Explain(q))
			return false
		}
		if q.Grouped() {
			start := time.Now()
			res, err := s.executeGrouped(q)
			if err != nil {
				fmt.Println(err)
				return false
			}
			printGrouped(q, names, res, time.Since(start))
			return false
		}
		start := time.Now()
		res, err := s.execute(q)
		if err != nil {
			fmt.Println(err)
			return false
		}
		elapsed := time.Since(start)
		if verb == "sum" {
			fmt.Printf("sum=%d count=%d avg=%.2f (scanned %d rows in %v)\n", res.Sum, res.Count, res.Avg(), res.PointsScanned, elapsed)
		} else {
			fmt.Printf("count=%d (scanned %d rows in %v)\n", res.Count, res.PointsScanned, elapsed)
		}
	default:
		fmt.Printf("unknown command %q (try help)\n", verb)
	}
	return false
}

// printGrouped renders a grouped aggregate: one line per group key,
// sorted by key (the merge order), with sum/avg columns only for SUM
// queries. elapsed == 0 suppresses the timing suffix (trace already
// printed stage timings).
func printGrouped(q query.Query, names []string, res colstore.GroupedResult, elapsed time.Duration) {
	gname := fmt.Sprintf("d%d", q.GroupDim())
	if d := q.GroupDim(); d >= 0 && d < len(names) {
		gname = names[d]
	}
	for _, g := range res.Groups {
		if q.Agg == query.Sum {
			fmt.Printf("%s=%d: count=%d sum=%d avg=%.2f\n", gname, g.Key, g.Count, g.Sum, g.Avg())
		} else {
			fmt.Printf("%s=%d: count=%d\n", gname, g.Key, g.Count)
		}
	}
	if elapsed > 0 {
		fmt.Printf("%d groups, %d rows matched (scanned %d rows in %v)\n",
			len(res.Groups), res.TotalCount(), res.PointsScanned, elapsed)
	} else {
		fmt.Printf("%d groups, %d rows matched\n", len(res.Groups), res.TotalCount())
	}
}

// printStats prints the index-structure block (Tab 4 of the paper)
// followed by one serving block whose schema is identical across the
// plain, live, and sharded modes — every figure in it is sourced from the
// shared metrics registry, so `stats` and a /metrics scrape can never
// disagree. Rates cover the window since the previous stats command.
func printStats(s *session) {
	idx := s.index()
	st := idx.IndexStats()
	fmt.Printf("grid tree: %d nodes, depth %d, %d regions\n", st.NumGridTreeNodes, st.GridTreeDepth, st.NumLeafRegions)
	fmt.Printf("points/region: min=%d median=%d max=%d\n", st.MinPointsPerRegion, st.MedianPointsPerRegion, st.MaxPointsPerRegion)
	fmt.Printf("avg FMs/region=%.2f avg CCDFs/region=%.2f, %d grid cells, %d bytes, %d buffered inserts\n",
		st.AvgFMsPerRegion, st.AvgCCDFsPerRegion, st.TotalGridCells, idx.SizeBytes(), idx.NumBuffered())

	now := time.Now()
	snap := s.metrics.Snapshot()
	delta := snap.Diff(s.lastSnap)
	dt := now.Sub(s.lastStats).Seconds()
	s.lastSnap, s.lastStats = snap, now

	// End-to-end latency: the scatter-gather histogram when sharding (the
	// shared query-path histogram then counts per-shard executes), the
	// shared histogram otherwise.
	latName := obs.MQueryLatency
	if s.shard != nil {
		latName = obs.MShardedQueryLatency
	}
	lat := snap.Hists[latName]

	fmt.Printf("serving (rates over last %.1fs):\n", dt)
	fmt.Printf("  %-12s %s total, %s | %s\n", "queries",
		fmtCount(lat.Count()), fmtRate(float64(delta.Hists[latName].Count()), dt, "q/s"),
		fmtQuantiles(lat))
	fmt.Printf("  %-12s %s rows, %s | %s, %s\n", "scanned",
		fmtCount(snap.Counters[obs.MScanRows]), fmtBytes(snap.Counters[obs.MScanBytes]),
		fmtRate(float64(delta.Counters[obs.MScanRows])/1e6, dt, "Mrows/s"),
		fmtRate(float64(delta.Counters[obs.MScanBytes])/1e9, dt, "GB/s"))
	fmt.Printf("  %-12s %d rows buffered, %s ingested | ingest p99 %s\n", "ingest",
		s.buffered(), fmtCount(snap.Counters[obs.MLiveIngestRows]),
		fmtQuantile(snap.Hists[obs.MLiveIngestLatency], 0.99))
	if hits, ok := snap.Counters[obs.MCacheHits]; ok {
		misses := snap.Counters[obs.MCacheMisses]
		rate := "-"
		if total := hits + misses; total > 0 {
			rate = fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(total))
		}
		fmt.Printf("  %-12s %s hits, %s misses (%s hit rate), %d entries, %s evictions\n", "cache",
			fmtCount(hits), fmtCount(misses), rate,
			int64(snap.Gauges[obs.MCacheEntries]), fmtCount(snap.Counters[obs.MCacheEvictions]))
	}
	if admitted, ok := snap.Counters[obs.MAdmissionAdmitted]; ok {
		fmt.Printf("  %-12s %s admitted, %s shed, %s over budget, %d in flight\n", "admission",
			fmtCount(admitted), fmtCount(snap.Counters[obs.MAdmissionShed]),
			fmtCount(snap.Counters[obs.MAdmissionBudget]),
			int64(snap.Gauges[obs.MAdmissionInFlight]))
	}
	fmt.Printf("  %-12s %d merges, %d reoptimizations (%d detector fires), %d snapshots", "maintenance",
		snap.Counters[obs.MLiveMerges], snap.Counters[obs.MLiveReoptimizes],
		snap.Counters[obs.MLiveDetectorFires], snap.Counters[obs.MLiveSnapshots])
	if e, ok := snap.Gauges[obs.MLiveEpoch]; ok {
		fmt.Printf(", epoch %d", int64(e))
	}
	fmt.Println()

	s.wl.Sync()
	wsnap := s.wl.Snapshot()
	fmt.Printf("  %-12s %s recorded (%d sampled 1-in-%d)", "workload",
		fmtCount(wsnap.Queries), wsnap.Sampled, wsnap.SampleEvery)
	if wsnap.SlowThresholdSeconds > 0 {
		fmt.Printf(", slow >%s: %d seen", fmtSec(wsnap.SlowThresholdSeconds), wsnap.SlowSeen)
	}
	fmt.Println()
	for i, f := range wsnap.Fingerprints {
		if i >= 3 {
			break
		}
		fmt.Printf("  %-12s #%d %s — %.1f%%, p99 %s\n", "",
			i+1, f.Shape, 100*f.Share, fmtSec(f.P99Seconds))
	}
	for _, o := range wsnap.SLO {
		fmt.Printf("  %-12s <%s target %.2f%%: %.3f%% bad, burn %.2fx\n", "slo",
			fmtSec(o.LatencySeconds), 100*o.Target, 100*o.BadFrac, o.BurnRate)
	}

	if s.shard == nil {
		return
	}
	fanout := snap.Hists[obs.MShardedFanout]
	fmt.Printf("  %-12s fan-out mean %.2f, %s shard scans, %s pruned\n", "routing",
		fanout.Mean(),
		fmtCount(snap.Counters[obs.MShardedShardsScanned]),
		fmtCount(snap.Counters[obs.MShardedShardsPruned]))
	fmt.Printf("  %-12s %d rebalances, %s rows migrated, skew %.2fx\n", "rebalance",
		snap.Counters[obs.MShardedRebalances],
		fmtCount(snap.Counters[obs.MShardedRowsMigrated]),
		snap.Gauges[obs.MShardedSkew])
	for i := 0; i < s.shard.NumShards(); i++ {
		label := fmt.Sprintf(`{shard="%d"}`, i)
		fmt.Printf("  %-12s epoch %d, %d buffered rows\n", fmt.Sprintf("shard %d", i),
			int64(snap.Gauges[obs.MLiveEpoch+label]),
			int64(snap.Gauges[obs.MLiveBufferedRows+label]))
	}
}

// fmtQuantiles renders a latency histogram's tail, or a placeholder
// before the first query so the schema keeps its shape.
func fmtQuantiles(h obs.HistSnapshot) string {
	if h.Count() == 0 {
		return "no queries yet"
	}
	return fmt.Sprintf("p50 %s  p95 %s  p99 %s  p999 %s",
		fmtQuantile(h, 0.5), fmtQuantile(h, 0.95),
		fmtQuantile(h, 0.99), fmtQuantile(h, 0.999))
}

// fmtQuantile renders one quantile, or "-" when the histogram has no
// samples yet (an empty histogram has no defined quantiles).
func fmtQuantile(h obs.HistSnapshot, q float64) string {
	v, ok := h.QuantileOK(q)
	if !ok {
		return "-"
	}
	return fmtSec(v)
}

func fmtSec(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(time.Microsecond).String()
}

func fmtRate(v, dt float64, unit string) string {
	if dt <= 0 {
		return "- " + unit
	}
	return fmt.Sprintf("%.2f %s", v/dt, unit)
}

func fmtCount(n uint64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fB", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	}
	return strconv.FormatUint(n, 10)
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return strconv.FormatUint(n, 10) + " B"
}

func generate(name string, rows, dims int, seed int64) *datasets.Dataset {
	switch strings.ToLower(name) {
	case "tpch":
		return datasets.TPCH(rows, seed)
	case "taxi":
		return datasets.Taxi(rows, seed)
	case "perfmon":
		return datasets.Perfmon(rows, seed)
	case "stocks":
		return datasets.Stocks(rows, seed)
	case "uniform":
		return datasets.SyntheticUniform(rows, dims, seed)
	case "correlated":
		return datasets.SyntheticCorrelated(rows, dims, seed)
	default:
		fatal(fmt.Errorf("unknown dataset %q", name))
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tsunami-cli:", err)
	os.Exit(1)
}

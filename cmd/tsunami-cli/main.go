// Command tsunami-cli is an interactive shell over a Tsunami index: load or
// generate a dataset, run COUNT/SUM filter queries, EXPLAIN how the index
// answers them, stream inserts, and save/load the index.
//
//	tsunami-cli -dataset taxi -rows 100000
//	> count passengers=1 30<=pickup_zone<=60
//	> explain distance<=100 pickup_time>=900000
//	> sum fare distance<=100
//	> insert 1000,1030,250,900,100,1000,2,17,42
//	> merge
//	> save /tmp/taxi.idx
//	> stats
//	> quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/auggrid"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/gridtree"
	"repro/internal/qparse"
	"repro/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "taxi", "dataset: tpch, taxi, perfmon, stocks, uniform, correlated")
		rows    = flag.Int("rows", 100_000, "rows to generate")
		dims    = flag.Int("dims", 8, "dimensions (synthetic datasets only)")
		seed    = flag.Int64("seed", 1, "generator seed")
		load    = flag.String("load", "", "load a saved index instead of building one")
	)
	flag.Parse()

	var idx *core.Tsunami
	var names []string

	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		idx, err = core.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		names = idx.Store().Names()
		fmt.Printf("loaded index: %d rows, %d dims\n", idx.Store().NumRows(), idx.Store().NumDims())
	} else {
		ds := generate(*dataset, *rows, *dims, *seed)
		work := workload.ForDataset(ds, 100, *seed+1)
		fmt.Printf("building Tsunami over %s (%d rows, %d dims, %d sample queries)...\n",
			ds.Name, ds.Rows(), ds.Dims(), len(work))
		start := time.Now()
		idx = core.Build(ds.Store, work, core.Config{
			GridTree: gridtree.Config{MaxNodes: 64},
			Grid: auggrid.OptimizeConfig{
				Eval:     auggrid.EvalConfig{SampleSize: 2048, MaxQueries: 64, Seed: *seed},
				MaxCells: 1 << 16,
				MaxIters: 4,
				Seed:     *seed,
			},
		})
		names = idx.Store().Names()
		fmt.Printf("built in %.1fs; columns: %s\n", time.Since(start).Seconds(), strings.Join(names, ", "))
	}
	fmt.Println(`type "help" for commands`)

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			if quit := eval(idx, names, line); quit {
				return
			}
		}
		fmt.Print("> ")
	}
}

// eval executes one command; returns true to quit.
func eval(idx *core.Tsunami, names []string, line string) bool {
	verb := strings.ToLower(strings.Fields(line)[0])
	switch verb {
	case "quit", "exit":
		return true
	case "help":
		fmt.Print(`commands:
  count <pred>...        COUNT(*) under the predicates, e.g. count qty=3 10<=day<=20
  sum <col> <pred>...    SUM(col)
  explain <pred>...      show which regions/cells the query touches
  stats                  index structure statistics (Tab 4 of the paper)
  insert v1,v2,...       buffer a new row (delta sibling)
  merge                  fold buffered rows into the clustered layout
  save <file>            persist the index
  quit
`)
	case "stats":
		s := idx.IndexStats()
		fmt.Printf("grid tree: %d nodes, depth %d, %d regions\n", s.NumGridTreeNodes, s.GridTreeDepth, s.NumLeafRegions)
		fmt.Printf("points/region: min=%d median=%d max=%d\n", s.MinPointsPerRegion, s.MedianPointsPerRegion, s.MaxPointsPerRegion)
		fmt.Printf("avg FMs/region=%.2f avg CCDFs/region=%.2f, %d grid cells, %d bytes, %d buffered inserts\n",
			s.AvgFMsPerRegion, s.AvgCCDFsPerRegion, s.TotalGridCells, idx.SizeBytes(), idx.NumBuffered())
	case "insert":
		rest := strings.TrimSpace(line[len("insert"):])
		parts := strings.Split(rest, ",")
		row := make([]int64, 0, len(parts))
		for _, p := range parts {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				fmt.Printf("bad value %q\n", p)
				return false
			}
			row = append(row, v)
		}
		if err := idx.Insert(row); err != nil {
			fmt.Println(err)
			return false
		}
		fmt.Printf("buffered (%d pending)\n", idx.NumBuffered())
	case "merge":
		start := time.Now()
		if err := idx.MergeDeltas(); err != nil {
			fmt.Println(err)
			return false
		}
		fmt.Printf("merged in %v; table now %d rows\n", time.Since(start), idx.Store().NumRows())
	case "save":
		fields := strings.Fields(line)
		if len(fields) != 2 {
			fmt.Println("usage: save <file>")
			return false
		}
		f, err := os.Create(fields[1])
		if err != nil {
			fmt.Println(err)
			return false
		}
		err = idx.Save(f)
		f.Close()
		if err != nil {
			fmt.Println(err)
			return false
		}
		fmt.Printf("saved to %s\n", fields[1])
	case "count", "sum", "explain":
		q, err := qparse.Parse(line, names)
		if err != nil {
			fmt.Println(err)
			return false
		}
		if verb == "explain" {
			fmt.Print(idx.Explain(q))
			return false
		}
		start := time.Now()
		res := idx.Execute(q)
		elapsed := time.Since(start)
		if verb == "sum" {
			fmt.Printf("sum=%d count=%d (scanned %d rows in %v)\n", res.Sum, res.Count, res.PointsScanned, elapsed)
		} else {
			fmt.Printf("count=%d (scanned %d rows in %v)\n", res.Count, res.PointsScanned, elapsed)
		}
	default:
		fmt.Printf("unknown command %q (try help)\n", verb)
	}
	return false
}

func generate(name string, rows, dims int, seed int64) *datasets.Dataset {
	switch strings.ToLower(name) {
	case "tpch":
		return datasets.TPCH(rows, seed)
	case "taxi":
		return datasets.Taxi(rows, seed)
	case "perfmon":
		return datasets.Perfmon(rows, seed)
	case "stocks":
		return datasets.Stocks(rows, seed)
	case "uniform":
		return datasets.SyntheticUniform(rows, dims, seed)
	case "correlated":
		return datasets.SyntheticCorrelated(rows, dims, seed)
	default:
		fatal(fmt.Errorf("unknown dataset %q", name))
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tsunami-cli:", err)
	os.Exit(1)
}

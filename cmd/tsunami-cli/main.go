// Command tsunami-cli is an interactive shell over a Tsunami index: load or
// generate a dataset, run COUNT/SUM filter queries, EXPLAIN how the index
// answers them, stream inserts, and save/load the index.
//
//	tsunami-cli -dataset taxi -rows 100000
//	> count passengers=1 30<=pickup_zone<=60
//	> explain distance<=100 pickup_time>=900000
//	> sum fare distance<=100
//	> insert 1000,1030,250,900,100,1000,2,17,42
//	> merge
//	> save /tmp/taxi.idx
//	> stats
//	> quit
//
// With -live the shell serves through a LiveStore: inserts are published
// copy-on-write and merge in the background once -merge-threshold rows
// are buffered, a shift detector watches the query stream and
// re-optimizes drifted regions, maintenance events are printed as they
// complete, and -snapshot/-snapshot-every persist crash-recovery
// snapshots (including buffered rows) while serving.
//
//	tsunami-cli -dataset taxi -live -merge-threshold 10000 \
//	    -snapshot /tmp/taxi.idx -snapshot-every 30s
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/auggrid"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/gridtree"
	"repro/internal/live"
	"repro/internal/qparse"
	"repro/internal/query"
	"repro/internal/workload"
)

// session is the shell's target: a plain offline index, or the same index
// served through a LiveStore (-live).
type session struct {
	idx  *core.Tsunami // offline mode only
	live *live.Store   // live mode only
}

func (s *session) index() *core.Tsunami {
	if s.live != nil {
		return s.live.Index()
	}
	return s.idx
}

func (s *session) execute(q query.Query) colstore.ScanResult {
	if s.live != nil {
		return s.live.Execute(q)
	}
	return s.idx.Execute(q)
}

func main() {
	var (
		dataset   = flag.String("dataset", "taxi", "dataset: tpch, taxi, perfmon, stocks, uniform, correlated")
		rows      = flag.Int("rows", 100_000, "rows to generate")
		dims      = flag.Int("dims", 8, "dimensions (synthetic datasets only)")
		seed      = flag.Int64("seed", 1, "generator seed")
		load      = flag.String("load", "", "load a saved index instead of building one")
		liveMode  = flag.Bool("live", false, "serve through a LiveStore: background merge, shift-triggered reoptimization")
		mergeAt   = flag.Int("merge-threshold", 4096, "buffered rows triggering a background merge (-live)")
		snapPath  = flag.String("snapshot", "", "periodic crash-recovery snapshot file (-live)")
		snapEvery = flag.Duration("snapshot-every", 30*time.Second, "periodic snapshot interval (-live, needs -snapshot)")
	)
	flag.Parse()

	var idx *core.Tsunami
	var names []string
	var work []query.Query

	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		idx, err = core.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		names = idx.Store().Names()
		fmt.Printf("loaded index: %d rows, %d dims\n", idx.Store().NumRows(), idx.Store().NumDims())
	} else {
		ds := generate(*dataset, *rows, *dims, *seed)
		work = workload.ForDataset(ds, 100, *seed+1)
		fmt.Printf("building Tsunami over %s (%d rows, %d dims, %d sample queries)...\n",
			ds.Name, ds.Rows(), ds.Dims(), len(work))
		start := time.Now()
		idx = core.Build(ds.Store, work, core.Config{
			GridTree: gridtree.Config{MaxNodes: 64},
			Grid: auggrid.OptimizeConfig{
				Eval:     auggrid.EvalConfig{SampleSize: 2048, MaxQueries: 64, Seed: *seed},
				MaxCells: 1 << 16,
				MaxIters: 4,
				Seed:     *seed,
			},
		})
		names = idx.Store().Names()
		fmt.Printf("built in %.1fs; columns: %s\n", time.Since(start).Seconds(), strings.Join(names, ", "))
	}

	s := &session{idx: idx}
	if *liveMode {
		cfg := live.Config{
			MergeThreshold: *mergeAt,
			OnEvent: func(ev live.Event) {
				switch ev.Kind {
				case live.EventMerge:
					fmt.Printf("\n[live] merged %d rows in %.2fs (epoch %d)\n> ", ev.MergedRows, ev.Seconds, ev.Epoch)
				case live.EventReoptimize:
					fmt.Printf("\n[live] workload shift: re-optimized %d regions in %.2fs (epoch %d)\n> ", ev.RegionsRebuilt, ev.Seconds, ev.Epoch)
				case live.EventSnapshot:
					fmt.Printf("\n[live] snapshot written in %.2fs\n> ", ev.Seconds)
				case live.EventError:
					fmt.Printf("\n[live] maintenance error: %v\n> ", ev.Err)
				}
			},
		}
		if *snapPath != "" {
			cfg.SnapshotPath = *snapPath
			cfg.SnapshotInterval = *snapEvery
		}
		// A loaded index has no sample workload to fingerprint, so shift
		// detection only runs for freshly built indexes.
		s = &session{live: live.Open(idx, work, cfg)}
		defer s.live.Close()
		fmt.Printf("live serving: merge threshold %d, shift detection %v\n",
			*mergeAt, s.live.Stats().DetectorTypes > 0)
	}
	fmt.Println(`type "help" for commands`)

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			if quit := eval(s, names, line); quit {
				return
			}
		}
		fmt.Print("> ")
	}
}

// eval executes one command; returns true to quit.
func eval(s *session, names []string, line string) bool {
	verb := strings.ToLower(strings.Fields(line)[0])
	switch verb {
	case "quit", "exit":
		return true
	case "help":
		fmt.Print(`commands:
  count <pred>...        COUNT(*) under the predicates, e.g. count qty=3 10<=day<=20
  sum <col> <pred>...    SUM(col)
  explain <pred>...      show which regions/cells the query touches
  stats                  index structure statistics (Tab 4 of the paper)
  insert v1,v2,...       add a row (live: visible immediately, merged in background)
  merge                  fold buffered rows into the clustered layout now
  save <file>            persist the index (incl. buffered rows)
  quit
`)
	case "stats":
		idx := s.index()
		st := idx.IndexStats()
		fmt.Printf("grid tree: %d nodes, depth %d, %d regions\n", st.NumGridTreeNodes, st.GridTreeDepth, st.NumLeafRegions)
		fmt.Printf("points/region: min=%d median=%d max=%d\n", st.MinPointsPerRegion, st.MedianPointsPerRegion, st.MaxPointsPerRegion)
		fmt.Printf("avg FMs/region=%.2f avg CCDFs/region=%.2f, %d grid cells, %d bytes, %d buffered inserts\n",
			st.AvgFMsPerRegion, st.AvgCCDFsPerRegion, st.TotalGridCells, idx.SizeBytes(), idx.NumBuffered())
		if s.live != nil {
			ls := s.live.Stats()
			fmt.Printf("live: epoch %d, %d clustered + %d buffered rows, %d queries, %d inserts, %d merges, %d reoptimizations, %d snapshots\n",
				ls.Epoch, ls.ClusteredRows, ls.BufferedRows, ls.Queries, ls.Inserts, ls.Merges, ls.Reoptimizations, ls.Snapshots)
		}
	case "insert":
		rest := strings.TrimSpace(line[len("insert"):])
		parts := strings.Split(rest, ",")
		row := make([]int64, 0, len(parts))
		for _, p := range parts {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				fmt.Printf("bad value %q\n", p)
				return false
			}
			row = append(row, v)
		}
		var err error
		if s.live != nil {
			err = s.live.Insert(row)
		} else {
			err = s.idx.Insert(row)
		}
		if err != nil {
			fmt.Println(err)
			return false
		}
		fmt.Printf("inserted (%d pending merge)\n", s.index().NumBuffered())
	case "merge":
		start := time.Now()
		var err error
		if s.live != nil {
			err = s.live.Flush()
		} else {
			err = s.idx.MergeDeltas()
		}
		if err != nil {
			fmt.Println(err)
			return false
		}
		fmt.Printf("merged in %v; table now %d rows\n", time.Since(start), s.index().Store().NumRows())
	case "save":
		fields := strings.Fields(line)
		if len(fields) != 2 {
			fmt.Println("usage: save <file>")
			return false
		}
		f, err := os.Create(fields[1])
		if err != nil {
			fmt.Println(err)
			return false
		}
		if s.live != nil {
			err = s.live.Snapshot(f)
		} else {
			err = s.idx.Save(f)
		}
		f.Close()
		if err != nil {
			fmt.Println(err)
			return false
		}
		fmt.Printf("saved to %s\n", fields[1])
	case "count", "sum", "explain":
		q, err := qparse.Parse(line, names)
		if err != nil {
			fmt.Println(err)
			return false
		}
		if verb == "explain" {
			fmt.Print(s.index().Explain(q))
			return false
		}
		start := time.Now()
		res := s.execute(q)
		elapsed := time.Since(start)
		if verb == "sum" {
			fmt.Printf("sum=%d count=%d (scanned %d rows in %v)\n", res.Sum, res.Count, res.PointsScanned, elapsed)
		} else {
			fmt.Printf("count=%d (scanned %d rows in %v)\n", res.Count, res.PointsScanned, elapsed)
		}
	default:
		fmt.Printf("unknown command %q (try help)\n", verb)
	}
	return false
}

func generate(name string, rows, dims int, seed int64) *datasets.Dataset {
	switch strings.ToLower(name) {
	case "tpch":
		return datasets.TPCH(rows, seed)
	case "taxi":
		return datasets.Taxi(rows, seed)
	case "perfmon":
		return datasets.Perfmon(rows, seed)
	case "stocks":
		return datasets.Stocks(rows, seed)
	case "uniform":
		return datasets.SyntheticUniform(rows, dims, seed)
	case "correlated":
		return datasets.SyntheticCorrelated(rows, dims, seed)
	default:
		fatal(fmt.Errorf("unknown dataset %q", name))
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tsunami-cli:", err)
	os.Exit(1)
}

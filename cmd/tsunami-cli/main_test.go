package main

import (
	"errors"
	"net"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestHelperCLIMain is not a test: it is the child process the bind-
// failure test re-execs, running the real main() with arguments passed
// through the environment.
func TestHelperCLIMain(t *testing.T) {
	if os.Getenv("TSUNAMI_CLI_HELPER") != "1" {
		t.Skip("helper process for TestMetricsBindFailureExitsNonZero")
	}
	os.Args = append([]string{"tsunami-cli"}, strings.Fields(os.Getenv("TSUNAMI_CLI_ARGS"))...)
	main()
}

// TestMetricsBindFailureExitsNonZero pre-binds a listener and starts the
// CLI with -metrics pointed at the occupied address: every serve mode
// must report the listen error and exit non-zero — not come up serving
// with no endpoint while the operator scrapes a port someone else holds.
func TestMetricsBindFailureExitsNonZero(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	modes := map[string]string{
		"live":    "-live",
		"sharded": "-shards 2",
		"plain":   "",
	}
	for name, mode := range modes {
		t.Run(name, func(t *testing.T) {
			args := "-dataset uniform -rows 500 -dims 3 -metrics " + addr
			if mode != "" {
				args += " " + mode
			}
			cmd := exec.Command(os.Args[0], "-test.run", "TestHelperCLIMain")
			cmd.Env = append(os.Environ(), "TSUNAMI_CLI_HELPER=1", "TSUNAMI_CLI_ARGS="+args)
			out, err := cmd.CombinedOutput()
			var ee *exec.ExitError
			if !errors.As(err, &ee) {
				t.Fatalf("CLI with an occupied -metrics address exited cleanly; output:\n%s", out)
			}
			if code := ee.ExitCode(); code != 1 {
				t.Fatalf("exit code %d, want 1; output:\n%s", code, out)
			}
			if !strings.Contains(string(out), "tsunami-cli:") || !strings.Contains(string(out), "in use") {
				t.Fatalf("expected a listen error on stderr, got:\n%s", out)
			}
		})
	}
}

// BenchmarkObsOverhead is the CI gate behind the observability layer's
// performance budget: the same query paths driven twice — once with nil
// metrics (the uninstrumented hot path) and once recording into a
// registry — over one shared index. Each sub-benchmark measures the two
// sides differentially: it alternates short timed passes of the bare and
// instrumented stores (a pair completes within a few milliseconds, so a
// runner stall or frequency shift hits both sides of a pair equally),
// computes the per-pair slowdown ratio, and reports the median across
// all pairs as an `overhead-pct` metric. benchgate's -max-overhead gate
// reads that metric and fails CI when it exceeds 2%:
//
//	go test -run '^$' -bench BenchmarkObsOverhead -benchtime 1x . | \
//	    go run ./cmd/benchgate -max-overhead 2
//
// The median-of-paired-ratios design is deliberate: comparing the two
// sides as separate benchmark runs (even interleaved rounds folded
// min-vs-min) lets a multi-second noisy window on a loaded runner land
// asymmetrically and fake — or mask — an overhead several times the real
// one, which repeatedly flaked a plain two-sided gate during development.
package tsunami_test

import (
	"sort"
	"sync"
	"testing"
	"time"

	tsunami "repro"
)

// obsBench is shared across the sub-benchmarks so every pair measures
// the exact same index and workload; building it once also keeps
// repeated rounds cheap.
var obsBench struct {
	once    sync.Once
	work    []tsunami.Query
	wl      *tsunami.WorkloadStats
	bare    *tsunami.LiveStore
	instr   *tsunami.LiveStore
	bareEx  *tsunami.Executor
	instrEx *tsunami.Executor
}

func obsBenchSetup(b *testing.B) {
	b.Helper()
	obsBench.once.Do(func() {
		ds := tsunami.GenerateTaxi(60_000, 1)
		obsBench.work = tsunami.WorkloadFor(ds, 40, 2)
		idx := tsunami.New(ds.Store, obsBench.work, tsunami.Options{OptimizerIters: 2, MaxOptQueries: 32})
		// Huge merge threshold + no sample workload: no background
		// maintenance on either store, so the delta is purely the
		// recording calls.
		obsBench.bare = tsunami.NewLiveStore(idx, nil, tsunami.LiveOptions{MergeThreshold: 1 << 30})
		// The instrumented side carries the full observability stack —
		// metrics registry plus workload-statistics collector — so the 2%
		// gate covers everything a production serving path would record.
		obsBench.wl = tsunami.NewWorkloadStats(tsunami.WorkloadOptions{})
		obsBench.instr = tsunami.NewLiveStore(idx, nil, tsunami.LiveOptions{
			MergeThreshold: 1 << 30,
			Metrics:        tsunami.NewMetrics(),
			Workload:       obsBench.wl,
		})
		// The batch pair stacks executor instrumentation (queue depth,
		// queue wait, wave sizes) on top of the store's.
		obsBench.bareEx = tsunami.NewExecutorSource(obsBench.bare, tsunami.ExecutorOptions{Workers: 2})
		obsBench.instrEx = tsunami.NewExecutorSource(obsBench.instr, tsunami.ExecutorOptions{
			Workers: 2,
			Metrics: tsunami.NewMetrics(),
		})
	})
}

// obsDifferential alternates timed passes of the bare and instrumented
// sides, pairing each bare pass with the instrumented pass that ran
// immediately after it, and reports the median per-pair slowdown as an
// overhead-pct metric (plus ns/op of the instrumented pass, for context).
// settle runs between pairs, outside both timed windows: the workload
// collector's consumer goroutine drains its sampled-item backlog in
// bursts, and on a 1-CPU box an undrained burst lands inside whichever
// pass happens to be running — inflating the instrumented reading or the
// next bare baseline at random. Draining between pairs keeps both timed
// windows measuring the hot-path recording cost the gate is defined on.
func obsDifferential(b *testing.B, pairs int, barePass, instrPass func() time.Duration, settle func()) {
	// Joint warm-up, unmeasured.
	barePass()
	instrPass()
	settle()
	ratios := make([]float64, 0, pairs)
	var instrTotal time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ratios = ratios[:0]
		instrTotal = 0
		for t := 0; t < pairs; t++ {
			bn := barePass()
			in := instrPass()
			settle()
			instrTotal += in
			ratios = append(ratios, float64(in)/float64(bn))
		}
	}
	b.StopTimer()
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		median = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	b.ReportMetric((median-1)*100, "overhead-pct")
	b.ReportMetric(float64(instrTotal.Nanoseconds())/float64(pairs), "instr-pass-ns")
}

func BenchmarkObsOverhead(b *testing.B) {
	obsBenchSetup(b)
	// Short per-pass slices keep a bare+instrumented pair within a few
	// milliseconds of each other; 96 pairs give the median plenty to
	// discard stalled outliers.
	work := obsBench.work[:32]
	pass := func(ls *tsunami.LiveStore) func() time.Duration {
		return func() time.Duration {
			start := time.Now()
			for _, q := range work {
				ls.Execute(q)
			}
			return time.Since(start)
		}
	}
	batchPass := func(ex *tsunami.Executor) func() time.Duration {
		return func() time.Duration {
			start := time.Now()
			ex.ExecuteBatch(work)
			return time.Since(start)
		}
	}
	b.Run("exec", func(b *testing.B) {
		obsDifferential(b, 96, pass(obsBench.bare), pass(obsBench.instr), obsBench.wl.Sync)
	})
	b.Run("batch", func(b *testing.B) {
		obsDifferential(b, 96, batchPass(obsBench.bareEx), batchPass(obsBench.instrEx), obsBench.wl.Sync)
	})
}

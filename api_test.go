// Tests of the public API: the end-to-end paths a downstream user relies
// on, validated against a full scan.
package tsunami_test

import (
	"testing"

	tsunami "repro"
)

func smallOptions() tsunami.Options {
	return tsunami.Options{OptimizerIters: 2, SampleSize: 1024, MaxOptQueries: 24}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	ds := tsunami.GenerateTaxi(20_000, 1)
	work := tsunami.WorkloadFor(ds, 20, 2)
	idx := tsunami.New(ds.Store, work, smallOptions())
	full := tsunami.NewFullScan(ds.Store)
	for _, q := range work {
		want := full.Execute(q)
		got := idx.Execute(q)
		if got.Count != want.Count {
			t.Fatalf("query %s: got %d, want %d", q, got.Count, want.Count)
		}
	}
	if idx.SizeBytes() == 0 {
		t.Error("index size should be positive")
	}
	s := idx.IndexStats()
	if s.NumLeafRegions < 1 {
		t.Error("expected at least one region")
	}
}

func TestPublicAPITableConstruction(t *testing.T) {
	table, err := tsunami.NewTableFromRows([][]int64{
		{1, 10}, {2, 20}, {3, 30},
	}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if table.NumRows() != 3 || table.NumDims() != 2 {
		t.Fatalf("table shape (%d, %d)", table.NumRows(), table.NumDims())
	}
	if _, err := tsunami.NewTable([][]int64{{1}, {2, 3}}, nil); err == nil {
		t.Error("ragged columns should fail")
	}
}

func TestPublicAPISumQuery(t *testing.T) {
	cols := [][]int64{{1, 2, 3, 4}, {10, 20, 30, 40}}
	table, err := tsunami.NewTable(cols, []string{"k", "v"})
	if err != nil {
		t.Fatal(err)
	}
	idx := tsunami.New(table, nil, smallOptions())
	res := idx.Execute(tsunami.Sum(1, tsunami.Filter{Dim: 0, Lo: 2, Hi: 3}))
	if res.Sum != 50 || res.Count != 2 {
		t.Errorf("sum = (%d, %d), want (50, 2)", res.Sum, res.Count)
	}
}

func TestPublicAPIAllBaselinesAgree(t *testing.T) {
	ds := tsunami.GenerateStocks(15_000, 3)
	work := tsunami.WorkloadFor(ds, 15, 4)
	full := tsunami.NewFullScan(ds.Store)
	indexes := []tsunami.Index{
		tsunami.New(ds.Store, work, smallOptions()),
		tsunami.NewAugGridOnly(ds.Store, work, smallOptions()),
		tsunami.NewGridTreeOnly(ds.Store, work, smallOptions()),
		tsunami.NewFlood(ds.Store, work, smallOptions()),
		tsunami.NewKDTree(ds.Store, work, 1024),
		tsunami.NewZOrder(ds.Store, 1024),
		tsunami.NewHyperoctree(ds.Store, 1024),
		tsunami.NewSingleDim(ds.Store, work, -1),
	}
	for _, q := range work {
		want := full.Execute(q).Count
		for _, idx := range indexes {
			if got := idx.Execute(q).Count; got != want {
				t.Fatalf("%s on %s: got %d, want %d", idx.Name(), q, got, want)
			}
		}
	}
}

func TestPublicAPIWorkloadShift(t *testing.T) {
	ds := tsunami.GenerateTPCH(15_000, 5)
	workA := tsunami.WorkloadFor(ds, 15, 6)
	workB := tsunami.GenerateWorkload(ds.Store, []tsunami.TypeSpec{
		{Name: "b", Dims: []tsunami.DimSpec{
			{Dim: 1, Sel: 0.05, Jitter: 0.1, Skew: tsunami.SkewExtremes},
		}},
	}, 30, 7)
	idx := tsunami.New(ds.Store, workA, smallOptions())
	re, secs := idx.Reoptimize(workB)
	if secs <= 0 {
		t.Error("reoptimize should take measurable time")
	}
	full := tsunami.NewFullScan(ds.Store)
	for _, q := range workB {
		if re.Execute(q).Count != full.Execute(q).Count {
			t.Fatalf("reoptimized index wrong on %s", q)
		}
	}
}

func TestGeneratorsExposedViaAPI(t *testing.T) {
	for name, ds := range map[string]*tsunami.Dataset{
		"tpch":       tsunami.GenerateTPCH(100, 1),
		"taxi":       tsunami.GenerateTaxi(100, 1),
		"perfmon":    tsunami.GeneratePerfmon(100, 1),
		"stocks":     tsunami.GenerateStocks(100, 1),
		"uniform":    tsunami.GenerateUniform(100, 6, 1),
		"correlated": tsunami.GenerateCorrelated(100, 6, 1),
	} {
		if ds.Rows() != 100 {
			t.Errorf("%s rows = %d", name, ds.Rows())
		}
	}
}

// Admission-control tests: the Executor's Serve path must shed at the
// per-priority in-flight watermarks (never queue past them), reject
// over-budget queries at plan time before anything scans, and degrade to
// plain Execute when admission is off.
package tsunami_test

import (
	"errors"
	"sync"
	"testing"

	tsunami "repro"
)

// blockingIndex parks every Execute until released, so tests can hold a
// known number of queries in flight deterministically.
type blockingIndex struct {
	entered chan struct{} // one receive per Execute that has started
	release chan struct{} // closed to let every Execute return
}

func newBlockingIndex() *blockingIndex {
	return &blockingIndex{entered: make(chan struct{}, 64), release: make(chan struct{})}
}

func (b *blockingIndex) Name() string      { return "blocking" }
func (b *blockingIndex) SizeBytes() uint64 { return 0 }
func (b *blockingIndex) Execute(q tsunami.Query) tsunami.Result {
	b.entered <- struct{}{}
	<-b.release
	return tsunami.Result{Count: 1}
}

func TestServeWithoutAdmissionIsExecute(t *testing.T) {
	bi := newBlockingIndex()
	close(bi.release) // never block
	ex := tsunami.NewExecutor(bi, tsunami.ExecutorOptions{Workers: 1})
	defer ex.Close()
	res, err := ex.Serve(tsunami.Count(), tsunami.PriorityNormal)
	if err != nil || res.Count != 1 {
		t.Fatalf("Serve without admission: res=%+v err=%v", res, err)
	}
}

func TestServeShedsAtInFlightCap(t *testing.T) {
	bi := newBlockingIndex()
	ex := tsunami.NewExecutor(bi, tsunami.ExecutorOptions{
		Workers:   1,
		Admission: tsunami.AdmissionConfig{MaxInFlight: 2},
	})
	defer ex.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ex.Serve(tsunami.Count(), tsunami.PriorityInteractive); err != nil {
				t.Errorf("occupying query rejected: %v", err)
			}
		}()
	}
	<-bi.entered
	<-bi.entered // both slots are now provably in flight

	res, err := ex.Serve(tsunami.Count(), tsunami.PriorityInteractive)
	if !errors.Is(err, tsunami.ErrShed) {
		t.Fatalf("at capacity, want ErrShed, got res=%+v err=%v", res, err)
	}
	if res != (tsunami.Result{}) {
		t.Fatalf("shed query must return a zero Result, got %+v", res)
	}

	close(bi.release)
	wg.Wait()
	// Slots drained: Serve admits again.
	if _, err := ex.Serve(tsunami.Count(), tsunami.PriorityNormal); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}

// TestServePriorityWatermarks holds 7 interactive queries in flight
// against MaxInFlight=8 and checks each class's watermark: batch (cap/2
// = 4) and normal (cap - cap/8 = 7) must shed, interactive (full cap)
// must still be admitted.
func TestServePriorityWatermarks(t *testing.T) {
	bi := newBlockingIndex()
	ex := tsunami.NewExecutor(bi, tsunami.ExecutorOptions{
		Workers:   1,
		Admission: tsunami.AdmissionConfig{MaxInFlight: 8},
	})
	defer ex.Close()

	var wg sync.WaitGroup
	for i := 0; i < 7; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ex.Serve(tsunami.Count(), tsunami.PriorityInteractive); err != nil {
				t.Errorf("occupying query rejected: %v", err)
			}
		}()
	}
	for i := 0; i < 7; i++ {
		<-bi.entered
	}

	if _, err := ex.Serve(tsunami.Count(), tsunami.PriorityBatch); !errors.Is(err, tsunami.ErrShed) {
		t.Fatalf("batch at 7/8 in flight: want ErrShed, got %v", err)
	}
	if _, err := ex.Serve(tsunami.Count(), tsunami.PriorityNormal); !errors.Is(err, tsunami.ErrShed) {
		t.Fatalf("normal at 7/8 in flight: want ErrShed, got %v", err)
	}
	admitted := make(chan error, 1)
	go func() {
		_, err := ex.Serve(tsunami.Count(), tsunami.PriorityInteractive)
		admitted <- err
	}()
	<-bi.entered // the interactive query started executing: it was admitted
	close(bi.release)
	wg.Wait()
	if err := <-admitted; err != nil {
		t.Fatalf("interactive at 7/8 in flight must be admitted: %v", err)
	}
}

// TestServePlanTimeBudgets checks row/byte budgets against a real index:
// the estimates come from the Grid Tree range plans, so a full-table
// query is rejected under a budget one row (or eight bytes) short of the
// table and admitted at exactly the table's cost.
func TestServePlanTimeBudgets(t *testing.T) {
	const rows = 5000
	ds := tsunami.GenerateTaxi(rows, 1)
	work := tsunami.WorkloadFor(ds, 10, 2)
	idx := tsunami.New(ds.Store, work, tsunami.Options{OptimizerIters: 2, MaxOptQueries: 16})

	full := tsunami.Count()   // plans exactly `rows` rows, 0 filter columns
	fullSum := tsunami.Sum(1) // same rows, 8 bytes/row for the aggregate column
	rowBudget := uint64(rows)

	over := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{
		Workers:   1,
		Admission: tsunami.AdmissionConfig{MaxRows: rowBudget - 1},
	})
	defer over.Close()
	if _, err := over.Serve(full, tsunami.PriorityInteractive); !errors.Is(err, tsunami.ErrOverBudget) {
		t.Fatalf("full-table query under MaxRows=%d: want ErrOverBudget, got %v", rowBudget-1, err)
	}

	at := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{
		Workers:   1,
		Admission: tsunami.AdmissionConfig{MaxRows: rowBudget},
	})
	defer at.Close()
	if res, err := at.Serve(full, tsunami.PriorityNormal); err != nil || res.Count != rows {
		t.Fatalf("full-table query at MaxRows=%d: res=%+v err=%v", rowBudget, res, err)
	}

	byteBudget := uint64(rows * 8)
	overB := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{
		Workers:   1,
		Admission: tsunami.AdmissionConfig{MaxBytes: byteBudget - 1},
	})
	defer overB.Close()
	if _, err := overB.Serve(fullSum, tsunami.PriorityNormal); !errors.Is(err, tsunami.ErrOverBudget) {
		t.Fatalf("full-table SUM under MaxBytes=%d: want ErrOverBudget, got %v", byteBudget-1, err)
	}
	atB := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{
		Workers:   1,
		Admission: tsunami.AdmissionConfig{MaxBytes: byteBudget},
	})
	defer atB.Close()
	if _, err := atB.Serve(fullSum, tsunami.PriorityNormal); err != nil {
		t.Fatalf("full-table SUM at MaxBytes=%d: %v", byteBudget, err)
	}
}

package tsunami_test

import (
	"testing"

	tsunami "repro"
)

func TestRobustIndexOnDirtyData(t *testing.T) {
	// Stocks-like data plus a sprinkle of corrupt rows: plain FMs would be
	// poisoned; NewRobust diverts the outliers and stays correct.
	ds := tsunami.GenerateStocks(15_000, 1)
	closeCol := ds.Store.Column(2)
	for i := 0; i < len(closeCol); i += 997 {
		closeCol[i] = 1 // corrupt: close of one cent
	}
	work := tsunami.WorkloadFor(ds, 15, 2)
	idx := tsunami.NewRobust(ds.Store, work, smallOptions(), 0.01)
	full := tsunami.NewFullScan(ds.Store)
	for _, q := range work {
		if got, want := idx.Execute(q).Count, full.Execute(q).Count; got != want {
			t.Fatalf("robust index wrong on %s: got %d, want %d", q, got, want)
		}
	}
}

func TestShiftDetectorViaPublicAPI(t *testing.T) {
	ds := tsunami.GenerateTaxi(15_000, 3)
	work := tsunami.WorkloadFor(ds, 30, 4)
	det := tsunami.NewShiftDetector(ds.Store, work, tsunami.ShiftConfig{WindowSize: 60, MinObserved: 30})
	if det.NumTypes() < 3 {
		t.Fatalf("fingerprinted %d types", det.NumTypes())
	}
	// A drastically different workload must trigger.
	drifted := tsunami.GenerateWorkload(ds.Store, []tsunami.TypeSpec{
		{Name: "new", Dims: []tsunami.DimSpec{
			{Dim: 5, Sel: 0.01, Jitter: 0.1, Skew: tsunami.SkewExtremes},
		}},
	}, 80, 5)
	for _, q := range drifted {
		det.Observe(q)
	}
	if !det.Analyze().ShiftDetected {
		t.Error("public detector missed an obvious shift")
	}
}

func TestInsertAndMergeViaPublicAPI(t *testing.T) {
	ds := tsunami.GenerateTPCH(10_000, 6)
	work := tsunami.WorkloadFor(ds, 10, 7)
	idx := tsunami.New(ds.Store, work, smallOptions())
	row := make([]int64, ds.Dims())
	for j := range row {
		row[j] = 42
	}
	for i := 0; i < 100; i++ {
		if err := idx.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	q := tsunami.Count(tsunami.Filter{Dim: 0, Lo: 42, Hi: 42}, tsunami.Filter{Dim: 1, Lo: 42, Hi: 42})
	if got := idx.Execute(q).Count; got != 100 {
		t.Fatalf("pre-merge count = %d, want 100", got)
	}
	if err := idx.MergeDeltas(); err != nil {
		t.Fatal(err)
	}
	if got := idx.Execute(q).Count; got != 100 {
		t.Fatalf("post-merge count = %d, want 100", got)
	}
}

func TestCategoricalRemapViaPublicAPI(t *testing.T) {
	ds := tsunami.GenerateTaxi(10_000, 8)
	work := tsunami.WorkloadFor(ds, 20, 9)
	remap := tsunami.LearnCategoricalOrder(ds.Store, work, 6) // passengers
	if remap.NumValues() == 0 {
		t.Fatal("no values learned")
	}
	q := tsunami.Count(tsunami.Filter{Dim: 6, Lo: 1, Hi: 1})
	rq, ok := remap.RewriteQuery(q)
	if !ok {
		t.Fatal("equality rewrite must be exact")
	}
	f, _ := rq.Filter(6)
	if f.Lo != remap.Code(1) {
		t.Error("rewritten filter does not use the new code")
	}
}

package tsunami

import (
	"runtime"
	"sync"

	"repro/internal/colstore"
	"repro/internal/query"
)

// intraQueryIndex is implemented by indexes that can split one query's work
// across multiple scheduled tasks and merge the partial results.
// TsunamiIndex implements it by spreading the query's Grid Tree regions
// over the submitted tasks, which the Executor runs on its worker pool.
type intraQueryIndex interface {
	ExecuteParallelOn(q query.Query, workers int, submit func(task func())) colstore.ScanResult
}

// ExecutorOptions configures an Executor. The zero value uses one worker
// per CPU with intra-query parallelism off.
type ExecutorOptions struct {
	// Workers is the size of the worker pool (default runtime.NumCPU()).
	Workers int
	// IntraQuery additionally splits each single Execute call across the
	// pool when the index supports it (TsunamiIndex does, by region).
	// Batch execution always parallelizes across queries regardless.
	IntraQuery bool
}

// Executor serves queries against one shared index from a fixed pool of
// workers. It relies on the Index concurrency contract — built indexes are
// immutable on the read path — so no cloning happens anywhere; every worker
// executes against the same index value.
//
// An Executor is safe for concurrent use: ExecuteBatch may be called from
// many goroutines at once and the pool fair-shares across them. Close
// releases the workers; the Executor must not be used after Close. The
// index must not be mutated (inserts, merges, re-optimization) while the
// Executor is serving.
type Executor struct {
	idx     Index
	intra   intraQueryIndex // non-nil only when IntraQuery is on and supported
	workers int

	// jobs carries closures so one pool serves both granularities: whole
	// queries (ExecuteBatch) and a single query's region-draining tasks
	// (intra-query Execute). Jobs never block on other jobs, so sharing
	// the pool cannot deadlock.
	jobs      chan func()
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewExecutor starts a worker pool over a shared index.
func NewExecutor(idx Index, o ExecutorOptions) *Executor {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	e := &Executor{
		idx:     idx,
		workers: workers,
		jobs:    make(chan func(), 2*workers),
	}
	if o.IntraQuery {
		if p, ok := idx.(intraQueryIndex); ok {
			e.intra = p
		}
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

func (e *Executor) worker() {
	defer e.wg.Done()
	for job := range e.jobs {
		job()
	}
}

// submit schedules a task on the pool.
func (e *Executor) submit(task func()) { e.jobs <- task }

// Workers returns the pool size.
func (e *Executor) Workers() int { return e.workers }

// Execute answers one query. With IntraQuery enabled on a supporting index
// the query's work is split into tasks run on the worker pool; otherwise
// it runs on the calling goroutine (the pool is for batches).
func (e *Executor) Execute(q Query) Result {
	if e.intra != nil {
		return e.intra.ExecuteParallelOn(q, e.workers, e.submit)
	}
	return e.idx.Execute(q)
}

// ExecuteBatch answers every query, fanning them across the worker pool,
// and returns results positionally aligned with qs. Results are identical
// to calling Execute sequentially on each query.
func (e *Executor) ExecuteBatch(qs []Query) []Result {
	out := make([]Result, len(qs))
	var done sync.WaitGroup
	done.Add(len(qs))
	for i, q := range qs {
		i, q := i, q
		e.jobs <- func() {
			out[i] = e.idx.Execute(q)
			done.Done()
		}
	}
	done.Wait()
	return out
}

// Close shuts the pool down and waits for in-flight queries to finish.
// Safe to call more than once.
func (e *Executor) Close() {
	e.closeOnce.Do(func() {
		close(e.jobs)
		e.wg.Wait()
	})
}

package tsunami

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colstore"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/wstats"
)

// intraQueryIndex is implemented by indexes that can split one query's work
// across multiple scheduled tasks and merge the partial results.
// TsunamiIndex implements it by spreading the query's Grid Tree regions
// over the submitted tasks, which the Executor runs on its worker pool;
// ShardedStore implements it by scattering the query's unpruned shards the
// same way and gathering their partial aggregates — so one Executor serves
// both granularities of scatter-gather without a second scheduler. Tasks
// must never block on other submitted tasks (both implementations drain a
// shared cursor instead), which is what makes sharing one pool
// deadlock-free.
type intraQueryIndex interface {
	ExecuteParallelOn(q query.Query, workers int, submit func(task func())) colstore.ScanResult
}

// IndexSource yields the index an Executor executes against, resolved per
// query, so sources that swap indexes over time (a LiveStore publishing
// background merges and re-optimizations, a ShardedStore whose shards
// each publish their own epochs) take effect without restarting the pool.
// Every returned index must honor the Index read-path concurrency
// contract.
type IndexSource interface {
	CurrentIndex() Index
}

// ExecutorOptions configures an Executor. The zero value uses one worker
// per CPU with intra-query parallelism off.
type ExecutorOptions struct {
	// Workers is the size of the worker pool (default runtime.NumCPU()).
	Workers int
	// IntraQuery additionally splits each single Execute call across the
	// pool when the index supports it (TsunamiIndex does, by region;
	// ShardedStore does, by shard — scatter-gather). Batch execution
	// always parallelizes across queries regardless.
	IntraQuery bool
	// MaxWave caps how many batch queries are in flight at once: large
	// ExecuteBatch calls are split into waves of this size so in-flight
	// work (and the cache footprint of its result writes) stays bounded
	// by the pool, not the batch (default 8*Workers, minimum Workers).
	MaxWave int
	// Metrics, when non-nil, records pool telemetry into the registry:
	// queue wait and depth, per-query execution latency, wave sizes, and
	// tasks executed (tsunami_exec_* metric names). Nil leaves the hot
	// path exactly as uninstrumented — submitted tasks are not even
	// wrapped.
	Metrics *obs.Registry
	// Workload, when non-nil, records every query the pool answers into
	// the workload-statistics collector (fingerprints, heavy hitters, SLO
	// counters, slow-query log). Set this only when the Executor serves a
	// plain index: a LiveStore or ShardedStore with its own Workload
	// collector already records per query, and recording at both layers
	// would double-count. The Executor does not bind the collector to a
	// table — bind it through the serving layer's config or
	// WorkloadStats.Bind for named dimensions, domains, and slow-query
	// exemplar traces.
	Workload *WorkloadStats
	// Admission, when any field is set, turns on admission control for
	// queries served through Serve: bounded in-flight load with
	// priority-classed shedding, and per-query row/byte budgets enforced
	// at plan time. Execute/ExecuteBatch bypass admission (internal and
	// maintenance callers must not be shed); route client traffic through
	// Serve.
	Admission AdmissionConfig
}

// AdmissionConfig bounds what the Executor accepts through Serve.
type AdmissionConfig struct {
	// MaxInFlight caps concurrently served queries. When the cap is hit,
	// Serve sheds instead of queueing — under overload an unbounded queue
	// only converts shed requests into slow ones, and every admitted
	// query's latency degrades with queue depth. Priority classes reserve
	// headroom: batch traffic sheds at half the cap, normal traffic at
	// 7/8 of it, interactive traffic only at the full cap — so a burst of
	// background work cannot starve interactive queries. 0 disables the
	// in-flight cap.
	MaxInFlight int
	// MaxRows, when > 0, rejects (before executing) any query whose
	// plan-time cost estimate — Grid Tree routing plus each region grid's
	// physical range plan, no scanning — exceeds this many rows.
	MaxRows uint64
	// MaxBytes, when > 0, is the same budget in estimated bytes touched.
	MaxBytes uint64
}

func (a AdmissionConfig) enabled() bool {
	return a.MaxInFlight > 0 || a.MaxRows > 0 || a.MaxBytes > 0
}

// Priority classes order queries for admission under load. The zero
// value is PriorityNormal, so plain callers need no annotation.
type Priority uint8

const (
	// PriorityNormal is regular client traffic; it sheds when in-flight
	// load passes 7/8 of MaxInFlight.
	PriorityNormal Priority = iota
	// PriorityBatch is background/bulk traffic; it sheds first, at half
	// of MaxInFlight, keeping headroom for the classes above.
	PriorityBatch
	// PriorityInteractive is latency-critical traffic; it sheds only at
	// the full MaxInFlight cap.
	PriorityInteractive
)

func (p Priority) String() string {
	switch p {
	case PriorityBatch:
		return "batch"
	case PriorityInteractive:
		return "interactive"
	default:
		return "normal"
	}
}

// ErrShed reports a query rejected by load-shedding: in-flight load had
// reached the query's priority-class watermark. The caller may retry
// with backoff; the result was never computed.
var ErrShed = errors.New("tsunami: query shed (serving at capacity)")

// ErrOverBudget reports a query rejected at plan time: its estimated
// scan cost exceeded the configured per-query row or byte budget. Wrapped
// errors carry the estimate; match with errors.Is.
var ErrOverBudget = errors.New("tsunami: query over plan-time budget")

// costEstimator is implemented by indexes that can bound a query's scan
// cost at plan time without executing it (core.Tsunami via its range
// plans; LiveStore and ShardedStore by delegation). Budgets are enforced
// only against indexes that implement it.
type costEstimator interface {
	EstimateCost(q query.Query) (rows, bytes uint64)
}

// admission is the Executor's load-shedding state: one atomic in-flight
// counter checked against per-priority watermarks, plus the plan-time
// budgets.
type admission struct {
	maxInFlight int64
	maxRows     uint64
	maxBytes    uint64
	inFlight    atomic.Int64
}

// limit is the in-flight watermark for a priority class (see
// AdmissionConfig.MaxInFlight); 0 means no cap.
func (a *admission) limit(pri Priority) int64 {
	m := a.maxInFlight
	if m <= 0 {
		return 0
	}
	var l int64
	switch pri {
	case PriorityBatch:
		l = m / 2
	case PriorityInteractive:
		l = m
	default:
		l = m - m/8
	}
	if l < 1 {
		l = 1
	}
	return l
}

// execMetrics caches the Executor's resolved instruments so the record
// path never touches the registry.
type execMetrics struct {
	queueWait  *obs.Histogram
	queueDepth *obs.Gauge
	latency    *obs.Histogram
	waveSize   *obs.Histogram
	tasks      *obs.Counter
	// Admission counters are registered eagerly (they appear on /statsz
	// at 0 even before admission control sees traffic, or when it is
	// disabled) so dashboards and smoke tests can rely on the fields.
	admAdmitted *obs.Counter
	admShed     *obs.Counter
	admBudget   *obs.Counter
	admInFlight *obs.Gauge
}

func newExecMetrics(r *obs.Registry) *execMetrics {
	if r == nil {
		return nil
	}
	return &execMetrics{
		queueWait:   r.DurationHistogram(obs.MExecQueueWait),
		queueDepth:  r.Gauge(obs.MExecQueueDepth),
		latency:     r.DurationHistogram(obs.MExecLatency),
		waveSize:    r.Histogram(obs.MExecWaveSize),
		tasks:       r.Counter(obs.MExecTasks),
		admAdmitted: r.Counter(obs.MAdmissionAdmitted),
		admShed:     r.Counter(obs.MAdmissionShed),
		admBudget:   r.Counter(obs.MAdmissionBudget),
		admInFlight: r.Gauge(obs.MAdmissionInFlight),
	}
}

// Executor serves queries against one shared index from a fixed pool of
// workers. It relies on the Index concurrency contract — built indexes are
// immutable on the read path — so no cloning happens anywhere; every worker
// executes against the same index value. Built over an IndexSource
// (NewExecutorSource), it instead resolves the source's current index per
// query, so epoch swaps published by a LiveStore are picked up mid-batch.
//
// An Executor is safe for concurrent use: ExecuteBatch may be called from
// many goroutines at once and the pool fair-shares across them. Close
// releases the workers. Execute and ExecuteBatch after Close are no-ops
// returning zero Results. A plain-index Executor's index must not be
// mutated (inserts, merges, re-optimization) while the Executor is
// serving; an IndexSource-backed Executor relies on the source only ever
// publishing immutable values.
type Executor struct {
	source   func() Index
	intra    bool // split single Execute calls when the index supports it
	workers  int
	maxWave  int
	metrics  *execMetrics      // nil when instrumentation is off
	workload *wstats.Collector // nil when workload stats are off
	adm      *admission        // nil when admission control is off

	// jobs carries closures so one pool serves both granularities: whole
	// queries (ExecuteBatch) and a single query's region-draining tasks
	// (intra-query Execute). Jobs never block on other jobs, so sharing
	// the pool cannot deadlock.
	jobs chan execJob
	wg   sync.WaitGroup

	// mu guards sends against Close: senders hold it shared, Close holds
	// it exclusively while marking closed and closing jobs, so a send on
	// the closed channel can never happen.
	mu     sync.RWMutex
	closed bool
}

// NewExecutor starts a worker pool over a shared index.
func NewExecutor(idx Index, o ExecutorOptions) *Executor {
	return newExecutor(func() Index { return idx }, o)
}

// NewExecutorSource starts a worker pool over an IndexSource; each query
// executes against the source's index at the moment it starts, so index
// swaps (e.g. LiveStore epoch publishes) take effect without restarting
// the pool.
func NewExecutorSource(src IndexSource, o ExecutorOptions) *Executor {
	return newExecutor(src.CurrentIndex, o)
}

func newExecutor(source func() Index, o ExecutorOptions) *Executor {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	maxWave := o.MaxWave
	if maxWave <= 0 {
		maxWave = 8 * workers
	}
	if maxWave < workers {
		maxWave = workers
	}
	e := &Executor{
		source:   source,
		intra:    o.IntraQuery,
		workers:  workers,
		maxWave:  maxWave,
		metrics:  newExecMetrics(o.Metrics),
		workload: o.Workload,
		jobs:     make(chan execJob, 2*workers),
	}
	if o.Admission.enabled() {
		e.adm = &admission{
			maxInFlight: int64(o.Admission.MaxInFlight),
			maxRows:     o.Admission.MaxRows,
			maxBytes:    o.Admission.MaxBytes,
		}
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

// execJob is one unit of pool work. The enqueue timestamp rides in the
// channel element (set only when metrics are on), so queue-wait
// instrumentation needs no per-task wrapper closure — the submit path
// stays allocation-free with metrics enabled.
type execJob struct {
	fn       func()
	enqueued time.Time
}

func (e *Executor) worker() {
	defer e.wg.Done()
	m := e.metrics
	for job := range e.jobs {
		if m != nil {
			m.queueDepth.Add(-1)
			m.queueWait.RecordDuration(time.Since(job.enqueued))
			m.tasks.Inc()
		}
		job.fn()
	}
}

// trySubmit schedules a task on the pool, or reports false after Close.
// The depth increment happens only after the closed check, so a false
// return can never leak a depth increment (the caller runs the task
// itself).
func (e *Executor) trySubmit(task func()) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return false
	}
	job := execJob{fn: task}
	if m := e.metrics; m != nil {
		job.enqueued = time.Now()
		m.queueDepth.Add(1)
	}
	e.jobs <- job
	return true
}

// Workers returns the pool size.
func (e *Executor) Workers() int { return e.workers }

// Execute answers one query. With IntraQuery enabled on a supporting index
// the query's work is split into tasks run on the worker pool; otherwise
// it runs on the calling goroutine (the pool is for batches). After Close
// it returns a zero Result.
func (e *Executor) Execute(q Query) Result {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return Result{}
	}
	idx := e.source()
	m, w := e.metrics, e.workload
	var start time.Time
	if m != nil || w != nil {
		start = time.Now()
	}
	var res Result
	if p, ok := idx.(intraQueryIndex); ok && e.intra {
		// If the pool is closed mid-query the remaining tasks run on
		// the calling goroutine; the answer is still complete.
		res = p.ExecuteParallelOn(q, e.workers, func(task func()) {
			if !e.trySubmit(task) {
				task()
			}
		})
	} else {
		res = idx.Execute(q)
	}
	if m != nil || w != nil {
		d := time.Since(start)
		if m != nil {
			m.latency.RecordDuration(d)
		}
		w.Record(q, d, res.Count, res.PointsScanned, res.BytesTouched)
	}
	return res
}

// Serve answers one query under admission control: plan-time row/byte
// budgets are checked first (nothing is scanned for a rejected query),
// then the in-flight watermark for the query's priority class — at
// capacity the query is shed immediately rather than queued, so admitted
// queries keep bounded latency while overload turns into fast ErrShed
// returns the client can retry with backoff. Without an Admission
// configuration Serve is exactly Execute. Shed and budget-rejected
// queries are counted in the registry (tsunami_admission_*).
func (e *Executor) Serve(q Query, pri Priority) (Result, error) {
	a := e.adm
	if a == nil {
		return e.Execute(q), nil
	}
	m := e.metrics
	if a.maxRows > 0 || a.maxBytes > 0 {
		if ce, ok := e.source().(costEstimator); ok {
			rows, bytes := ce.EstimateCost(q)
			if a.maxRows > 0 && rows > a.maxRows {
				if m != nil {
					m.admBudget.Inc()
				}
				return Result{}, fmt.Errorf("%w: plan estimates %d rows scanned, budget %d", ErrOverBudget, rows, a.maxRows)
			}
			if a.maxBytes > 0 && bytes > a.maxBytes {
				if m != nil {
					m.admBudget.Inc()
				}
				return Result{}, fmt.Errorf("%w: plan estimates %d bytes touched, budget %d", ErrOverBudget, bytes, a.maxBytes)
			}
		}
	}
	if lim := a.limit(pri); lim > 0 {
		if n := a.inFlight.Add(1); n > lim {
			a.inFlight.Add(-1)
			if m != nil {
				m.admShed.Inc()
			}
			return Result{}, fmt.Errorf("%w: %d %s-priority queries in flight (limit %d)", ErrShed, n-1, pri, lim)
		}
		if m != nil {
			m.admInFlight.Add(1)
		}
		defer func() {
			a.inFlight.Add(-1)
			if m != nil {
				m.admInFlight.Add(-1)
			}
		}()
		// Yield once between admission and execution. A burst of arrivals
		// all reach the in-flight counter before any of them starts
		// scanning, so the watermark sees the burst's true concurrency;
		// without this, on a single P, back-to-back sub-quantum queries
		// serialize and the cap can never engage.
		runtime.Gosched()
	}
	if m != nil {
		m.admAdmitted.Inc()
	}
	return e.Execute(q), nil
}

// ExecuteBatch answers every query, fanning them across the worker pool,
// and returns results positionally aligned with qs. Results are identical
// to calling Execute sequentially on each query. Batches larger than
// MaxWave are processed in waves so the amount of in-flight work stays
// proportional to the pool, not the batch. After Close it returns zero
// Results for every query.
func (e *Executor) ExecuteBatch(qs []Query) []Result {
	out := make([]Result, len(qs))
	for start := 0; start < len(qs); start += e.maxWave {
		end := start + e.maxWave
		if end > len(qs) {
			end = len(qs)
		}
		if !e.runWave(qs[start:end], out[start:end]) {
			break // closed: remaining results stay zero
		}
	}
	return out
}

// runWave fans one wave across the pool and waits for it. It reports
// false if the Executor was closed before the whole wave was scheduled
// (results for unscheduled queries stay zero).
func (e *Executor) runWave(qs []Query, out []Result) bool {
	m, w := e.metrics, e.workload
	if m != nil {
		m.waveSize.Record(int64(len(qs)))
	}
	var done sync.WaitGroup
	ok := true
	for i, q := range qs {
		i, q := i, q
		done.Add(1)
		if !e.trySubmit(func() {
			if m != nil || w != nil {
				start := time.Now()
				out[i] = e.source().Execute(q)
				d := time.Since(start)
				if m != nil {
					m.latency.RecordDuration(d)
				}
				w.Record(q, d, out[i].Count, out[i].PointsScanned, out[i].BytesTouched)
			} else {
				out[i] = e.source().Execute(q)
			}
			done.Done()
		}) {
			done.Done() // never scheduled
			ok = false
			break
		}
	}
	done.Wait()
	return ok
}

// Close shuts the pool down and waits for in-flight queries to finish.
// Safe to call from multiple goroutines; every call blocks until the
// workers have drained. Execute/ExecuteBatch afterwards are no-ops.
func (e *Executor) Close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.jobs)
	}
	e.mu.Unlock()
	e.wg.Wait()
}

package tsunami

import (
	"net/http"

	"repro/internal/obs"
	"repro/internal/wstats"
)

// This file exposes the workload-statistics layer (internal/wstats):
// canonical query fingerprints, a heavy-hitter sketch of the hottest
// query shapes with per-shape latency histograms, online per-dimension
// selectivity and filter-bound statistics, latency SLO tracking with
// error-budget burn rates, and an automatic slow-query log that captures
// explain-analyze exemplar traces for queries beyond an adaptive
// p99-based threshold.
//
// One collector is typically attached to the serving layer —
//
//	wl := tsunami.NewWorkloadStats(tsunami.WorkloadOptions{})
//	ls := tsunami.NewLiveStore(idx, work, tsunami.LiveOptions{Workload: wl})
//	go http.ListenAndServe("127.0.0.1:9100",
//		tsunami.MetricsHandlerWith(m, wl))
//
// — and /workloadz then answers "what is this store actually serving":
// the top query shapes by count with their own p50/p99, which dimensions
// queries filter on and how selective those filters are, whether the
// latency objectives are holding, and concrete traces of the slowest
// recent queries. A nil collector disables everything with zero hot-path
// cost, the same contract as Metrics.

// WorkloadStats collects per-query workload statistics. The hot path
// (Record) is a few uncontended atomics plus a sampled, non-blocking
// hand-off to a background consumer; it never blocks the query path.
type WorkloadStats = wstats.Collector

// WorkloadOptions tunes a WorkloadStats collector; the zero value uses
// the defaults documented on each field.
type WorkloadOptions = wstats.Config

// WorkloadObjective is one latency SLO: the fraction of queries
// (Target) that must finish within Latency.
type WorkloadObjective = wstats.Objective

// WorkloadSnapshot is a point-in-time copy of a collector's statistics —
// the JSON document /workloadz serves.
type WorkloadSnapshot = wstats.Snapshot

// WorkloadBinding ties a collector to the table it observes: dimension
// names and domains for readable shapes and bound histograms, a live row
// count for selectivity, and a trace function for slow-query exemplars.
// LiveOptions.Workload and ShardedOptions.Workload bind automatically;
// use WorkloadStats.Bind directly only for a collector on a plain-index
// Executor.
type WorkloadBinding = wstats.Binding

// NewWorkloadStats returns a collector ready to be passed to
// LiveOptions.Workload, ShardedOptions.Workload, or
// ExecutorOptions.Workload (one layer only — see ExecutorOptions).
// Close releases its background consumer.
func NewWorkloadStats(o WorkloadOptions) *WorkloadStats { return wstats.New(o) }

// WorkloadHandler serves w's statistics as indented JSON (the /workloadz
// document; see WorkloadSnapshot).
func WorkloadHandler(w *WorkloadStats) http.Handler { return wstats.HTTPHandler(w) }

// MetricsHandlerWith is MetricsHandler plus the workload-statistics
// surface: /workloadz serves w alongside /metrics, /statsz, and
// /debug/pprof/. A nil w serves an empty document.
func MetricsHandlerWith(m *Metrics, w *WorkloadStats) http.Handler {
	return obs.Handler(m, obs.Route{Path: "/workloadz", Handler: wstats.HTTPHandler(w)})
}

package core

import (
	"testing"

	"repro/internal/auggrid"
	"repro/internal/datasets"
	"repro/internal/gridtree"
	"repro/internal/testutil"
	"repro/internal/workload"
)

func smallConfig(v Variant) Config {
	return Config{
		Variant: v,
		GridTree: gridtree.Config{
			MaxDepth: 4,
		},
		Grid: auggrid.OptimizeConfig{
			Eval:     auggrid.EvalConfig{SampleSize: 1024, MaxQueries: 30},
			MaxCells: 1 << 12,
			MaxIters: 2,
		},
		MinRowsForGrid: 256,
	}
}

func TestTsunamiMatchesFullScanAllVariants(t *testing.T) {
	st := testutil.SmallTaxi(10000, 1)
	work := testutil.SkewedQueries(st, 120, 2)
	probe := testutil.RandomQueries(st, 120, 3)
	for _, v := range []Variant{FullTsunami, AugGridOnly, GridTreeOnly} {
		t.Run(v.String(), func(t *testing.T) {
			idx := Build(st, work, smallConfig(v))
			testutil.CheckMatchesFullScan(t, idx, st, work)
			testutil.CheckMatchesFullScan(t, idx, st, probe)
		})
	}
}

func TestTsunamiOnGeneratedDatasets(t *testing.T) {
	for _, mk := range []func(int, int64) *datasets.Dataset{
		datasets.TPCH, datasets.Taxi, datasets.Perfmon, datasets.Stocks,
	} {
		ds := mk(8000, 42)
		t.Run(ds.Name, func(t *testing.T) {
			work := workload.ForDataset(ds, 10, 7)
			idx := Build(ds.Store, work, smallConfig(FullTsunami))
			testutil.CheckMatchesFullScan(t, idx, ds.Store, work)
			probe := testutil.RandomQueries(ds.Store, 60, 11)
			testutil.CheckMatchesFullScan(t, idx, ds.Store, probe)
		})
	}
}

func TestTsunamiStatsSane(t *testing.T) {
	st := testutil.SmallTaxi(10000, 4)
	work := testutil.SkewedQueries(st, 200, 5)
	idx := Build(st, work, smallConfig(FullTsunami))
	s := idx.IndexStats()
	if s.NumLeafRegions < 1 {
		t.Fatal("no regions")
	}
	if s.NumGridTreeNodes < s.NumLeafRegions {
		t.Error("node count below region count")
	}
	if s.MinPointsPerRegion > s.MedianPointsPerRegion || s.MedianPointsPerRegion > s.MaxPointsPerRegion {
		t.Errorf("region point stats not ordered: %+v", s)
	}
	if s.TotalGridCells <= 0 {
		t.Error("no grid cells")
	}
	if idx.SizeBytes() == 0 {
		t.Error("zero index size")
	}
}

func TestTsunamiSkewedWorkloadSplits(t *testing.T) {
	st := testutil.SmallTaxi(20000, 6)
	work := testutil.SkewedQueries(st, 300, 7)
	idx := Build(st, work, smallConfig(FullTsunami))
	if s := idx.IndexStats(); s.NumLeafRegions < 2 {
		t.Errorf("regions = %d, want >= 2 under a skewed workload", s.NumLeafRegions)
	}
}

func TestAugGridOnlyHasOneRegion(t *testing.T) {
	st := testutil.SmallTaxi(5000, 8)
	work := testutil.SkewedQueries(st, 100, 9)
	idx := Build(st, work, smallConfig(AugGridOnly))
	if s := idx.IndexStats(); s.NumLeafRegions != 1 {
		t.Errorf("regions = %d, want 1 for AugGridOnly", s.NumLeafRegions)
	}
}

func TestGridTreeOnlyHasIndependentSkeletons(t *testing.T) {
	st := testutil.SmallTaxi(10000, 10)
	work := testutil.SkewedQueries(st, 200, 11)
	idx := Build(st, work, smallConfig(GridTreeOnly))
	for _, g := range idx.grids {
		if g == nil {
			continue
		}
		for j, strat := range g.Layout().Skeleton {
			if strat.Kind != auggrid.Independent {
				t.Errorf("GridTreeOnly region grid dim %d strategy %v, want independent", j, strat.Kind)
			}
		}
	}
}

func TestTsunamiReoptimize(t *testing.T) {
	st := testutil.SmallTaxi(8000, 12)
	workA := testutil.SkewedQueries(st, 100, 13)
	workB := testutil.RandomQueries(st, 100, 14)
	idx := Build(st, workA, smallConfig(FullTsunami))
	nidx, secs := idx.Reoptimize(workB)
	if secs <= 0 {
		t.Error("reoptimize time should be positive")
	}
	testutil.CheckMatchesFullScan(t, nidx, st, workB)
}

func TestTsunamiBuildStats(t *testing.T) {
	st := testutil.SmallTaxi(5000, 15)
	work := testutil.SkewedQueries(st, 100, 16)
	idx := Build(st, work, smallConfig(FullTsunami))
	bs := idx.BuildStats()
	if bs.OptimizeSeconds <= 0 || bs.SortSeconds < 0 {
		t.Errorf("implausible build stats: %+v", bs)
	}
}

func TestTsunamiEmptyWorkloadStillAnswers(t *testing.T) {
	st := testutil.SmallTaxi(3000, 17)
	idx := Build(st, nil, smallConfig(FullTsunami))
	probe := testutil.RandomQueries(st, 50, 18)
	testutil.CheckMatchesFullScan(t, idx, st, probe)
}

package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/auggrid"
	"repro/internal/colstore"
	"repro/internal/gridtree"
)

// Persistence (§8): the paper notes Tsunami's techniques "are not
// restricted to in-memory scenarios". Save serializes the full index — the
// clustered column data, the Grid Tree, every region grid, and any
// inserted-but-unmerged delta rows — with encoding/gob; Load reconstructs
// a queryable index without re-optimizing. Save never mutates the index,
// so a live snapshot can be taken while the index is serving readers
// (LiveStore's periodic crash-recovery snapshots rely on this).

// snapNode mirrors the Grid Tree without region payloads.
type snapNode struct {
	SplitDim  int
	SplitVals []int64
	Children  []*snapNode
	RegionID  int // -1 for internal nodes
}

// snapRegion carries the per-region metadata needed after load.
type snapRegion struct {
	Lo, Hi []int64
}

// snapshot is the on-disk form of a Tsunami index.
type snapshot struct {
	FormatVersion int
	Variant       int
	Names         []string
	Cols          [][]int64
	Root          *snapNode
	Regions       []snapRegion
	NumNodes      int
	Depth         int
	NumTypes      int
	Bounds        [][2]int
	Grids         map[int]auggrid.GridSnapshot // region id -> grid; absent = scan region
	// Deltas carries inserted-but-unmerged rows per region (format v2+;
	// v1 snapshots were always merged before saving, so the field decodes
	// as empty).
	Deltas map[int][][]int64
}

const formatVersion = 2

// Save writes the index to w, including any buffered-but-unmerged inserts
// as delta rows. Save does not mutate the index: it only reads, so it is
// safe while t serves concurrent readers (but must be externally
// synchronized with writers, like every read).
func (t *Tsunami) Save(w io.Writer) error {
	s := snapshot{
		FormatVersion: formatVersion,
		Variant:       int(t.cfg.Variant),
		Names:         t.store.Names(),
		NumNodes:      t.tree.NumNodes,
		Depth:         t.tree.Depth,
		NumTypes:      t.tree.NumTypes,
		Bounds:        t.bounds,
	}
	s.Cols = make([][]int64, t.store.NumDims())
	for j := range s.Cols {
		s.Cols[j] = t.store.Column(j)
	}
	s.Regions = make([]snapRegion, len(t.tree.Regions))
	s.Grids = make(map[int]auggrid.GridSnapshot)
	for i, r := range t.tree.Regions {
		s.Regions[i] = snapRegion{Lo: r.Lo, Hi: r.Hi}
		if g := t.grids[i]; g != nil {
			s.Grids[i] = g.Snapshot()
		}
	}
	if t.numBuffered > 0 {
		s.Deltas = make(map[int][][]int64, len(t.deltas))
		for id, d := range t.deltas {
			s.Deltas[id] = d.rows
		}
	}
	s.Root = toSnapNode(t.tree.Root)
	return gob.NewEncoder(w).Encode(&s)
}

func toSnapNode(nd *gridtree.Node) *snapNode {
	out := &snapNode{RegionID: -1}
	if nd.Region != nil {
		out.RegionID = nd.Region.ID
		return out
	}
	out.SplitDim = nd.SplitDim
	out.SplitVals = nd.SplitVals
	out.Children = make([]*snapNode, len(nd.Children))
	for i, c := range nd.Children {
		out.Children[i] = toSnapNode(c)
	}
	return out
}

// Load reconstructs an index written by Save.
func Load(r io.Reader) (*Tsunami, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if s.FormatVersion < 1 || s.FormatVersion > formatVersion {
		return nil, fmt.Errorf("core: load: format version %d, want 1..%d", s.FormatVersion, formatVersion)
	}
	store, err := colstore.FromColumns(s.Cols, s.Names)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if len(s.Bounds) != len(s.Regions) {
		return nil, fmt.Errorf("core: load: inconsistent region tables")
	}

	regions := make([]*gridtree.Region, len(s.Regions))
	for i, sr := range s.Regions {
		b := s.Bounds[i]
		rows := make([]int, b[1]-b[0])
		for k := range rows {
			rows[k] = b[0] + k
		}
		regions[i] = &gridtree.Region{Lo: sr.Lo, Hi: sr.Hi, Rows: rows, ID: i}
	}
	root, err := fromSnapNode(s.Root, regions)
	if err != nil {
		return nil, err
	}
	t := &Tsunami{
		cfg: Config{Variant: Variant(s.Variant)},
		tree: &gridtree.Tree{
			Root:     root,
			Regions:  regions,
			NumNodes: s.NumNodes,
			Depth:    s.Depth,
			NumTypes: s.NumTypes,
		},
		store:  store,
		bounds: s.Bounds,
	}
	t.grids = make([]*auggrid.Grid, len(s.Regions))
	for i, gs := range s.Grids {
		if i < 0 || i >= len(s.Regions) {
			return nil, fmt.Errorf("core: load: grid for unknown region %d", i)
		}
		g, err := auggrid.FromSnapshot(gs)
		if err != nil {
			return nil, fmt.Errorf("core: load: region %d grid: %w", i, err)
		}
		g.Finalize(store, s.Bounds[i][0])
		t.grids[i] = g
	}
	for id, rows := range s.Deltas {
		if id < 0 || id >= len(s.Regions) {
			return nil, fmt.Errorf("core: load: deltas for unknown region %d", id)
		}
		if len(rows) == 0 {
			continue
		}
		for _, row := range rows {
			if len(row) != store.NumDims() {
				return nil, fmt.Errorf("core: load: delta row has %d values, table has %d dims", len(row), store.NumDims())
			}
			// A row keyed under a region that doesn't contain it would be
			// invisible to queries routed elsewhere — reject the snapshot
			// rather than silently undercount.
			if got := findRegionForPoint(t.tree.Root, row).ID; got != id {
				return nil, fmt.Errorf("core: load: delta row keyed under region %d belongs to region %d", id, got)
			}
		}
		if t.deltas == nil {
			t.deltas = make(map[int]*delta, len(s.Deltas))
		}
		t.deltas[id] = &delta{rows: rows}
		t.numBuffered += len(rows)
	}
	return t, nil
}

func fromSnapNode(nd *snapNode, regions []*gridtree.Region) (*gridtree.Node, error) {
	if nd == nil {
		return nil, fmt.Errorf("core: load: nil tree node")
	}
	if nd.RegionID >= 0 {
		if nd.RegionID >= len(regions) {
			return nil, fmt.Errorf("core: load: region id %d out of range", nd.RegionID)
		}
		return &gridtree.Node{Region: regions[nd.RegionID]}, nil
	}
	out := &gridtree.Node{SplitDim: nd.SplitDim, SplitVals: nd.SplitVals}
	out.Children = make([]*gridtree.Node, len(nd.Children))
	for i, c := range nd.Children {
		child, err := fromSnapNode(c, regions)
		if err != nil {
			return nil, err
		}
		out.Children[i] = child
	}
	return out, nil
}

package core

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/index"
	"repro/internal/testutil"
)

// TestSharedIndexExecutesConcurrently is the concurrency contract test: one
// built Tsunami, no clones, many goroutines issuing queries at once. Run
// under -race it also proves the read path keeps no shared mutable state.
func TestSharedIndexExecutesConcurrently(t *testing.T) {
	st := testutil.SmallTaxi(10000, 1)
	work := testutil.SkewedQueries(st, 150, 2)
	idx := Build(st, work, smallConfig(FullTsunami))
	probe := testutil.RandomQueries(st, 60, 3)

	// Precompute expected answers single-threaded.
	full := index.NewFullScan(st)
	want := make([]uint64, len(probe))
	for i, q := range probe {
		want[i] = full.Execute(q).Count
	}

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 5; pass++ {
				for i, q := range probe {
					if got := idx.Execute(q).Count; got != want[i] {
						errs <- q.String()
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for q := range errs {
		t.Errorf("concurrent reader got a wrong answer on %s", q)
	}
}

// TestExecuteParallelMatchesSequential checks intra-query parallelism:
// splitting a query's regions across workers must merge to the sequential
// answer, at every worker count.
func TestExecuteParallelMatchesSequential(t *testing.T) {
	st := testutil.SmallTaxi(8000, 4)
	work := testutil.SkewedQueries(st, 120, 5)
	idx := Build(st, work, smallConfig(FullTsunami))
	probe := testutil.RandomQueries(st, 40, 6)

	for _, workers := range []int{0, 1, 2, 4, runtime.NumCPU()} {
		for _, q := range probe {
			want := idx.Execute(q)
			got := idx.ExecuteParallel(q, workers)
			if got != want {
				t.Fatalf("ExecuteParallel(%s, %d) = %+v, want %+v", q, workers, got, want)
			}
		}
	}
}

// TestExecuteParallelChunksSingleRegion pins sub-region parallelism: with
// one region (AugGridOnly) larger than the chunk granularity, the chunked
// path splits its planned ranges across workers and must still merge to
// the sequential answer — previously a single huge region ran
// single-threaded no matter the worker count.
func TestExecuteParallelChunksSingleRegion(t *testing.T) {
	st := testutil.SmallTaxi(60000, 11)
	work := testutil.SkewedQueries(st, 120, 12)
	idx := Build(st, work, smallConfig(AugGridOnly))
	if n := len(idx.tree.Regions); n != 1 {
		t.Fatalf("AugGridOnly built %d regions, want 1", n)
	}
	probe := testutil.RandomQueries(st, 40, 13)
	maxTasks := 0
	for _, workers := range []int{2, 3, 8} {
		for _, q := range probe {
			want := idx.Execute(q)
			tasks := 0
			got := idx.ExecuteParallelOn(q, workers, func(task func()) {
				tasks++
				go task()
			})
			if got != want {
				t.Fatalf("ExecuteParallel(%s, %d) = %+v, want %+v", q, workers, got, want)
			}
			if tasks > maxTasks {
				maxTasks = tasks
			}
		}
	}
	// The region is far larger than the chunk granularity, so the pool
	// must actually have been used — not clamped back to one worker by
	// the region count (the pre-PR-5 behavior this test exists to catch).
	if maxTasks < 2 {
		t.Fatalf("no query fanned out over the single region (max tasks = %d)", maxTasks)
	}
}

// TestExecuteParallelSeesDeltas checks that buffered inserts are counted
// exactly once when a query's regions execute on multiple workers.
func TestExecuteParallelSeesDeltas(t *testing.T) {
	st := testutil.SmallTaxi(6000, 7)
	work := testutil.SkewedQueries(st, 100, 8)
	idx := Build(st, work, smallConfig(FullTsunami))
	row := make([]int64, st.NumDims())
	for i := 0; i < 50; i++ {
		if err := idx.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	probe := testutil.RandomQueries(st, 20, 9)
	for _, q := range probe {
		want := idx.Execute(q)
		if got := idx.ExecuteParallel(q, 4); got != want {
			t.Fatalf("ExecuteParallel with deltas on %s = %+v, want %+v", q, got, want)
		}
	}
}

package core

import (
	"sync"
	"testing"

	"repro/internal/index"
	"repro/internal/testutil"
)

func TestReaderClonesExecuteConcurrently(t *testing.T) {
	st := testutil.SmallTaxi(10000, 1)
	work := testutil.SkewedQueries(st, 150, 2)
	idx := Build(st, work, smallConfig(FullTsunami))
	probe := testutil.RandomQueries(st, 60, 3)

	// Precompute expected answers single-threaded.
	full := index.NewFullScan(st)
	want := make([]uint64, len(probe))
	for i, q := range probe {
		want[i] = full.Execute(q).Count
	}

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			clone := idx.ReaderClone()
			for pass := 0; pass < 5; pass++ {
				for i, q := range probe {
					if got := clone.Execute(q).Count; got != want[i] {
						errs <- q.String()
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for q := range errs {
		t.Errorf("concurrent reader got a wrong answer on %s", q)
	}
}

func TestReaderCloneSharesData(t *testing.T) {
	st := testutil.SmallTaxi(3000, 4)
	work := testutil.SkewedQueries(st, 80, 5)
	idx := Build(st, work, smallConfig(FullTsunami))
	clone := idx.ReaderClone()
	if clone.Store() != idx.Store() {
		t.Error("reader clone should share the column store")
	}
	if clone.SizeBytes() != idx.SizeBytes() {
		t.Error("reader clone should report the same size")
	}
}

package core

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/index"
	"repro/internal/testutil"
)

// TestSharedIndexExecutesConcurrently is the concurrency contract test: one
// built Tsunami, no clones, many goroutines issuing queries at once. Run
// under -race it also proves the read path keeps no shared mutable state.
func TestSharedIndexExecutesConcurrently(t *testing.T) {
	st := testutil.SmallTaxi(10000, 1)
	work := testutil.SkewedQueries(st, 150, 2)
	idx := Build(st, work, smallConfig(FullTsunami))
	probe := testutil.RandomQueries(st, 60, 3)

	// Precompute expected answers single-threaded.
	full := index.NewFullScan(st)
	want := make([]uint64, len(probe))
	for i, q := range probe {
		want[i] = full.Execute(q).Count
	}

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 5; pass++ {
				for i, q := range probe {
					if got := idx.Execute(q).Count; got != want[i] {
						errs <- q.String()
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for q := range errs {
		t.Errorf("concurrent reader got a wrong answer on %s", q)
	}
}

// TestExecuteParallelMatchesSequential checks intra-query parallelism:
// splitting a query's regions across workers must merge to the sequential
// answer, at every worker count.
func TestExecuteParallelMatchesSequential(t *testing.T) {
	st := testutil.SmallTaxi(8000, 4)
	work := testutil.SkewedQueries(st, 120, 5)
	idx := Build(st, work, smallConfig(FullTsunami))
	probe := testutil.RandomQueries(st, 40, 6)

	for _, workers := range []int{0, 1, 2, 4, runtime.NumCPU()} {
		for _, q := range probe {
			want := idx.Execute(q)
			got := idx.ExecuteParallel(q, workers)
			if got != want {
				t.Fatalf("ExecuteParallel(%s, %d) = %+v, want %+v", q, workers, got, want)
			}
		}
	}
}

// TestExecuteParallelSeesDeltas checks that buffered inserts are counted
// exactly once when a query's regions execute on multiple workers.
func TestExecuteParallelSeesDeltas(t *testing.T) {
	st := testutil.SmallTaxi(6000, 7)
	work := testutil.SkewedQueries(st, 100, 8)
	idx := Build(st, work, smallConfig(FullTsunami))
	row := make([]int64, st.NumDims())
	for i := 0; i < 50; i++ {
		if err := idx.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	probe := testutil.RandomQueries(st, 20, 9)
	for _, q := range probe {
		want := idx.Execute(q)
		if got := idx.ExecuteParallel(q, 4); got != want {
			t.Fatalf("ExecuteParallel with deltas on %s = %+v, want %+v", q, got, want)
		}
	}
}

package core

import (
	"fmt"
	"time"

	"repro/internal/colstore"
	"repro/internal/obs"
	"repro/internal/query"
)

// ExecuteTrace answers q exactly like Execute while recording an
// explain-analyze trace: how long the Grid Tree routing took, how long
// the routed region scans took, and how long folding the buffered
// deltas took. The result is identical to Execute's — tracing wraps the
// same sequential path with timestamps, it never changes the plan.
// Unlike Explain (which re-plans per region without executing),
// ExecuteTrace measures a real execution.
func (t *Tsunami) ExecuteTrace(q query.Query) (colstore.ScanResult, *obs.QueryTrace) {
	tr := &obs.QueryTrace{Query: q.String()}
	total := time.Now()
	ctx := execCtxPool.Get().(*execContext)
	defer execCtxPool.Put(ctx)

	start := time.Now()
	ctx.regions = t.tree.FindRegions(q, ctx.regions[:0])
	tr.AddStage("plan", time.Since(start),
		fmt.Sprintf("%d of %d regions routed", len(ctx.regions), len(t.tree.Regions)))

	var res colstore.ScanResult
	start = time.Now()
	for _, r := range ctx.regions {
		t.executeRegion(q, r, ctx.grid, &res)
	}
	tr.AddStage("scan", time.Since(start), "")

	start = time.Now()
	t.scanDeltas(q, ctx.regions, &res)
	tr.AddStage("delta", time.Since(start),
		fmt.Sprintf("%d buffered rows visible", t.numBuffered))

	tr.Total = time.Since(total)
	tr.Rows = res.PointsScanned
	tr.Bytes = res.BytesTouched
	tr.Regions = len(ctx.regions)
	return res, tr
}

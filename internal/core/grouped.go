package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auggrid"
	"repro/internal/colstore"
	"repro/internal/gridtree"
	"repro/internal/obs"
	"repro/internal/query"
)

// Grouped execution mirrors the flat paths in tsunami.go stage for
// stage: Grid Tree routing and physical-range planning are identical
// (GROUP BY never changes which rows a query touches, only what is
// folded per matching row), the per-range scan runs the grouped
// selection-vector kernel, and partials merge exactly because every
// group carries a (count, sum) pair.

// ExecuteGrouped answers a grouped aggregate query sequentially:
// traverse the Grid Tree, fold each routed region (grid or plain range)
// into one accumulator, fold the buffered delta rows, and assemble the
// sorted per-group result. The concurrency contract matches Execute.
func (t *Tsunami) ExecuteGrouped(q query.Query) colstore.GroupedResult {
	ctx := execCtxPool.Get().(*execContext)
	defer execCtxPool.Put(ctx)
	ctx.regions = t.tree.FindRegions(q, ctx.regions[:0])
	return t.executeRegionsGrouped(q, ctx.regions, ctx.grid)
}

func (t *Tsunami) executeRegionsGrouped(q query.Query, regions []*gridtree.Region, gctx *auggrid.ExecContext) colstore.GroupedResult {
	acc := colstore.NewGroupAccumulator(q)
	for _, r := range regions {
		t.executeRegionGrouped(q, r, gctx, acc)
	}
	t.scanDeltasGrouped(q, regions, acc)
	return acc.Result()
}

// executeRegionGrouped answers q within one region: grid regions plan
// through their Augmented Grid, unindexed regions scan their physical
// range, both through the grouped kernel.
func (t *Tsunami) executeRegionGrouped(q query.Query, r *gridtree.Region, gctx *auggrid.ExecContext, acc *colstore.GroupAccumulator) {
	if g := t.grids[r.ID]; g != nil {
		g.ExecuteGrouped(q, gctx, acc)
		return
	}
	b := t.bounds[r.ID]
	t.store.ScanRangeGrouped(q, b[0], b[1], regionContained(q, r), acc)
}

// scanDeltasGrouped folds matching buffered rows of the routed regions
// into the accumulator, mirroring scanDeltas' accounting (each buffered
// row is one scanned point).
func (t *Tsunami) scanDeltasGrouped(q query.Query, regions []*gridtree.Region, acc *colstore.GroupAccumulator) {
	if t.numBuffered == 0 {
		return
	}
	gd := q.GroupDim()
	for _, r := range regions {
		d := t.deltas[r.ID]
		if d == nil {
			continue
		}
		for _, row := range d.rows {
			acc.AddScanned(1, 0)
			if q.MatchesRow(row) {
				var v int64
				if q.Agg == query.Sum {
					v = row[q.AggDim]
				}
				acc.AddRow(row[gd], v)
			}
		}
	}
}

// ExecuteGroupedParallel answers one grouped query with intra-query
// parallelism, mirroring ExecuteParallel: workers drain regions (or
// sub-region chunks) into per-worker accumulators and the sorted
// partials merge exactly.
func (t *Tsunami) ExecuteGroupedParallel(q query.Query, workers int) colstore.GroupedResult {
	return t.ExecuteGroupedParallelOn(q, workers, nil)
}

// ExecuteGroupedParallelOn is ExecuteGroupedParallel with task
// scheduling delegated to the caller, with the same submit contract as
// ExecuteParallelOn: tasks never block on other tasks, so a shared pool
// cannot deadlock.
func (t *Tsunami) ExecuteGroupedParallelOn(q query.Query, workers int, submit func(task func())) colstore.GroupedResult {
	ctx := execCtxPool.Get().(*execContext)
	defer execCtxPool.Put(ctx)
	ctx.regions = t.tree.FindRegions(q, ctx.regions[:0])
	regions := ctx.regions
	if workers <= 1 || len(regions) == 0 {
		return t.executeRegionsGrouped(q, regions, ctx.grid)
	}
	if submit == nil {
		submit = func(task func()) { go task() }
	}
	if len(regions) < 4*workers {
		return t.executeGroupedChunked(q, regions, ctx, workers, submit)
	}
	if workers > len(regions) {
		workers = len(regions)
	}

	var cursor atomic.Int64
	partial := make([]colstore.GroupedResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		w := w
		submit(func() {
			defer wg.Done()
			gctx := auggrid.GetExecContext()
			defer auggrid.PutExecContext(gctx)
			acc := colstore.NewGroupAccumulator(q)
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(regions) {
					break
				}
				t.executeRegionGrouped(q, regions[i], gctx, acc)
			}
			partial[w] = acc.Result()
		})
	}
	wg.Wait()
	var res colstore.GroupedResult
	for _, p := range partial {
		res.Merge(p)
	}
	t.mergeDeltasGrouped(q, regions, &res)
	return res
}

// executeGroupedChunked is the sub-region grouped parallel path: the
// same chunk plan as executeChunked, drained into per-worker grouped
// accumulators.
func (t *Tsunami) executeGroupedChunked(q query.Query, regions []*gridtree.Region, ctx *execContext, workers int, submit func(task func())) colstore.GroupedResult {
	ctx.phys = ctx.phys[:0]
	for _, r := range regions {
		if g := t.grids[r.ID]; g != nil {
			ctx.phys, _ = g.PlanRanges(q, ctx.grid, ctx.phys)
			continue
		}
		b := t.bounds[r.ID]
		if b[0] < b[1] {
			ctx.phys = append(ctx.phys, auggrid.PhysRange{Start: b[0], End: b[1], Exact: regionContained(q, r)})
		}
	}
	ctx.chunks = ctx.chunks[:0]
	for _, pr := range ctx.phys {
		for s := pr.Start; s < pr.End; s += chunkRows {
			e := s + chunkRows
			if e > pr.End {
				e = pr.End
			}
			ctx.chunks = append(ctx.chunks, auggrid.PhysRange{Start: s, End: e, Exact: pr.Exact})
		}
	}
	chunks := ctx.chunks
	if len(chunks) < 2 || workers <= 1 {
		acc := colstore.NewGroupAccumulator(q)
		for _, c := range chunks {
			t.store.ScanRangeGrouped(q, c.Start, c.End, c.Exact, acc)
		}
		t.scanDeltasGrouped(q, regions, acc)
		return acc.Result()
	}
	if workers > len(chunks) {
		workers = len(chunks)
	}
	var cursor atomic.Int64
	partial := make([]colstore.GroupedResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		w := w
		submit(func() {
			defer wg.Done()
			acc := colstore.NewGroupAccumulator(q)
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(chunks) {
					break
				}
				c := chunks[i]
				t.store.ScanRangeGrouped(q, c.Start, c.End, c.Exact, acc)
			}
			partial[w] = acc.Result()
		})
	}
	wg.Wait()
	var res colstore.GroupedResult
	for _, p := range partial {
		res.Merge(p)
	}
	t.mergeDeltasGrouped(q, regions, &res)
	return res
}

// mergeDeltasGrouped folds the delta buffers into an already-merged
// result (the parallel paths, where workers' partials are combined
// first).
func (t *Tsunami) mergeDeltasGrouped(q query.Query, regions []*gridtree.Region, res *colstore.GroupedResult) {
	if t.numBuffered == 0 {
		return
	}
	acc := colstore.NewGroupAccumulator(q)
	t.scanDeltasGrouped(q, regions, acc)
	res.Merge(acc.Result())
}

// ExecuteGroupedTrace answers a grouped query exactly like
// ExecuteGrouped while recording an explain-analyze trace: routing,
// the fused scan+group stage, the delta fold, and the final merge
// (sorted result assembly) are timed per stage.
func (t *Tsunami) ExecuteGroupedTrace(q query.Query) (colstore.GroupedResult, *obs.QueryTrace) {
	tr := &obs.QueryTrace{Query: q.String()}
	total := time.Now()
	ctx := execCtxPool.Get().(*execContext)
	defer execCtxPool.Put(ctx)

	start := time.Now()
	ctx.regions = t.tree.FindRegions(q, ctx.regions[:0])
	tr.AddStage("plan", time.Since(start),
		fmt.Sprintf("%d of %d regions routed", len(ctx.regions), len(t.tree.Regions)))

	acc := colstore.NewGroupAccumulator(q)
	start = time.Now()
	for _, r := range ctx.regions {
		t.executeRegionGrouped(q, r, ctx.grid, acc)
	}
	tr.AddStage("scan+group", time.Since(start), "")

	start = time.Now()
	t.scanDeltasGrouped(q, ctx.regions, acc)
	tr.AddStage("delta", time.Since(start),
		fmt.Sprintf("%d buffered rows visible", t.numBuffered))

	start = time.Now()
	res := acc.Result()
	tr.AddStage("merge", time.Since(start),
		fmt.Sprintf("%d groups assembled", len(res.Groups)))

	tr.Total = time.Since(total)
	tr.Rows = res.PointsScanned
	tr.Bytes = res.BytesTouched
	tr.Regions = len(ctx.regions)
	return res, tr
}

package core

import (
	"bytes"
	"testing"

	"repro/internal/query"

	"repro/internal/testutil"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	st := testutil.SmallTaxi(10000, 1)
	work := testutil.SkewedQueries(st, 150, 2)
	idx := Build(st, work, smallConfig(FullTsunami))

	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// The loaded index answers exactly like the original on fresh queries.
	probe := testutil.RandomQueries(st, 100, 3)
	for _, q := range probe {
		a := idx.Execute(q)
		b := loaded.Execute(q)
		if a.Count != b.Count || a.Sum != b.Sum {
			t.Fatalf("loaded index diverges on %s: (%d, %d) vs (%d, %d)",
				q, b.Count, b.Sum, a.Count, a.Sum)
		}
	}
	// Structure statistics survive.
	sa, sb := idx.IndexStats(), loaded.IndexStats()
	if sa.NumLeafRegions != sb.NumLeafRegions || sa.TotalGridCells != sb.TotalGridCells {
		t.Errorf("stats diverge: %+v vs %+v", sa, sb)
	}
	if sa.NumGridTreeNodes != sb.NumGridTreeNodes || sa.GridTreeDepth != sb.GridTreeDepth {
		t.Errorf("tree shape diverges: %+v vs %+v", sa, sb)
	}
}

func TestSaveCarriesBufferedInserts(t *testing.T) {
	st := testutil.SmallTaxi(5000, 4)
	work := testutil.SkewedQueries(st, 100, 5)
	idx := Build(st, work, smallConfig(FullTsunami))
	for i := 0; i < 25; i++ {
		if err := idx.Insert([]int64{5_000_000, 5_000_100, 7, 7, 7}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Save is a pure read: the source index still holds its buffered rows
	// unmerged (a live snapshot must not perturb the serving index).
	if got := idx.NumBuffered(); got != 25 {
		t.Errorf("Save mutated the index: %d rows buffered, want 25", got)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The buffered rows round-trip as deltas, still unmerged...
	if got := loaded.NumBuffered(); got != 25 {
		t.Errorf("loaded index has %d rows buffered, want 25", got)
	}
	q := query.NewCount(query.Filter{Dim: 0, Lo: 5_000_000, Hi: 5_000_000})
	if got := loaded.Execute(q).Count; got != 25 {
		t.Errorf("buffered inserts lost through save/load: count = %d, want 25", got)
	}
	// ...and merge cleanly on the restored index.
	if err := loaded.MergeDeltas(); err != nil {
		t.Fatal(err)
	}
	if got := loaded.Execute(q).Count; got != 25 {
		t.Errorf("merge after load lost rows: count = %d, want 25", got)
	}
	if loaded.Store().NumRows() != 5025 {
		t.Errorf("rows after merge = %d, want 5025", loaded.Store().NumRows())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage input should fail to load")
	}
}

func TestLoadedIndexSupportsInserts(t *testing.T) {
	st := testutil.SmallTaxi(5000, 6)
	work := testutil.SkewedQueries(st, 100, 7)
	idx := Build(st, work, smallConfig(FullTsunami))
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Insert([]int64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := loaded.MergeDeltas(); err != nil {
		t.Fatal(err)
	}
	if loaded.Store().NumRows() != 5001 {
		t.Errorf("rows = %d, want 5001", loaded.Store().NumRows())
	}
}

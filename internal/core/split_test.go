package core

import (
	"math/rand"
	"testing"

	"repro/internal/colstore"
	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/testutil"
)

// TestSplitRangeMovesExactRows is the core invariant of range extraction:
// the moved set is exactly the rows in [lo, hi] on the split dimension,
// the remainder answers every query as a full scan over the kept rows,
// and the original index is untouched.
func TestSplitRangeMovesExactRows(t *testing.T) {
	st := testutil.SmallTaxi(6000, 201)
	work := testutil.SkewedQueries(st, 100, 202)
	idx := Build(st, work, smallConfig(FullTsunami))

	// Buffer some rows too: in-range buffered rows must join the moved
	// set, out-of-range ones must fold into the remainder.
	rng := rand.New(rand.NewSource(203))
	var buffered [][]int64
	for i := 0; i < 150; i++ {
		row := []int64{
			rng.Int63n(1_000_000), rng.Int63n(1_100_000),
			rng.Int63n(1000), rng.Int63n(3000), 1 + rng.Int63n(6),
		}
		buffered = append(buffered, row)
		if err := idx.Insert(row); err != nil {
			t.Fatal(err)
		}
	}

	lo, hi := st.MinMax(0)
	cut := lo + (hi-lo)/3
	cut2 := lo + 2*(hi-lo)/3

	totalBefore := idx.Execute(query.NewCount()).Count
	rem, moved, err := idx.SplitRange(0, cut, cut2)
	if err != nil {
		t.Fatal(err)
	}

	// The original keeps serving everything.
	if got := idx.Execute(query.NewCount()).Count; got != totalBefore {
		t.Fatalf("original index changed: count %d, want %d", got, totalBefore)
	}
	if got := idx.NumBuffered(); got != 150 {
		t.Fatalf("original buffered = %d, want 150", got)
	}

	// Every moved row is in range; their count matches a scan.
	wantMoved := idx.Execute(query.NewCount(query.Filter{Dim: 0, Lo: cut, Hi: cut2})).Count
	if uint64(len(moved)) != wantMoved {
		t.Fatalf("moved %d rows, want %d", len(moved), wantMoved)
	}
	for i, row := range moved {
		if row[0] < cut || row[0] > cut2 {
			t.Fatalf("moved row %d has dim0=%d outside [%d, %d]", i, row[0], cut, cut2)
		}
	}

	// The remainder has no buffered rows, none of the moved range, and
	// agrees with a full scan of kept rows on every aggregate.
	if got := rem.NumBuffered(); got != 0 {
		t.Fatalf("remainder buffered = %d, want 0", got)
	}
	if got := rem.Execute(query.NewCount(query.Filter{Dim: 0, Lo: cut, Hi: cut2})).Count; got != 0 {
		t.Fatalf("remainder still holds %d in-range rows", got)
	}
	keptTruth := keptStore(t, st, buffered, 0, cut, cut2)
	probe := append(testutil.RandomQueries(st, 80, 204), query.NewCount())
	for i := range st.Names() {
		probe = append(probe, query.NewSum(i))
	}
	testutil.CheckMatchesFullScan(t, rem, keptTruth, probe)

	// The remainder resumes normal life: inserts (even back into the
	// extracted range) and merges still work.
	if err := rem.Insert([]int64{cut, cut, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := rem.MergeDeltas(); err != nil {
		t.Fatal(err)
	}
	if got := rem.Execute(query.NewCount(query.Filter{Dim: 0, Lo: cut, Hi: cut2})).Count; got != 1 {
		t.Fatalf("post-split insert not visible: count %d, want 1", got)
	}
}

// TestSplitRangeEdges pins degenerate splits: a range holding nothing, a
// range holding everything, and bad arguments.
func TestSplitRangeEdges(t *testing.T) {
	st := testutil.SmallTaxi(3000, 211)
	idx := Build(st, testutil.SkewedQueries(st, 60, 212), smallConfig(FullTsunami))
	total := idx.Execute(query.NewCount()).Count

	rem, moved, err := idx.SplitRange(0, 5_000_000, 6_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 0 {
		t.Fatalf("empty range moved %d rows", len(moved))
	}
	if got := rem.Execute(query.NewCount()).Count; got != total {
		t.Fatalf("no-op split lost rows: %d, want %d", got, total)
	}

	lo, hi := st.MinMax(0)
	rem, moved, err = idx.SplitRange(0, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(moved)) != total {
		t.Fatalf("full split moved %d rows, want %d", len(moved), total)
	}
	if got := rem.Execute(query.NewCount()).Count; got != 0 {
		t.Fatalf("full split kept %d rows", got)
	}

	if _, _, err := idx.SplitRange(99, 0, 1); err == nil {
		t.Error("out-of-range dim accepted")
	}
	if _, _, err := idx.SplitRange(0, 10, 5); err == nil {
		t.Error("inverted range accepted")
	}
}

// keptStore rebuilds ground truth: base rows plus buffered rows, minus
// everything in [lo, hi] on dim.
func keptStore(t *testing.T, st *colstore.Store, extra [][]int64, dim int, lo, hi int64) *colstore.Store {
	t.Helper()
	d := st.NumDims()
	cols := make([][]int64, d)
	row := make([]int64, d)
	keep := func(r []int64) {
		if r[dim] >= lo && r[dim] <= hi {
			return
		}
		for j := 0; j < d; j++ {
			cols[j] = append(cols[j], r[j])
		}
	}
	for i := 0; i < st.NumRows(); i++ {
		keep(st.Row(i, row))
	}
	for _, r := range extra {
		keep(r)
	}
	out, err := colstore.FromColumns(cols, st.Names())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

var _ index.Index = (*Tsunami)(nil)

package core

import (
	"fmt"
	"strings"

	"repro/internal/colstore"
	"repro/internal/query"
)

// RegionTrace describes how one Grid Tree region contributed to a query.
type RegionTrace struct {
	RegionID      int
	Rows          int
	HasGrid       bool
	GridCells     int
	CellRanges    int
	CellsVisited  int
	PointsScanned uint64
	Matched       uint64
}

// Trace is a query execution trace: which regions the Grid Tree routed the
// query to and the work done in each (the paper's §3 query workflow made
// visible).
type Trace struct {
	Query   query.Query
	Regions []RegionTrace
	Total   colstore.ScanResult
	// RegionsTotal is the number of leaf regions in the index, for
	// "visited k of n" reporting.
	RegionsTotal int
}

// Explain executes q and records per-region work. Like Execute it keeps all
// per-query state in a pooled context, so it is safe for concurrent callers.
func (t *Tsunami) Explain(q query.Query) Trace {
	ctx := execCtxPool.Get().(*execContext)
	defer execCtxPool.Put(ctx)
	tr := Trace{Query: q, RegionsTotal: len(t.tree.Regions)}
	ctx.regions = t.tree.FindRegions(q, ctx.regions[:0])
	for _, r := range ctx.regions {
		rt := RegionTrace{RegionID: r.ID, Rows: len(r.Rows)}
		var res colstore.ScanResult
		if g := t.grids[r.ID]; g != nil {
			rt.HasGrid = true
			rt.GridCells = g.NumCells()
			sub, st := g.Execute(q, ctx.grid)
			res = sub
			rt.CellRanges = st.CellRanges
			rt.CellsVisited = st.CellsVisited
		} else {
			b := t.bounds[r.ID]
			t.store.ScanRange(q, b[0], b[1], regionContained(q, r), &res)
			rt.CellRanges = 1
		}
		rt.PointsScanned = res.PointsScanned
		rt.Matched = res.Count
		tr.Total.Add(res)
		tr.Regions = append(tr.Regions, rt)
	}
	t.scanDeltas(q, ctx.regions, &tr.Total)
	return tr
}

// String renders the trace as an EXPLAIN-style report.
func (tr Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", tr.Query)
	fmt.Fprintf(&b, "regions visited: %d of %d\n", len(tr.Regions), tr.RegionsTotal)
	for _, r := range tr.Regions {
		kind := "scan"
		if r.HasGrid {
			kind = fmt.Sprintf("grid(%d cells)", r.GridCells)
		}
		fmt.Fprintf(&b, "  region %-3d %-16s rows=%-8d ranges=%-4d scanned=%-8d matched=%d\n",
			r.RegionID, kind, r.Rows, r.CellRanges, r.PointsScanned, r.Matched)
	}
	fmt.Fprintf(&b, "total: count=%d sum=%d scanned=%d\n",
		tr.Total.Count, tr.Total.Sum, tr.Total.PointsScanned)
	return b.String()
}

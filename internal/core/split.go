package core

import (
	"fmt"

	"repro/internal/auggrid"
	"repro/internal/colstore"
)

// Range extraction (shard rebalancing support): SplitRange carves a key
// range out of an index into a row set, producing a successor index that
// serves everything else. It is the source-shard half of an online
// migration — the sharded rebalancer extracts a moving range from one
// shard and drains it into a neighbor's ingest path — and, like the other
// copy-on-write maintenance operations in live.go, it never mutates its
// receiver, so a published epoch keeps serving lock-free readers for the
// whole rebuild.

// SplitRange returns a copy of t that no longer contains the rows whose
// dim value lies in [lo, hi] (both inclusive), together with those rows.
// Buffered rows are folded into the copy's clustered layout as part of
// the rebuild (in-range buffered rows join the moved set), so the copy
// starts with empty delta buffers. Affected region grids are rebuilt with
// their existing layouts; untouched regions are copied verbatim and their
// grids rebased. t is untouched and can keep serving reads throughout.
//
// The returned rows may share backing slices with t's delta buffers;
// treat them as immutable.
func (t *Tsunami) SplitRange(dim int, lo, hi int64) (*Tsunami, [][]int64, error) {
	if dim < 0 || dim >= t.store.NumDims() {
		return nil, nil, fmt.Errorf("core: split dim %d out of range (table has %d dims)", dim, t.store.NumDims())
	}
	if lo > hi {
		return nil, nil, fmt.Errorf("core: split range [%d, %d] is empty", lo, hi)
	}
	nt := t.fork(false)
	moved, err := nt.splitRange(dim, lo, hi)
	if err != nil {
		return nil, nil, err
	}
	return nt, moved, nil
}

// splitRange rewrites the receiver without the rows in [lo, hi] on dim and
// returns them. Callers own the receiver exclusively (it is a fresh fork).
func (t *Tsunami) splitRange(dim int, lo, hi int64) ([][]int64, error) {
	d := t.store.NumDims()
	col := t.store.Column(dim)
	inRange := func(v int64) bool { return v >= lo && v <= hi }

	var moved [][]int64
	newCols := make([][]int64, d)
	for j := range newCols {
		newCols[j] = make([]int64, 0, t.store.NumRows())
	}
	newBounds := make([][2]int, len(t.bounds))
	newGrids := make([]*auggrid.Grid, len(t.grids))
	rebuilt := make([]bool, len(t.grids))
	rewritten := make([]bool, len(t.grids)) // touched: row set changed, old grid is invalid
	cursor := 0
	row := make([]int64, d)
	for _, r := range t.tree.Regions {
		b := t.bounds[r.ID]
		dl := t.deltas[r.ID]
		// A region is touched when it must be rewritten: it holds clustered
		// rows in the moving range, or buffered rows (which this rebuild
		// folds, like a merge).
		touched := dl != nil && len(dl.rows) > 0
		if !touched && r.Lo[dim] <= hi && r.Hi[dim] >= lo {
			for i := b[0]; i < b[1]; i++ {
				if inRange(col[i]) {
					touched = true
					break
				}
			}
		}
		start := cursor
		if !touched {
			for j := 0; j < d; j++ {
				newCols[j] = append(newCols[j], t.store.Column(j)[b[0]:b[1]]...)
			}
			cursor += b[1] - b[0]
			newBounds[r.ID] = [2]int{start, cursor}
			if start != b[0] {
				// The segment shifted (an earlier region shrank): refresh the
				// region's absolute row ids.
				r.Rows = make([]int, cursor-start)
				for i := range r.Rows {
					r.Rows[i] = start + i
				}
			}
			continue
		}
		rewritten[r.ID] = true

		// Collect the region's surviving rows (clustered, then buffered)
		// into a scratch segment; in-range rows leave for the moved set.
		keptCols := make([][]int64, d)
		for i := b[0]; i < b[1]; i++ {
			if inRange(col[i]) {
				moved = append(moved, append([]int64(nil), t.store.Row(i, row)...))
				continue
			}
			for j := 0; j < d; j++ {
				keptCols[j] = append(keptCols[j], t.store.Value(i, j))
			}
		}
		if dl != nil {
			for _, drow := range dl.rows {
				if inRange(drow[dim]) {
					moved = append(moved, drow)
					continue
				}
				for j, v := range drow {
					keptCols[j] = append(keptCols[j], v)
					// Widen the region's box to cover the folded row, as
					// MergeDeltas does: regionContained relies on box
					// soundness.
					if v < r.Lo[j] {
						r.Lo[j] = v
					}
					if v > r.Hi[j] {
						r.Hi[j] = v
					}
				}
			}
		}
		kept := len(keptCols[0])
		if g := t.grids[r.ID]; g != nil && kept > 0 {
			seg, err := colstore.FromColumns(keptCols, t.store.Names())
			if err != nil {
				return nil, fmt.Errorf("core: split of region %d: %w", r.ID, err)
			}
			segRows := make([]int, kept)
			for i := range segRows {
				segRows[i] = i
			}
			ng, ordered, err := auggrid.Build(seg, segRows, g.Layout())
			if err != nil {
				return nil, fmt.Errorf("core: split rebuild of region %d: %w", r.ID, err)
			}
			for _, i := range ordered {
				for j := 0; j < d; j++ {
					newCols[j] = append(newCols[j], seg.Value(i, j))
				}
			}
			newGrids[r.ID] = ng
			rebuilt[r.ID] = true
		} else {
			// No grid, or the region emptied out: plain rows, plain scans.
			for j := 0; j < d; j++ {
				newCols[j] = append(newCols[j], keptCols[j]...)
			}
		}
		cursor += kept
		newBounds[r.ID] = [2]int{start, cursor}
		r.Rows = make([]int, kept)
		for i := range r.Rows {
			r.Rows[i] = start + i
		}
	}

	newStore, err := colstore.FromColumns(newCols, t.store.Names())
	if err != nil {
		return nil, fmt.Errorf("core: split: %w", err)
	}
	for id, g := range t.grids {
		switch {
		case rebuilt[id]:
			newGrids[id].Finalize(newStore, newBounds[id][0])
		case g != nil && !rewritten[id]:
			// Untouched region: same rows in the same order, new offsets.
			newGrids[id] = g.Rebase(newStore, newBounds[id][0])
		}
		// Touched regions that emptied out (or never had a grid) fall back
		// to the nil-grid plain-scan path.
	}
	t.store = newStore
	t.grids = newGrids
	t.bounds = newBounds
	t.deltas = nil
	t.numBuffered = 0
	return moved, nil
}

package core

import (
	"testing"

	"repro/internal/index"
	"repro/internal/testutil"
)

func TestReoptimizeRegionsStaysCorrect(t *testing.T) {
	st := testutil.SmallTaxi(20000, 1)
	workA := testutil.SkewedQueries(st, 200, 2)
	idx := Build(st, workA, smallConfig(FullTsunami))

	workB := testutil.RandomQueries(st, 150, 3)
	rebuilt, secs, err := idx.ReoptimizeRegions(workB, 4)
	if err != nil {
		t.Fatal(err)
	}
	if secs <= 0 {
		t.Error("expected measurable time")
	}
	t.Logf("rebuilt %d regions in %.3fs", rebuilt, secs)

	// Correctness after the in-place splice, on both workloads.
	testutil.CheckMatchesFullScan(t, idx, st, workA[:50])
	testutil.CheckMatchesFullScan(t, idx, st, workB[:50])
}

func TestReoptimizeRegionsRebuildsSomething(t *testing.T) {
	st := testutil.SmallTaxi(20000, 4)
	workA := testutil.SkewedQueries(st, 200, 5)
	idx := Build(st, workA, smallConfig(FullTsunami))
	if idx.IndexStats().NumLeafRegions < 2 {
		t.Skip("tree did not split; nothing to rebuild incrementally")
	}
	// A workload concentrated on a different dimension shifts incident
	// queries across regions.
	workB := testutil.RandomQueries(st, 200, 6)
	rebuilt, _, err := idx.ReoptimizeRegions(workB, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt == 0 {
		t.Error("expected at least one region rebuild under a shifted workload")
	}
}

func TestReoptimizeRegionsCheaperThanFull(t *testing.T) {
	st := testutil.SmallTaxi(30000, 7)
	workA := testutil.SkewedQueries(st, 300, 8)
	idx := Build(st, workA, smallConfig(FullTsunami))
	workB := testutil.RandomQueries(st, 200, 9)

	_, incSecs, err := idx.ReoptimizeRegions(workB, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, fullSecs := idx.Reoptimize(workB)
	if incSecs > fullSecs {
		t.Errorf("incremental (%.3fs) should not exceed full rebuild (%.3fs)", incSecs, fullSecs)
	}
}

func TestReoptimizeRegionsWithBufferedInserts(t *testing.T) {
	st := testutil.SmallTaxi(10000, 10)
	workA := testutil.SkewedQueries(st, 150, 11)
	idx := Build(st, workA, smallConfig(FullTsunami))
	for i := 0; i < 30; i++ {
		if err := idx.Insert([]int64{int64(i * 1000), int64(i*1000 + 50), 10, 100, 2}); err != nil {
			t.Fatal(err)
		}
	}
	workB := testutil.RandomQueries(st, 100, 12)
	if _, _, err := idx.ReoptimizeRegions(workB, 3); err != nil {
		t.Fatal(err)
	}
	if idx.NumBuffered() != 0 {
		t.Error("incremental reopt should fold buffered inserts first")
	}
	// Ground truth includes inserts.
	truth := buildTruth(t, st, insertedRows(30))
	full := index.NewFullScan(truth)
	for _, q := range workB[:40] {
		if got, want := idx.Execute(q).Count, full.Execute(q).Count; got != want {
			t.Fatalf("%s: got %d, want %d", q, got, want)
		}
	}
}

func insertedRows(n int) [][]int64 {
	out := make([][]int64, n)
	for i := range out {
		out[i] = []int64{int64(i * 1000), int64(i*1000 + 50), 10, 100, 2}
	}
	return out
}

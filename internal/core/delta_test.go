package core

import (
	"math/rand"
	"testing"

	"repro/internal/colstore"
	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/testutil"
)

func TestInsertVisibleBeforeMerge(t *testing.T) {
	st := testutil.SmallTaxi(5000, 1)
	work := testutil.SkewedQueries(st, 100, 2)
	idx := Build(st, work, smallConfig(FullTsunami))

	// Insert rows with a sentinel value far outside the existing domain.
	for i := 0; i < 10; i++ {
		if err := idx.Insert([]int64{2_000_000, 2_000_100, 50, 500, 3}); err != nil {
			t.Fatal(err)
		}
	}
	if idx.NumBuffered() != 10 {
		t.Fatalf("buffered = %d, want 10", idx.NumBuffered())
	}
	res := idx.Execute(query.NewCount(query.Filter{Dim: 0, Lo: 2_000_000, Hi: 2_000_000}))
	if res.Count != 10 {
		t.Errorf("inserted rows not visible: count = %d, want 10", res.Count)
	}
}

func TestInsertWrongArity(t *testing.T) {
	st := testutil.SmallTaxi(2000, 3)
	idx := Build(st, nil, smallConfig(FullTsunami))
	if err := idx.Insert([]int64{1, 2}); err == nil {
		t.Error("short row should be rejected")
	}
}

func TestMergeDeltasFoldsRows(t *testing.T) {
	st := testutil.SmallTaxi(5000, 4)
	work := testutil.SkewedQueries(st, 100, 5)
	idx := Build(st, work, smallConfig(FullTsunami))

	rng := rand.New(rand.NewSource(6))
	inserted := make([][]int64, 200)
	for i := range inserted {
		row := []int64{
			rng.Int63n(1_000_000),
			rng.Int63n(1_000_000),
			rng.Int63n(1000),
			rng.Int63n(3000),
			1 + rng.Int63n(6),
		}
		inserted[i] = row
		if err := idx.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := idx.MergeDeltas(); err != nil {
		t.Fatal(err)
	}
	if idx.NumBuffered() != 0 {
		t.Errorf("buffered = %d after merge, want 0", idx.NumBuffered())
	}
	if idx.Store().NumRows() != 5200 {
		t.Errorf("rows = %d after merge, want 5200", idx.Store().NumRows())
	}

	// Ground truth: original data + inserted rows.
	truth := buildTruth(t, st, inserted)
	full := index.NewFullScan(truth)
	probe := testutil.RandomQueries(st, 80, 7)
	for _, q := range probe {
		want := full.Execute(q)
		got := idx.Execute(q)
		if got.Count != want.Count || got.Sum != want.Sum {
			t.Fatalf("after merge, %s: got (%d, %d), want (%d, %d)",
				q, got.Count, got.Sum, want.Count, want.Sum)
		}
	}
}

func TestInsertQueryMergeQueryCycle(t *testing.T) {
	st := testutil.SmallTaxi(5000, 8)
	work := testutil.SkewedQueries(st, 100, 9)
	idx := Build(st, work, smallConfig(FullTsunami))
	rng := rand.New(rand.NewSource(10))

	var all [][]int64
	for cycle := 0; cycle < 3; cycle++ {
		for i := 0; i < 50; i++ {
			row := []int64{
				rng.Int63n(1_000_000), rng.Int63n(1_100_000),
				rng.Int63n(1000), rng.Int63n(3000), 1 + rng.Int63n(6),
			}
			all = append(all, row)
			if err := idx.Insert(row); err != nil {
				t.Fatal(err)
			}
		}
		// Queries must be correct with a half-full buffer too.
		truth := buildTruth(t, st, all)
		full := index.NewFullScan(truth)
		probe := testutil.RandomQueries(st, 25, int64(11+cycle))
		for _, q := range probe {
			if got, want := idx.Execute(q).Count, full.Execute(q).Count; got != want {
				t.Fatalf("cycle %d pre-merge %s: got %d, want %d", cycle, q, got, want)
			}
		}
		if err := idx.MergeDeltas(); err != nil {
			t.Fatal(err)
		}
		for _, q := range probe {
			if got, want := idx.Execute(q).Count, full.Execute(q).Count; got != want {
				t.Fatalf("cycle %d post-merge %s: got %d, want %d", cycle, q, got, want)
			}
		}
	}
}

// TestMergeDeltasOverPartial drives a skewed ingest: one region absorbs
// most inserts, several others get a trickle. A partial merge must fold
// only the hot buffers, keep the cold rows buffered (and still visible),
// and leave every answer equal to a full scan throughout.
func TestMergeDeltasOverPartial(t *testing.T) {
	st := testutil.SmallTaxi(6000, 13)
	work := testutil.SkewedQueries(st, 100, 14)
	idx := Build(st, work, smallConfig(FullTsunami))

	rng := rand.New(rand.NewSource(15))
	var all [][]int64
	insert := func(row []int64) {
		t.Helper()
		all = append(all, row)
		if err := idx.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	// Hot: 300 rows concentrated at the top of dim 0 (one or two regions).
	for i := 0; i < 300; i++ {
		insert([]int64{990_000 + rng.Int63n(10_000), rng.Int63n(1_100_000), rng.Int63n(1000), rng.Int63n(3000), 1 + rng.Int63n(6)})
	}
	// Cold: 40 rows spread over the whole domain.
	for i := 0; i < 40; i++ {
		insert([]int64{rng.Int63n(900_000), rng.Int63n(1_100_000), rng.Int63n(1000), rng.Int63n(3000), 1 + rng.Int63n(6)})
	}

	folded, err := idx.MergeDeltasOver(100)
	if err != nil {
		t.Fatal(err)
	}
	if folded == 0 || folded >= 340 {
		t.Fatalf("partial merge folded %d rows, want some but not all of 340", folded)
	}
	if got := idx.NumBuffered(); got != 340-folded {
		t.Errorf("buffered = %d after partial merge, want %d", got, 340-folded)
	}
	if got := idx.Store().NumRows(); got != 6000+folded {
		t.Errorf("clustered rows = %d, want %d", got, 6000+folded)
	}

	truth := buildTruth(t, st, all)
	full := index.NewFullScan(truth)
	probe := append(testutil.RandomQueries(st, 60, 16),
		query.NewCount(query.Filter{Dim: 0, Lo: 990_000, Hi: 1_100_000}),
		query.NewCount())
	for _, q := range probe {
		want := full.Execute(q)
		got := idx.Execute(q)
		if got.Count != want.Count || got.Sum != want.Sum {
			t.Fatalf("after partial merge, %s: got (%d, %d), want (%d, %d)",
				q, got.Count, got.Sum, want.Count, want.Sum)
		}
	}

	// Raising nothing over the bar must leave the index untouched.
	before := idx.Store()
	if n, err := idx.MergeDeltasOver(1 << 20); err != nil || n != 0 {
		t.Fatalf("over-threshold merge folded %d (err %v), want 0", n, err)
	}
	if idx.Store() != before {
		t.Error("no-op partial merge rebuilt the store")
	}

	// A full merge afterwards folds the cold remainder.
	if err := idx.MergeDeltas(); err != nil {
		t.Fatal(err)
	}
	if idx.NumBuffered() != 0 {
		t.Errorf("buffered = %d after full merge, want 0", idx.NumBuffered())
	}
	for _, q := range probe {
		if got, want := idx.Execute(q).Count, full.Execute(q).Count; got != want {
			t.Fatalf("after full merge, %s: got %d, want %d", q, got, want)
		}
	}
}

func TestMergeDeltasNoopWhenEmpty(t *testing.T) {
	st := testutil.SmallTaxi(2000, 12)
	idx := Build(st, nil, smallConfig(FullTsunami))
	before := idx.Store()
	if err := idx.MergeDeltas(); err != nil {
		t.Fatal(err)
	}
	if idx.Store() != before {
		t.Error("empty merge should not rebuild the store")
	}
}

// buildTruth appends inserted rows to a copy of the original table.
func buildTruth(t *testing.T, st *colstore.Store, rows [][]int64) *colstore.Store {
	t.Helper()
	d := st.NumDims()
	cols := make([][]int64, d)
	for j := 0; j < d; j++ {
		cols[j] = append(append([]int64(nil), st.Column(j)...), nil...)
		for _, r := range rows {
			cols[j] = append(cols[j], r[j])
		}
	}
	truth, err := colstore.FromColumns(cols, st.Names())
	if err != nil {
		t.Fatal(err)
	}
	return truth
}

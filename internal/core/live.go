package core

import (
	"fmt"

	"repro/internal/auggrid"
	"repro/internal/gridtree"
	"repro/internal/query"
)

// Copy-on-write maintenance (§8 serving): the variants in this file never
// mutate their receiver, so a published index can keep serving lock-free
// readers while a writer or a background maintainer derives the next
// version from it. They are the building blocks of the epoch-based
// LiveStore (internal/live): CopyWithInserts is the serialized ingest
// step, MergedCopy and ReoptimizeRegionsCopy are the background rebuild
// steps, and every result is published with a single atomic pointer swap.

// CopyWithInserts returns a copy of t whose delta buffers additionally
// hold rows, leaving t untouched. The copy shares the clustered column
// data, Grid Tree, and region grids with t — only the delta containers of
// the affected regions are replaced — so it is cheap enough to run per
// ingest batch. The copy retains the row slices themselves (no defensive
// copy, keeping the serialized ingest path to one allocation per row):
// the caller must not mutate them afterwards.
//
// Concurrency: t may be serving concurrent readers during the call.
// Callers must serialize all CopyWithInserts calls deriving from the same
// lineage (successive copies may share delta backing arrays; the single-
// writer discipline keeps every array slot written exactly once, before
// the version that exposes it is published).
func (t *Tsunami) CopyWithInserts(rows [][]int64) (*Tsunami, error) {
	d := t.store.NumDims()
	for _, row := range rows {
		if len(row) != d {
			return nil, fmt.Errorf("core: row has %d values, table has %d dims", len(row), d)
		}
	}
	nt := &Tsunami{
		cfg:         t.cfg,
		store:       t.store,
		tree:        t.tree,
		grids:       t.grids,
		bounds:      t.bounds,
		stats:       t.stats,
		numBuffered: t.numBuffered,
	}
	nt.deltas = make(map[int]*delta, len(t.deltas)+1)
	for id, dl := range t.deltas {
		nt.deltas[id] = dl
	}
	for _, row := range rows {
		r := findRegionForPoint(t.tree.Root, row)
		nd := &delta{}
		if old := nt.deltas[r.ID]; old != nil {
			nd.rows = old.rows
		}
		nd.rows = append(nd.rows, row)
		nt.deltas[r.ID] = nd
		nt.numBuffered++
	}
	return nt, nil
}

// MergedCopy returns a new index equal to t with every buffered row folded
// into the clustered layout (see MergeDeltas), leaving t untouched so it
// can keep serving reads for the whole — potentially long — rebuild.
func (t *Tsunami) MergedCopy() (*Tsunami, error) {
	nt, _, err := t.MergedCopyOver(0)
	return nt, err
}

// MergedCopyOver is MergedCopy with a per-region threshold (see
// MergeDeltasOver): only regions whose delta buffer holds at least
// minPerRegion rows are folded; the rest stay buffered in the copy. It
// returns the copy and how many rows were folded. When nothing crosses
// the threshold the fold count is zero and the returned copy is t itself
// (unchanged, still valid to serve).
func (t *Tsunami) MergedCopyOver(minPerRegion int) (*Tsunami, int, error) {
	// MergeDeltasOver only reads the old store (it emits a fresh one), so
	// the fork can share it; the tree is deep-copied because merging widens
	// region boxes and renumbers region rows.
	nt := t.fork(false)
	n, err := nt.MergeDeltasOver(minPerRegion)
	if err != nil {
		return nil, 0, err
	}
	if n == 0 {
		return t, 0, nil
	}
	return nt, n, nil
}

// ReoptimizeRegionsCopy is ReoptimizeRegions rebuilt into a copy: it
// returns a new index whose most-drifted region grids are re-optimized
// for the new workload (buffered rows are merged first), plus the number
// of regions rebuilt and the wall time. t is untouched and can keep
// serving reads throughout.
func (t *Tsunami) ReoptimizeRegionsCopy(workload []query.Query, maxRegions int) (*Tsunami, int, float64, error) {
	// rebuildRegion rewrites store segments in place, so the fork needs a
	// private store. When rows are buffered, ReoptimizeRegions starts with
	// a MergeDeltas that already replaces the fork's store with a fresh
	// one; cloning up front would be wasted work.
	nt := t.fork(t.numBuffered == 0)
	n, secs, err := nt.ReoptimizeRegions(workload, maxRegions)
	if err != nil {
		return nil, n, secs, err
	}
	return nt, n, secs, nil
}

// BufferedRows returns a copy of every inserted-but-unmerged row, in
// deterministic region order. LiveStore uses it to seed its replay log
// when reopening from a snapshot.
func (t *Tsunami) BufferedRows() [][]int64 {
	if t.numBuffered == 0 {
		return nil
	}
	out := make([][]int64, 0, t.numBuffered)
	for _, r := range t.tree.Regions {
		if d := t.deltas[r.ID]; d != nil {
			for _, row := range d.rows {
				out = append(out, append([]int64(nil), row...))
			}
		}
	}
	return out
}

// fork shallow-copies the index with a deep-copied Grid Tree, so the
// mutating maintenance operations (MergeDeltas, ReoptimizeRegions) can run
// on the fork without the live index observing region-box widening, row
// renumbering, or grid/bounds replacement. Grids and delta buffers are
// shared: both are replaced wholesale, never edited, by those operations.
// cloneStore must be true if the operation writes store columns in place.
func (t *Tsunami) fork(cloneStore bool) *Tsunami {
	nt := &Tsunami{
		cfg:         t.cfg,
		store:       t.store,
		stats:       t.stats,
		numBuffered: t.numBuffered,
	}
	if cloneStore {
		nt.store = t.store.Clone()
	}
	nt.tree = cloneTree(t.tree)
	nt.grids = append([]*auggrid.Grid(nil), t.grids...)
	nt.bounds = append([][2]int(nil), t.bounds...)
	if t.deltas != nil {
		nt.deltas = make(map[int]*delta, len(t.deltas))
		for id, d := range t.deltas {
			nt.deltas[id] = d
		}
	}
	return nt
}

// cloneTree deep-copies nodes and regions. Region bounds are copied
// (MergeDeltas widens them in place); Rows and Queries slices are shared
// because maintenance replaces them wholesale. The build-only config of
// the source tree is not carried over, matching Load.
func cloneTree(tr *gridtree.Tree) *gridtree.Tree {
	regions := make([]*gridtree.Region, len(tr.Regions))
	for i, r := range tr.Regions {
		regions[i] = &gridtree.Region{
			Lo:      append([]int64(nil), r.Lo...),
			Hi:      append([]int64(nil), r.Hi...),
			Rows:    r.Rows,
			Queries: r.Queries,
			ID:      r.ID,
		}
	}
	return &gridtree.Tree{
		Root:     cloneNode(tr.Root, regions),
		Regions:  regions,
		NumNodes: tr.NumNodes,
		Depth:    tr.Depth,
		NumTypes: tr.NumTypes,
	}
}

func cloneNode(nd *gridtree.Node, regions []*gridtree.Region) *gridtree.Node {
	if nd.Region != nil {
		return &gridtree.Node{Region: regions[nd.Region.ID]}
	}
	out := &gridtree.Node{SplitDim: nd.SplitDim, SplitVals: nd.SplitVals}
	out.Children = make([]*gridtree.Node, len(nd.Children))
	for i, c := range nd.Children {
		out.Children[i] = cloneNode(c, regions)
	}
	return out
}

package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/auggrid"
	"repro/internal/query"
)

// Incremental re-optimization (§8): "Tsunami could be incrementally
// adjusted, e.g. by only re-optimizing the Augmented Grids whose regions
// saw the most significant workload shift." ReoptimizeRegions scores each
// region by how much the new workload's demands on it diverge from the
// workload its grid was optimized for, re-optimizes only the top regions,
// and splices the rebuilt segments into the clustered layout. The Grid
// Tree itself is untouched, so this is much cheaper than a full rebuild —
// and correspondingly weaker when the shift moves query skew across
// region boundaries (then use Reoptimize).

// regionDrift scores one region's workload change.
type regionDrift struct {
	id    int
	drift float64
}

// ReoptimizeRegions re-optimizes the grids of at most maxRegions regions —
// those whose incident workload changed most — for the new workload. It
// returns the number of regions rebuilt and the wall time.
func (t *Tsunami) ReoptimizeRegions(workload []query.Query, maxRegions int) (int, float64, error) {
	start := time.Now()
	if maxRegions <= 0 {
		maxRegions = 1 + len(t.tree.Regions)/10
	}
	if t.numBuffered > 0 {
		if err := t.MergeDeltas(); err != nil {
			return 0, 0, err
		}
	}

	// Assign the new workload to regions.
	newQueries := make(map[int][]query.Query)
	for _, q := range workload {
		for _, r := range t.tree.FindRegions(q, nil) {
			newQueries[r.ID] = append(newQueries[r.ID], q)
		}
	}

	// Score drift per region: change in incident-query count plus a term
	// for regions whose stored workload was empty but now sees queries
	// (or vice versa). Counts are normalized by workload sizes.
	oldTotal := 0
	for _, r := range t.tree.Regions {
		oldTotal += len(r.Queries)
	}
	if oldTotal == 0 {
		oldTotal = 1
	}
	newTotal := 0
	for _, qs := range newQueries {
		newTotal += len(qs)
	}
	if newTotal == 0 {
		newTotal = 1
	}
	drifts := make([]regionDrift, 0, len(t.tree.Regions))
	for _, r := range t.tree.Regions {
		oldFrac := float64(len(r.Queries)) / float64(oldTotal)
		newFrac := float64(len(newQueries[r.ID])) / float64(newTotal)
		d := newFrac - oldFrac
		if d < 0 {
			d = -d
		}
		// Weight by region size: a drifted region holding many points
		// matters more.
		d *= float64(len(r.Rows))
		drifts = append(drifts, regionDrift{id: r.ID, drift: d})
	}
	sort.Slice(drifts, func(a, b int) bool { return drifts[a].drift > drifts[b].drift })

	rebuilt := 0
	for _, rd := range drifts {
		if rebuilt >= maxRegions || rd.drift == 0 {
			break
		}
		r := t.tree.Regions[rd.id]
		qs := newQueries[rd.id]
		if len(r.Rows) < t.cfg.MinRowsForGrid {
			continue
		}
		if err := t.rebuildRegion(r.ID, qs); err != nil {
			return rebuilt, time.Since(start).Seconds(), err
		}
		r.Queries = qs
		rebuilt++
	}
	return rebuilt, time.Since(start).Seconds(), nil
}

// rebuildRegion re-optimizes one region's grid for queries and rewrites
// its physical segment in place. Row count is unchanged, so all other
// regions' offsets stay valid.
func (t *Tsunami) rebuildRegion(id int, queries []query.Query) error {
	b := t.bounds[id]
	seg := buildSegmentStore(t.store, b[0], b[1], nil)
	rows := make([]int, seg.NumRows())
	for i := range rows {
		rows[i] = i
	}
	if len(queries) == 0 {
		// No queries touch it anymore: drop the grid, keep the segment.
		t.grids[id] = nil
		return nil
	}
	gcfg := t.cfg.Grid
	opt := t.cfg.Optimizer
	if opt.Name == "" {
		opt = auggrid.AGD()
	}
	layout, _ := auggrid.Optimize(seg, rows, queries, opt, gcfg)
	g, ordered, err := auggrid.Build(seg, rows, layout)
	if err != nil {
		return fmt.Errorf("core: rebuild region %d: %w", id, err)
	}
	// Write the reordered segment back into the main store.
	d := t.store.NumDims()
	for j := 0; j < d; j++ {
		dst := t.store.Column(j)[b[0]:b[1]]
		src := seg.Column(j)
		for i, o := range ordered {
			dst[i] = src[o]
		}
	}
	g.Finalize(t.store, b[0])
	t.grids[id] = g
	return nil
}

package core

import (
	"strings"
	"testing"

	"repro/internal/query"
	"repro/internal/testutil"
)

func TestExplainTotalsMatchExecute(t *testing.T) {
	st := testutil.SmallTaxi(10000, 1)
	work := testutil.SkewedQueries(st, 150, 2)
	idx := Build(st, work, smallConfig(FullTsunami))
	probe := testutil.RandomQueries(st, 50, 3)
	for _, q := range probe {
		res := idx.Execute(q)
		tr := idx.Explain(q)
		if tr.Total.Count != res.Count || tr.Total.Sum != res.Sum {
			t.Fatalf("explain total (%d, %d) != execute (%d, %d) on %s",
				tr.Total.Count, tr.Total.Sum, res.Count, res.Sum, q)
		}
	}
}

func TestExplainRegionBreakdownSums(t *testing.T) {
	st := testutil.SmallTaxi(10000, 4)
	work := testutil.SkewedQueries(st, 150, 5)
	idx := Build(st, work, smallConfig(FullTsunami))
	q := query.NewCount(query.Filter{Dim: 0, Lo: 0, Hi: 600_000})
	tr := idx.Explain(q)
	var matched uint64
	for _, r := range tr.Regions {
		matched += r.Matched
	}
	if matched != tr.Total.Count {
		t.Errorf("per-region matched %d != total %d", matched, tr.Total.Count)
	}
	if len(tr.Regions) == 0 || tr.RegionsTotal < len(tr.Regions) {
		t.Errorf("implausible region counts: %d of %d", len(tr.Regions), tr.RegionsTotal)
	}
}

func TestExplainStringRendering(t *testing.T) {
	st := testutil.SmallTaxi(5000, 6)
	work := testutil.SkewedQueries(st, 100, 7)
	idx := Build(st, work, smallConfig(FullTsunami))
	q := query.NewCount(query.Filter{Dim: 2, Lo: 0, Hi: 500})
	out := idx.Explain(q).String()
	for _, want := range []string{"regions visited", "total: count="} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

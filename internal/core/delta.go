package core

import (
	"fmt"
	"sort"

	"repro/internal/auggrid"
	"repro/internal/colstore"
	"repro/internal/gridtree"
	"repro/internal/query"
)

// Insertion support (§8 "Data and Workload Shift"): Tsunami is
// read-optimized, so inserts are buffered in a per-region delta sibling —
// a small row-major buffer scanned alongside the region's grid — and
// periodically folded into the clustered layout by MergeDeltas, exactly
// the differential-file scheme the paper proposes [Severance & Lohman
// 1976].

// delta is one region's insert buffer.
type delta struct {
	rows [][]int64
}

// Insert buffers a new point in the region that contains it. The row's
// length must match the table's dimensionality.
func (t *Tsunami) Insert(row []int64) error {
	if len(row) != t.store.NumDims() {
		return fmt.Errorf("core: row has %d values, table has %d dims", len(row), t.store.NumDims())
	}
	r := findRegionForPoint(t.tree.Root, row)
	if t.deltas == nil {
		t.deltas = make(map[int]*delta)
	}
	d := t.deltas[r.ID]
	if d == nil {
		d = &delta{}
		t.deltas[r.ID] = d
	}
	d.rows = append(d.rows, append([]int64(nil), row...))
	t.numBuffered++
	return nil
}

// NumBuffered reports how many inserted rows await merging.
func (t *Tsunami) NumBuffered() int { return t.numBuffered }

// findRegionForPoint walks split nodes to the leaf containing the point.
func findRegionForPoint(nd *gridtree.Node, row []int64) *gridtree.Region {
	for nd.Region == nil {
		v := row[nd.SplitDim]
		i := sort.Search(len(nd.SplitVals), func(i int) bool { return nd.SplitVals[i] > v })
		nd = nd.Children[i]
	}
	return nd.Region
}

// scanDeltas accumulates matches from the delta buffers of the regions the
// query intersects; Execute calls it after the clustered scan.
func (t *Tsunami) scanDeltas(q query.Query, regions []*gridtree.Region, res *colstore.ScanResult) {
	if t.numBuffered == 0 {
		return
	}
	for _, r := range regions {
		d := t.deltas[r.ID]
		if d == nil {
			continue
		}
		for _, row := range d.rows {
			res.PointsScanned++
			if q.MatchesRow(row) {
				res.Count++
				if q.Agg == query.Sum {
					res.Sum += row[q.AggDim]
				}
			}
		}
	}
}

// MergeDeltas folds every buffered row into the clustered layout without
// re-optimizing: each affected region's grid is rebuilt with its existing
// layout over the union of its old rows and its buffered rows, and the
// column store is rewritten once. The Grid Tree structure and all layouts
// are unchanged (re-optimization is a separate, heavier operation — see
// Reoptimize).
func (t *Tsunami) MergeDeltas() error {
	_, err := t.MergeDeltasOver(0)
	return err
}

// MergeDeltasOver is MergeDeltas restricted to hot regions: only regions
// whose own delta buffer holds at least minPerRegion rows are folded into
// the clustered layout; colder regions keep their rows buffered (still
// scanned alongside the clustered data, exactly as before the merge).
// Untouched and below-threshold regions are copied into the rewritten
// store verbatim and their grids rebased rather than rebuilt. The store
// rewrite itself is still O(table) — contiguous region segments leave no
// way to splice — but the per-region sort and grid rebuild, the dominant
// merge cost, is paid only for the hot regions: the win on skewed
// ingest, where a few regions absorb most inserts. minPerRegion <= 1
// folds every region with buffered rows. It returns how many buffered
// rows were folded; zero means nothing crossed the threshold and the
// index was left untouched.
func (t *Tsunami) MergeDeltasOver(minPerRegion int) (int, error) {
	if t.numBuffered == 0 {
		return 0, nil
	}
	fold := func(id int) bool {
		d := t.deltas[id]
		return d != nil && len(d.rows) > 0 && (minPerRegion <= 1 || len(d.rows) >= minPerRegion)
	}
	folded := 0
	for _, r := range t.tree.Regions {
		if fold(r.ID) {
			folded += len(t.deltas[r.ID].rows)
		}
	}
	if folded == 0 {
		return 0, nil
	}

	d := t.store.NumDims()
	newCols := make([][]int64, d)
	for j := range newCols {
		newCols[j] = make([]int64, 0, t.store.NumRows()+folded)
	}
	appendRow := func(src *colstore.Store, i int) {
		for j := 0; j < d; j++ {
			newCols[j] = append(newCols[j], src.Value(i, j))
		}
	}

	// Stage each folded region's rows (old segment + buffered) into a
	// scratch store, rebuild its grid with its existing layout, and emit
	// the grid-ordered rows; all other regions are copied verbatim (their
	// row order is unchanged, so their grids only need rebasing onto the
	// rewritten store).
	newBounds := make([][2]int, len(t.bounds))
	newGrids := make([]*auggrid.Grid, len(t.grids))
	rebuilt := make([]bool, len(t.grids))
	newDeltas := make(map[int]*delta)
	cursor := 0
	for _, r := range t.tree.Regions {
		b := t.bounds[r.ID]
		start := cursor
		if !fold(r.ID) {
			for j := 0; j < d; j++ {
				newCols[j] = append(newCols[j], t.store.Column(j)[b[0]:b[1]]...)
			}
			if dl := t.deltas[r.ID]; dl != nil && len(dl.rows) > 0 {
				// Fresh container and backing array (row slices are shared;
				// they are immutable once ingested): later appends to the
				// merged index — LiveStore's replay runs before it is
				// published — must not touch arrays a serving epoch reads.
				newDeltas[r.ID] = &delta{rows: append([][]int64(nil), dl.rows...)}
			}
			cursor += b[1] - b[0]
			newBounds[r.ID] = [2]int{start, cursor}
			if start != b[0] {
				// The segment shifted (an earlier region grew): refresh the
				// region's absolute row ids.
				r.Rows = make([]int, cursor-start)
				for i := range r.Rows {
					r.Rows[i] = start + i
				}
			}
			continue
		}
		// Widen the region's box to cover buffered rows: the Grid Tree only
		// constrains split dimensions, so an insert may lie outside the
		// recorded min/max of the others, and regionContained relies on
		// the box being sound.
		for _, row := range t.deltas[r.ID].rows {
			for j, v := range row {
				if v < r.Lo[j] {
					r.Lo[j] = v
				}
				if v > r.Hi[j] {
					r.Hi[j] = v
				}
			}
		}
		seg := buildSegmentStore(t.store, b[0], b[1], t.deltas[r.ID])
		segRows := make([]int, seg.NumRows())
		for i := range segRows {
			segRows[i] = i
		}
		if g := t.grids[r.ID]; g != nil {
			ng, ordered, err := auggrid.Build(seg, segRows, g.Layout())
			if err != nil {
				return 0, fmt.Errorf("core: merge rebuild of region %d: %w", r.ID, err)
			}
			for _, i := range ordered {
				appendRow(seg, i)
			}
			newGrids[r.ID] = ng
			rebuilt[r.ID] = true
		} else {
			for i := range segRows {
				appendRow(seg, i)
			}
		}
		cursor += seg.NumRows()
		newBounds[r.ID] = [2]int{start, cursor}
		// Keep the region's row bookkeeping consistent for IndexStats.
		r.Rows = make([]int, seg.NumRows())
		for i := range r.Rows {
			r.Rows[i] = start + i
		}
	}

	newStore, err := colstore.FromColumns(newCols, t.store.Names())
	if err != nil {
		return 0, fmt.Errorf("core: merge: %w", err)
	}
	for id, g := range t.grids {
		switch {
		case rebuilt[id]:
			newGrids[id].Finalize(newStore, newBounds[id][0])
		case g != nil:
			newGrids[id] = g.Rebase(newStore, newBounds[id][0])
		}
	}
	t.store = newStore
	t.grids = newGrids
	t.bounds = newBounds
	if len(newDeltas) == 0 {
		newDeltas = nil
	}
	t.deltas = newDeltas
	t.numBuffered -= folded
	return folded, nil
}

// buildSegmentStore copies physical rows [start, end) plus a delta buffer
// into a standalone store.
func buildSegmentStore(src *colstore.Store, start, end int, d *delta) *colstore.Store {
	dims := src.NumDims()
	cols := make([][]int64, dims)
	n := end - start
	extra := 0
	if d != nil {
		extra = len(d.rows)
	}
	for j := 0; j < dims; j++ {
		cols[j] = make([]int64, 0, n+extra)
		cols[j] = append(cols[j], src.Column(j)[start:end]...)
	}
	if d != nil {
		for _, row := range d.rows {
			for j := 0; j < dims; j++ {
				cols[j] = append(cols[j], row[j])
			}
		}
	}
	st, err := colstore.FromColumns(cols, src.Names())
	if err != nil {
		panic("core: " + err.Error()) // columns are equal-length by construction
	}
	return st
}

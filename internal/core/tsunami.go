// Package core implements Tsunami (§3): a composition of a Grid Tree, which
// partitions data space into regions with low query skew, and one Augmented
// Grid per region, optimized over only the points and queries intersecting
// that region. The package also exposes the paper's ablations (Fig 12a):
// Augmented Grid only (one grid over the whole space) and Grid Tree only
// (a Flood-style independent grid in each region).
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auggrid"
	"repro/internal/colstore"
	"repro/internal/gridtree"
	"repro/internal/index"
	"repro/internal/query"
)

// Variant selects which of Tsunami's components are active.
type Variant int

const (
	// FullTsunami uses the Grid Tree with an Augmented Grid per region.
	FullTsunami Variant = iota
	// AugGridOnly builds a single Augmented Grid over the whole space.
	AugGridOnly
	// GridTreeOnly builds the Grid Tree with a Flood-style independent
	// grid in each region.
	GridTreeOnly
)

func (v Variant) String() string {
	switch v {
	case FullTsunami:
		return "Tsunami"
	case AugGridOnly:
		return "AugGrid-only"
	case GridTreeOnly:
		return "GridTree-only"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config controls a Tsunami build; zero values take paper defaults.
type Config struct {
	Variant  Variant
	GridTree gridtree.Config
	Grid     auggrid.OptimizeConfig
	// Optimizer searches region layouts (default auggrid.AGD()).
	Optimizer auggrid.Optimizer
	// MinRowsForGrid skips building a grid for regions smaller than this —
	// a plain scan of a tiny contiguous region beats grid overhead
	// (default 1024; never reached at the paper's scale).
	MinRowsForGrid int
	// DisableSortDim turns off the within-cell sort dimension and its
	// binary-search refinement (used by the ablation benchmarks).
	DisableSortDim bool
	// Parallelism bounds the number of regions optimized concurrently
	// (§6.1: "optimization and data sorting for index creation are
	// performed in parallel"). Default runtime.NumCPU(); 1 disables.
	Parallelism int
}

// Tsunami is a built index. A built Tsunami is immutable on the read path:
// Execute, Explain, and RegionsVisited keep all per-query state in pooled
// execution contexts, so one shared index serves any number of concurrent
// callers. Writes (Insert, MergeDeltas, Reoptimize*) mutate the index and
// must be externally synchronized with readers.
type Tsunami struct {
	cfg    Config
	store  *colstore.Store
	tree   *gridtree.Tree
	grids  []*auggrid.Grid // aligned with tree.Regions; nil = unindexed region
	bounds [][2]int        // physical [start, end) per region
	stats  index.BuildStats

	// Insert buffering (§8): per-region delta siblings, folded in by
	// MergeDeltas.
	deltas      map[int]*delta
	numBuffered int
}

// execContext bundles the per-query scratch of one traversal: the region
// list produced by the Grid Tree plus the grid-level context threaded
// through every region grid. Contexts are pooled so the public Execute
// keeps its one-argument signature while staying allocation-free and safe
// for arbitrary concurrent callers.
type execContext struct {
	regions []*gridtree.Region
	grid    *auggrid.ExecContext
	phys    []auggrid.PhysRange // planned ranges (sub-region parallel path)
	chunks  []auggrid.PhysRange // block-split ranges workers drain
}

var execCtxPool = sync.Pool{
	New: func() any { return &execContext{grid: auggrid.NewExecContext()} },
}

// Build optimizes and constructs the index over a clone of st for the
// sample workload (§3): optimize the Grid Tree on the full dataset and
// workload, then optimize an Augmented Grid per region on only the points
// and queries intersecting it, then reorganize the data.
func Build(st *colstore.Store, workload []query.Query, cfg Config) *Tsunami {
	if cfg.Optimizer.Name == "" {
		cfg.Optimizer = auggrid.AGD()
	}
	if cfg.MinRowsForGrid == 0 {
		cfg.MinRowsForGrid = 1024
	}
	cfg.Grid.UseSortDim = !cfg.DisableSortDim
	t := &Tsunami{cfg: cfg}

	optStart := time.Now()
	clone := st.Clone()

	var tree *gridtree.Tree
	if cfg.Variant == AugGridOnly {
		tree = singleRegionTree(clone, workload)
	} else {
		tree = gridtree.Build(clone, workload, cfg.GridTree)
	}
	t.tree = tree

	// Optimize and build a grid per region that has intersecting queries
	// (§3: regions no query touches get no index). Regions are optimized
	// concurrently (§6.1); each worker only reads the shared store.
	t.grids = make([]*auggrid.Grid, len(tree.Regions))
	t.bounds = make([][2]int, len(tree.Regions))
	ordered := make([][]int, len(tree.Regions))

	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, r := range tree.Regions {
		if len(r.Queries) == 0 || len(r.Rows) < cfg.MinRowsForGrid {
			ordered[r.ID] = r.Rows
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(r *gridtree.Region) {
			defer func() { <-sem; wg.Done() }()
			gcfg := cfg.Grid
			opt := cfg.Optimizer
			if cfg.Variant == GridTreeOnly {
				// Flood inside each region: independent skeleton, P-only
				// descent.
				opt = auggrid.GD()
				gcfg.FMErrFrac = -1    // disable FM heuristic
				gcfg.CCDFEmptyFrac = 2 // disable CCDF heuristic
			}
			layout, _ := auggrid.Optimize(clone, r.Rows, r.Queries, opt, gcfg)
			g, ord, err := auggrid.Build(clone, r.Rows, layout)
			if err != nil {
				// An invalid optimized layout is a bug; fall back to a
				// scan region rather than failing the whole build.
				ordered[r.ID] = r.Rows
				return
			}
			t.grids[r.ID] = g
			ordered[r.ID] = ord
		}(r)
	}
	wg.Wait()

	perm := make([]int, 0, clone.NumRows())
	for _, r := range tree.Regions {
		start := len(perm)
		perm = append(perm, ordered[r.ID]...)
		t.bounds[r.ID] = [2]int{start, len(perm)}
	}
	optTotal := time.Since(optStart).Seconds()

	sortStart := time.Now()
	if err := clone.Reorder(perm); err != nil {
		panic("core: " + err.Error()) // perm concatenates disjoint regions
	}
	for id, g := range t.grids {
		if g != nil {
			g.Finalize(clone, t.bounds[id][0])
		}
	}
	sortSecs := time.Since(sortStart).Seconds()

	t.store = clone
	t.stats = index.BuildStats{SortSeconds: sortSecs, OptimizeSeconds: optTotal}
	return t
}

// singleRegionTree wraps the whole space in one region (AugGridOnly).
func singleRegionTree(st *colstore.Store, workload []query.Query) *gridtree.Tree {
	d := st.NumDims()
	lo := make([]int64, d)
	hi := make([]int64, d)
	for j := 0; j < d; j++ {
		lo[j], hi[j] = st.MinMax(j)
	}
	rows := make([]int, st.NumRows())
	for i := range rows {
		rows[i] = i
	}
	r := &gridtree.Region{Lo: lo, Hi: hi, Rows: rows, Queries: workload, ID: 0}
	return &gridtree.Tree{
		Root:     &gridtree.Node{Region: r},
		Regions:  []*gridtree.Region{r},
		NumNodes: 1,
		Depth:    1,
	}
}

// Name implements index.Index.
func (t *Tsunami) Name() string { return t.cfg.Variant.String() }

// BuildStats returns the build timing split (Fig 9b).
func (t *Tsunami) BuildStats() index.BuildStats { return t.stats }

// Execute implements index.Index (§3 query workflow): traverse the Grid
// Tree for intersecting regions, delegate to each region's Augmented Grid,
// and aggregate; unindexed regions are scanned. Safe for any number of
// concurrent callers against the same index (see the Tsunami doc comment
// for the read/write contract).
func (t *Tsunami) Execute(q query.Query) colstore.ScanResult {
	ctx := execCtxPool.Get().(*execContext)
	defer execCtxPool.Put(ctx)
	return t.executeCtx(q, ctx)
}

// executeCtx is Execute with explicit per-query state.
func (t *Tsunami) executeCtx(q query.Query, ctx *execContext) colstore.ScanResult {
	ctx.regions = t.tree.FindRegions(q, ctx.regions[:0])
	return t.executeRegions(q, ctx.regions, ctx.grid)
}

// executeRegions is the sequential execution path over an already-found
// region list: answer q in each region, then fold in buffered inserts.
func (t *Tsunami) executeRegions(q query.Query, regions []*gridtree.Region, gctx *auggrid.ExecContext) colstore.ScanResult {
	var res colstore.ScanResult
	for _, r := range regions {
		t.executeRegion(q, r, gctx, &res)
	}
	t.scanDeltas(q, regions, &res)
	return res
}

// executeRegion answers q within one region: grid regions delegate to
// their Augmented Grid, unindexed regions scan their physical range.
func (t *Tsunami) executeRegion(q query.Query, r *gridtree.Region, gctx *auggrid.ExecContext, res *colstore.ScanResult) {
	if g := t.grids[r.ID]; g != nil {
		sub, _ := g.Execute(q, gctx)
		res.Add(sub)
		return
	}
	b := t.bounds[r.ID]
	t.store.ScanRange(q, b[0], b[1], regionContained(q, r), res)
}

// ExecuteParallel answers one query with intra-query parallelism: the
// regions the Grid Tree routes the query to are spread across up to
// workers goroutines, each executing its share of region grids with its
// own context, and the partial ScanResults are merged. For queries that
// touch few regions (or workers <= 1) it falls back to the sequential
// path, so it is always safe to call. The concurrency contract matches
// Execute.
func (t *Tsunami) ExecuteParallel(q query.Query, workers int) colstore.ScanResult {
	return t.ExecuteParallelOn(q, workers, nil)
}

// ExecuteParallelOn is ExecuteParallel with task scheduling delegated to
// the caller: each of the up to workers region-draining tasks is handed to
// submit, which must run it (possibly later) on some goroutine — typically
// an existing worker pool, so per-query goroutine creation is avoided.
// Tasks never block on other tasks, so running them on a shared pool
// cannot deadlock. A nil submit spawns one goroutine per task.
func (t *Tsunami) ExecuteParallelOn(q query.Query, workers int, submit func(task func())) colstore.ScanResult {
	ctx := execCtxPool.Get().(*execContext)
	defer execCtxPool.Put(ctx)
	ctx.regions = t.tree.FindRegions(q, ctx.regions[:0])
	regions := ctx.regions
	if workers <= 1 || len(regions) == 0 {
		return t.executeRegions(q, regions, ctx.grid)
	}
	if submit == nil {
		submit = func(task func()) { go task() }
	}

	// With many regions per worker, per-region pulling already balances
	// well and skips the up-front planning pass; with few regions (the
	// common case after Grid Tree routing, and the worst case for the old
	// path — one huge region ran single-threaded), plan every region's
	// physical ranges, split them at block granularity, and let workers
	// drain chunks instead. Workers are NOT clamped to the region count
	// here: the chunked path parallelizes below region granularity, so
	// even a single-region query can use the whole pool.
	if len(regions) < 4*workers {
		return t.executeChunked(q, regions, ctx, workers, submit)
	}
	if workers > len(regions) {
		workers = len(regions)
	}

	// Dynamic work assignment: region sizes are highly skewed (Tab 4), so
	// workers pull the next region from a shared cursor instead of taking
	// fixed stripes.
	var cursor atomic.Int64
	partial := make([]colstore.ScanResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		w := w
		submit(func() {
			defer wg.Done()
			gctx := auggrid.GetExecContext()
			defer auggrid.PutExecContext(gctx)
			var res colstore.ScanResult
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(regions) {
					break
				}
				t.executeRegion(q, regions[i], gctx, &res)
			}
			partial[w] = res
		})
	}
	wg.Wait()
	var res colstore.ScanResult
	for _, p := range partial {
		res.Add(p)
	}
	t.scanDeltas(q, regions, &res)
	return res
}

// chunkRows is the sub-region scan granularity: planned physical ranges
// longer than this are split into chunkRows pieces so even a single huge
// range spreads across the pool. A multiple of the colstore kernel block
// (1024 rows). Sized against kernel speed, not cache: the AVX2 kernels
// scan a chunk's column in ~15-30us, so at 16k rows the shared-cursor
// fetch and call overhead (~100ns) started to show at high worker
// counts; 64k keeps it under ~1% while still yielding enough chunks for
// the pool to balance (a 1M-row region splits 16 ways). Chunks are a
// scheduling unit, not a cache-blocking unit — cache residency is the
// kernels' 1024-row block's job.
const chunkRows = 64 * 1024

// executeChunked is the sub-region parallel path: plan the physical row
// ranges every routed region would scan (grid regions via PlanRanges,
// unindexed regions as one range), split long ranges at chunkRows
// granularity, and have workers drain chunks from a shared cursor.
// Aggregates are sum+count pairs, so chunk partials merge exactly. Plans
// yielding too few chunks to be worth fanning out are scanned inline.
func (t *Tsunami) executeChunked(q query.Query, regions []*gridtree.Region, ctx *execContext, workers int, submit func(task func())) colstore.ScanResult {
	ctx.phys = ctx.phys[:0]
	for _, r := range regions {
		if g := t.grids[r.ID]; g != nil {
			ctx.phys, _ = g.PlanRanges(q, ctx.grid, ctx.phys)
			continue
		}
		b := t.bounds[r.ID]
		if b[0] < b[1] {
			ctx.phys = append(ctx.phys, auggrid.PhysRange{Start: b[0], End: b[1], Exact: regionContained(q, r)})
		}
	}
	ctx.chunks = ctx.chunks[:0]
	for _, pr := range ctx.phys {
		for s := pr.Start; s < pr.End; s += chunkRows {
			e := s + chunkRows
			if e > pr.End {
				e = pr.End
			}
			ctx.chunks = append(ctx.chunks, auggrid.PhysRange{Start: s, End: e, Exact: pr.Exact})
		}
	}
	chunks := ctx.chunks
	var res colstore.ScanResult
	if len(chunks) < 2 || workers <= 1 {
		for _, c := range chunks {
			t.store.ScanRange(q, c.Start, c.End, c.Exact, &res)
		}
		t.scanDeltas(q, regions, &res)
		return res
	}
	if workers > len(chunks) {
		workers = len(chunks)
	}
	var cursor atomic.Int64
	partial := make([]colstore.ScanResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		w := w
		submit(func() {
			defer wg.Done()
			var res colstore.ScanResult
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(chunks) {
					break
				}
				c := chunks[i]
				t.store.ScanRange(q, c.Start, c.End, c.Exact, &res)
			}
			partial[w] = res
		})
	}
	wg.Wait()
	for _, p := range partial {
		res.Add(p)
	}
	t.scanDeltas(q, regions, &res)
	return res
}

func regionContained(q query.Query, r *gridtree.Region) bool {
	for _, f := range q.Filters {
		if r.Lo[f.Dim] < f.Lo || r.Hi[f.Dim] > f.Hi {
			return false
		}
	}
	return true
}

// SizeBytes implements index.Index: the Grid Tree plus every region grid.
func (t *Tsunami) SizeBytes() uint64 {
	size := t.tree.SizeBytes()
	for _, g := range t.grids {
		if g != nil {
			size += g.SizeBytes()
		}
	}
	return size
}

// Store returns the reorganized column store (tests use it as ground
// truth).
func (t *Tsunami) Store() *colstore.Store { return t.store }

// Reoptimize rebuilds the index for a new workload (§6.4, Fig 9a) and
// returns the rebuilt index and the re-optimization wall time.
func (t *Tsunami) Reoptimize(workload []query.Query) (*Tsunami, float64) {
	start := time.Now()
	nt := Build(t.store, workload, t.cfg)
	return nt, time.Since(start).Seconds()
}

// Stats are the Tab 4 index statistics.
type Stats struct {
	NumGridTreeNodes      int
	GridTreeDepth         int
	NumLeafRegions        int
	MinPointsPerRegion    int
	MedianPointsPerRegion int
	MaxPointsPerRegion    int
	AvgFMsPerRegion       float64
	AvgCCDFsPerRegion     float64
	TotalGridCells        int
}

// RegionsVisited returns how many Grid Tree regions q intersects.
func (t *Tsunami) RegionsVisited(q query.Query) int {
	ctx := execCtxPool.Get().(*execContext)
	ctx.regions = t.tree.FindRegions(q, ctx.regions[:0])
	n := len(ctx.regions)
	execCtxPool.Put(ctx)
	return n
}

// EstimateCost bounds q's scan cost at plan time, without scanning
// anything: rows is the number of physical rows the executed plan would
// visit (Grid Tree routing plus each routed region grid's physical range
// plan, plus the buffered delta rows every query folds in), and bytes
// models the column bytes those rows would move — 8 per row for each
// filter column plus the aggregate column for SUM, the same planned
// figure ScanResult.BytesTouched reports, as an upper bound (exact-range
// scans touch less). The Executor's admission budgets are enforced
// against this estimate.
func (t *Tsunami) EstimateCost(q query.Query) (rows, bytes uint64) {
	ctx := execCtxPool.Get().(*execContext)
	defer execCtxPool.Put(ctx)
	ctx.regions = t.tree.FindRegions(q, ctx.regions[:0])
	ctx.phys = ctx.phys[:0]
	for _, r := range ctx.regions {
		if g := t.grids[r.ID]; g != nil {
			ctx.phys, _ = g.PlanRanges(q, ctx.grid, ctx.phys)
			continue
		}
		b := t.bounds[r.ID]
		if b[0] < b[1] {
			ctx.phys = append(ctx.phys, auggrid.PhysRange{Start: b[0], End: b[1]})
		}
	}
	for _, pr := range ctx.phys {
		rows += uint64(pr.End - pr.Start)
	}
	rows += uint64(t.NumBuffered())
	cols := uint64(len(q.Filters))
	if q.Agg == query.Sum {
		cols++
	}
	if q.Grouped() {
		cols++ // the group-key column is one extra stream
	}
	return rows, rows * 8 * cols
}

// DebugRegions renders per-region layout summaries for diagnostics.
func (t *Tsunami) DebugRegions() string {
	out := ""
	for id, r := range t.tree.Regions {
		out += fmt.Sprintf("region %d: rows=%d queries=%d", id, len(r.Rows), len(r.Queries))
		if g := t.grids[id]; g != nil {
			out += fmt.Sprintf(" cells=%d layout=%v", g.NumCells(), g.Layout())
		}
		out += "\n"
	}
	return out
}

// IndexStats reports the optimized structure statistics (Tab 4).
func (t *Tsunami) IndexStats() Stats {
	s := Stats{
		NumGridTreeNodes: t.tree.NumNodes,
		GridTreeDepth:    t.tree.Depth,
		NumLeafRegions:   len(t.tree.Regions),
	}
	var pts []int
	var fms, ccdfs, gridRegions int
	for id, r := range t.tree.Regions {
		pts = append(pts, len(r.Rows))
		if g := t.grids[id]; g != nil {
			f, c := g.Layout().Skeleton.CountKinds()
			fms += f
			ccdfs += c
			gridRegions++
			s.TotalGridCells += g.NumCells()
		}
	}
	sort.Ints(pts)
	if len(pts) > 0 {
		s.MinPointsPerRegion = pts[0]
		s.MedianPointsPerRegion = pts[len(pts)/2]
		s.MaxPointsPerRegion = pts[len(pts)-1]
	}
	if gridRegions > 0 {
		s.AvgFMsPerRegion = float64(fms) / float64(gridRegions)
		s.AvgCCDFsPerRegion = float64(ccdfs) / float64(gridRegions)
	}
	return s
}

package core

import (
	"testing"

	"repro/internal/query"
	"repro/internal/testutil"
)

// TestCopyWithInsertsLeavesOriginalUntouched pins the copy-on-write ingest
// contract: the copy sees the new rows immediately, the receiver sees
// nothing, and the two share the clustered data.
func TestCopyWithInsertsLeavesOriginalUntouched(t *testing.T) {
	st := testutil.SmallTaxi(6000, 11)
	work := testutil.SkewedQueries(st, 100, 12)
	idx := Build(st, work, smallConfig(FullTsunami))

	q := query.NewCount(query.Filter{Dim: 0, Lo: 7_000_000, Hi: 7_000_000})
	if got := idx.Execute(q).Count; got != 0 {
		t.Fatalf("probe value already present: count = %d", got)
	}

	rows := [][]int64{
		{7_000_000, 7_000_050, 3, 3, 3},
		{7_000_000, 7_000_060, 4, 4, 4},
	}
	cp, err := idx.CopyWithInserts(rows)
	if err != nil {
		t.Fatal(err)
	}
	if got := cp.Execute(q).Count; got != 2 {
		t.Errorf("copy: count = %d, want 2", got)
	}
	if got := cp.NumBuffered(); got != 2 {
		t.Errorf("copy: %d buffered, want 2", got)
	}
	if got := idx.Execute(q).Count; got != 0 {
		t.Errorf("original mutated: count = %d, want 0", got)
	}
	if got := idx.NumBuffered(); got != 0 {
		t.Errorf("original mutated: %d buffered, want 0", got)
	}
	if cp.Store() != idx.Store() {
		t.Error("copy should share the clustered store")
	}

	// Chained copies keep earlier rows and dimension mismatches are
	// rejected without corrupting the lineage.
	if _, err := cp.CopyWithInserts([][]int64{{1, 2}}); err == nil {
		t.Error("short row accepted")
	}
	cp2, err := cp.CopyWithInserts([][]int64{{7_000_000, 7_000_070, 5, 5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if got := cp2.Execute(q).Count; got != 3 {
		t.Errorf("chained copy: count = %d, want 3", got)
	}
	if got := cp.Execute(q).Count; got != 2 {
		t.Errorf("chain mutated its parent: count = %d, want 2", got)
	}
}

// TestMergedCopyMatchesInPlaceMerge checks MergedCopy produces an index
// equivalent to MergeDeltas while leaving the receiver serving the
// pre-merge state.
func TestMergedCopyMatchesInPlaceMerge(t *testing.T) {
	st := testutil.SmallTaxi(6000, 21)
	work := testutil.SkewedQueries(st, 100, 22)
	idx := Build(st, work, smallConfig(FullTsunami))

	var withRows *Tsunami = idx
	var err error
	probeRows := make([][]int64, 40)
	for i := range probeRows {
		probeRows[i] = []int64{8_000_000 + int64(i), 8_000_100, 9, 9, 9}
	}
	withRows, err = idx.CopyWithInserts(probeRows)
	if err != nil {
		t.Fatal(err)
	}

	merged, err := withRows.MergedCopy()
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.NumBuffered(); got != 0 {
		t.Errorf("merged copy still buffers %d rows", got)
	}
	if got := withRows.NumBuffered(); got != 40 {
		t.Errorf("receiver lost its buffer: %d, want 40", got)
	}
	if merged.Store().NumRows() != 6040 {
		t.Errorf("merged rows = %d, want 6040", merged.Store().NumRows())
	}
	if idx.Store().NumRows() != 6000 {
		t.Errorf("original store grew to %d rows", idx.Store().NumRows())
	}

	probe := testutil.RandomQueries(st, 60, 23)
	probe = append(probe, query.NewCount(query.Filter{Dim: 0, Lo: 8_000_000, Hi: 8_000_039}))
	for _, q := range probe {
		a, b := withRows.Execute(q), merged.Execute(q)
		if a.Count != b.Count || a.Sum != b.Sum {
			t.Errorf("merged copy diverges on %s: (%d, %d) vs (%d, %d)",
				q, b.Count, b.Sum, a.Count, a.Sum)
		}
	}
}

// TestReoptimizeRegionsCopyLeavesOriginalUntouched checks the rebuilt-into-
// copy re-optimization: answers are preserved, buffered rows are folded in,
// and the receiver (including its store contents) is unchanged.
func TestReoptimizeRegionsCopyLeavesOriginalUntouched(t *testing.T) {
	st := testutil.SmallTaxi(8000, 31)
	work := testutil.SkewedQueries(st, 100, 32)
	idx := Build(st, work, smallConfig(FullTsunami))

	// Both with and without buffered rows (the fork's store handling
	// differs between the two).
	for _, buffered := range []int{0, 30} {
		src := idx
		var err error
		if buffered > 0 {
			rows := make([][]int64, buffered)
			for i := range rows {
				rows[i] = []int64{9_000_000 + int64(i), 9_000_100, 1, 1, 1}
			}
			src, err = idx.CopyWithInserts(rows)
			if err != nil {
				t.Fatal(err)
			}
		}
		before := src.Store().Column(0)[0]
		shifted := testutil.SkewedQueries(st, 100, 33)
		cp, n, _, err := src.ReoptimizeRegionsCopy(shifted, 4)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Errorf("buffered=%d: no regions rebuilt", buffered)
		}
		if got := cp.NumBuffered(); got != 0 {
			t.Errorf("buffered=%d: copy still buffers %d rows", buffered, got)
		}
		if got := src.NumBuffered(); got != buffered {
			t.Errorf("buffered=%d: receiver buffer became %d", buffered, got)
		}
		if got := src.Store().Column(0)[0]; got != before {
			t.Errorf("buffered=%d: receiver store mutated in place", buffered)
		}
		probe := testutil.RandomQueries(st, 60, 34)
		for _, q := range probe {
			a, b := src.Execute(q), cp.Execute(q)
			if a.Count != b.Count || a.Sum != b.Sum {
				t.Errorf("buffered=%d: reoptimized copy diverges on %s: (%d, %d) vs (%d, %d)",
					buffered, q, b.Count, b.Sum, a.Count, a.Sum)
			}
		}
	}
}

package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEquiWidthBins(t *testing.T) {
	h := NewEquiWidth(0, 99, 10)
	if h.NumBins() != 10 {
		t.Fatalf("bins = %d, want 10", h.NumBins())
	}
	if h.Bin(0) != 0 || h.Bin(99) != 9 || h.Bin(50) != 5 {
		t.Errorf("bin mapping wrong: %d %d %d", h.Bin(0), h.Bin(99), h.Bin(50))
	}
}

func TestEquiWidthSmallDomain(t *testing.T) {
	h := NewEquiWidth(5, 7, 128)
	if h.NumBins() != 3 {
		t.Errorf("bins = %d, want 3 (one per value)", h.NumBins())
	}
}

func TestNewFromValuesUniques(t *testing.T) {
	h := NewFromValues([]int64{3, 1, 4, 1, 5}, 128)
	if h.NumBins() != 4 {
		t.Fatalf("bins = %d, want 4 unique-value bins", h.NumBins())
	}
	if h.Bin(1) == h.Bin(3) {
		t.Error("distinct values share a bin")
	}
}

func TestNewFromValuesFallsBack(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i)
	}
	h := NewFromValues(vals, 128)
	if h.NumBins() != 128 {
		t.Errorf("bins = %d, want 128", h.NumBins())
	}
}

func TestAddRangeSpreadsMass(t *testing.T) {
	h := NewEquiWidth(0, 99, 10)
	h.AddRange(0, 49, 1.0) // bins 0..4
	for i := 0; i < 5; i++ {
		if math.Abs(h.Mass[i]-0.2) > 1e-12 {
			t.Errorf("bin %d mass = %f, want 0.2", i, h.Mass[i])
		}
	}
	if got := h.Total(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("total = %f, want 1", got)
	}
}

func TestSkewUniformIsZero(t *testing.T) {
	h := NewEquiWidth(0, 127, 128)
	for i := range h.Mass {
		h.Mass[i] = 1
	}
	if s := h.SkewOver(0, 128); s != 0 {
		t.Errorf("uniform skew = %f, want 0", s)
	}
}

func TestSkewSingleBinIsZero(t *testing.T) {
	h := NewEquiWidth(0, 127, 128)
	h.Mass[5] = 100
	if s := h.SkewOver(5, 6); s != 0 {
		t.Errorf("single-bin skew = %f, want 0", s)
	}
}

func TestSkewConcentratedIsHigh(t *testing.T) {
	h := NewEquiWidth(0, 127, 128)
	h.Mass[0] = 100
	concentrated := h.SkewOver(0, 128)
	h2 := NewEquiWidth(0, 127, 128)
	for i := range h2.Mass {
		h2.Mass[i] = 100.0 / 128
	}
	if concentrated <= h2.SkewOver(0, 128) {
		t.Errorf("concentrated skew %f should exceed uniform skew", concentrated)
	}
	if concentrated <= 0 {
		t.Error("concentrated skew should be positive")
	}
}

func TestSkewSplitReducesSkew(t *testing.T) {
	// The paper's Fig 3 scenario: one query type concentrated in the last
	// quarter. Splitting there should leave both halves with lower skew.
	h := NewEquiWidth(0, 127, 128)
	for i := 96; i < 128; i++ {
		h.Mass[i] = 1
	}
	whole := h.SkewOver(0, 128)
	split := h.SkewOver(0, 96) + h.SkewOver(96, 128)
	if split >= whole {
		t.Errorf("split skew %f should be below whole skew %f", split, whole)
	}
}

func TestEMDIdentity(t *testing.T) {
	p := []float64{1, 2, 3}
	if d := EMD(p, p); d != 0 {
		t.Errorf("EMD(p,p) = %f, want 0", d)
	}
}

func TestEMDKnownValue(t *testing.T) {
	// Moving one unit of mass one bin over costs 1.
	if d := EMD([]float64{1, 0}, []float64{0, 1}); d != 1 {
		t.Errorf("EMD = %f, want 1", d)
	}
	// Two bins over costs 2.
	if d := EMD([]float64{1, 0, 0}, []float64{0, 0, 1}); d != 2 {
		t.Errorf("EMD = %f, want 2", d)
	}
}

func TestEMDMetricProperties(t *testing.T) {
	gen := func(rng *rand.Rand) []float64 {
		out := make([]float64, 8)
		total := 0.0
		for i := range out {
			out[i] = rng.Float64()
			total += out[i]
		}
		for i := range out {
			out[i] /= total // normalize so totals match
		}
		return out
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a, b, c := gen(rng), gen(rng), gen(rng)
		dab, dba := EMD(a, b), EMD(b, a)
		if math.Abs(dab-dba) > 1e-9 {
			t.Fatalf("not symmetric: %f vs %f", dab, dba)
		}
		if dab < 0 {
			t.Fatalf("negative EMD %f", dab)
		}
		if EMD(a, b) > EMD(a, c)+EMD(c, b)+1e-9 {
			t.Fatalf("triangle inequality violated")
		}
	}
}

func TestUniformVector(t *testing.T) {
	u := Uniform(4, 8)
	for _, v := range u {
		if v != 2 {
			t.Errorf("uniform bin = %f, want 2", v)
		}
	}
}

func TestLinRegExactLine(t *testing.T) {
	x := []int64{1, 2, 3, 4, 5}
	y := []int64{3, 5, 7, 9, 11} // y = 2x + 1
	lr := FitLinReg(x, y)
	if math.Abs(lr.Slope-2) > 1e-9 || math.Abs(lr.Intercept-1) > 1e-9 {
		t.Errorf("fit = %f x + %f, want 2x+1", lr.Slope, lr.Intercept)
	}
	if lr.ErrSpan() > 1e-9 {
		t.Errorf("exact line should have zero error span, got %f", lr.ErrSpan())
	}
}

func TestLinRegBoundsSound(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		x := make([]int64, n)
		y := make([]int64, n)
		for i := range x {
			x[i] = rng.Int63n(1000)
			y[i] = 3*x[i] + rng.Int63n(50) // noisy monotone relation
		}
		lr := FitLinReg(x, y)
		// Soundness invariant (§5.2.1): every observed y within the mapped
		// bounds of its x.
		for i := range x {
			lo, hi := lr.Bounds(float64(x[i]), float64(x[i]))
			if float64(y[i]) < lo-1e-6 || float64(y[i]) > hi+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLinRegNegativeSlopeBounds(t *testing.T) {
	x := []int64{0, 1, 2, 3}
	y := []int64{30, 20, 10, 0}
	lr := FitLinReg(x, y)
	lo, hi := lr.Bounds(0, 3)
	if lo > 0 || hi < 30 {
		t.Errorf("bounds (%f, %f) should cover [0, 30]", lo, hi)
	}
}

func TestLinRegDegenerate(t *testing.T) {
	lr := FitLinReg([]int64{5, 5, 5}, []int64{1, 2, 3})
	if math.IsNaN(lr.Slope) || math.IsNaN(lr.Intercept) {
		t.Error("degenerate fit produced NaN")
	}
	lr0 := FitLinReg(nil, nil)
	if lr0.N != 0 {
		t.Error("empty fit should have N=0")
	}
}

func TestDBSCANSeparatedClusters(t *testing.T) {
	pts := [][]float64{
		{0.0, 0.0}, {0.05, 0.0}, {0.0, 0.05},
		{1.0, 1.0}, {1.05, 1.0}, {1.0, 1.05},
	}
	labels := DBSCAN(pts, 0.2, 2)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("first cluster split: %v", labels)
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Errorf("second cluster split: %v", labels)
	}
	if labels[0] == labels[3] {
		t.Errorf("clusters merged: %v", labels)
	}
	if NumClusters(labels) != 2 {
		t.Errorf("clusters = %d, want 2", NumClusters(labels))
	}
}

func TestDBSCANNoiseBecomesSingleton(t *testing.T) {
	pts := [][]float64{{0, 0}, {0.01, 0}, {5, 5}}
	labels := DBSCAN(pts, 0.2, 2)
	if labels[2] == labels[0] {
		t.Errorf("outlier joined a cluster: %v", labels)
	}
	if NumClusters(labels) != 2 {
		t.Errorf("clusters = %d, want 2 (one real + one singleton)", NumClusters(labels))
	}
}

func TestDBSCANAllLabelled(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64(), rng.Float64()}
		}
		labels := DBSCAN(pts, 0.15, 2)
		// Every point labelled, labels contiguous from 0.
		k := NumClusters(labels)
		seen := make([]bool, k)
		for _, l := range labels {
			if l < 0 || l >= k {
				return false
			}
			seen[l] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if p := Percentile(xs, 50); p != 3 {
		t.Errorf("P50 = %f, want 3", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Errorf("P100 = %f, want 5", p)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean = %f, want 2", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("empty mean = %f, want 0", m)
	}
}

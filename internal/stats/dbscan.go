package stats

import (
	"math"
	"sort"
)

// DBSCAN clusters the points (rows of pts) with the classic density-based
// algorithm. It returns a cluster id per point; noise points are assigned
// fresh singleton cluster ids rather than -1, because the Grid Tree treats
// every query as belonging to exactly one query type (§4.3.1).
//
// eps is the neighborhood radius (Euclidean); minPts is the core-point
// threshold including the point itself. The paper uses eps=0.2 on
// selectivity embeddings and reports never needing to tune it.
func DBSCAN(pts [][]float64, eps float64, minPts int) []int {
	n := len(pts)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1 // unvisited / noise
	}
	eps2 := eps * eps
	neighbors := func(i int) []int {
		var out []int
		for j := 0; j < n; j++ {
			if dist2(pts[i], pts[j]) <= eps2 {
				out = append(out, j)
			}
		}
		return out
	}
	next := 0
	for i := 0; i < n; i++ {
		if labels[i] != -1 {
			continue
		}
		nb := neighbors(i)
		if len(nb) < minPts {
			continue // provisionally noise; may be claimed by a later cluster
		}
		c := next
		next++
		labels[i] = c
		queue := append([]int(nil), nb...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if labels[j] == -1 {
				labels[j] = c
				nj := neighbors(j)
				if len(nj) >= minPts {
					queue = append(queue, nj...)
				}
			}
		}
	}
	// Promote remaining noise to singleton clusters.
	for i := range labels {
		if labels[i] == -1 {
			labels[i] = next
			next++
		}
	}
	return labels
}

func dist2(a, b []float64) float64 {
	s := 0.0
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// NumClusters returns 1 + the maximum label, i.e. the number of clusters
// produced by DBSCAN.
func NumClusters(labels []int) int {
	max := -1
	for _, l := range labels {
		if l > max {
			max = l
		}
	}
	return max + 1
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using nearest-rank
// on a sorted copy. It returns NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

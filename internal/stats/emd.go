package stats

// EMD computes the 1-D Earth Mover's Distance between two discrete
// distributions p1 and p2 defined over the same bins with unit ground
// distance between adjacent bins. The vectors must have equal length; they
// are compared as given (unnormalized), so if their totals differ the
// leftover mass is charged at distance 1.
//
// For equal-total vectors the closed form is sum_i |prefix_i(p1 - p2)|,
// which is what the skew definition in §4.2.1 relies on.
func EMD(p1, p2 []float64) float64 {
	n := len(p1)
	if len(p2) < n {
		n = len(p2)
	}
	emd := 0.0
	prefix := 0.0
	for i := 0; i < n-1; i++ {
		prefix += p1[i] - p2[i]
		if prefix < 0 {
			emd -= prefix
		} else {
			emd += prefix
		}
	}
	// Charge any total-mass mismatch (including tail bins of the longer
	// vector) at unit distance so EMD remains a sane dissimilarity.
	t1, t2 := 0.0, 0.0
	for _, v := range p1 {
		t1 += v
	}
	for _, v := range p2 {
		t2 += v
	}
	diff := t1 - t2
	if diff < 0 {
		diff = -diff
	}
	return emd + diff
}

// Uniform returns an n-bin vector holding total mass spread evenly.
func Uniform(n int, total float64) []float64 {
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	per := total / float64(n)
	for i := range out {
		out[i] = per
	}
	return out
}

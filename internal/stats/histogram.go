// Package stats provides the statistical substrate the Grid Tree and
// Augmented Grid are built on: histograms, the 1-D Earth Mover's Distance
// used to define query skew (§4.2.1), simple linear regression used by
// functional mappings (§5.2.1), and DBSCAN used to cluster query types
// (§4.3.1).
package stats

import (
	"fmt"
	"sort"
)

// Histogram is a fixed-binning histogram over an int64 domain [Lo, Hi]. Bin
// boundaries are stored explicitly so that the bin for a value is a binary
// search away, supporting both equi-width bins and one-bin-per-unique-value
// layouts (§4.3.2).
type Histogram struct {
	// Bounds has len = NumBins()+1; bin i covers [Bounds[i], Bounds[i+1]),
	// except the last bin which also includes Bounds[n].
	Bounds []int64
	Mass   []float64
}

// NewEquiWidth builds an empty histogram with n equal-width bins over
// [lo, hi]. If the domain has fewer than n distinct values the bin count is
// reduced so every bin spans at least one value.
func NewEquiWidth(lo, hi int64, n int) *Histogram {
	if hi < lo {
		hi = lo
	}
	width := uint64(hi-lo) + 1
	if uint64(n) > width {
		n = int(width)
	}
	if n < 1 {
		n = 1
	}
	b := make([]int64, n+1)
	for i := 0; i <= n; i++ {
		b[i] = lo + int64(uint64(i)*width/uint64(n))
	}
	b[n] = hi + 1
	return &Histogram{Bounds: b, Mass: make([]float64, n)}
}

// NewFromValues builds a one-bin-per-unique-value histogram when the column
// has at most maxBins unique values, otherwise an equi-width histogram with
// maxBins bins. values need not be sorted.
func NewFromValues(values []int64, maxBins int) *Histogram {
	if len(values) == 0 {
		return NewEquiWidth(0, 0, 1)
	}
	uniq := uniqueSorted(values, maxBins+1)
	if len(uniq) <= maxBins {
		b := make([]int64, len(uniq)+1)
		copy(b, uniq)
		b[len(uniq)] = uniq[len(uniq)-1] + 1
		return &Histogram{Bounds: b, Mass: make([]float64, len(uniq))}
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return NewEquiWidth(lo, hi, maxBins)
}

// uniqueSorted returns the sorted unique values, giving up (returning a
// slice of length limit) once more than limit-1 uniques are seen.
func uniqueSorted(values []int64, limit int) []int64 {
	vs := append([]int64(nil), values...)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
			if len(out) >= limit {
				break
			}
		}
	}
	return out
}

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.Mass) }

// Lo returns the inclusive lower edge of the histogram domain.
func (h *Histogram) Lo() int64 { return h.Bounds[0] }

// Hi returns the inclusive upper edge of the histogram domain.
func (h *Histogram) Hi() int64 { return h.Bounds[len(h.Bounds)-1] - 1 }

// Bin returns the bin index containing v, clamped to [0, NumBins).
func (h *Histogram) Bin(v int64) int {
	// First bound > v, minus one.
	i := sort.Search(len(h.Bounds), func(i int) bool { return h.Bounds[i] > v }) - 1
	if i < 0 {
		return 0
	}
	if i >= h.NumBins() {
		return h.NumBins() - 1
	}
	return i
}

// AddRange spreads total mass m uniformly over the bins intersecting
// [lo, hi] (inclusive), 1/k to each of the k intersecting bins. This is how
// a query's filter range contributes to the skew histogram (§4.2.1).
func (h *Histogram) AddRange(lo, hi int64, m float64) {
	if hi < lo {
		return
	}
	a, b := h.Bin(lo), h.Bin(hi)
	if b < a {
		a, b = b, a
	}
	per := m / float64(b-a+1)
	for i := a; i <= b; i++ {
		h.Mass[i] += per
	}
}

// AddValue adds mass m to the bin containing v.
func (h *Histogram) AddValue(v int64, m float64) { h.Mass[h.Bin(v)] += m }

// Total returns the total mass.
func (h *Histogram) Total() float64 {
	t := 0.0
	for _, m := range h.Mass {
		t += m
	}
	return t
}

// MassIn returns the summed mass of bins [x, y).
func (h *Histogram) MassIn(x, y int) float64 {
	t := 0.0
	for i := x; i < y; i++ {
		t += h.Mass[i]
	}
	return t
}

// String renders the histogram for debugging.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist{bins=%d lo=%d hi=%d mass=%.1f}", h.NumBins(), h.Lo(), h.Hi(), h.Total())
}

// SkewOver computes the query skew of the histogram restricted to bins
// [x, y): the Earth Mover's Distance between the (unnormalized) empirical
// mass vector and a uniform vector with the same total (§4.2.1). Mass is NOT
// normalized to 1, so that skews are comparable in units of query mass and
// thresholds like "5% of |Q|" are meaningful.
func (h *Histogram) SkewOver(x, y int) float64 {
	if y-x <= 1 {
		// A single bin cannot distinguish uniform from the query PDF (§4.3.2).
		return 0
	}
	total := h.MassIn(x, y)
	if total == 0 {
		return 0
	}
	uni := total / float64(y-x)
	// 1-D EMD with unit ground distance between adjacent bins:
	// sum of absolute prefix-sum differences.
	emd := 0.0
	prefix := 0.0
	for i := x; i < y-1; i++ {
		prefix += h.Mass[i] - uni
		if prefix < 0 {
			emd -= prefix
		} else {
			emd += prefix
		}
	}
	// Normalize by the number of bins so skew is measured in mass units and
	// invariant to bin granularity.
	return emd / float64(y-x)
}

package stats

// LinReg is a simple least-squares linear regression y ≈ Slope*x + Intercept
// together with the residual extrema needed by functional mappings (§5.2.1):
// every observed y lies within [predict(x)+ErrLo, predict(x)+ErrHi].
type LinReg struct {
	Slope     float64
	Intercept float64
	ErrLo     float64 // most negative residual (<= 0)
	ErrHi     float64 // most positive residual (>= 0)
	N         int
}

// FitLinReg fits y on x and records residual bounds. Inputs must have equal
// length; a fit over fewer than 2 points degenerates to a constant model.
func FitLinReg(x, y []int64) LinReg {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n == 0 {
		return LinReg{}
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		fx, fy := float64(x[i]), float64(y[i])
		sx += fx
		sy += fy
		sxx += fx * fx
		sxy += fx * fy
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	lr := LinReg{N: n}
	if den != 0 {
		lr.Slope = (fn*sxy - sx*sy) / den
		lr.Intercept = (sy - lr.Slope*sx) / fn
	} else {
		lr.Intercept = sy / fn
	}
	for i := 0; i < n; i++ {
		r := float64(y[i]) - lr.Predict(float64(x[i]))
		if r < lr.ErrLo {
			lr.ErrLo = r
		}
		if r > lr.ErrHi {
			lr.ErrHi = r
		}
	}
	return lr
}

// Predict evaluates the regression at x.
func (l LinReg) Predict(x float64) float64 { return l.Slope*x + l.Intercept }

// Bounds maps an input range [xlo, xhi] to an output range guaranteed to
// contain y for every observed (x, y) with x in the range. It accounts for
// negative slopes by evaluating both endpoints.
func (l LinReg) Bounds(xlo, xhi float64) (float64, float64) {
	a, b := l.Predict(xlo), l.Predict(xhi)
	if a > b {
		a, b = b, a
	}
	return a + l.ErrLo, b + l.ErrHi
}

// ErrSpan returns the width of the residual band.
func (l LinReg) ErrSpan() float64 { return l.ErrHi - l.ErrLo }

// Package zindex implements the Z-order index baseline (§6.1): points are
// ordered by their Z-value (bit-interleaved quantized coordinates) and
// grouped into fixed-size pages. Each page keeps per-dimension min/max
// metadata, letting queries skip irrelevant pages, exactly as the paper
// describes.
//
// Coordinates are quantized to equi-depth ranks before interleaving so the
// curve is balanced even on skewed columns; the total Z-value is at most 64
// bits (bits per dimension = 64/d, at least 1).
package zindex

import (
	"sort"
	"time"

	"repro/internal/cdfmodel"
	"repro/internal/colstore"
	"repro/internal/index"
	"repro/internal/query"
)

// Index is a clustered Z-order index.
type Index struct {
	store    *colstore.Store
	pageSize int
	bits     uint // bits per dimension

	// quantizer: per-dim boundary values for 2^bits equi-depth buckets.
	bounds [][]int64

	pages []page
	stats index.BuildStats
}

type page struct {
	start, end int // physical range
	zmin, zmax uint64
	lo, hi     []int64 // per-dim min/max metadata
}

// Config controls the build.
type Config struct {
	// PageSize is the number of points per page (default 4096).
	PageSize int
}

// Build constructs the Z-order index over a clone of s.
func Build(s *colstore.Store, cfg Config) *Index {
	if cfg.PageSize <= 0 {
		cfg.PageSize = 4096
	}
	d := s.NumDims()
	bits := uint(64 / d)
	if bits == 0 {
		bits = 1
	}
	if bits > 16 {
		bits = 16
	}
	x := &Index{pageSize: cfg.PageSize, bits: bits}

	optStart := time.Now()
	// Equi-depth quantizer per dimension from a sample CDF.
	x.bounds = make([][]int64, d)
	for j := 0; j < d; j++ {
		m := cdfmodel.NewSample(s.Column(j), 1<<bits+1)
		x.bounds[j] = cdfmodel.Boundaries(m, 1<<bits)
	}
	x.stats.OptimizeSeconds = time.Since(optStart).Seconds()

	sortStart := time.Now()
	clone := s.Clone()
	n := clone.NumRows()
	zvals := make([]uint64, n)
	row := make([]int64, d)
	for i := 0; i < n; i++ {
		clone.Row(i, row)
		zvals[i] = x.zvalue(row)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return zvals[perm[a]] < zvals[perm[b]] })
	if err := clone.Reorder(perm); err != nil {
		panic("zindex: " + err.Error())
	}
	x.store = clone

	// Build pages with metadata over the reordered data.
	sortedZ := make([]uint64, n)
	for i, p := range perm {
		sortedZ[i] = zvals[p]
	}
	for start := 0; start < n; start += cfg.PageSize {
		end := start + cfg.PageSize
		if end > n {
			end = n
		}
		pg := page{start: start, end: end, zmin: sortedZ[start], zmax: sortedZ[end-1]}
		pg.lo = make([]int64, d)
		pg.hi = make([]int64, d)
		for j := 0; j < d; j++ {
			col := clone.Column(j)
			lo, hi := col[start], col[start]
			for i := start + 1; i < end; i++ {
				if col[i] < lo {
					lo = col[i]
				}
				if col[i] > hi {
					hi = col[i]
				}
			}
			pg.lo[j], pg.hi[j] = lo, hi
		}
		x.pages = append(x.pages, pg)
	}
	x.stats.SortSeconds = time.Since(sortStart).Seconds()
	return x
}

// quantize maps a value in dimension j to its equi-depth rank in
// [0, 2^bits).
func (x *Index) quantize(j int, v int64) uint64 {
	b := x.bounds[j]
	// First boundary > v, minus one → bucket index.
	i := sort.Search(len(b), func(i int) bool { return b[i] > v }) - 1
	if i < 0 {
		i = 0
	}
	if max := (1 << x.bits) - 1; i > max {
		i = max
	}
	return uint64(i)
}

// zvalue interleaves the quantized coordinates of a row.
func (x *Index) zvalue(row []int64) uint64 {
	d := len(row)
	var z uint64
	for bit := uint(0); bit < x.bits; bit++ {
		for j := 0; j < d; j++ {
			q := x.quantize(j, row[j])
			z |= ((q >> bit) & 1) << (bit*uint(d) + uint(j))
		}
	}
	return z
}

// Name implements index.Index.
func (x *Index) Name() string { return "ZOrder" }

// NumPages returns the page count.
func (x *Index) NumPages() int { return len(x.pages) }

// BuildStats returns the build timing split.
func (x *Index) BuildStats() index.BuildStats { return x.stats }

// Execute implements index.Index: restrict to pages whose Z-range overlaps
// the query rectangle's Z-range, then use per-page min/max metadata to skip.
// Pages and quantizer are immutable after Build and the corner buffers are
// per-call, so Execute is safe for concurrent callers sharing one index.
func (x *Index) Execute(q query.Query) colstore.ScanResult {
	var res colstore.ScanResult
	d := x.store.NumDims()
	loCorner := make([]int64, d)
	hiCorner := make([]int64, d)
	for j := 0; j < d; j++ {
		loCorner[j], hiCorner[j] = x.bounds[j][0], x.bounds[j][len(x.bounds[j])-1]
	}
	for _, f := range q.Filters {
		if f.Lo > loCorner[f.Dim] {
			loCorner[f.Dim] = f.Lo
		}
		if f.Hi < hiCorner[f.Dim] {
			hiCorner[f.Dim] = f.Hi
		}
	}
	zmin := x.zvalue(loCorner)
	zmax := x.zvalue(hiCorner)

	first := sort.Search(len(x.pages), func(i int) bool { return x.pages[i].zmax >= zmin })
	for i := first; i < len(x.pages); i++ {
		pg := &x.pages[i]
		if pg.zmin > zmax {
			break
		}
		if !pageIntersects(q, pg) {
			continue
		}
		exact := pageContained(q, pg)
		x.store.ScanRange(q, pg.start, pg.end, exact, &res)
	}
	return res
}

func pageIntersects(q query.Query, pg *page) bool {
	for _, f := range q.Filters {
		if pg.hi[f.Dim] < f.Lo || pg.lo[f.Dim] > f.Hi {
			return false
		}
	}
	return true
}

func pageContained(q query.Query, pg *page) bool {
	for _, f := range q.Filters {
		if pg.lo[f.Dim] < f.Lo || pg.hi[f.Dim] > f.Hi {
			return false
		}
	}
	return true
}

// SizeBytes implements index.Index: quantizer boundaries plus per-page
// metadata (z-range + d min/max pairs).
func (x *Index) SizeBytes() uint64 {
	d := uint64(x.store.NumDims())
	qb := uint64(0)
	for _, b := range x.bounds {
		qb += uint64(len(b)) * 8
	}
	return qb + uint64(len(x.pages))*(32+16*d)
}

package zindex

import (
	"testing"

	"repro/internal/query"
	"repro/internal/testutil"
)

func TestZOrderMatchesFullScan(t *testing.T) {
	st := testutil.SmallTaxi(8000, 1)
	qs := testutil.RandomQueries(st, 150, 2)
	idx := Build(st, Config{PageSize: 256})
	testutil.CheckMatchesFullScan(t, idx, st, qs)
}

func TestZOrderSmallPages(t *testing.T) {
	st := testutil.SmallTaxi(2000, 3)
	qs := testutil.RandomQueries(st, 80, 4)
	idx := Build(st, Config{PageSize: 32})
	testutil.CheckMatchesFullScan(t, idx, st, qs)
}

func TestZOrderPagesSorted(t *testing.T) {
	st := testutil.SmallTaxi(4000, 5)
	idx := Build(st, Config{PageSize: 128})
	for i := 1; i < len(idx.pages); i++ {
		if idx.pages[i].zmin < idx.pages[i-1].zmax {
			t.Fatalf("page %d z-range overlaps predecessor", i)
		}
	}
	total := 0
	for _, pg := range idx.pages {
		total += pg.end - pg.start
	}
	if total != 4000 {
		t.Errorf("pages cover %d rows, want 4000", total)
	}
}

func TestZOrderMetadataSound(t *testing.T) {
	st := testutil.SmallTaxi(4000, 6)
	idx := Build(st, Config{PageSize: 128})
	for pi, pg := range idx.pages {
		for j := 0; j < idx.store.NumDims(); j++ {
			col := idx.store.Column(j)
			for i := pg.start; i < pg.end; i++ {
				if col[i] < pg.lo[j] || col[i] > pg.hi[j] {
					t.Fatalf("page %d metadata violated at row %d dim %d", pi, i, j)
				}
			}
		}
	}
}

func TestZOrderUnfiltered(t *testing.T) {
	st := testutil.SmallTaxi(1000, 7)
	idx := Build(st, Config{PageSize: 64})
	if res := idx.Execute(query.NewCount()); res.Count != 1000 {
		t.Errorf("count = %d, want 1000", res.Count)
	}
}

func TestZValueMonotoneInCoordinates(t *testing.T) {
	st := testutil.SmallTaxi(1000, 8)
	idx := Build(st, Config{PageSize: 64})
	d := st.NumDims()
	lo := make([]int64, d)
	hi := make([]int64, d)
	for j := 0; j < d; j++ {
		lo[j], hi[j] = st.MinMax(j)
	}
	// The z-value of the min corner bounds the z-value of any point below
	// — the property Execute relies on for its page range.
	zlo, zhi := idx.zvalue(lo), idx.zvalue(hi)
	row := make([]int64, d)
	for i := 0; i < st.NumRows(); i++ {
		st.Row(i, row)
		z := idx.zvalue(row)
		if z < zlo || z > zhi {
			t.Fatalf("row %d z=%d outside corner range [%d, %d]", i, z, zlo, zhi)
		}
	}
}

// Package wstats is the workload-statistics layer: where internal/obs
// measures the serving machinery (latency histograms, queue depths, scan
// volume), wstats describes the workload itself — which query shapes
// arrive, how skewed their popularity is, what selectivities and filter
// bounds they observe, whether latency objectives hold, and which concrete
// queries populate the tail. It is the online replacement for the offline
// training workload the paper's optimizer consumes: ROADMAP items 4
// (adaptivity loop) and 5 (query-result caching and admission) both key
// on exactly these statistics.
//
// The package follows the same contract as internal/obs: a nil *Collector
// disables everything with zero hot-path cost, and recording never blocks
// the query path — the few always-on pieces (SLO counters, the slow-query
// threshold check) are a handful of uncontended atomics, and everything
// stateful (sketch, histograms, slow-query ring) lives on a single
// consumer goroutine fed by a sampled, non-blocking channel whose
// overflow is dropped and counted, never waited on.
package wstats

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/query"
)

// Fingerprint is a stable 64-bit identity for a query's *shape*: the
// aggregate kind, the filtered dimension set, and per filter its bound
// class (equality, half-open low/high, bounded range) plus a log2 width
// bucket for bounded ranges. Two queries that differ only in literal
// bound values (e.g. zone=5 vs zone=7, or two range scans of similar
// width) share a fingerprint; widening a range by more than 2x, or
// filtering a different dimension set, changes it. This is deliberately
// coarser than query equality — popularity and latency profiles attach
// to shapes, which is what a plan cache or the layout optimizer keys on
// — and finer than the shift detector's dimension-set types.
//
// The *result* cache (internal/qcache) must NOT key on fingerprints,
// and does not: two queries with one fingerprint (zone=5 vs zone=7)
// have different answers, so a shape-keyed result cache would serve one
// query's result as the other's. Result caching needs exact-literal
// equality (the canonicalized query itself, plus the serving epoch);
// observability needs literal-erasing aggregation — same canonical
// form, opposite equivalence classes, two deliberately separate keys.
type Fingerprint uint64

// Bound classes, hashed into the fingerprint and counted per dimension.
const (
	classEq    = iota // Lo == Hi
	classGe           // lower bound only
	classLe           // upper bound only
	classRange        // both bounds
	classAny          // no usable bound on either side
)

func classOf(f query.Filter) int {
	switch {
	case f.Lo == f.Hi:
		return classEq
	case f.Lo == query.NoLo && f.Hi == query.NoHi:
		return classAny
	case f.Lo == query.NoLo:
		return classLe
	case f.Hi == query.NoHi:
		return classGe
	default:
		return classRange
	}
}

// widthLog2 buckets a bounded range filter's width (Hi-Lo) by its log2,
// so ranges within 2x of each other share a fingerprint. The subtraction
// is done in uint64 so extreme bounds cannot overflow.
func widthLog2(f query.Filter) int {
	return bits.Len64(uint64(f.Hi) - uint64(f.Lo))
}

// FNV-1a, the same dependency-free hash the stdlib uses for its own
// non-cryptographic needs.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnv(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvInt(h uint64, v int) uint64 {
	for i := 0; i < 4; i++ {
		h = fnv(h, byte(v>>(8*i)))
	}
	return h
}

// Key fingerprints a query. Queries built through the query package have
// their filters sorted by dimension (normalize), so the hash is stable
// under filter order.
func Key(q query.Query) Fingerprint {
	h := uint64(fnvOffset)
	h = fnv(h, byte(q.Agg))
	if q.Agg == query.Sum {
		h = fnvInt(h, q.AggDim)
	}
	// The grouping dimension is part of the shape: `count by zone` and a
	// flat count answer different questions (and cost differently), as do
	// groupings over different dimensions. GroupBy carries 1+dim (0 when
	// flat), so hashing it verbatim separates all three cases.
	if q.Grouped() {
		h = fnvInt(h, q.GroupBy)
	}
	for _, f := range q.Filters {
		h = fnvInt(h, f.Dim)
		cls := classOf(f)
		h = fnv(h, byte(cls))
		if cls == classRange {
			h = fnv(h, byte(widthLog2(f)))
		}
	}
	return Fingerprint(h)
}

// Shape renders a fingerprint's human-readable class, e.g.
//
//	count passengers=? distance=[~2^9]
//	sum(fare) pickup_zone=? total>=?
//	count distance<=? by passengers
//
// names maps dimension index to column name; out-of-range or missing
// names fall back to d<i>. The rendering carries exactly the information
// the fingerprint hashes — literal bound values are elided as "?".
func Shape(q query.Query, names []string) string {
	var b strings.Builder
	switch q.Agg {
	case query.Sum:
		fmt.Fprintf(&b, "sum(%s)", dimName(names, q.AggDim))
	default:
		b.WriteString("count")
	}
	for _, f := range q.Filters {
		b.WriteByte(' ')
		n := dimName(names, f.Dim)
		switch classOf(f) {
		case classEq:
			b.WriteString(n + "=?")
		case classGe:
			b.WriteString(n + ">=?")
		case classLe:
			b.WriteString(n + "<=?")
		case classAny:
			b.WriteString(n + "=*")
		default:
			fmt.Fprintf(&b, "%s=[~2^%d]", n, widthLog2(f))
		}
	}
	if q.Grouped() {
		b.WriteString(" by " + dimName(names, q.GroupDim()))
	}
	return b.String()
}

func dimName(names []string, dim int) string {
	if dim >= 0 && dim < len(names) && names[dim] != "" {
		return names[dim]
	}
	return fmt.Sprintf("d%d", dim)
}

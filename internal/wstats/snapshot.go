package wstats

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Snapshot is a point-in-time copy of every workload statistic, shaped
// for the /workloadz JSON endpoint (field tags are the documented wire
// schema; see README "Workload observability").
type Snapshot struct {
	// Queries counts every Record call; Sampled is how many of them the
	// consumer applied to the heavyweight statistics (1 in SampleEvery,
	// plus slow queries); Dropped counts consumer-channel overflow.
	Queries     uint64 `json:"queries"`
	Sampled     uint64 `json:"sampled"`
	SampleEvery int    `json:"sample_every"`
	Dropped     uint64 `json:"dropped"`

	// Sampled latency quantiles — context for the adaptive slow threshold
	// (the registry's histograms remain the authoritative latency source).
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`

	Fingerprints []FingerprintStat `json:"fingerprints"`
	Dims         []DimStat         `json:"dims"`
	SLO          []SLOStat         `json:"slo"`

	// SlowThresholdSeconds is the current adaptive slow-query threshold
	// (0 until MinSamples queries have been sampled); SlowSeen counts
	// queries that exceeded it; Slow is the exemplar ring, newest first.
	SlowThresholdSeconds float64     `json:"slow_threshold_seconds"`
	SlowSeen             uint64      `json:"slow_seen"`
	Slow                 []SlowEntry `json:"slow"`
}

// FingerprintStat is one heavy-hitter sketch entry.
type FingerprintStat struct {
	Fingerprint string `json:"fingerprint"`
	Shape       string `json:"shape"`
	// Count estimates the fingerprint's occurrences in the sampled
	// stream; space-saving guarantees Count-ErrBound <= true <= Count.
	Count    uint64 `json:"count"`
	ErrBound uint64 `json:"err_bound,omitempty"`
	// Share is Count over the sampled stream length.
	Share      float64 `json:"share"`
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

// DimStat is one filtered dimension's accumulated statistics.
type DimStat struct {
	Dim  int    `json:"dim"`
	Name string `json:"name,omitempty"`
	// Filter counts by bound class over the sampled stream.
	Filters   uint64 `json:"filters"`
	Eq        uint64 `json:"eq,omitempty"`
	LowerOnly uint64 `json:"lower_only,omitempty"`
	UpperOnly uint64 `json:"upper_only,omitempty"`
	Range     uint64 `json:"range,omitempty"`
	Unbounded uint64 `json:"unbounded,omitempty"`
	// MeanWidthFrac is bounded ranges' mean width as a fraction of the
	// dimension's domain.
	MeanWidthFrac float64 `json:"mean_width_frac,omitempty"`
	// LoBoundHist/HiBoundHist bucket observed bound values by normalized
	// position in the domain (16 buckets, low to high).
	LoBoundHist []uint64 `json:"lo_bound_hist,omitempty"`
	HiBoundHist []uint64 `json:"hi_bound_hist,omitempty"`
	// Observed result selectivity (matched rows / table rows), attributed
	// to this dimension from single-filter queries: the mean, the sample
	// count, and a histogram over -log2(selectivity) (bucket i covers
	// selectivities in (2^-(i+1), 2^-i]; the last bucket is zero-match).
	MeanSelectivity float64  `json:"mean_selectivity,omitempty"`
	SelSamples      uint64   `json:"sel_samples,omitempty"`
	SelLog2Hist     []uint64 `json:"sel_log2_hist,omitempty"`
}

// SLOStat is one latency objective's standing.
type SLOStat struct {
	LatencySeconds float64 `json:"latency_seconds"`
	Target         float64 `json:"target"`
	Good           uint64  `json:"good"`
	Bad            uint64  `json:"bad"`
	BadFrac        float64 `json:"bad_frac"`
	// BurnRate is BadFrac over the error budget (1-Target): 1.0 burns the
	// budget exactly, >1 burns it faster than the objective allows.
	BurnRate float64 `json:"burn_rate"`
}

// SlowEntry is one slow-query log exemplar.
type SlowEntry struct {
	When    time.Time `json:"when"`
	Query   string    `json:"query"`
	Seconds float64   `json:"seconds"`
	Matched uint64    `json:"matched"`
	Rows    uint64    `json:"rows_scanned"`
	Bytes   uint64    `json:"bytes_touched"`
	// Trace is the rendered exemplar explain-analyze trace, when one was
	// captured (rate-limited; empty otherwise).
	Trace string `json:"trace,omitempty"`
}

// Snapshot copies the current statistics. Safe from any goroutine; nil
// returns a zero snapshot. It reflects what the consumer has applied so
// far — tests and CLI commands call Sync first for exactness.
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		Queries:              c.queries.Load(),
		Sampled:              c.sampled,
		SampleEvery:          c.cfg.SampleEvery,
		Dropped:              c.dropped.Load(),
		P50Seconds:           float64(c.lat.quantile(0.50)) / 1e9,
		P99Seconds:           float64(c.lat.quantile(0.99)) / 1e9,
		SlowThresholdSeconds: float64(c.slowThrNs.Load()) / 1e9,
		SlowSeen:             c.slowSeen.Load(),
		// Non-nil so the list sections marshal as [] rather than null
		// before any query lands — /workloadz consumers see stable types.
		Fingerprints: []FingerprintStat{},
		Dims:         []DimStat{},
		SLO:          []SLOStat{},
		Slow:         []SlowEntry{},
	}
	for _, e := range c.sketch.top(0) {
		fs := FingerprintStat{
			Fingerprint: fmt.Sprintf("%016x", uint64(e.key)),
			Shape:       e.shape,
			Count:       e.count,
			ErrBound:    e.errBound,
			P50Seconds:  float64(e.lat.quantile(0.50)) / 1e9,
			P99Seconds:  float64(e.lat.quantile(0.99)) / 1e9,
		}
		if c.sketch.n > 0 {
			fs.Share = float64(e.count) / float64(c.sketch.n)
		}
		s.Fingerprints = append(s.Fingerprints, fs)
	}
	for dim, d := range c.dims {
		ds := DimStat{
			Dim:       dim,
			Name:      dimNameOrEmpty(c.binding.DimNames, dim),
			Filters:   d.filters,
			Eq:        d.eq,
			LowerOnly: d.ge,
			UpperOnly: d.le,
			Range:     d.rng,
			Unbounded: d.open,
		}
		if d.widthN > 0 {
			ds.MeanWidthFrac = d.widthSum / float64(d.widthN)
		}
		if d.selN > 0 {
			ds.MeanSelectivity = d.selSum / float64(d.selN)
			ds.SelSamples = d.selN
			ds.SelLog2Hist = trimHist(d.selLog[:])
		}
		ds.LoBoundHist = trimHist(d.loHist[:])
		ds.HiBoundHist = trimHist(d.hiHist[:])
		s.Dims = append(s.Dims, ds)
	}
	sortDims(s.Dims)
	for i := range c.slo {
		st := SLOStat{
			LatencySeconds: float64(c.slo[i].thrNs) / 1e9,
			Target:         c.slo[i].target,
			Good:           c.slo[i].good.Load(),
			Bad:            c.slo[i].bad.Load(),
		}
		if total := st.Good + st.Bad; total > 0 {
			st.BadFrac = float64(st.Bad) / float64(total)
		}
		if budget := 1 - st.Target; budget > 0 {
			st.BurnRate = st.BadFrac / budget
		}
		s.SLO = append(s.SLO, st)
	}
	// Slow ring, newest first.
	for i := 0; i < c.slowN; i++ {
		idx := (c.slowPos - 1 - i + len(c.slowRing)) % len(c.slowRing)
		s.Slow = append(s.Slow, c.slowRing[idx])
	}
	return s
}

func dimNameOrEmpty(names []string, dim int) string {
	if dim >= 0 && dim < len(names) {
		return names[dim]
	}
	return ""
}

// trimHist drops all-zero histograms from the JSON (copies otherwise —
// snapshots must not alias live consumer state).
func trimHist(h []uint64) []uint64 {
	for _, v := range h {
		if v != 0 {
			return append([]uint64(nil), h...)
		}
	}
	return nil
}

func sortDims(ds []DimStat) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].Dim < ds[j-1].Dim; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// HTTPHandler serves the collector's Snapshot as JSON — the /workloadz
// endpoint. A nil collector serves a zero snapshot, so the route can be
// mounted unconditionally.
func HTTPHandler(c *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		c.Sync()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(c.Snapshot())
	})
}

package wstats

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
)

// Objective is one latency SLO: at least Target of queries answered
// within Latency.
type Objective struct {
	Latency time.Duration
	Target  float64
}

// Config tunes a Collector; zero values take defaults.
type Config struct {
	// TopK is the heavy-hitter sketch capacity (default 64 fingerprints).
	TopK int
	// SampleEvery feeds every Nth query to the stateful consumer (sketch,
	// selectivity stats, latency histograms); 1 records everything
	// (default 8). SLO counters and the slow-query check are always-on
	// regardless — sampling only thins the heavyweight statistics.
	// Queries beyond the slow threshold always reach the consumer.
	SampleEvery int
	// SlowLogSize bounds the slow-query exemplar ring (default 64).
	SlowLogSize int
	// SlowFactor sets the adaptive slow threshold at this multiple of the
	// sampled p99 (default 1.5); MinSlow floors it. The threshold arms
	// after MinSamples sampled queries (default 64).
	SlowFactor float64
	MinSlow    time.Duration
	MinSamples int
	// TraceInterval rate-limits exemplar trace captures for slow-log
	// entries: at most one re-executed trace per interval (default 250ms).
	// Entries between captures are logged without a trace.
	TraceInterval time.Duration
	// Objectives are the latency SLOs tracked with always-on good/bad
	// counters (default: 1ms@99%, 10ms@99.9%).
	Objectives []Objective
	// Buffer is the consumer channel capacity (default 1024); overflow is
	// dropped and counted, never waited on.
	Buffer int
}

func (c *Config) fill() {
	if c.TopK <= 0 {
		c.TopK = 64
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 8
	}
	if c.SlowLogSize <= 0 {
		c.SlowLogSize = 64
	}
	if c.SlowFactor <= 0 {
		c.SlowFactor = 1.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 64
	}
	if c.TraceInterval <= 0 {
		c.TraceInterval = 250 * time.Millisecond
	}
	if c.Objectives == nil {
		c.Objectives = []Objective{
			{Latency: time.Millisecond, Target: 0.99},
			{Latency: 10 * time.Millisecond, Target: 0.999},
		}
	}
	if c.Buffer <= 0 {
		c.Buffer = 1024
	}
}

// Binding connects a Collector to the store it observes: column names for
// shape rendering, per-dimension domains for normalized bound histograms,
// a live row count for selectivity, and a trace function the slow-query
// log uses to capture exemplar explain-analyze traces. Serving layers
// call Bind at open; every field is optional (nil/empty disables the
// dependent statistic). The Trace function must execute outside the
// collector's own recording path — LiveStore binds the core index's
// ExecuteTrace and ShardedStore a non-recording router variant — so a
// captured exemplar never re-records into the collector.
type Binding struct {
	DimNames           []string
	DomainLo, DomainHi []int64
	Rows               func() uint64
	Trace              func(query.Query) *obs.QueryTrace
}

// sloState is one objective's always-on counters.
type sloState struct {
	thrNs  int64
	target float64
	good   atomic.Uint64
	bad    atomic.Uint64
}

// item is one recorded query on its way to the consumer goroutine.
type item struct {
	q                       query.Query
	ns                      int64
	matched, scanned, bytes uint64
	slow, sampled           bool
}

// Collector gathers workload statistics from the serving hot path. A nil
// *Collector is a valid no-op (every method checks), mirroring the
// nil-registry contract of internal/obs. Record is safe from any number
// of goroutines and never blocks: the inline portion is a few uncontended
// atomics, and the stateful portion runs on one consumer goroutine behind
// a drop-on-overflow channel.
type Collector struct {
	cfg         Config
	sampleEvery uint64

	// Hot-path state: plain atomics, no pointers chased beyond c itself.
	seq       atomic.Uint64
	queries   atomic.Uint64
	slowSeen  atomic.Uint64
	dropped   atomic.Uint64
	slowThrNs atomic.Int64
	slo       []sloState

	ch    chan item
	flush chan chan struct{}
	quit  chan struct{}
	done  chan struct{}
	once  sync.Once

	// mu guards the consumer-owned statistics against Snapshot and Bind.
	// The consumer takes it per applied item; contention is rare (scrapes
	// and stats commands), never on the query path.
	mu       sync.Mutex
	binding  Binding
	sketch   *spaceSaving
	dims     map[int]*dimStats
	lat      latHist
	sampled  uint64
	rowsNow  uint64 // cached binding.Rows(), refreshed periodically
	slowRing []SlowEntry
	slowPos  int
	slowN    int
	lastTr   time.Time
}

// dimStats accumulates per-dimension filter statistics from the sampled
// stream.
type dimStats struct {
	filters, eq, ge, le, rng, open uint64
	// loHist/hiHist bucket present bound values by normalized position in
	// the dimension's domain (needs a Binding with domains).
	loHist, hiHist [posBuckets]uint64
	// widthSum accumulates bounded ranges' widths as domain fractions.
	widthSum float64
	widthN   uint64
	// Selectivity (matched/rows) is attributed per dimension only for
	// single-filter queries, where it is unambiguous. selLog buckets
	// -log2(selectivity): selLog[0] is sel > 1/2, selLog[31] ~ 2^-32,
	// selLog[32] catches zero-match queries.
	selLog [selBuckets]uint64
	selSum float64
	selN   uint64
}

const (
	posBuckets = 16
	selBuckets = 33
)

// New starts a Collector and its consumer goroutine. Close releases it;
// a closed Collector keeps accepting Record calls (they drop into the
// full channel or the counters) so shutdown ordering is a non-issue.
func New(cfg Config) *Collector {
	cfg.fill()
	c := &Collector{
		cfg:         cfg,
		sampleEvery: uint64(cfg.SampleEvery),
		slo:         make([]sloState, len(cfg.Objectives)),
		ch:          make(chan item, cfg.Buffer),
		flush:       make(chan chan struct{}),
		quit:        make(chan struct{}),
		done:        make(chan struct{}),
		sketch:      newSpaceSaving(cfg.TopK),
		dims:        make(map[int]*dimStats),
		slowRing:    make([]SlowEntry, cfg.SlowLogSize),
	}
	for i, o := range cfg.Objectives {
		c.slo[i].thrNs = int64(o.Latency)
		c.slo[i].target = o.Target
	}
	go c.run()
	return c
}

// Bind attaches store context (see Binding). Call before or during
// serving; statistics depending on missing fields simply stay empty.
func (c *Collector) Bind(b Binding) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.binding = b
	if b.Rows != nil {
		c.rowsNow = b.Rows()
	}
	c.mu.Unlock()
}

// Record accounts one served query: its shape, latency, result size, and
// scan volume. Safe for concurrent use; never blocks; no-op on nil.
func (c *Collector) Record(q query.Query, d time.Duration, matched, scanned, bytes uint64) {
	if c == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	c.queries.Add(1)
	for i := range c.slo {
		if ns <= c.slo[i].thrNs {
			c.slo[i].good.Add(1)
		} else {
			c.slo[i].bad.Add(1)
		}
	}
	slow := false
	if thr := c.slowThrNs.Load(); thr > 0 && ns >= thr {
		slow = true
		c.slowSeen.Add(1)
	}
	sampled := c.seq.Add(1)%c.sampleEvery == 0
	if !sampled && !slow {
		return
	}
	select {
	case c.ch <- item{q: q, ns: ns, matched: matched, scanned: scanned, bytes: bytes, slow: slow, sampled: sampled}:
	default:
		c.dropped.Add(1)
	}
}

// Sync blocks until every item recorded before the call has been applied
// by the consumer — for deterministic tests and CLI commands; never
// needed on the serving path. No-op on nil or after Close.
func (c *Collector) Sync() {
	if c == nil {
		return
	}
	ack := make(chan struct{})
	select {
	case c.flush <- ack:
		<-ack
	case <-c.done:
	}
}

// Close stops the consumer goroutine. Recording after Close stays safe
// (and is dropped once the channel fills).
func (c *Collector) Close() {
	if c == nil {
		return
	}
	c.once.Do(func() { close(c.quit) })
	<-c.done
}

func (c *Collector) run() {
	defer close(c.done)
	for {
		select {
		case <-c.quit:
			return
		case it := <-c.ch:
			c.apply(it)
		case ack := <-c.flush:
			c.drain()
			close(ack)
		}
	}
}

// drain applies everything already queued (used by Sync).
func (c *Collector) drain() {
	for {
		select {
		case it := <-c.ch:
			c.apply(it)
		default:
			return
		}
	}
}

func (c *Collector) apply(it item) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if it.sampled {
		c.sampled++
		c.lat.record(it.ns)
		names := c.binding.DimNames
		c.sketch.observe(Key(it.q), it.ns, func() string { return Shape(it.q, names) })
		c.applyDims(it)
		// Periodically re-arm the adaptive slow threshold and refresh the
		// cached row count (both too costly per item, both slow-moving).
		if c.sampled%32 == 0 || (c.slowThrNs.Load() == 0 && c.sampled == uint64(c.cfg.MinSamples)) {
			c.refreshThreshold()
			if c.binding.Rows != nil {
				c.rowsNow = c.binding.Rows()
			}
		}
	}
	if it.slow {
		c.applySlow(it)
	}
}

func (c *Collector) refreshThreshold() {
	if c.lat.total < uint64(c.cfg.MinSamples) {
		return
	}
	thr := int64(float64(c.lat.quantile(0.99)) * c.cfg.SlowFactor)
	if min := int64(c.cfg.MinSlow); thr < min {
		thr = min
	}
	if thr < 1 {
		thr = 1
	}
	c.slowThrNs.Store(thr)
}

func (c *Collector) applyDims(it item) {
	for _, f := range it.q.Filters {
		d := c.dims[f.Dim]
		if d == nil {
			d = &dimStats{}
			c.dims[f.Dim] = d
		}
		d.filters++
		cls := classOf(f)
		switch cls {
		case classEq:
			d.eq++
		case classGe:
			d.ge++
		case classLe:
			d.le++
		case classRange:
			d.rng++
		default:
			d.open++
		}
		lo, hi, okDom := c.domain(f.Dim)
		if okDom {
			if f.Lo != query.NoLo {
				d.loHist[posBucket(f.Lo, lo, hi)]++
			}
			if f.Hi != query.NoHi {
				d.hiHist[posBucket(f.Hi, lo, hi)]++
			}
			if cls == classRange {
				width := float64(uint64(f.Hi)-uint64(f.Lo)) + 1
				if span := float64(uint64(hi)-uint64(lo)) + 1; span > 0 {
					frac := width / span
					if frac > 1 {
						frac = 1
					}
					d.widthSum += frac
					d.widthN++
				}
			}
		}
	}
	if len(it.q.Filters) == 1 && c.rowsNow > 0 {
		d := c.dims[it.q.Filters[0].Dim]
		sel := float64(it.matched) / float64(c.rowsNow)
		if sel > 1 {
			sel = 1
		}
		d.selSum += sel
		d.selN++
		d.selLog[selBucket(sel)]++
	}
}

func (c *Collector) domain(dim int) (lo, hi int64, ok bool) {
	b := c.binding
	if dim < 0 || dim >= len(b.DomainLo) || dim >= len(b.DomainHi) {
		return 0, 0, false
	}
	lo, hi = b.DomainLo[dim], b.DomainHi[dim]
	return lo, hi, hi > lo
}

// posBucket maps a bound value to its normalized position bucket within
// [lo, hi]; out-of-domain values clamp to the edge buckets.
func posBucket(v, lo, hi int64) int {
	if v <= lo {
		return 0
	}
	if v >= hi {
		return posBuckets - 1
	}
	frac := float64(uint64(v)-uint64(lo)) / float64(uint64(hi)-uint64(lo))
	b := int(frac * posBuckets)
	if b >= posBuckets {
		b = posBuckets - 1
	}
	return b
}

func selBucket(sel float64) int {
	if sel <= 0 {
		return selBuckets - 1
	}
	b := int(math.Floor(-math.Log2(sel)))
	if b < 0 {
		b = 0
	}
	if b >= selBuckets {
		b = selBuckets - 1
	}
	return b
}

func (c *Collector) applySlow(it item) {
	e := SlowEntry{
		When:    time.Now(),
		Query:   it.q.String(),
		Seconds: float64(it.ns) / 1e9,
		Matched: it.matched,
		Rows:    it.scanned,
		Bytes:   it.bytes,
	}
	// Exemplar traces re-execute the query through the bound non-recording
	// trace path; rate-limit so a burst of slow queries costs one capture.
	if tr := c.binding.Trace; tr != nil {
		now := time.Now()
		if c.lastTr.IsZero() || now.Sub(c.lastTr) >= c.cfg.TraceInterval {
			c.lastTr = now
			if t := tr(it.q); t != nil {
				e.Trace = t.String()
			}
		}
	}
	c.slowRing[c.slowPos] = e
	c.slowPos = (c.slowPos + 1) % len(c.slowRing)
	if c.slowN < len(c.slowRing) {
		c.slowN++
	}
}

package wstats

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestSpaceSavingZipfDifferential is the randomized differential test of
// the heavy-hitter sketch against an exact-count oracle: zipfian
// fingerprint streams with many more distinct keys than sketch slots,
// checking the space-saving guarantees — estimates bracket the truth
// (true <= est <= true+err), any key with true count > n/k is monitored,
// and the sketch's top ranking agrees with the oracle on the clearly
// separated head.
func TestSpaceSavingZipfDifferential(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		s    float64 // zipf skew
		keys int
		k    int
		n    int
	}{
		{seed: 1, s: 1.3, keys: 500, k: 48, n: 100_000},
		{seed: 2, s: 1.1, keys: 2000, k: 64, n: 200_000},
		{seed: 3, s: 2.0, keys: 300, k: 16, n: 50_000},
		{seed: 4, s: 1.01, keys: 5000, k: 64, n: 150_000},
	} {
		tc := tc
		t.Run(fmt.Sprintf("seed%d_s%.2f_keys%d_k%d", tc.seed, tc.s, tc.keys, tc.k), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(tc.seed))
			zipf := rand.NewZipf(rng, tc.s, 1, uint64(tc.keys-1))
			sk := newSpaceSaving(tc.k)
			exact := make(map[Fingerprint]uint64)
			for i := 0; i < tc.n; i++ {
				// Spread the raw zipf ranks through the fingerprint hash so
				// map-iteration eviction order can't correlate with rank.
				key := Fingerprint(fnvInt(fnvOffset, int(zipf.Uint64())))
				exact[key]++
				sk.observe(key, int64(i%1000), func() string { return "shape" })
			}
			if sk.n != uint64(tc.n) {
				t.Fatalf("sketch saw %d items, streamed %d", sk.n, tc.n)
			}
			if len(sk.m) > tc.k {
				t.Fatalf("sketch holds %d entries, capacity %d", len(sk.m), tc.k)
			}

			// Bracketing: every monitored estimate over-counts by at most
			// its error bound.
			for key, e := range sk.m {
				truth := exact[key]
				if e.count < truth {
					t.Errorf("key %x: estimate %d below true count %d", key, e.count, truth)
				}
				if e.count-e.errBound > truth {
					t.Errorf("key %x: estimate %d - err %d exceeds true count %d", key, e.count, e.errBound, truth)
				}
			}

			// Completeness: every key with true count > n/k must be
			// monitored (the classic space-saving guarantee).
			floor := uint64(tc.n / tc.k)
			for key, truth := range exact {
				if truth > floor {
					if _, ok := sk.m[key]; !ok {
						t.Errorf("heavy key %x (true %d > n/k %d) not monitored", key, truth, floor)
					}
				}
			}

			// Head ranking: where the oracle's counts are separated by more
			// than the sketch's max error, the sketch's ranking must agree.
			type kc struct {
				key Fingerprint
				n   uint64
			}
			var truthTop []kc
			for k, v := range exact {
				truthTop = append(truthTop, kc{k, v})
			}
			sort.Slice(truthTop, func(i, j int) bool { return truthTop[i].n > truthTop[j].n })
			var maxErr uint64
			for _, e := range sk.m {
				if e.errBound > maxErr {
					maxErr = e.errBound
				}
			}
			top := sk.top(len(truthTop))
			for i := 0; i < 5 && i+1 < len(truthTop); i++ {
				if truthTop[i].n <= truthTop[i+1].n+2*maxErr {
					break // head not separated beyond error; ranking unconstrained
				}
				if i >= len(top) || top[i].key != truthTop[i].key {
					t.Errorf("rank %d: sketch has %v, oracle has %x (true %d, maxErr %d)",
						i, topKey(top, i), truthTop[i].key, truthTop[i].n, maxErr)
				}
			}
		})
	}
}

func topKey(top []*hhEntry, i int) interface{} {
	if i < len(top) {
		return fmt.Sprintf("%x", top[i].key)
	}
	return "<absent>"
}

func TestSpaceSavingExactBelowCapacity(t *testing.T) {
	sk := newSpaceSaving(32)
	for i := 0; i < 1000; i++ {
		sk.observe(Fingerprint(i%10), int64(i), func() string { return fmt.Sprintf("s%d", i%10) })
	}
	for i := 0; i < 10; i++ {
		est, errB, ok := sk.estimate(Fingerprint(i))
		if !ok || est != 100 || errB != 0 {
			t.Fatalf("key %d: est=%d err=%d ok=%v, want exactly 100 with zero error", i, est, errB, ok)
		}
	}
	if got := sk.top(3); len(got) != 3 {
		t.Fatalf("top(3) returned %d entries", len(got))
	}
}

package wstats

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
)

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	c.Record(query.NewCount(query.Filter{Dim: 0, Lo: 1, Hi: 1}), time.Millisecond, 1, 1, 8)
	c.Bind(Binding{})
	c.Sync()
	c.Close()
	if s := c.Snapshot(); s.Queries != 0 || s.Fingerprints != nil {
		t.Fatalf("nil snapshot not zero: %+v", s)
	}
}

func TestFingerprintStability(t *testing.T) {
	eq1 := query.NewCount(query.Filter{Dim: 2, Lo: 5, Hi: 5})
	eq2 := query.NewCount(query.Filter{Dim: 2, Lo: 9, Hi: 9})
	if Key(eq1) != Key(eq2) {
		t.Error("equality filters with different literals should share a fingerprint")
	}
	otherDim := query.NewCount(query.Filter{Dim: 3, Lo: 5, Hi: 5})
	if Key(eq1) == Key(otherDim) {
		t.Error("different dimension sets must not collide")
	}
	r1 := query.NewCount(query.Filter{Dim: 1, Lo: 0, Hi: 100})
	r2 := query.NewCount(query.Filter{Dim: 1, Lo: 500, Hi: 590}) // similar width
	r3 := query.NewCount(query.Filter{Dim: 1, Lo: 0, Hi: 100_000})
	if Key(r1) != Key(r2) {
		t.Error("ranges of similar width should share a fingerprint")
	}
	if Key(r1) == Key(r3) {
		t.Error("a 1000x wider range should change the fingerprint")
	}
	ge := query.NewCount(query.Filter{Dim: 1, Lo: 10, Hi: query.NoHi})
	le := query.NewCount(query.Filter{Dim: 1, Lo: query.NoLo, Hi: 10})
	if Key(ge) == Key(le) {
		t.Error("half-open directions must not collide")
	}
	sum := query.NewSum(4, query.Filter{Dim: 2, Lo: 5, Hi: 5})
	if Key(sum) == Key(eq1) {
		t.Error("sum vs count must not collide")
	}
	// Filter order must not matter (normalize sorts, but verify end-to-end).
	a := query.NewCount(query.Filter{Dim: 0, Lo: 1, Hi: 1}, query.Filter{Dim: 5, Lo: 0, Hi: query.NoHi})
	b := query.NewCount(query.Filter{Dim: 5, Lo: 3, Hi: query.NoHi}, query.Filter{Dim: 0, Lo: 7, Hi: 7})
	if Key(a) != Key(b) {
		t.Error("fingerprint must be independent of filter construction order")
	}
}

func TestShapeRendering(t *testing.T) {
	names := []string{"time", "zone", "fare"}
	q := query.NewSum(2,
		query.Filter{Dim: 1, Lo: 5, Hi: 5},
		query.Filter{Dim: 0, Lo: 100, Hi: 199},
		query.Filter{Dim: 2, Lo: 10, Hi: query.NoHi})
	got := Shape(q, names)
	want := "sum(fare) time=[~2^7] zone=? fare>=?"
	if got != want {
		t.Fatalf("Shape = %q, want %q", got, want)
	}
	if s := Shape(query.NewCount(query.Filter{Dim: 7, Lo: query.NoLo, Hi: 3}), nil); s != "count d7<=?" {
		t.Fatalf("fallback shape = %q", s)
	}
}

// TestCollectorEndToEnd drives a skewed mix through a collector and
// checks the sketch ranking, per-dim stats, SLO counters, and the
// adaptive slow log with a stub trace function.
func TestCollectorEndToEnd(t *testing.T) {
	c := New(Config{
		SampleEvery: 1, // deterministic: every query reaches the consumer
		MinSamples:  32,
		SlowFactor:  1.5,
		Objectives:  []Objective{{Latency: time.Millisecond, Target: 0.99}},
	})
	defer c.Close()
	var traced []string
	c.Bind(Binding{
		DimNames: []string{"zone", "fare"},
		DomainLo: []int64{0, 0},
		DomainHi: []int64{255, 1000},
		Rows:     func() uint64 { return 1000 },
		Trace: func(q query.Query) *obs.QueryTrace {
			traced = append(traced, q.String())
			return &obs.QueryTrace{Query: q.String(), Total: time.Millisecond}
		},
	})

	hot := query.NewCount(query.Filter{Dim: 0, Lo: 5, Hi: 5})
	warm := query.NewCount(query.Filter{Dim: 1, Lo: 0, Hi: 100})
	for i := 0; i < 300; i++ {
		c.Record(hot, 10*time.Microsecond, 100, 200, 1600)
	}
	for i := 0; i < 30; i++ {
		c.Record(warm, 20*time.Microsecond, 250, 300, 2400)
	}
	c.Sync()
	// Past MinSamples the threshold is armed off the ~10-20µs p99; a 5ms
	// outlier must land in the slow log (and breach the 1ms SLO).
	slowQ := query.NewSum(1, query.Filter{Dim: 0, Lo: 0, Hi: 200})
	c.Record(slowQ, 5*time.Millisecond, 900, 1000, 8000)
	c.Sync()

	s := c.Snapshot()
	if s.Queries != 331 || s.Sampled != 331 {
		t.Fatalf("queries=%d sampled=%d, want 331/331", s.Queries, s.Sampled)
	}
	if len(s.Fingerprints) == 0 || s.Fingerprints[0].Shape != "count zone=?" {
		t.Fatalf("top fingerprint = %+v, want count zone=? first", s.Fingerprints)
	}
	if got := s.Fingerprints[0].Count; got != 300 {
		t.Fatalf("top fingerprint count = %d, want 300", got)
	}
	if s.SlowThresholdSeconds <= 0 {
		t.Fatal("slow threshold never armed")
	}
	if s.SlowSeen == 0 || len(s.Slow) == 0 {
		t.Fatalf("slow query not captured: seen=%d entries=%d", s.SlowSeen, len(s.Slow))
	}
	if !strings.Contains(s.Slow[0].Query, "SUM") {
		t.Fatalf("slow entry query = %q", s.Slow[0].Query)
	}
	if s.Slow[0].Trace == "" || len(traced) != 1 {
		t.Fatalf("exemplar trace not captured (traced=%v)", traced)
	}
	if len(s.SLO) != 1 || s.SLO[0].Bad != 1 || s.SLO[0].Good != 330 {
		t.Fatalf("slo = %+v, want good=330 bad=1", s.SLO)
	}
	if s.SLO[0].BurnRate <= 0 {
		t.Fatal("burn rate should be positive after a breach")
	}

	// Per-dim stats: zone got 300 eq filters + the slow range; fare got a
	// range with mean selectivity 250/1000 and width 101/1001.
	var zone, fare *DimStat
	for i := range s.Dims {
		switch s.Dims[i].Dim {
		case 0:
			zone = &s.Dims[i]
		case 1:
			fare = &s.Dims[i]
		}
	}
	if zone == nil || fare == nil {
		t.Fatalf("dims missing: %+v", s.Dims)
	}
	if zone.Eq != 300 {
		t.Fatalf("zone eq = %d, want 300", zone.Eq)
	}
	if fare.Range != 30 || fare.SelSamples != 30 {
		t.Fatalf("fare range=%d selSamples=%d, want 30/30", fare.Range, fare.SelSamples)
	}
	if fare.MeanSelectivity < 0.2 || fare.MeanSelectivity > 0.3 {
		t.Fatalf("fare mean selectivity = %f, want ~0.25", fare.MeanSelectivity)
	}
	if fare.MeanWidthFrac < 0.05 || fare.MeanWidthFrac > 0.15 {
		t.Fatalf("fare mean width frac = %f, want ~0.1", fare.MeanWidthFrac)
	}
}

// TestCollectorSampling checks that SampleEvery thins the consumer stream
// but never the SLO counters.
func TestCollectorSampling(t *testing.T) {
	c := New(Config{SampleEvery: 10, Objectives: []Objective{{Latency: time.Second, Target: 0.5}}})
	defer c.Close()
	q := query.NewCount(query.Filter{Dim: 0, Lo: 1, Hi: 1})
	for i := 0; i < 1000; i++ {
		c.Record(q, time.Microsecond, 1, 1, 8)
	}
	c.Sync()
	s := c.Snapshot()
	if s.Queries != 1000 {
		t.Fatalf("queries = %d", s.Queries)
	}
	if s.Sampled != 100 {
		t.Fatalf("sampled = %d, want 100 (1 in 10)", s.Sampled)
	}
	if s.SLO[0].Good != 1000 {
		t.Fatalf("slo good = %d, want all 1000", s.SLO[0].Good)
	}
}

// TestCollectorConcurrent hammers Record from many goroutines (the -race
// CI run is the real assertion) and checks nothing is lost or double
// counted in the always-on counters.
func TestCollectorConcurrent(t *testing.T) {
	c := New(Config{SampleEvery: 4, Buffer: 1 << 14})
	defer c.Close()
	c.Bind(Binding{Rows: func() uint64 { return 100 }})
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q := query.NewCount(query.Filter{Dim: g % 3, Lo: int64(i % 7), Hi: int64(i % 7)})
				c.Record(q, time.Duration(i%100)*time.Microsecond, 1, 2, 16)
			}
		}()
	}
	wg.Wait()
	c.Sync()
	s := c.Snapshot()
	if s.Queries != goroutines*per {
		t.Fatalf("queries = %d, want %d", s.Queries, goroutines*per)
	}
	if s.Sampled+s.Dropped != goroutines*per/4 {
		t.Fatalf("sampled %d + dropped %d != %d", s.Sampled, s.Dropped, goroutines*per/4)
	}
	// Concurrent snapshots must be safe too.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = c.Snapshot()
		}
	}()
	for i := 0; i < 1000; i++ {
		c.Record(query.NewCount(query.Filter{Dim: 0, Lo: 1, Hi: 1}), time.Microsecond, 1, 1, 8)
	}
	<-done
}

func TestLatHist(t *testing.T) {
	var h latHist
	for i := int64(0); i < 1000; i++ {
		h.record(i)
	}
	if h.total != 1000 {
		t.Fatalf("total = %d", h.total)
	}
	p50 := h.quantile(0.5)
	if p50 < 400 || p50 > 700 {
		t.Fatalf("p50 = %d, want ~500 within bucket error", p50)
	}
	p99 := h.quantile(0.99)
	if p99 < 900 || p99 > 1300 {
		t.Fatalf("p99 = %d, want ~990 within bucket error", p99)
	}
	// Index/bound round trip across the full range.
	for _, v := range []int64{0, 1, 3, 4, 7, 8, 100, 1e6, 1e12, 1<<62 + 12345} {
		idx := latIdx(v)
		if idx < 0 || idx >= latNumBuckets {
			t.Fatalf("latIdx(%d) = %d out of range", v, idx)
		}
		if max := latBucketMax(idx); max < v {
			t.Fatalf("latBucketMax(%d)=%d below value %d", idx, max, v)
		}
		if idx > 0 && latBucketMax(idx-1) >= v {
			t.Fatalf("value %d should not fit bucket %d (max %d)", v, idx-1, latBucketMax(idx-1))
		}
	}
	h.reset()
	if h.total != 0 || h.quantile(0.5) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestSelAndPosBuckets(t *testing.T) {
	if selBucket(1) != 0 || selBucket(0.6) != 0 {
		t.Error("sel > 1/2 should land in bucket 0")
	}
	if selBucket(0.25) != 2 {
		t.Errorf("selBucket(0.25) = %d, want 2", selBucket(0.25))
	}
	if selBucket(0) != selBuckets-1 {
		t.Error("zero selectivity should land in the last bucket")
	}
	if posBucket(-5, 0, 100) != 0 || posBucket(200, 0, 100) != posBuckets-1 {
		t.Error("out-of-domain bounds must clamp")
	}
	if b := posBucket(50, 0, 100); b != posBuckets/2 {
		t.Errorf("midpoint bucket = %d", b)
	}
}

func BenchmarkRecord(b *testing.B) {
	c := New(Config{})
	defer c.Close()
	q := query.NewCount(query.Filter{Dim: 0, Lo: 5, Hi: 5}, query.Filter{Dim: 3, Lo: 0, Hi: 100})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Record(q, 13*time.Microsecond, 100, 200, 1600)
	}
}

func BenchmarkKey(b *testing.B) {
	q := query.NewCount(query.Filter{Dim: 0, Lo: 5, Hi: 5}, query.Filter{Dim: 3, Lo: 0, Hi: 100})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Key(q)
	}
}

package wstats

import "math/bits"

// latHist is a compact log-linear latency histogram over nanosecond
// values: each power-of-two range is split into 4 sub-buckets, bounding
// the relative quantile error at ~25% while keeping the whole histogram
// at 2KB — small enough to embed one per heavy-hitter sketch entry.
// internal/obs has a finer (8 sub-bucket) striped histogram for the
// registry; this one trades resolution for per-fingerprint footprint and
// is only ever touched by the collector's single consumer goroutine, so
// it needs no striping or atomics.
const (
	latSubBits    = 2
	latSubBuckets = 1 << latSubBits
	latNumBuckets = latSubBuckets + (63-latSubBits+1)*latSubBuckets
)

type latHist struct {
	total  uint64
	counts [latNumBuckets]uint64
}

func latIdx(v int64) int {
	if v < latSubBuckets {
		return int(v)
	}
	h := bits.Len64(uint64(v)) - 1 // >= latSubBits
	sub := int(uint64(v)>>(uint(h)-latSubBits)) & (latSubBuckets - 1)
	return latSubBuckets + (h-latSubBits)*latSubBuckets + sub
}

// latBucketMax is the inclusive upper bound of bucket idx, returned as
// the quantile estimate for ranks landing in it.
func latBucketMax(idx int) int64 {
	if idx < latSubBuckets {
		return int64(idx)
	}
	g := (idx - latSubBuckets) / latSubBuckets
	sub := (idx - latSubBuckets) % latSubBuckets
	h := uint(g + latSubBits)
	lo := int64(1)<<h + int64(sub)<<(h-latSubBits)
	return lo + int64(1)<<(h-latSubBits) - 1
}

func (h *latHist) record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[latIdx(ns)]++
	h.total++
}

// quantile returns the q-quantile in nanoseconds (upper bucket bound), or
// 0 for an empty histogram.
func (h *latHist) quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			return latBucketMax(i)
		}
	}
	return latBucketMax(latNumBuckets - 1)
}

func (h *latHist) reset() { *h = latHist{} }

package wstats

import "sort"

// hhEntry is one monitored fingerprint in the space-saving sketch.
type hhEntry struct {
	key   Fingerprint
	shape string
	// count is the space-saving estimate: an overestimate of the true
	// occurrence count, by at most errBound.
	count    uint64
	errBound uint64
	lat      latHist // latency of occurrences observed while monitored
}

// spaceSaving is the Metwally et al. space-saving heavy-hitter sketch: at
// most k monitored entries; an unmonitored arrival evicts the current
// minimum and inherits its count as an error bound. Guarantees, with n
// the stream length: every entry's estimate is in [true, true+errBound],
// and any item with true count > n/k is always monitored. The randomized
// differential test (topk_test.go) checks both against an exact oracle.
//
// The sketch is owned by the collector's consumer goroutine; no locking.
// Eviction scans all k entries for the minimum — O(k) with k≈64, paid
// only on the sampled stream, which keeps the structure trivially simple
// next to the textbook min-heap + linked-bucket construction.
type spaceSaving struct {
	k int
	n uint64 // observed stream length
	m map[Fingerprint]*hhEntry
}

func newSpaceSaving(k int) *spaceSaving {
	return &spaceSaving{k: k, m: make(map[Fingerprint]*hhEntry, k)}
}

// observe records one occurrence. shape is resolved lazily — only
// insertions (new or evicting) pay for rendering the shape string.
func (t *spaceSaving) observe(key Fingerprint, ns int64, shape func() string) {
	t.n++
	if e, ok := t.m[key]; ok {
		e.count++
		e.lat.record(ns)
		return
	}
	if len(t.m) < t.k {
		e := &hhEntry{key: key, shape: shape(), count: 1}
		e.lat.record(ns)
		t.m[key] = e
		return
	}
	var min *hhEntry
	for _, e := range t.m {
		if min == nil || e.count < min.count {
			min = e
		}
	}
	delete(t.m, min.key)
	// The newcomer takes over the minimum's counter: its true count is at
	// most the inherited value, which becomes the error bound.
	min.key, min.shape, min.errBound = key, shape(), min.count
	min.count++
	min.lat.reset()
	min.lat.record(ns)
	t.m[key] = min
}

// top returns up to n entries, most frequent first. The returned slice
// aliases live sketch entries; callers snapshot the fields they need
// before releasing the collector lock.
func (t *spaceSaving) top(n int) []*hhEntry {
	out := make([]*hhEntry, 0, len(t.m))
	for _, e := range t.m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].count != out[j].count {
			return out[i].count > out[j].count
		}
		return out[i].key < out[j].key // deterministic order for ties
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// estimate returns the sketch's count estimate and error bound for key,
// or ok=false if the key is not currently monitored.
func (t *spaceSaving) estimate(key Fingerprint) (est, errBound uint64, ok bool) {
	e, ok := t.m[key]
	if !ok {
		return 0, 0, false
	}
	return e.count, e.errBound, true
}

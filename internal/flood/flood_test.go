package flood

import (
	"testing"

	"repro/internal/auggrid"
	"repro/internal/testutil"
)

func smallConfig() Config {
	return Config{Grid: auggrid.OptimizeConfig{
		Eval:     auggrid.EvalConfig{SampleSize: 1024, MaxQueries: 40},
		MaxCells: 1 << 12,
		MaxIters: 3,
	}}
}

func TestFloodMatchesFullScan(t *testing.T) {
	st := testutil.SmallTaxi(8000, 1)
	qs := testutil.RandomQueries(st, 150, 2)
	idx := Build(st, qs[:60], smallConfig())
	testutil.CheckMatchesFullScan(t, idx, st, qs)
}

func TestFloodSkeletonIsIndependent(t *testing.T) {
	st := testutil.SmallTaxi(5000, 3)
	qs := testutil.RandomQueries(st, 100, 4)
	idx := Build(st, qs, smallConfig())
	for j, strat := range idx.Layout().Skeleton {
		if strat.Kind != auggrid.Independent {
			t.Errorf("dim %d has strategy %v; Flood must be all-independent", j, strat.Kind)
		}
	}
}

func TestFloodUsesSortDim(t *testing.T) {
	st := testutil.SmallTaxi(5000, 5)
	qs := testutil.RandomQueries(st, 100, 6)
	idx := Build(st, qs, smallConfig())
	if idx.Layout().SortDim < 0 {
		t.Error("Flood should pick a sort dimension")
	}
}

func TestFloodReoptimize(t *testing.T) {
	st := testutil.SmallTaxi(5000, 7)
	qsA := testutil.RandomQueries(st, 60, 8)
	qsB := testutil.SkewedQueries(st, 60, 9)
	idx := Build(st, qsA, smallConfig())
	nidx, secs := idx.Reoptimize(qsB, smallConfig())
	if secs < 0 {
		t.Error("negative reoptimize time")
	}
	testutil.CheckMatchesFullScan(t, nidx, st, qsB)
}

func TestFloodCellBudgetRespected(t *testing.T) {
	st := testutil.SmallTaxi(8000, 10)
	qs := testutil.RandomQueries(st, 100, 11)
	cfg := smallConfig()
	cfg.Grid.MaxCells = 256
	idx := Build(st, qs, cfg)
	if idx.NumCells() > 256 {
		t.Errorf("cells = %d, budget 256", idx.NumCells())
	}
}

// Package flood implements Flood [Nathan et al., SIGMOD 2020] as evaluated
// in the Tsunami paper (§6.1): a single grid over the whole data space with
// per-dimension CDF partitioning, a within-cell sort dimension refined by
// binary search, and partition counts optimized against Tsunami's cost
// model. This is exactly the all-Independent special case of the Augmented
// Grid, so the package wraps that engine with Flood's restrictions:
// the skeleton is fixed to Independent and only P is optimized.
package flood

import (
	"time"

	"repro/internal/auggrid"
	"repro/internal/colstore"
	"repro/internal/index"
	"repro/internal/query"
)

// Config controls the Flood build.
type Config struct {
	// Grid carries the evaluator/search knobs shared with the Augmented
	// Grid optimizer.
	Grid auggrid.OptimizeConfig
}

// Index is a built Flood index.
type Index struct {
	store *colstore.Store
	grid  *auggrid.Grid
	stats index.BuildStats
}

// Build optimizes the grid for the workload and constructs the index over
// a clone of st.
func Build(st *colstore.Store, workload []query.Query, cfg Config) *Index {
	optStart := time.Now()
	clone := st.Clone()
	rows := make([]int, clone.NumRows())
	for i := range rows {
		rows[i] = i
	}
	gcfg := cfg.Grid
	gcfg.UseSortDim = true
	// Flood's skeleton is fixed: disable the correlation heuristics so the
	// initial skeleton is all-Independent, and use GD (P-only descent).
	gcfg.FMErrFrac = -1
	gcfg.CCDFEmptyFrac = 2
	layout, _ := auggrid.Optimize(clone, rows, workload, auggrid.GD(), gcfg)
	g, ordered, err := auggrid.Build(clone, rows, layout)
	if err != nil {
		panic("flood: " + err.Error()) // GD only emits valid independent layouts
	}
	opt := time.Since(optStart).Seconds()

	sortStart := time.Now()
	if err := clone.Reorder(ordered); err != nil {
		panic("flood: " + err.Error())
	}
	g.Finalize(clone, 0)
	return &Index{
		store: clone,
		grid:  g,
		stats: index.BuildStats{
			SortSeconds:     time.Since(sortStart).Seconds(),
			OptimizeSeconds: opt,
		},
	}
}

// Name implements index.Index.
func (x *Index) Name() string { return "Flood" }

// Execute implements index.Index. The grid is immutable and per-query
// state lives in a pooled ExecContext, so one shared Flood index serves
// any number of concurrent callers; inexact cell ranges filter on the
// store's branch-free block kernels.
func (x *Index) Execute(q query.Query) colstore.ScanResult {
	res, _ := x.grid.Execute(q, nil)
	return res
}

// SizeBytes implements index.Index.
func (x *Index) SizeBytes() uint64 { return x.grid.SizeBytes() }

// NumCells returns the grid cell count (Tab 4 reports it against
// Tsunami's).
func (x *Index) NumCells() int { return x.grid.NumCells() }

// Layout returns the optimized layout.
func (x *Index) Layout() auggrid.Layout { return x.grid.Layout() }

// BuildStats returns the build timing split (Fig 9b).
func (x *Index) BuildStats() index.BuildStats { return x.stats }

// Reoptimize rebuilds for a new workload (Fig 9a) and returns the rebuilt
// index plus wall time.
func (x *Index) Reoptimize(workload []query.Query, cfg Config) (*Index, float64) {
	start := time.Now()
	nx := Build(x.store, workload, cfg)
	return nx, time.Since(start).Seconds()
}

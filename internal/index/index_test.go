package index

import (
	"testing"

	"repro/internal/colstore"
	"repro/internal/query"
)

func store(t *testing.T) *colstore.Store {
	t.Helper()
	s, err := colstore.FromRows([][]int64{
		{1, 5}, {2, 6}, {3, 7}, {4, 8}, {5, 9},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFullScanCount(t *testing.T) {
	f := NewFullScan(store(t))
	res := f.Execute(query.NewCount(query.Filter{Dim: 0, Lo: 2, Hi: 4}))
	if res.Count != 3 {
		t.Errorf("count = %d, want 3", res.Count)
	}
	if f.SizeBytes() != 0 {
		t.Error("full scan should have zero index size")
	}
	if f.Name() != "FullScan" {
		t.Errorf("name = %q", f.Name())
	}
}

func TestFullScanSum(t *testing.T) {
	f := NewFullScan(store(t))
	res := f.Execute(query.NewSum(1, query.Filter{Dim: 0, Lo: 1, Hi: 2}))
	if res.Sum != 11 {
		t.Errorf("sum = %d, want 11", res.Sum)
	}
}

func TestSelectivity(t *testing.T) {
	s := store(t)
	sel := Selectivity(s, query.NewCount(query.Filter{Dim: 0, Lo: 1, Hi: 2}))
	if sel != 0.4 {
		t.Errorf("selectivity = %f, want 0.4", sel)
	}
	if sel := Selectivity(s, query.NewCount()); sel != 1.0 {
		t.Errorf("unfiltered selectivity = %f, want 1", sel)
	}
}

func TestDimSelectivity(t *testing.T) {
	s := store(t)
	q := query.NewCount(
		query.Filter{Dim: 0, Lo: 1, Hi: 1},
		query.Filter{Dim: 1, Lo: 5, Hi: 9},
	)
	if sel := DimSelectivity(s, q, 0); sel != 0.2 {
		t.Errorf("dim 0 selectivity = %f, want 0.2", sel)
	}
	if sel := DimSelectivity(s, q, 1); sel != 1.0 {
		t.Errorf("dim 1 selectivity = %f, want 1.0", sel)
	}
	// Unfiltered dim reports 1.
	q2 := query.NewCount(query.Filter{Dim: 0, Lo: 1, Hi: 1})
	if sel := DimSelectivity(s, q2, 1); sel != 1.0 {
		t.Errorf("unfiltered dim selectivity = %f, want 1", sel)
	}
}

// Package index defines the interface every clustered multi-dimensional
// index in this repository implements, plus the FullScan baseline that
// serves as ground truth in tests.
//
// All indexes are *clustered* (§2): building one physically reorders the
// column store, and queries resolve to contiguous physical ranges that the
// store scans.
package index

import (
	"repro/internal/colstore"
	"repro/internal/query"
)

// Index is a clustered multi-dimensional index over a column store.
type Index interface {
	// Name identifies the index in experiment output.
	Name() string
	// Execute runs the query and returns the aggregate plus scan statistics.
	//
	// Concurrency contract: a built index is immutable on the read path.
	// Execute must be safe for any number of concurrent callers against
	// the same index value, with no per-goroutine cloning; implementations
	// keep per-query state on the stack or in pooled execution contexts.
	// Operations that mutate an index (inserts, merges, re-optimization)
	// require external synchronization with readers.
	Execute(q query.Query) colstore.ScanResult
	// SizeBytes reports the index structure's memory footprint, excluding
	// the column data itself (the paper's "index size" metric, Fig 8).
	SizeBytes() uint64
}

// BuildStats records how long an index build spent in its two phases,
// reported by Fig 9b (solid bars = sorting, hatched = optimization).
type BuildStats struct {
	SortSeconds     float64
	OptimizeSeconds float64
}

// FullScan answers queries by scanning the entire table. It is the ground
// truth every other index is validated against, and the degenerate index
// with zero size.
type FullScan struct {
	store *colstore.Store
}

// NewFullScan wraps a store (not copied; FullScan never reorders).
func NewFullScan(s *colstore.Store) *FullScan { return &FullScan{store: s} }

// Name implements Index.
func (f *FullScan) Name() string { return "FullScan" }

// Execute implements Index by scanning every row. Stateless, so safe for
// concurrent callers.
func (f *FullScan) Execute(q query.Query) colstore.ScanResult {
	var res colstore.ScanResult
	f.store.ScanRange(q, 0, f.store.NumRows(), false, &res)
	return res
}

// SizeBytes implements Index; a full scan needs no structure.
func (f *FullScan) SizeBytes() uint64 { return 0 }

// Selectivity returns the fraction of rows matching q, computed exactly by
// full scan. Workload generators and tuners use it.
func Selectivity(s *colstore.Store, q query.Query) float64 {
	var res colstore.ScanResult
	cq := q
	cq.Agg = query.Count
	s.ScanRange(cq, 0, s.NumRows(), false, &res)
	if s.NumRows() == 0 {
		return 0
	}
	return float64(res.Count) / float64(s.NumRows())
}

// DimSelectivity returns the fraction of rows matching only the filter on
// one dimension of q (1.0 when the dim is unfiltered). The count runs on
// the store's single-filter scan kernel.
func DimSelectivity(s *colstore.Store, q query.Query, dim int) float64 {
	f, ok := q.Filter(dim)
	if !ok {
		return 1.0
	}
	if s.NumRows() == 0 {
		return 0
	}
	var res colstore.ScanResult
	s.ScanRange(query.NewCount(f), 0, s.NumRows(), false, &res)
	return float64(res.Count) / float64(s.NumRows())
}

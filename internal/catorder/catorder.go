// Package catorder implements the categorical sort-order optimization the
// paper proposes as future work (§8): values of a categorical dimension
// have no meaningful sort order, so they are dictionary-encoded
// alphanumerically by default; performance improves when values that are
// commonly accessed together by the same queries receive adjacent codes,
// because the queries then intersect fewer grid partitions.
//
// Learn builds a co-access graph between the values of one dimension from
// a sample workload (values accessed by the same query type are
// co-accessed), orders values by a greedy heaviest-edge chaining, and
// returns a Remap that rewrites both the column and incoming queries.
package catorder

import (
	"sort"

	"repro/internal/query"
)

// Remap is a learned reassignment of dictionary codes for one dimension.
type Remap struct {
	// Dim is the dimension the remap applies to.
	Dim     int
	forward map[int64]int64
	reverse map[int64]int64
}

// Learn computes a co-access-aware code assignment for dimension dim from
// the column's values and a sample workload. Queries must carry Type ids
// (as produced by the workload generator or Grid Tree clustering); queries
// of the same type accessing different values vouch for those values'
// adjacency.
func Learn(col []int64, queries []query.Query, dim int) *Remap {
	// Collect the accessed values per query type.
	byType := make(map[int]map[int64]int)
	for _, q := range queries {
		f, ok := q.Filter(dim)
		if !ok {
			continue
		}
		m := byType[q.Type]
		if m == nil {
			m = make(map[int64]int)
			byType[q.Type] = m
		}
		// Count every distinct column value the filter matches. Categorical
		// domains are small, so enumerating uniques is cheap.
		for _, v := range uniques(col) {
			if f.Matches(v) {
				m[v]++
			}
		}
	}

	// Build pairwise co-access weights.
	type edge struct {
		u, v int64
		w    int
	}
	weights := make(map[[2]int64]int)
	for _, m := range byType {
		vals := make([]int64, 0, len(m))
		for v := range m {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		for i := 0; i < len(vals); i++ {
			for j := i + 1; j < len(vals); j++ {
				k := [2]int64{vals[i], vals[j]}
				weights[k] += m[vals[i]] * m[vals[j]]
			}
		}
	}
	edges := make([]edge, 0, len(weights))
	for k, w := range weights {
		edges = append(edges, edge{u: k[0], v: k[1], w: w})
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].w != edges[b].w {
			return edges[a].w > edges[b].w
		}
		if edges[a].u != edges[b].u {
			return edges[a].u < edges[b].u
		}
		return edges[a].v < edges[b].v
	})

	// Greedy chaining: merge value chains by descending edge weight (a
	// linear-arrangement heuristic akin to agglomerative clustering).
	chainOf := make(map[int64]*[]int64)
	for _, e := range edges {
		cu, uOK := chainOf[e.u]
		cv, vOK := chainOf[e.v]
		switch {
		case !uOK && !vOK:
			c := &[]int64{e.u, e.v}
			chainOf[e.u], chainOf[e.v] = c, c
		case uOK && !vOK:
			if (*cu)[len(*cu)-1] == e.u {
				*cu = append(*cu, e.v)
				chainOf[e.v] = cu
			} else if (*cu)[0] == e.u {
				*cu = append([]int64{e.v}, *cu...)
				chainOf[e.v] = cu
			}
		case !uOK && vOK:
			if (*cv)[len(*cv)-1] == e.v {
				*cv = append(*cv, e.u)
				chainOf[e.u] = cv
			} else if (*cv)[0] == e.v {
				*cv = append([]int64{e.u}, *cv...)
				chainOf[e.u] = cv
			}
		case cu != cv:
			// Join chains when the edge connects their endpoints.
			if (*cu)[len(*cu)-1] == e.u && (*cv)[0] == e.v {
				*cu = append(*cu, *cv...)
				for _, v := range *cv {
					chainOf[v] = cu
				}
			} else if (*cv)[len(*cv)-1] == e.v && (*cu)[0] == e.u {
				*cv = append(*cv, *cu...)
				for _, v := range *cu {
					chainOf[v] = cv
				}
			}
		}
	}

	// Emit codes: chained values first (in chain order), then untouched
	// values in their natural order.
	r := &Remap{Dim: dim, forward: make(map[int64]int64), reverse: make(map[int64]int64)}
	next := int64(0)
	emitted := make(map[int64]bool)
	seenChain := make(map[*[]int64]bool)
	for _, v := range uniques(col) {
		c, ok := chainOf[v]
		if !ok || seenChain[c] {
			continue
		}
		seenChain[c] = true
		for _, cv := range *c {
			if !emitted[cv] {
				r.forward[cv] = next
				r.reverse[next] = cv
				emitted[cv] = true
				next++
			}
		}
	}
	for _, v := range uniques(col) {
		if !emitted[v] {
			r.forward[v] = next
			r.reverse[next] = v
			emitted[v] = true
			next++
		}
	}
	return r
}

// Code returns the new code for an original value (identity for unknown
// values).
func (r *Remap) Code(v int64) int64 {
	if c, ok := r.forward[v]; ok {
		return c
	}
	return v
}

// Value returns the original value for a new code.
func (r *Remap) Value(c int64) int64 {
	if v, ok := r.reverse[c]; ok {
		return v
	}
	return c
}

// ApplyColumn rewrites a column in place to the new encoding.
func (r *Remap) ApplyColumn(col []int64) {
	for i, v := range col {
		col[i] = r.Code(v)
	}
}

// RewriteQuery translates a query to the new encoding. Equality filters
// map exactly. A range filter maps exactly only when the codes of the
// values it matches are contiguous; otherwise the rewrite would change the
// query's meaning, and RewriteQuery reports ok=false so the caller can
// fall back to the original encoding for that query.
func (r *Remap) RewriteQuery(q query.Query) (query.Query, bool) {
	out := q
	out.Filters = append([]query.Filter(nil), q.Filters...)
	for i, f := range out.Filters {
		if f.Dim != r.Dim {
			continue
		}
		if f.IsEquality() {
			c := r.Code(f.Lo)
			out.Filters[i].Lo, out.Filters[i].Hi = c, c
			continue
		}
		lo, hi := int64(1)<<62, int64(-1)<<62
		matched := 0
		for v, c := range r.forward {
			if f.Matches(v) {
				matched++
				if c < lo {
					lo = c
				}
				if c > hi {
					hi = c
				}
			}
		}
		if matched == 0 {
			// No known value matches: an empty range is exact.
			out.Filters[i].Lo, out.Filters[i].Hi = 1, 0
			continue
		}
		if int64(matched) != hi-lo+1 {
			return q, false // matched codes not contiguous
		}
		out.Filters[i].Lo, out.Filters[i].Hi = lo, hi
	}
	return out, true
}

// NumValues returns the learned dictionary size.
func (r *Remap) NumValues() int { return len(r.forward) }

func uniques(col []int64) []int64 {
	seen := make(map[int64]bool)
	var out []int64
	for _, v := range col {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

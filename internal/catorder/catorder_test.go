package catorder

import (
	"math/rand"
	"testing"

	"repro/internal/query"
)

// fixture: a categorical column with 8 values; two query types access
// interleaved value groups {0, 2, 4, 6} and {1, 3, 5, 7}.
func fixture(n int, seed int64) ([]int64, []query.Query) {
	rng := rand.New(rand.NewSource(seed))
	col := make([]int64, n)
	for i := range col {
		col[i] = rng.Int63n(8)
	}
	var qs []query.Query
	for i := 0; i < 40; i++ {
		evens := query.NewCount(query.Filter{Dim: 0, Lo: int64(2 * (i % 4)), Hi: int64(2 * (i % 4))})
		evens.Type = 0
		odds := query.NewCount(query.Filter{Dim: 0, Lo: int64(2*(i%4) + 1), Hi: int64(2*(i%4) + 1)})
		odds.Type = 1
		qs = append(qs, evens, odds)
	}
	return col, qs
}

func TestLearnGroupsCoAccessedValues(t *testing.T) {
	col, qs := fixture(2000, 1)
	r := Learn(col, qs, 0)
	if r.NumValues() != 8 {
		t.Fatalf("values = %d, want 8", r.NumValues())
	}
	// The four even values should receive contiguous codes, as should the
	// four odd values.
	evenCodes := []int64{r.Code(0), r.Code(2), r.Code(4), r.Code(6)}
	oddCodes := []int64{r.Code(1), r.Code(3), r.Code(5), r.Code(7)}
	if span(evenCodes) != 3 {
		t.Errorf("even group codes %v not contiguous", evenCodes)
	}
	if span(oddCodes) != 3 {
		t.Errorf("odd group codes %v not contiguous", oddCodes)
	}
}

func span(codes []int64) int64 {
	lo, hi := codes[0], codes[0]
	for _, c := range codes {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	return hi - lo
}

func TestRemapIsBijective(t *testing.T) {
	col, qs := fixture(2000, 2)
	r := Learn(col, qs, 0)
	seen := make(map[int64]bool)
	for v := int64(0); v < 8; v++ {
		c := r.Code(v)
		if seen[c] {
			t.Fatalf("code %d assigned twice", c)
		}
		seen[c] = true
		if r.Value(c) != v {
			t.Fatalf("Value(Code(%d)) = %d", v, r.Value(c))
		}
	}
}

func TestApplyColumnPreservesCounts(t *testing.T) {
	col, qs := fixture(2000, 3)
	orig := append([]int64(nil), col...)
	r := Learn(col, qs, 0)
	r.ApplyColumn(col)
	// Count of each original value must equal count of its code.
	origCount := map[int64]int{}
	newCount := map[int64]int{}
	for i := range col {
		origCount[orig[i]]++
		newCount[col[i]]++
	}
	for v, n := range origCount {
		if newCount[r.Code(v)] != n {
			t.Fatalf("value %d count changed after remap", v)
		}
	}
}

func TestRewriteEqualityExact(t *testing.T) {
	col, qs := fixture(2000, 4)
	r := Learn(col, qs, 0)
	remapped := append([]int64(nil), col...)
	r.ApplyColumn(remapped)
	for v := int64(0); v < 8; v++ {
		q := query.NewCount(query.Filter{Dim: 0, Lo: v, Hi: v})
		rq, ok := r.RewriteQuery(q)
		if !ok {
			t.Fatalf("equality rewrite must always be exact")
		}
		want := countMatches(col, q)
		got := countMatches(remapped, rq)
		if got != want {
			t.Fatalf("value %d: rewritten count %d, want %d", v, got, want)
		}
	}
}

func TestRewriteRangeContiguous(t *testing.T) {
	col, qs := fixture(2000, 5)
	r := Learn(col, qs, 0)
	remapped := append([]int64(nil), col...)
	r.ApplyColumn(remapped)
	// The even group got contiguous codes, so a "range" covering exactly
	// the evens is expressible... but only a range over original values
	// that maps to contiguous codes rewrites exactly. Probe all ranges and
	// verify exact rewrites really are exact.
	for lo := int64(0); lo < 8; lo++ {
		for hi := lo; hi < 8; hi++ {
			q := query.NewCount(query.Filter{Dim: 0, Lo: lo, Hi: hi})
			rq, ok := r.RewriteQuery(q)
			if !ok {
				continue
			}
			if got, want := countMatches(remapped, rq), countMatches(col, q); got != want {
				t.Fatalf("range [%d,%d]: rewritten count %d, want %d", lo, hi, got, want)
			}
		}
	}
}

func TestRewriteNonContiguousReportsInexact(t *testing.T) {
	col, qs := fixture(2000, 6)
	r := Learn(col, qs, 0)
	// Original range [0,1] covers one even and one odd value; their codes
	// land in different groups, so the rewrite cannot be contiguous unless
	// the groups happen to abut exactly at those two codes.
	q := query.NewCount(query.Filter{Dim: 0, Lo: 0, Hi: 1})
	rq, ok := r.RewriteQuery(q)
	if ok {
		// If reported exact, it must BE exact.
		remapped := append([]int64(nil), col...)
		r.ApplyColumn(remapped)
		if got, want := countMatches(remapped, rq), countMatches(col, q); got != want {
			t.Fatalf("rewrite claimed exact but wasn't: %d vs %d", got, want)
		}
	}
}

func TestUntouchedDimPassesThrough(t *testing.T) {
	col, qs := fixture(500, 7)
	r := Learn(col, qs, 0)
	q := query.NewCount(query.Filter{Dim: 3, Lo: 5, Hi: 10})
	rq, ok := r.RewriteQuery(q)
	if !ok {
		t.Fatal("other-dim filters must rewrite trivially")
	}
	f, _ := rq.Filter(3)
	if f.Lo != 5 || f.Hi != 10 {
		t.Fatalf("other-dim filter changed: %+v", f)
	}
}

func countMatches(col []int64, q query.Query) int {
	f := q.Filters[0]
	n := 0
	for _, v := range col {
		if f.Matches(v) {
			n++
		}
	}
	return n
}

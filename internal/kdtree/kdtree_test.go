package kdtree

import (
	"testing"

	"repro/internal/query"
	"repro/internal/testutil"
)

func TestKDTreeMatchesFullScan(t *testing.T) {
	st := testutil.SmallTaxi(8000, 1)
	qs := testutil.RandomQueries(st, 150, 2)
	idx := Build(st, qs[:50], Config{PageSize: 256})
	testutil.CheckMatchesFullScan(t, idx, st, qs)
}

func TestKDTreeSmallPageSize(t *testing.T) {
	st := testutil.SmallTaxi(2000, 3)
	qs := testutil.RandomQueries(st, 80, 4)
	idx := Build(st, qs[:20], Config{PageSize: 16})
	testutil.CheckMatchesFullScan(t, idx, st, qs)
}

func TestKDTreePageSizeRespected(t *testing.T) {
	st := testutil.SmallTaxi(4000, 5)
	idx := Build(st, nil, Config{PageSize: 128})
	var walk func(nd *node) int
	walk = func(nd *node) int {
		if nd.leaf {
			if nd.end-nd.start > 128 {
				t.Errorf("leaf holds %d points, page size 128", nd.end-nd.start)
			}
			return nd.end - nd.start
		}
		return walk(nd.left) + walk(nd.right)
	}
	if total := walk(idx.root); total != 4000 {
		t.Errorf("leaves cover %d points, want 4000", total)
	}
}

func TestKDTreeUnfilteredQueryScansAll(t *testing.T) {
	st := testutil.SmallTaxi(1000, 6)
	idx := Build(st, nil, Config{PageSize: 64})
	res := idx.Execute(query.NewCount())
	if res.Count != 1000 {
		t.Errorf("count = %d, want 1000", res.Count)
	}
}

func TestKDTreeExplicitDimOrder(t *testing.T) {
	st := testutil.SmallTaxi(2000, 7)
	qs := testutil.RandomQueries(st, 60, 8)
	idx := Build(st, nil, Config{PageSize: 100, DimOrder: []int{4, 0, 2, 1, 3}})
	testutil.CheckMatchesFullScan(t, idx, st, qs)
}

func TestKDTreeSizeAndStats(t *testing.T) {
	st := testutil.SmallTaxi(4000, 9)
	idx := Build(st, nil, Config{PageSize: 256})
	if idx.SizeBytes() == 0 {
		t.Error("size should be positive")
	}
	if idx.NumNodes() < 15 {
		t.Errorf("nodes = %d, expected a real tree", idx.NumNodes())
	}
	bs := idx.BuildStats()
	if bs.SortSeconds < 0 || bs.OptimizeSeconds < 0 {
		t.Error("negative build times")
	}
}

func TestKDTreeDuplicateHeavyColumn(t *testing.T) {
	// Degenerate data: one dimension nearly constant must not loop forever.
	st := testutil.SmallTaxi(3000, 10)
	col := st.Column(4)
	for i := range col {
		col[i] = 1 // constant
	}
	qs := testutil.RandomQueries(st, 50, 11)
	idx := Build(st, nil, Config{PageSize: 64})
	testutil.CheckMatchesFullScan(t, idx, st, qs)
}

// Package kdtree implements the k-d tree baseline (§2.1, §6.1): space is
// recursively partitioned at the median value of one dimension at a time,
// cycling through dimensions round-robin in order of workload selectivity,
// until each leaf holds at most pageSize points. Leaf point sets are stored
// contiguously, so the index is clustered.
package kdtree

import (
	"sort"
	"time"

	"repro/internal/colstore"
	"repro/internal/index"
	"repro/internal/query"
)

// Index is a clustered k-d tree.
type Index struct {
	store    *colstore.Store
	root     *node
	pageSize int
	dimOrder []int
	numNodes int
	stats    index.BuildStats
}

type node struct {
	// Split node fields: children partition rows by col[splitDim] < splitVal.
	splitDim int
	splitVal int64
	left     *node
	right    *node
	// Leaf fields: physical range [start, end).
	start, end int
	leaf       bool
	// Bounding box of the node's region (inclusive), used for exact-range
	// detection during scans.
	boxLo, boxHi []int64
}

// Config controls the build.
type Config struct {
	// PageSize is the maximum number of points per leaf (default 4096).
	PageSize int
	// DimOrder optionally fixes the round-robin dimension order; when nil it
	// is derived from the workload (most selective first).
	DimOrder []int
}

// Build constructs the k-d tree over a clone of s.
func Build(s *colstore.Store, workload []query.Query, cfg Config) *Index {
	if cfg.PageSize <= 0 {
		cfg.PageSize = 4096
	}
	optStart := time.Now()
	order := cfg.DimOrder
	if order == nil {
		order = selectivityOrder(s, workload)
	}
	opt := time.Since(optStart).Seconds()

	sortStart := time.Now()
	clone := s.Clone()
	n := clone.NumRows()
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	x := &Index{store: clone, pageSize: cfg.PageSize, dimOrder: order}
	boxLo := make([]int64, clone.NumDims())
	boxHi := make([]int64, clone.NumDims())
	for d := 0; d < clone.NumDims(); d++ {
		boxLo[d], boxHi[d] = clone.MinMax(d)
	}
	x.root = x.build(rows, 0, 0, boxLo, boxHi)
	if err := clone.Reorder(rows); err != nil {
		panic("kdtree: " + err.Error())
	}
	x.stats = index.BuildStats{SortSeconds: time.Since(sortStart).Seconds(), OptimizeSeconds: opt}
	return x
}

// build recursively partitions rows[...] (a slice into the global row
// permutation being constructed); offset is the physical start of the slice.
func (x *Index) build(rows []int, offset, depth int, boxLo, boxHi []int64) *node {
	x.numNodes++
	nd := &node{
		boxLo: append([]int64(nil), boxLo...),
		boxHi: append([]int64(nil), boxHi...),
	}
	if len(rows) <= x.pageSize {
		nd.leaf = true
		nd.start, nd.end = offset, offset+len(rows)
		return nd
	}
	dim := x.dimOrder[depth%len(x.dimOrder)]
	col := x.store.Column(dim)
	// Median split: sort the slice by this dimension and cut at the middle,
	// advancing past duplicates so the split value is a real boundary.
	sort.Slice(rows, func(a, b int) bool { return col[rows[a]] < col[rows[b]] })
	mid := len(rows) / 2
	medVal := col[rows[mid]]
	// Move mid to the first occurrence of medVal so left gets < medVal.
	lo := sort.Search(len(rows), func(i int) bool { return col[rows[i]] >= medVal })
	if lo == 0 {
		// All values from the start equal the median; split after the run.
		hi := sort.Search(len(rows), func(i int) bool { return col[rows[i]] > medVal })
		if hi == len(rows) {
			// Single value in this dimension: cannot split here, try to make
			// a leaf anyway (degenerate data).
			nd.leaf = true
			nd.start, nd.end = offset, offset+len(rows)
			return nd
		}
		mid = hi
		medVal = col[rows[hi]]
	} else {
		mid = lo
	}
	nd.splitDim, nd.splitVal = dim, medVal

	leftHi := append([]int64(nil), boxHi...)
	leftHi[dim] = medVal - 1
	rightLo := append([]int64(nil), boxLo...)
	rightLo[dim] = medVal

	nd.left = x.build(rows[:mid], offset, depth+1, boxLo, leftHi)
	nd.right = x.build(rows[mid:], offset+mid, depth+1, rightLo, boxHi)
	return nd
}

func selectivityOrder(s *colstore.Store, workload []query.Query) []int {
	d := s.NumDims()
	type ds struct {
		dim int
		sel float64
	}
	sels := make([]ds, d)
	for i := range sels {
		sels[i] = ds{dim: i, sel: 1.0}
	}
	sum := make([]float64, d)
	cnt := make([]int, d)
	for _, q := range workload {
		for _, f := range q.Filters {
			sum[f.Dim] += index.DimSelectivity(s, q, f.Dim)
			cnt[f.Dim]++
		}
	}
	for i := 0; i < d; i++ {
		if cnt[i] > 0 {
			sels[i].sel = sum[i] / float64(cnt[i])
		}
	}
	sort.SliceStable(sels, func(a, b int) bool { return sels[a].sel < sels[b].sel })
	out := make([]int, d)
	for i, e := range sels {
		out[i] = e.dim
	}
	return out
}

// Name implements index.Index.
func (x *Index) Name() string { return "KDTree" }

// NumNodes returns the total node count.
func (x *Index) NumNodes() int { return x.numNodes }

// BuildStats returns the build timing split.
func (x *Index) BuildStats() index.BuildStats { return x.stats }

// Execute implements index.Index: traverse to intersecting leaves and scan
// their physical ranges, skipping per-value checks when a leaf's box is
// contained in the query rectangle; partially-covered leaves filter on the
// store's branch-free block kernels. The tree is immutable after Build and
// traversal state is on the stack, so Execute is safe for concurrent
// callers sharing one index.
func (x *Index) Execute(q query.Query) colstore.ScanResult {
	var res colstore.ScanResult
	x.visit(x.root, q, &res)
	return res
}

func (x *Index) visit(nd *node, q query.Query, res *colstore.ScanResult) {
	if nd.leaf {
		exact := boxContained(q, nd.boxLo, nd.boxHi)
		x.store.ScanRange(q, nd.start, nd.end, exact, res)
		return
	}
	f, ok := q.Filter(nd.splitDim)
	if !ok {
		x.visit(nd.left, q, res)
		x.visit(nd.right, q, res)
		return
	}
	if f.Lo < nd.splitVal {
		x.visit(nd.left, q, res)
	}
	if f.Hi >= nd.splitVal {
		x.visit(nd.right, q, res)
	}
}

// boxContained reports whether the box [lo, hi] lies entirely inside every
// filter of q.
func boxContained(q query.Query, lo, hi []int64) bool {
	for _, f := range q.Filters {
		if lo[f.Dim] < f.Lo || hi[f.Dim] > f.Hi {
			return false
		}
	}
	return true
}

// SizeBytes implements index.Index: every node stores split metadata plus
// its bounding box, mirroring what a pointer-based k-d tree keeps in memory.
func (x *Index) SizeBytes() uint64 {
	d := uint64(x.store.NumDims())
	// per node: 2 pointers + dim + val + range (≈40B) + box (2*d*8).
	return uint64(x.numNodes) * (40 + 16*d)
}

package sharded

import (
	"testing"

	"repro/internal/query"
)

// FuzzPartitionerRoute fuzzes the two partitioner invariants everything
// else is built on: ShardOf is total and in-range for any row, and
// routing is sound — the shard owning a row matching a query is always in
// the routed set (pruning may be imprecise, never wrong). It drives both
// partitioner kinds, including range partitioners with duplicate and
// unsorted-input cut material, with rows and filters across the whole
// int64 domain.
func FuzzPartitionerRoute(f *testing.F) {
	f.Add(uint8(2), int64(0), int64(100), int64(10), int64(50), int64(1), true)
	f.Add(uint8(5), int64(-7), int64(7), int64(-100), int64(100), int64(0), false)
	f.Add(uint8(1), int64(9), int64(9), int64(9), int64(9), int64(9), true)
	f.Add(uint8(16), int64(-1<<62), int64(1<<62), int64(-1), int64(1), int64(1<<40), false)
	f.Fuzz(func(t *testing.T, nShards uint8, cutA, cutB, fLo, fHi, v int64, useRange bool) {
		n := int(nShards%8) + 1
		var p Partitioner
		if useRange {
			// Derive n-1 ascending cuts from the two fuzzed anchors.
			lo, hi := cutA, cutB
			if lo > hi {
				lo, hi = hi, lo
			}
			cuts := make([]int64, n-1)
			for i := range cuts {
				span := uint64(hi-lo) / uint64(n) // two's-complement width / n
				cuts[i] = lo + int64(span*uint64(i+1))
			}
			// Arithmetic near the int64 edges may wrap; the partitioner's
			// contract requires ascending cuts, so enforce it (duplicates
			// are legal and leave shards empty).
			for i := 1; i < len(cuts); i++ {
				if cuts[i] < cuts[i-1] {
					cuts[i] = cuts[i-1]
				}
			}
			p = &RangePartitioner{dim: 0, cuts: cuts}
		} else {
			p = NewHash(0, n)
		}

		if got := p.NumShards(); got != n {
			t.Fatalf("NumShards = %d, want %d", got, n)
		}
		// The fuzzed row: value v on the partitioned dim, anything else
		// elsewhere.
		row := []int64{v, fLo, fHi}
		s := p.ShardOf(row)
		if s < 0 || s >= n {
			t.Fatalf("ShardOf(%d) = %d, outside [0, %d)", v, s, n)
		}
		if again := p.ShardOf(row); again != s {
			t.Fatalf("ShardOf(%d) unstable: %d then %d", v, s, again)
		}

		// Routing soundness for a filter on the partitioned dimension (and
		// for one off-dimension, which must fan out to every shard able to
		// hold the row).
		if fLo > fHi {
			fLo, fHi = fHi, fLo
		}
		for _, q := range []query.Query{
			query.NewCount(query.Filter{Dim: 0, Lo: fLo, Hi: fHi}),
			query.NewCount(query.Filter{Dim: 1, Lo: fLo, Hi: fHi}),
			query.NewCount(query.Filter{Dim: 0, Lo: v, Hi: v}),
			query.NewCount(),
		} {
			ids := p.Shards(q, nil)
			if len(ids) == 0 {
				t.Fatalf("%s routed %s to zero shards", p, q)
			}
			routed := make(map[int]bool, len(ids))
			for _, id := range ids {
				if id < 0 || id >= n {
					t.Fatalf("%s routed %s to shard %d of %d", p, q, id, n)
				}
				routed[id] = true
			}
			if q.MatchesRow(row) && !routed[s] {
				t.Fatalf("%s prunes shard %d which owns row %v matching %s", p, s, row, q)
			}
		}

		// The spec round-trip preserves the assignment.
		back, err := p.Spec().Partitioner()
		if err != nil {
			t.Fatalf("%s: spec round-trip: %v", p, err)
		}
		if back.ShardOf(row) != s {
			t.Fatalf("%s: spec round-trip moved row %v: %d != %d", p, row, back.ShardOf(row), s)
		}
	})
}

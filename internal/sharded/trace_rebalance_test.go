package sharded

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/colstore"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/testutil"
)

// checkTraceConsistent asserts the internal-consistency invariants a
// scatter-gather trace must hold no matter when it was captured: the
// per-shard spans account exactly for the result's scan volume, no shard
// appears twice, every shard id is valid, and the route/scan/merge
// stages appear exactly once each.
func checkTraceConsistent(t *testing.T, s *Store, when string, res colstore.ScanResult, tr *obs.QueryTrace) {
	t.Helper()
	if tr.Rows != res.PointsScanned || tr.Bytes != res.BytesTouched {
		t.Errorf("%s: trace totals (rows %d, bytes %d) disagree with result (%d, %d)",
			when, tr.Rows, tr.Bytes, res.PointsScanned, res.BytesTouched)
	}
	var rows, bytes uint64
	regions := 0
	seen := make(map[int]bool)
	for _, sp := range tr.Shards {
		if sp.Shard < 0 || sp.Shard >= s.NumShards() {
			t.Errorf("%s: span names shard %d of %d", when, sp.Shard, s.NumShards())
		}
		if seen[sp.Shard] {
			t.Errorf("%s: shard %d has two spans — a discarded seqlock attempt leaked into the trace", when, sp.Shard)
		}
		seen[sp.Shard] = true
		rows += sp.Rows
		bytes += sp.Bytes
		regions += sp.Regions
	}
	if rows != res.PointsScanned || bytes != res.BytesTouched {
		t.Errorf("%s: shard spans sum to (rows %d, bytes %d), result says (%d, %d)",
			when, rows, bytes, res.PointsScanned, res.BytesTouched)
	}
	if regions != tr.Regions {
		t.Errorf("%s: shard spans sum to %d regions, trace header says %d", when, regions, tr.Regions)
	}
	stages := make(map[string]int)
	for _, st := range tr.Stages {
		stages[st.Name]++
	}
	for _, name := range []string{"route", "scan", "merge"} {
		if stages[name] != 1 {
			t.Errorf("%s: stage %q appears %d times, want exactly once (stages: %v)",
				when, name, stages[name], tr.Stages)
		}
	}
}

// TestExecuteTraceDuringRebalance pins that explain-analyze traces stay
// internally consistent and exact while a rebalance migrates rows
// between shards: concurrent ExecuteTrace callers hammer the store
// through the whole migration (their attempts overlap commit windows and
// retry), and the moveHook additionally traces from inside a move's
// persistence protocol, where a cut migration is declared but not yet
// committed. Every trace — whenever captured — must agree with the
// oracle aggregates and with itself.
func TestExecuteTraceDuringRebalance(t *testing.T) {
	st := testutil.SmallTaxi(5000, 451)
	dir := filepath.Join(t.TempDir(), "snap")
	s, err := Open(st, nil, smallConfig(), Config{
		Shards:      3,
		Learned:     true,
		SnapshotDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	extra := skewedRows(st, 3000, 452)
	if err := s.InsertBatch(extra); err != nil {
		t.Fatal(err)
	}

	truth := combined(t, st, extra)
	probes := append(testutil.RandomQueries(truth, 10, 453), query.NewCount())
	lo, hi := truth.MinMax(0)
	for i := 0; i < 6; i++ {
		a := lo + int64(i)*(hi-lo)/6
		probes = append(probes, query.NewCount(query.Filter{Dim: 0, Lo: a, Hi: a + (hi-lo)/4}))
	}
	want := make([]colstore.ScanResult, len(probes))
	for i, q := range probes {
		want[i] = s.Execute(q)
	}

	// Trace from inside the migration's persistence protocol: the pending
	// move is declared (intent manifest written) but rows haven't moved,
	// or have moved and are being persisted. The hook runs outside the
	// seqlock commit window, so tracing from it must not deadlock and
	// must still see exact aggregates.
	hookTraces := 0
	s.moveHook = func(stage string) {
		i := hookTraces % len(probes)
		hookTraces++
		res, tr := s.ExecuteTrace(probes[i])
		if res.Count != want[i].Count || res.Sum != want[i].Sum {
			t.Errorf("mid-move (%s) trace of %s: got (%d, %d), want (%d, %d)",
				stage, probes[i], res.Count, res.Sum, want[i].Count, want[i].Sum)
		}
		checkTraceConsistent(t, s, "mid-move "+stage, res, tr)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for r := 0; r < 4; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := r; !stop.Load(); k++ {
				i := k % len(probes)
				res, tr := s.ExecuteTrace(probes[i])
				if res.Count != want[i].Count || res.Sum != want[i].Sum {
					select {
					case errs <- fmt.Sprintf("reader %d: %s: got (%d, %d), want (%d, %d)",
						r, probes[i], res.Count, res.Sum, want[i].Count, want[i].Sum):
					default:
					}
					return
				}
				checkTraceConsistent(t, s, "concurrent", res, tr)
			}
		}()
	}

	if err := s.Rebalance(); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("trace diverged during rebalance: %s", e)
	}
	if s.Stats().RowsMigrated == 0 {
		t.Error("rebalance moved no rows — the traces were not challenged")
	}
	if hookTraces == 0 {
		t.Error("moveHook never fired — no trace was captured mid-move")
	}
}

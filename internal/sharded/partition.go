package sharded

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/colstore"
	"repro/internal/query"
)

// A Partitioner assigns every row to exactly one shard and, for a query,
// names the shards whose rows could match — the router's pruning step.
//
// Implementations must be deterministic and safe for concurrent use after
// construction: ShardOf and Shards are called from the ingest and read hot
// paths with no synchronization.
type Partitioner interface {
	// NumShards is the fixed shard count.
	NumShards() int
	// ShardOf returns the shard owning row, in [0, NumShards).
	ShardOf(row []int64) int
	// Shards appends to dst the ids of every shard that could hold a row
	// matching q, and returns the result. Soundness is required (a shard
	// holding a matching row must be listed); precision is the quality
	// metric (fewer listed shards = fewer shards scanned).
	Shards(q query.Query, dst []int) []int
	// Spec returns the serializable description used by the snapshot
	// manifest to reconstruct the partitioner on Recover.
	Spec() Spec
	// String describes the partitioner for logs and Stats.
	String() string
}

// Spec is the serializable form of a partitioner.
type Spec struct {
	Kind string // "hash" or "range"
	Dim  int    // the partitioned dimension
	N    int    // shard count
	Cuts []int64 // range only: ascending cut points, len N-1
}

// Partitioner reconstructs the partitioner a Spec describes.
func (s Spec) Partitioner() (Partitioner, error) {
	switch s.Kind {
	case "hash":
		if s.N <= 0 {
			return nil, fmt.Errorf("sharded: hash spec with %d shards", s.N)
		}
		return NewHash(s.Dim, s.N), nil
	case "range":
		if len(s.Cuts) != s.N-1 {
			return nil, fmt.Errorf("sharded: range spec with %d cuts for %d shards", len(s.Cuts), s.N)
		}
		for i := 1; i < len(s.Cuts); i++ {
			if s.Cuts[i] < s.Cuts[i-1] {
				return nil, fmt.Errorf("sharded: range spec cuts not ascending")
			}
		}
		return &RangePartitioner{dim: s.Dim, cuts: append([]int64(nil), s.Cuts...)}, nil
	default:
		return nil, fmt.Errorf("sharded: unknown partitioner kind %q", s.Kind)
	}
}

// allShards appends 0..n-1 to dst.
func allShards(n int, dst []int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, i)
	}
	return dst
}

// HashPartitioner spreads rows uniformly by a mixed hash of one
// dimension's value. It is the robust default: balanced shards on any
// data, no tuning. Its pruning is weak — only an equality filter on the
// hashed dimension routes to a single shard; every other query fans out
// to all shards.
type HashPartitioner struct {
	dim int
	n   int
}

// NewHash builds a hash partitioner over dimension dim with n shards.
func NewHash(dim, n int) *HashPartitioner { return &HashPartitioner{dim: dim, n: n} }

// NumShards implements Partitioner.
func (p *HashPartitioner) NumShards() int { return p.n }

// ShardOf implements Partitioner.
func (p *HashPartitioner) ShardOf(row []int64) int {
	return int(mix(uint64(row[p.dim])) % uint64(p.n))
}

// Shards implements Partitioner: an equality filter on the hashed
// dimension pins the query to one shard; anything else could match rows
// anywhere.
func (p *HashPartitioner) Shards(q query.Query, dst []int) []int {
	if f, ok := q.Filter(p.dim); ok && f.IsEquality() {
		return append(dst, int(mix(uint64(f.Lo))%uint64(p.n)))
	}
	return allShards(p.n, dst)
}

// Spec implements Partitioner.
func (p *HashPartitioner) Spec() Spec { return Spec{Kind: "hash", Dim: p.dim, N: p.n} }

func (p *HashPartitioner) String() string { return fmt.Sprintf("hash(d%d,%d)", p.dim, p.n) }

// mix is the splitmix64 finalizer: full-avalanche, so consecutive values
// (timestamps, ids) spread uniformly across shards.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// RangePartitioner assigns rows by which range of the partitioned
// dimension they fall in: shard i owns values in [cuts[i-1], cuts[i])
// (first shard unbounded below, last unbounded above). Learned from the
// data's empirical CDF (LearnRange), it keeps shards balanced while
// making pruning strong: any range filter on the partitioned dimension
// touches only the shards its interval overlaps, so range scans on the
// clustered dimension hit few shards.
type RangePartitioner struct {
	dim  int
	cuts []int64 // ascending; len = NumShards-1
}

// LearnRange learns an equi-depth range partitioning of dimension dim
// into n shards from the table: cut points are quantiles of the column,
// so each shard starts with roughly the same number of rows. Heavily
// duplicated values can leave some shards empty (duplicate cut points);
// they still serve and absorb future inserts.
func LearnRange(table *colstore.Store, dim, n int) *RangePartitioner {
	const maxSample = 1 << 16
	col := table.Column(dim)
	var sample []int64
	if len(col) <= maxSample {
		sample = append([]int64(nil), col...)
	} else {
		// Evenly spaced over the whole column (i*len/max, not a truncated
		// stride, which would only ever sample a prefix).
		sample = make([]int64, 0, maxSample)
		for i := 0; i < maxSample; i++ {
			sample = append(sample, col[i*len(col)/maxSample])
		}
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	return &RangePartitioner{dim: dim, cuts: cutsFromSorted(sample, n)}
}

// cutsFromSorted picks n-1 equi-depth cut points (quantiles) from an
// ascending sample. Shared by LearnRange and the online rebalancer's cut
// re-learning.
func cutsFromSorted(sample []int64, n int) []int64 {
	cuts := make([]int64, 0, n-1)
	for i := 1; i < n; i++ {
		if len(sample) == 0 {
			cuts = append(cuts, 0)
			continue
		}
		k := i * len(sample) / n
		if k >= len(sample) {
			k = len(sample) - 1
		}
		cuts = append(cuts, sample[k])
	}
	return cuts
}

// NumShards implements Partitioner.
func (p *RangePartitioner) NumShards() int { return len(p.cuts) + 1 }

// ShardOf implements Partitioner.
func (p *RangePartitioner) ShardOf(row []int64) int {
	v := row[p.dim]
	return sort.Search(len(p.cuts), func(i int) bool { return p.cuts[i] > v })
}

// Shards implements Partitioner: a filter on the partitioned dimension
// restricts the query to the contiguous run of shards its interval
// overlaps; other queries fan out to all shards.
func (p *RangePartitioner) Shards(q query.Query, dst []int) []int {
	f, ok := q.Filter(p.dim)
	if !ok {
		return allShards(p.NumShards(), dst)
	}
	first := sort.Search(len(p.cuts), func(i int) bool { return p.cuts[i] > f.Lo })
	last := sort.Search(len(p.cuts), func(i int) bool { return p.cuts[i] > f.Hi })
	for i := first; i <= last; i++ {
		dst = append(dst, i)
	}
	return dst
}

// Cuts returns the learned cut points (ascending, one fewer than shards).
func (p *RangePartitioner) Cuts() []int64 { return p.cuts }

// Dim returns the partitioned dimension.
func (p *RangePartitioner) Dim() int { return p.dim }

// WithCut returns a copy of p with cut i moved to c. The caller must keep
// the cut vector ascending (the rebalancer's clamped passes do).
func (p *RangePartitioner) WithCut(i int, c int64) *RangePartitioner {
	cuts := append([]int64(nil), p.cuts...)
	cuts[i] = c
	return &RangePartitioner{dim: p.dim, cuts: cuts}
}

// Bounds returns the inclusive value range shard i owns on the
// partitioned dimension, using math.MinInt64/MaxInt64 for the unbounded
// ends. A shard squeezed between duplicate cuts owns an empty range
// (lo > hi).
func (p *RangePartitioner) Bounds(i int) (lo, hi int64) {
	lo, hi = math.MinInt64, math.MaxInt64
	if i > 0 {
		lo = p.cuts[i-1]
	}
	if i < len(p.cuts) {
		if p.cuts[i] == math.MinInt64 {
			// Degenerate cut at the domain floor: nothing sits below it.
			return 1, 0 // canonical empty range
		}
		hi = p.cuts[i] - 1
	}
	if lo > hi {
		return 1, 0 // duplicate cuts squeeze this shard empty
	}
	return lo, hi
}

// Spec implements Partitioner.
func (p *RangePartitioner) Spec() Spec {
	return Spec{Kind: "range", Dim: p.dim, N: p.NumShards(), Cuts: append([]int64(nil), p.cuts...)}
}

func (p *RangePartitioner) String() string {
	return fmt.Sprintf("range(d%d,%d)", p.dim, p.NumShards())
}

package sharded

import (
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/testutil"
)

// TestRouterCacheCoherenceUnderIngestAndMove is the coherence oracle for
// the router-level result cache: under concurrent ingest AND a cut
// migration (run with -race), every routed read — cache hit or miss —
// must observe a count no older than the last fully-inserted batch and
// no newer than the batches started. A stale cache entry surviving an
// epoch bump or a generation bump would return a count below the floor.
func TestRouterCacheCoherenceUnderIngestAndMove(t *testing.T) {
	st := testutil.SmallTaxi(3000, 451)
	base := uint64(st.NumRows())
	dir := filepath.Join(t.TempDir(), "snap")
	s, err := Open(st, nil, smallConfig(), Config{
		Shards:       3,
		Learned:      true,
		SnapshotDir:  dir,
		CacheEntries: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Widen every mid-move window so readers provably execute while the
	// migration protocol is between stages.
	var stages atomic.Int64
	s.moveHook = func(stage string) {
		stages.Add(1)
		time.Sleep(20 * time.Millisecond)
	}

	all := query.NewCount()
	probes := append(testutil.RandomQueries(st, 6, 452), all, query.NewSum(1))

	var (
		started atomic.Uint64 // rows handed to InsertBatch
		done    atomic.Uint64 // rows InsertBatch returned for
		stop    atomic.Bool
		checks  atomic.Int64
		wg      sync.WaitGroup
	)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				q := probes[(i+r)%len(probes)]
				if q.Agg == all.Agg && len(q.Filters) == 0 {
					floor := base + done.Load()
					got := s.Execute(all).Count
					ceil := base + started.Load()
					if got < floor || got > ceil {
						t.Errorf("reader %d: COUNT(*)=%d outside the linearizable window [%d, %d] — stale or torn cache entry",
							r, got, floor, ceil)
						return
					}
					checks.Add(1)
					continue
				}
				s.Execute(q)
			}
		}(r)
	}

	// Skewed ingest builds the imbalance the rebalance will then move.
	extra := skewedRows(st, 1200, 453)
	half := len(extra) / 2
	ingest := func(rows [][]int64) {
		for off := 0; off < len(rows); off += 25 {
			end := off + 25
			if end > len(rows) {
				end = len(rows)
			}
			batch := rows[off:end]
			started.Add(uint64(len(batch)))
			if err := s.InsertBatch(batch); err != nil {
				t.Error(err)
				return
			}
			done.Add(uint64(len(batch)))
		}
	}
	ingest(extra[:half])
	if err := s.Rebalance(); err != nil { // migrates cuts while readers run
		t.Fatal(err)
	}
	ingest(extra[half:])
	stop.Store(true)
	wg.Wait()

	if s.Stats().RowsMigrated == 0 {
		t.Fatal("rebalance moved no rows; the mid-move windows proved nothing")
	}
	if stages.Load() == 0 {
		t.Fatal("moveHook never fired")
	}
	if checks.Load() == 0 {
		t.Fatal("no linearizable-window check ever ran")
	}

	// Quiescent exactness: with ingest and migration over, every probe —
	// now answered through a warm cache — must match a full scan of the
	// combined truth, and a repeated ask (a guaranteed hit at the stable
	// epoch vector) must be byte-identical to the first.
	truth := combined(t, st, extra)
	testutil.CheckMatchesFullScan(t, s, truth, probes)
	for _, q := range probes {
		first := s.Execute(q)
		if second := s.Execute(q); first != second {
			t.Fatalf("stable-vector repeat diverged for %v: %+v vs %+v", q, first, second)
		}
	}
	if cs := s.Stats().Cache; cs.Hits == 0 {
		t.Fatalf("router cache never hit (stats %+v)", cs)
	}
}

package sharded

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/query"
)

// On-disk layout of a sharded snapshot directory:
//
//	MANIFEST        gob manifest: format version, partitioner spec,
//	                partitioner generation, and — only while a cut
//	                migration is being persisted — the pending move
//	shard-0000.snap per-shard core format-v2 snapshot (clustered data,
//	shard-0001.snap grids, and buffered-but-unmerged delta rows)
//	shard-0000.gen  per-shard generation stamp: the partitioner
//	...             generation the shard's snapshot was written under
//
// Every file is written atomically (temp file, fsync, rename), so a crash
// mid-write leaves the previous version intact. The manifest is written
// last on Save: a directory with a manifest always has a full shard set.
//
// Crash consistency across a cut migration (rebalance.go): moving rows
// between two shards cannot update both shard files and the manifest in
// one atomic step, so the move follows a write-intent protocol —
//
//	1. manifest {old spec, gen G, pending move}   (intent)
//	2. the in-memory migration commits
//	3. dst shard file + dst generation stamp G+1  (moved rows durable)
//	4. src shard file + src generation stamp G+1  (moved rows removed)
//	5. manifest {new spec, gen G+1, no pending}   (commit)
//
// A crash without a pending move recovers as-is. A crash with one is
// reconciled by the stamps: if either migrating shard advanced past G the
// move rolls forward (the destination's copy of the moved rows was made
// durable before the source's copy could disappear — write order 3 < 4),
// otherwise it rolls back; in both cases the two shard files are
// sanitized to the rows their shard owns under the chosen cuts, which
// drops whichever half-written duplicate copy the crash left behind.
// Shards not involved in the move hold the same rows under either
// generation, so their files load as-is.

const manifestVersion = 2

// manifestName is the directory's partitioner + layout descriptor.
const manifestName = "MANIFEST"

type manifest struct {
	FormatVersion int
	Spec          Spec
	// Generation is the partitioner generation the directory reflects
	// (0 in format-v1 directories, which predate rebalancing).
	Generation uint64
	// Pending, when non-nil, records a cut migration whose persistence
	// was in flight; Recover reconciles it.
	Pending *pendingMove
}

// pendingMove is the write-intent record of one single-cut migration.
type pendingMove struct {
	CutIndex int
	NewCut   int64
	OldCut   int64
	Src, Dst int
}

// shardFile names shard i's snapshot file in dir.
func shardFile(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.snap", i))
}

// shardGenFile names shard i's generation stamp in dir.
func shardGenFile(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.gen", i))
}

// writeShardGen atomically stamps shard i's snapshot with the partitioner
// generation it was written under.
func writeShardGen(dir string, i int, gen uint64) error {
	return writeAtomic(shardGenFile(dir, i), func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%d\n", gen)
		return err
	})
}

// readShardGen returns shard i's generation stamp, or 0 when the stamp is
// missing or unreadable (format-v1 directories have none).
func readShardGen(dir string, i int) uint64 {
	b, err := os.ReadFile(shardGenFile(dir, i))
	if err != nil {
		return 0
	}
	gen, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return 0
	}
	return gen
}

// writeShardSnapshot atomically writes shard i's snapshot file, then its
// generation stamp.
func writeShardSnapshot(dir string, i int, idx *core.Tsunami, gen uint64) error {
	if err := writeAtomic(shardFile(dir, i), idx.Save); err != nil {
		return fmt.Errorf("sharded: shard %d snapshot: %w", i, err)
	}
	if err := writeShardGen(dir, i, gen); err != nil {
		return fmt.Errorf("sharded: shard %d snapshot: %w", i, err)
	}
	return nil
}

// Save writes a mutually consistent snapshot of every shard to dir: one
// manifest plus one format-v2 snapshot (and generation stamp) per shard.
// The cut is taken under the ingest gate — writers block for the few
// pointer loads it takes to capture every shard's current epoch, never
// for the serialization — so no insert batch is split across the
// snapshot. Readers are never blocked. Safe to call while serving, and
// after Close.
func (s *Store) Save(dir string) error {
	s.rebalMu.Lock()
	defer s.rebalMu.Unlock()
	return s.save(dir)
}

// save is Save without the rebalance barrier.
func (s *Store) save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("sharded: save: %w", err)
	}
	// The consistent cut: with the gate held exclusively there are no
	// in-flight batches, so the captured epochs agree on every batch.
	s.mu.Lock()
	top := s.topo.Load()
	handles := make([]*core.Tsunami, len(s.shards))
	for i, sh := range s.shards {
		handles[i] = sh.Index()
	}
	s.mu.Unlock()

	errs := make([]error, len(handles))
	var wg sync.WaitGroup
	for i, idx := range handles {
		i, idx := i, idx
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := writeShardSnapshot(dir, i, idx, top.gen); err != nil {
				errs[i] = err
			}
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return fmt.Errorf("sharded: save: %w", err)
	}
	return writeManifest(dir, top.parts.Spec(), top.gen, nil)
}

// Recover reopens a sharded store from a snapshot directory written by
// Save (or assembled by the per-shard snapshot loops under SnapshotDir):
// the manifest reconstructs the partitioner, each shard file reloads its
// index — buffered rows included — and serving resumes. A directory left
// by a crash mid-rebalance is reconciled first (see the protocol above).
// workload seeds each shard's shift detector (nil disables detection), as
// in Open. cfg.Partition/Shards/Dim/Learned are ignored: the manifest
// decides.
func Recover(dir string, workload []query.Query, cfg Config) (*Store, error) {
	if cfg.Live.SnapshotPath != "" {
		return nil, errors.New("sharded: set Config.SnapshotDir, not Live.SnapshotPath (shards derive their own files)")
	}
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	parts, err := m.Spec.Partitioner()
	if err != nil {
		return nil, fmt.Errorf("sharded: recover: %w", err)
	}
	gen := m.Generation
	if gen == 0 {
		gen = 1 // format-v1 directories predate generations
	}

	// Reconcile a crash mid-rebalance: roll the interrupted move forward
	// when either migrating shard's stamp advanced (the destination's copy
	// of the moved rows is durable by write order), back otherwise.
	var sanitize []int
	if p := m.Pending; p != nil {
		rp, ok := parts.(*RangePartitioner)
		if !ok || p.CutIndex < 0 || p.CutIndex >= len(rp.cuts) ||
			p.Src < 0 || p.Src >= parts.NumShards() || p.Dst < 0 || p.Dst >= parts.NumShards() {
			return nil, fmt.Errorf("sharded: recover: manifest has an invalid pending move %+v", p)
		}
		// The new cut must keep the vector ascending — ShardOf and Shards
		// binary-search it, so rolling forward into an unsorted vector
		// would misroute silently rather than fail.
		if (p.CutIndex > 0 && p.NewCut < rp.cuts[p.CutIndex-1]) ||
			(p.CutIndex < len(rp.cuts)-1 && p.NewCut > rp.cuts[p.CutIndex+1]) {
			return nil, fmt.Errorf("sharded: recover: pending move's cut %d breaks cut ordering", p.NewCut)
		}
		if readShardGen(dir, p.Dst) > m.Generation || readShardGen(dir, p.Src) > m.Generation {
			parts = rp.WithCut(p.CutIndex, p.NewCut)
			gen = m.Generation + 1
		}
		sanitize = []int{p.Src, p.Dst}
	}

	cfg.Partition = parts
	cfg.fill()

	idxs := make([]*core.Tsunami, parts.NumShards())
	errs := make([]error, len(idxs))
	var wg sync.WaitGroup
	for i := range idxs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := os.Open(shardFile(dir, i))
			if err != nil {
				errs[i] = err
				return
			}
			defer f.Close()
			idxs[i], errs[i] = core.Load(f)
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, fmt.Errorf("sharded: recover: %w", err)
	}
	for _, i := range sanitize {
		idxs[i], err = keepOwned(idxs[i], parts.(*RangePartitioner), i)
		if err != nil {
			return nil, fmt.Errorf("sharded: recover: sanitize shard %d: %w", i, err)
		}
	}
	s, err := openShards(parts, idxs, workload, cfg, gen)
	if err != nil {
		return nil, err
	}
	// Clear the pending marker in the recovered directory unless
	// openShards already rewrote that same directory (SnapshotDir == dir),
	// so the next Recover starts from a clean manifest.
	if len(sanitize) > 0 && cfg.SnapshotDir != dir {
		if err := s.Save(dir); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// keepOwned drops every row shard i does not own under p's cuts. Used
// only on the two shards of a reconciled move: the dropped rows are the
// half-written duplicates the crash left in exactly one of the pair.
func keepOwned(idx *core.Tsunami, p *RangePartitioner, i int) (*core.Tsunami, error) {
	lo, hi := p.Bounds(i)
	if lo > hi {
		// Squeezed-empty shard: it owns nothing.
		idx, _, err := idx.SplitRange(p.dim, math.MinInt64, math.MaxInt64)
		return idx, err
	}
	var err error
	if lo > math.MinInt64 {
		idx, _, err = idx.SplitRange(p.dim, math.MinInt64, lo-1)
		if err != nil {
			return nil, err
		}
	}
	if hi < math.MaxInt64 {
		idx, _, err = idx.SplitRange(p.dim, hi+1, math.MaxInt64)
		if err != nil {
			return nil, err
		}
	}
	return idx, nil
}

// writeManifest atomically writes dir's manifest.
func writeManifest(dir string, spec Spec, gen uint64, pending *pendingMove) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("sharded: manifest: %w", err)
	}
	m := manifest{FormatVersion: manifestVersion, Spec: spec, Generation: gen, Pending: pending}
	err := writeAtomic(filepath.Join(dir, manifestName), func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(&m)
	})
	if err != nil {
		return fmt.Errorf("sharded: manifest: %w", err)
	}
	return nil
}

// readManifest loads and validates dir's manifest.
func readManifest(dir string) (*manifest, error) {
	f, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("sharded: recover: %w", err)
	}
	defer f.Close()
	var m manifest
	if err := gob.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("sharded: recover: bad manifest: %w", err)
	}
	if m.FormatVersion < 1 || m.FormatVersion > manifestVersion {
		return nil, fmt.Errorf("sharded: recover: manifest version %d, want 1..%d", m.FormatVersion, manifestVersion)
	}
	return &m, nil
}

// writeAtomic writes via a temp file in the target's directory, fsyncs,
// renames over the destination, and fsyncs the directory, so a crash
// mid-write cannot destroy an existing good file — and, once writeAtomic
// returns, the rename itself is durable. That last property is what the
// migration protocol's cross-file write ordering (pending manifest → dst
// → src → clean manifest) rests on: without the directory sync, a
// journal could persist a later rename before an earlier one and
// Recover's case analysis would read a reordered history.
func writeAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making the renames inside it durable in
// order.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

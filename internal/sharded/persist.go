package sharded

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/query"
)

// On-disk layout of a sharded snapshot directory:
//
//	MANIFEST        gob manifest: format version + partitioner spec
//	shard-0000.snap per-shard core format-v2 snapshot (clustered data,
//	shard-0001.snap grids, and buffered-but-unmerged delta rows)
//	...
//
// Every file is written atomically (temp file, fsync, rename), so a crash
// mid-write leaves the previous snapshot intact. The manifest is written
// last on Save: a directory with a manifest always has a full shard set.

const manifestVersion = 1

// manifestName is the directory's partitioner + layout descriptor.
const manifestName = "MANIFEST"

type manifest struct {
	FormatVersion int
	Spec          Spec
}

// shardFile names shard i's snapshot file in dir.
func shardFile(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.snap", i))
}

// Save writes a mutually consistent snapshot of every shard to dir: one
// manifest plus one format-v2 snapshot per shard. The cut is taken under
// the ingest gate — writers block for the few pointer loads it takes to
// capture every shard's current epoch, never for the serialization — so
// no insert batch is split across the snapshot. Readers are never
// blocked. Safe to call while serving, and after Close.
func (s *Store) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("sharded: save: %w", err)
	}
	// The consistent cut: with the gate held exclusively there are no
	// in-flight batches, so the captured epochs agree on every batch.
	s.mu.Lock()
	handles := make([]*core.Tsunami, len(s.shards))
	for i, sh := range s.shards {
		handles[i] = sh.Index()
	}
	s.mu.Unlock()

	errs := make([]error, len(handles))
	var wg sync.WaitGroup
	for i, idx := range handles {
		i, idx := i, idx
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := writeAtomic(shardFile(dir, i), idx.Save); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
			}
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return fmt.Errorf("sharded: save: %w", err)
	}
	return writeManifest(dir, s.parts.Spec())
}

// Recover reopens a sharded store from a snapshot directory written by
// Save (or assembled by the per-shard snapshot loops under SnapshotDir):
// the manifest reconstructs the partitioner, each shard file reloads its
// index — buffered rows included — and serving resumes. workload seeds
// each shard's shift detector (nil disables detection), as in Open.
// cfg.Partition/Shards/Dim/Learned are ignored: the manifest decides.
func Recover(dir string, workload []query.Query, cfg Config) (*Store, error) {
	if cfg.Live.SnapshotPath != "" {
		return nil, errors.New("sharded: set Config.SnapshotDir, not Live.SnapshotPath (shards derive their own files)")
	}
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	parts, err := m.Spec.Partitioner()
	if err != nil {
		return nil, fmt.Errorf("sharded: recover: %w", err)
	}
	cfg.Partition = parts
	cfg.fill()

	idxs := make([]*core.Tsunami, parts.NumShards())
	errs := make([]error, len(idxs))
	var wg sync.WaitGroup
	for i := range idxs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := os.Open(shardFile(dir, i))
			if err != nil {
				errs[i] = err
				return
			}
			defer f.Close()
			idxs[i], errs[i] = core.Load(f)
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, fmt.Errorf("sharded: recover: %w", err)
	}
	return openShards(parts, idxs, workload, cfg)
}

// writeManifest atomically writes dir's manifest.
func writeManifest(dir string, spec Spec) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("sharded: manifest: %w", err)
	}
	m := manifest{FormatVersion: manifestVersion, Spec: spec}
	err := writeAtomic(filepath.Join(dir, manifestName), func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(&m)
	})
	if err != nil {
		return fmt.Errorf("sharded: manifest: %w", err)
	}
	return nil
}

// readManifest loads and validates dir's manifest.
func readManifest(dir string) (*manifest, error) {
	f, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("sharded: recover: %w", err)
	}
	defer f.Close()
	var m manifest
	if err := gob.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("sharded: recover: bad manifest: %w", err)
	}
	if m.FormatVersion < 1 || m.FormatVersion > manifestVersion {
		return nil, fmt.Errorf("sharded: recover: manifest version %d, want 1..%d", m.FormatVersion, manifestVersion)
	}
	return &m, nil
}

// writeAtomic writes via a temp file in the target's directory, fsyncs,
// and renames over the destination, so a crash mid-write cannot destroy
// an existing good file.
func writeAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

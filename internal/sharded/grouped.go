package sharded

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colstore"
	"repro/internal/obs"
	"repro/internal/query"
)

// readStableGrouped is readStable for grouped results: run fn against a
// stable topology, discarding and retrying the attempt if a migration's
// commit window overlaps it. The consistency argument is identical —
// grouped partials merge exactly (per-group count+sum pairs), so a
// retried read never double-counts or misses migrating rows.
func (s *Store) readStableGrouped(fn func(top *topology, scanned *int) colstore.GroupedResult) colstore.GroupedResult {
	m := s.metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	for attempt := 0; ; attempt++ {
		g := s.migrating.Load()
		if g&1 == 0 {
			var scanned int
			res := fn(s.topo.Load(), &scanned)
			if s.migrating.Load() == g {
				s.countRoute(scanned)
				if m != nil {
					m.latency.RecordDuration(time.Since(start))
				}
				return res
			}
		}
		if attempt < 4 {
			runtime.Gosched()
		} else {
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// ExecuteGrouped answers one grouped aggregate (GROUP BY) scatter-gather
// style: route, execute the surviving shards on the calling goroutine,
// merge the per-shard grouped partials exactly (each group's count and
// sum add; AVG derives from the merged pair). Consistency and caching
// match Execute: reads retry around migration commit windows, and the
// router cache keys on the topology generation plus the routed shards'
// epoch vector.
func (s *Store) ExecuteGrouped(q query.Query) colstore.GroupedResult {
	w := s.workload
	if w == nil {
		return s.executeGroupedRouted(q)
	}
	start := time.Now()
	res := s.executeGroupedRouted(q)
	w.Record(q, time.Since(start), res.TotalCount(), res.PointsScanned, res.BytesTouched)
	return res
}

func (s *Store) executeGroupedRouted(q query.Query) colstore.GroupedResult {
	return s.readStableGrouped(func(top *topology, scanned *int) colstore.GroupedResult {
		ids := top.parts.Shards(q, make([]int, 0, len(s.shards)))
		*scanned = len(ids)
		vec, ver, cok := s.cacheKey(top, ids)
		if cok {
			if res, hit := s.cache.GetGrouped(ver, vec, q); hit {
				s.cacheHits.Add(1)
				return res
			}
			s.cacheMisses.Add(1)
		}
		var res colstore.GroupedResult
		if len(ids) == 1 {
			res = s.shards[ids[0]].ExecuteGrouped(q)
		} else {
			for _, id := range ids {
				res.Merge(s.shards[id].ExecuteGrouped(q))
			}
		}
		s.cachePutGroupedRouted(ver, vec, q, res, cok)
		return res
	})
}

// cachePutGroupedRouted stores a grouped scatter-gather result under the
// version vector captured before the shards executed; the safety argument
// is cachePutRouted's (a mixed-epoch result's vector can never match a
// recomputed current vector).
func (s *Store) cachePutGroupedRouted(ver uint64, vec []uint64, q query.Query, res colstore.GroupedResult, cok bool) {
	if !cok {
		return
	}
	if s.cache.PutGrouped(ver, vec, q, res) {
		s.cacheEvictions.Add(1)
	}
}

// ExecuteGroupedParallelOn is ExecuteGrouped with the surviving shards
// drained by up to workers tasks handed to submit (typically an
// Executor's worker pool). Tasks never block on other tasks; a nil
// submit spawns one goroutine per task.
func (s *Store) ExecuteGroupedParallelOn(q query.Query, workers int, submit func(task func())) colstore.GroupedResult {
	w := s.workload
	if w == nil {
		return s.executeGroupedParallelRouted(q, workers, submit)
	}
	start := time.Now()
	res := s.executeGroupedParallelRouted(q, workers, submit)
	w.Record(q, time.Since(start), res.TotalCount(), res.PointsScanned, res.BytesTouched)
	return res
}

func (s *Store) executeGroupedParallelRouted(q query.Query, workers int, submit func(task func())) colstore.GroupedResult {
	return s.readStableGrouped(func(top *topology, scanned *int) colstore.GroupedResult {
		ids := top.parts.Shards(q, make([]int, 0, len(s.shards)))
		*scanned = len(ids)
		vec, ver, cok := s.cacheKey(top, ids)
		if cok {
			if res, hit := s.cache.GetGrouped(ver, vec, q); hit {
				s.cacheHits.Add(1)
				return res
			}
			s.cacheMisses.Add(1)
		}
		w := workers
		if w > len(ids) {
			w = len(ids)
		}
		if w <= 1 {
			var res colstore.GroupedResult
			if len(ids) == 1 {
				res = s.shards[ids[0]].ExecuteGrouped(q)
			} else {
				for _, id := range ids {
					res.Merge(s.shards[id].ExecuteGrouped(q))
				}
			}
			s.cachePutGroupedRouted(ver, vec, q, res, cok)
			return res
		}
		sub := submit
		if sub == nil {
			sub = func(task func()) { go task() }
		}
		// Dynamic assignment, like executeParallelRouted: workers pull the
		// next shard from a shared cursor so skewed shard sizes don't idle
		// the pool.
		var cursor atomic.Int64
		partial := make([]colstore.GroupedResult, w)
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			k := k
			sub(func() {
				defer wg.Done()
				var res colstore.GroupedResult
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(ids) {
						break
					}
					res.Merge(s.shards[ids[i]].ExecuteGrouped(q))
				}
				partial[k] = res
			})
		}
		wg.Wait()
		var res colstore.GroupedResult
		for _, p := range partial {
			res.Merge(p)
		}
		s.cachePutGroupedRouted(ver, vec, q, res, cok)
		return res
	})
}

// ExecuteGroupedTrace answers q exactly like ExecuteGrouped while
// recording an explain-analyze trace: the router's pruning decision, a
// per-shard span for every surviving shard, and the gather-merge cost.
// Shards execute sequentially so spans attribute time exactly; a seqlock
// retry rebuilds the trace from scratch, like ExecuteTrace.
func (s *Store) ExecuteGroupedTrace(q query.Query) (colstore.GroupedResult, *obs.QueryTrace) {
	start := time.Now()
	res, tr := s.executeGroupedTrace(q)
	s.workload.Record(q, time.Since(start), res.TotalCount(), res.PointsScanned, res.BytesTouched)
	return res, tr
}

// executeGroupedTrace is ExecuteGroupedTrace without workload-statistics
// recording, mirroring executeTrace.
func (s *Store) executeGroupedTrace(q query.Query) (colstore.GroupedResult, *obs.QueryTrace) {
	tr := &obs.QueryTrace{Query: q.String()}
	total := time.Now()
	res := s.readStableGrouped(func(top *topology, scanned *int) colstore.GroupedResult {
		// A seqlock retry discards the attempt; start the trace over.
		tr.Stages = tr.Stages[:0]
		tr.Shards = tr.Shards[:0]
		tr.Regions = 0

		start := time.Now()
		ids := top.parts.Shards(q, make([]int, 0, len(s.shards)))
		*scanned = len(ids)
		tr.AddStage("route", time.Since(start),
			fmt.Sprintf("%d of %d shards survive pruning (gen %d)", len(ids), len(s.shards), top.gen))

		start = time.Now()
		partials := make([]colstore.GroupedResult, 0, len(ids))
		for _, id := range ids {
			shStart := time.Now()
			sub, shTr := s.shards[id].ExecuteGroupedTrace(q)
			partials = append(partials, sub)
			tr.Shards = append(tr.Shards, obs.ShardSpan{
				Shard:    id,
				Duration: time.Since(shStart),
				Rows:     sub.PointsScanned,
				Bytes:    sub.BytesTouched,
				Regions:  shTr.Regions,
			})
			tr.Regions += shTr.Regions
		}
		tr.AddStage("scan+group", time.Since(start), "")

		start = time.Now()
		var res colstore.GroupedResult
		for _, p := range partials {
			res.Merge(p)
		}
		tr.AddStage("merge", time.Since(start),
			fmt.Sprintf("%d grouped partials, %d groups", len(partials), len(res.Groups)))
		return res
	})
	tr.Total = time.Since(total)
	tr.Rows = res.PointsScanned
	tr.Bytes = res.BytesTouched
	return res, tr
}

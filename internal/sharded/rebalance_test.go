package sharded

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/colstore"
	"repro/internal/live"
	"repro/internal/query"
	"repro/internal/testutil"
)

// skewedRows builds rows that all land beyond the table's current dim-0
// maximum — the "all fresh rows hit the last time shard" drift scenario.
func skewedRows(st *colstore.Store, n int, seed int64) [][]int64 {
	rng := rand.New(rand.NewSource(seed))
	_, hi := st.MinMax(0)
	rows := make([][]int64, n)
	for i := range rows {
		t := hi + 1 + int64(i)*3 + rng.Int63n(3)
		rows[i] = []int64{t, t + 50, rng.Int63n(1000), rng.Int63n(3000), 1 + rng.Int63n(6)}
	}
	return rows
}

// TestRebalanceRestoresBalance is the tentpole's core property: skewed
// ingest unbalances the learned range shards, a manual Rebalance
// re-learns the cuts and migrates rows, and afterwards (a) the spread is
// within bounds, (b) every aggregate still equals a full scan — no row
// lost or duplicated, (c) routing still prunes, and (d) the partitioner
// generation advanced.
func TestRebalanceRestoresBalance(t *testing.T) {
	st := testutil.SmallTaxi(6000, 401)
	work := testutil.SkewedQueries(st, 80, 402)
	s, err := Open(st, work, smallConfig(), Config{Shards: 4, Learned: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	extra := skewedRows(st, 4000, 403)
	if err := s.InsertBatch(extra); err != nil {
		t.Fatal(err)
	}
	if skew, _ := s.Skew(); skew < 2 {
		t.Fatalf("setup failed to skew the shards: skew %.2f", skew)
	}

	if err := s.Rebalance(); err != nil {
		t.Fatal(err)
	}

	skew, total := s.Skew()
	if total != 10000 {
		t.Fatalf("total rows = %d, want 10000", total)
	}
	if skew >= 2 {
		t.Errorf("post-rebalance skew %.2f, want < 2", skew)
	}
	stats := s.Stats()
	if stats.Rebalances != 1 || stats.RowsMigrated == 0 {
		t.Errorf("rebalance not counted: %d rebalances, %d rows migrated",
			stats.Rebalances, stats.RowsMigrated)
	}
	if stats.Generation < 2 {
		t.Errorf("generation = %d, want >= 2 after a migration", stats.Generation)
	}

	truth := combined(t, st, extra)
	probe := append(testutil.RandomQueries(truth, 80, 404), query.NewCount())
	for i := 0; i < truth.NumDims(); i++ {
		probe = append(probe, query.NewSum(i))
	}
	testutil.CheckMatchesFullScan(t, s, truth, probe)

	// Routing soundness against the new cuts: narrow range queries on the
	// partition dimension must still prune and still answer exactly
	// (checked above); verify pruning is happening at all.
	before := s.Stats()
	lo, hi := truth.MinMax(0)
	for i := 0; i < 20; i++ {
		a := lo + int64(i)*(hi-lo)/40
		s.Execute(query.NewCount(query.Filter{Dim: 0, Lo: a, Hi: a + (hi-lo)/40}))
	}
	after := s.Stats()
	if after.ShardsPruned == before.ShardsPruned {
		t.Error("no shards pruned after rebalance — new cuts not routing")
	}

	// A second rebalance on balanced shards is a cheap no-op.
	if err := s.Rebalance(); err != nil {
		t.Fatal(err)
	}
}

// TestRebalanceReadsStayExactThroughout pins the migration exactness
// claim: with ingest quiesced, concurrent readers must see the exact same
// aggregates before, during, and after a rebalance — the seqlock retry
// makes the cross-shard row handoff invisible.
func TestRebalanceReadsStayExactThroughout(t *testing.T) {
	st := testutil.SmallTaxi(5000, 411)
	s, err := Open(st, nil, smallConfig(), Config{Shards: 3, Learned: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	extra := skewedRows(st, 3000, 412)
	if err := s.InsertBatch(extra); err != nil {
		t.Fatal(err)
	}

	truth := combined(t, st, extra)
	probes := append(testutil.RandomQueries(truth, 12, 413), query.NewCount())
	// Bias toward the partition dimension, where the cuts move.
	lo, hi := truth.MinMax(0)
	for i := 0; i < 8; i++ {
		a := lo + int64(i)*(hi-lo)/8
		probes = append(probes, query.NewCount(query.Filter{Dim: 0, Lo: a, Hi: a + (hi-lo)/6}))
	}
	want := make([]colstore.ScanResult, len(probes))
	for i, q := range probes {
		want[i] = s.Execute(q)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for r := 0; r < 4; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := r; !stop.Load(); k++ {
				i := k % len(probes)
				got := s.Execute(probes[i])
				if got.Count != want[i].Count || got.Sum != want[i].Sum {
					select {
					case errs <- fmt.Sprintf("reader %d: %s: got (%d, %d), want (%d, %d)",
						r, probes[i], got.Count, got.Sum, want[i].Count, want[i].Sum):
					default:
					}
					return
				}
			}
		}()
	}

	if err := s.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().RowsMigrated; got == 0 {
		t.Error("rebalance moved no rows — the readers were not challenged")
	}
	time.Sleep(10 * time.Millisecond) // let readers cross the post-publish state too
	stop.Store(true)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("mid-migration read diverged: %s", e)
	}
}

// TestRebalanceWatcherTriggers drives the background watcher end to end:
// skewed ingest trips the skew threshold and the store rebalances itself.
func TestRebalanceWatcherTriggers(t *testing.T) {
	st := testutil.SmallTaxi(4000, 421)
	var mu sync.Mutex
	var events []Event
	s, err := Open(st, nil, smallConfig(), Config{
		Shards:  3,
		Learned: true,
		Rebalance: RebalanceConfig{
			CheckInterval: 10 * time.Millisecond,
			MaxSkew:       1.5,
			MinRows:       1000,
		},
		OnEvent: func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.InsertBatch(skewedRows(st, 3000, 422)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for s.Stats().Rebalances == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("watcher never rebalanced: skew %v, stats %+v", firstOf(s.Skew()), s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if skew, _ := s.Skew(); skew >= 1.5 {
		t.Errorf("skew still %.2f after watcher rebalance", skew)
	}
	mu.Lock()
	defer mu.Unlock()
	sawRebalance := false
	for _, ev := range events {
		if ev.Kind == live.EventRebalance && ev.Shard == -1 && ev.MergedRows > 0 {
			sawRebalance = true
		}
		if ev.Kind == live.EventError {
			t.Errorf("maintenance error: %v", ev.Err)
		}
	}
	if !sawRebalance {
		t.Error("no rebalance event emitted")
	}
}

func firstOf(a float64, _ int) float64 { return a }

// TestRebalanceRequiresRangePartitioner pins the failure modes: manual
// rebalance on a hash partitioner errors, and a watcher config on one is
// rejected at Open.
func TestRebalanceRequiresRangePartitioner(t *testing.T) {
	st := testutil.SmallTaxi(1000, 431)
	s, err := Open(st, nil, smallConfig(), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Rebalance(); err == nil {
		t.Error("Rebalance on a hash partitioner should fail")
	}
	_, err = Open(st, nil, smallConfig(), Config{
		Shards:    2,
		Rebalance: RebalanceConfig{CheckInterval: time.Second},
	})
	if err == nil {
		t.Error("Open accepted a rebalance watcher over a hash partitioner")
	}
}

// TestRebalanceCrashRecovery cuts "crash images" of the snapshot
// directory between every stage of the migration persistence protocol —
// intent written, destination persisted, source persisted — then recovers
// each image and verifies no row is lost or duplicated, aggregates match
// the oracle, and the recovered partitioner generation is consistent with
// the roll direction Recover chose.
func TestRebalanceCrashRecovery(t *testing.T) {
	st := testutil.SmallTaxi(4000, 441)
	dir := filepath.Join(t.TempDir(), "snap")
	s, err := Open(st, nil, smallConfig(), Config{
		Shards:      3,
		Learned:     true,
		SnapshotDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	extra := skewedRows(st, 2500, 442)
	if err := s.InsertBatch(extra); err != nil {
		t.Fatal(err)
	}
	truth := combined(t, st, extra)
	totalRows := uint64(truth.NumRows())
	// Sync the directory with the ingested state: without periodic
	// snapshots the buffered rows exist only in memory, and a crash image
	// would legitimately lose them — this test is about migration
	// consistency, not ingest durability.
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}

	// Capture a crash image at every persistence stage of every move.
	imagesRoot := t.TempDir()
	type image struct {
		stage string
		dir   string
	}
	var images []image
	s.moveHook = func(stage string) {
		d := filepath.Join(imagesRoot, fmt.Sprintf("img-%d-%s", len(images), stage))
		if err := copyDir(dir, d); err != nil {
			t.Errorf("capture %s: %v", stage, err)
			return
		}
		images = append(images, image{stage, d})
	}
	if err := s.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().RowsMigrated == 0 {
		t.Fatal("rebalance moved nothing; crash images prove nothing")
	}
	liveGen := s.Generation()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(images) < 3 {
		t.Fatalf("captured %d crash images, want at least 3", len(images))
	}

	probe := append(testutil.RandomQueries(truth, 40, 443), query.NewCount())
	for i := 0; i < truth.NumDims(); i++ {
		probe = append(probe, query.NewSum(i))
	}
	for _, img := range images {
		t.Run(img.stage, func(t *testing.T) {
			r, err := Recover(img.dir, nil, Config{})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if got := r.Execute(query.NewCount()).Count; got != totalRows {
				t.Fatalf("recovered %d rows, want %d (lost or duplicated across the crash)",
					got, totalRows)
			}
			testutil.CheckMatchesFullScan(t, r, truth, probe)
			if gen := r.Generation(); gen == 0 || gen > liveGen {
				t.Errorf("recovered generation %d out of range (live store ended at %d)", gen, liveGen)
			}
			// The recovered placement must agree with its own partitioner:
			// every shard's rows inside its advertised bounds.
			rp := r.Partitioner().(*RangePartitioner)
			for i := 0; i < r.NumShards(); i++ {
				lo, hi := rp.Bounds(i)
				n := r.Shard(i).Execute(query.NewCount()).Count
				if lo > hi {
					if n != 0 {
						t.Errorf("empty-range shard %d holds %d rows", i, n)
					}
					continue
				}
				in := r.Shard(i).Execute(query.NewCount(query.Filter{Dim: 0, Lo: lo, Hi: hi})).Count
				if in != n {
					t.Errorf("shard %d holds %d rows but only %d inside its bounds [%d, %d]",
						i, n, in, lo, hi)
				}
			}
			// And it resumes normal life.
			if err := r.Insert(make([]int64, truth.NumDims())); err != nil {
				t.Fatal(err)
			}
		})
	}

	// The final directory (clean manifest) recovers at the final
	// generation.
	r, err := Recover(dir, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Generation(); got != liveGen {
		t.Errorf("clean recovery at generation %d, want %d", got, liveGen)
	}
	if got := r.Execute(query.NewCount()).Count; got != totalRows {
		t.Errorf("clean recovery holds %d rows, want %d", got, totalRows)
	}
}

// copyDir copies every regular file in src into a fresh dst.
func copyDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			in.Close()
			return err
		}
		_, err = io.Copy(out, in)
		in.Close()
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

package sharded

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/live"
)

// Online shard rebalancing. The learned range cuts are fixed at Open, so
// skewed ingest (all fresh rows landing in the last time shard, say)
// slowly unbalances shards and erodes both ingest parallelism and the
// router's pruning — the same workload-drift problem the shift detector
// solves for region grids, now at the shard level. The rebalancer watches
// per-shard row counts (clustered plus delta pressure), re-learns
// equi-depth cuts from a sampled merged view when the imbalance crosses a
// threshold, and migrates rows between neighboring shards without
// blocking readers.
//
// A rebalance decomposes into single-cut moves: shifting cut i migrates
// exactly the rows between the old and new cut value between shards i and
// i+1, and publishes an intermediate partitioner that exactly describes
// the new placement. Decreasing cuts are applied left to right and
// increasing cuts right to left, which keeps the vector ascending — and
// routing exact — at every intermediate step. Each move runs in three
// phases:
//
//  1. Prepare (concurrent with everything): the source shard builds a
//     successor index without the moving range (live.PrepareExtract /
//     core.SplitRange) while it keeps serving and ingesting. Both shards'
//     maintenance is paused so their snapshot files stay put for the
//     crash protocol (persist.go).
//  2. Commit (the only exclusive window): with the ingest gate held, the
//     extraction commits (replaying rows ingested during the prepare),
//     the moved rows drain into the destination's ingest path, and the
//     successor partitioner is published. Readers overlapping this window
//     retry (see readStable); writers wait on the gate. The window's cost
//     is the moved-row handoff, never the index rebuild.
//  3. Persist (concurrent again): when a SnapshotDir is configured, the
//     move is made durable — destination snapshot, source snapshot, then
//     the clean manifest — in the order Recover's reconciliation assumes.
type RebalanceConfig struct {
	// CheckInterval is how often the background watcher compares shard
	// sizes (0 disables the watcher; Rebalance can still be called
	// manually).
	CheckInterval time.Duration
	// MaxSkew triggers a rebalance when the largest shard holds more than
	// MaxSkew times the mean shard's rows, counting both clustered and
	// buffered rows (default 2, minimum 1.1).
	MaxSkew float64
	// MinRows is the total row count below which the watcher never
	// triggers (default 4096).
	MinRows int
	// SampleSize is how many values the rebalancer samples across shards
	// to re-learn the equi-depth cuts (default 1<<15).
	SampleSize int
}

func (c *RebalanceConfig) fill() {
	if c.MaxSkew <= 0 {
		c.MaxSkew = 2
	}
	if c.MaxSkew < 1.1 {
		c.MaxSkew = 1.1
	}
	if c.MinRows <= 0 {
		c.MinRows = 4096
	}
	if c.SampleSize <= 0 {
		c.SampleSize = 1 << 15
	}
}

// errNotRange reports a rebalance attempt on a partitioner without
// movable cuts.
var errNotRange = errors.New("sharded: rebalancing requires the learned range partitioner")

// Skew reports the current imbalance — the largest shard's rows
// (clustered + buffered) over the mean — and the total row count.
func (s *Store) Skew() (maxOverMean float64, total int) {
	max := 0
	for _, sh := range s.shards {
		st := sh.Stats()
		n := st.ClusteredRows + st.BufferedRows
		total += n
		if n > max {
			max = n
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(max) * float64(len(s.shards)) / float64(total), total
}

// watchBalance is the background watcher: it checks shard sizes every
// CheckInterval and rebalances when the skew threshold trips.
func (s *Store) watchBalance() {
	defer close(s.rebalDone)
	t := time.NewTicker(s.rebalCfg.CheckInterval)
	defer t.Stop()
	for {
		select {
		case <-s.rebalQuit:
			return
		case <-t.C:
			skew, total := s.Skew()
			if total < s.rebalCfg.MinRows || skew < s.rebalCfg.MaxSkew {
				continue
			}
			if err := s.Rebalance(); err != nil && !errors.Is(err, errClosed) {
				s.emit(Event{Shard: -1, Event: live.Event{Kind: live.EventError, Err: err}})
			}
		}
	}
}

// Rebalance re-learns the equi-depth cuts from a sample of the current
// shard contents and migrates rows between neighboring shards until the
// placement matches, publishing an exact intermediate partitioner after
// every single-cut move. Reads stay lock-free throughout (migration
// commit windows are retried, not waited on); writers block only for the
// commit windows. Stats().RowsMigrated and Generation track progress.
// Safe to call at any time; concurrent calls serialize.
func (s *Store) Rebalance() (err error) {
	s.rebalMu.Lock()
	defer s.rebalMu.Unlock()
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return errClosed
	}
	top := s.topo.Load()
	rp, ok := top.parts.(*RangePartitioner)
	if !ok {
		return errNotRange
	}

	start := time.Now()
	target := s.relearnCuts(rp)

	// Apply decreasing cuts left to right, then increasing cuts right to
	// left: with both the current and target vectors ascending, every
	// intermediate vector stays ascending (the clamps are belt and
	// braces). Each step migrates one contiguous range between neighbors.
	cur := append([]int64(nil), rp.cuts...)
	type cutStep struct {
		i int
		c int64
	}
	var steps []cutStep
	for i := 0; i < len(cur); i++ {
		c := target[i]
		if i > 0 && c < cur[i-1] {
			c = cur[i-1]
		}
		if c < cur[i] {
			steps = append(steps, cutStep{i, c})
			cur[i] = c
		}
	}
	for i := len(cur) - 1; i >= 0; i-- {
		c := target[i]
		if i < len(cur)-1 && c > cur[i+1] {
			c = cur[i+1]
		}
		if c > cur[i] {
			steps = append(steps, cutStep{i, c})
			cur[i] = c
		}
	}
	if len(steps) == 0 {
		return nil
	}

	moved := 0
	for _, st := range steps {
		n, err := s.moveCut(st.i, st.c)
		// Rows a step moved are migrated whether or not a later step (or
		// this step's persistence) fails, so account for them immediately:
		// Stats must agree with the published generation.
		moved += n
		s.rowsMigrated.Add(uint64(n))
		if m := s.metrics; m != nil {
			m.rowsMigrated.Add(uint64(n))
		}
		if err != nil {
			// The partitioner is at a consistent intermediate state: every
			// completed move published an exact placement. Report and stop.
			return fmt.Errorf("sharded: rebalance: %w", err)
		}
	}
	s.rebalances.Add(1)
	if m := s.metrics; m != nil {
		m.rebalances.Inc()
	}
	s.emit(Event{Shard: -1, Event: live.Event{
		Kind:       live.EventRebalance,
		Epoch:      s.topo.Load().gen,
		MergedRows: moved,
		Seconds:    time.Since(start).Seconds(),
	}})
	return nil
}

// relearnCuts samples every shard's current contents — clustered rows and
// buffered rows alike, weighted by shard size — and returns fresh
// equi-depth cut points for the partitioned dimension.
func (s *Store) relearnCuts(rp *RangePartitioner) []int64 {
	counts := make([]int, len(s.shards))
	handles := make([]*core.Tsunami, len(s.shards))
	total := 0
	for i, sh := range s.shards {
		handles[i] = sh.Index()
		counts[i] = handles[i].Store().NumRows() + handles[i].NumBuffered()
		total += counts[i]
	}
	if total == 0 {
		return append([]int64(nil), rp.cuts...)
	}
	sample := make([]int64, 0, s.rebalCfg.SampleSize)
	for i, idx := range handles {
		if counts[i] == 0 {
			continue
		}
		k := s.rebalCfg.SampleSize * counts[i] / total
		if k < 1 {
			k = 1
		}
		col := idx.Store().Column(rp.dim)
		buffered := idx.BufferedRows()
		m := len(col) + len(buffered)
		for t := 0; t < k; t++ {
			j := t * m / k
			if j < len(col) {
				sample = append(sample, col[j])
			} else {
				sample = append(sample, buffered[j-len(col)][rp.dim])
			}
		}
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	return cutsFromSorted(sample, len(s.shards))
}

// hook invokes the test-only mid-move hook.
func (s *Store) hook(stage string) {
	if s.moveHook != nil {
		s.moveHook(stage)
	}
}

// moveCut shifts cut i of the live range partitioner to c, migrating the
// affected rows between shards i and i+1. Callers hold rebalMu.
func (s *Store) moveCut(i int, c int64) (int, error) {
	top := s.topo.Load()
	rp := top.parts.(*RangePartitioner)
	old := rp.cuts[i]
	if c == old {
		return 0, nil
	}
	var src, dst int
	var lo, hi int64
	if c < old {
		// The boundary moves left: [c, old-1] leaves shard i for i+1.
		src, dst = i, i+1
		lo, hi = c, old-1
	} else {
		// The boundary moves right: [old, c-1] leaves shard i+1 for i.
		src, dst = i+1, i
		lo, hi = old, c-1
	}
	next := rp.WithCut(i, c)
	phaseStart := time.Now()

	// Phase 1 — prepare, concurrent with reads, writes, and other shards'
	// maintenance. Both migrating shards' own maintenance pauses so their
	// snapshot files cannot change under the crash protocol below.
	releaseDst := s.shards[dst].HoldMaintenance()
	defer releaseDst()
	ext, err := s.shards[src].PrepareExtract(rp.dim, lo, hi)
	if err != nil {
		return 0, err
	}
	defer ext.Release()

	// Declare intent: once this manifest is durable, Recover can
	// reconcile any half-persisted state of the two shard files (see
	// persist.go for the full case analysis).
	if s.snapshotDir != "" {
		if err := writeManifest(s.snapshotDir, rp.Spec(), top.gen, &pendingMove{
			CutIndex: i, NewCut: c, OldCut: old, Src: src, Dst: dst,
		}); err != nil {
			return 0, err
		}
		s.hook("pending")
	}

	if m := s.metrics; m != nil {
		m.prepareSeconds.RecordDuration(time.Since(phaseStart))
		phaseStart = time.Now()
	}

	// Phase 2 — commit: the only exclusive window. Writers wait on the
	// ingest gate; readers retry around the odd seqlock value. The window
	// does the tail replay, the moved-row handoff, and three pointer
	// stores — never an index rebuild.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, errClosed
	}
	s.migrating.Add(1) // odd: placement and routing are in flux
	moved, err := ext.Commit()
	if err == nil && len(moved) > 0 {
		if ierr := s.shards[dst].InsertBatch(moved); ierr != nil {
			// Put the rows back where the unchanged partitioner still
			// routes them rather than losing them.
			if rerr := s.shards[src].InsertBatch(moved); rerr != nil {
				ierr = errors.Join(ierr, fmt.Errorf("%d rows stranded: %w", len(moved), rerr))
			}
			err = ierr
		}
	}
	if err == nil {
		s.topo.Store(&topology{parts: next, gen: top.gen + 1})
	}
	s.migrating.Add(1) // even: stable again
	s.mu.Unlock()
	if m := s.metrics; m != nil {
		m.commitSeconds.RecordDuration(time.Since(phaseStart))
		phaseStart = time.Now()
	}
	if err != nil {
		return 0, fmt.Errorf("move cut %d (%d→%d): %w", i, old, c, err)
	}

	// Phase 3 — persist: destination (which gained rows) first, then the
	// source, then the clean manifest. Recover's reconciliation depends on
	// this order: the moved rows are durable in the destination before the
	// source's file can stop containing them. Both shards' maintenance is
	// still held here, so their snapshot loops cannot write files out of
	// this order; transient write failures are retried in place for the
	// same reason — once the holds release, a source-side loop write
	// jumping ahead of a still-missing destination file would be the one
	// state Recover cannot reconcile. If every retry fails the pending
	// manifest stays behind (recovering to the consistent pre-move
	// placement), and the residual risk is confined to that failure mode:
	// the source's later loop snapshots succeeding on a disk where these
	// writes did not.
	if s.snapshotDir != "" {
		err := s.persistMove(src, dst, next, top.gen+1)
		if m := s.metrics; m != nil {
			m.persistSeconds.RecordDuration(time.Since(phaseStart))
		}
		if err != nil {
			return len(moved), err
		}
	}
	return len(moved), nil
}

// persistMove writes a committed move's durable record — destination
// snapshot, source snapshot, clean manifest, in that order — retrying
// transient failures. Callers hold both shards' maintenance.
func (s *Store) persistMove(src, dst int, next *RangePartitioner, gen uint64) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 50 * time.Millisecond)
		}
		if err = writeShardSnapshot(s.snapshotDir, dst, s.shards[dst].Index(), gen); err != nil {
			continue
		}
		s.hook("dst-persisted")
		if err = writeShardSnapshot(s.snapshotDir, src, s.shards[src].Index(), gen); err != nil {
			continue
		}
		s.hook("src-persisted")
		if err = writeManifest(s.snapshotDir, next.Spec(), gen, nil); err != nil {
			continue
		}
		return nil
	}
	return fmt.Errorf("persist move (pending manifest left for recovery): %w", err)
}

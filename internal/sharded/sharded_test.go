package sharded

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/auggrid"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/gridtree"
	"repro/internal/index"
	"repro/internal/live"
	"repro/internal/query"
	"repro/internal/testutil"
)

func smallConfig() core.Config {
	return core.Config{
		GridTree: gridtree.Config{MaxDepth: 4},
		Grid: auggrid.OptimizeConfig{
			Eval:     auggrid.EvalConfig{SampleSize: 1024, MaxQueries: 30},
			MaxCells: 1 << 12,
			MaxIters: 2,
		},
		MinRowsForGrid: 256,
	}
}

// TestPartitionerProperties is the property test for both partitioners:
// every row lands on exactly one shard (a total, stable, in-range
// assignment), and routing is sound — for any query, the shard owning
// any matching row is in the routed set.
func TestPartitionerProperties(t *testing.T) {
	st := testutil.SmallTaxi(4000, 51)
	rng := rand.New(rand.NewSource(52))
	parts := map[string]Partitioner{
		"hash":  NewHash(0, 5),
		"range": LearnRange(st, 0, 5),
	}
	queries := testutil.RandomQueries(st, 120, 53)
	for name, p := range parts {
		t.Run(name, func(t *testing.T) {
			if got := p.NumShards(); got != 5 {
				t.Fatalf("NumShards = %d, want 5", got)
			}
			counts := make([]int, p.NumShards())
			row := make([]int64, st.NumDims())
			for i := 0; i < st.NumRows(); i++ {
				st.Row(i, row)
				s := p.ShardOf(row)
				if s < 0 || s >= p.NumShards() {
					t.Fatalf("row %d assigned to shard %d", i, s)
				}
				if again := p.ShardOf(row); again != s {
					t.Fatalf("row %d assignment unstable: %d then %d", i, s, again)
				}
				counts[s]++
			}
			total := 0
			for _, c := range counts {
				total += c
			}
			if total != st.NumRows() {
				t.Fatalf("assignments sum to %d rows, want %d", total, st.NumRows())
			}
			// Routing soundness: every matching row's shard is routed.
			for _, q := range queries {
				routed := map[int]bool{}
				for _, id := range p.Shards(q, nil) {
					routed[id] = true
				}
				for i := 0; i < st.NumRows(); i++ {
					st.Row(i, row)
					if q.MatchesRow(row) && !routed[p.ShardOf(row)] {
						t.Fatalf("query %s prunes shard %d which owns matching row %d", q, p.ShardOf(row), i)
					}
				}
			}
			// Fuzz rows outside the observed domain too.
			for i := 0; i < 2000; i++ {
				for j := range row {
					row[j] = rng.Int63n(3_000_000) - 1_000_000
				}
				if s := p.ShardOf(row); s < 0 || s >= p.NumShards() {
					t.Fatalf("out-of-domain row assigned to shard %d", s)
				}
			}
		})
	}
}

// TestRangePartitionerPruning checks the learned cuts produce balanced
// shards and that narrow range filters on the partitioned dimension route
// to few shards.
func TestRangePartitionerPruning(t *testing.T) {
	st := testutil.SmallTaxi(8000, 61)
	p := LearnRange(st, 0, 4)
	counts := make([]int, 4)
	row := make([]int64, st.NumDims())
	for i := 0; i < st.NumRows(); i++ {
		st.Row(i, row)
		counts[p.ShardOf(row)]++
	}
	for s, c := range counts {
		if c < st.NumRows()/8 || c > st.NumRows()/2 {
			t.Errorf("shard %d holds %d of %d rows — equi-depth cuts failed", s, c, st.NumRows())
		}
	}
	lo, hi := st.MinMax(0)
	narrow := query.NewCount(query.Filter{Dim: 0, Lo: lo, Hi: lo + (hi-lo)/20})
	if ids := p.Shards(narrow, nil); len(ids) > 2 {
		t.Errorf("narrow range on partition dim routed to %d of 4 shards", len(ids))
	}
	offDim := query.NewCount(query.Filter{Dim: 2, Lo: 0, Hi: 100})
	if ids := p.Shards(offDim, nil); len(ids) != 4 {
		t.Errorf("off-dimension filter routed to %d shards, want all 4", len(ids))
	}
}

// TestSpecRoundTrip checks partitioners survive the manifest spec.
func TestSpecRoundTrip(t *testing.T) {
	st := testutil.SmallTaxi(2000, 71)
	for _, p := range []Partitioner{NewHash(3, 7), LearnRange(st, 0, 6)} {
		back, err := p.Spec().Partitioner()
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if back.NumShards() != p.NumShards() {
			t.Fatalf("%s: round-trip shards %d, want %d", p, back.NumShards(), p.NumShards())
		}
		row := make([]int64, st.NumDims())
		for i := 0; i < 500; i++ {
			st.Row(i, row)
			if back.ShardOf(row) != p.ShardOf(row) {
				t.Fatalf("%s: round-trip assigns row %d differently", p, i)
			}
		}
	}
	if _, err := (Spec{Kind: "nope", N: 2}).Partitioner(); err == nil {
		t.Error("unknown spec kind accepted")
	}
	if _, err := (Spec{Kind: "range", N: 3, Cuts: []int64{5}}).Partitioner(); err == nil {
		t.Error("range spec with wrong cut count accepted")
	}
}

// TestShardedMatchesFullScan opens a sharded store over a table, checks
// every aggregate against a full scan, ingests more rows, and checks
// again — for both partitioners.
func TestShardedMatchesFullScan(t *testing.T) {
	st := testutil.SmallTaxi(6000, 81)
	work := testutil.SkewedQueries(st, 100, 82)
	for _, cfg := range []Config{
		{Shards: 4, Learned: true},
		{Shards: 3},
	} {
		s, err := Open(st, work, smallConfig(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Stats().ClusteredRows; got != 6000 {
			t.Fatalf("%s: shards hold %d rows, want 6000", s.Name(), got)
		}
		probe := append(testutil.RandomQueries(st, 80, 83), query.NewCount())
		testutil.CheckMatchesFullScan(t, s, st, probe)

		rng := rand.New(rand.NewSource(84))
		var extra [][]int64
		for i := 0; i < 300; i++ {
			extra = append(extra, []int64{
				rng.Int63n(1_000_000), rng.Int63n(1_100_000),
				rng.Int63n(1000), rng.Int63n(3000), 1 + rng.Int63n(6),
			})
		}
		if err := s.InsertBatch(extra); err != nil {
			t.Fatal(err)
		}
		truth := combined(t, st, extra)
		testutil.CheckMatchesFullScan(t, s, truth, probe)
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		if got := s.Stats().BufferedRows; got != 0 {
			t.Errorf("%s: %d rows buffered after Flush", s.Name(), got)
		}
		testutil.CheckMatchesFullScan(t, s, truth, probe)

		// Scatter-gather path must agree with the sequential path.
		for _, q := range probe[:20] {
			seq := s.Execute(q)
			par := s.ExecuteParallelOn(q, 4, nil)
			if par.Count != seq.Count || par.Sum != seq.Sum {
				t.Errorf("%s: scatter-gather (%d, %d) != sequential (%d, %d) on %s",
					s.Name(), par.Count, par.Sum, seq.Count, seq.Sum, q)
			}
		}
		// Malformed rows are errors, not partitioner panics.
		if err := s.Insert([]int64{1}); err == nil {
			t.Error("short row should be rejected")
		}
		if err := s.InsertBatch([][]int64{{1, 2}}); err == nil {
			t.Error("short batch row should be rejected")
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := s.Insert(make([]int64, st.NumDims())); err == nil {
			t.Error("Insert after Close should fail")
		}
	}
}

// TestShardedPruningCounted checks the router actually prunes shards for
// range queries on the learned partition dimension.
func TestShardedPruningCounted(t *testing.T) {
	st := testutil.SmallTaxi(6000, 91)
	s, err := Open(st, nil, smallConfig(), Config{Shards: 4, Learned: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	lo, hi := st.MinMax(0)
	for i := 0; i < 20; i++ {
		a := lo + int64(i)*(hi-lo)/40
		s.Execute(query.NewCount(query.Filter{Dim: 0, Lo: a, Hi: a + (hi-lo)/40}))
	}
	stats := s.Stats()
	if stats.Queries != 20 {
		t.Fatalf("queries = %d, want 20", stats.Queries)
	}
	if stats.ShardsPruned == 0 {
		t.Error("no shards pruned for narrow range queries on the partition dimension")
	}
	if stats.ShardsScanned+stats.ShardsPruned != 20*4 {
		t.Errorf("scanned(%d)+pruned(%d) != 80", stats.ShardsScanned, stats.ShardsPruned)
	}
}

// TestShardedSaveRecover checks the consistent multi-shard snapshot:
// buffered rows survive, the partitioner is reconstructed from the
// manifest, and the recovered store keeps serving and ingesting.
func TestShardedSaveRecover(t *testing.T) {
	st := testutil.SmallTaxi(5000, 101)
	work := testutil.SkewedQueries(st, 80, 102)
	s, err := Open(st, work, smallConfig(), Config{
		Shards:  3,
		Learned: true,
		Live:    live.Config{MergeThreshold: 1 << 20}, // keep rows buffered
	})
	if err != nil {
		t.Fatal(err)
	}
	var extra [][]int64
	for i := 0; i < 57; i++ {
		extra = append(extra, []int64{9_600_000 + int64(i), 9_600_050, 2, 2, 2})
	}
	if err := s.InsertBatch(extra); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "snap")
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Rows after the snapshot are lost by the "crash".
	if err := s.Insert([]int64{9_700_000, 9_700_000, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Recover(dir, work, Config{Live: live.Config{MergeThreshold: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.NumShards(); got != 3 {
		t.Fatalf("recovered %d shards, want 3", got)
	}
	if got, want := r.Partitioner().String(), s.Partitioner().String(); got != want {
		t.Errorf("recovered partitioner %s, want %s", got, want)
	}
	if got := r.Stats().BufferedRows; got != 57 {
		t.Errorf("recovered %d buffered rows, want 57", got)
	}
	q := query.NewCount(query.Filter{Dim: 0, Lo: 9_600_000, Hi: 9_699_999})
	if got := r.Execute(q).Count; got != 57 {
		t.Errorf("recovered count = %d, want 57", got)
	}
	truth := combined(t, st, extra)
	testutil.CheckMatchesFullScan(t, r, truth, testutil.RandomQueries(st, 40, 103))

	// The recovered store resumes normal life.
	if err := r.Insert([]int64{9_600_900, 9_600_950, 3, 3, 3}); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	q2 := query.NewCount(query.Filter{Dim: 0, Lo: 9_600_000, Hi: 9_799_999})
	if got := r.Execute(q2).Count; got != 58 {
		t.Errorf("post-merge count = %d, want 58", got)
	}

	// A directory without a manifest must be rejected.
	if _, err := Recover(t.TempDir(), nil, Config{}); err == nil {
		t.Error("Recover on an empty directory should fail")
	}
}

// TestShardedSnapshotDir checks the per-shard snapshot loops plus the
// open-time manifest keep SnapshotDir recoverable, including the final
// snapshots on Close.
func TestShardedSnapshotDir(t *testing.T) {
	st := testutil.SmallTaxi(4000, 111)
	dir := filepath.Join(t.TempDir(), "serve-snap")
	s, err := Open(st, nil, smallConfig(), Config{
		Shards:      2,
		Learned:     true,
		SnapshotDir: dir,
		Live: live.Config{
			MergeThreshold:   1 << 20,
			SnapshotInterval: 20 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 31; i++ {
		if err := s.Insert([]int64{9_800_000 + int64(i), 9_800_050, 4, 4, 4}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Snapshots < 2 {
		if time.Now().After(deadline) {
			t.Fatal("periodic shard snapshots did not run")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Close(); err != nil { // final snapshots flush the last state
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("manifest missing: %v", err)
	}
	r, err := Recover(dir, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	q := query.NewCount(query.Filter{Dim: 0, Lo: 9_800_000, Hi: 9_899_999})
	if got := r.Execute(q).Count; got != 31 {
		t.Errorf("recovered count = %d, want 31", got)
	}
}

// TestShardedCloseFinalSnapshotNoInterval pins the Close guarantee: a
// store opened with SnapshotDir but no periodic interval must still
// leave a recoverable directory after a clean shutdown — Close writes
// the final consistent snapshot itself.
func TestShardedCloseFinalSnapshotNoInterval(t *testing.T) {
	st := testutil.SmallTaxi(3000, 131)
	dir := filepath.Join(t.TempDir(), "close-snap")
	s, err := Open(st, nil, smallConfig(), Config{
		Shards:      2,
		Learned:     true,
		SnapshotDir: dir,
		Live:        live.Config{MergeThreshold: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 13; i++ {
		if err := s.Insert([]int64{9_900_000 + int64(i), 9_900_050, 5, 5, 5}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(dir, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	q := query.NewCount(query.Filter{Dim: 0, Lo: 9_900_000, Hi: 9_999_999})
	if got := r.Execute(q).Count; got != 13 {
		t.Errorf("recovered count = %d, want 13 (rows lost on Close)", got)
	}
}

// TestShardedRejectsShardSnapshotPath checks the one misconfiguration
// that would corrupt snapshots (all shards sharing one file) is refused.
func TestShardedRejectsShardSnapshotPath(t *testing.T) {
	st := testutil.SmallTaxi(1000, 121)
	_, err := Open(st, nil, smallConfig(), Config{
		Shards: 2,
		Live:   live.Config{SnapshotPath: "/tmp/x"},
	})
	if err == nil {
		t.Fatal("Open accepted Live.SnapshotPath")
	}
}

// combined appends extra rows to a copy of st (shared oracle helper).
func combined(t *testing.T, st *colstore.Store, extra [][]int64) *colstore.Store {
	t.Helper()
	return testutil.CombineRows(st, extra)
}

var _ index.Index = (*Store)(nil)

package sharded

import (
	"fmt"
	"time"

	"repro/internal/colstore"
	"repro/internal/obs"
	"repro/internal/query"
)

// ExecuteTrace answers q exactly like Execute while recording an
// explain-analyze trace: the router's pruning decision, a per-shard span
// (duration, rows/bytes scanned, regions routed) for every surviving
// shard, and the gather-merge cost. Shards execute sequentially on the
// calling goroutine — like Execute, and deliberately so: sequential
// spans attribute time to shards exactly, which is the point of a trace.
// Consistency matches Execute: the whole attempt retries if a migration
// commit window overlaps it (the trace is rebuilt from scratch on retry,
// so spans from a discarded attempt never leak into the result).
func (s *Store) ExecuteTrace(q query.Query) (colstore.ScanResult, *obs.QueryTrace) {
	start := time.Now()
	res, tr := s.executeTrace(q)
	s.workload.Record(q, time.Since(start), res.Count, res.PointsScanned, res.BytesTouched)
	return res, tr
}

// executeTrace is ExecuteTrace without workload-statistics recording; the
// collector's slow-query exemplar capture calls it so a capture cannot
// re-enter the collector.
func (s *Store) executeTrace(q query.Query) (colstore.ScanResult, *obs.QueryTrace) {
	tr := &obs.QueryTrace{Query: q.String()}
	total := time.Now()
	res := s.readStable(func(top *topology, scanned *int) colstore.ScanResult {
		// A seqlock retry discards the attempt; start the trace over.
		tr.Stages = tr.Stages[:0]
		tr.Shards = tr.Shards[:0]
		tr.Regions = 0

		start := time.Now()
		ids := top.parts.Shards(q, make([]int, 0, len(s.shards)))
		*scanned = len(ids)
		tr.AddStage("route", time.Since(start),
			fmt.Sprintf("%d of %d shards survive pruning (gen %d)", len(ids), len(s.shards), top.gen))

		start = time.Now()
		partials := make([]colstore.ScanResult, 0, len(ids))
		for _, id := range ids {
			shStart := time.Now()
			sub, shTr := s.shards[id].ExecuteTrace(q)
			partials = append(partials, sub)
			tr.Shards = append(tr.Shards, obs.ShardSpan{
				Shard:    id,
				Duration: time.Since(shStart),
				Rows:     sub.PointsScanned,
				Bytes:    sub.BytesTouched,
				Regions:  shTr.Regions,
			})
			tr.Regions += shTr.Regions
		}
		tr.AddStage("scan", time.Since(start), "")

		start = time.Now()
		var res colstore.ScanResult
		for _, p := range partials {
			res.Add(p)
		}
		tr.AddStage("merge", time.Since(start),
			fmt.Sprintf("%d partial aggregates", len(partials)))
		return res
	})
	tr.Total = time.Since(total)
	tr.Rows = res.PointsScanned
	tr.Bytes = res.BytesTouched
	return res, tr
}

// Package sharded partitions a table across N independent LiveStore
// shards, turning the single-writer serving mode into one that scales
// ingest with shard count and serves reads by scatter-gather.
//
// Rows are assigned to shards by a pluggable Partitioner — a mixed hash
// of one dimension by default (balanced, no tuning), or a learned
// range partitioning of the clustered dimension (LearnRange) that keeps
// range queries on that dimension inside few shards. Each shard is a
// complete LiveStore: its own epoch chain, copy-on-write ingest path,
// background merge, shift detector, and snapshot loop. Because the
// serialized section of an insert is per shard, writers to different
// shards never contend — the ingest bottleneck PR 2 left behind splits N
// ways, the same way NDN-DPDK scales forwarding by partitioning work
// across independent lock-free workers.
//
// Reads are routed: the partitioner prunes shards whose key range cannot
// intersect the query's filters, the survivors execute independently, and
// the partial aggregates merge (COUNT and SUM are sums; AVG ships as a
// sum+count pair in ScanResult, so it merges exactly too). Store
// implements the executor's intra-query interface, so an Executor with
// IntraQuery enabled scatters the surviving shards across its worker pool
// and gathers the partials — scatter-gather through the existing pool,
// no second scheduler.
//
// Consistency: each shard's reads are epoch-consistent and each batch is
// atomic within a shard, but a batch spanning shards becomes visible
// shard by shard — a concurrent reader can observe a cross-shard batch
// partially applied. Save takes a write-blocking cut across all shards
// (no batch is ever split across a snapshot), producing one manifest plus
// per-shard v2 snapshots that Recover reassembles.
//
// Placement is not fixed at open: an online rebalancer (rebalance.go)
// watches per-shard row counts, re-learns the range partitioner's
// equi-depth cuts when skewed ingest unbalances the shards, and migrates
// rows between neighbors — readers stay lock-free and exact through every
// migration (reads retry around a seqlock'd commit window), and the
// snapshot manifest carries a partitioner generation plus a write-intent
// record so a crash mid-migration recovers to a consistent placement
// (persist.go).
package sharded

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/query"
	"repro/internal/wstats"
)

// Config tunes a sharded store; zero values take defaults.
type Config struct {
	// Shards is the shard count (default runtime.NumCPU(), capped at 8).
	// Ignored when Partition is set.
	Shards int
	// Dim is the dimension the default partitioners cut on (default 0).
	Dim int
	// Learned selects learned range partitioning on Dim (equi-depth cuts
	// from the data, strong pruning for range filters on Dim) instead of
	// the default hash partitioning.
	Learned bool
	// Partition overrides Shards/Dim/Learned with a custom partitioner.
	Partition Partitioner
	// Live is the per-shard serving configuration (merge thresholds,
	// shift detection, snapshot interval). SnapshotPath must be unset —
	// shards derive their snapshot files from SnapshotDir.
	Live live.Config
	// SnapshotDir, when set, holds the store's manifest and per-shard
	// snapshot files: a full consistent snapshot is written on open, each
	// shard's periodic snapshot loop (Live.SnapshotInterval) refreshes
	// its own file, and Close writes the final state — so the directory
	// is recoverable at every point in the store's life. Save writes a
	// mutually consistent cut to any directory on demand.
	SnapshotDir string
	// Rebalance tunes the online shard rebalancer, which re-learns the
	// range partitioner's cuts and migrates rows between neighboring
	// shards when skewed ingest unbalances them. Requires the learned
	// range partitioner (Learned, or a Partition that is a
	// *RangePartitioner); see RebalanceConfig.
	Rebalance RebalanceConfig
	// OnEvent, when non-nil, receives every shard's maintenance events
	// tagged with the shard id. Invocations are serialized across shards.
	// It overrides Live.OnEvent.
	OnEvent func(Event)
	// Metrics, when non-nil, records router and rebalancer telemetry
	// (tsunami_sharded_*) and is forwarded to every shard's LiveStore, so
	// one registry carries the whole store: the shards share the unlabeled
	// query-path counter/histogram instances (aggregating across shards by
	// construction) and keep per-shard levels apart via {shard="i"}-labeled
	// gauges. It overrides Live.Metrics.
	Metrics *obs.Registry
	// Workload, when non-nil, records every routed query's shape,
	// end-to-end latency (scatter-gather included), and result selectivity
	// into the workload-statistics collector (internal/wstats). Recording
	// happens once at the router — any Live.Workload is cleared on the
	// per-shard configs so a fan-out query is never double-counted. The
	// collector is bound to the whole table: per-dimension domains are the
	// union across shards, the live row count sums the shards, and
	// slow-query exemplars trace through the router's non-recording trace
	// path. Nil keeps the hot path bare.
	Workload *wstats.Collector
	// CacheEntries, when > 0, enables a router-level result cache
	// (internal/qcache) with roughly that many entries, keyed on the
	// topology generation plus the per-shard epoch vector of the shards
	// the query routes to — so a hit is exactly the scatter-gather answer
	// at those epochs, and any ingest, merge, or migration on a routed
	// shard invalidates it for free. Any Live.CacheEntries is cleared on
	// the per-shard configs: caching below the router would hold the same
	// results twice and hit less. 0 disables the cache.
	CacheEntries int
}

// shardedMetrics caches the router's resolved instruments.
type shardedMetrics struct {
	latency        *obs.Histogram // end-to-end scatter-gather, incl. seqlock retries
	fanout         *obs.Histogram
	scanned        *obs.Counter
	pruned         *obs.Counter
	rebalances     *obs.Counter
	rowsMigrated   *obs.Counter
	prepareSeconds *obs.Histogram
	commitSeconds  *obs.Histogram
	persistSeconds *obs.Histogram
}

func newShardedMetrics(s *Store, r *obs.Registry) *shardedMetrics {
	if r == nil {
		return nil
	}
	m := &shardedMetrics{
		latency:        r.DurationHistogram(obs.MShardedQueryLatency),
		fanout:         r.Histogram(obs.MShardedFanout),
		scanned:        r.Counter(obs.MShardedShardsScanned),
		pruned:         r.Counter(obs.MShardedShardsPruned),
		rebalances:     r.Counter(obs.MShardedRebalances),
		rowsMigrated:   r.Counter(obs.MShardedRowsMigrated),
		prepareSeconds: r.DurationHistogram(obs.MShardedPrepareSeconds),
		commitSeconds:  r.DurationHistogram(obs.MShardedCommitSeconds),
		persistSeconds: r.DurationHistogram(obs.MShardedPersistSeconds),
	}
	r.GaugeFunc(obs.MShardedSkew, func() float64 {
		skew, _ := s.Skew()
		return skew
	})
	return m
}

func (c *Config) fill() {
	if c.Partition != nil {
		c.Shards = c.Partition.NumShards()
	} else if c.Shards <= 0 {
		c.Shards = runtime.NumCPU()
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
}

// Event is one shard's maintenance event. Store-level events — rebalances
// and rebalancer errors — carry Shard == -1.
type Event struct {
	Shard int
	live.Event
}

// errClosed reports writes after Close.
var errClosed = errors.New("sharded: store is closed")

// Store serves one logical table from N independent LiveStore shards.
//
// Concurrency: Execute/ExecuteParallelOn/Stats may be called from any
// number of goroutines and never block on writers or maintenance.
// Insert/InsertBatch may be called from any number of goroutines; batches
// to different shards proceed fully in parallel, and concurrent batches
// to one shard serialize only on that shard's short copy-on-write
// section. Save briefly blocks writers (not readers) to cut a mutually
// consistent snapshot.
// topology is the atomically-published routing state: the partitioner and
// its generation, which advances by one per completed cut migration.
type topology struct {
	parts Partitioner
	gen   uint64
}

type Store struct {
	// topo is the current partitioner + generation. Reads load it per
	// query; migrations publish a successor inside their commit window.
	topo   atomic.Pointer[topology]
	shards []*live.Store
	dims   int // table dimensionality, checked before rows reach the partitioner

	// migrating is a seqlock around a migration's commit window: odd while
	// the cross-shard epoch swaps and the topology publish are in flight.
	// Readers that overlap the window retry, so every returned aggregate
	// reflects a consistent placement — rows are never double-counted or
	// missed mid-migration.
	migrating atomic.Uint64

	// shardFinals records that each shard's own Close writes its final
	// snapshot into snapshotDir (periodic snapshots configured), so
	// Store.Close need not re-serialize everything with Save.
	shardFinals bool

	// mu is the ingest gate: InsertBatch holds it shared for the whole
	// batch (routing and inserting under one topology), Save, Close and a
	// migration's commit window hold it exclusively — so a snapshot cut
	// never splits a batch across shards, no write lands after Close, and
	// no write races a migration's row handoff.
	mu     sync.RWMutex
	closed bool

	// rebalMu serializes rebalances against each other, Save, and Close.
	// Lock order: rebalMu before mu.
	rebalMu   sync.Mutex
	rebalCfg  RebalanceConfig
	rebalQuit chan struct{} // nil when the watcher is off
	rebalDone chan struct{}
	// moveHook, when non-nil, is called between the stages of a cut
	// migration's persistence protocol; crash-recovery tests use it to
	// capture mid-move directory states.
	moveHook func(stage string)

	snapshotDir string
	onEvent     func(Event)
	metrics     *shardedMetrics   // nil when instrumentation is off
	workload    *wstats.Collector // nil when workload stats are off

	// cache is the router-level result cache; nil when disabled. The
	// counters alongside it are nil-safe obs instruments resolved once at
	// open (nil when metrics are off).
	cache          *qcache.Cache
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter

	emitMu sync.Mutex // serializes OnEvent across shards

	queries       atomic.Uint64
	inserts       atomic.Uint64
	shardsScanned atomic.Uint64
	shardsPruned  atomic.Uint64
	rebalances    atomic.Uint64
	rowsMigrated  atomic.Uint64

	closeOnce sync.Once
	closeErr  error
}

// Open partitions table's rows across shards, builds one Tsunami index
// per shard (each optimized for the slice of the workload its shard can
// see), and starts serving. bcfg is the per-shard index build
// configuration; its Parallelism is divided among the concurrent shard
// builds.
func Open(table *colstore.Store, workload []query.Query, bcfg core.Config, cfg Config) (*Store, error) {
	cfg.fill()
	if cfg.Live.SnapshotPath != "" {
		return nil, errors.New("sharded: set Config.SnapshotDir, not Live.SnapshotPath (shards derive their own files)")
	}
	parts := cfg.Partition
	if parts == nil {
		if cfg.Dim < 0 || cfg.Dim >= table.NumDims() {
			return nil, fmt.Errorf("sharded: partition dim %d out of range (table has %d dims)", cfg.Dim, table.NumDims())
		}
		if cfg.Learned {
			parts = LearnRange(table, cfg.Dim, cfg.Shards)
		} else {
			parts = NewHash(cfg.Dim, cfg.Shards)
		}
	}
	n := parts.NumShards()
	if n <= 0 {
		return nil, fmt.Errorf("sharded: partitioner reports %d shards", n)
	}

	// Assign rows, then build per-shard column stores in two passes (the
	// second writes straight into exactly-sized slices).
	d := table.NumDims()
	numRows := table.NumRows()
	assign := make([]int, numRows)
	counts := make([]int, n)
	row := make([]int64, d)
	for i := 0; i < numRows; i++ {
		table.Row(i, row)
		s := parts.ShardOf(row)
		if s < 0 || s >= n {
			return nil, fmt.Errorf("sharded: partitioner sent row %d to shard %d of %d", i, s, n)
		}
		assign[i] = s
		counts[s]++
	}
	shardCols := make([][][]int64, n)
	for s := 0; s < n; s++ {
		shardCols[s] = make([][]int64, d)
		for j := 0; j < d; j++ {
			shardCols[s][j] = make([]int64, 0, counts[s])
		}
	}
	for j := 0; j < d; j++ {
		col := table.Column(j)
		for i, s := range assign {
			shardCols[s][j] = append(shardCols[s][j], col[i])
		}
	}

	// Each shard optimizes only for the queries that can reach it, and
	// the shard builds share the machine: divide build parallelism.
	per := bcfg.Parallelism
	if per <= 0 {
		per = runtime.NumCPU()
	}
	per = per / n
	if per < 1 {
		per = 1
	}
	bcfg.Parallelism = per

	idxs := make([]*core.Tsunami, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			st, err := colstore.FromColumns(shardCols[s], table.Names())
			if err != nil {
				errs[s] = fmt.Errorf("sharded: shard %d: %w", s, err)
				return
			}
			idxs[s] = core.Build(st, shardWorkload(parts, s, workload), bcfg)
		}(s)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return openShards(parts, idxs, workload, cfg, 1)
}

// shardWorkload filters workload down to the queries that can touch
// shard s.
func shardWorkload(parts Partitioner, s int, workload []query.Query) []query.Query {
	var out []query.Query
	var buf []int
	for _, q := range workload {
		buf = parts.Shards(q, buf[:0])
		for _, id := range buf {
			if id == s {
				out = append(out, q)
				break
			}
		}
	}
	return out
}

// openShards wraps already-built per-shard indexes in LiveStores and
// assembles the Store. Shared by Open and Recover; gen seeds the
// partitioner generation (1 for a fresh store).
func openShards(parts Partitioner, idxs []*core.Tsunami, workload []query.Query, cfg Config, gen uint64) (*Store, error) {
	if cfg.Rebalance.CheckInterval > 0 {
		if _, ok := parts.(*RangePartitioner); !ok {
			return nil, errors.New("sharded: the rebalance watcher requires the learned range partitioner (Config.Learned)")
		}
	}
	cfg.Rebalance.fill()
	s := &Store{
		dims:        idxs[0].Store().NumDims(),
		snapshotDir: cfg.SnapshotDir,
		shardFinals: cfg.SnapshotDir != "" && cfg.Live.SnapshotInterval > 0,
		rebalCfg:    cfg.Rebalance,
		onEvent:     cfg.OnEvent,
	}
	s.topo.Store(&topology{parts: parts, gen: gen})
	s.metrics = newShardedMetrics(s, cfg.Metrics)
	if cfg.CacheEntries > 0 {
		s.cache = qcache.New(cfg.CacheEntries)
		if r := cfg.Metrics; r != nil {
			s.cacheHits = r.Counter(obs.MCacheHits)
			s.cacheMisses = r.Counter(obs.MCacheMisses)
			s.cacheEvictions = r.Counter(obs.MCacheEvictions)
			r.GaugeFunc(obs.MCacheEntries, func() float64 {
				return float64(s.cache.Len())
			})
		}
	}
	s.shards = make([]*live.Store, len(idxs))
	for i, idx := range idxs {
		lc := cfg.Live
		// Workload stats record once at the router (below); a collector on
		// the per-shard config would double-count every fan-out query. The
		// result cache likewise lives at the router only (see
		// Config.CacheEntries).
		lc.Workload = nil
		lc.CacheEntries = 0
		if cfg.Metrics != nil {
			lc.Metrics = cfg.Metrics
			lc.MetricsLabel = fmt.Sprintf(`{shard="%d"}`, i)
		}
		if cfg.SnapshotDir != "" {
			lc.SnapshotPath = shardFile(cfg.SnapshotDir, i)
		}
		if cfg.OnEvent != nil || cfg.SnapshotDir != "" {
			i := i
			dir := cfg.SnapshotDir
			// Config.OnEvent overrides a caller's Live.OnEvent (documented
			// on Config.OnEvent); with neither the wrapper exists only for
			// the generation stamps and forwards to the per-shard callback
			// the caller set, if any.
			forward := func(ev live.Event) {
				if cfg.OnEvent != nil {
					s.emit(Event{Shard: i, Event: ev})
				} else if cfg.Live.OnEvent != nil {
					cfg.Live.OnEvent(ev)
				}
			}
			lc.OnEvent = func(ev live.Event) {
				// Stamp the snapshot file the shard's loop just wrote with
				// the current partitioner generation (see persist.go; the
				// rebalancer pauses both migrating shards' maintenance, so
				// a loop write never races a generation change that
				// concerns its own shard).
				if ev.Kind == live.EventSnapshot && dir != "" {
					if err := writeShardGen(dir, i, s.topo.Load().gen); err != nil {
						forward(live.Event{Kind: live.EventError, Err: err})
					}
				}
				forward(ev)
			}
		}
		s.shards[i] = live.Open(idx, shardWorkload(parts, i, workload), lc)
	}
	if cfg.Workload != nil {
		s.workload = cfg.Workload
		st := idxs[0].Store()
		lo := make([]int64, st.NumDims())
		hi := make([]int64, st.NumDims())
		for d := range lo {
			lo[d], hi[d] = st.MinMax(d)
			for _, idx := range idxs[1:] {
				l, h := idx.Store().MinMax(d)
				if l < lo[d] {
					lo[d] = l
				}
				if h > hi[d] {
					hi[d] = h
				}
			}
		}
		s.workload.Bind(wstats.Binding{
			DimNames: st.Names(),
			DomainLo: lo,
			DomainHi: hi,
			Rows: func() uint64 {
				var total uint64
				for _, sh := range s.shards {
					idx := sh.Index()
					total += uint64(idx.Store().NumRows() + idx.NumBuffered())
				}
				return total
			},
			// Slow-query exemplars go through the non-recording trace path,
			// so a capture never re-records into the collector.
			Trace: func(q query.Query) *obs.QueryTrace {
				_, tr := s.executeTrace(q)
				return tr
			},
		})
	}
	// Seed the directory with a full consistent snapshot (shard files
	// first, manifest last), never a bare manifest: Recover must always
	// find a shard set matching the manifest's partitioner, even if the
	// process dies before the first periodic snapshot, and even when the
	// directory held an older store's files.
	if cfg.SnapshotDir != "" {
		if err := s.Save(cfg.SnapshotDir); err != nil {
			s.Close()
			return nil, err
		}
	}
	if cfg.Rebalance.CheckInterval > 0 {
		s.rebalQuit = make(chan struct{})
		s.rebalDone = make(chan struct{})
		go s.watchBalance()
	}
	return s, nil
}

// emit delivers one event to the configured callback, serialized.
func (s *Store) emit(ev Event) {
	if s.onEvent == nil {
		return
	}
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	s.onEvent(ev)
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// Partitioner returns the row→shard assignment currently in use (a
// rebalance publishes successors; see Generation).
func (s *Store) Partitioner() Partitioner { return s.topo.Load().parts }

// Generation returns the partitioner generation: it advances by one per
// completed cut migration.
func (s *Store) Generation() uint64 { return s.topo.Load().gen }

// Shard returns shard i's LiveStore, for inspection and tests. Mutating
// it directly bypasses the router — don't.
func (s *Store) Shard(i int) *live.Store { return s.shards[i] }

// countRoute records one successfully-routed query's pruning.
func (s *Store) countRoute(scanned int) {
	s.queries.Add(1)
	s.shardsScanned.Add(uint64(scanned))
	s.shardsPruned.Add(uint64(len(s.shards) - scanned))
	if m := s.metrics; m != nil {
		m.fanout.Record(int64(scanned))
		m.scanned.Add(uint64(scanned))
		m.pruned.Add(uint64(len(s.shards) - scanned))
	}
}

// readStable runs fn against a stable topology, seqlock-style: if a
// migration's commit window overlaps the attempt, the result is discarded
// and the read retried once the window closes. Reads therefore never
// block on a lock, yet never observe a half-migrated placement (rows
// counted twice in source and destination, or in neither). fn reports how
// many shards it scanned through scanned; pruning counters are updated
// only for the attempt whose result is returned.
func (s *Store) readStable(fn func(top *topology, scanned *int) colstore.ScanResult) colstore.ScanResult {
	m := s.metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	for attempt := 0; ; attempt++ {
		g := s.migrating.Load()
		if g&1 == 0 {
			var scanned int
			res := fn(s.topo.Load(), &scanned)
			if s.migrating.Load() == g {
				s.countRoute(scanned)
				if m != nil {
					// End-to-end scatter-gather latency, retries included —
					// this is the p99 a client of the sharded store sees.
					m.latency.RecordDuration(time.Since(start))
				}
				return res
			}
		}
		if attempt < 4 {
			runtime.Gosched()
		} else {
			// A migration commit is in flight; its cost is proportional to
			// the moved rows, so back off instead of burning a core.
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// Execute implements index.Index: route, execute the surviving shards on
// the calling goroutine, merge the partial aggregates. Lock-free (each
// shard read resolves that shard's current epoch; migration windows are
// retried, not waited on); use an Executor with IntraQuery for parallel
// scatter-gather.
func (s *Store) Execute(q query.Query) colstore.ScanResult {
	w := s.workload
	if w == nil {
		return s.executeRouted(q)
	}
	start := time.Now()
	res := s.executeRouted(q)
	w.Record(q, time.Since(start), res.Count, res.PointsScanned, res.BytesTouched)
	return res
}

func (s *Store) executeRouted(q query.Query) colstore.ScanResult {
	return s.readStable(func(top *topology, scanned *int) colstore.ScanResult {
		ids := top.parts.Shards(q, make([]int, 0, len(s.shards)))
		*scanned = len(ids)
		vec, ver, cok := s.cacheKey(top, ids)
		if cok {
			if res, hit := s.cache.Get(ver, vec, q); hit {
				s.cacheHits.Add(1)
				return res
			}
			s.cacheMisses.Add(1)
		}
		var res colstore.ScanResult
		if len(ids) == 1 {
			res = s.shards[ids[0]].Execute(q)
		} else {
			for _, id := range ids {
				res.Add(s.shards[id].Execute(q))
			}
		}
		s.cachePutRouted(ver, vec, q, res, cok)
		return res
	})
}

// cacheKey builds the router cache's version vector for a routed query:
// the topology generation followed by each routed shard's current epoch,
// in routing order. The generation pins the routing itself (same
// generation → same partitioner → same ids for this query) and the
// epochs pin each shard's contents, so a vector identifies exactly one
// scatter-gather answer. cok=false means the cache is off.
func (s *Store) cacheKey(top *topology, ids []int) (vec []uint64, ver uint64, cok bool) {
	if s.cache == nil {
		return nil, 0, false
	}
	vec = make([]uint64, 0, len(ids)+1)
	vec = append(vec, top.gen)
	for _, id := range ids {
		vec = append(vec, s.shards[id].Epoch())
	}
	return vec, qcache.Digest(vec), true
}

// cachePutRouted stores a scatter-gather result under the version vector
// captured before the shard executes. If any routed shard published
// between the capture and the execute, the merged result may mix epochs —
// but then the current vector has already moved past vec (epochs are
// monotonic within a generation, and every shard replacement bumps the
// generation), so the entry can never be served: a lookup recomputes the
// vector from current state and element-wise comparison rejects it. Put
// is therefore always safe without a second epoch read.
func (s *Store) cachePutRouted(ver uint64, vec []uint64, q query.Query, res colstore.ScanResult, cok bool) {
	if !cok {
		return
	}
	if s.cache.Put(ver, vec, q, res) {
		s.cacheEvictions.Add(1)
	}
}

// ExecuteParallelOn answers one query scatter-gather style: the surviving
// shards are drained by up to workers tasks handed to submit (typically
// an Executor's worker pool; see the executor's intra-query interface),
// and the partial aggregates are merged. Tasks never block on other
// tasks, so running them on a shared pool cannot deadlock. A nil submit
// spawns one goroutine per task.
func (s *Store) ExecuteParallelOn(q query.Query, workers int, submit func(task func())) colstore.ScanResult {
	w := s.workload
	if w == nil {
		return s.executeParallelRouted(q, workers, submit)
	}
	start := time.Now()
	res := s.executeParallelRouted(q, workers, submit)
	w.Record(q, time.Since(start), res.Count, res.PointsScanned, res.BytesTouched)
	return res
}

func (s *Store) executeParallelRouted(q query.Query, workers int, submit func(task func())) colstore.ScanResult {
	return s.readStable(func(top *topology, scanned *int) colstore.ScanResult {
		ids := top.parts.Shards(q, make([]int, 0, len(s.shards)))
		*scanned = len(ids)
		vec, ver, cok := s.cacheKey(top, ids)
		if cok {
			if res, hit := s.cache.Get(ver, vec, q); hit {
				s.cacheHits.Add(1)
				return res
			}
			s.cacheMisses.Add(1)
		}
		w := workers
		if w > len(ids) {
			w = len(ids)
		}
		if w <= 1 {
			var res colstore.ScanResult
			if len(ids) == 1 {
				res = s.shards[ids[0]].Execute(q)
			} else {
				for _, id := range ids {
					res.Add(s.shards[id].Execute(q))
				}
			}
			s.cachePutRouted(ver, vec, q, res, cok)
			return res
		}
		sub := submit
		if sub == nil {
			sub = func(task func()) { go task() }
		}
		// Dynamic assignment: shard result sizes are skewed (pruning can
		// leave one big shard and several small ones), so workers pull the
		// next shard from a shared cursor.
		var cursor atomic.Int64
		partial := make([]colstore.ScanResult, w)
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			k := k
			sub(func() {
				defer wg.Done()
				var res colstore.ScanResult
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(ids) {
						break
					}
					res.Add(s.shards[ids[i]].Execute(q))
				}
				partial[k] = res
			})
		}
		wg.Wait()
		var res colstore.ScanResult
		for _, p := range partial {
			res.Add(p)
		}
		s.cachePutRouted(ver, vec, q, res, cok)
		return res
	})
}

// EstimateCost bounds q's plan-time scan cost: the sum of the routed
// (unpruned) shards' own estimates under the current topology (see
// core.Tsunami.EstimateCost). The Executor's admission budgets use it to
// reject over-budget queries before any shard scans.
func (s *Store) EstimateCost(q query.Query) (rows, bytes uint64) {
	top := s.topo.Load()
	ids := top.parts.Shards(q, make([]int, 0, len(s.shards)))
	for _, id := range ids {
		r, b := s.shards[id].EstimateCost(q)
		rows += r
		bytes += b
	}
	return rows, bytes
}

// Name implements index.Index.
func (s *Store) Name() string {
	return fmt.Sprintf("ShardedStore[%s]", s.topo.Load().parts.String())
}

// SizeBytes implements index.Index: the sum of every shard's current
// epoch.
func (s *Store) SizeBytes() uint64 {
	var total uint64
	for _, sh := range s.shards {
		total += sh.SizeBytes()
	}
	return total
}

// CurrentIndex implements the executor's IndexSource: the Store itself,
// so an Executor built over it routes and scatter-gathers per query and
// picks up every shard's epoch swaps.
func (s *Store) CurrentIndex() index.Index { return s }

// Insert ingests one row into its shard. It is visible to queries when
// Insert returns.
func (s *Store) Insert(row []int64) error {
	if len(row) != s.dims {
		return fmt.Errorf("sharded: row has %d values, table has %d dims", len(row), s.dims)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return errClosed
	}
	// Routing under the ingest gate: a migration publishes its topology
	// while holding the gate exclusively, so the shard chosen here always
	// matches the placement the routing layer advertises.
	if err := s.shards[s.topo.Load().parts.ShardOf(row)].Insert(row); err != nil {
		return err
	}
	s.inserts.Add(1)
	return nil
}

// InsertBatch splits rows by owning shard and ingests the pieces in
// parallel — one copy-on-write step per touched shard, no cross-shard
// lock, so concurrent batches scale with shard count. Within each shard
// the batch is atomic; across shards it becomes visible shard by shard.
func (s *Store) InsertBatch(rows [][]int64) error {
	if len(rows) == 0 {
		return nil
	}
	// Validate arity up front: the partitioner indexes into rows, and a
	// malformed row must be an error, not a panic (matching the
	// unsharded ingest path).
	for _, row := range rows {
		if len(row) != s.dims {
			return fmt.Errorf("sharded: row has %d values, table has %d dims", len(row), s.dims)
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return errClosed
	}
	// Group under the ingest gate so the partitioner that routes the rows
	// is the one their placement is published against (a migration cannot
	// swap topologies mid-batch: it needs the gate exclusively). Shard ids
	// are dense, so group into a shard-indexed slice (no map hashing on
	// the ingest hot path).
	parts := s.topo.Load().parts
	groups := make([][][]int64, len(s.shards))
	touched := 0
	for _, row := range rows {
		id := parts.ShardOf(row)
		if groups[id] == nil {
			touched++
		}
		groups[id] = append(groups[id], row)
	}
	var err error
	if touched == 1 {
		for id, sub := range groups {
			if sub != nil {
				err = s.shards[id].InsertBatch(sub)
				break
			}
		}
	} else {
		// One sub-batch runs on the calling goroutine; the rest fan out.
		errs := make([]error, 0, touched)
		var wg sync.WaitGroup
		var errMu sync.Mutex
		insert := func(id int, sub [][]int64) {
			if e := s.shards[id].InsertBatch(sub); e != nil {
				errMu.Lock()
				errs = append(errs, fmt.Errorf("shard %d: %w", id, e))
				errMu.Unlock()
			}
		}
		localID := -1
		for id, sub := range groups {
			if sub == nil {
				continue
			}
			if localID < 0 {
				localID = id
				continue
			}
			id, sub := id, sub
			wg.Add(1)
			go func() {
				defer wg.Done()
				insert(id, sub)
			}()
		}
		insert(localID, groups[localID])
		wg.Wait()
		err = errors.Join(errs...)
	}
	if err != nil {
		return err
	}
	s.inserts.Add(uint64(len(rows)))
	return nil
}

// Flush folds every shard's buffered rows into its clustered layout, in
// parallel, and returns when all shards are clean.
func (s *Store) Flush() error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		i, sh := i, sh
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := sh.Flush(); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Stats is a point-in-time summary of a sharded store.
type Stats struct {
	Shards      int
	Partitioner string
	// Generation is the partitioner generation; it advances by one per
	// completed cut migration.
	Generation uint64

	// Queries counts routed queries; ShardsScanned and ShardsPruned sum,
	// per query, how many shards executed vs. were pruned by the router
	// (ShardsScanned/Queries is the mean fan-out).
	Queries       uint64
	Inserts       uint64
	ShardsScanned uint64
	ShardsPruned  uint64

	// Rebalances counts completed rebalance cycles; RowsMigrated sums the
	// rows they moved between shards.
	Rebalances   uint64
	RowsMigrated uint64

	// Cache is the router-level result cache's counters; all-zero when
	// disabled.
	Cache qcache.Stats

	// Sums over shards.
	ClusteredRows   int
	BufferedRows    int
	Merges          uint64
	Reoptimizations uint64
	Snapshots       uint64

	// PerShard holds each shard's own stats, indexed by shard id.
	PerShard []live.Stats
}

// Stats reports current counters. Safe from any goroutine.
func (s *Store) Stats() Stats {
	top := s.topo.Load()
	st := Stats{
		Shards:        len(s.shards),
		Partitioner:   top.parts.String(),
		Generation:    top.gen,
		Queries:       s.queries.Load(),
		Inserts:       s.inserts.Load(),
		ShardsScanned: s.shardsScanned.Load(),
		ShardsPruned:  s.shardsPruned.Load(),
		Rebalances:    s.rebalances.Load(),
		RowsMigrated:  s.rowsMigrated.Load(),
		Cache:         s.cache.Stats(),
		PerShard:      make([]live.Stats, len(s.shards)),
	}
	for i, sh := range s.shards {
		ls := sh.Stats()
		st.PerShard[i] = ls
		st.ClusteredRows += ls.ClusteredRows
		st.BufferedRows += ls.BufferedRows
		st.Merges += ls.Merges
		st.Reoptimizations += ls.Reoptimizations
		st.Snapshots += ls.Snapshots
	}
	return st
}

// Close stops ingest, closes every shard in parallel, and — when the
// store was opened with SnapshotDir — writes a final consistent
// snapshot of the shards' last state there, so the directory is always
// recoverable after a clean shutdown (with or without a periodic
// snapshot interval). Reads against the Store remain valid after Close.
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		// Stop the rebalance watcher first, then wait out any in-flight
		// rebalance (it holds rebalMu end to end) before tearing the
		// shards down under it.
		if s.rebalQuit != nil {
			close(s.rebalQuit)
			<-s.rebalDone
		}
		s.rebalMu.Lock()
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.rebalMu.Unlock()
		errs := make([]error, len(s.shards), len(s.shards)+1)
		var wg sync.WaitGroup
		for i, sh := range s.shards {
			i, sh := i, sh
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := sh.Close(); err != nil {
					errs[i] = fmt.Errorf("shard %d: %w", i, err)
				}
			}()
		}
		wg.Wait()
		// With periodic snapshots on, each shard's Close already wrote its
		// final state into the directory (ingest stopped first, so the
		// union is a consistent cut); otherwise write the cut ourselves.
		if s.snapshotDir != "" && !s.shardFinals {
			errs = append(errs, s.Save(s.snapshotDir))
		}
		s.closeErr = errors.Join(errs...)
	})
	return s.closeErr
}

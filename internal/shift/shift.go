// Package shift implements the workload-shift detection the paper leaves
// as future work (§8): Tsunami "could detect when an existing query type
// disappears, a new query type appears, or when the relative frequencies
// of query types change". The Detector fingerprints the sample workload an
// index was optimized for — query types keyed by filtered-dimension set
// with selectivity-embedding centroids — then watches the live query
// stream over a sliding window and reports when re-optimization is
// warranted.
package shift

import (
	"math"

	"repro/internal/colstore"
	"repro/internal/gridtree"
	"repro/internal/query"
)

// Config tunes detection sensitivity; zero values take defaults.
type Config struct {
	// WindowSize is the number of recent queries compared against the
	// optimized workload (default 256).
	WindowSize int
	// NovelFracThreshold triggers when this fraction of the window matches
	// no known query type (default 0.25).
	NovelFracThreshold float64
	// FreqDriftThreshold triggers when the total variation distance
	// between the optimized and observed type-frequency distributions
	// exceeds it (default 0.35).
	FreqDriftThreshold float64
	// Eps is the embedding-distance radius for matching a query to a type,
	// the same scale as the Grid Tree's DBSCAN eps (default 0.2).
	Eps float64
	// MinObserved suppresses triggering before the window has seen this
	// many queries (default WindowSize/2).
	MinObserved int
	// SelDriftThreshold, when > 0, also triggers on result-selectivity
	// drift: the live workload-statistics layer can feed each matched
	// query's *observed* result selectivity back through ObserveResult,
	// and Analyze compares the per-type running means against baselines
	// probed from the data the index was fingerprinted on. This catches
	// drift the embedding match cannot see — the same query shapes
	// hitting very different amounts of data, e.g. after skewed ingest —
	// because the embedding is probed against the frozen fingerprint
	// sample while ObserveResult reflects the data being served now.
	// Zero (the default) keeps Report.SelDrift informational only.
	SelDriftThreshold float64
}

func (c *Config) fill() {
	if c.WindowSize <= 0 {
		c.WindowSize = 256
	}
	if c.NovelFracThreshold == 0 {
		c.NovelFracThreshold = 0.25
	}
	if c.FreqDriftThreshold == 0 {
		c.FreqDriftThreshold = 0.35
	}
	if c.Eps == 0 {
		c.Eps = 0.2
	}
	if c.MinObserved == 0 {
		c.MinObserved = c.WindowSize / 2
	}
}

// typeProfile is one optimized query type: its dimension set and the
// centroid of its selectivity embeddings.
type typeProfile struct {
	dimKey   string
	centroid []float64
	baseFreq float64 // fraction of the optimized workload
	// baseSel is the type's mean full-conjunction result selectivity over
	// the fingerprint sample — the baseline ObserveResult drifts against.
	baseSel float64
}

// Detector watches a query stream for drift from the optimized workload.
type Detector struct {
	cfg      Config
	st       *colstore.Store
	sample   []int
	profiles []typeProfile

	// Sliding window of type assignments; -1 = novel.
	window []int
	pos    int
	filled bool
	seen   int

	// Per-type observed result selectivity (running mean with a capped
	// step, i.e. an EWMA after minSelObs observations), fed by
	// ObserveResult.
	obsSel  []float64
	obsSelN []int
}

// minSelObs is how many ObserveResult samples a type needs before its
// selectivity drift participates in Analyze.
const minSelObs = 8

// NewDetector fingerprints the workload the index was optimized for.
// Queries are clustered into types exactly as the Grid Tree does (§4.3.1).
func NewDetector(st *colstore.Store, optimized []query.Query, cfg Config) *Detector {
	cfg.fill()
	d := &Detector{cfg: cfg, st: st, sample: sampleRows(st.NumRows(), 2000)}
	typed, numTypes := gridtree.ClusterQueryTypes(st, optimized, cfg.Eps)

	sums := make(map[int][]float64)
	counts := make(map[int]int)
	keys := make(map[int]string)
	selSums := make(map[int]float64)
	for _, q := range typed {
		emb := d.embed(q)
		if s := sums[q.Type]; s == nil {
			sums[q.Type] = append([]float64(nil), emb...)
		} else {
			for i := range s {
				s[i] += emb[i]
			}
		}
		counts[q.Type]++
		keys[q.Type] = q.DimSetKey()
		selSums[q.Type] += d.querySelectivity(q)
	}
	for ty := 0; ty < numTypes; ty++ {
		n := counts[ty]
		if n == 0 {
			continue
		}
		c := sums[ty]
		for i := range c {
			c[i] /= float64(n)
		}
		d.profiles = append(d.profiles, typeProfile{
			dimKey:   keys[ty],
			centroid: c,
			baseFreq: float64(n) / float64(len(typed)),
			baseSel:  selSums[ty] / float64(n),
		})
	}
	d.window = make([]int, cfg.WindowSize)
	d.obsSel = make([]float64, len(d.profiles))
	d.obsSelN = make([]int, len(d.profiles))
	return d
}

// querySelectivity probes the full conjunction's selectivity over the
// fingerprint sample — the per-type baseline for result-selectivity
// drift. Unlike embed's per-filter probes, this is the fraction of rows
// the whole query matches, which is directly comparable to the observed
// matched/served ratio ObserveResult feeds.
func (d *Detector) querySelectivity(q query.Query) float64 {
	if len(d.sample) == 0 {
		return 1
	}
	cols := make([][]int64, len(q.Filters))
	for i, f := range q.Filters {
		cols[i] = d.st.Column(f.Dim)
	}
	match := 0
	for _, r := range d.sample {
		ok := true
		for i, f := range q.Filters {
			if v := cols[i][r]; v < f.Lo || v > f.Hi {
				ok = false
				break
			}
		}
		if ok {
			match++
		}
	}
	return float64(match) / float64(len(d.sample))
}

// embed computes the per-filtered-dimension selectivity embedding.
func (d *Detector) embed(q query.Query) []float64 {
	out := make([]float64, len(q.Filters))
	for i, f := range q.Filters {
		out[i] = d.selectivity(f)
	}
	return out
}

func (d *Detector) selectivity(f query.Filter) float64 {
	if len(d.sample) == 0 {
		return 1
	}
	col := d.st.Column(f.Dim)
	match := 0
	for _, r := range d.sample {
		if v := col[r]; v >= f.Lo && v <= f.Hi {
			match++
		}
	}
	return float64(match) / float64(len(d.sample))
}

// Observe records one live query and returns its matched type index, or
// -1 if it matches no optimized type.
func (d *Detector) Observe(q query.Query) int {
	ty := d.match(q)
	d.window[d.pos] = ty
	d.pos++
	if d.pos == len(d.window) {
		d.pos = 0
		d.filled = true
	}
	d.seen++
	return ty
}

// ObserveResult feeds one served query's observed result selectivity
// (matched rows over table rows) for the type Observe assigned it.
// Negative types (novel queries) are ignored — they already count toward
// NovelFrac. The per-type estimate is a running mean whose step caps at
// 1/16, so it tracks a moving target like an EWMA once warmed up.
func (d *Detector) ObserveResult(ty int, sel float64) {
	if ty < 0 || ty >= len(d.obsSel) {
		return
	}
	d.obsSelN[ty]++
	n := d.obsSelN[ty]
	if n > 16 {
		n = 16
	}
	d.obsSel[ty] += (sel - d.obsSel[ty]) / float64(n)
}

// match assigns a query to the nearest profile with the same dimension set
// within Eps, or -1.
func (d *Detector) match(q query.Query) int {
	key := q.DimSetKey()
	emb := d.embed(q)
	best, bestDist := -1, d.cfg.Eps
	for i, p := range d.profiles {
		if p.dimKey != key || len(p.centroid) != len(emb) {
			continue
		}
		dist := 0.0
		for k := range emb {
			dd := emb[k] - p.centroid[k]
			dist += dd * dd
		}
		dist = math.Sqrt(dist)
		if dist <= bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}

// Report summarizes the window.
type Report struct {
	// NovelFrac is the fraction of the window matching no optimized type.
	NovelFrac float64
	// FreqDrift is the total variation distance between the optimized and
	// observed type-frequency distributions.
	FreqDrift float64
	// MissingTypes lists optimized types absent from the window.
	MissingTypes []int
	// SelDrift is the largest absolute gap between a type's observed
	// result selectivity (ObserveResult) and its fingerprint-time
	// baseline, over types with enough observations. Always reported;
	// only triggers when Config.SelDriftThreshold > 0.
	SelDrift float64
	// ShiftDetected reports whether any enabled threshold was crossed.
	ShiftDetected bool
}

// Analyze inspects the current window.
func (d *Detector) Analyze() Report {
	n := len(d.window)
	if !d.filled {
		n = d.pos
	}
	var rep Report
	if n == 0 || d.seen < d.cfg.MinObserved {
		return rep
	}
	counts := make([]int, len(d.profiles))
	novel := 0
	for i := 0; i < n; i++ {
		if d.window[i] < 0 {
			novel++
		} else {
			counts[d.window[i]]++
		}
	}
	rep.NovelFrac = float64(novel) / float64(n)
	// Total variation distance between base and observed frequencies,
	// with novel queries counted as mass on a fresh type.
	tv := rep.NovelFrac
	for i, p := range d.profiles {
		obs := float64(counts[i]) / float64(n)
		tv += math.Abs(obs - p.baseFreq)
		if counts[i] == 0 {
			rep.MissingTypes = append(rep.MissingTypes, i)
		}
	}
	rep.FreqDrift = tv / 2
	for i, p := range d.profiles {
		if d.obsSelN[i] < minSelObs {
			continue
		}
		if drift := math.Abs(d.obsSel[i] - p.baseSel); drift > rep.SelDrift {
			rep.SelDrift = drift
		}
	}
	rep.ShiftDetected = rep.NovelFrac > d.cfg.NovelFracThreshold ||
		rep.FreqDrift > d.cfg.FreqDriftThreshold ||
		(d.cfg.SelDriftThreshold > 0 && rep.SelDrift > d.cfg.SelDriftThreshold)
	return rep
}

// NumTypes returns the number of fingerprinted query types.
func (d *Detector) NumTypes() int { return len(d.profiles) }

func sampleRows(n, want int) []int {
	if n <= want {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, want)
	stride := n / want
	for i := range out {
		out[i] = i * stride
	}
	return out
}

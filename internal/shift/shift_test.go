package shift

import (
	"testing"

	"repro/internal/query"

	"repro/internal/datasets"
	"repro/internal/workload"
)

// interleave reorders Generate's type-blocked output into a round-robin
// stream, as a live mixed workload would arrive.
func interleave(qs []query.Query, numTypes int) []query.Query {
	per := len(qs) / numTypes
	out := make([]query.Query, 0, len(qs))
	for k := 0; k < per; k++ {
		for ty := 0; ty < numTypes; ty++ {
			out = append(out, qs[ty*per+k])
		}
	}
	return out
}

func detectorFixture(t *testing.T) (*Detector, []workload.TypeSpec, *datasets.Dataset) {
	t.Helper()
	ds := datasets.TPCH(20000, 1)
	types := workload.TPCHTypes()
	optimized := workload.Generate(ds.Store, types, 40, 2)
	det := NewDetector(ds.Store, optimized, Config{WindowSize: 100, MinObserved: 50})
	return det, types, ds
}

func TestNoShiftOnSameWorkload(t *testing.T) {
	det, types, ds := detectorFixture(t)
	live := interleave(workload.Generate(ds.Store, types, 40, 99), len(types))
	for _, q := range live {
		det.Observe(q)
	}
	rep := det.Analyze()
	if rep.ShiftDetected {
		t.Errorf("false positive: same templates flagged as shift (%+v)", rep)
	}
	if rep.NovelFrac > 0.25 {
		t.Errorf("novel fraction %.2f too high for the same workload", rep.NovelFrac)
	}
}

func TestShiftOnNewQueryTypes(t *testing.T) {
	det, _, ds := detectorFixture(t)
	live := interleave(workload.Generate(ds.Store, workload.TPCHShiftedTypes(), 40, 100), 5)
	for _, q := range live {
		det.Observe(q)
	}
	rep := det.Analyze()
	if !rep.ShiftDetected {
		t.Errorf("missed shift to entirely new query types (%+v)", rep)
	}
}

func TestShiftOnFrequencyChange(t *testing.T) {
	det, types, ds := detectorFixture(t)
	// Replay only the first type, over and over: frequencies drift from
	// 5 balanced types to 1 dominant.
	one := workload.Generate(ds.Store, types[:1], 200, 101)
	for _, q := range one {
		det.Observe(q)
	}
	rep := det.Analyze()
	if rep.FreqDrift < 0.3 {
		t.Errorf("frequency drift %.2f too low for a single-type takeover", rep.FreqDrift)
	}
	if !rep.ShiftDetected {
		t.Error("missed frequency-change shift")
	}
	if len(rep.MissingTypes) == 0 {
		t.Error("expected missing types to be reported")
	}
}

func TestNoTriggerBeforeMinObserved(t *testing.T) {
	det, _, ds := detectorFixture(t)
	live := workload.Generate(ds.Store, workload.TPCHShiftedTypes(), 2, 102)
	for _, q := range live {
		det.Observe(q)
	}
	if det.Analyze().ShiftDetected {
		t.Error("triggered before MinObserved")
	}
}

func TestObserveReturnsTypeMatch(t *testing.T) {
	det, types, ds := detectorFixture(t)
	same := workload.Generate(ds.Store, types, 5, 103)
	matched := 0
	for _, q := range same {
		if det.Observe(q) >= 0 {
			matched++
		}
	}
	if matched < len(same)*3/4 {
		t.Errorf("only %d/%d same-template queries matched a type", matched, len(same))
	}
	if det.NumTypes() < 4 {
		t.Errorf("detector fingerprinted %d types, want ≈5", det.NumTypes())
	}
}

func TestWindowSlides(t *testing.T) {
	det, types, ds := detectorFixture(t)
	// Fill the window with shifted queries, then flush it with original
	// ones: the report must recover.
	shifted := workload.Generate(ds.Store, workload.TPCHShiftedTypes(), 40, 104)
	for _, q := range shifted {
		det.Observe(q)
	}
	if !det.Analyze().ShiftDetected {
		t.Fatal("setup: shift not detected")
	}
	orig := interleave(workload.Generate(ds.Store, types, 60, 105), len(types))
	for _, q := range orig {
		det.Observe(q)
	}
	rep := det.Analyze()
	if rep.ShiftDetected {
		t.Errorf("window did not slide back to normal (%+v)", rep)
	}
}

// TestSelectivityDrift exercises the ObserveResult channel: identical
// query shapes whose observed result selectivity departs from the
// fingerprint-time baseline must raise Report.SelDrift, and trigger only
// when Config.SelDriftThreshold enables it.
func TestSelectivityDrift(t *testing.T) {
	ds := datasets.TPCH(20000, 1)
	types := workload.TPCHTypes()
	optimized := workload.Generate(ds.Store, types, 40, 2)
	live := interleave(workload.Generate(ds.Store, types, 40, 99), len(types))

	baseline := func(cfg Config) (*Detector, Report) {
		det := NewDetector(ds.Store, optimized, cfg)
		for _, q := range live {
			ty := det.Observe(q)
			det.ObserveResult(ty, det.querySelectivity(q))
		}
		return det, det.Analyze()
	}

	// Feeding back the probed selectivities themselves: no drift.
	_, rep := baseline(Config{WindowSize: 100, MinObserved: 50, SelDriftThreshold: 0.3})
	if rep.SelDrift > 0.15 {
		t.Errorf("SelDrift %.2f on undrifted feedback", rep.SelDrift)
	}
	if rep.ShiftDetected {
		t.Errorf("false positive with undrifted selectivities (%+v)", rep)
	}

	// Same shapes, but every query now observes near-total selectivity —
	// as after heavily skewed ingest concentrated the data under them.
	drifted := NewDetector(ds.Store, optimized, Config{WindowSize: 100, MinObserved: 50})
	for _, q := range live {
		drifted.ObserveResult(drifted.Observe(q), 0.95)
	}
	rep = drifted.Analyze()
	if rep.SelDrift < 0.3 {
		t.Errorf("SelDrift %.2f, want the near-1 observed selectivity to register", rep.SelDrift)
	}
	if rep.ShiftDetected {
		t.Errorf("SelDrift must stay informational at the zero threshold (%+v)", rep)
	}

	armed := NewDetector(ds.Store, optimized, Config{WindowSize: 100, MinObserved: 50, SelDriftThreshold: 0.25})
	for _, q := range live {
		armed.ObserveResult(armed.Observe(q), 0.95)
	}
	if rep := armed.Analyze(); !rep.ShiftDetected {
		t.Errorf("armed threshold missed selectivity drift (%+v)", rep)
	}
}

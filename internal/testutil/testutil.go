// Package testutil provides shared fixtures for index correctness tests:
// small seeded datasets, workloads, and the one invariant every index must
// satisfy — agreeing with a full scan on every query.
package testutil

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/colstore"
	"repro/internal/index"
	"repro/internal/query"
)

// SmallTaxi builds a compact correlated dataset shaped like the Taxi data
// (time, tightly-correlated pair, skewed distance, low-cardinality
// passenger count) without importing the datasets package, keeping
// baseline-package tests dependency-light.
func SmallTaxi(n int, seed int64) *colstore.Store {
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]int64, 5)
	for j := range cols {
		cols[j] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		t := rng.Int63n(1_000_000)
		dist := int64(rng.ExpFloat64()*300) + 10
		cols[0][i] = t
		cols[1][i] = t + 5 + rng.Int63n(120) // tight monotone with time
		cols[2][i] = dist
		cols[3][i] = 250 + dist*5/2 + rng.Int63n(200) // tight monotone with dist
		cols[4][i] = 1 + rng.Int63n(6)                // low cardinality
	}
	st, err := colstore.FromColumns(cols, []string{"t", "t2", "dist", "fare", "pax"})
	if err != nil {
		panic(err)
	}
	return st
}

// RandomQueries draws n random conjunctive range/equality queries over the
// store, mixing COUNT and SUM.
func RandomQueries(st *colstore.Store, n int, seed int64) []query.Query {
	rng := rand.New(rand.NewSource(seed))
	out := make([]query.Query, n)
	for i := range out {
		var fs []query.Filter
		for j := 0; j < st.NumDims(); j++ {
			r := rng.Float64()
			if r < 0.45 {
				continue
			}
			lo, hi := st.MinMax(j)
			if r < 0.55 {
				// Equality on a sampled value.
				v := st.Value(rng.Intn(st.NumRows()), j)
				fs = append(fs, query.Filter{Dim: j, Lo: v, Hi: v})
				continue
			}
			span := hi - lo
			a := lo + rng.Int63n(span+1)
			w := span / int64(2+rng.Intn(30))
			fs = append(fs, query.Filter{Dim: j, Lo: a, Hi: a + w})
		}
		if len(fs) == 0 {
			lo, hi := st.MinMax(0)
			fs = append(fs, query.Filter{Dim: 0, Lo: lo, Hi: (lo + hi) / 2})
		}
		if rng.Intn(3) == 0 {
			out[i] = query.NewSum(rng.Intn(st.NumDims()), fs...)
		} else {
			out[i] = query.NewCount(fs...)
		}
	}
	return out
}

// RandomGroupedQueries draws n random grouped aggregates (GROUP BY) over
// the store: random filters like RandomQueries, a random grouping
// dimension (the low-cardinality last dimension of SmallTaxi exercises
// the equality-mask fast path, the others the generic path), and a mix
// of grouped COUNT and grouped SUM.
func RandomGroupedQueries(st *colstore.Store, n int, seed int64) []query.Query {
	rng := rand.New(rand.NewSource(seed))
	base := RandomQueries(st, n, seed+1)
	out := make([]query.Query, n)
	for i, q := range base {
		out[i] = q.By(rng.Intn(st.NumDims()))
	}
	return out
}

// GroupedOracle answers a grouped query by a naive full row-at-a-time
// scan of truth — the independent reference every grouped execution path
// must agree with. Only the groups are computed (scan accounting is a
// property of the execution strategy, not the answer).
func GroupedOracle(truth *colstore.Store, q query.Query) colstore.GroupedResult {
	gd := q.GroupDim()
	cells := make(map[int64]*colstore.GroupAgg)
	row := make([]int64, truth.NumDims())
	for i := 0; i < truth.NumRows(); i++ {
		truth.Row(i, row)
		if !q.MatchesRow(row) {
			continue
		}
		c := cells[row[gd]]
		if c == nil {
			c = &colstore.GroupAgg{Key: row[gd]}
			cells[row[gd]] = c
		}
		c.Count++
		if q.Agg == query.Sum {
			c.Sum += row[q.AggDim]
		}
	}
	res := colstore.GroupedResult{GroupDim: gd}
	for _, c := range cells {
		res.Groups = append(res.Groups, *c)
	}
	sort.Slice(res.Groups, func(a, b int) bool { return res.Groups[a].Key < res.Groups[b].Key })
	return res
}

// CheckGroupedMatchesFullScan fails the test unless exec agrees with
// GroupedOracle on every query: same group keys, same per-group count
// and sum. name labels failures (the grouped entry points are methods on
// concrete stores, not index.Index, so the execution is passed as a
// function).
func CheckGroupedMatchesFullScan(t *testing.T, name string, exec func(query.Query) colstore.GroupedResult, truth *colstore.Store, qs []query.Query) {
	t.Helper()
	for i, q := range qs {
		want := GroupedOracle(truth, q)
		got := exec(q)
		if len(got.Groups) != len(want.Groups) {
			t.Fatalf("%s query %d (%s): %d groups, want %d", name, i, q, len(got.Groups), len(want.Groups))
		}
		for j, g := range got.Groups {
			w := want.Groups[j]
			if g.Key != w.Key || g.Count != w.Count || g.Sum != w.Sum {
				t.Fatalf("%s query %d (%s) group %d: got {key=%d count=%d sum=%d}, want {key=%d count=%d sum=%d}",
					name, i, q, j, g.Key, g.Count, g.Sum, w.Key, w.Count, w.Sum)
			}
		}
	}
}

// SkewedQueries draws a workload with two distinct query types, one
// concentrated in the top of dim 0 (recency skew) and one uniform over dim
// 1 — the Fig 2 scenario.
func SkewedQueries(st *colstore.Store, n int, seed int64) []query.Query {
	rng := rand.New(rand.NewSource(seed))
	lo0, hi0 := st.MinMax(0)
	lo1, hi1 := st.MinMax(1)
	out := make([]query.Query, n)
	for i := range out {
		if i%2 == 0 {
			// Narrow queries over the most recent 10% of dim 0.
			base := hi0 - (hi0-lo0)/10
			a := base + rng.Int63n((hi0-base)+1)
			w := (hi0 - lo0) / 200
			q := query.NewCount(query.Filter{Dim: 0, Lo: a, Hi: a + w})
			q.Type = 0
			out[i] = q
		} else {
			a := lo1 + rng.Int63n(hi1-lo1+1)
			w := (hi1 - lo1) / 10
			q := query.NewCount(query.Filter{Dim: 1, Lo: a, Hi: a + w})
			q.Type = 1
			out[i] = q
		}
	}
	return out
}

// CheckMatchesFullScan fails the test unless idx agrees with a full scan of
// truth on every query.
func CheckMatchesFullScan(t *testing.T, idx index.Index, truth *colstore.Store, qs []query.Query) {
	t.Helper()
	full := index.NewFullScan(truth)
	for i, q := range qs {
		want := full.Execute(q)
		got := idx.Execute(q)
		if got.Count != want.Count || got.Sum != want.Sum {
			t.Fatalf("%s query %d (%s): got (count=%d sum=%d), want (count=%d sum=%d)",
				idx.Name(), i, q, got.Count, got.Sum, want.Count, want.Sum)
		}
	}
}

// CombineRows returns a copy of st with extra rows appended — the ground
// truth builder for ingest tests. Panics on malformed rows (test fixture
// bugs, not runtime conditions).
func CombineRows(st *colstore.Store, extra [][]int64) *colstore.Store {
	d := st.NumDims()
	cols := make([][]int64, d)
	for j := 0; j < d; j++ {
		cols[j] = append(append([]int64(nil), st.Column(j)...), make([]int64, len(extra))...)
		for i, row := range extra {
			cols[j][st.NumRows()+i] = row[j]
		}
	}
	out, err := colstore.FromColumns(cols, st.Names())
	if err != nil {
		panic(err)
	}
	return out
}

// Oracle is the naive full-scan aggregate reference for serving tests:
// writers record every row they ingest (concurrently, if they like), and
// Check verifies an index agrees with a full scan over everything
// recorded so far. It is the machine-checked ground truth the randomized
// harnesses quiesce against.
type Oracle struct {
	base *colstore.Store

	mu   sync.Mutex
	rows [][]int64
}

// NewOracle starts an oracle over the store's initial rows.
func NewOracle(base *colstore.Store) *Oracle { return &Oracle{base: base} }

// Add records ingested rows (defensively copied). Safe for concurrent
// writers.
func (o *Oracle) Add(rows ...[]int64) {
	copied := make([][]int64, len(rows))
	for i, r := range rows {
		copied[i] = append([]int64(nil), r...)
	}
	o.mu.Lock()
	o.rows = append(o.rows, copied...)
	o.mu.Unlock()
}

// NumRows returns the oracle's current row count (base + recorded).
func (o *Oracle) NumRows() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.base.NumRows() + len(o.rows)
}

// Snapshot materializes the oracle's current rows as a store. Callers
// must have quiesced their writers (rows recorded after the snapshot are
// not in it).
func (o *Oracle) Snapshot() *colstore.Store {
	o.mu.Lock()
	rows := append([][]int64(nil), o.rows...)
	o.mu.Unlock()
	return CombineRows(o.base, rows)
}

// Check fails the test unless idx agrees with a full scan of the oracle's
// current rows on every query — and, via the parameterless COUNT(*) that
// is always appended, that no row was lost or duplicated.
func (o *Oracle) Check(t *testing.T, idx index.Index, qs []query.Query) {
	t.Helper()
	truth := o.Snapshot()
	probe := make([]query.Query, 0, len(qs)+1+truth.NumDims())
	probe = append(probe, qs...)
	probe = append(probe, query.NewCount())
	for j := 0; j < truth.NumDims(); j++ {
		probe = append(probe, query.NewSum(j))
	}
	CheckMatchesFullScan(t, idx, truth, probe)
}

// CheckGrouped fails the test unless exec agrees with a grouped full
// scan of the oracle's current rows on every query, plus an unfiltered
// grouped COUNT per dimension (so no row can be lost or duplicated in
// any grouping).
func (o *Oracle) CheckGrouped(t *testing.T, name string, exec func(query.Query) colstore.GroupedResult, qs []query.Query) {
	t.Helper()
	truth := o.Snapshot()
	probe := make([]query.Query, 0, len(qs)+truth.NumDims())
	probe = append(probe, qs...)
	for j := 0; j < truth.NumDims(); j++ {
		probe = append(probe, query.NewCount().By(j))
	}
	CheckGroupedMatchesFullScan(t, name, exec, truth, probe)
}

//go:build !amd64 || purego

package colstore

import "repro/internal/query"

// Portable build: no SIMD kernels are compiled in (non-amd64 targets, or
// the `purego` build tag used by CI to keep the fallback path covered on
// AVX2 machines). ScanRange always dispatches to the branch-free portable
// kernels; the toggles are inert.

// SIMDAvailable reports whether SIMD kernels are compiled in and
// supported by this CPU. Always false in this build.
func SIMDAvailable() bool { return false }

// SetSIMD is a no-op in this build; it reports false (SIMD was not and
// cannot be enabled).
func SetSIMD(on bool) bool { return false }

// KernelName identifies the kernel tier ScanRange dispatches to.
func KernelName() string { return "portable" }

func simdEnabled() bool { return false }

func (s *Store) scanOneFilterSIMD(q query.Query, start, end int, res *ScanResult) {
	s.scanOneFilterPortable(q, start, end, res)
}

func (s *Store) scanManyFiltersSIMD(q query.Query, start, end int, res *ScanResult) {
	s.scanManyFiltersPortable(q, start, end, res)
}

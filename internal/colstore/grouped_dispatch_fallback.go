//go:build !amd64 || purego

package colstore

// Portable build: the grouped pipeline's mask-word operations always run
// on the portable helpers.

func maskWordsInto(col []int64, out []uint64, nw int, lo int64, width uint64) uint64 {
	return maskWordsPortable(col, out, nw, lo, width)
}

func maskWordsAndInto(col []int64, out []uint64, nw int, lo int64, width uint64) uint64 {
	return maskWordsAndPortable(col, out, nw, lo, width)
}

func maskedSumWords(agg []int64, mask []uint64, nw int) int64 {
	return maskedSumPortable(agg, mask, nw)
}

func groupCountCodes(codes []byte, sel []uint64, nw int, splat []byte, counts []uint64, n int) {
	groupCountCodesPortable(codes, sel, nw, counts)
}

// groupScanBlockOneFilterCodes has no fused portable form; callers fall
// back to mask words plus groupCountCodes.
func groupScanBlockOneFilterCodes(col []int64, codes []byte, lo int64, width uint64, splat []byte, counts []uint64, n int) bool {
	return false
}

//go:build !purego

#include "textflag.h"

// AVX2 grouped-count kernels over byte-coded group columns.
//
// When a group column's value range fits in a byte window (see
// groupCodesFor), grouping degenerates to counting byte matches: the
// store keeps codes[i] = value[i] - base, the accumulator keeps one
// count per code, and a block is consumed by comparing the 32 code
// bytes of each chunk against up to 8 splatted key codes at once
// (VPCMPEQB — 32 rows per instruction instead of the mask kernels' 4),
// masking with the selection, and subtracting the 0xFF/0x00 compare
// result from a per-key byte accumulator (acc - (-1) = +1 per match).
// Byte accumulators are widened to the uint64 counts with VPSADBW
// against zero at the end of the call, so callers must bound the rows
// per call such that no byte lane can exceed 255 increments:
// groupCountCodesAVX2 takes nWords <= 127 (each lane sees at most 2
// increments per word), groupScanOneFilterCodesAVX2 takes n <= 8128
// (at most 1 per 32-row chunk). Both are called per 1024-row block,
// far under either bound.
//
// The selection bits are expanded to byte lanes with the broadcast/
// shuffle/bit-select idiom: VPBROADCASTD replicates 32 mask bits to
// every dword lane, VPSHUFB routes byte b of the mask to byte lanes
// 8b..8b+7, VPAND with the 0x8040201008040201 bit-select pattern
// isolates each lane's bit, and VPCMPEQB against the same pattern
// turns it into a full 0xFF/0x00 byte mask.

DATA groupBitSel<>+0(SB)/8, $0x8040201008040201
DATA groupBitSel<>+8(SB)/8, $0x8040201008040201
DATA groupBitSel<>+16(SB)/8, $0x8040201008040201
DATA groupBitSel<>+24(SB)/8, $0x8040201008040201
GLOBL groupBitSel<>(SB), RODATA|NOPTR, $32

DATA groupSelShuf<>+0(SB)/8, $0x0000000000000000
DATA groupSelShuf<>+8(SB)/8, $0x0101010101010101
DATA groupSelShuf<>+16(SB)/8, $0x0202020202020202
DATA groupSelShuf<>+24(SB)/8, $0x0303030303030303
GLOBL groupSelShuf<>(SB), RODATA|NOPTR, $32

// func groupCountCodesAVX2(codes *byte, sel *uint64, nWords int, splat *byte, counts *uint64)
// Adds, for each of 8 key codes, the number of selected rows whose byte
// code equals that key. splat holds the 8 keys as 32-byte broadcast
// blocks (key k at splat[k*32:]; pad unused keys with 0xFF, which no
// code reaches); counts is 8 uint64 slots added into in place. sel is
// nWords 64-row selection masks over codes[0:nWords*64]. nWords <= 127.
TEXT ·groupCountCodesAVX2(SB), NOSPLIT, $0-40
	MOVQ codes+0(FP), SI
	MOVQ sel+8(FP), DI
	MOVQ nWords+16(FP), R13
	MOVQ splat+24(FP), R12
	MOVQ counts+32(FP), R10
	VMOVDQU groupBitSel<>(SB), Y2
	VMOVDQU groupSelShuf<>(SB), Y3
	VPXOR Y8, Y8, Y8            // 8 per-key byte accumulators
	VPXOR Y9, Y9, Y9
	VPXOR Y10, Y10, Y10
	VPXOR Y11, Y11, Y11
	VPXOR Y12, Y12, Y12
	VPXOR Y13, Y13, Y13
	VPXOR Y14, Y14, Y14
	VPXOR Y15, Y15, Y15
	TESTQ R13, R13
	JZ   gcc_done
gcc_word:
	MOVQ (DI), R11
	TESTQ R11, R11
	JZ   gcc_skip
	PREFETCHT0 1024(SI)

	// Rows 0..31: selection bits 0..31.
	VPBROADCASTD (DI), Y6
	VPSHUFB Y3, Y6, Y6
	VPAND Y2, Y6, Y6
	VPCMPEQB Y2, Y6, Y6         // 0xFF per selected row
	VMOVDQU (SI), Y4            // 32 codes
	VPCMPEQB (R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y8, Y8
	VPCMPEQB 32(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y9, Y9
	VPCMPEQB 64(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y10, Y10
	VPCMPEQB 96(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y11, Y11
	VPCMPEQB 128(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y12, Y12
	VPCMPEQB 160(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y13, Y13
	VPCMPEQB 192(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y14, Y14
	VPCMPEQB 224(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y15, Y15

	// Rows 32..63: selection bits 32..63.
	VPBROADCASTD 4(DI), Y6
	VPSHUFB Y3, Y6, Y6
	VPAND Y2, Y6, Y6
	VPCMPEQB Y2, Y6, Y6
	VMOVDQU 32(SI), Y4
	VPCMPEQB (R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y8, Y8
	VPCMPEQB 32(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y9, Y9
	VPCMPEQB 64(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y10, Y10
	VPCMPEQB 96(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y11, Y11
	VPCMPEQB 128(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y12, Y12
	VPCMPEQB 160(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y13, Y13
	VPCMPEQB 192(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y14, Y14
	VPCMPEQB 224(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y15, Y15

	ADDQ $64, SI
	ADDQ $8, DI
	DECQ R13
	JNZ  gcc_word
	JMP  gcc_done
gcc_skip:
	ADDQ $64, SI
	ADDQ $8, DI
	DECQ R13
	JNZ  gcc_word
gcc_done:
	// Widen the byte accumulators (VPSADBW vs zero: 4 qword partial sums
	// per register), reduce each to a scalar, add into counts.
	VPXOR Y5, Y5, Y5
	VPSADBW Y5, Y8, Y8
	VPSADBW Y5, Y9, Y9
	VPSADBW Y5, Y10, Y10
	VPSADBW Y5, Y11, Y11
	VPSADBW Y5, Y12, Y12
	VPSADBW Y5, Y13, Y13
	VPSADBW Y5, Y14, Y14
	VPSADBW Y5, Y15, Y15
	VEXTRACTI128 $1, Y8, X7
	VPADDQ X7, X8, X8
	VPSRLDQ $8, X8, X7
	VPADDQ X7, X8, X8
	VEXTRACTI128 $1, Y9, X7
	VPADDQ X7, X9, X9
	VPSRLDQ $8, X9, X7
	VPADDQ X7, X9, X9
	VEXTRACTI128 $1, Y10, X7
	VPADDQ X7, X10, X10
	VPSRLDQ $8, X10, X7
	VPADDQ X7, X10, X10
	VEXTRACTI128 $1, Y11, X7
	VPADDQ X7, X11, X11
	VPSRLDQ $8, X11, X7
	VPADDQ X7, X11, X11
	VEXTRACTI128 $1, Y12, X7
	VPADDQ X7, X12, X12
	VPSRLDQ $8, X12, X7
	VPADDQ X7, X12, X12
	VEXTRACTI128 $1, Y13, X7
	VPADDQ X7, X13, X13
	VPSRLDQ $8, X13, X7
	VPADDQ X7, X13, X13
	VEXTRACTI128 $1, Y14, X7
	VPADDQ X7, X14, X14
	VPSRLDQ $8, X14, X7
	VPADDQ X7, X14, X14
	VEXTRACTI128 $1, Y15, X7
	VPADDQ X7, X15, X15
	VPSRLDQ $8, X15, X7
	VPADDQ X7, X15, X15
	VZEROUPPER
	MOVQ X8, AX
	ADDQ AX, (R10)
	MOVQ X9, AX
	ADDQ AX, 8(R10)
	MOVQ X10, AX
	ADDQ AX, 16(R10)
	MOVQ X11, AX
	ADDQ AX, 24(R10)
	MOVQ X12, AX
	ADDQ AX, 32(R10)
	MOVQ X13, AX
	ADDQ AX, 40(R10)
	MOVQ X14, AX
	ADDQ AX, 48(R10)
	MOVQ X15, AX
	ADDQ AX, 56(R10)
	RET

// func groupScanOneFilterCodesAVX2(col *int64, codes *byte, n int, lo int64, width uint64, splat *byte, counts *uint64)
// Fused single-filter grouped COUNT: evaluates the range predicate
// uint64(col[i]-lo) <= width over 32-row chunks (same bias trick as the
// flat kernels), collects the 32 match bits in a GPR via the VMOVMSKPD
// chain — which runs on scalar ports, overlapping the vector compares —
// and consumes the chunk's byte codes against 8 splatted keys exactly
// like groupCountCodesAVX2, without materializing mask words. n must be
// a multiple of 32 and at most 8128; splat/counts as in
// groupCountCodesAVX2.
TEXT ·groupScanOneFilterCodesAVX2(SB), NOSPLIT, $8-56
	MOVQ col+0(FP), SI
	MOVQ codes+8(FP), DX
	MOVQ n+16(FP), R13
	MOVQ splat+40(FP), R12
	MOVQ counts+48(FP), R10
	MOVQ $0x8000000000000000, R11
	MOVQ lo+24(FP), AX
	SUBQ R11, AX                // lo' = lo - 2^63
	MOVQ AX, X0
	VPBROADCASTQ X0, Y0
	MOVQ width+32(FP), AX
	ADDQ R11, AX                // width' = width + 2^63
	MOVQ AX, X1
	VPBROADCASTQ X1, Y1
	VMOVDQU groupBitSel<>(SB), Y2
	VMOVDQU groupSelShuf<>(SB), Y3
	VPXOR Y8, Y8, Y8            // 8 per-key byte accumulators
	VPXOR Y9, Y9, Y9
	VPXOR Y10, Y10, Y10
	VPXOR Y11, Y11, Y11
	VPXOR Y12, Y12, Y12
	VPXOR Y13, Y13, Y13
	VPXOR Y14, Y14, Y14
	VPXOR Y15, Y15, Y15
gsf_chunk:
	CMPQ R13, $32
	JL   gsf_done
	// Fully unrolled 8x4-lane match-mask build: collect NON-match bits
	// with immediate shifts (a CL shift is 3 uops on Intel; $imm is 1)
	// and complement once at the end. The GPR chain runs on scalar
	// ports, overlapping the vector compares.
	VMOVDQU (SI), Y4
	VPSUBQ Y0, Y4, Y4           // u = v - lo'
	VPCMPGTQ Y1, Y4, Y4         // all-ones on NON-match lanes
	VMOVMSKPD Y4, R9            // non-match bits 0..3
	VMOVDQU 32(SI), Y4
	VPSUBQ Y0, Y4, Y4
	VPCMPGTQ Y1, Y4, Y4
	VMOVMSKPD Y4, AX
	SHLQ $4, AX
	ORQ  AX, R9
	VMOVDQU 64(SI), Y4
	VPSUBQ Y0, Y4, Y4
	VPCMPGTQ Y1, Y4, Y4
	VMOVMSKPD Y4, AX
	SHLQ $8, AX
	ORQ  AX, R9
	VMOVDQU 96(SI), Y4
	VPSUBQ Y0, Y4, Y4
	VPCMPGTQ Y1, Y4, Y4
	VMOVMSKPD Y4, AX
	SHLQ $12, AX
	ORQ  AX, R9
	VMOVDQU 128(SI), Y4
	VPSUBQ Y0, Y4, Y4
	VPCMPGTQ Y1, Y4, Y4
	VMOVMSKPD Y4, AX
	SHLQ $16, AX
	ORQ  AX, R9
	VMOVDQU 160(SI), Y4
	VPSUBQ Y0, Y4, Y4
	VPCMPGTQ Y1, Y4, Y4
	VMOVMSKPD Y4, AX
	SHLQ $20, AX
	ORQ  AX, R9
	VMOVDQU 192(SI), Y4
	VPSUBQ Y0, Y4, Y4
	VPCMPGTQ Y1, Y4, Y4
	VMOVMSKPD Y4, AX
	SHLQ $24, AX
	ORQ  AX, R9
	VMOVDQU 224(SI), Y4
	VPSUBQ Y0, Y4, Y4
	VPCMPGTQ Y1, Y4, Y4
	VMOVMSKPD Y4, AX
	SHLQ $28, AX
	ORQ  AX, R9
	PREFETCHT0 1024(SI)
	PREFETCHT0 1088(SI)
	PREFETCHT0 1152(SI)
	PREFETCHT0 1216(SI)
	ADDQ $256, SI
	NOTL R9                     // 32 match bits (zero-extends)
	TESTL R9, R9
	JZ   gsf_next
	MOVL R9, selw-8(SP)
	VPBROADCASTD selw-8(SP), Y6
	VPSHUFB Y3, Y6, Y6
	VPAND Y2, Y6, Y6
	VPCMPEQB Y2, Y6, Y6         // 0xFF per matching row
	VMOVDQU (DX), Y4            // 32 codes
	PREFETCHT0 512(DX)
	VPCMPEQB (R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y8, Y8
	VPCMPEQB 32(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y9, Y9
	VPCMPEQB 64(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y10, Y10
	VPCMPEQB 96(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y11, Y11
	VPCMPEQB 128(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y12, Y12
	VPCMPEQB 160(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y13, Y13
	VPCMPEQB 192(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y14, Y14
	VPCMPEQB 224(R12), Y4, Y7
	VPAND Y6, Y7, Y7
	VPSUBB Y7, Y15, Y15
gsf_next:
	ADDQ $32, DX
	SUBQ $32, R13
	JMP  gsf_chunk
gsf_done:
	VPXOR Y5, Y5, Y5
	VPSADBW Y5, Y8, Y8
	VPSADBW Y5, Y9, Y9
	VPSADBW Y5, Y10, Y10
	VPSADBW Y5, Y11, Y11
	VPSADBW Y5, Y12, Y12
	VPSADBW Y5, Y13, Y13
	VPSADBW Y5, Y14, Y14
	VPSADBW Y5, Y15, Y15
	VEXTRACTI128 $1, Y8, X7
	VPADDQ X7, X8, X8
	VPSRLDQ $8, X8, X7
	VPADDQ X7, X8, X8
	VEXTRACTI128 $1, Y9, X7
	VPADDQ X7, X9, X9
	VPSRLDQ $8, X9, X7
	VPADDQ X7, X9, X9
	VEXTRACTI128 $1, Y10, X7
	VPADDQ X7, X10, X10
	VPSRLDQ $8, X10, X7
	VPADDQ X7, X10, X10
	VEXTRACTI128 $1, Y11, X7
	VPADDQ X7, X11, X11
	VPSRLDQ $8, X11, X7
	VPADDQ X7, X11, X11
	VEXTRACTI128 $1, Y12, X7
	VPADDQ X7, X12, X12
	VPSRLDQ $8, X12, X7
	VPADDQ X7, X12, X12
	VEXTRACTI128 $1, Y13, X7
	VPADDQ X7, X13, X13
	VPSRLDQ $8, X13, X7
	VPADDQ X7, X13, X13
	VEXTRACTI128 $1, Y14, X7
	VPADDQ X7, X14, X14
	VPSRLDQ $8, X14, X7
	VPADDQ X7, X14, X14
	VEXTRACTI128 $1, Y15, X7
	VPADDQ X7, X15, X15
	VPSRLDQ $8, X15, X7
	VPADDQ X7, X15, X15
	VZEROUPPER
	MOVQ X8, AX
	ADDQ AX, (R10)
	MOVQ X9, AX
	ADDQ AX, 8(R10)
	MOVQ X10, AX
	ADDQ AX, 16(R10)
	MOVQ X11, AX
	ADDQ AX, 24(R10)
	MOVQ X12, AX
	ADDQ AX, 32(R10)
	MOVQ X13, AX
	ADDQ AX, 40(R10)
	MOVQ X14, AX
	ADDQ AX, 48(R10)
	MOVQ X15, AX
	ADDQ AX, 56(R10)
	RET

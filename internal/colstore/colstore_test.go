package colstore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/query"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := FromRows([][]int64{
		{1, 10, 100},
		{2, 20, 200},
		{3, 30, 300},
		{4, 40, 400},
		{5, 50, 500},
	}, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFromRowsShape(t *testing.T) {
	s := testStore(t)
	if s.NumRows() != 5 || s.NumDims() != 3 {
		t.Fatalf("shape = (%d, %d), want (5, 3)", s.NumRows(), s.NumDims())
	}
	if s.Value(2, 1) != 30 {
		t.Errorf("Value(2,1) = %d, want 30", s.Value(2, 1))
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]int64{{1, 2}, {3}}, nil); err == nil {
		t.Error("ragged rows should fail")
	}
}

func TestFromColumnsMismatch(t *testing.T) {
	if _, err := FromColumns([][]int64{{1, 2}, {3}}, nil); err == nil {
		t.Error("mismatched column lengths should fail")
	}
	if _, err := FromColumns([][]int64{{1}}, []string{"a", "b"}); err == nil {
		t.Error("name count mismatch should fail")
	}
}

func TestMinMax(t *testing.T) {
	s := testStore(t)
	lo, hi := s.MinMax(1)
	if lo != 10 || hi != 50 {
		t.Errorf("MinMax(1) = (%d, %d), want (10, 50)", lo, hi)
	}
}

func TestReorder(t *testing.T) {
	s := testStore(t)
	if err := s.Reorder([]int{4, 3, 2, 1, 0}); err != nil {
		t.Fatal(err)
	}
	if s.Value(0, 0) != 5 || s.Value(4, 2) != 100 {
		t.Errorf("reorder wrong: row0=%d rowlast=%d", s.Value(0, 0), s.Value(4, 2))
	}
}

func TestReorderBadLength(t *testing.T) {
	s := testStore(t)
	if err := s.Reorder([]int{0, 1}); err == nil {
		t.Error("short permutation should fail")
	}
}

func TestCloneIndependent(t *testing.T) {
	s := testStore(t)
	c := s.Clone()
	c.Column(0)[0] = 999
	if s.Value(0, 0) == 999 {
		t.Error("clone shares storage with original")
	}
}

func TestScanRangeCount(t *testing.T) {
	s := testStore(t)
	q := query.NewCount(query.Filter{Dim: 0, Lo: 2, Hi: 4})
	var res ScanResult
	s.ScanRange(q, 0, s.NumRows(), false, &res)
	if res.Count != 3 {
		t.Errorf("count = %d, want 3", res.Count)
	}
	if res.PointsScanned != 5 {
		t.Errorf("scanned = %d, want 5", res.PointsScanned)
	}
}

func TestScanRangeSum(t *testing.T) {
	s := testStore(t)
	q := query.NewSum(2, query.Filter{Dim: 0, Lo: 2, Hi: 4})
	var res ScanResult
	s.ScanRange(q, 0, s.NumRows(), false, &res)
	if res.Sum != 900 {
		t.Errorf("sum = %d, want 900", res.Sum)
	}
}

func TestScanRangeExactSkipsChecks(t *testing.T) {
	s := testStore(t)
	// Deliberately wrong filter: exact=true must trust the range.
	q := query.NewCount(query.Filter{Dim: 0, Lo: 100, Hi: 200})
	var res ScanResult
	s.ScanRange(q, 1, 4, true, &res)
	if res.Count != 3 {
		t.Errorf("exact count = %d, want 3", res.Count)
	}
	if res.PointsScanned != 0 {
		t.Errorf("exact COUNT should touch no data, scanned %d", res.PointsScanned)
	}
}

func TestScanRangeExactSum(t *testing.T) {
	s := testStore(t)
	q := query.NewSum(1)
	var res ScanResult
	s.ScanRange(q, 0, 5, true, &res)
	if res.Sum != 150 || res.Count != 5 {
		t.Errorf("exact sum = (%d, %d), want (150, 5)", res.Sum, res.Count)
	}
}

func TestScanRangeClamps(t *testing.T) {
	s := testStore(t)
	var res ScanResult
	s.ScanRange(query.NewCount(), -5, 100, false, &res)
	if res.Count != 5 {
		t.Errorf("clamped scan count = %d, want 5", res.Count)
	}
}

func TestScanMultiFilter(t *testing.T) {
	s := testStore(t)
	q := query.NewCount(
		query.Filter{Dim: 0, Lo: 2, Hi: 5},
		query.Filter{Dim: 1, Lo: 0, Hi: 30},
	)
	var res ScanResult
	s.ScanRange(q, 0, 5, false, &res)
	if res.Count != 2 {
		t.Errorf("count = %d, want 2", res.Count)
	}
}

// TestReorderIsPermutationProperty verifies that reordering preserves the
// multiset of rows.
func TestReorderIsPermutationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		rows := make([][]int64, n)
		for i := range rows {
			rows[i] = []int64{rng.Int63n(100), rng.Int63n(100)}
		}
		s, err := FromRows(rows, nil)
		if err != nil {
			return false
		}
		perm := rng.Perm(n)
		if err := s.Reorder(perm); err != nil {
			return false
		}
		// Every original row must appear exactly once.
		seen := make(map[[2]int64]int)
		for _, r := range rows {
			seen[[2]int64{r[0], r[1]}]++
		}
		for i := 0; i < n; i++ {
			k := [2]int64{s.Value(i, 0), s.Value(i, 1)}
			seen[k]--
			if seen[k] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

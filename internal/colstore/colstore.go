// Package colstore implements the in-memory column store substrate every
// index in this repository is clustered over.
//
// The paper (§2, §6.1) evaluates all indexes on "a custom column store with
// one scan-time optimization": when a physical range is known to match the
// query filter exactly, per-value checks are skipped. This package provides
// that store: int64 columns, physical reordering by a permutation (clustered
// index builds), and range scans with COUNT/SUM aggregation.
package colstore

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/query"
)

// Store is a columnar table of int64 attributes. Columns share one length.
type Store struct {
	cols  [][]int64
	names []string
	// codeCache lazily holds one byte-coded image per column for the
	// grouped low-cardinality fast path (grouped_codes.go); slots are
	// invalidated by Reorder.
	codeCache []atomic.Pointer[groupCodes]
}

// New creates a store with the given column names, all empty.
func New(names ...string) *Store {
	s := &Store{names: append([]string(nil), names...)}
	s.cols = make([][]int64, len(names))
	s.codeCache = make([]atomic.Pointer[groupCodes], len(names))
	return s
}

// FromColumns wraps existing column slices. All columns must have equal
// length. The store takes ownership of the slices.
func FromColumns(cols [][]int64, names []string) (*Store, error) {
	if len(cols) == 0 {
		return nil, errors.New("colstore: no columns")
	}
	n := len(cols[0])
	for i, c := range cols {
		if len(c) != n {
			return nil, fmt.Errorf("colstore: column %d has length %d, want %d", i, len(c), n)
		}
	}
	if names == nil {
		names = make([]string, len(cols))
		for i := range names {
			names[i] = fmt.Sprintf("d%d", i)
		}
	}
	if len(names) != len(cols) {
		return nil, fmt.Errorf("colstore: %d names for %d columns", len(names), len(cols))
	}
	return &Store{
		cols:      cols,
		names:     names,
		codeCache: make([]atomic.Pointer[groupCodes], len(cols)),
	}, nil
}

// FromRows builds a store from row-major data.
func FromRows(rows [][]int64, names []string) (*Store, error) {
	if len(rows) == 0 {
		return nil, errors.New("colstore: no rows")
	}
	d := len(rows[0])
	cols := make([][]int64, d)
	for j := range cols {
		cols[j] = make([]int64, len(rows))
	}
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("colstore: row %d has %d values, want %d", i, len(r), d)
		}
		for j, v := range r {
			cols[j][i] = v
		}
	}
	return FromColumns(cols, names)
}

// NumRows returns the number of rows.
func (s *Store) NumRows() int {
	if len(s.cols) == 0 {
		return 0
	}
	return len(s.cols[0])
}

// NumDims returns the number of columns.
func (s *Store) NumDims() int { return len(s.cols) }

// Names returns the column names.
func (s *Store) Names() []string { return s.names }

// Column returns the backing slice for dimension dim. Callers must not
// modify it.
func (s *Store) Column(dim int) []int64 { return s.cols[dim] }

// Value returns the value at (row, dim).
func (s *Store) Value(row, dim int) int64 { return s.cols[dim][row] }

// Row copies row i into dst (allocated if nil) and returns it.
func (s *Store) Row(i int, dst []int64) []int64 {
	if dst == nil {
		dst = make([]int64, len(s.cols))
	}
	for j, c := range s.cols {
		dst[j] = c[i]
	}
	return dst
}

// MinMax returns the minimum and maximum value of a dimension. It returns
// (0, 0) for an empty store.
func (s *Store) MinMax(dim int) (int64, int64) {
	c := s.cols[dim]
	if len(c) == 0 {
		return 0, 0
	}
	lo, hi := c[0], c[0]
	for _, v := range c[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Reorder physically rewrites every column so that new row i holds old row
// perm[i]. This is how clustered indexes lay out their data. perm must be a
// permutation of [0, NumRows).
func (s *Store) Reorder(perm []int) error {
	n := s.NumRows()
	if len(perm) != n {
		return fmt.Errorf("colstore: permutation length %d, want %d", len(perm), n)
	}
	buf := make([]int64, n)
	for _, c := range s.cols {
		for i, p := range perm {
			buf[i] = c[p]
		}
		copy(c, buf)
	}
	// The byte-coded group images alias the old row order; drop them so
	// the next grouped scan rebuilds against the new layout.
	for i := range s.codeCache {
		s.codeCache[i].Store(nil)
	}
	return nil
}

// Clone deep-copies the store, so an index build can reorder its own copy.
func (s *Store) Clone() *Store {
	out := &Store{names: append([]string(nil), s.names...)}
	out.cols = make([][]int64, len(s.cols))
	for j, c := range s.cols {
		out.cols[j] = append([]int64(nil), c...)
	}
	out.codeCache = make([]atomic.Pointer[groupCodes], len(s.cols))
	return out
}

// ScanResult carries the aggregate produced by a scan.
type ScanResult struct {
	Count uint64
	Sum   int64
	// PointsScanned is the number of rows the scan touched (matching or
	// not); indexes report it for the cost-model features (§5.3.1).
	PointsScanned uint64
	// BytesTouched models the column bytes the scan moved: 8 bytes per
	// row for every filter column plus the aggregate column for SUM (an
	// exact COUNT range touches no column data at all). It is a planned
	// figure — deliberately independent of short-circuiting and dead-word
	// skipping, and therefore identical across the SIMD, portable, and
	// scalar tiers — so the bench harness can report effective GB/s per
	// shape and track the gap to STREAM bandwidth across PRs.
	BytesTouched uint64
}

// Add accumulates another result into r. Because a result carries the
// sum+count pair, partial aggregates from disjoint scans (region splits,
// shard scatter-gather) merge exactly — including AVG, which is derived
// from the merged pair (see Avg), never averaged across partials.
func (r *ScanResult) Add(o ScanResult) {
	r.Count += o.Count
	r.Sum += o.Sum
	r.PointsScanned += o.PointsScanned
	r.BytesTouched += o.BytesTouched
}

// Avg returns the mean of the aggregated dimension over matching rows
// (Sum/Count), or 0 when nothing matched. Only meaningful for SUM
// queries, whose results carry the sum alongside the match count.
func (r ScanResult) Avg() float64 {
	if r.Count == 0 {
		return 0
	}
	return float64(r.Sum) / float64(r.Count)
}

// ScanRange scans physical rows [start, end) against q and accumulates the
// aggregation into res.
//
// If exact is true the caller guarantees every row in the range matches every
// filter, so per-value checks are skipped — the paper's scan-time
// optimization. For COUNT with exact ranges no column data is touched at all.
// Filtered (non-exact) ranges run on the branch-free block kernels in
// kernels.go; ScanRangeScalar retains the row-at-a-time loop as the oracle.
func (s *Store) ScanRange(q query.Query, start, end int, exact bool, res *ScanResult) {
	if start < 0 {
		start = 0
	}
	if end > s.NumRows() {
		end = s.NumRows()
	}
	if start >= end {
		return
	}
	n := uint64(end - start)
	if exact {
		res.Count += n
		if q.Agg == query.Sum {
			col := s.cols[q.AggDim][start:end]
			var sum int64
			for _, v := range col {
				sum += v
			}
			res.Sum += sum
			res.PointsScanned += n
			res.BytesTouched += n * 8
		}
		return
	}
	res.PointsScanned += n
	res.BytesTouched += n * 8 * uint64(len(q.Filters)+sumCols(q))

	// An inverted filter is an empty intersection: the conjunction matches
	// nothing. Checked here because the kernels' unsigned-width compare is
	// only exact for lo <= hi.
	for _, f := range q.Filters {
		if f.Lo > f.Hi {
			return
		}
	}

	switch len(q.Filters) {
	case 0:
		res.Count += n
		if q.Agg == query.Sum {
			col := s.cols[q.AggDim][start:end]
			var sum int64
			for _, v := range col {
				sum += v
			}
			res.Sum += sum
		}
	case 1:
		s.scanOneFilter(q, start, end, res)
	default:
		s.scanManyFilters(q, start, end, res)
	}
}

// ScanRangeScalar is the pre-kernel row-at-a-time implementation of
// ScanRange, retained verbatim as the oracle the block kernels are
// property-tested and benchmarked against.
func (s *Store) ScanRangeScalar(q query.Query, start, end int, exact bool, res *ScanResult) {
	if start < 0 {
		start = 0
	}
	if end > s.NumRows() {
		end = s.NumRows()
	}
	if start >= end {
		return
	}
	n := uint64(end - start)
	if exact {
		res.Count += n
		if q.Agg == query.Sum {
			col := s.cols[q.AggDim]
			for i := start; i < end; i++ {
				res.Sum += col[i]
			}
			res.PointsScanned += n
			res.BytesTouched += n * 8
		}
		return
	}
	res.PointsScanned += n
	res.BytesTouched += n * 8 * uint64(len(q.Filters)+sumCols(q))

	// Column-at-a-time filtering: start with all rows live, narrow per filter.
	switch len(q.Filters) {
	case 0:
		res.Count += n
		if q.Agg == query.Sum {
			col := s.cols[q.AggDim]
			for i := start; i < end; i++ {
				res.Sum += col[i]
			}
		}
		return
	case 1:
		f := q.Filters[0]
		col := s.cols[f.Dim]
		if q.Agg == query.Count {
			for i := start; i < end; i++ {
				v := col[i]
				if v >= f.Lo && v <= f.Hi {
					res.Count++
				}
			}
			return
		}
		agg := s.cols[q.AggDim]
		for i := start; i < end; i++ {
			v := col[i]
			if v >= f.Lo && v <= f.Hi {
				res.Count++
				res.Sum += agg[i]
			}
		}
		return
	}

	for i := start; i < end; i++ {
		ok := true
		for _, f := range q.Filters {
			v := s.cols[f.Dim][i]
			if v < f.Lo || v > f.Hi {
				ok = false
				break
			}
		}
		if ok {
			res.Count++
			if q.Agg == query.Sum {
				res.Sum += s.cols[q.AggDim][i]
			}
		}
	}
}

// sumCols is the number of aggregate columns a query's scan reads beyond
// its filter columns: 1 for SUM, 0 for COUNT.
func sumCols(q query.Query) int {
	if q.Agg == query.Sum {
		return 1
	}
	return 0
}

// SizeBytes returns the memory footprint of the column data itself. Index
// sizes reported in experiments exclude this, matching the paper's
// "index size" metric.
func (s *Store) SizeBytes() uint64 {
	return uint64(s.NumRows()) * uint64(s.NumDims()) * 8
}

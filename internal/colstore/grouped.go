package colstore

import (
	"math/bits"
	"sort"

	"repro/internal/query"
)

// Grouped aggregation over the selection-vector pipeline.
//
// The flat kernels in kernels.go fuse filter evaluation and aggregation
// and never materialize which rows matched. GROUP BY needs that
// intermediate: the filter stage produces selection-mask words (bit k of
// word w set iff row start+w*64+k matches every filter — the exact words
// maskWordsAVX2 and maskWord already compute), and the grouping operator
// consumes them column-at-a-time, folding each selected row's group-key
// value into a per-group (count, sum) pair. SelVector exposes the mask
// as a first-class value; GroupAccumulator is the operator.
//
// The accumulator has three regimes:
//
//   - Byte-code fast path (COUNT only): when the group column's whole
//     value range spans at most maxFastGroups values, the store lazily
//     byte-codes it (grouped_codes.go) and blocks are consumed by the
//     byte-lane count kernels — 32 rows per compare instead of the mask
//     kernels' 4, one pass over a 1-byte stream instead of one 8-byte
//     pass per key. Single-filter COUNT blocks skip mask-word
//     materialization entirely via the fused kernel. This is the regime
//     the groupby bench experiment's acceptance ratio is measured in.
//
//   - Low-cardinality fast path: while the number of distinct keys seen
//     stays at or below maxFastGroups, each block is aggregated with
//     per-key equality masks — for every known key k, AND the selection
//     words with the mask of (group column == k) using the same range
//     kernels the filters use (width 0 makes the range compare an
//     equality), then popcount/masked-sum the result. The group column
//     is L1-resident after the first key's pass, so each additional key
//     costs a cache-hot vector sweep instead of a per-row hash probe.
//     Rows whose key is not yet known fall out as leftover bits and are
//     folded individually (discovering new keys as they appear). This is
//     the regime SUM stays in on a clustered or naturally
//     low-cardinality group key (vendor id, passenger count, zone), and
//     COUNT when the column's range is too wide to byte-code.
//
//   - Generic hash path: past maxFastGroups distinct keys the
//     accumulator switches permanently to per-row accumulation into a
//     dense array window (keys within denseGroupWindow of the first keys
//     seen) backed by an overflow map, walking the set bits of each
//     selection word. Exact for any key distribution, just not
//     bandwidth-bound.
//
// Partials merge exactly: GroupedResult carries per-group (count, sum)
// pairs sorted by key, and Merge is a sorted-list union that adds pairs
// — so grouped results combine across regions, executor workers, and
// shard scatter-gather precisely like flat ScanResults do, with AVG
// derived from the merged pair, never averaged across partials.

// SelVector is a materialized selection over a physical row range: bit k
// of Words[w] is set iff row Start+w*64+k matched every filter. Bits at
// or beyond Rows are always clear. It is the intermediate between the
// filter stage (FilterRange, or the per-block masks inside
// ScanRangeGrouped) and mask-consuming operators.
type SelVector struct {
	Start int      // physical row index of bit 0 of Words[0]
	Rows  int      // rows covered; the tail of the last word is clear
	Words []uint64 // ceil(Rows/64) mask words
}

// Reset re-targets the vector at rows [start, start+rows) with all bits
// clear, reusing the existing words allocation when large enough.
func (sv *SelVector) Reset(start, rows int) {
	sv.Start, sv.Rows = start, rows
	nw := (rows + 63) / 64
	if cap(sv.Words) < nw {
		sv.Words = make([]uint64, nw)
		return
	}
	sv.Words = sv.Words[:nw]
	for i := range sv.Words {
		sv.Words[i] = 0
	}
}

// OnesCount returns the number of selected rows.
func (sv *SelVector) OnesCount() int {
	n := 0
	for _, w := range sv.Words {
		n += bits.OnesCount64(w)
	}
	return n
}

// FilterRange evaluates q's filters over physical rows [start, end) into
// sv. If exact is true (or the query has no filters) every row is
// selected without touching column data. Full 64-row words run on the
// dispatched mask kernels (AVX2 or portable); the sub-word tail is
// evaluated row-at-a-time. An inverted filter (Lo > Hi) selects nothing.
func (s *Store) FilterRange(q query.Query, start, end int, exact bool, sv *SelVector) {
	if start < 0 {
		start = 0
	}
	if end > s.NumRows() {
		end = s.NumRows()
	}
	if start >= end {
		sv.Reset(start, 0)
		return
	}
	n := end - start
	sv.Reset(start, n)
	nw := n >> 6
	if exact || len(q.Filters) == 0 {
		for w := 0; w < nw; w++ {
			sv.Words[w] = ^uint64(0)
		}
		for i := nw * 64; i < n; i++ {
			sv.Words[i>>6] |= 1 << (uint(i) & 63)
		}
		return
	}
	for _, f := range q.Filters {
		if f.Lo > f.Hi {
			return
		}
	}
	if nw > 0 {
		s.maskBlockInto(q.Filters, start, nw, sv.Words[:nw])
	}
	for i := nw * 64; i < n; i++ {
		if s.rowMatches(q.Filters, start+i) {
			sv.Words[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

// maskBlockInto fills mask[0:nw] with the conjunction of the filters
// over rows [start, start+nw*64): the first filter writes each word,
// later filters AND into it (skipping words already dead). Returns the
// OR of all words, so callers can skip fully-dead blocks.
func (s *Store) maskBlockInto(filters []query.Filter, start, nw int, mask []uint64) uint64 {
	var any uint64
	for fi, f := range filters {
		col := s.cols[f.Dim][start : start+nw*64]
		width := uint64(f.Hi - f.Lo)
		if fi == 0 {
			any = maskWordsInto(col, mask, nw, f.Lo, width)
		} else {
			any = maskWordsAndInto(col, mask, nw, f.Lo, width)
		}
		if any == 0 {
			break
		}
	}
	return any
}

func (s *Store) rowMatches(filters []query.Filter, row int) bool {
	for _, f := range filters {
		if v := s.cols[f.Dim][row]; v < f.Lo || v > f.Hi {
			return false
		}
	}
	return true
}

// Portable mask-word helpers shared by every build; the dispatch
// wrappers (grouped_dispatch_*.go) route to the AVX2 kernels when they
// are compiled in and enabled.

func maskWordsPortable(col []int64, out []uint64, nw int, lo int64, width uint64) uint64 {
	var any uint64
	for w := 0; w < nw; w++ {
		m := maskWord(col[w*64:], lo, width)
		out[w] = m
		any |= m
	}
	return any
}

func maskWordsAndPortable(col []int64, out []uint64, nw int, lo int64, width uint64) uint64 {
	var any uint64
	for w := 0; w < nw; w++ {
		m := out[w]
		if m == 0 {
			continue
		}
		m &= maskWord(col[w*64:], lo, width)
		out[w] = m
		any |= m
	}
	return any
}

func maskedSumPortable(agg []int64, mask []uint64, nw int) int64 {
	var sum int64
	for w := 0; w < nw; w++ {
		if m := mask[w]; m != 0 {
			sum += maskedSum(agg[w*64:], m)
		}
	}
	return sum
}

// GroupAgg is one group's exact aggregate: the group-key value and the
// (count, sum) pair over matching rows with that key.
type GroupAgg struct {
	Key   int64
	Count uint64
	Sum   int64
}

// Avg returns the group's mean aggregate value (Sum/Count), or 0 for an
// empty group. Meaningful for SUM queries, whose groups carry the sum
// alongside the match count.
func (g GroupAgg) Avg() float64 {
	if g.Count == 0 {
		return 0
	}
	return float64(g.Sum) / float64(g.Count)
}

// GroupedResult is the grouped counterpart of ScanResult: one GroupAgg
// per distinct group-key value among matching rows, sorted ascending by
// key, plus the same scan-volume accounting.
type GroupedResult struct {
	GroupDim      int
	Groups        []GroupAgg
	PointsScanned uint64
	BytesTouched  uint64
}

// Merge folds another grouped partial into r: a sorted-list union that
// adds (count, sum) pairs for shared keys. Because the pairs are exact,
// partials from disjoint scans (region splits, executor chunks, shard
// scatter-gather) merge exactly — including per-group AVG, which is
// derived from the merged pair via GroupAgg.Avg, never averaged across
// partials.
func (r *GroupedResult) Merge(o GroupedResult) {
	r.PointsScanned += o.PointsScanned
	r.BytesTouched += o.BytesTouched
	if len(o.Groups) == 0 {
		return
	}
	if len(r.Groups) == 0 {
		r.GroupDim = o.GroupDim
		r.Groups = append(r.Groups[:0], o.Groups...)
		return
	}
	merged := make([]GroupAgg, 0, len(r.Groups)+len(o.Groups))
	i, j := 0, 0
	for i < len(r.Groups) && j < len(o.Groups) {
		a, b := r.Groups[i], o.Groups[j]
		switch {
		case a.Key < b.Key:
			merged = append(merged, a)
			i++
		case a.Key > b.Key:
			merged = append(merged, b)
			j++
		default:
			a.Count += b.Count
			a.Sum += b.Sum
			merged = append(merged, a)
			i++
			j++
		}
	}
	merged = append(merged, r.Groups[i:]...)
	merged = append(merged, o.Groups[j:]...)
	r.Groups = merged
}

// Find returns the group for key and whether it exists (binary search
// over the sorted groups).
func (r GroupedResult) Find(key int64) (GroupAgg, bool) {
	i := sort.Search(len(r.Groups), func(i int) bool { return r.Groups[i].Key >= key })
	if i < len(r.Groups) && r.Groups[i].Key == key {
		return r.Groups[i], true
	}
	return GroupAgg{}, false
}

// TotalCount returns the number of matching rows across all groups.
func (r GroupedResult) TotalCount() uint64 {
	var n uint64
	for _, g := range r.Groups {
		n += g.Count
	}
	return n
}

// Clone deep-copies the result, so cached grouped results can be handed
// out without aliasing the cache's groups slice.
func (r GroupedResult) Clone() GroupedResult {
	out := r
	out.Groups = append([]GroupAgg(nil), r.Groups...)
	return out
}

const (
	// maxFastGroups bounds the per-key equality-mask fast path: beyond
	// this many distinct keys the per-block sweep cost (one cache-hot
	// vector pass per key) overtakes per-row hashing and the
	// accumulator switches to the generic path.
	maxFastGroups = 32
	// denseGroupWindow is the generic path's array-window size: keys
	// within this range of the window base index a dense cell array
	// (one add, no hashing); keys outside it hit the overflow map.
	denseGroupWindow = 1 << 16
)

// MaxFastGroups reports the fast-path key bound: grouped scans whose
// group column has at most this many distinct keys stay on the per-key
// equality-mask sweep. Exported for benchmarks and experiments that
// classify which regime a shape landed in.
func MaxFastGroups() int { return maxFastGroups }

type groupCell struct {
	count uint64
	sum   int64
}

// GroupAccumulator accumulates grouped (count, sum) pairs across any
// number of ScanRangeGrouped calls (regions, chunks) plus individually
// added rows (delta buffers), then emits one sorted GroupedResult. It is
// not safe for concurrent use; parallel executors give each worker its
// own accumulator and Merge the results.
type GroupAccumulator struct {
	dim int

	// Fast path: discovery-ordered distinct keys with parallel cells.
	keys  []int64
	cells []groupCell

	// Generic path, engaged permanently once len(keys) would exceed
	// maxFastGroups.
	generic  bool
	base     int64
	dense    []groupCell
	overflow map[int64]*groupCell

	// Byte-code fast path (COUNT only): one count per code over the
	// store's byte-coded group column, merged with the other regimes'
	// cells in Result. codeSplat is the kernels' key operand — each code
	// as a 32-byte broadcast block, padded to a multiple of 8 keys with
	// the 0xFF sentinel no code reaches.
	codeBase   int64
	codeN      int
	codeCounts []uint64
	codeSplat  []byte

	points uint64
	bytes  uint64

	sel     SelVector          // per-block selection vector
	scratch [blockWords]uint64 // per-key eq-mask AND buffer
	left    [blockWords]uint64 // leftover (unknown-key) bits
}

// NewGroupAccumulator returns an accumulator for q's group dimension.
func NewGroupAccumulator(q query.Query) *GroupAccumulator {
	return &GroupAccumulator{
		dim: q.GroupDim(),
		sel: SelVector{Words: make([]uint64, blockWords)},
	}
}

// AddRow folds one matching row (its group-key value and, for SUM, its
// aggregate value — pass 0 for COUNT) into the accumulator. Used by the
// delta-buffer scan and scalar fallbacks; scan-volume accounting is the
// caller's via AddScanned.
func (a *GroupAccumulator) AddRow(key, aggVal int64) { a.add1(key, aggVal) }

// AddScanned charges scan volume to the accumulator's accounting.
func (a *GroupAccumulator) AddScanned(points, bytes uint64) {
	a.points += points
	a.bytes += bytes
}

func (a *GroupAccumulator) add1(k, v int64) {
	if !a.generic {
		for i, kk := range a.keys {
			if kk == k {
				a.cells[i].count++
				a.cells[i].sum += v
				return
			}
		}
		if len(a.keys) < maxFastGroups {
			a.keys = append(a.keys, k)
			a.cells = append(a.cells, groupCell{count: 1, sum: v})
			return
		}
		a.switchToGeneric()
	}
	if idx := uint64(k - a.base); idx < uint64(len(a.dense)) {
		a.dense[idx].count++
		a.dense[idx].sum += v
		return
	}
	c := a.overflow[k]
	if c == nil {
		c = &groupCell{}
		a.overflow[k] = c
	}
	c.count++
	c.sum += v
}

// switchToGeneric migrates the fast-path cells into the dense window
// (anchored at the smallest key seen so far) plus the overflow map.
func (a *GroupAccumulator) switchToGeneric() {
	a.base = a.keys[0]
	for _, k := range a.keys[1:] {
		if k < a.base {
			a.base = k
		}
	}
	a.dense = make([]groupCell, denseGroupWindow)
	a.overflow = make(map[int64]*groupCell)
	for i, k := range a.keys {
		if idx := uint64(k - a.base); idx < uint64(len(a.dense)) {
			a.dense[idx] = a.cells[i]
		} else {
			c := a.cells[i]
			a.overflow[k] = &c
		}
	}
	a.keys, a.cells = nil, nil
	a.generic = true
}

// consumeWords folds the selected rows of one block into the
// accumulator. gcol and agg are the group-key and aggregate column
// slices aligned with a.sel's words (agg nil for COUNT); nw is the
// number of full mask words.
func (a *GroupAccumulator) consumeWords(gcol, agg []int64, nw int) {
	if a.generic {
		a.consumeWordsGeneric(gcol, agg, nw)
		return
	}
	// Per known key: eq-mask the group column against the selection and
	// popcount/masked-sum the intersection. left tracks rows no known
	// key claimed — keys not seen before this block.
	left := a.left[:nw]
	copy(left, a.sel.Words[:nw])
	for ki, k := range a.keys {
		copy(a.scratch[:nw], a.sel.Words[:nw])
		if maskWordsAndInto(gcol, a.scratch[:nw], nw, k, 0) == 0 {
			continue
		}
		cnt := 0
		for w := 0; w < nw; w++ {
			m := a.scratch[w]
			cnt += bits.OnesCount64(m)
			left[w] &^= m
		}
		a.cells[ki].count += uint64(cnt)
		if agg != nil {
			a.cells[ki].sum += maskedSumWords(agg, a.scratch[:nw], nw)
		}
	}
	for w := 0; w < nw; w++ {
		m := left[w]
		for m != 0 {
			i := w*64 + bits.TrailingZeros64(m)
			m &= m - 1
			var v int64
			if agg != nil {
				v = agg[i]
			}
			a.add1(gcol[i], v)
		}
	}
}

// codesCompatible reports whether the accumulator can take byte-coded
// counts for a column coded as (base, n) — either it has no code state
// yet, or the coding matches what it already holds. Scans of a store
// whose coding differs (another shard's clone, a differently-based
// column) fall back to the mask-word path; Result still merges exactly.
func (a *GroupAccumulator) codesCompatible(base int64, n int) bool {
	return a.codeCounts == nil || (a.codeBase == base && a.codeN == n)
}

// ensureCodes arms the byte-code path for a column coded as (base, n):
// counts and the kernels' splatted-key operand, both padded to a
// multiple of 8 keys with the 0xFF sentinel (codes are < maxFastGroups,
// so the padding never matches and its counts stay zero).
func (a *GroupAccumulator) ensureCodes(base int64, n int) {
	if a.codeCounts != nil {
		return
	}
	a.codeBase, a.codeN = base, n
	nb := (n + 7) / 8
	a.codeCounts = make([]uint64, nb*8)
	a.codeSplat = make([]byte, nb*8*32)
	for i := range a.codeSplat {
		a.codeSplat[i] = 0xFF
	}
	for c := 0; c < n; c++ {
		for j := 0; j < 32; j++ {
			a.codeSplat[c*32+j] = byte(c)
		}
	}
}

// consumeCodes folds the selected rows of one block into the per-code
// counts. codes is the byte-coded group column aligned with a.sel's
// words; nw is the number of full mask words.
func (a *GroupAccumulator) consumeCodes(codes []byte, nw int) {
	groupCountCodes(codes, a.sel.Words[:nw], nw, a.codeSplat, a.codeCounts, a.codeN)
}

func (a *GroupAccumulator) consumeWordsGeneric(gcol, agg []int64, nw int) {
	for w := 0; w < nw; w++ {
		m := a.sel.Words[w]
		for m != 0 {
			i := w*64 + bits.TrailingZeros64(m)
			m &= m - 1
			var v int64
			if agg != nil {
				v = agg[i]
			}
			a.add1(gcol[i], v)
		}
	}
}

// Result assembles the accumulated groups into a sorted GroupedResult.
// The accumulator remains usable (further scans keep accumulating).
func (a *GroupAccumulator) Result() GroupedResult {
	res := GroupedResult{
		GroupDim:      a.dim,
		PointsScanned: a.points,
		BytesTouched:  a.bytes,
	}
	if !a.generic {
		for i, k := range a.keys {
			if c := a.cells[i]; c.count > 0 {
				res.Groups = append(res.Groups, GroupAgg{Key: k, Count: c.count, Sum: c.sum})
			}
		}
	} else {
		for i := range a.dense {
			if c := a.dense[i]; c.count > 0 {
				res.Groups = append(res.Groups, GroupAgg{Key: a.base + int64(i), Count: c.count, Sum: c.sum})
			}
		}
		for k, c := range a.overflow {
			if c.count > 0 {
				res.Groups = append(res.Groups, GroupAgg{Key: k, Count: c.count, Sum: c.sum})
			}
		}
	}
	sort.Slice(res.Groups, func(i, j int) bool { return res.Groups[i].Key < res.Groups[j].Key })
	if a.codeCounts != nil {
		// Fold the byte-code counts in as one more exact partial (already
		// sorted: code c maps to key codeBase+c, ascending). Rows that
		// reached the accumulator outside coded scans (AddRow, scalar
		// tails, differently-coded stores) live in the other regimes'
		// cells; Merge unions them precisely.
		cr := GroupedResult{GroupDim: a.dim}
		for c, cnt := range a.codeCounts {
			if cnt > 0 {
				cr.Groups = append(cr.Groups, GroupAgg{Key: a.codeBase + int64(c), Count: cnt})
			}
		}
		res.Merge(cr)
	}
	return res
}

// ScanRangeGrouped scans physical rows [start, end) against q and folds
// matching rows into acc, grouped by q.GroupDim(). exact has the same
// meaning as in ScanRange — every row in the range is known to match, so
// filter columns are not read — but the group column (and the aggregate
// column for SUM) is always touched: a grouped aggregate cannot skip
// data the way an exact flat COUNT can.
//
// Accounting mirrors ScanRange's planned-bytes model with the group
// column as one extra stream: n*8*(filters + 1 + sumCols) bytes
// non-exact, n*8*(1 + sumCols) exact.
func (s *Store) ScanRangeGrouped(q query.Query, start, end int, exact bool, acc *GroupAccumulator) {
	if start < 0 {
		start = 0
	}
	if end > s.NumRows() {
		end = s.NumRows()
	}
	if start >= end {
		return
	}
	n := uint64(end - start)
	acc.points += n
	if exact {
		acc.bytes += n * 8 * uint64(1+sumCols(q))
	} else {
		acc.bytes += n * 8 * uint64(len(q.Filters)+1+sumCols(q))
		for _, f := range q.Filters {
			if f.Lo > f.Hi {
				return
			}
		}
	}
	gcol := s.cols[q.GroupDim()]
	var aggCol []int64
	if q.Agg == query.Sum {
		aggCol = s.cols[q.AggDim]
	}
	// Byte-code fast path (COUNT only): consume blocks through the
	// byte-lane count kernels when the group column codes into the
	// fast-group window and the accumulator's code state (if any)
	// matches this store's coding.
	var codes []byte
	if q.Agg == query.Count {
		if gc := s.groupCodesFor(q.GroupDim()); gc != nil && acc.codesCompatible(gc.base, gc.n) {
			acc.ensureCodes(gc.base, gc.n)
			codes = gc.codes
		}
	}
	noFilter := exact || len(q.Filters) == 0
	for b0 := start; b0 < end; b0 += blockRows {
		bn := end - b0
		if bn > blockRows {
			bn = blockRows
		}
		nw := bn >> 6
		if nw > 0 {
			fused := false
			if codes != nil && !noFilter && len(q.Filters) == 1 {
				// Single-filter COUNT: the fused kernel evaluates the
				// range predicate and consumes the codes in one pass,
				// never materializing mask words.
				f := q.Filters[0]
				fused = groupScanBlockOneFilterCodes(
					s.cols[f.Dim][b0:b0+nw*64], codes[b0:b0+nw*64],
					f.Lo, uint64(f.Hi-f.Lo),
					acc.codeSplat, acc.codeCounts, acc.codeN)
			}
			if !fused {
				acc.sel.Start, acc.sel.Rows = b0, nw*64
				var any uint64
				if noFilter {
					for w := 0; w < nw; w++ {
						acc.sel.Words[w] = ^uint64(0)
					}
					any = ^uint64(0)
				} else {
					any = s.maskBlockInto(q.Filters, b0, nw, acc.sel.Words[:nw])
				}
				if any != 0 {
					if codes != nil {
						acc.consumeCodes(codes[b0:b0+nw*64], nw)
					} else {
						var agg []int64
						if aggCol != nil {
							agg = aggCol[b0 : b0+nw*64]
						}
						acc.consumeWords(gcol[b0:b0+nw*64], agg, nw)
					}
				}
			}
		}
		for i := b0 + nw*64; i < b0+bn; i++ {
			if noFilter || s.rowMatches(q.Filters, i) {
				var v int64
				if aggCol != nil {
					v = aggCol[i]
				}
				acc.add1(gcol[i], v)
			}
		}
	}
}

// ScanRangeGroupedScalar is the row-at-a-time grouped scan, retained as
// the oracle ScanRangeGrouped is property-tested and benchmarked
// against. It merges its groups into res with identical accounting.
func (s *Store) ScanRangeGroupedScalar(q query.Query, start, end int, exact bool, res *GroupedResult) {
	if start < 0 {
		start = 0
	}
	if end > s.NumRows() {
		end = s.NumRows()
	}
	if start >= end {
		return
	}
	n := uint64(end - start)
	part := GroupedResult{GroupDim: q.GroupDim(), PointsScanned: n}
	if exact {
		part.BytesTouched = n * 8 * uint64(1+sumCols(q))
	} else {
		part.BytesTouched = n * 8 * uint64(len(q.Filters)+1+sumCols(q))
		for _, f := range q.Filters {
			if f.Lo > f.Hi {
				res.Merge(part)
				return
			}
		}
	}
	gcol := s.cols[q.GroupDim()]
	groups := make(map[int64]groupCell)
	for i := start; i < end; i++ {
		if !exact {
			ok := true
			for _, f := range q.Filters {
				if v := s.cols[f.Dim][i]; v < f.Lo || v > f.Hi {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
		}
		c := groups[gcol[i]]
		c.count++
		if q.Agg == query.Sum {
			c.sum += s.cols[q.AggDim][i]
		}
		groups[gcol[i]] = c
	}
	for k, c := range groups {
		part.Groups = append(part.Groups, GroupAgg{Key: k, Count: c.count, Sum: c.sum})
	}
	sort.Slice(part.Groups, func(i, j int) bool { return part.Groups[i].Key < part.Groups[j].Key })
	res.Merge(part)
}

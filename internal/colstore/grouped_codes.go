package colstore

import "math/bits"

// Byte-coded group columns: the low-cardinality grouped fast path.
//
// When a group column's whole value range spans at most maxFastGroups
// distinct values, grouping does not need per-key int64 equality sweeps
// at all: the store lazily materializes codes[i] = value[i] - min as one
// byte per row, and the grouped COUNT kernels compare 32 code bytes per
// instruction against splatted key codes (grouped_avx2_amd64.s),
// accumulating one count per code. That turns the group stage from
// (#keys) cache-hot 8-byte-lane passes into a single 1-byte-lane pass,
// which is what keeps a grouped single-filter COUNT within a factor of
// the flat count kernel's memory-bound throughput: the scan reads 9
// bytes per row (filter column + codes) instead of 8.
//
// The coded image is built on first use, cached on the store, and
// invalidated by Reorder. Codes never feed results directly — the
// accumulator translates code c back to key base+c when assembling its
// GroupedResult — and the scalar oracle never uses them, so the
// differential tests exercise this path end to end.

// groupCodes is the byte-coded image of one column: codes[i] holds
// col[i] - base, with n = span of distinct codes (all < maxFastGroups,
// and in particular < 0xFF, the splat padding sentinel).
type groupCodes struct {
	codes []byte
	base  int64
	n     int
}

// groupCodesFor returns the cached byte-coded image of dimension dim,
// building it on first use, or nil when the column's value range does
// not fit the fast-group window. The per-dimension cache slot is
// atomic: concurrent builders race idempotently (both compute the same
// image), and a non-codeable column is remembered with an empty
// sentinel so the O(n) MinMax probe runs once, not per scan.
func (s *Store) groupCodesFor(dim int) *groupCodes {
	if dim < 0 || dim >= len(s.cols) || len(s.codeCache) != len(s.cols) {
		return nil
	}
	slot := &s.codeCache[dim]
	if gc := slot.Load(); gc != nil {
		if gc.codes == nil {
			return nil
		}
		return gc
	}
	col := s.cols[dim]
	if len(col) == 0 {
		slot.Store(&groupCodes{})
		return nil
	}
	lo, hi := s.MinMax(dim)
	// uint64(hi-lo) is the exact unsigned span even when the int64
	// subtraction wraps (hi >= lo, and the true span is < 2^64).
	if uint64(hi-lo) >= maxFastGroups {
		slot.Store(&groupCodes{})
		return nil
	}
	codes := make([]byte, len(col))
	for i, v := range col {
		codes[i] = byte(v - lo)
	}
	gc := &groupCodes{codes: codes, base: lo, n: int(hi-lo) + 1}
	slot.Store(gc)
	return gc
}

// groupCountCodesPortable is the portable byte-code consumer: walk the
// set bits of the selection words and bump the matching code's count.
// Shared by every build; the dispatch wrappers route to the AVX2 kernel
// when it is compiled in and enabled.
func groupCountCodesPortable(codes []byte, sel []uint64, nw int, counts []uint64) {
	for w := 0; w < nw; w++ {
		m := sel[w]
		for m != 0 {
			i := w*64 + bits.TrailingZeros64(m)
			m &= m - 1
			counts[codes[i]]++
		}
	}
}

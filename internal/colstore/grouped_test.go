package colstore

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/query"
)

// groupedOracle computes the grouped aggregate row-at-a-time from the
// raw columns, independent of both grouped scan implementations.
func groupedOracle(s *Store, q query.Query, start, end int, exact bool) []GroupAgg {
	if start < 0 {
		start = 0
	}
	if end > s.NumRows() {
		end = s.NumRows()
	}
	type pair struct {
		count uint64
		sum   int64
	}
	groups := map[int64]pair{}
	for i := start; i < end; i++ {
		if !exact {
			ok := true
			for _, f := range q.Filters {
				if v := s.Value(i, f.Dim); v < f.Lo || v > f.Hi {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
		}
		k := s.Value(i, q.GroupDim())
		p := groups[k]
		p.count++
		if q.Agg == query.Sum {
			p.sum += s.Value(i, q.AggDim)
		}
		groups[k] = p
	}
	keys := make([]int64, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := make([]GroupAgg, 0, len(keys))
	for _, k := range keys {
		out = append(out, GroupAgg{Key: k, Count: groups[k].count, Sum: groups[k].sum})
	}
	return out
}

// randGroupedStore builds a store whose group columns span cardinality
// regimes: g_low stays on the equality-mask fast path, g_mid straddles
// the maxFastGroups switch, g_high forces the dense window + overflow
// map, g_wild scatters keys across the whole int64 domain.
func randGroupedStore(t *testing.T, rng *rand.Rand, rows int) *Store {
	cols := [][]int64{
		make([]int64, rows), // d0: filter column, uniform [0, 1000)
		make([]int64, rows), // d1: filter column, uniform [0, 1000)
		make([]int64, rows), // d2: aggregate column, may be negative
		make([]int64, rows), // g_low: 6 distinct keys
		make([]int64, rows), // g_mid: ~48 distinct keys
		make([]int64, rows), // g_high: ~100k-spread keys
		make([]int64, rows), // g_wild: full-domain keys from a small pool
	}
	wild := []int64{-1 << 62, -977, 0, 3, 1 << 40, 1<<62 + 11}
	for i := 0; i < rows; i++ {
		cols[0][i] = rng.Int63n(1000)
		cols[1][i] = rng.Int63n(1000)
		cols[2][i] = rng.Int63n(2001) - 1000
		cols[3][i] = 1 + rng.Int63n(6)
		cols[4][i] = rng.Int63n(48) * 7
		cols[5][i] = rng.Int63n(100_000) - 50_000
		cols[6][i] = wild[rng.Intn(len(wild))]
	}
	s, err := FromColumns(cols, []string{"f0", "f1", "val", "g_low", "g_mid", "g_high", "g_wild"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randGroupedQuery(rng *rand.Rand) query.Query {
	var fs []query.Filter
	for _, dim := range []int{0, 1} {
		switch rng.Intn(3) {
		case 0: // no filter on this dim
		case 1:
			lo := rng.Int63n(1000)
			fs = append(fs, query.Filter{Dim: dim, Lo: lo, Hi: lo + rng.Int63n(600)})
		case 2:
			v := rng.Int63n(1000)
			fs = append(fs, query.Filter{Dim: dim, Lo: v, Hi: v})
		}
	}
	var q query.Query
	if rng.Intn(2) == 0 {
		q = query.NewCount(fs...)
	} else {
		q = query.NewSum(2, fs...)
	}
	return q.By(3 + rng.Intn(4))
}

// TestScanRangeGroupedMatchesOracle pins the grouped kernel scan and the
// scalar grouped scan to an independent row-at-a-time oracle across
// random queries, unaligned ranges, every group-cardinality regime, and
// both kernel tiers.
func TestScanRangeGroupedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randGroupedStore(t, rng, 10_000)

	check := func(t *testing.T, q query.Query, start, end int, exact bool) {
		t.Helper()
		if exact {
			// exact promises every row matches; only valid with no filters
			q.Filters = nil
		}
		want := groupedOracle(s, q, start, end, exact)

		acc := NewGroupAccumulator(q)
		s.ScanRangeGrouped(q, start, end, exact, acc)
		got := acc.Result()
		if !reflect.DeepEqual(got.Groups, want) && !(len(got.Groups) == 0 && len(want) == 0) {
			t.Fatalf("kernel mismatch for %v rows [%d,%d) exact=%v:\n got %v\nwant %v",
				q, start, end, exact, got.Groups, want)
		}

		var sc GroupedResult
		s.ScanRangeGroupedScalar(q, start, end, exact, &sc)
		if !reflect.DeepEqual(sc.Groups, want) && !(len(sc.Groups) == 0 && len(want) == 0) {
			t.Fatalf("scalar mismatch for %v rows [%d,%d) exact=%v:\n got %v\nwant %v",
				q, start, end, exact, sc.Groups, want)
		}
		if got.PointsScanned != sc.PointsScanned || got.BytesTouched != sc.BytesTouched {
			t.Fatalf("accounting mismatch for %v: kernel (%d,%d) scalar (%d,%d)",
				q, got.PointsScanned, got.BytesTouched, sc.PointsScanned, sc.BytesTouched)
		}
	}

	run := func(t *testing.T) {
		for i := 0; i < 60; i++ {
			q := randGroupedQuery(rng)
			start := rng.Intn(s.NumRows())
			end := start + rng.Intn(s.NumRows()-start+1)
			check(t, q, start, end, false)
		}
		// Exact ranges, full range, empty range, sub-word range, inverted filter.
		check(t, query.NewCount().By(3), 0, s.NumRows(), true)
		check(t, query.NewSum(2).By(5), 100, 4321, true)
		check(t, query.NewCount().By(6), 0, s.NumRows(), false)
		check(t, query.NewCount(query.Filter{Dim: 0, Lo: 10, Hi: 700}).By(4), 500, 500, false)
		check(t, query.NewCount(query.Filter{Dim: 0, Lo: 10, Hi: 700}).By(4), 65, 100, false)
		check(t, query.NewCount(query.Filter{Dim: 0, Lo: 700, Hi: 10}).By(3), 0, s.NumRows(), false)
	}

	if SIMDAvailable() {
		t.Run("simd", func(t *testing.T) {
			prev := SetSIMD(true)
			defer SetSIMD(prev)
			run(t)
		})
	}
	t.Run("portable", func(t *testing.T) {
		prev := SetSIMD(false)
		defer SetSIMD(prev)
		run(t)
	})
}

// TestGroupedResultMerge checks the sorted-union merge against
// accumulating everything in one pass, split at arbitrary boundaries.
func TestGroupedResultMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := randGroupedStore(t, rng, 8_000)
	for i := 0; i < 30; i++ {
		q := randGroupedQuery(rng)
		cut1 := rng.Intn(s.NumRows())
		cut2 := cut1 + rng.Intn(s.NumRows()-cut1)

		whole := NewGroupAccumulator(q)
		s.ScanRangeGrouped(q, 0, s.NumRows(), false, whole)
		want := whole.Result()

		var merged GroupedResult
		for _, span := range [][2]int{{0, cut1}, {cut1, cut2}, {cut2, s.NumRows()}} {
			part := NewGroupAccumulator(q)
			s.ScanRangeGrouped(q, span[0], span[1], false, part)
			merged.Merge(part.Result())
		}
		if !reflect.DeepEqual(merged.Groups, want.Groups) && !(len(merged.Groups) == 0 && len(want.Groups) == 0) {
			t.Fatalf("merge mismatch for %v split at %d,%d:\n got %v\nwant %v",
				q, cut1, cut2, merged.Groups, want.Groups)
		}
		if merged.PointsScanned != want.PointsScanned || merged.BytesTouched != want.BytesTouched {
			t.Fatalf("merge accounting mismatch for %v", q)
		}
	}
}

// TestFilterRangeMatchesMatches pins the public selection-vector filter
// stage to Query.MatchesRow row by row.
func TestFilterRangeMatchesMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := randGroupedStore(t, rng, 3_000)
	row := make([]int64, s.NumDims())
	for i := 0; i < 40; i++ {
		q := randGroupedQuery(rng)
		start := rng.Intn(s.NumRows())
		end := start + rng.Intn(s.NumRows()-start+1)
		var sv SelVector
		s.FilterRange(q, start, end, false, &sv)
		if sv.Start != start || sv.Rows != end-start {
			t.Fatalf("FilterRange bounds: got [%d,+%d) want [%d,+%d)", sv.Start, sv.Rows, start, end-start)
		}
		for r := start; r < end; r++ {
			bit := sv.Words[(r-start)>>6]>>(uint(r-start)&63)&1 == 1
			if want := q.MatchesRow(s.Row(r, row)); bit != want {
				t.Fatalf("row %d: sel bit %v, MatchesRow %v (query %v)", r, bit, want, q)
			}
		}
	}
}

// TestGroupAggAvg pins per-group AVG to the merged pair.
func TestGroupAggAvg(t *testing.T) {
	g := GroupAgg{Key: 1, Count: 4, Sum: -10}
	if got := g.Avg(); got != -2.5 {
		t.Fatalf("Avg = %v, want -2.5", got)
	}
	if got := (GroupAgg{}).Avg(); got != 0 {
		t.Fatalf("empty Avg = %v, want 0", got)
	}
}

// TestGroupCodesReorderInvalidation pins the byte-code cache's Reorder
// contract: a grouped COUNT that built the coded image must stay
// oracle-identical after the store is physically permuted (index builds
// Reorder after cloning — stale codes would silently misattribute every
// row's group).
func TestGroupCodesReorderInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := randGroupedStore(t, rng, 5_000)
	q := query.NewCount(query.Filter{Dim: 0, Lo: 100, Hi: 800}).By(3)

	acc := NewGroupAccumulator(q)
	s.ScanRangeGrouped(q, 0, s.NumRows(), false, acc)
	if got, want := acc.Result().Groups, groupedOracle(s, q, 0, s.NumRows(), false); !reflect.DeepEqual(got, want) {
		t.Fatalf("pre-reorder mismatch:\n got %v\nwant %v", got, want)
	}

	perm := rng.Perm(s.NumRows())
	if err := s.Reorder(perm); err != nil {
		t.Fatal(err)
	}
	acc = NewGroupAccumulator(q)
	s.ScanRangeGrouped(q, 0, s.NumRows(), false, acc)
	if got, want := acc.Result().Groups, groupedOracle(s, q, 0, s.NumRows(), false); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-reorder mismatch:\n got %v\nwant %v", got, want)
	}
}

// TestGroupCodesCrossStoreMerge drives one accumulator across two stores
// whose group columns code with different bases (as a scatter-gather
// worker might see across differently-valued shards): the second store's
// scan must fall back to the mask-word path and Result must still union
// both exactly.
func TestGroupCodesCrossStoreMerge(t *testing.T) {
	rows := 2_000
	mk := func(base int64, seed int64) *Store {
		rng := rand.New(rand.NewSource(seed))
		cols := [][]int64{make([]int64, rows), make([]int64, rows)}
		for i := 0; i < rows; i++ {
			cols[0][i] = rng.Int63n(1000)
			cols[1][i] = base + rng.Int63n(5)
		}
		s, err := FromColumns(cols, nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(10, 19), mk(-3, 23)
	q := query.NewCount(query.Filter{Dim: 0, Lo: 200, Hi: 900}).By(1)

	acc := NewGroupAccumulator(q)
	a.ScanRangeGrouped(q, 0, rows, false, acc)
	b.ScanRangeGrouped(q, 0, rows, false, acc)
	got := acc.Result()

	var want GroupedResult
	a.ScanRangeGroupedScalar(q, 0, rows, false, &want)
	b.ScanRangeGroupedScalar(q, 0, rows, false, &want)
	if !reflect.DeepEqual(got.Groups, want.Groups) {
		t.Fatalf("cross-store mismatch:\n got %v\nwant %v", got.Groups, want.Groups)
	}
}

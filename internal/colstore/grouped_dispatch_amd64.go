//go:build amd64 && !purego

package colstore

// Mask-word dispatch for the grouped pipeline: route to the AVX2 mask
// kernels when dispatch is enabled, otherwise to the portable word
// helpers. These carry the same contract as the flat kernels' block
// loop: write-then-AND semantics with dead-word skip, returning the OR
// of the produced words.

func maskWordsInto(col []int64, out []uint64, nw int, lo int64, width uint64) uint64 {
	if simdEnabled() {
		return maskWordsAVX2(&col[0], &out[0], nw, lo, width)
	}
	return maskWordsPortable(col, out, nw, lo, width)
}

func maskWordsAndInto(col []int64, out []uint64, nw int, lo int64, width uint64) uint64 {
	if simdEnabled() {
		return maskWordsAndAVX2(&col[0], &out[0], nw, lo, width)
	}
	return maskWordsAndPortable(col, out, nw, lo, width)
}

func maskedSumWords(agg []int64, mask []uint64, nw int) int64 {
	if simdEnabled() {
		return maskedSumAVX2(&agg[0], &mask[0], nw)
	}
	return maskedSumPortable(agg, mask, nw)
}

// Byte-code grouped-count kernels (grouped_avx2_amd64.s). Both consume
// 8 splatted key codes per call; the wrappers batch wider code windows
// (splat and counts are padded to a multiple of 8 by ensureCodes).

//go:noescape
func groupCountCodesAVX2(codes *byte, sel *uint64, nWords int, splat *byte, counts *uint64)

//go:noescape
func groupScanOneFilterCodesAVX2(col *int64, codes *byte, n int, lo int64, width uint64, splat *byte, counts *uint64)

func groupCountCodes(codes []byte, sel []uint64, nw int, splat []byte, counts []uint64, n int) {
	if simdEnabled() {
		for b := 0; b < n; b += 8 {
			groupCountCodesAVX2(&codes[0], &sel[0], nw, &splat[b*32], &counts[b])
		}
		return
	}
	groupCountCodesPortable(codes, sel, nw, counts)
}

// groupScanBlockOneFilterCodes runs the fused single-filter grouped
// COUNT over one block when the AVX2 tier is enabled, reporting whether
// it consumed the block; on false the caller falls back to mask words.
func groupScanBlockOneFilterCodes(col []int64, codes []byte, lo int64, width uint64, splat []byte, counts []uint64, n int) bool {
	if !simdEnabled() {
		return false
	}
	for b := 0; b < n; b += 8 {
		groupScanOneFilterCodesAVX2(&col[0], &codes[0], len(col), lo, width, &splat[b*32], &counts[b])
	}
	return true
}

package colstore

import (
	"math/rand"
	"testing"

	"repro/internal/query"
)

// groupedBenchStore builds the grouped-benchmark fixture: four uniform
// filter columns plus two group-key columns, one under the fast-path
// bound (8 keys) and one far over it (4096 keys, the generic
// dense-window regime).
func groupedBenchStore(b *testing.B) *Store {
	const rows = 1 << 18
	rng := rand.New(rand.NewSource(7))
	cols := make([][]int64, 6)
	for j := 0; j < 4; j++ {
		c := make([]int64, rows)
		for i := range c {
			c[i] = rng.Int63n(1_000_000)
		}
		cols[j] = c
	}
	for j, card := range []int64{8, 4096} {
		c := make([]int64, rows)
		for i := range c {
			c[i] = rng.Int63n(card)
		}
		cols[4+j] = c
	}
	s, err := FromColumns(cols, nil)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// groupedBenchShapes are the gated grouped shapes: the canonical count_1f
// filter with a GROUP BY on the low-cardinality column (equality-mask
// fast path) and the high-cardinality one (generic path), COUNT and SUM.
func groupedBenchShapes() []struct {
	Name  string
	Query query.Query
} {
	f := query.Filter{Dim: 0, Lo: 250_000, Hi: 750_000}
	return []struct {
		Name  string
		Query query.Query
	}{
		{"gcount_1f_low", query.NewCount(f).By(4)},
		{"gsum_1f_low", query.NewSum(1, f).By(4)},
		{"gcount_1f_high", query.NewCount(f).By(5)},
		{"gsum_1f_high", query.NewSum(1, f).By(5)},
	}
}

// BenchmarkScanGrouped measures single-thread throughput of the grouped
// scan on the dispatched kernels. CI gates the kernel-vs-scalar speedup
// within one run (cmd/benchgate -min-speedup with
// -kernel-prefix BenchmarkScanGrouped -scalar-prefix
// BenchmarkScanGroupedScalar), which is immune to runner-hardware
// variance.
func BenchmarkScanGrouped(b *testing.B) {
	s := groupedBenchStore(b)
	n := s.NumRows()
	for _, sh := range groupedBenchShapes() {
		b.Run(sh.Name, func(b *testing.B) {
			b.SetBytes(int64(n) * 8)
			var res GroupedResult
			for i := 0; i < b.N; i++ {
				acc := NewGroupAccumulator(sh.Query)
				s.ScanRangeGrouped(sh.Query, 0, n, false, acc)
				res = acc.Result()
			}
			if len(res.Groups) == 0 {
				b.Fatal("benchmark query produced no groups")
			}
		})
	}
}

// BenchmarkScanGroupedScalar is the row-at-a-time grouped oracle on the
// same shapes — the scalar side of the CI speedup gate.
func BenchmarkScanGroupedScalar(b *testing.B) {
	s := groupedBenchStore(b)
	n := s.NumRows()
	for _, sh := range groupedBenchShapes() {
		b.Run(sh.Name, func(b *testing.B) {
			b.SetBytes(int64(n) * 8)
			var res GroupedResult
			for i := 0; i < b.N; i++ {
				res = GroupedResult{}
				s.ScanRangeGroupedScalar(sh.Query, 0, n, false, &res)
			}
			if len(res.Groups) == 0 {
				b.Fatal("benchmark query produced no groups")
			}
		})
	}
}

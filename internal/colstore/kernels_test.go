package colstore

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/query"
)

// TestScanKernelsMatchScalar is the differential property test guarding the
// block kernels: for random schemas, data distributions, ranges, and queries
// across every (agg, filter-count, exact) shape, ScanRange must agree with
// the retained scalar oracle ScanRangeScalar exactly.
func TestScanKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	for iter := 0; iter < 300; iter++ {
		d := 1 + rng.Intn(5)
		n := rng.Intn(5000) // includes empty and sub-block stores
		cols := make([][]int64, d)
		for j := range cols {
			cols[j] = randColumn(rng, n)
		}
		s, err := FromColumns(cols, nil)
		if err != nil {
			t.Fatal(err)
		}
		for shape := 0; shape < 8; shape++ {
			nf := rng.Intn(d + 1)
			fs := make([]query.Filter, 0, nf)
			for len(fs) < nf {
				fs = append(fs, randFilter(rng, cols[len(fs)], len(fs)))
			}
			var q query.Query
			if rng.Intn(2) == 0 {
				q = query.NewCount(fs...)
			} else {
				q = query.NewSum(rng.Intn(d), fs...)
			}
			start := rng.Intn(n+2) - 1 // exercise clamping
			end := start + rng.Intn(n+2)
			exact := rng.Intn(4) == 0 // exact asserts a caller guarantee; both paths must agree regardless
			var got, want ScanResult
			s.ScanRange(q, start, end, exact, &got)
			s.ScanRangeScalar(q, start, end, exact, &want)
			if got != want {
				t.Fatalf("iter %d: kernel %+v != scalar %+v\nq=%s start=%d end=%d exact=%v n=%d",
					iter, got, want, q, start, end, exact, n)
			}
		}
	}
}

// TestScanKernelsDomainEdges pins the unsigned-compare trick at the int64
// domain edges, where the wraparound argument has to hold exactly.
func TestScanKernelsDomainEdges(t *testing.T) {
	vals := []int64{math.MinInt64, math.MinInt64 + 1, -1, 0, 1, math.MaxInt64 - 1, math.MaxInt64}
	col := make([]int64, 0, 256)
	for len(col) < 200 { // cross a word boundary
		col = append(col, vals[len(col)%len(vals)])
	}
	s, err := FromColumns([][]int64{col, append([]int64(nil), col...)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bounds := []int64{math.MinInt64, math.MinInt64 + 1, -2, 0, 2, math.MaxInt64 - 1, math.MaxInt64}
	for _, lo := range bounds {
		for _, hi := range bounds {
			for _, q := range []query.Query{
				query.NewCount(query.Filter{Dim: 0, Lo: lo, Hi: hi}),
				query.NewSum(1, query.Filter{Dim: 0, Lo: lo, Hi: hi}),
				query.NewCount(query.Filter{Dim: 0, Lo: lo, Hi: hi}, query.Filter{Dim: 1, Lo: math.MinInt64, Hi: 0}),
			} {
				var got, want ScanResult
				s.ScanRange(q, 0, len(col), false, &got)
				s.ScanRangeScalar(q, 0, len(col), false, &want)
				if got != want {
					t.Fatalf("lo=%d hi=%d q=%s: kernel %+v != scalar %+v", lo, hi, q, got, want)
				}
			}
		}
	}
}

// randColumn draws from distributions that stress different kernel paths:
// dense small domains (high selectivity), wide uniform (sparse), and
// constant runs (all-zero / all-one mask words).
func randColumn(rng *rand.Rand, n int) []int64 {
	col := make([]int64, n)
	switch rng.Intn(4) {
	case 0:
		for i := range col {
			col[i] = int64(rng.Intn(16))
		}
	case 1:
		for i := range col {
			col[i] = rng.Int63n(1<<40) - 1<<39
		}
	case 2:
		v := int64(rng.Intn(100))
		for i := range col {
			if rng.Intn(200) == 0 {
				v = int64(rng.Intn(100))
			}
			col[i] = v
		}
	default:
		for i := range col {
			col[i] = int64(rng.Uint64()) // full domain incl. extremes
		}
	}
	return col
}

// randFilter builds a filter over dim, sometimes unbounded on a side,
// sometimes empty (Lo > Hi), mostly anchored to actual column values so
// selectivities vary.
func randFilter(rng *rand.Rand, col []int64, dim int) query.Filter {
	f := query.Filter{Dim: dim, Lo: query.NoLo, Hi: query.NoHi}
	pick := func() int64 {
		if len(col) == 0 {
			return rng.Int63n(100) - 50
		}
		return col[rng.Intn(len(col))] + rng.Int63n(7) - 3
	}
	switch rng.Intn(6) {
	case 0: // unbounded both sides
	case 1:
		f.Lo = pick()
	case 2:
		f.Hi = pick()
	case 3: // empty range
		f.Lo, f.Hi = 10, -10
	default:
		a, b := pick(), pick()
		if a > b {
			a, b = b, a
		}
		f.Lo, f.Hi = a, b
	}
	return f
}

// benchStore builds the benchmark dataset: 1M rows, uniform values in
// [0, 1e6) so filter widths translate directly into selectivities.
func benchStore(b *testing.B, dims int) *Store {
	b.Helper()
	const n = 1 << 20
	rng := rand.New(rand.NewSource(7))
	cols := make([][]int64, dims)
	for j := range cols {
		c := make([]int64, n)
		for i := range c {
			c[i] = rng.Int63n(1_000_000)
		}
		cols[j] = c
	}
	s, err := FromColumns(cols, nil)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkScanKernels measures single-thread throughput of the block
// kernels on the canonical KernelBenchShapes. Every shape's ns/op is a CI
// regression-gate metric (cmd/benchgate parses the output against
// .github/scan-baseline.json).
func BenchmarkScanKernels(b *testing.B) {
	s := benchStore(b, 4)
	n := s.NumRows()
	for _, sh := range KernelBenchShapes() {
		b.Run(sh.Name, func(b *testing.B) {
			b.SetBytes(int64(n) * 8)
			var res ScanResult
			for i := 0; i < b.N; i++ {
				res = ScanResult{}
				s.ScanRange(sh.Query, 0, n, false, &res)
			}
			if res.Count == 0 {
				b.Fatal("benchmark query matched nothing")
			}
		})
	}
}

// BenchmarkScanScalar is the retained oracle on the same shapes; the ratio
// against BenchmarkScanKernels is the kernel speedup reported in
// EXPERIMENTS.md (acceptance: >=1.5x on count_2f).
func BenchmarkScanScalar(b *testing.B) {
	s := benchStore(b, 4)
	n := s.NumRows()
	for _, sh := range KernelBenchShapes() {
		b.Run(sh.Name, func(b *testing.B) {
			b.SetBytes(int64(n) * 8)
			var res ScanResult
			for i := 0; i < b.N; i++ {
				res = ScanResult{}
				s.ScanRangeScalar(sh.Query, 0, n, false, &res)
			}
			if res.Count == 0 {
				b.Fatal("benchmark query matched nothing")
			}
		})
	}
}

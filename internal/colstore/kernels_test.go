package colstore

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/query"
)

// scanTiers runs one ScanRange case through every compiled kernel tier —
// the dispatched SIMD path (when available), the forced-portable path,
// and the scalar oracle — and fails unless all agree exactly on the full
// ScanResult. It is the contract every kernel rewrite must keep.
func scanTiers(t *testing.T, s *Store, q query.Query, start, end int, exact bool) ScanResult {
	t.Helper()
	var want ScanResult
	s.ScanRangeScalar(q, start, end, exact, &want)

	prev := SetSIMD(false)
	var portable ScanResult
	s.ScanRange(q, start, end, exact, &portable)
	SetSIMD(true)
	var dispatched ScanResult
	s.ScanRange(q, start, end, exact, &dispatched)
	SetSIMD(prev)

	if portable != want {
		t.Fatalf("portable %+v != scalar %+v\nq=%s start=%d end=%d exact=%v",
			portable, want, q, start, end, exact)
	}
	if dispatched != want {
		t.Fatalf("%s %+v != scalar %+v\nq=%s start=%d end=%d exact=%v",
			KernelName(), dispatched, want, q, start, end, exact)
	}
	return want
}

// TestScanKernelsMatchScalar is the differential property test guarding the
// block kernels: for random schemas, data distributions, ranges, and queries
// across every (agg, filter-count, exact) shape, the dispatched kernel (AVX2
// where available), the portable branch-free kernel, and the retained scalar
// oracle ScanRangeScalar must agree exactly.
func TestScanKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	for iter := 0; iter < 300; iter++ {
		d := 1 + rng.Intn(5)
		n := rng.Intn(5000) // includes empty and sub-block stores
		cols := make([][]int64, d)
		for j := range cols {
			cols[j] = randColumn(rng, n)
		}
		s, err := FromColumns(cols, nil)
		if err != nil {
			t.Fatal(err)
		}
		for shape := 0; shape < 8; shape++ {
			nf := rng.Intn(d + 1)
			fs := make([]query.Filter, 0, nf)
			for len(fs) < nf {
				fs = append(fs, randFilter(rng, cols[len(fs)], len(fs)))
			}
			var q query.Query
			if rng.Intn(2) == 0 {
				q = query.NewCount(fs...)
			} else {
				q = query.NewSum(rng.Intn(d), fs...)
			}
			start := rng.Intn(n+2) - 1 // exercise clamping
			end := start + rng.Intn(n+2)
			exact := rng.Intn(4) == 0 // exact asserts a caller guarantee; all tiers must agree regardless
			scanTiers(t, s, q, start, end, exact)
		}
	}
}

// TestScanKernelsUnalignedRanges sweeps [start, end) windows that land on
// every interesting boundary class — block-aligned, word-aligned,
// mid-word, and sub-word tails of every length 0..64+ — because the SIMD
// tier splits each range into vector body and scalar tail and the split
// arithmetic is exactly where an off-by-one would hide.
func TestScanKernelsUnalignedRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	const n = 3*1024 + 37 // three full blocks plus a ragged tail
	cols := [][]int64{randColumn(rng, n), randColumn(rng, n), randColumn(rng, n)}
	s, err := FromColumns(cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	queries := []query.Query{
		query.NewCount(query.Filter{Dim: 0, Lo: -1 << 30, Hi: 1 << 30}),
		query.NewSum(2, query.Filter{Dim: 0, Lo: -1 << 30, Hi: 1 << 30}),
		query.NewCount(query.Filter{Dim: 0, Lo: -1 << 30, Hi: 1 << 30}, query.Filter{Dim: 1, Lo: 0, Hi: 1 << 38}),
		query.NewSum(2, query.Filter{Dim: 0, Lo: -1 << 30, Hi: 1 << 30}, query.Filter{Dim: 1, Lo: 0, Hi: 1 << 38}),
	}
	starts := []int{0, 1, 63, 64, 65, 511, 1023, 1024, 1025, 2048 - 1, 2048}
	// Window lengths crossing every tail length around word and block
	// boundaries, plus full-range.
	lengths := []int{0, 1, 3, 63, 64, 65, 127, 128, 1000, 1024, 1025, 2047, 2048, n}
	for _, q := range queries {
		for _, start := range starts {
			for _, l := range lengths {
				end := start + l
				if end > n {
					end = n
				}
				scanTiers(t, s, q, start, end, false)
			}
		}
	}
}

// TestScanKernelsDomainEdges pins the unsigned-compare trick at the int64
// domain edges, where the wraparound argument has to hold exactly.
func TestScanKernelsDomainEdges(t *testing.T) {
	vals := []int64{math.MinInt64, math.MinInt64 + 1, -1, 0, 1, math.MaxInt64 - 1, math.MaxInt64}
	col := make([]int64, 0, 256)
	for len(col) < 200 { // cross a word boundary
		col = append(col, vals[len(col)%len(vals)])
	}
	s, err := FromColumns([][]int64{col, append([]int64(nil), col...)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bounds := []int64{math.MinInt64, math.MinInt64 + 1, -2, 0, 2, math.MaxInt64 - 1, math.MaxInt64}
	for _, lo := range bounds {
		for _, hi := range bounds {
			for _, q := range []query.Query{
				query.NewCount(query.Filter{Dim: 0, Lo: lo, Hi: hi}),
				query.NewSum(1, query.Filter{Dim: 0, Lo: lo, Hi: hi}),
				query.NewSum(1, query.Filter{Dim: 0, Lo: lo, Hi: hi}, query.Filter{Dim: 1, Lo: math.MinInt64, Hi: math.MaxInt64}),
				query.NewCount(query.Filter{Dim: 0, Lo: lo, Hi: hi}, query.Filter{Dim: 1, Lo: math.MinInt64, Hi: 0}),
			} {
				scanTiers(t, s, q, 0, len(col), false)
			}
		}
	}
}

// randColumn draws from distributions that stress different kernel paths:
// dense small domains (high selectivity), wide uniform (sparse), and
// constant runs (all-zero / all-one mask words).
func randColumn(rng *rand.Rand, n int) []int64 {
	col := make([]int64, n)
	switch rng.Intn(4) {
	case 0:
		for i := range col {
			col[i] = int64(rng.Intn(16))
		}
	case 1:
		for i := range col {
			col[i] = rng.Int63n(1<<40) - 1<<39
		}
	case 2:
		v := int64(rng.Intn(100))
		for i := range col {
			if rng.Intn(200) == 0 {
				v = int64(rng.Intn(100))
			}
			col[i] = v
		}
	default:
		for i := range col {
			col[i] = int64(rng.Uint64()) // full domain incl. extremes
		}
	}
	return col
}

// randFilter builds a filter over dim, sometimes unbounded on a side,
// sometimes empty (Lo > Hi), mostly anchored to actual column values so
// selectivities vary.
func randFilter(rng *rand.Rand, col []int64, dim int) query.Filter {
	f := query.Filter{Dim: dim, Lo: query.NoLo, Hi: query.NoHi}
	pick := func() int64 {
		if len(col) == 0 {
			return rng.Int63n(100) - 50
		}
		return col[rng.Intn(len(col))] + rng.Int63n(7) - 3
	}
	switch rng.Intn(6) {
	case 0: // unbounded both sides
	case 1:
		f.Lo = pick()
	case 2:
		f.Hi = pick()
	case 3: // empty range
		f.Lo, f.Hi = 10, -10
	default:
		a, b := pick(), pick()
		if a > b {
			a, b = b, a
		}
		f.Lo, f.Hi = a, b
	}
	return f
}

// benchStore builds the benchmark dataset: 1M rows, uniform values in
// [0, 1e6) so filter widths translate directly into selectivities.
func benchStore(b *testing.B, dims int) *Store {
	b.Helper()
	const n = 1 << 20
	rng := rand.New(rand.NewSource(7))
	cols := make([][]int64, dims)
	for j := range cols {
		c := make([]int64, n)
		for i := range c {
			c[i] = rng.Int63n(1_000_000)
		}
		cols[j] = c
	}
	s, err := FromColumns(cols, nil)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkScanKernels measures single-thread throughput of the
// dispatched block kernels (AVX2 where available) on the canonical
// KernelBenchShapes. Every shape's ns/op is a CI regression-gate metric
// (cmd/benchgate parses the output against .github/scan-baseline.json).
func BenchmarkScanKernels(b *testing.B) {
	s := benchStore(b, 4)
	n := s.NumRows()
	for _, sh := range KernelBenchShapes() {
		b.Run(sh.Name, func(b *testing.B) {
			b.SetBytes(int64(n) * 8)
			var res ScanResult
			for i := 0; i < b.N; i++ {
				res = ScanResult{}
				s.ScanRange(sh.Query, 0, n, false, &res)
			}
			if res.Count == 0 {
				b.Fatal("benchmark query matched nothing")
			}
		})
	}
}

// BenchmarkScanKernelsPortable is the same suite with SIMD dispatch
// forced off, so the portable branch-free tier keeps its own CI baseline
// and the SIMD-vs-portable speedup is measurable within one run (the
// benchgate -min-speedup pairing against BenchmarkScanKernels).
func BenchmarkScanKernelsPortable(b *testing.B) {
	s := benchStore(b, 4)
	n := s.NumRows()
	prev := SetSIMD(false)
	defer SetSIMD(prev)
	for _, sh := range KernelBenchShapes() {
		b.Run(sh.Name, func(b *testing.B) {
			b.SetBytes(int64(n) * 8)
			var res ScanResult
			for i := 0; i < b.N; i++ {
				res = ScanResult{}
				s.ScanRange(sh.Query, 0, n, false, &res)
			}
			if res.Count == 0 {
				b.Fatal("benchmark query matched nothing")
			}
		})
	}
}

// BenchmarkScanScalar is the retained oracle on the same shapes; the ratio
// against BenchmarkScanKernels is the kernel speedup reported in
// EXPERIMENTS.md (acceptance: >=1.5x on count_2f).
func BenchmarkScanScalar(b *testing.B) {
	s := benchStore(b, 4)
	n := s.NumRows()
	for _, sh := range KernelBenchShapes() {
		b.Run(sh.Name, func(b *testing.B) {
			b.SetBytes(int64(n) * 8)
			var res ScanResult
			for i := 0; i < b.N; i++ {
				res = ScanResult{}
				s.ScanRangeScalar(sh.Query, 0, n, false, &res)
			}
			if res.Count == 0 {
				b.Fatal("benchmark query matched nothing")
			}
		})
	}
}

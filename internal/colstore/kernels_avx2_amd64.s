//go:build !purego

#include "textflag.h"

// AVX2 scan kernels: 4x int64 lanes per instruction, same block structure
// and exact semantics as the portable branch-free kernels in kernels.go.
//
// The range predicate uint64(v-lo) <= width is evaluated with the signed
// compare VPCMPGTQ via the bias trick: adding 2^63 (mod 2^64) to both
// sides of an unsigned compare turns it into the signed compare of the
// biased values. Because 2^63 is only the sign bit, v - lo + 2^63 folds
// into a single VPSUBQ by the precomputed scalar lo' = lo - 2^63, and
// width + 2^63 is precomputed once per call. VPCMPGTQ(u, w') then yields
// all-ones exactly on the NON-matching lanes, which both the counting
// kernels (accumulate -1 per non-match) and the masked-sum kernel
// (VPANDN clears non-matching lanes) consume without a NOT.
//
// Every loop software-prefetches ~1KiB ahead of the load stream: scans are
// memory-bound past ~1 GB/s/core, and the explicit PREFETCHT0 keeps the
// line fills ahead of the 4-lane consume rate across block boundaries
// where the hardware streamer has to restart.

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func prefetchT0(p *int64, rows int)
// Issues PREFETCHT0 for every cache line of rows*8 bytes starting at p.
TEXT ·prefetchT0(SB), NOSPLIT, $0-16
	MOVQ p+0(FP), SI
	MOVQ rows+8(FP), CX
	SHLQ $3, CX          // bytes
pf_loop:
	CMPQ CX, $0
	JLE  pf_done
	PREFETCHT0 (SI)
	ADDQ $64, SI
	SUBQ $64, CX
	JMP  pf_loop
pf_done:
	RET

// func rangeCountAVX2(vals *int64, n int, lo int64, width uint64) uint64
// Counts vals[i] with uint64(vals[i]-lo) <= width. n must be a multiple
// of 4 (callers pass multiples of 64).
TEXT ·rangeCountAVX2(SB), NOSPLIT, $0-40
	MOVQ vals+0(FP), SI
	MOVQ n+8(FP), CX
	MOVQ CX, R8                 // saved n: count = n + sum(acc lanes)
	MOVQ $0x8000000000000000, DX
	MOVQ lo+16(FP), AX
	SUBQ DX, AX                 // lo' = lo - 2^63
	MOVQ AX, X1
	VPBROADCASTQ X1, Y1
	MOVQ width+24(FP), AX
	ADDQ DX, AX                 // width' = width + 2^63
	MOVQ AX, X2
	VPBROADCASTQ X2, Y2
	VPXOR Y10, Y10, Y10         // four accumulators of -1 per non-match
	VPXOR Y11, Y11, Y11
	VPXOR Y12, Y12, Y12
	VPXOR Y13, Y13, Y13
rc_loop16:
	CMPQ CX, $16
	JL   rc_loop4
	VMOVDQU (SI), Y3
	VMOVDQU 32(SI), Y4
	VMOVDQU 64(SI), Y5
	VMOVDQU 96(SI), Y6
	PREFETCHT0 1024(SI)
	PREFETCHT0 1088(SI)
	VPSUBQ Y1, Y3, Y3           // u = v - lo'
	VPSUBQ Y1, Y4, Y4
	VPSUBQ Y1, Y5, Y5
	VPSUBQ Y1, Y6, Y6
	VPCMPGTQ Y2, Y3, Y3         // all-ones where u > width' (non-match)
	VPCMPGTQ Y2, Y4, Y4
	VPCMPGTQ Y2, Y5, Y5
	VPCMPGTQ Y2, Y6, Y6
	VPADDQ Y3, Y10, Y10
	VPADDQ Y4, Y11, Y11
	VPADDQ Y5, Y12, Y12
	VPADDQ Y6, Y13, Y13
	ADDQ $128, SI
	SUBQ $16, CX
	JMP  rc_loop16
rc_loop4:
	CMPQ CX, $4
	JL   rc_done
	VMOVDQU (SI), Y3
	VPSUBQ Y1, Y3, Y3
	VPCMPGTQ Y2, Y3, Y3
	VPADDQ Y3, Y10, Y10
	ADDQ $32, SI
	SUBQ $4, CX
	JMP  rc_loop4
rc_done:
	VPADDQ Y11, Y10, Y10
	VPADDQ Y13, Y12, Y12
	VPADDQ Y12, Y10, Y10
	VEXTRACTI128 $1, Y10, X3
	VPADDQ X3, X10, X10
	VPSRLDQ $8, X10, X3
	VPADDQ X3, X10, X10
	VZEROUPPER
	MOVQ X10, AX
	ADDQ R8, AX                 // n - nonmatches
	MOVQ AX, ret+32(FP)
	RET

// func rangeCountSumAVX2(col, agg *int64, n int, lo int64, width uint64) (count uint64, sum int64)
// Fused single-filter SUM kernel: count matches of col and sum agg over
// the matching lanes. n must be a multiple of 4.
TEXT ·rangeCountSumAVX2(SB), NOSPLIT, $0-56
	MOVQ col+0(FP), SI
	MOVQ agg+8(FP), DI
	MOVQ n+16(FP), CX
	MOVQ CX, R8
	MOVQ $0x8000000000000000, DX
	MOVQ lo+24(FP), AX
	SUBQ DX, AX
	MOVQ AX, X1
	VPBROADCASTQ X1, Y1
	MOVQ width+32(FP), AX
	ADDQ DX, AX
	MOVQ AX, X2
	VPBROADCASTQ X2, Y2
	VPXOR Y10, Y10, Y10         // count acc (-1 per non-match)
	VPXOR Y11, Y11, Y11
	VPXOR Y12, Y12, Y12         // sum acc
	VPXOR Y13, Y13, Y13
rcs_loop8:
	CMPQ CX, $8
	JL   rcs_loop4
	VMOVDQU (SI), Y3
	VMOVDQU 32(SI), Y4
	PREFETCHT0 1024(SI)
	PREFETCHT0 1024(DI)
	VPSUBQ Y1, Y3, Y3
	VPSUBQ Y1, Y4, Y4
	VPCMPGTQ Y2, Y3, Y3         // non-match lanes all-ones
	VPCMPGTQ Y2, Y4, Y4
	VPADDQ Y3, Y10, Y10
	VPADDQ Y4, Y11, Y11
	VPANDN (DI), Y3, Y5         // agg where match, 0 elsewhere
	VPANDN 32(DI), Y4, Y6
	VPADDQ Y5, Y12, Y12
	VPADDQ Y6, Y13, Y13
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $8, CX
	JMP  rcs_loop8
rcs_loop4:
	CMPQ CX, $4
	JL   rcs_done
	VMOVDQU (SI), Y3
	VPSUBQ Y1, Y3, Y3
	VPCMPGTQ Y2, Y3, Y3
	VPADDQ Y3, Y10, Y10
	VPANDN (DI), Y3, Y5
	VPADDQ Y5, Y12, Y12
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JMP  rcs_loop4
rcs_done:
	VPADDQ Y11, Y10, Y10
	VPADDQ Y13, Y12, Y12
	VEXTRACTI128 $1, Y10, X3
	VPADDQ X3, X10, X10
	VPSRLDQ $8, X10, X3
	VPADDQ X3, X10, X10
	VEXTRACTI128 $1, Y12, X4
	VPADDQ X4, X12, X12
	VPSRLDQ $8, X12, X4
	VPADDQ X4, X12, X12
	VZEROUPPER
	MOVQ X10, AX
	ADDQ R8, AX
	MOVQ AX, count+40(FP)
	MOVQ X12, AX
	MOVQ AX, sum+48(FP)
	RET

// func maskWordsAVX2(vals *int64, out *uint64, nWords int, lo int64, width uint64) uint64
// Evaluates the range predicate over nWords consecutive 64-value words,
// writing one selection bitmask per word (bit k set iff value k matches),
// and returns the OR of all produced words. Identical bit layout to the
// portable maskWord.
TEXT ·maskWordsAVX2(SB), NOSPLIT, $0-48
	MOVQ vals+0(FP), SI
	MOVQ out+8(FP), DI
	MOVQ nWords+16(FP), R13
	MOVQ $0x8000000000000000, DX
	MOVQ lo+24(FP), AX
	SUBQ DX, AX
	MOVQ AX, X1
	VPBROADCASTQ X1, Y1
	MOVQ width+32(FP), AX
	ADDQ DX, AX
	MOVQ AX, X2
	VPBROADCASTQ X2, Y2
	XORQ R9, R9                 // any
	TESTQ R13, R13
	JZ   mw_done
mw_word:
	XORQ R10, R10               // m
	XORQ CX, CX                 // shift
	MOVQ $16, BX                // 16 groups of 4 lanes
mw_group:
	VMOVDQU (SI), Y3
	PREFETCHT0 1024(SI)
	VPSUBQ Y1, Y3, Y3
	VPCMPGTQ Y2, Y3, Y3         // sign bit set on NON-match lanes
	VMOVMSKPD Y3, AX            // 4 non-match bits
	XORQ $0xF, AX               // match bits
	SHLQ CX, AX
	ORQ  AX, R10
	ADDQ $32, SI
	ADDQ $4, CX
	DECQ BX
	JNZ  mw_group
	MOVQ R10, (DI)
	ORQ  R10, R9
	ADDQ $8, DI
	DECQ R13
	JNZ  mw_word
mw_done:
	MOVQ R9, ret+40(FP)
	VZEROUPPER
	RET

// func maskWordsAndAVX2(vals *int64, out *uint64, nWords int, lo int64, width uint64) uint64
// Like maskWordsAVX2 but ANDs each produced word into out[w], skipping
// words whose existing mask is already zero, and returns the OR of the
// resulting words.
TEXT ·maskWordsAndAVX2(SB), NOSPLIT, $0-48
	MOVQ vals+0(FP), SI
	MOVQ out+8(FP), DI
	MOVQ nWords+16(FP), R13
	MOVQ $0x8000000000000000, DX
	MOVQ lo+24(FP), AX
	SUBQ DX, AX
	MOVQ AX, X1
	VPBROADCASTQ X1, Y1
	MOVQ width+32(FP), AX
	ADDQ DX, AX
	MOVQ AX, X2
	VPBROADCASTQ X2, Y2
	XORQ R9, R9                 // any
	TESTQ R13, R13
	JZ   mwa_done
mwa_word:
	MOVQ (DI), R11              // existing mask
	TESTQ R11, R11
	JZ   mwa_skip
	XORQ R10, R10
	XORQ CX, CX
	MOVQ $16, BX
mwa_group:
	VMOVDQU (SI), Y3
	PREFETCHT0 1024(SI)
	VPSUBQ Y1, Y3, Y3
	VPCMPGTQ Y2, Y3, Y3
	VMOVMSKPD Y3, AX
	XORQ $0xF, AX
	SHLQ CX, AX
	ORQ  AX, R10
	ADDQ $32, SI
	ADDQ $4, CX
	DECQ BX
	JNZ  mwa_group
	ANDQ R11, R10
	MOVQ R10, (DI)
	ORQ  R10, R9
	ADDQ $8, DI
	DECQ R13
	JNZ  mwa_word
	JMP  mwa_done
mwa_skip:
	ADDQ $512, SI               // 64 values
	ADDQ $8, DI
	DECQ R13
	JNZ  mwa_word
mwa_done:
	MOVQ R9, ret+40(FP)
	VZEROUPPER
	RET

DATA laneShifts<>+0(SB)/8, $0
DATA laneShifts<>+8(SB)/8, $1
DATA laneShifts<>+16(SB)/8, $2
DATA laneShifts<>+24(SB)/8, $3
GLOBL laneShifts<>(SB), RODATA|NOPTR, $32

DATA laneOnes<>+0(SB)/8, $1
DATA laneOnes<>+8(SB)/8, $1
DATA laneOnes<>+16(SB)/8, $1
DATA laneOnes<>+24(SB)/8, $1
GLOBL laneOnes<>(SB), RODATA|NOPTR, $32

DATA laneFours<>+0(SB)/8, $4
DATA laneFours<>+8(SB)/8, $4
DATA laneFours<>+16(SB)/8, $4
DATA laneFours<>+24(SB)/8, $4
GLOBL laneFours<>(SB), RODATA|NOPTR, $32

// func maskedSumAVX2(agg *int64, mask *uint64, nWords int) int64
// Sums agg[k] over the set bits of the nWords selection masks (64 values
// per word), skipping all-zero words. Wraps mod 2^64 exactly like the
// portable maskedSum.
//
// The mask word is broadcast straight from memory and the per-lane bit is
// isolated with a growing VPSRLVQ shift vector ([0..3], +4 per group), so
// the loop is pure VEX — a legacy-SSE GP->XMM move here would take the
// AVX-SSE transition penalty on every group with YMM state dirty.
TEXT ·maskedSumAVX2(SB), NOSPLIT, $0-32
	MOVQ agg+0(FP), SI
	MOVQ mask+8(FP), DI
	MOVQ nWords+16(FP), R13
	VMOVDQU laneOnes<>(SB), Y8
	VMOVDQU laneFours<>(SB), Y9
	VPXOR Y0, Y0, Y0            // sum acc
	TESTQ R13, R13
	JZ   ms_done
ms_word:
	MOVQ (DI), R10
	TESTQ R10, R10
	JZ   ms_skip
	VPBROADCASTQ (DI), Y1       // whole mask word in every lane
	VMOVDQU laneShifts<>(SB), Y7 // reset shifts to [0,1,2,3]
	MOVQ $16, BX
ms_group:
	VPSRLVQ Y7, Y1, Y2          // lane j of group k gets bits >> (4k+j)
	VPAND Y8, Y2, Y2            // isolate bit 0 per lane
	VPCMPEQQ Y8, Y2, Y2         // all-ones where bit set
	VPAND (SI), Y2, Y2          // agg where selected
	VPADDQ Y2, Y0, Y0
	VPADDQ Y9, Y7, Y7           // shifts += 4
	PREFETCHT0 1024(SI)
	ADDQ $32, SI
	DECQ BX
	JNZ  ms_group
	ADDQ $8, DI
	DECQ R13
	JNZ  ms_word
	JMP  ms_done
ms_skip:
	ADDQ $512, SI
	ADDQ $8, DI
	DECQ R13
	JNZ  ms_word
ms_done:
	VEXTRACTI128 $1, Y0, X3
	VPADDQ X3, X0, X0
	VPSRLDQ $8, X0, X3
	VPADDQ X3, X0, X0
	VZEROUPPER
	MOVQ X0, AX
	MOVQ AX, ret+24(FP)
	RET

package colstore

import (
	"math/bits"

	"repro/internal/query"
)

// Branch-free block-wise scan kernels.
//
// The non-exact ScanRange path processes rows in fixed-size blocks: every
// filter is evaluated into a selection bitmask (one bit per row) with a
// branchless range compare, masks are ANDed across filters, and the
// aggregate reads the combined mask — COUNT by popcount, SUM by masked
// accumulation. The per-value compare is the unsigned-subtract trick:
// for lo <= hi, v is in [lo, hi] iff uint64(v-lo) <= uint64(hi-lo)
// (two's-complement wraparound makes both sides the true differences mod
// 2^64, and an out-of-range v always lands above the width). bits.Sub64
// turns the comparison into a borrow flag, so mask construction compiles
// to straight-line sub/sbb/shift/or with no data-dependent branches.
//
// The dispatch specializes per (agg x filter-count) shape: 0 filters need
// no mask at all, 1 filter folds mask construction and aggregation into
// one pass with no mask buffer, and N filters materialize a per-block mask
// that later filters AND into (skipping blocks and words already dead).
// ScanRangeScalar retains the original row-at-a-time loop as the oracle
// the kernels are property-tested against.
//
// On amd64 with AVX2 (detected once at startup, see kernels_avx2.go) the
// same shapes dispatch to hand-written assembly processing 4 int64 lanes
// per instruction with software prefetch; the portable kernels in this
// file are the universal fallback (`purego` build tag, non-amd64, old
// CPUs, or TSUNAMI_PUREGO=1) and the middle tier of the three-way
// differential test SIMD == portable == scalar.
const (
	// blockRows is the kernel block size: 16 mask words of 64 rows.
	// Cache-residency math for the N-filter path, which revisits the
	// block once per filter and once for the aggregate: 1024 rows x 8 B =
	// 8 KiB per column, so a 4-filter SUM touches ~40 KiB of column data
	// per block plus the 128 B mask — resident in L1d (32-48 KiB) on the
	// cores this targets, which is what makes the later per-filter passes
	// and the masked aggregation hit L1 instead of re-streaming from L2.
	// Doubling to 2048 rows overflows L1d at 3+ filters and measured
	// slower on the count_4f shape; halving doubles the per-block
	// dispatch overhead without improving residency.
	blockRows  = 1024
	blockWords = blockRows / 64
)

// BenchShape is one (agg x filter-count) scan shape of the kernel
// benchmark suite. The canonical list lives in KernelBenchShapes so the
// CI-gated BenchmarkScanKernels and the bench harness's scan experiment
// can never drift apart on what they measure.
type BenchShape struct {
	Name  string
	Query query.Query
}

// KernelBenchShapes returns the canonical kernel benchmark shapes: the
// specialized (agg x 0/1/N-filter) dispatch targets, with ~50% selectivity
// per filter over uniform [0, 1e6) data — the worst case for a branchy
// scalar scan, so the kernel speedup these shapes measure is the floor.
func KernelBenchShapes() []BenchShape {
	f := func(dim int) query.Filter { return query.Filter{Dim: dim, Lo: 250_000, Hi: 750_000} }
	return []BenchShape{
		{"count_1f", query.NewCount(f(0))},
		{"count_2f", query.NewCount(f(0), f(1))},
		{"count_4f", query.NewCount(f(0), f(1), f(2), f(3))},
		{"sum_1f", query.NewSum(3, f(0))},
		{"sum_2f", query.NewSum(3, f(0), f(1))},
	}
}

// maskWord evaluates the range predicate [lo, lo+width] over exactly 64
// values and returns the selection bitmask (bit k set iff vals[k] matches).
// width is uint64(hi-lo); see the package comment for why the unsigned
// compare is exact over the full int64 domain.
func maskWord(vals []int64, lo int64, width uint64) uint64 {
	vals = vals[:64:64]
	var m uint64
	for k := 0; k < 64; k++ {
		_, borrow := bits.Sub64(width, uint64(vals[k]-lo), 0)
		m |= (borrow ^ 1) << k
	}
	return m
}

// maskedSum accumulates vals[k] for every set bit k without branching:
// a cleared bit contributes vals[k] & 0.
func maskedSum(vals []int64, m uint64) int64 {
	vals = vals[:64:64]
	var sum int64
	for k := 0; k < 64; k++ {
		sum += vals[k] & -int64((m>>k)&1)
	}
	return sum
}

// scanOneFilter dispatches the single-filter kernel to the AVX2 or
// portable tier (one-time CPU detection, runtime-togglable for tests).
func (s *Store) scanOneFilter(q query.Query, start, end int, res *ScanResult) {
	if simdEnabled() {
		s.scanOneFilterSIMD(q, start, end, res)
		return
	}
	s.scanOneFilterPortable(q, start, end, res)
}

// scanManyFilters dispatches the N-filter kernel to the AVX2 or portable
// tier.
func (s *Store) scanManyFilters(q query.Query, start, end int, res *ScanResult) {
	if simdEnabled() {
		s.scanManyFiltersSIMD(q, start, end, res)
		return
	}
	s.scanManyFiltersPortable(q, start, end, res)
}

// scanOneFilterPortable is the single-filter kernel: mask one 64-row word
// at a time and aggregate it immediately, so no mask buffer is needed.
func (s *Store) scanOneFilterPortable(q query.Query, start, end int, res *ScanResult) {
	f := q.Filters[0]
	col := s.cols[f.Dim][start:end]
	width := uint64(f.Hi - f.Lo)
	n := len(col)
	nw := n &^ 63
	count := 0
	if q.Agg == query.Count {
		for base := 0; base < nw; base += 64 {
			count += bits.OnesCount64(maskWord(col[base:base+64], f.Lo, width))
		}
		for _, v := range col[nw:] {
			if v >= f.Lo && v <= f.Hi {
				count++
			}
		}
		res.Count += uint64(count)
		return
	}
	agg := s.cols[q.AggDim][start:end]
	var sum int64
	for base := 0; base < nw; base += 64 {
		m := maskWord(col[base:base+64], f.Lo, width)
		if m == 0 {
			continue
		}
		count += bits.OnesCount64(m)
		sum += maskedSum(agg[base:base+64], m)
	}
	for i := nw; i < n; i++ {
		if v := col[i]; v >= f.Lo && v <= f.Hi {
			count++
			sum += agg[i]
		}
	}
	res.Count += uint64(count)
	res.Sum += sum
}

// scanManyFiltersPortable is the N-filter kernel: per block, evaluate each
// filter column-at-a-time into the block mask (first filter writes, later
// filters AND), short-circuiting filters once a block's mask is all-zero
// and skipping dead words, then aggregate the combined mask.
func (s *Store) scanManyFiltersPortable(q query.Query, start, end int, res *ScanResult) {
	var mask [blockWords]uint64
	var agg []int64
	doSum := q.Agg == query.Sum
	if doSum {
		agg = s.cols[q.AggDim][start:end]
	}
	n := end - start
	count := 0
	var sum int64
	for b0 := 0; b0 < n; b0 += blockRows {
		bn := n - b0
		if bn > blockRows {
			bn = blockRows
		}
		nw := bn >> 6
		var any uint64
		if nw > 0 {
			for fi, f := range q.Filters {
				col := s.cols[f.Dim][start+b0 : start+b0+nw*64]
				width := uint64(f.Hi - f.Lo)
				any = 0
				if fi == 0 {
					for w := 0; w < nw; w++ {
						m := maskWord(col[w*64:], f.Lo, width)
						mask[w] = m
						any |= m
					}
				} else {
					for w := 0; w < nw; w++ {
						m := mask[w]
						if m == 0 {
							continue
						}
						m &= maskWord(col[w*64:], f.Lo, width)
						mask[w] = m
						any |= m
					}
				}
				if any == 0 {
					break
				}
			}
		}
		if any != 0 {
			if doSum {
				for w := 0; w < nw; w++ {
					m := mask[w]
					if m == 0 {
						continue
					}
					count += bits.OnesCount64(m)
					sum += maskedSum(agg[b0+w*64:], m)
				}
			} else {
				for w := 0; w < nw; w++ {
					count += bits.OnesCount64(mask[w])
				}
			}
		}
		// Scalar tail: the final sub-word rows of the last block.
		for i := b0 + nw*64; i < b0+bn; i++ {
			row := start + i
			ok := true
			for _, f := range q.Filters {
				v := s.cols[f.Dim][row]
				if v < f.Lo || v > f.Hi {
					ok = false
					break
				}
			}
			if ok {
				count++
				if doSum {
					sum += s.cols[q.AggDim][row]
				}
			}
		}
	}
	res.Count += uint64(count)
	res.Sum += sum
}

//go:build amd64 && !purego

package colstore

import (
	"math/bits"
	"os"
	"sync/atomic"

	"repro/internal/query"
)

// Runtime dispatch for the AVX2 scan kernels. Detection runs once at
// process start: CPUID leaf 1 for AVX+OSXSAVE, XGETBV for OS-enabled
// YMM state, CPUID leaf 7 for AVX2. The TSUNAMI_PUREGO environment
// variable (any non-empty value) forces the portable kernels without a
// rebuild — the same effect as the `purego` build tag — so the fallback
// path stays testable on AVX2 machines.

//go:noescape
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

//go:noescape
func prefetchT0(p *int64, rows int)

//go:noescape
func rangeCountAVX2(vals *int64, n int, lo int64, width uint64) uint64

//go:noescape
func rangeCountSumAVX2(col, agg *int64, n int, lo int64, width uint64) (count uint64, sum int64)

//go:noescape
func maskWordsAVX2(vals *int64, out *uint64, nWords int, lo int64, width uint64) uint64

//go:noescape
func maskWordsAndAVX2(vals *int64, out *uint64, nWords int, lo int64, width uint64) uint64

//go:noescape
func maskedSumAVX2(agg *int64, mask *uint64, nWords int) int64

var haveAVX2 = detectAVX2()

// useSIMD gates kernel dispatch; atomic so tests and benchmarks can
// toggle it while concurrent readers scan.
var useSIMD atomic.Bool

func init() {
	useSIMD.Store(haveAVX2 && os.Getenv("TSUNAMI_PUREGO") == "")
}

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX): the OS saves YMM state on context
	// switch. Without this, executing VEX-256 faults.
	if lo, _ := xgetbv0(); lo&6 != 6 {
		return false
	}
	_, ebx, _, _ := cpuid(7, 0)
	return ebx&(1<<5) != 0 // AVX2
}

// SIMDAvailable reports whether the AVX2 kernels are compiled in and
// supported by this CPU (independent of the current dispatch setting).
func SIMDAvailable() bool { return haveAVX2 }

// SetSIMD enables or disables AVX2 kernel dispatch at runtime and
// returns the previous setting. Enabling is a no-op when the CPU lacks
// AVX2. Used by the differential tests and the bench harness to measure
// the portable path on SIMD-capable machines.
func SetSIMD(on bool) bool {
	prev := useSIMD.Load()
	useSIMD.Store(on && haveAVX2)
	return prev
}

// KernelName identifies the kernel tier ScanRange currently dispatches
// to: "avx2" or "portable".
func KernelName() string {
	if useSIMD.Load() {
		return "avx2"
	}
	return "portable"
}

func simdEnabled() bool { return useSIMD.Load() }

// scanOneFilterSIMD is the AVX2 single-filter kernel: one fused pass,
// 4 lanes per compare, no mask materialization. The asm loops prefetch
// ~1KiB ahead of every load stream.
func (s *Store) scanOneFilterSIMD(q query.Query, start, end int, res *ScanResult) {
	f := q.Filters[0]
	col := s.cols[f.Dim][start:end]
	width := uint64(f.Hi - f.Lo)
	n := len(col)
	nw := n &^ 63
	if q.Agg == query.Count {
		var count uint64
		if nw > 0 {
			count = rangeCountAVX2(&col[0], nw, f.Lo, width)
		}
		for _, v := range col[nw:] {
			if v >= f.Lo && v <= f.Hi {
				count++
			}
		}
		res.Count += count
		return
	}
	agg := s.cols[q.AggDim][start:end]
	var count uint64
	var sum int64
	if nw > 0 {
		count, sum = rangeCountSumAVX2(&col[0], &agg[0], nw, f.Lo, width)
	}
	for i := nw; i < n; i++ {
		if v := col[i]; v >= f.Lo && v <= f.Hi {
			count++
			sum += agg[i]
		}
	}
	res.Count += count
	res.Sum += sum
}

// scanManyFiltersSIMD mirrors the portable N-filter kernel block loop,
// with the per-word work in AVX2: the first filter writes each block's
// masks, later filters AND into them (skipping dead words inside the
// asm), and SUM reads the combined mask via the vectorized masked
// accumulator. Before computing a block it software-prefetches the next
// block of the first filter column (and the aggregate column for SUM) —
// the streams the block loop is guaranteed to touch next — so line
// fills overlap with the current block's compute.
func (s *Store) scanManyFiltersSIMD(q query.Query, start, end int, res *ScanResult) {
	var mask [blockWords]uint64
	var agg []int64
	doSum := q.Agg == query.Sum
	if doSum {
		agg = s.cols[q.AggDim][start:end]
	}
	col0 := s.cols[q.Filters[0].Dim]
	n := end - start
	count := 0
	var sum int64
	for b0 := 0; b0 < n; b0 += blockRows {
		bn := n - b0
		if bn > blockRows {
			bn = blockRows
		}
		if next := b0 + blockRows; next < n {
			nn := n - next
			if nn > blockRows {
				nn = blockRows
			}
			prefetchT0(&col0[start+next], nn)
			if doSum {
				prefetchT0(&agg[next], nn)
			}
		}
		nw := bn >> 6
		var any uint64
		if nw > 0 {
			for fi, f := range q.Filters {
				colp := &s.cols[f.Dim][start+b0]
				width := uint64(f.Hi - f.Lo)
				if fi == 0 {
					any = maskWordsAVX2(colp, &mask[0], nw, f.Lo, width)
				} else {
					any = maskWordsAndAVX2(colp, &mask[0], nw, f.Lo, width)
				}
				if any == 0 {
					break
				}
			}
		}
		if any != 0 {
			for w := 0; w < nw; w++ {
				count += bits.OnesCount64(mask[w])
			}
			if doSum {
				sum += maskedSumAVX2(&agg[b0], &mask[0], nw)
			}
		}
		// Scalar tail: the final sub-word rows of the last block.
		for i := b0 + nw*64; i < b0+bn; i++ {
			row := start + i
			ok := true
			for _, f := range q.Filters {
				v := s.cols[f.Dim][row]
				if v < f.Lo || v > f.Hi {
					ok = false
					break
				}
			}
			if ok {
				count++
				if doSum {
					sum += s.cols[q.AggDim][row]
				}
			}
		}
	}
	res.Count += uint64(count)
	res.Sum += sum
}

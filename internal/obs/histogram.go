package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: values 0..7 get exact buckets; above that,
// each power-of-two octave splits into 8 log-spaced sub-buckets
// (subBits=3), bounding relative quantile error at 1/8 = 12.5% across
// the full int63 range (max exponent 62). 8 exact + 60 octaves x 8 subs
// = 488 buckets; at 8 bytes each a histogram's count array is ~4 KiB
// per stripe.
const (
	subBits    = 3
	subBuckets = 1 << subBits // 8
	numBuckets = subBuckets + (63-subBits)*subBuckets // 8 + 60*8 = 488
)

// bucketIdx maps a non-negative value to its bucket.
func bucketIdx(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // highest set bit, >= subBits
	sub := (v >> (uint(e) - subBits)) & (subBuckets - 1)
	return (e-subBits)*subBuckets + subBuckets + int(sub)
}

// bucketMax returns the largest value that lands in bucket idx — the
// upper bound reported for quantiles falling in that bucket, so reported
// quantiles never understate the true value by more than the bucket's
// 12.5% width.
func bucketMax(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	k := idx - subBuckets
	e := subBits + k>>subBits
	sub := int64(k & (subBuckets - 1))
	return ((subBuckets + sub + 1) << (uint(e) - subBits)) - 1
}

// histStripe is one recorder lane: bucket counts plus a running sum.
// Stripes are independently updated and summed at snapshot time, so the
// record path never shares cache lines between goroutines hashed to
// different stripes.
type histStripe struct {
	counts [numBuckets]atomic.Uint64
	sum    atomic.Int64
	_      [56]byte
}

// Histogram is a lock-free log-bucketed histogram. Record is wait-free
// (two atomic adds) and allocation-free; Snapshot sums the stripes.
// Scale converts recorded raw values to exposed units: duration
// histograms record nanoseconds with Scale=1e-9 so /metrics exports
// seconds, plain value histograms (wave sizes, fan-out) use Scale=1.
// The zero value is NOT usable; get one from Registry.Histogram or
// Registry.DurationHistogram.
type Histogram struct {
	stripes []histStripe
	mask    uint32
	scale   float64
}

func newHistogram(scale float64) *Histogram {
	return &Histogram{stripes: make([]histStripe, numStripes), mask: uint32(numStripes - 1), scale: scale}
}

// Record adds one observation of a raw value. Negative values clamp to 0
// (a clock step backwards should not corrupt the index math).
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	s := &h.stripes[stripeFor(h.mask)]
	s.counts[bucketIdx(v)].Add(1)
	s.sum.Add(v)
}

// RecordDuration records d in the histogram's raw unit (nanoseconds for
// duration histograms).
func (h *Histogram) RecordDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Record(int64(d))
}

// Snapshot sums the stripes into an immutable, mergeable view.
func (h *Histogram) Snapshot() HistSnapshot {
	snap := HistSnapshot{Scale: h.scale}
	for i := range h.stripes {
		s := &h.stripes[i]
		for b := range s.counts {
			if n := s.counts[b].Load(); n != 0 {
				if snap.Buckets == nil {
					snap.Buckets = make([]uint64, numBuckets)
				}
				snap.Buckets[b] += n
			}
		}
		snap.Sum += s.sum.Load()
	}
	if snap.Buckets == nil {
		snap.Buckets = make([]uint64, numBuckets)
	}
	return snap
}

// HistSnapshot is a point-in-time copy of a histogram: a plain bucket
// array plus raw-unit sum. Snapshots merge and subtract bucket-wise,
// which is what makes cross-shard aggregation and bench interval diffs
// exact: quantiles of a merged snapshot equal quantiles of a histogram
// that had recorded all the observations itself.
type HistSnapshot struct {
	Buckets []uint64
	Sum     int64
	Scale   float64
}

// Count is the number of recorded observations.
func (s HistSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Buckets {
		n += c
	}
	return n
}

// Quantile returns the q-quantile (q in [0,1]) in scaled units, as the
// upper bound of the bucket holding the rank-ceil(q*count) observation.
// Returns 0 for an empty snapshot; callers that must distinguish "no
// observations" from a genuine zero quantile use QuantileOK.
func (s HistSnapshot) Quantile(q float64) float64 {
	v, _ := s.QuantileOK(q)
	return v
}

// QuantileOK is Quantile with an explicit empty-snapshot sentinel: it
// reports (0, false) when the snapshot holds no observations, so callers
// rendering quantiles (the CLI stats line, bench reports) can print a
// placeholder instead of a misleading 0. With at least one observation it
// reports (quantile, true); a single sample v yields its bucket's upper
// bound, within the histogram's 12.5% relative error of v.
func (s HistSnapshot) QuantileOK(q float64) (float64, bool) {
	total := s.Count()
	if total == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for b, c := range s.Buckets {
		seen += c
		if seen >= rank {
			return float64(bucketMax(b)) * s.scaleOr1(), true
		}
	}
	return float64(bucketMax(len(s.Buckets)-1)) * s.scaleOr1(), true
}

// Mean returns the exact mean of recorded values in scaled units (the
// sum is tracked exactly, not reconstructed from buckets).
func (s HistSnapshot) Mean() float64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	return float64(s.Sum) / float64(total) * s.scaleOr1()
}

// Merge returns the bucket-wise union of two snapshots (cross-shard
// aggregation). Merging with an empty snapshot is the identity.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if len(o.Buckets) == 0 {
		return s.clone()
	}
	if len(s.Buckets) == 0 {
		out := o.clone()
		if out.Scale == 0 {
			out.Scale = s.Scale
		}
		return out
	}
	out := s.clone()
	for b, c := range o.Buckets {
		out.Buckets[b] += c
	}
	out.Sum += o.Sum
	return out
}

// Sub returns the interval histogram s minus an earlier snapshot o —
// the observations recorded between the two scrapes. Buckets saturate
// at zero so a mismatched pair cannot underflow.
func (s HistSnapshot) Sub(o HistSnapshot) HistSnapshot {
	out := s.clone()
	for b := range out.Buckets {
		if b < len(o.Buckets) {
			if o.Buckets[b] >= out.Buckets[b] {
				out.Buckets[b] = 0
			} else {
				out.Buckets[b] -= o.Buckets[b]
			}
		}
	}
	out.Sum -= o.Sum
	return out
}

func (s HistSnapshot) clone() HistSnapshot {
	out := HistSnapshot{Sum: s.Sum, Scale: s.Scale}
	out.Buckets = make([]uint64, numBuckets)
	copy(out.Buckets, s.Buckets)
	return out
}

func (s HistSnapshot) scaleOr1() float64 {
	if s.Scale == 0 {
		return 1
	}
	return s.Scale
}

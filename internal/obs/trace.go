package obs

import (
	"fmt"
	"strings"
	"time"
)

// QueryTrace is an opt-in, per-query execution trace: stage timings
// (plan/route/scan/merge...) plus per-shard breakdowns for scatter-gather
// queries. It is the explain-analyze counterpart to the aggregate
// histograms — the registry tells you p99 moved, a trace tells you which
// stage of which shard moved it. Traces are built by the ExecuteTrace
// methods (core, live, sharded) and rendered by String; they are not
// concurrency-safe and cost a few allocations, which is why they are
// opt-in rather than ambient.
type QueryTrace struct {
	// Query is the rendered query text the trace belongs to.
	Query string
	// Total is wall time from entry to result.
	Total time.Duration
	// Stages are the top-level phases in execution order.
	Stages []TraceStage
	// Shards is the per-shard breakdown (scatter-gather only).
	Shards []ShardSpan
	// Rows and Bytes are the scan volume behind the answer
	// (ScanResult.PointsScanned / ScanResult.BytesTouched).
	Rows  uint64
	Bytes uint64
	// Regions is how many index regions the planner routed the query to
	// (summed across shards for a sharded trace).
	Regions int
}

// TraceStage is one named phase of a traced query.
type TraceStage struct {
	Name     string
	Duration time.Duration
	// Detail is an optional human note ("3 of 4 shards pruned").
	Detail string
}

// ShardSpan is one shard's contribution to a scatter-gather query.
type ShardSpan struct {
	Shard    int
	Duration time.Duration
	Rows     uint64
	Bytes    uint64
	Regions  int
}

// AddStage appends a completed stage.
func (t *QueryTrace) AddStage(name string, d time.Duration, detail string) {
	t.Stages = append(t.Stages, TraceStage{Name: name, Duration: d, Detail: detail})
}

// String renders the trace in an explain-analyze style block.
func (t *QueryTrace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %s\n", t.Query)
	fmt.Fprintf(&b, "total: %s  (rows scanned %d, bytes touched %d, regions %d)\n",
		fmtDur(t.Total), t.Rows, t.Bytes, t.Regions)
	for _, st := range t.Stages {
		pct := 0.0
		if t.Total > 0 {
			pct = 100 * float64(st.Duration) / float64(t.Total)
		}
		fmt.Fprintf(&b, "  %-8s %10s  %5.1f%%", st.Name, fmtDur(st.Duration), pct)
		if st.Detail != "" {
			fmt.Fprintf(&b, "  %s", st.Detail)
		}
		b.WriteByte('\n')
	}
	for _, sh := range t.Shards {
		fmt.Fprintf(&b, "  shard %-3d %10s  rows %d  bytes %d  regions %d\n",
			sh.Shard, fmtDur(sh.Duration), sh.Rows, sh.Bytes, sh.Regions)
	}
	return b.String()
}

// fmtDur prints a duration with microsecond resolution — traced stages
// are often sub-millisecond and default formatting drowns them in digits.
func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

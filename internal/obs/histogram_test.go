package obs

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestBucketRoundTrip checks the index/bound pair is consistent: every
// value lands in a bucket whose bound is >= the value, and the bound
// itself lands back in the same bucket (bucketMax is the bucket's
// largest member).
func TestBucketRoundTrip(t *testing.T) {
	values := []int64{0, 1, 2, 7, 8, 9, 15, 16, 17, 100, 1023, 1024, 1025,
		1<<20 - 1, 1 << 20, 1<<40 + 12345, 1<<62 - 1, 1 << 62}
	for i := 0; i < 10000; i++ {
		values = append(values, rand.Int63())
	}
	for _, v := range values {
		idx := bucketIdx(v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIdx(%d) = %d out of range", v, idx)
		}
		max := bucketMax(idx)
		if max < v {
			t.Fatalf("bucketMax(%d) = %d < value %d", idx, max, v)
		}
		if bucketIdx(max) != idx {
			t.Fatalf("bucketMax(%d) = %d maps back to bucket %d", idx, max, bucketIdx(max))
		}
		if idx > 0 {
			if prev := bucketMax(idx - 1); prev >= v {
				t.Fatalf("value %d in bucket %d but previous bucket bound %d >= value", v, idx, prev)
			}
		}
	}
}

// TestBucketBoundsMonotone checks bucket bounds strictly increase across
// the whole index range (a prerequisite for cumulative le buckets).
func TestBucketBoundsMonotone(t *testing.T) {
	prev := int64(-1)
	for idx := 0; idx < numBuckets; idx++ {
		b := bucketMax(idx)
		if b <= prev {
			t.Fatalf("bucketMax(%d) = %d <= bucketMax(%d) = %d", idx, b, idx-1, prev)
		}
		prev = b
	}
}

// TestQuantileDifferential is the randomized oracle test: quantiles of
// the histogram must equal the bucket-rounded quantiles of a sorted
// slice holding the same observations, for several distributions and
// quantile points. The histogram and the oracle share the
// rank-ceil(q*n) convention, so after pushing the oracle's answer
// through the same bucket rounding the match is exact, not approximate.
func TestQuantileDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	distros := map[string]func() int64{
		"uniform":   func() int64 { return rng.Int63n(1_000_000) },
		"exp":       func() int64 { return int64(rng.ExpFloat64() * 50_000) },
		"heavytail": func() int64 { return int64(1) << uint(rng.Intn(40)) },
		"constant":  func() int64 { return 42_000 },
		"tiny":      func() int64 { return rng.Int63n(8) },
	}
	for name, draw := range distros {
		for _, n := range []int{1, 2, 10, 1000, 50_000} {
			h := newHistogram(1)
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = draw()
				h.Record(vals[i])
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			snap := h.Snapshot()
			if got := snap.Count(); got != uint64(n) {
				t.Fatalf("%s/n=%d: count %d want %d", name, n, got, n)
			}
			for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
				rank := int(q * float64(n))
				if rank < 1 {
					rank = 1
				}
				if rank > n {
					rank = n
				}
				oracle := float64(bucketMax(bucketIdx(vals[rank-1])))
				if got := snap.Quantile(q); got != oracle {
					t.Fatalf("%s/n=%d q=%g: hist %g, oracle (bucket-rounded) %g (raw %d)",
						name, n, q, got, oracle, vals[rank-1])
				}
			}
		}
	}
}

// TestQuantileErrorBound checks the structural guarantee: a reported
// quantile never exceeds the true order statistic by more than the
// 12.5% bucket width (and never understates it).
func TestQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := newHistogram(1)
	vals := make([]int64, 20_000)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 30)
		h.Record(vals[i])
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	snap := h.Snapshot()
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		rank := int(q * float64(len(vals)))
		truth := float64(vals[rank-1])
		got := snap.Quantile(q)
		if got < truth {
			t.Fatalf("q=%g: reported %g below true order statistic %g", q, got, truth)
		}
		if got > truth*1.125+1 {
			t.Fatalf("q=%g: reported %g exceeds true %g by more than 12.5%%", q, got, truth)
		}
	}
}

// TestMergeAssociativity checks cross-shard aggregation semantics:
// merging per-shard snapshots in any grouping equals one histogram that
// saw every observation, and merge with an empty snapshot is identity.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	shards := make([]*Histogram, 4)
	union := newHistogram(1)
	for i := range shards {
		shards[i] = newHistogram(1)
		for j := 0; j < 5000; j++ {
			v := rng.Int63n(1 << 34)
			shards[i].Record(v)
			union.Record(v)
		}
	}
	s := make([]HistSnapshot, len(shards))
	for i, h := range shards {
		s[i] = h.Snapshot()
	}
	left := s[0].Merge(s[1]).Merge(s[2]).Merge(s[3])
	right := s[0].Merge(s[1].Merge(s[2].Merge(s[3])))
	want := union.Snapshot()
	for _, got := range []HistSnapshot{left, right} {
		if got.Count() != want.Count() || got.Sum != want.Sum {
			t.Fatalf("merge count/sum (%d,%d) != union (%d,%d)", got.Count(), got.Sum, want.Count(), want.Sum)
		}
		for b := range want.Buckets {
			if got.Buckets[b] != want.Buckets[b] {
				t.Fatalf("bucket %d: merged %d union %d", b, got.Buckets[b], want.Buckets[b])
			}
		}
		for _, q := range []float64{0.5, 0.99} {
			if got.Quantile(q) != want.Quantile(q) {
				t.Fatalf("q=%g: merged %g union %g", q, got.Quantile(q), want.Quantile(q))
			}
		}
	}
	empty := newHistogram(1).Snapshot()
	id := s[0].Merge(empty)
	if id.Count() != s[0].Count() || id.Sum != s[0].Sum {
		t.Fatalf("merge with empty changed the snapshot")
	}
}

// TestSubInterval checks the scrape-diff path: (after - before) holds
// exactly the observations recorded between the two snapshots.
func TestSubInterval(t *testing.T) {
	h := newHistogram(1)
	for i := 0; i < 100; i++ {
		h.Record(int64(i))
	}
	before := h.Snapshot()
	interval := newHistogram(1)
	for i := 0; i < 500; i++ {
		v := int64(1000 + i*37)
		h.Record(v)
		interval.Record(v)
	}
	got := h.Snapshot().Sub(before)
	want := interval.Snapshot()
	if got.Count() != want.Count() || got.Sum != want.Sum {
		t.Fatalf("interval count/sum (%d,%d) want (%d,%d)", got.Count(), got.Sum, want.Count(), want.Sum)
	}
	for b := range want.Buckets {
		if got.Buckets[b] != want.Buckets[b] {
			t.Fatalf("bucket %d: interval %d want %d", b, got.Buckets[b], want.Buckets[b])
		}
	}
}

// TestDurationScale checks duration histograms record ns, expose seconds.
func TestDurationScale(t *testing.T) {
	h := newHistogram(1e-9)
	h.RecordDuration(10 * time.Millisecond)
	snap := h.Snapshot()
	p := snap.Quantile(0.5)
	if p < 0.010 || p > 0.010*1.125+1e-9 {
		t.Fatalf("p50 of a 10ms observation = %gs, want ~0.010s", p)
	}
	if m := snap.Mean(); m < 0.0099 || m > 0.0101 {
		t.Fatalf("mean = %gs, want 0.010s exactly (sum is tracked raw)", m)
	}
}

// TestConcurrentRecord hammers one histogram and one counter from many
// goroutines (run under -race in CI) and checks nothing is lost: counts
// are exact because every Record is an atomic add to some stripe.
func TestConcurrentRecord(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10_000
	)
	h := newHistogram(1)
	c := newCounter()
	done := make(chan int64, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			var sum int64
			for i := 0; i < perG; i++ {
				v := int64(g*perG + i)
				h.Record(v)
				c.Add(2)
				sum += v
			}
			done <- sum
		}()
	}
	var wantSum int64
	for g := 0; g < goroutines; g++ {
		wantSum += <-done
	}
	snap := h.Snapshot()
	if got := snap.Count(); got != goroutines*perG {
		t.Fatalf("count %d want %d", got, goroutines*perG)
	}
	if snap.Sum != wantSum {
		t.Fatalf("sum %d want %d", snap.Sum, wantSum)
	}
	if got := c.Load(); got != 2*goroutines*perG {
		t.Fatalf("counter %d want %d", got, 2*goroutines*perG)
	}
}

// TestRecordAllocFree asserts the hot record path does not allocate —
// the stack-probe stripe hash must not force an escape.
func TestRecordAllocFree(t *testing.T) {
	h := newHistogram(1)
	c := newCounter()
	g := newGauge()
	if n := testing.AllocsPerRun(1000, func() {
		h.Record(12345)
		c.Inc()
		g.Add(1)
	}); n != 0 {
		t.Fatalf("record path allocates %v per op, want 0", n)
	}
}

// TestNegativeClamp checks a backwards clock step records as 0 rather
// than corrupting bucket math.
func TestNegativeClamp(t *testing.T) {
	h := newHistogram(1)
	h.Record(-5)
	snap := h.Snapshot()
	if snap.Count() != 1 || snap.Buckets[0] != 1 {
		t.Fatalf("negative value not clamped to bucket 0: %+v", snap.Buckets[:4])
	}
}

// TestQuantileOKEmpty pins the empty-histogram sentinel: an empty
// snapshot must report (0, false) for every quantile — never a
// bucket-edge artifact — and the legacy Quantile wrapper must return 0.
func TestQuantileOKEmpty(t *testing.T) {
	h := newHistogram(1e-9)
	snap := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v, ok := snap.QuantileOK(q); ok || v != 0 {
			t.Fatalf("empty QuantileOK(%v) = (%v, %v), want (0, false)", q, v, ok)
		}
		if v := snap.Quantile(q); v != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, v)
		}
	}
	// A diffed pair of identical snapshots is empty too.
	h.Record(1234)
	s := h.Snapshot()
	if v, ok := s.Sub(s).QuantileOK(0.99); ok || v != 0 {
		t.Fatalf("self-diff QuantileOK = (%v, %v), want (0, false)", v, ok)
	}
}

// TestQuantileOKSingleSample: one observation v must yield ok=true at
// every quantile, with the value equal to v's bucket upper bound (within
// the histogram's 12.5% relative error of v, never below it).
func TestQuantileOKSingleSample(t *testing.T) {
	for _, v := range []int64{0, 1, 7, 8, 1000, 123456789} {
		h := newHistogram(0) // scale 0 → raw units
		h.Record(v)
		snap := h.Snapshot()
		want := float64(bucketMax(bucketIdx(v)))
		for _, q := range []float64{0, 0.5, 1} {
			got, ok := snap.QuantileOK(q)
			if !ok {
				t.Fatalf("single-sample QuantileOK(%v) not ok for v=%d", q, v)
			}
			if got != want {
				t.Fatalf("single-sample QuantileOK(%v) for v=%d = %v, want bucket bound %v", q, v, got, want)
			}
			if got < float64(v) || got > float64(v)*1.125+1 {
				t.Fatalf("single-sample bound %v outside [v, 1.125v+1] for v=%d", got, v)
			}
		}
	}
}

// Package obs is the repository's observability core: allocation-free
// atomic counters, gauges, and log-bucketed latency histograms behind a
// named registry, with Prometheus text exposition, a JSON /statsz view,
// and snapshot/diff support for the bench harness.
//
// The package is deliberately dependency-free (stdlib only) and designed
// for the serving hot path: recording a counter or histogram observation
// is a handful of atomic adds with no allocation, no lock, and no map
// lookup (components resolve their instruments once at construction and
// keep the pointers). Hot instruments are striped across padded per-CPU
// cells so concurrent recorders on different cores do not ping-pong one
// cache line — the same false-sharing discipline the scan kernels apply
// to data now applied to the telemetry that watches them. Reads (scrapes,
// Stats, bench snapshots) sum the stripes; they are lock-free and may run
// concurrently with any number of writers.
//
// Everything a store or executor measures lands in a *Registry the caller
// supplies (see live.Config.Metrics, sharded.Config.Metrics,
// ExecutorOptions.Metrics); a nil registry disables instrumentation
// entirely. Handler exposes a registry over HTTP as Prometheus
// /metrics, JSON /statsz, and net/http/pprof.
package obs

import (
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// numStripes is the stripe count hot instruments spread their cells over:
// the next power of two covering GOMAXPROCS, capped at 8 (beyond that the
// summation cost on every scrape outweighs contention wins). Fixed at
// init so stripe masks are constants on the record path; on a
// GOMAXPROCS=1 box it collapses to one stripe and striping costs nothing.
var numStripes = func() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 8 {
		n <<= 1
	}
	return n
}()

// cell is one padded counter stripe: the value plus enough padding that
// two adjacent cells never share a 64-byte cache line.
type cell struct {
	v atomic.Uint64
	_ [56]byte
}

// stripeFor picks the calling goroutine's stripe. Go exposes no CPU or
// goroutine id, so this hashes the address of a stack variable: goroutine
// stacks live in distinct allocations, which spreads concurrent
// goroutines across stripes, and a goroutine keeps its stripe for as long
// as its stack stays put (a stack move just re-hashes — correctness never
// depends on stability). The pointer is only ever converted *to* uintptr,
// which does not escape, so the record path stays allocation-free.
func stripeFor(mask uint32) uint32 {
	var probe byte
	p := uintptr(unsafe.Pointer(&probe))
	h := uint64(p) * 0x9E3779B97F4A7C15 // Fibonacci hashing mixes the low page bits up
	return uint32(h>>33) & mask
}

// Counter is a monotonically increasing striped counter. The zero value
// is NOT usable; get one from Registry.Counter.
type Counter struct {
	stripes []cell
	mask    uint32
}

func newCounter() *Counter {
	return &Counter{stripes: make([]cell, numStripes), mask: uint32(numStripes - 1)}
}

// Add increments the counter by n. Safe and contention-striped for any
// number of concurrent callers; allocation-free.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.stripes[stripeFor(c.mask)].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load sums the stripes. Concurrent adds may or may not be included; the
// value is always a valid point between the call's start and end.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.stripes {
		total += c.stripes[i].v.Load()
	}
	return total
}

// Gauge is an instantaneous int64 value (queue depth, buffered rows).
// The zero value is NOT usable; get one from Registry.Gauge.
type Gauge struct {
	v atomic.Int64
}

func newGauge() *Gauge { return &Gauge{} }

// Set stores the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (use +1/-1 around in-flight work).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// QueryMetrics bundles the conventional query-path instruments every
// serving layer records — total queries, end-to-end latency, and the rows
// and bytes its scans touched (riding ScanResult.PointsScanned and
// ScanResult.BytesTouched) — under the shared metric names, so the CLI,
// the /metrics endpoint, and the bench harness read one schema regardless
// of whether queries ran against a plain index, a LiveStore epoch, or a
// shard. NewQueryMetrics on a nil registry returns nil, and a nil
// *QueryMetrics ignores observations, so callers need no branches.
type QueryMetrics struct {
	queries *Counter
	latency *Histogram
	rows    *Counter
	bytes   *Counter
}

// NewQueryMetrics resolves the query-path instruments in r (creating them
// on first use). A nil r yields a nil, no-op QueryMetrics.
func NewQueryMetrics(r *Registry) *QueryMetrics {
	if r == nil {
		return nil
	}
	return &QueryMetrics{
		queries: r.Counter(MQueries),
		latency: r.DurationHistogram(MQueryLatency),
		rows:    r.Counter(MScanRows),
		bytes:   r.Counter(MScanBytes),
	}
}

// Observe records one answered query.
func (m *QueryMetrics) Observe(d time.Duration, rowsScanned, bytesTouched uint64) {
	if m == nil {
		return
	}
	m.queries.Inc()
	m.latency.RecordDuration(d)
	m.rows.Add(rowsScanned)
	m.bytes.Add(bytesTouched)
}

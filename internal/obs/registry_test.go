package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryGetOrCreate checks the same name yields the same
// instrument, including under concurrent first access.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same counter name returned distinct instances")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same gauge name returned distinct instances")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same histogram name returned distinct instances")
	}

	var wg sync.WaitGroup
	got := make([]*Counter, 16)
	for i := range got {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = r.Counter("raced")
		}()
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent get-or-create returned distinct instances")
		}
	}
}

// TestNilRegistryNoOp checks the nil-disables-everything contract every
// instrumented component relies on.
func TestNilRegistryNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(5)
	r.Gauge("g").Set(7)
	r.Histogram("h").Record(9)
	r.DurationHistogram("d").RecordDuration(time.Second)
	r.GaugeFunc("f", func() float64 { return 1 })
	NewQueryMetrics(r).Observe(time.Millisecond, 10, 80)
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Hists) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

// TestSnapshotDiff checks counters subtract, gauges keep the current
// level, and histogram diffs hold only the interval's observations.
func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Add(10)
	g.Set(3)
	h.Record(100)
	before := r.Snapshot()
	c.Add(7)
	g.Set(99)
	h.Record(2000)
	diff := r.Snapshot().Diff(before)
	if diff.Counters["c"] != 7 {
		t.Fatalf("counter diff %d want 7", diff.Counters["c"])
	}
	if diff.Gauges["g"] != 99 {
		t.Fatalf("gauge in diff %g want current level 99", diff.Gauges["g"])
	}
	hd := diff.Hists["h"]
	if hd.Count() != 1 {
		t.Fatalf("hist diff count %d want 1", hd.Count())
	}
	if q := hd.Quantile(1); q != float64(bucketMax(bucketIdx(2000))) {
		t.Fatalf("hist diff max %g, want bucket bound of 2000", q)
	}
}

// TestGaugeFunc checks function gauges are evaluated at snapshot time
// and re-registration replaces the source.
func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 1.5
	r.GaugeFunc("fn", func() float64 { return v })
	if got := r.Snapshot().Gauges["fn"]; got != 1.5 {
		t.Fatalf("gauge func %g want 1.5", got)
	}
	v = 2.5
	if got := r.Snapshot().Gauges["fn"]; got != 2.5 {
		t.Fatalf("gauge func not re-evaluated: %g want 2.5", got)
	}
	r.GaugeFunc("fn", func() float64 { return -1 })
	if got := r.Snapshot().Gauges["fn"]; got != -1 {
		t.Fatalf("gauge func not replaced: %g want -1", got)
	}
}

// TestQueryMetricsSharedInstance checks two QueryMetrics from one
// registry feed the same instruments — the property that makes shard
// stores aggregate by construction.
func TestQueryMetricsSharedInstance(t *testing.T) {
	r := NewRegistry()
	a := NewQueryMetrics(r)
	b := NewQueryMetrics(r)
	a.Observe(time.Millisecond, 100, 800)
	b.Observe(2*time.Millisecond, 50, 400)
	snap := r.Snapshot()
	if snap.Counters[MQueries] != 2 {
		t.Fatalf("queries %d want 2", snap.Counters[MQueries])
	}
	if snap.Counters[MScanRows] != 150 || snap.Counters[MScanBytes] != 1200 {
		t.Fatalf("rows/bytes %d/%d want 150/1200", snap.Counters[MScanRows], snap.Counters[MScanBytes])
	}
	if snap.Hists[MQueryLatency].Count() != 2 {
		t.Fatalf("latency count %d want 2", snap.Hists[MQueryLatency].Count())
	}
}

// TestWritePrometheus checks exposition well-formedness: TYPE lines, a
// cumulative non-decreasing le series ending in +Inf, matching _count,
// and label-suffixed gauges declared under their family name.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("tsunami_queries_total").Add(3)
	r.Gauge(`tsunami_sharded_skew{shard="0"}`).Set(2)
	r.Gauge(`tsunami_sharded_skew{shard="1"}`).Set(4)
	h := r.DurationHistogram("tsunami_query_latency_seconds")
	h.RecordDuration(time.Millisecond)
	h.RecordDuration(20 * time.Millisecond)
	h.RecordDuration(20 * time.Millisecond)

	var b strings.Builder
	WritePrometheus(&b, r.Snapshot())
	text := b.String()

	for _, want := range []string{
		"# TYPE tsunami_queries_total counter\n",
		"tsunami_queries_total 3\n",
		"# TYPE tsunami_sharded_skew gauge\n",
		`tsunami_sharded_skew{shard="0"} 2` + "\n",
		`tsunami_sharded_skew{shard="1"} 4` + "\n",
		"# TYPE tsunami_query_latency_seconds histogram\n",
		`tsunami_query_latency_seconds_bucket{le="+Inf"} 3` + "\n",
		"tsunami_query_latency_seconds_count 3\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	if strings.Count(text, "# TYPE tsunami_sharded_skew gauge") != 1 {
		t.Fatalf("family TYPE line repeated per labeled series:\n%s", text)
	}
	// Cumulative le buckets must be non-decreasing.
	prev := uint64(0)
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "tsunami_query_latency_seconds_bucket") {
			continue
		}
		fields := strings.Fields(line)
		cum, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if cum < prev {
			t.Fatalf("cumulative bucket decreased: %q after %d", line, prev)
		}
		prev = cum
	}
	if prev != 3 {
		t.Fatalf("final cumulative bucket %d want 3", prev)
	}
}

// TestStatsz checks the JSON reduction carries quantiles and levels.
func TestStatsz(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(5)
	r.Gauge("g").Set(-2)
	h := r.Histogram("h")
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}
	sz := ToStatsz(r.Snapshot())
	if sz.Counters["c"] != 5 || sz.Gauges["g"] != -2 {
		t.Fatalf("counters/gauges wrong: %+v", sz)
	}
	hh := sz.Histograms["h"]
	if hh.Count != 100 || hh.P50 < 50_000 || hh.P99 < hh.P50 || hh.P999 < hh.P99 {
		t.Fatalf("histogram reduction wrong: %+v", hh)
	}
}

package obs

// Canonical metric names. Every layer records the query path under the
// same four unlabeled names, so a sharded store's per-shard live stores
// all feed one histogram instance and cross-shard aggregation happens by
// construction rather than by a merge step at scrape time. Layer-specific
// signals get a layer prefix: tsunami_exec_* (Executor), tsunami_live_*
// (LiveStore ingest/maintenance), tsunami_sharded_* (router/rebalance).
// Only per-shard gauges carry a {shard="i"} label — labeled counters or
// histograms would defeat the shared-instance aggregation above.
const (
	// Shared query path (recorded by whichever layer answers the query).
	MQueries      = "tsunami_queries_total"
	MQueryLatency = "tsunami_query_latency_seconds"
	MScanRows     = "tsunami_scan_rows_total"
	MScanBytes    = "tsunami_scan_bytes_total"

	// Executor.
	MExecQueueWait  = "tsunami_exec_queue_wait_seconds"
	MExecQueueDepth = "tsunami_exec_queue_depth"
	MExecLatency    = "tsunami_exec_latency_seconds"
	MExecWaveSize   = "tsunami_exec_wave_size"
	MExecTasks      = "tsunami_exec_tasks_total"

	// LiveStore ingest and maintenance.
	MLiveIngestLatency = "tsunami_live_ingest_latency_seconds"
	MLiveIngestRows    = "tsunami_live_ingest_rows_total"
	MLiveBufferedRows  = "tsunami_live_buffered_rows"
	MLiveEpoch         = "tsunami_live_epoch"
	MLiveMerges        = "tsunami_live_merges_total"
	MLiveMergeSeconds  = "tsunami_live_merge_seconds"
	MLiveReoptimizes   = "tsunami_live_reoptimizes_total"
	MLiveReoptSeconds  = "tsunami_live_reoptimize_seconds"
	MLiveSnapshots     = "tsunami_live_snapshots_total"
	MLiveSnapSeconds   = "tsunami_live_snapshot_seconds"
	MLiveDetectorFires = "tsunami_live_detector_fires_total"

	// Result cache (epoch-keyed; recorded by whichever layer owns the
	// cache — LiveStore or the ShardedStore router).
	MCacheHits      = "tsunami_cache_hits_total"
	MCacheMisses    = "tsunami_cache_misses_total"
	MCacheEvictions = "tsunami_cache_evictions_total"
	MCacheEntries   = "tsunami_cache_entries"

	// Executor admission control.
	MAdmissionAdmitted = "tsunami_admission_admitted_total"
	MAdmissionShed     = "tsunami_admission_shed_total"
	MAdmissionBudget   = "tsunami_admission_budget_rejected_total"
	MAdmissionInFlight = "tsunami_admission_in_flight"

	// ShardedStore router and rebalancer.
	MShardedQueryLatency   = "tsunami_sharded_query_latency_seconds"
	MShardedFanout         = "tsunami_sharded_fanout_shards"
	MShardedShardsScanned  = "tsunami_sharded_shards_scanned_total"
	MShardedShardsPruned   = "tsunami_sharded_shards_pruned_total"
	MShardedSkew           = "tsunami_sharded_skew"
	MShardedRebalances     = "tsunami_sharded_rebalances_total"
	MShardedRowsMigrated   = "tsunami_sharded_rows_migrated_total"
	MShardedPrepareSeconds = "tsunami_sharded_rebalance_prepare_seconds"
	MShardedCommitSeconds  = "tsunami_sharded_rebalance_commit_seconds"
	MShardedPersistSeconds = "tsunami_sharded_rebalance_persist_seconds"
)

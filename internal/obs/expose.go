package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders a snapshot in Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative le-bucketed *_bucket series plus _sum and
// _count. Metric families are emitted in sorted name order so scrapes
// diff cleanly; labeled series ({shard="3"}) sort within their family.
func WritePrometheus(w io.Writer, snap Snapshot) {
	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	lastFamily := ""
	for _, n := range names {
		if fam := familyOf(n); fam != lastFamily {
			fmt.Fprintf(w, "# TYPE %s counter\n", fam)
			lastFamily = fam
		}
		fmt.Fprintf(w, "%s %d\n", n, snap.Counters[n])
	}

	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	lastFamily = ""
	for _, n := range names {
		if fam := familyOf(n); fam != lastFamily {
			fmt.Fprintf(w, "# TYPE %s gauge\n", fam)
			lastFamily = fam
		}
		fmt.Fprintf(w, "%s %g\n", n, snap.Gauges[n])
	}

	names = names[:0]
	for n := range snap.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Hists[n]
		fam := familyOf(n)
		fmt.Fprintf(w, "# TYPE %s histogram\n", fam)
		var cum uint64
		for b, c := range h.Buckets {
			if c == 0 {
				continue // empty buckets add nothing cumulative scrapers need
			}
			cum += c
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, formatLe(float64(bucketMax(b))*h.scaleOr1()), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
		fmt.Fprintf(w, "%s_sum %g\n", n, float64(h.Sum)*h.scaleOr1())
		fmt.Fprintf(w, "%s_count %d\n", n, cum)
	}
}

// familyOf strips a label suffix ({shard="3"}) from a metric name,
// yielding the family name TYPE lines are declared for.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// formatLe prints a bucket bound compactly: integers without a decimal
// point, fractional bounds with enough precision to stay distinct.
func formatLe(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.9g", v)
}

// StatszHist is one histogram in the /statsz JSON view.
type StatszHist struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Statsz is the JSON document served at /statsz: every counter and
// gauge verbatim, every histogram reduced to its headline quantiles.
type Statsz struct {
	Counters   map[string]uint64     `json:"counters"`
	Gauges     map[string]float64    `json:"gauges"`
	Histograms map[string]StatszHist `json:"histograms"`
}

// ToStatsz reduces a snapshot to the /statsz JSON shape.
func ToStatsz(snap Snapshot) Statsz {
	out := Statsz{
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: make(map[string]StatszHist, len(snap.Hists)),
	}
	for n, h := range snap.Hists {
		out.Histograms[n] = StatszHist{
			Count: h.Count(),
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
			P999:  h.Quantile(0.999),
		}
	}
	return out
}

// WriteStatsz renders the snapshot as indented JSON.
func WriteStatsz(w io.Writer, snap Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToStatsz(snap))
}

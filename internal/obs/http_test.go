package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHandlerEndpoints exercises the HTTP surface end to end: /metrics
// serves parseable exposition, /statsz serves the JSON reduction,
// /debug/pprof/ answers, and unknown paths 404.
func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter(MQueries).Add(7)
	r.Gauge(MExecQueueDepth).Set(2)
	r.DurationHistogram(MQueryLatency).RecordDuration(3 * time.Millisecond)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	body := get(t, srv.URL+"/metrics", http.StatusOK)
	for _, want := range []string{
		"# TYPE tsunami_queries_total counter",
		"tsunami_queries_total 7",
		"# TYPE tsunami_exec_queue_depth gauge",
		"# TYPE tsunami_query_latency_seconds histogram",
		`tsunami_query_latency_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	var sz Statsz
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/statsz", http.StatusOK)), &sz); err != nil {
		t.Fatalf("/statsz not JSON: %v", err)
	}
	if sz.Counters[MQueries] != 7 {
		t.Fatalf("/statsz queries %d want 7", sz.Counters[MQueries])
	}
	if h := sz.Histograms[MQueryLatency]; h.Count != 1 || h.P99 < 0.003 {
		t.Fatalf("/statsz latency histogram wrong: %+v", h)
	}

	if !strings.Contains(get(t, srv.URL+"/debug/pprof/", http.StatusOK), "goroutine") {
		t.Fatal("/debug/pprof/ index missing profiles")
	}
	get(t, srv.URL+"/nope", http.StatusNotFound)
}

func get(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d want %d", url, resp.StatusCode, wantStatus)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return string(b)
}

// TestTraceString checks the explain-analyze rendering carries stages,
// shard spans, and volume.
func TestTraceString(t *testing.T) {
	tr := &QueryTrace{
		Query: "count [0,10)x[2,5)",
		Total: 5 * time.Millisecond,
		Rows:  1234, Bytes: 9872, Regions: 3,
	}
	tr.AddStage("plan", time.Millisecond, "")
	tr.AddStage("scan", 4*time.Millisecond, "3 regions")
	tr.Shards = append(tr.Shards, ShardSpan{Shard: 1, Duration: 2 * time.Millisecond, Rows: 600, Bytes: 4800, Regions: 2})
	s := tr.String()
	for _, want := range []string{"count [0,10)x[2,5)", "plan", "scan", "3 regions", "shard 1", "rows scanned 1234", "bytes touched 9872"} {
		if !strings.Contains(s, want) {
			t.Fatalf("trace rendering missing %q:\n%s", want, s)
		}
	}
}

package obs

import "sync"

// Registry is a named collection of instruments. Get-or-create lookups
// (Counter, Gauge, Histogram, ...) take a short lock but happen once per
// component at construction; the instruments they return are then
// recorded to lock-free. One Registry is typically shared by every layer
// of a serving stack — Executor, LiveStore or ShardedStore, CLI — so a
// single /metrics endpoint sees the whole system.
//
// A nil *Registry is valid everywhere and disables instrumentation: all
// lookup methods return nil, and nil instruments ignore operations.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	hists      map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() float64),
		hists:      make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = newCounter()
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = newGauge()
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers fn as the named gauge's value source, evaluated at
// snapshot/scrape time. Re-registering a name replaces the previous
// function — components that restart (a shard reopened after rebalance)
// simply overwrite their stale closure. fn must be safe to call
// concurrently with the component it reads.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFuncs[name] = fn
	r.mu.Unlock()
}

// Histogram returns the named raw-value histogram (Scale 1), creating it
// on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.histogram(name, 1)
}

// DurationHistogram returns the named latency histogram, creating it on
// first use. Observations are recorded in nanoseconds and exposed in
// seconds (Scale 1e-9), per Prometheus convention for *_seconds names.
func (r *Registry) DurationHistogram(name string) *Histogram {
	return r.histogram(name, 1e-9)
}

func (r *Registry) histogram(name string, scale float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(scale)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument in a registry.
// Gauge functions are evaluated at capture; histogram snapshots are
// mergeable and subtractable, which is what the bench harness uses to
// turn two scrapes into an interval's p99.
type Snapshot struct {
	Counters map[string]uint64
	Gauges   map[string]float64
	Hists    map[string]HistSnapshot
}

// Snapshot captures the registry. Safe to call concurrently with any
// recording; each instrument is read atomically (the set as a whole is
// not one atomic cut, which scraping never needs).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters: make(map[string]uint64),
		Gauges:   make(map[string]float64),
		Hists:    make(map[string]HistSnapshot),
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	funcs := make(map[string]func() float64, len(r.gaugeFuncs))
	for n, fn := range r.gaugeFuncs {
		funcs[n] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.RUnlock()

	// Instrument reads happen outside the registry lock: gauge functions
	// may call back into store internals that must not nest under it.
	for n, c := range counters {
		snap.Counters[n] = c.Load()
	}
	for n, g := range gauges {
		snap.Gauges[n] = float64(g.Load())
	}
	for n, fn := range funcs {
		snap.Gauges[n] = fn()
	}
	for n, h := range hists {
		snap.Hists[n] = h.Snapshot()
	}
	return snap
}

// Diff returns the interval between an earlier snapshot old and s:
// counters subtract (saturating at zero), histograms subtract
// bucket-wise, gauges keep their current (s) value — a gauge is a level,
// not a flow.
func (s Snapshot) Diff(old Snapshot) Snapshot {
	out := Snapshot{
		Counters: make(map[string]uint64, len(s.Counters)),
		Gauges:   make(map[string]float64, len(s.Gauges)),
		Hists:    make(map[string]HistSnapshot, len(s.Hists)),
	}
	for n, v := range s.Counters {
		if prev := old.Counters[n]; prev < v {
			out.Counters[n] = v - prev
		} else {
			out.Counters[n] = 0
		}
	}
	for n, v := range s.Gauges {
		out.Gauges[n] = v
	}
	for n, h := range s.Hists {
		if prev, ok := old.Hists[n]; ok {
			out.Hists[n] = h.Sub(prev)
		} else {
			out.Hists[n] = h
		}
	}
	return out
}

package obs

import (
	"net/http"
	"net/http/pprof"
)

// Route is an extra endpoint mounted on Handler's mux alongside the
// built-in surface — e.g. the workload-statistics /workloadz endpoint
// (internal/wstats.HTTPHandler).
type Route struct {
	// Path is the mux pattern, e.g. "/workloadz".
	Path    string
	Handler http.Handler
}

// Handler returns an http.Handler serving the registry's observability
// surface:
//
//	/metrics        Prometheus text exposition
//	/statsz         JSON snapshot with headline quantiles
//	/debug/pprof/*  standard net/http/pprof profiles
//
// plus any extra Routes, which are listed on the index page. The pprof
// routes are registered explicitly rather than through the package's
// DefaultServeMux side effect, so an embedding server exposes profiling
// only when it mounts this handler.
func Handler(r *Registry, extra ...Route) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, r.Snapshot())
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteStatsz(w, r.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	index := "tsunami observability endpoint\n/metrics\n/statsz\n"
	for _, rt := range extra {
		mux.Handle(rt.Path, rt.Handler)
		index += rt.Path + "\n"
	}
	index += "/debug/pprof/\n"
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(index))
	})
	return mux
}

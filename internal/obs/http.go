package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the registry's observability
// surface:
//
//	/metrics        Prometheus text exposition
//	/statsz         JSON snapshot with headline quantiles
//	/debug/pprof/*  standard net/http/pprof profiles
//
// The pprof routes are registered explicitly rather than through the
// package's DefaultServeMux side effect, so an embedding server exposes
// profiling only when it mounts this handler.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, r.Snapshot())
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteStatsz(w, r.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("tsunami observability endpoint\n/metrics\n/statsz\n/debug/pprof/\n"))
	})
	return mux
}

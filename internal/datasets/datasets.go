// Package datasets generates the evaluation datasets of §6.2 as seeded
// synthetic equivalents. The paper uses real TPC-H, NYC Taxi, Perfmon, and
// Stocks data at 184M–300M rows; these generators reproduce the schema,
// value distributions, and — most importantly — the correlation structure
// the paper's techniques target (tight monotone pairs for functional
// mappings, loose/generic correlation for conditional CDFs, heavy-tailed
// skewed columns), at configurable scale. All values are int64, matching
// the paper's integer encoding (§6.1).
package datasets

import (
	"math"
	"math/rand"

	"repro/internal/colstore"
)

// Dataset is a named generated table.
type Dataset struct {
	Name  string
	Store *colstore.Store
}

// Dims returns the dimensionality.
func (d *Dataset) Dims() int { return d.Store.NumDims() }

// Rows returns the row count.
func (d *Dataset) Rows() int { return d.Store.NumRows() }

// TPC-H lineitem column indices.
const (
	TPCHQuantity = iota
	TPCHExtendedPrice
	TPCHDiscount
	TPCHTax
	TPCHShipMode
	TPCHShipDate
	TPCHCommitDate
	TPCHReceiptDate
)

// TPCH generates an 8-dimensional lineitem-like fact table (§6.2): ship,
// commit, and receipt dates are correlated (receipt tightly follows ship;
// commit loosely), and extended price is generically correlated with
// quantity.
func TPCH(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	cols := newCols(8, n)
	const days = 2526 // 1992-01-01 .. 1998-12-01, as in TPC-H
	for i := 0; i < n; i++ {
		qty := 1 + rng.Int63n(50)
		// Extended price = quantity * unit price; unit price varies per
		// part, producing a generic (fan-shaped) correlation with quantity.
		unitPrice := 90000 + rng.Int63n(10_000_000)/100
		ship := rng.Int63n(days)
		cols[TPCHQuantity][i] = qty
		cols[TPCHExtendedPrice][i] = qty * unitPrice
		cols[TPCHDiscount][i] = rng.Int63n(11) // 0.00 .. 0.10 scaled by 100
		cols[TPCHTax][i] = rng.Int63n(9)       // 0.00 .. 0.08
		cols[TPCHShipMode][i] = rng.Int63n(7)  // dictionary-encoded
		cols[TPCHShipDate][i] = ship
		cols[TPCHCommitDate][i] = clamp(ship+rng.Int63n(121)-30, 0, days+90) // loose
		cols[TPCHReceiptDate][i] = ship + 1 + rng.Int63n(30)                 // tight
	}
	return fromCols("TPC-H", cols, []string{
		"quantity", "extendedprice", "discount", "tax",
		"shipmode", "shipdate", "commitdate", "receiptdate",
	})
}

// Taxi column indices.
const (
	TaxiPickupTime = iota
	TaxiDropoffTime
	TaxiDistance
	TaxiFare
	TaxiTip
	TaxiTotal
	TaxiPassengers
	TaxiPickupZone
	TaxiDropoffZone
)

// Taxi generates a 9-dimensional NYC yellow-taxi-like table (§6.2):
// drop-off time tightly follows pick-up time, fare is tightly monotone in
// distance, total tightly follows fare, tip is generically correlated with
// fare, and passenger count / distance are heavily skewed.
func Taxi(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	cols := newCols(9, n)
	const minutes = 2 * 365 * 24 * 60 // 2018–2019 in minutes
	for i := 0; i < n; i++ {
		pickup := rng.Int63n(minutes)
		// Trip distance in units of 0.01 miles, exponential with mean 2.9mi.
		dist := int64(rng.ExpFloat64()*290) + 10
		duration := 2 + dist/25 + rng.Int63n(15) // minutes, loosely tied to distance
		fare := 250 + dist*5/2 + rng.Int63n(200) // cents, tight monotone in distance
		tipPct := rng.Int63n(31)                 // 0..30%
		tip := fare * tipPct / 100               // generic correlation with fare
		tolls := int64(0)
		if rng.Float64() < 0.05 {
			tolls = 600 + rng.Int63n(1200)
		}
		pax := int64(1)
		r := rng.Float64()
		switch {
		case r < 0.70:
			pax = 1
		case r < 0.85:
			pax = 2
		case r < 0.93:
			pax = 3 + rng.Int63n(2)
		default:
			pax = 5 + rng.Int63n(2)
		}
		cols[TaxiPickupTime][i] = pickup
		cols[TaxiDropoffTime][i] = pickup + duration
		cols[TaxiDistance][i] = dist
		cols[TaxiFare][i] = fare
		cols[TaxiTip][i] = tip
		cols[TaxiTotal][i] = fare + tip + tolls
		cols[TaxiPassengers][i] = pax
		cols[TaxiPickupZone][i] = rng.Int63n(263)
		cols[TaxiDropoffZone][i] = rng.Int63n(263)
	}
	return fromCols("Taxi", cols, []string{
		"pickup_time", "dropoff_time", "distance", "fare", "tip",
		"total", "passengers", "pickup_zone", "dropoff_zone",
	})
}

// Perfmon column indices.
const (
	PerfTime = iota
	PerfMachine
	PerfCPUUser
	PerfCPUSys
	PerfLoad1
	PerfLoad5
	PerfMem
)

// Perfmon generates a 7-dimensional machine-monitoring-like table (§6.2):
// system CPU loosely follows user CPU, the 5-minute load average tightly
// follows the 1-minute load, and CPU/load values are skewed low with a
// heavy high tail (most machines are idle).
func Perfmon(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	cols := newCols(7, n)
	const minutes = 365 * 24 * 60
	for i := 0; i < n; i++ {
		// CPU usage percent ×100; mostly idle with occasional spikes.
		user := int64(math.Min(rng.ExpFloat64()*800, 10000))
		sys := user/4 + int64(math.Min(rng.ExpFloat64()*300, 5000)) // loose
		load1 := user/3 + int64(rng.ExpFloat64()*200)               // correlated with CPU
		load5 := load1 + rng.Int63n(101) - 50                       // tight
		if load5 < 0 {
			load5 = 0
		}
		cols[PerfTime][i] = rng.Int63n(minutes)
		cols[PerfMachine][i] = rng.Int63n(1000)
		cols[PerfCPUUser][i] = user
		cols[PerfCPUSys][i] = sys
		cols[PerfLoad1][i] = load1
		cols[PerfLoad5][i] = load5
		cols[PerfMem][i] = 500 + rng.Int63n(9500)
	}
	return fromCols("Perfmon", cols, []string{
		"time", "machine", "cpu_user", "cpu_sys", "load1", "load5", "mem",
	})
}

// Stocks column indices.
const (
	StockDate = iota
	StockOpen
	StockClose
	StockLow
	StockHigh
	StockVolume
	StockAdjClose
)

// Stocks generates a 7-dimensional daily-prices-like table (§6.2): open,
// close, low, high, and adjusted close are tightly correlated with one
// another, prices are log-normal, and volume is heavy-tailed.
func Stocks(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	cols := newCols(7, n)
	const days = 48 * 252 // trading days 1970–2018
	for i := 0; i < n; i++ {
		// Price in cents, log-normal across stocks.
		open := int64(math.Exp(rng.NormFloat64()*1.2+7.5)) + 100
		move := 1 + rng.NormFloat64()*0.02
		if move < 0.7 {
			move = 0.7
		}
		cls := int64(float64(open) * move)
		low := minI64(open, cls) - rng.Int63n(maxI64(open, cls)/50+1)
		high := maxI64(open, cls) + rng.Int63n(maxI64(open, cls)/50+1)
		vol := int64(math.Exp(rng.NormFloat64()*1.5 + 11))
		cols[StockDate][i] = rng.Int63n(days)
		cols[StockOpen][i] = open
		cols[StockClose][i] = cls
		cols[StockLow][i] = low
		cols[StockHigh][i] = high
		cols[StockVolume][i] = vol
		cols[StockAdjClose][i] = cls - cls*rng.Int63n(20)/100 // loose (splits/dividends)
	}
	return fromCols("Stocks", cols, []string{
		"date", "open", "close", "low", "high", "volume", "adjclose",
	})
}

// SyntheticUniform generates the Fig 10 uncorrelated group: d dims of
// i.i.d. uniform values.
func SyntheticUniform(n, d int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	cols := newCols(d, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			cols[j][i] = rng.Int63n(1_000_000)
		}
	}
	return fromCols("SynthUniform", cols, nil)
}

// SyntheticCorrelated generates the Fig 10 correlated group: the first half
// of the dimensions are uniform; each dimension in the second half is
// linearly correlated to its counterpart in the first half, alternating
// strong (±1% of the domain) and loose (±10%) error.
func SyntheticCorrelated(n, d int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	cols := newCols(d, n)
	const domain = 1_000_000
	half := d / 2
	for i := 0; i < n; i++ {
		for j := 0; j < half; j++ {
			cols[j][i] = rng.Int63n(domain)
		}
		for j := half; j < d; j++ {
			src := cols[j-half][i]
			errFrac := 0.01
			if (j-half)%2 == 1 {
				errFrac = 0.10
			}
			e := int64(errFrac * domain)
			cols[j][i] = clamp(2*src+rng.Int63n(2*e+1)-e, 0, 3*domain)
		}
	}
	return fromCols("SynthCorrelated", cols, nil)
}

// Sample returns a new dataset holding every k-th row so experiments can
// sweep dataset size (Fig 11a) deterministically.
func Sample(d *Dataset, rows int) *Dataset {
	n := d.Rows()
	if rows >= n {
		return d
	}
	stride := n / rows
	cols := newCols(d.Dims(), rows)
	for j := 0; j < d.Dims(); j++ {
		src := d.Store.Column(j)
		for i := 0; i < rows; i++ {
			cols[j][i] = src[i*stride]
		}
	}
	return fromCols(d.Name, cols, d.Store.Names())
}

func newCols(d, n int) [][]int64 {
	cols := make([][]int64, d)
	for j := range cols {
		cols[j] = make([]int64, n)
	}
	return cols
}

func fromCols(name string, cols [][]int64, names []string) *Dataset {
	st, err := colstore.FromColumns(cols, names)
	if err != nil {
		panic("datasets: " + err.Error())
	}
	return &Dataset{Name: name, Store: st}
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

package datasets

import (
	"testing"

	"repro/internal/stats"
)

func TestGeneratorsShape(t *testing.T) {
	for _, tc := range []struct {
		ds   *Dataset
		dims int
	}{
		{TPCH(1000, 1), 8},
		{Taxi(1000, 1), 9},
		{Perfmon(1000, 1), 7},
		{Stocks(1000, 1), 7},
		{SyntheticUniform(1000, 12, 1), 12},
		{SyntheticCorrelated(1000, 12, 1), 12},
	} {
		if tc.ds.Rows() != 1000 {
			t.Errorf("%s rows = %d, want 1000", tc.ds.Name, tc.ds.Rows())
		}
		if tc.ds.Dims() != tc.dims {
			t.Errorf("%s dims = %d, want %d", tc.ds.Name, tc.ds.Dims(), tc.dims)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := TPCH(500, 7)
	b := TPCH(500, 7)
	for j := 0; j < a.Dims(); j++ {
		ca, cb := a.Store.Column(j), b.Store.Column(j)
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("same seed produced different data at (%d, %d)", i, j)
			}
		}
	}
	c := TPCH(500, 8)
	same := true
	for i := 0; i < 500; i++ {
		if a.Store.Value(i, 0) != c.Store.Value(i, 0) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

// relErr fits a regression between two columns and returns the residual
// band relative to the target domain — the §5.3.2 functional-mapping
// signal.
func relErr(x, y []int64) float64 {
	lr := stats.FitLinReg(x, y)
	lo, hi := y[0], y[0]
	for _, v := range y {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		return 0
	}
	return lr.ErrSpan() / float64(hi-lo)
}

func TestTPCHCorrelationStructure(t *testing.T) {
	ds := TPCH(20000, 3)
	// Receipt date tightly follows ship date: FM-eligible (< 10%).
	tight := relErr(ds.Store.Column(TPCHShipDate), ds.Store.Column(TPCHReceiptDate))
	if tight > 0.10 {
		t.Errorf("shipdate→receiptdate relative error = %.3f, want < 0.10", tight)
	}
	// Commit date is loose: not FM-eligible but correlated.
	loose := relErr(ds.Store.Column(TPCHShipDate), ds.Store.Column(TPCHCommitDate))
	if loose < 0.02 {
		t.Errorf("shipdate→commitdate relative error = %.3f, suspiciously tight", loose)
	}
	// Price vs quantity is generic: far too loose for a functional mapping.
	generic := relErr(ds.Store.Column(TPCHQuantity), ds.Store.Column(TPCHExtendedPrice))
	if generic < 0.10 {
		t.Errorf("quantity→price relative error = %.3f, should be generic (>= 0.10)", generic)
	}
}

func TestTaxiCorrelationStructure(t *testing.T) {
	ds := Taxi(20000, 4)
	if e := relErr(ds.Store.Column(TaxiPickupTime), ds.Store.Column(TaxiDropoffTime)); e > 0.10 {
		t.Errorf("pickup→dropoff relative error = %.3f, want < 0.10", e)
	}
	if e := relErr(ds.Store.Column(TaxiDistance), ds.Store.Column(TaxiFare)); e > 0.10 {
		t.Errorf("distance→fare relative error = %.3f, want < 0.10", e)
	}
}

func TestStocksCorrelationStructure(t *testing.T) {
	ds := Stocks(20000, 5)
	if e := relErr(ds.Store.Column(StockOpen), ds.Store.Column(StockClose)); e > 0.25 {
		t.Errorf("open→close relative error = %.3f, want tight-ish", e)
	}
}

func TestSyntheticCorrelatedStructure(t *testing.T) {
	d := 8
	ds := SyntheticCorrelated(20000, d, 6)
	// Dim d/2 is strongly correlated (±1%) with dim 0.
	strong := relErr(ds.Store.Column(0), ds.Store.Column(d/2))
	if strong > 0.05 {
		t.Errorf("strong pair relative error = %.3f, want <= 0.05", strong)
	}
	// Dim d/2+1 is loose (±10%) with dim 1.
	loose := relErr(ds.Store.Column(1), ds.Store.Column(d/2+1))
	if loose < 0.05 || loose > 0.4 {
		t.Errorf("loose pair relative error = %.3f, want ≈0.1-0.2", loose)
	}
	// Uniform dims are uncorrelated with each other.
	un := relErr(ds.Store.Column(0), ds.Store.Column(1))
	if un < 0.5 {
		t.Errorf("uniform pair relative error = %.3f, want large", un)
	}
}

func TestTaxiPassengerSkew(t *testing.T) {
	ds := Taxi(20000, 7)
	col := ds.Store.Column(TaxiPassengers)
	ones := 0
	for _, v := range col {
		if v == 1 {
			ones++
		}
		if v < 1 || v > 6 {
			t.Fatalf("passenger count %d out of range", v)
		}
	}
	frac := float64(ones) / float64(len(col))
	if frac < 0.6 || frac > 0.8 {
		t.Errorf("single-passenger fraction = %.2f, want ≈0.7", frac)
	}
}

func TestSample(t *testing.T) {
	full := TPCH(10000, 8)
	half := Sample(full, 5000)
	if half.Rows() != 5000 {
		t.Fatalf("sample rows = %d, want 5000", half.Rows())
	}
	if half.Dims() != full.Dims() {
		t.Fatalf("sample dims changed")
	}
	same := Sample(full, 20000)
	if same != full {
		t.Error("oversized sample should return the original dataset")
	}
}

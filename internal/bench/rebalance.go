package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/live"
	"repro/internal/query"
	"repro/internal/sharded"
	"repro/internal/workload"
)

// Rebalance measures online shard rebalancing under skewed ingest: all
// fresh rows land in the last time shard until the spread is far past the
// rebalancer's threshold, then a rebalance migrates rows back to
// equi-depth while a measurement thread keeps querying. Reported per
// phase (before skew, skewed, during migration, after): query latency
// percentiles, the shard row-count spread, and — the property the whole
// protocol exists for — whether every answer during the migration was
// exact (the expected results are fixed beforehand; ingest is quiesced
// while the cuts move, so any deviation is a migration bug, not a race
// with ingest). PIMDAL's memory-bottleneck argument (arXiv:2504.01948) is
// the reason the migration must not stall the scan path; this experiment
// is the check that it does not.
func Rebalance(w io.Writer, o Options) {
	o = o.fill()
	section(w, "Rebalance", "Online shard rebalancing under skewed ingest")
	ds := datasets.Taxi(o.Rows, o.Seed+2)
	work := workload.ForDataset(ds, o.QueriesPerType, o.Seed+102)

	st, err := sharded.Open(ds.Store, work, o.tsunamiConfig(core.FullTsunami), sharded.Config{
		Shards:  4,
		Learned: true,
		Live:    live.Config{MergeThreshold: 1 << 30}, // isolate migration cost from merges
	})
	if err != nil {
		fmt.Fprintf(w, "BUILD FAILURE: %v\n", err)
		return
	}
	defer st.Close()

	// A fixed probe set, biased toward the partition dimension where the
	// cuts move.
	rng := rand.New(rand.NewSource(o.Seed + 7))
	probes := append([]query.Query(nil), work...)
	lo, hi := ds.Store.MinMax(0)
	for i := 0; i < 40; i++ {
		a := lo + rng.Int63n(hi-lo+1)
		probes = append(probes, query.NewCount(query.Filter{Dim: 0, Lo: a, Hi: a + (hi-lo)/20}))
	}

	t := newTable("phase", "queries", "p50", "p99", "spread", "exact")
	addPhase := func(name string, lat []float64, checked, wrong int) {
		exact := "-"
		if checked > 0 {
			exact = fmt.Sprintf("%d/%d", checked-wrong, checked)
		}
		t.add(name, fmt.Sprintf("%d", len(lat)),
			ms(percentile(lat, 0.50)), ms(percentile(lat, 0.99)),
			fmt.Sprintf("%.2fx", spreadOf(st)), exact)
	}

	// Phase 1 — balanced, as opened.
	lat, _, _ := measure(st, probes, nil, 2000, nil)
	addPhase("before skew", lat, 0, 0)

	// Phase 2 — skewed ingest: every new row beyond the current max of
	// dim 0, i.e. straight into the last shard.
	extra := o.Rows / 2
	batch := make([][]int64, 0, 512)
	buf := make([]int64, ds.Store.NumDims())
	for i := 0; i < extra; i++ {
		row := append([]int64(nil), ds.Store.Row(i%ds.Store.NumRows(), buf)...)
		row[0] = hi + 1 + int64(i)
		batch = append(batch, row)
		if len(batch) == 512 || i == extra-1 {
			if err := st.InsertBatch(batch); err != nil {
				fmt.Fprintf(w, "INGEST FAILURE: %v\n", err)
				return
			}
			batch = batch[:0]
		}
	}
	// Fold the ingested rows so every phase measures clustered-state scan
	// cost: the comparison isolates migration, not delta-scan penalties.
	if err := st.Flush(); err != nil {
		fmt.Fprintf(w, "FLUSH FAILURE: %v\n", err)
		return
	}
	lat, _, _ = measure(st, probes, nil, 2000, nil)
	addPhase("skewed", lat, 0, 0)

	// Phase 3 — during migration: ingest is quiesced, so the exact answer
	// to every probe is fixed; the measurement loop validates each one
	// while the rebalance moves rows underneath it.
	want := make([]colstore.ScanResult, len(probes))
	for i, q := range probes {
		want[i] = st.Execute(q)
	}
	var rebErr error
	rebDone := make(chan struct{})
	go func() {
		rebErr = st.Rebalance()
		close(rebDone)
	}()
	lat, checked, wrong := measure(st, probes, want, 0, rebDone)
	<-rebDone
	if rebErr != nil {
		fmt.Fprintf(w, "REBALANCE FAILURE: %v\n", rebErr)
		return
	}
	addPhase("during migration", lat, checked, wrong)

	// Phase 4 — rebalanced and re-merged: the migrated rows arrive in the
	// destination shards' delta buffers; fold them to measure the steady
	// state the store settles into (the background merge loop does this
	// on its own in real serving).
	if err := st.Flush(); err != nil {
		fmt.Fprintf(w, "FLUSH FAILURE: %v\n", err)
		return
	}
	lat, checked2, wrong2 := measure(st, probes, want, 2000, nil)
	addPhase("after", lat, checked2, wrong2)
	t.print(w)

	s := st.Stats()
	fmt.Fprintf(w, "migrated %d rows in %d generation steps; post-rebalance spread %.2fx (threshold 2x)\n",
		s.RowsMigrated, s.Generation-1, spreadOf(st))
	if wrong+wrong2 > 0 {
		fmt.Fprintf(w, "CORRECTNESS FAILURE: %d answers diverged during/after migration\n", wrong+wrong2)
	}
}

// measure runs probes round-robin, recording per-query latency. With a
// non-nil done channel it runs until done closes (at least one full
// pass); otherwise it runs count queries. With non-nil want it verifies
// every answer and counts mismatches.
func measure(st *sharded.Store, probes []query.Query, want []colstore.ScanResult, count int, done <-chan struct{}) (lat []float64, checked, wrong int) {
	for i := 0; ; i++ {
		if done != nil {
			stopped := false
			select {
			case <-done:
				stopped = true
			default:
			}
			if stopped && i >= len(probes) {
				break
			}
		} else if i >= count {
			break
		}
		q := probes[i%len(probes)]
		t0 := time.Now()
		res := st.Execute(q)
		lat = append(lat, float64(time.Since(t0).Nanoseconds()))
		if want != nil {
			checked++
			if res.Count != want[i%len(probes)].Count || res.Sum != want[i%len(probes)].Sum {
				wrong++
			}
		}
	}
	return lat, checked, wrong
}

// spreadOf is the largest shard's rows over the smallest's (clustered +
// buffered), the balance metric the experiment tracks.
func spreadOf(st *sharded.Store) float64 {
	s := st.Stats()
	min, max := -1, 0
	for _, ls := range s.PerShard {
		n := ls.ClusteredRows + ls.BufferedRows
		if n > max {
			max = n
		}
		if min < 0 || n < min {
			min = n
		}
	}
	if min <= 0 {
		min = 1
	}
	return float64(max) / float64(min)
}

// percentile returns the p-quantile of unsorted latencies.
func percentile(lat []float64, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	s := append([]float64(nil), lat...)
	sort.Float64s(s)
	i := int(p * float64(len(s)-1))
	return s[i]
}

package bench

import (
	"fmt"
	"io"
	"strings"
)

// table accumulates rows and prints them with aligned columns.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...interface{}) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

func (t *table) print(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// human formats byte counts.
func human(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// ms formats a nanosecond latency as milliseconds.
func ms(ns float64) string { return fmt.Sprintf("%.3fms", ns/1e6) }

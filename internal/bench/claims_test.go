package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/kdtree"
	"repro/internal/octree"
	"repro/internal/query"
)

// These tests pin the paper's qualitative claims at test scale using
// *scanned points* — a deterministic proxy for query time that is immune
// to machine noise. If a code change breaks one of these, the reproduction
// has regressed even if unit tests still pass.

func scannedPerQuery(idx index.Index, qs []query.Query) float64 {
	var total uint64
	for _, q := range qs {
		total += idx.Execute(q).PointsScanned
	}
	return float64(total) / float64(len(qs))
}

func claimsOptions() Options {
	return Options{Rows: 60_000, QueriesPerType: 50, Seed: 11, Quick: true}.fill()
}

func TestClaimTsunamiScansLessThanFlood(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := claimsOptions()
	wins := 0
	for _, dc := range paperDatasets(o) {
		ts := buildTsunami(dc, o)
		fl := buildFlood(dc, o)
		sTs := scannedPerQuery(ts.idx, dc.work)
		sFl := scannedPerQuery(fl.idx, dc.work)
		t.Logf("%s: tsunami=%.0f flood=%.0f points/query", dc.ds.Name, sTs, sFl)
		if sTs < sFl {
			wins++
		}
	}
	// The paper has Tsunami ahead on all four datasets; at small scale we
	// require at least three to guard against generator noise.
	if wins < 3 {
		t.Errorf("Tsunami out-scanned Flood on %d/4 datasets, want >= 3", wins)
	}
}

func TestClaimLearnedIndexesBeatKDTree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := claimsOptions()
	for _, dc := range paperDatasets(o) {
		ts := buildTsunami(dc, o)
		kd := buildTuned("KDTree", dc, o, func(p int) (index.Index, index.BuildStats) {
			return newKD(dc, p), index.BuildStats{}
		})
		sTs := scannedPerQuery(ts.idx, dc.work)
		sKd := scannedPerQuery(kd.idx, dc.work)
		if sTs >= sKd {
			t.Errorf("%s: Tsunami scanned %.0f/query vs tuned k-d tree %.0f", dc.ds.Name, sTs, sKd)
		}
	}
}

func newKD(dc datasetCase, page int) index.Index {
	return kdtree.Build(dc.ds.Store, dc.work, kdtree.Config{PageSize: page})
}

func newOct(dc datasetCase, page int) index.Index {
	return octree.Build(dc.ds.Store, octree.Config{PageSize: page})
}

func TestClaimGridTreeAloneHelpsOnSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Fig 12a's main finding: the Grid Tree contributes on skewed
	// workloads even with plain Flood grids inside.
	o := claimsOptions()
	dc := paperDatasets(o)[1] // Taxi: strong recency and passenger-count skew
	gt := core.Build(dc.ds.Store, dc.work, o.tsunamiConfig(core.GridTreeOnly))
	fl := buildFlood(dc, o)
	sGt := scannedPerQuery(gt, dc.work)
	sFl := scannedPerQuery(fl.idx, dc.work)
	t.Logf("gridtree-only=%.0f flood=%.0f points/query", sGt, sFl)
	if sGt >= sFl {
		t.Errorf("GridTree-only (%.0f) should scan less than Flood (%.0f) on a skewed workload", sGt, sFl)
	}
}

// TestClaimShardedIngestScales pins the ShardedStore's scaling claim —
// and the honesty of its reporting. Scaling assertions are only
// meaningful with real parallelism: on a GOMAXPROCS=1 box the writer
// fleet timeshares one CPU and measured "speedups" are scheduler noise
// (BENCH_5.json recorded inverse scaling this way), so there the test
// only requires the result to flag itself unreliable, and skips the
// scaling assertion itself.
func TestClaimShardedIngestScales(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Options{Rows: 8_000, QueriesPerType: 10, Seed: 11, Quick: true}.fill()
	r, err := RunSharded(o)
	if err != nil {
		t.Fatal(err)
	}
	if effectiveParallelism() <= 1 {
		if !r.ScalingUnreliable {
			t.Error("effective-parallelism-1 run must flag ScalingUnreliable")
		}
		t.Skip("effective parallelism 1: shard-scaling assertions are unreliable, skipping")
	}
	if r.ScalingUnreliable {
		t.Error("multi-CPU run must not flag ScalingUnreliable")
	}
	// With real parallelism, sharding must not cost throughput: the best
	// multi-shard point should at least hold the single-shard baseline
	// (generous floor — partitioning overhead plus runner noise, not a
	// perf target; the inverse-scaling bug this guards against measured
	// 0.67x).
	best := 0.0
	for _, p := range r.Ingest {
		if p.Shards > 1 && p.Speedup > best {
			best = p.Speedup
		}
	}
	if best < 0.85 {
		t.Errorf("best multi-shard ingest speedup %.2fx vs 1 shard; sharding should not cost throughput on a multi-CPU box", best)
	}
}

func TestClaimTsunamiSmallerThanNonLearned(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Fig 8: Tsunami is much smaller than the tree-based baselines.
	o := claimsOptions()
	dc := paperDatasets(o)[1] // Taxi
	ts := buildTsunami(dc, o)
	oct := buildTuned("Hyperoctree", dc, o, func(p int) (index.Index, index.BuildStats) {
		return newOct(dc, p), index.BuildStats{}
	})
	if ts.idx.SizeBytes()*4 > oct.idx.SizeBytes() {
		t.Errorf("Tsunami (%d B) should be >=4x smaller than the hyperoctree (%d B)",
			ts.idx.SizeBytes(), oct.idx.SizeBytes())
	}
}

package bench

import (
	"fmt"
	"io"

	"repro/internal/auggrid"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/index"
	"repro/internal/kdtree"
	"repro/internal/query"
	"repro/internal/workload"
)

// Fig10 sweeps dimensionality over the uncorrelated and correlated
// synthetic dataset groups (§6.5, Fig 10): Tsunami should keep its lead at
// high d, and on correlated data perform like a (d-4)-dimensional
// uncorrelated dataset thanks to the Augmented Grid.
func Fig10(w io.Writer, o Options) {
	o = o.fill()
	section(w, "Fig 10", "Scalability with dimensionality")
	dims := []int{4, 8, 12, 16, 20}
	if o.Quick {
		dims = []int{4, 8}
	}
	rows := o.Rows / 2
	if rows < 10_000 {
		rows = 10_000
	}
	for _, group := range []struct {
		name string
		gen  func(n, d int, seed int64) *datasets.Dataset
	}{
		{"uncorrelated", datasets.SyntheticUniform},
		{"correlated", datasets.SyntheticCorrelated},
	} {
		fmt.Fprintf(w, "\n%s group (%d rows):\n", group.name, rows)
		t := newTable("dims", "Tsunami", "Flood", "KDTree")
		for _, d := range dims {
			ds := group.gen(rows, d, o.Seed)
			work := workload.Generate(ds.Store, workload.SyntheticTypes(d), o.QueriesPerType, o.Seed+7)
			dc := datasetCase{ds: ds, work: work}
			ts := buildTsunami(dc, o)
			fl := buildFlood(dc, o)
			kd := kdtree.Build(ds.Store, work, kdtree.Config{PageSize: 2048})
			for _, idx := range []index.Index{ts.idx, fl.idx, kd} {
				if err := checkCorrect(idx, ds.Store, work); err != nil {
					fmt.Fprintf(w, "CORRECTNESS FAILURE: %v\n", err)
					return
				}
			}
			t.add(fmt.Sprintf("%d", d),
				ms(avgQueryNs(ts.idx, work)),
				ms(avgQueryNs(fl.idx, work)),
				ms(avgQueryNs(kd, work)))
		}
		t.print(w)
	}
}

// Fig11a sweeps dataset size on TPC-H subsets (§6.5, Fig 11a).
func Fig11a(w io.Writer, o Options) {
	o = o.fill()
	section(w, "Fig 11a", "Scalability with dataset size (TPC-H)")
	full := datasets.TPCH(o.Rows, o.Seed)
	fractions := []int{8, 4, 2, 1}
	if o.Quick {
		fractions = []int{4, 1}
	}
	t := newTable("rows", "Tsunami", "Flood", "KDTree")
	for _, f := range fractions {
		ds := datasets.Sample(full, full.Rows()/f)
		work := workload.ForDataset(ds, o.QueriesPerType, o.Seed+100)
		dc := datasetCase{ds: ds, work: work}
		ts := buildTsunami(dc, o)
		fl := buildFlood(dc, o)
		kd := kdtree.Build(ds.Store, work, kdtree.Config{PageSize: 2048})
		t.add(fmt.Sprintf("%d", ds.Rows()),
			ms(avgQueryNs(ts.idx, work)),
			ms(avgQueryNs(fl.idx, work)),
			ms(avgQueryNs(kd, work)))
	}
	t.print(w)
}

// Fig11b sweeps query selectivity on the 8-dim correlated synthetic
// dataset (§6.5, Fig 11b).
func Fig11b(w io.Writer, o Options) {
	o = o.fill()
	section(w, "Fig 11b", "Performance across query selectivity")
	rows := o.Rows
	ds := datasets.SyntheticCorrelated(rows, 8, o.Seed)
	sels := []float64{0.00001, 0.0001, 0.001, 0.01, 0.1}
	if o.Quick {
		sels = []float64{0.0001, 0.01}
	}
	t := newTable("selectivity", "Tsunami", "Flood", "KDTree")
	for _, sel := range sels {
		work := workload.Generate(ds.Store, workload.SelectivityTypes(4, sel), o.QueriesPerType, o.Seed+11)
		dc := datasetCase{ds: ds, work: work}
		ts := buildTsunami(dc, o)
		fl := buildFlood(dc, o)
		kd := kdtree.Build(ds.Store, work, kdtree.Config{PageSize: 2048})
		t.add(fmt.Sprintf("%.3f%%", sel*100),
			ms(avgQueryNs(ts.idx, work)),
			ms(avgQueryNs(fl.idx, work)),
			ms(avgQueryNs(kd, work)))
	}
	t.print(w)
}

// Fig12a compares Tsunami's components in isolation (§6.6, Fig 12a): Flood,
// Augmented Grid only, Grid Tree only (Flood per region), full Tsunami.
func Fig12a(w io.Writer, o Options) {
	o = o.fill()
	section(w, "Fig 12a", "Component drill-down")
	for _, dc := range paperDatasets(o) {
		fmt.Fprintf(w, "\n%s:\n", dc.ds.Name)
		fl := buildFlood(dc, o)
		ag := core.Build(dc.ds.Store, dc.work, o.tsunamiConfig(core.AugGridOnly))
		gt := core.Build(dc.ds.Store, dc.work, o.tsunamiConfig(core.GridTreeOnly))
		ts := buildTsunami(dc, o)
		t := newTable("variant", "avg query", "speedup vs Flood")
		floodNs := avgQueryNs(fl.idx, dc.work)
		for _, entry := range []struct {
			name string
			idx  index.Index
		}{
			{"Flood", fl.idx},
			{"AugGrid-only", ag},
			{"GridTree-only", gt},
			{"Tsunami", ts.idx},
		} {
			ns := avgQueryNs(entry.idx, dc.work)
			t.add(entry.name, ms(ns), fmt.Sprintf("%.2fx", floodNs/ns))
		}
		t.print(w)
	}
}

// Fig12b compares the layout optimizers (§6.6, Fig 12b): AGD vs plain GD,
// a black-box search, and AGD from a naive initial skeleton; it reports
// predicted cost (bars) and measured query time (error bars) plus the
// average cost-model error.
func Fig12b(w io.Writer, o Options) {
	o = o.fill()
	section(w, "Fig 12b", "Optimization method comparison (one Augmented Grid over the full space)")
	optimizers := []auggrid.Optimizer{auggrid.AGD(), auggrid.GD(), auggrid.BlackBox(), auggrid.AGDNI()}
	var errSum float64
	var errN int
	for _, dc := range paperDatasets(o) {
		fmt.Fprintf(w, "\n%s:\n", dc.ds.Name)
		rows := allRows(dc.ds.Store.NumRows())
		cfg := o.tsunamiConfig(core.FullTsunami).Grid
		cfg.UseSortDim = true
		t := newTable("optimizer", "predicted", "measured", "skeleton")
		for _, opt := range optimizers {
			layout, predicted := auggrid.Optimize(dc.ds.Store, rows, dc.work, opt, cfg)
			g, st, err := buildStandaloneGrid(dc.ds.Store, layout)
			if err != nil {
				t.add(opt.Name, "build failed", "-", layout.Skeleton.String())
				continue
			}
			gi := &gridIndex{g: g, name: opt.Name}
			if cerr := checkCorrect(gi, st, dc.work); cerr != nil {
				t.add(opt.Name, "INCORRECT", "-", layout.Skeleton.String())
				continue
			}
			measured := avgQueryNs(gi, dc.work)
			if measured > 0 {
				e := predicted/measured - 1
				if e < 0 {
					e = -e
				}
				errSum += e
				errN++
			}
			t.add(opt.Name, ms(predicted), ms(measured), layout.Skeleton.String())
		}
		t.print(w)
	}
	if errN > 0 {
		fmt.Fprintf(w, "\naverage cost-model error: %.0f%% (paper reports 15%%)\n", 100*errSum/float64(errN))
	}
}

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

// buildStandaloneGrid builds one Augmented Grid over a clone of st.
func buildStandaloneGrid(st *colstore.Store, layout auggrid.Layout) (*auggrid.Grid, *colstore.Store, error) {
	clone := st.Clone()
	g, ordered, err := auggrid.Build(clone, allRows(clone.NumRows()), layout)
	if err != nil {
		return nil, nil, err
	}
	if err := clone.Reorder(ordered); err != nil {
		return nil, nil, err
	}
	g.Finalize(clone, 0)
	return g, clone, nil
}

// gridIndex adapts a bare Augmented Grid to the Index interface.
type gridIndex struct {
	g    *auggrid.Grid
	name string
}

func (x *gridIndex) Name() string { return x.name }
func (x *gridIndex) Execute(q query.Query) colstore.ScanResult {
	res, _ := x.g.Execute(q, nil)
	return res
}
func (x *gridIndex) SizeBytes() uint64 { return x.g.SizeBytes() }

// All runs every experiment in paper order.
func All(w io.Writer, o Options) {
	Tab3(w, o)
	Tab4(w, o)
	Fig7(w, o)
	Fig8(w, o)
	Fig9a(w, o)
	Fig9b(w, o)
	Fig10(w, o)
	Fig11a(w, o)
	Fig11b(w, o)
	Fig12a(w, o)
	Fig12b(w, o)
	Ablations(w, o)
	Scan(w, o)
	GroupBy(w, o)
	Concurrency(w, o)
	Sharded(w, o)
	Rebalance(w, o)
	Obs(w, o)
	Traffic(w, o)
}

// Run dispatches an experiment by id ("tab3", "fig7", ..., "all").
func Run(w io.Writer, id string, o Options) error {
	switch id {
	case "tab3":
		Tab3(w, o)
	case "tab4":
		Tab4(w, o)
	case "fig7":
		Fig7(w, o)
	case "fig8":
		Fig8(w, o)
	case "fig9a":
		Fig9a(w, o)
	case "fig9b":
		Fig9b(w, o)
	case "fig10":
		Fig10(w, o)
	case "fig11a":
		Fig11a(w, o)
	case "fig11b":
		Fig11b(w, o)
	case "fig12a":
		Fig12a(w, o)
	case "fig12b":
		Fig12b(w, o)
	case "ablation":
		Ablations(w, o)
	case "scan":
		Scan(w, o)
	case "groupby":
		GroupBy(w, o)
	case "concurrency":
		Concurrency(w, o)
	case "sharded":
		Sharded(w, o)
	case "rebalance":
		Rebalance(w, o)
	case "obs":
		Obs(w, o)
	case "traffic":
		Traffic(w, o)
	case "all":
		All(w, o)
	default:
		return fmt.Errorf("unknown experiment %q (tab3, tab4, fig7, fig8, fig9a, fig9b, fig10, fig11a, fig11b, fig12a, fig12b, ablation, scan, groupby, concurrency, sharded, rebalance, obs, traffic, all)", id)
	}
	return nil
}

package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func tinyOptions() Options {
	return Options{Rows: 6000, QueriesPerType: 10, Seed: 5, Quick: true}
}

func TestRunDispatchUnknown(t *testing.T) {
	if err := Run(io.Discard, "fig99", tinyOptions()); err == nil {
		t.Error("unknown experiment id should error")
	}
}

func TestTab3Output(t *testing.T) {
	var buf bytes.Buffer
	Tab3(&buf, tinyOptions())
	out := buf.String()
	for _, want := range []string{"TPC-H", "Taxi", "Perfmon", "Stocks", "query types"} {
		if !strings.Contains(out, want) {
			t.Errorf("Tab3 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig7OutputAndCorrectness(t *testing.T) {
	var buf bytes.Buffer
	Fig7(&buf, tinyOptions())
	out := buf.String()
	if strings.Contains(out, "CORRECTNESS FAILURE") {
		t.Fatalf("Fig7 detected an incorrect index:\n%s", out)
	}
	for _, want := range []string{"Tsunami", "Flood", "KDTree", "ZOrder", "Hyperoctree", "SingleDim", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig7 output missing %q", want)
		}
	}
}

func TestFig12bReportsCostError(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions()
	Fig12b(&buf, o)
	out := buf.String()
	if strings.Contains(out, "INCORRECT") {
		t.Fatalf("an optimizer produced an incorrect grid:\n%s", out)
	}
	for _, want := range []string{"AGD", "GD", "BlackBox", "AGD-NI", "cost-model error"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig12b output missing %q", want)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions()
	o.Rows = 4000
	Ablations(&buf, o)
	out := buf.String()
	if strings.Contains(out, "CORRECTNESS FAILURE") {
		t.Fatalf("ablation variant incorrect:\n%s", out)
	}
	if !strings.Contains(out, "no functional mappings") {
		t.Error("ablation output incomplete")
	}
}

func TestConcurrencyRun(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions()
	o.Rows = 4000
	Concurrency(&buf, o)
	out := buf.String()
	if strings.Contains(out, "CORRECTNESS FAILURE") {
		t.Fatalf("concurrency experiment detected an incorrect index:\n%s", out)
	}
	for _, want := range []string{"workers", "throughput", "speedup", "intra-query"} {
		if !strings.Contains(out, want) {
			t.Errorf("Concurrency output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	tb := newTable("a", "bbbb")
	tb.add("xxxxx", "y")
	tb.print(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected header+sep+row, got %d lines", len(lines))
	}
	if len(lines[0]) == 0 || !strings.HasPrefix(lines[2], "xxxxx") {
		t.Errorf("unexpected table rendering:\n%s", buf.String())
	}
}

func TestHumanSizes(t *testing.T) {
	for _, tc := range []struct {
		in   uint64
		want string
	}{
		{512, "512B"},
		{2048, "2.0KiB"},
		{3 << 20, "3.0MiB"},
		{1 << 30, "1.0GiB"},
	} {
		if got := human(tc.in); got != tc.want {
			t.Errorf("human(%d) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestThroughput(t *testing.T) {
	if q := throughput(1e6); q != 1000 {
		t.Errorf("throughput(1ms) = %f, want 1000", q)
	}
	if q := throughput(0); q != 0 {
		t.Errorf("throughput(0) = %f, want 0", q)
	}
}

func TestOptionsFill(t *testing.T) {
	o := Options{}.fill()
	if o.Rows != 200_000 || o.QueriesPerType != 100 || o.Seed != 42 {
		t.Errorf("defaults wrong: %+v", o)
	}
	q := Options{Quick: true}.fill()
	if q.Rows != 30_000 || q.QueriesPerType != 40 {
		t.Errorf("quick defaults wrong: %+v", q)
	}
}

package bench

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	tsunami "repro"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/live"
	"repro/internal/query"
	"repro/internal/workload"
)

// TrafficResult is the heavy-traffic serving experiment's machine-
// readable output: what the epoch-keyed result cache buys on a skewed
// (zipfian) query stream, and what admission control buys under an
// open-loop burst that offers more load than the machine can serve.
type TrafficResult struct {
	Rows     int `json:"rows"`
	PoolSize int `json:"pool_size"` // distinct queries in the zipfian pool

	// Closed-loop zipfian stream against the cached store.
	ZipfQueries int     `json:"zipf_queries"`
	HitRatePct  float64 `json:"hit_rate_pct"`
	// HotHitNs / UncachedNs are the median latency of the stream's most
	// popular query served from the cache vs executed uncached;
	// CacheSpeedupX is their ratio (the ISSUE's >=10x claim).
	HotHitNs      float64 `json:"hot_hit_ns"`
	UncachedNs    float64 `json:"uncached_ns"`
	CacheSpeedupX float64 `json:"cache_speedup_x"`

	// Open-loop burst: Concurrency goroutines offer queries as fast as
	// they can against an uncached store — far beyond MaxInFlight.
	Concurrency int `json:"concurrency"`
	MaxInFlight int `json:"max_in_flight"`
	// UnloadedP99Us is the p99 with one client and no contention — the
	// latency the SLO is written against.
	UnloadedP99Us float64 `json:"unloaded_p99_us"`
	// UnsheddedP99Us is the burst p99 with no admission control: every
	// query is accepted and they all queue on each other.
	UnsheddedP99Us float64 `json:"unshedded_p99_us"`
	// ShedAdmittedP99Us is the burst p99 of the *admitted* queries when
	// the Executor sheds beyond MaxInFlight; ShedPct is how much of the
	// offered load was shed to protect it.
	ShedAdmittedP99Us float64 `json:"shed_admitted_p99_us"`
	ShedPct           float64 `json:"shed_pct"`
	// P99 ratios over unloaded: the unshedded one degrades with the
	// burst size, the shedded one is the discipline's claim (<= 2x).
	UnsheddedP99X float64 `json:"unshedded_p99_x"`
	ShedP99X      float64 `json:"shed_p99_x"`
}

// RunTraffic measures the serving discipline end to end. One immutable
// index serves three stores: bare (the uncached baseline), cached
// (result cache only), and the admission phases run against bare so
// every accepted query pays a real scan. Nothing runs in the background
// on any of them.
func RunTraffic(o Options) (*TrafficResult, error) {
	o = o.fill()
	ds := datasets.Taxi(o.Rows, o.Seed+1)
	work := workload.ForDataset(ds, o.QueriesPerType, o.Seed+101)
	idx := core.Build(ds.Store, work, o.tsunamiConfig(core.FullTsunami))
	if err := checkCorrect(idx, ds.Store, work); err != nil {
		return nil, err
	}

	quiet := live.Config{MergeThreshold: 1 << 30}
	bare := live.Open(idx, nil, quiet)
	defer bare.Close()
	cachedCfg := quiet
	cachedCfg.CacheEntries = 4096
	cached := live.Open(idx, nil, cachedCfg)
	defer cached.Close()

	pool := work
	if len(pool) > 256 {
		pool = pool[:256]
	}
	res := &TrafficResult{Rows: o.Rows, PoolSize: len(pool)}

	// Closed-loop zipfian stream: rank-0 of the pool is the heavy hitter,
	// the tail keeps the cache honest about misses and evictions.
	draws := 10_000
	if o.Quick {
		draws = 2_000
	}
	res.ZipfQueries = draws
	rng := rand.New(rand.NewSource(o.Seed + 7))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(pool)-1))
	for i := 0; i < draws; i++ {
		cached.Execute(pool[zipf.Uint64()])
	}
	cs := cached.CacheStats()
	if total := cs.Hits + cs.Misses; total > 0 {
		res.HitRatePct = 100 * float64(cs.Hits) / float64(total)
	}

	// Hot-query latency: the heavy hitter is warm by now, so every
	// cached ask is a hit (same epoch — nothing writes); time it against
	// the uncached store executing the identical query.
	hot := pool[0]
	reps := 400
	if o.Quick {
		reps = 150
	}
	res.HotHitNs = medianLatencyNs(reps, func() { cached.Execute(hot) })
	res.UncachedNs = medianLatencyNs(reps, func() { bare.Execute(hot) })
	if res.HotHitNs > 0 {
		res.CacheSpeedupX = res.UncachedNs / res.HotHitNs
	}
	after := cached.CacheStats()
	if after.Misses != cs.Misses {
		return nil, fmt.Errorf("traffic: hot query missed the cache %d times during the latency phase", after.Misses-cs.Misses)
	}

	// Unloaded baseline: one client, back to back, no admission — pure
	// service latency, the figure the SLO would be written against. It
	// draws as many queries as a whole burst offers so its p99 reflects
	// the same zipfian mix of query costs the bursts will see.
	perClient := 300
	if o.Quick {
		perClient = 120
	}
	conc := 4 * runtime.GOMAXPROCS(0)
	if conc < 8 {
		conc = 8
	}
	res.Concurrency = conc
	unloaded := burst(1, conc*perClient, 0, pool, o.Seed+11, func(q query.Query) (bool, error) {
		bare.Execute(q)
		return true, nil
	})
	res.UnloadedP99Us = p99(unloaded.admittedNs) / 1e3

	// Open-loop burst: arrivals on a fixed schedule at 2x the machine's
	// measured service capacity, latency counted from the *scheduled*
	// arrival (not the dispatch) — a closed-loop measurement hides queue
	// growth behind its own back-pressure (coordinated omission).
	svcNs := median(unloaded.admittedNs)
	interval := time.Duration(svcNs/2) / time.Duration(runtime.GOMAXPROCS(0))

	// No shedding: every offered query is accepted, the backlog grows for
	// the whole burst, and late arrivals wait behind all of it. Both burst
	// phases take the best of three runs: one run lasts ~50ms, so a single
	// scheduler stall from outside the process (CI boxes share cores) can
	// poison a whole tail, and the minimum-p99 run is the cleanest sample
	// of the behavior under measurement. The same rule applies to both
	// phases, so the comparison stays fair.
	unshedded := bestOf(3, func(rep int64) burstResult {
		return burst(conc, perClient, interval, pool, o.Seed+12+100*rep, func(q query.Query) (bool, error) {
			bare.Execute(q)
			return true, nil
		})
	})
	res.UnsheddedP99Us = p99(unshedded.admittedNs) / 1e3

	// Same arrival schedule through Serve with a bounded in-flight cap:
	// excess load is shed immediately, the backlog never forms, and the
	// admitted queries' p99 stays near the unloaded baseline.
	res.MaxInFlight = runtime.GOMAXPROCS(0)
	ex := tsunami.NewExecutorSource(bare, tsunami.ExecutorOptions{
		Admission: tsunami.AdmissionConfig{MaxInFlight: res.MaxInFlight},
	})
	defer ex.Close()
	shedded := bestOf(3, func(rep int64) burstResult {
		return burst(conc, perClient, interval, pool, o.Seed+13+100*rep, func(q query.Query) (bool, error) {
			_, err := ex.Serve(q, tsunami.PriorityNormal)
			if err == nil {
				return true, nil
			}
			if errors.Is(err, tsunami.ErrShed) {
				return false, nil
			}
			return false, err
		})
	})
	if shedded.err != nil {
		return nil, shedded.err
	}
	if len(shedded.admittedNs) == 0 {
		return nil, fmt.Errorf("traffic: admission shed the entire burst (%d offered)", shedded.offered)
	}
	res.ShedAdmittedP99Us = p99(shedded.admittedNs) / 1e3
	res.ShedPct = 100 * float64(shedded.offered-len(shedded.admittedNs)) / float64(shedded.offered)
	if res.UnloadedP99Us > 0 {
		res.UnsheddedP99X = res.UnsheddedP99Us / res.UnloadedP99Us
		res.ShedP99X = res.ShedAdmittedP99Us / res.UnloadedP99Us
	}
	return res, nil
}

// burstResult collects one burst phase's outcome.
type burstResult struct {
	offered    int
	admittedNs []float64
	err        error
}

// bestOf runs a burst phase n times and keeps the run with the lowest
// admitted p99 — the sample least contaminated by outside-the-process
// scheduler noise. A run that errors or admits nothing is returned as-is
// only if every run does.
func bestOf(n int64, run func(rep int64) burstResult) burstResult {
	var best burstResult
	have := false
	for rep := int64(0); rep < n; rep++ {
		r := run(rep)
		if r.err != nil || len(r.admittedNs) == 0 {
			if !have && rep == n-1 {
				return r
			}
			continue
		}
		if !have || p99(r.admittedNs) < p99(best.admittedNs) {
			best, have = r, true
		}
	}
	return best
}

// burst runs clients goroutines, each offering perClient zipfian-drawn
// queries, and gathers the per-query latencies of the accepted ones.
// serve reports whether the query was accepted.
//
// With interval > 0 the load is open-loop: client c's i-th query is
// *scheduled* to arrive at start + (i*clients+c)*interval, and its
// latency counts from that scheduled arrival — so time spent behind a
// backlog is charged to the system even though the client goroutine was
// blocked. Generator noise is not charged: when a client sleeps to its
// next arrival and the timer wakes it late, the overshoot shifts the
// client's whole remaining schedule (a sticky re-anchor). A backlogged
// client never sleeps, so lateness accrued *serving* — the queueing an
// unshedded burst builds — is still charged in full. interval == 0 is
// plain closed-loop (latency = service time).
func burst(clients, perClient int, interval time.Duration, pool []query.Query, seed int64, serve func(query.Query) (bool, error)) burstResult {
	var (
		mu  sync.Mutex
		out burstResult
		wg  sync.WaitGroup
	)
	out.offered = clients * perClient
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(pool)-1))
			ns := make([]float64, 0, perClient)
			var ferr error
			var lag time.Duration
			for i := 0; i < perClient; i++ {
				q := pool[zipf.Uint64()]
				sched := time.Now()
				if interval > 0 {
					sched = start.Add(time.Duration(i*clients+c)*interval + lag)
					if wait := time.Until(sched); wait > 0 {
						time.Sleep(wait)
						if over := time.Since(sched); over > 0 {
							lag += over
							sched = sched.Add(over)
						}
					}
				}
				ok, err := serve(q)
				if err != nil {
					ferr = err
					break
				}
				if ok {
					ns = append(ns, float64(time.Since(sched).Nanoseconds()))
				}
			}
			mu.Lock()
			out.admittedNs = append(out.admittedNs, ns...)
			if ferr != nil && out.err == nil {
				out.err = ferr
			}
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	return out
}

// medianLatencyNs times fn reps times and returns the median nanoseconds.
func medianLatencyNs(reps int, fn func()) float64 {
	fn() // warm
	ns := make([]float64, reps)
	for i := range ns {
		start := time.Now()
		fn()
		ns[i] = float64(time.Since(start).Nanoseconds())
	}
	return median(ns)
}

// p99 of a latency sample; the input slice is reordered.
func p99(ns []float64) float64 {
	if len(ns) == 0 {
		return 0
	}
	sort.Float64s(ns)
	i := int(float64(len(ns))*0.99) - 1
	if i < 0 {
		i = 0
	}
	return ns[i]
}

// Traffic prints the heavy-traffic serving experiment.
func Traffic(w io.Writer, o Options) {
	section(w, "Traffic", "result cache + admission control under zipfian load")
	r, err := RunTraffic(o)
	if err != nil {
		fmt.Fprintf(w, "FAILURE: %v\n", err)
		return
	}
	fmt.Fprintf(w, "zipfian stream (%d queries over %d shapes): %.1f%% cache hit rate\n",
		r.ZipfQueries, r.PoolSize, r.HitRatePct)
	fmt.Fprintf(w, "hot query: %.0fns cached vs %.0fns uncached — %.0fx\n",
		r.HotHitNs, r.UncachedNs, r.CacheSpeedupX)
	fmt.Fprintf(w, "burst x%d clients: p99 %.0fµs unshedded (%.1fx unloaded) vs %.0fµs admitted with shedding (%.1fx unloaded, %.1f%% shed, cap %d)\n",
		r.Concurrency, r.UnsheddedP99Us, r.UnsheddedP99X,
		r.ShedAdmittedP99Us, r.ShedP99X, r.ShedPct, r.MaxInFlight)
}

package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/flood"
	"repro/internal/index"
	"repro/internal/workload"
)

// Tab3 prints the dataset and query characteristics table (§6.2, Tab 3).
func Tab3(w io.Writer, o Options) {
	o = o.fill()
	section(w, "Tab 3", "Dataset and query characteristics")
	t := newTable("dataset", "records", "query types", "dimensions", "size", "avg sel")
	for _, dc := range paperDatasets(o) {
		types := map[int]bool{}
		selSum := 0.0
		for _, q := range dc.work {
			types[q.Type] = true
			selSum += index.Selectivity(dc.ds.Store, q)
		}
		t.add(dc.ds.Name,
			fmt.Sprintf("%d", dc.ds.Rows()),
			fmt.Sprintf("%d", len(types)),
			fmt.Sprintf("%d", dc.ds.Dims()),
			human(dc.ds.Store.SizeBytes()),
			fmt.Sprintf("%.2f%%", 100*selSum/float64(len(dc.work))))
	}
	t.print(w)
}

// Tab4 prints the optimized index structure statistics (§6.3, Tab 4).
func Tab4(w io.Writer, o Options) {
	o = o.fill()
	section(w, "Tab 4", "Index statistics after optimization")
	t := newTable("dataset", "GT nodes", "GT depth", "regions",
		"min pts/region", "med pts/region", "max pts/region",
		"avg FMs", "avg CCDFs", "tsunami cells", "flood cells")
	for _, dc := range paperDatasets(o) {
		ts := buildTsunami(dc, o)
		fl := buildFlood(dc, o)
		s := ts.idx.(*core.Tsunami).IndexStats()
		t.add(dc.ds.Name,
			fmt.Sprintf("%d", s.NumGridTreeNodes),
			fmt.Sprintf("%d", s.GridTreeDepth),
			fmt.Sprintf("%d", s.NumLeafRegions),
			fmt.Sprintf("%d", s.MinPointsPerRegion),
			fmt.Sprintf("%d", s.MedianPointsPerRegion),
			fmt.Sprintf("%d", s.MaxPointsPerRegion),
			fmt.Sprintf("%.2f", s.AvgFMsPerRegion),
			fmt.Sprintf("%.2f", s.AvgCCDFsPerRegion),
			fmt.Sprintf("%d", s.TotalGridCells),
			fmt.Sprintf("%d", floodCells(fl)))
	}
	t.print(w)
}

func floodCells(b built) int {
	type cells interface{ NumCells() int }
	if c, ok := b.idx.(cells); ok {
		return c.NumCells()
	}
	return 0
}

// Fig7 prints per-dataset average query time and throughput for every
// index, plus Tsunami's speedup over Flood and the best non-learned index
// (§6.3, Fig 7).
func Fig7(w io.Writer, o Options) {
	o = o.fill()
	section(w, "Fig 7", "Query performance across datasets")
	for _, dc := range paperDatasets(o) {
		fmt.Fprintf(w, "\n%s (%d rows, %d queries):\n", dc.ds.Name, dc.ds.Rows(), len(dc.work))
		suite := buildSuite(dc, o)
		t := newTable("index", "avg query", "throughput (q/s)", "vs Tsunami")
		var tsunamiNs, floodNs, bestNonLearnedNs float64
		lat := make([]float64, len(suite))
		for i, b := range suite {
			if err := checkCorrect(b.idx, dc.ds.Store, dc.work); err != nil {
				fmt.Fprintf(w, "CORRECTNESS FAILURE: %v\n", err)
				return
			}
			lat[i] = avgQueryNs(b.idx, dc.work)
			switch b.idx.Name() {
			case "Tsunami":
				tsunamiNs = lat[i]
			case "Flood":
				floodNs = lat[i]
			default:
				if bestNonLearnedNs == 0 || lat[i] < bestNonLearnedNs {
					bestNonLearnedNs = lat[i]
				}
			}
		}
		for i, b := range suite {
			t.add(b.idx.Name(), ms(lat[i]),
				fmt.Sprintf("%.0f", throughput(lat[i])),
				fmt.Sprintf("%.2fx", lat[i]/tsunamiNs))
		}
		t.print(w)
		fmt.Fprintf(w, "Tsunami speedup: %.2fx vs Flood, %.2fx vs best non-learned\n",
			floodNs/tsunamiNs, bestNonLearnedNs/tsunamiNs)
	}
}

// Fig8 prints index sizes (§6.3, Fig 8).
func Fig8(w io.Writer, o Options) {
	o = o.fill()
	section(w, "Fig 8", "Index size across datasets")
	for _, dc := range paperDatasets(o) {
		fmt.Fprintf(w, "\n%s:\n", dc.ds.Name)
		suite := buildSuite(dc, o)
		t := newTable("index", "size", "vs Tsunami")
		var tsunamiSize uint64
		for _, b := range suite {
			if b.idx.Name() == "Tsunami" {
				tsunamiSize = b.idx.SizeBytes()
			}
		}
		for _, b := range suite {
			t.add(b.idx.Name(), human(b.idx.SizeBytes()),
				fmt.Sprintf("%.1fx", float64(b.idx.SizeBytes())/float64(tsunamiSize)))
		}
		t.print(w)
	}
}

// Fig9a simulates the midnight workload shift on TPC-H (§6.4, Fig 9a): the
// learned indexes degrade on the new workload, re-optimize, and recover.
func Fig9a(w io.Writer, o Options) {
	o = o.fill()
	section(w, "Fig 9a", "Adaptability to workload shift (TPC-H)")
	ds := datasets.TPCH(o.Rows, o.Seed)
	gen := workload.NewGenerator(ds.Store, o.Seed+100)
	workA := gen.Generate(workload.TPCHTypes(), o.QueriesPerType)
	workB := gen.Generate(workload.TPCHShiftedTypes(), o.QueriesPerType)

	dcA := datasetCase{ds: ds, work: workA}
	ts := buildTsunami(dcA, o)
	fl := buildFlood(dcA, o)

	t := newTable("phase", "Tsunami (q/s)", "Flood (q/s)")
	t.add("before shift (workload A)",
		fmt.Sprintf("%.0f", throughput(avgQueryNs(ts.idx, workA))),
		fmt.Sprintf("%.0f", throughput(avgQueryNs(fl.idx, workA))))
	t.add("after shift, stale layout (workload B)",
		fmt.Sprintf("%.0f", throughput(avgQueryNs(ts.idx, workB))),
		fmt.Sprintf("%.0f", throughput(avgQueryNs(fl.idx, workB))))

	nts, tsSecs := ts.idx.(*core.Tsunami).Reoptimize(workB)
	nfl, flSecs := fl.idx.(*flood.Index).Reoptimize(workB, o.floodConfig())
	t.add("after re-optimization (workload B)",
		fmt.Sprintf("%.0f", throughput(avgQueryNs(nts, workB))),
		fmt.Sprintf("%.0f", throughput(avgQueryNs(nfl, workB))))
	t.print(w)
	fmt.Fprintf(w, "re-optimization time: Tsunami %.2fs, Flood %.2fs (%d rows)\n",
		tsSecs, flSecs, ds.Rows())
}

// Fig9b prints index creation time split into data sorting and optimization
// (§6.4, Fig 9b).
func Fig9b(w io.Writer, o Options) {
	o = o.fill()
	section(w, "Fig 9b", "Index creation time (sort + optimize)")
	for _, dc := range paperDatasets(o) {
		fmt.Fprintf(w, "\n%s:\n", dc.ds.Name)
		suite := buildSuite(dc, o)
		t := newTable("index", "sort (s)", "optimize (s)", "total wall (s)")
		for _, b := range suite {
			t.add(b.idx.Name(),
				fmt.Sprintf("%.3f", b.stats.SortSeconds),
				fmt.Sprintf("%.3f", b.stats.OptimizeSeconds),
				fmt.Sprintf("%.3f", b.wall))
		}
		t.print(w)
	}
}

package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"repro/internal/colstore"
	"repro/internal/query"
)

// GroupByShapePoint is the measured throughput of one grouped-aggregate
// shape across the three kernel tiers, plus its cost relative to the
// flat count_1f scan — the number the grouped fast path is engineered
// against (a low-cardinality GROUP BY should cost little more than the
// flat aggregate it decorates).
type GroupByShapePoint struct {
	Shape string `json:"shape"`
	// Groups is the answer's distinct-key count; Path says which
	// accumulator regime it lands in ("fast" for the per-key
	// equality-mask sweep, "generic" for dense-window + overflow-map).
	Groups int    `json:"groups"`
	Path   string `json:"path"`
	// KernelMRows/KernelGBps are the dispatched ScanRangeGrouped tier.
	KernelMRows float64 `json:"kernel_mrows_per_s"`
	KernelGBps  float64 `json:"kernel_gb_per_s"`
	// PortableMRows is ScanRangeGrouped with SIMD dispatch forced off.
	PortableMRows float64 `json:"portable_mrows_per_s"`
	// ScalarMRows is the row-at-a-time grouped oracle.
	ScalarMRows float64 `json:"scalar_mrows_per_s"`
	// Speedup is kernel vs scalar; VsFlat is kernel grouped throughput
	// over the flat count_1f kernel throughput (1.0 = grouping is free).
	Speedup float64 `json:"kernel_speedup"`
	VsFlat  float64 `json:"vs_flat_count_1f"`
}

// GroupByResult is the groupby experiment's machine-readable output.
type GroupByResult struct {
	Rows int `json:"rows"`
	// LowCardKeys/HighCardKeys are the two group columns' cardinalities:
	// below and above the accumulator's fast-path bound.
	LowCardKeys  int    `json:"low_card_keys"`
	HighCardKeys int    `json:"high_card_keys"`
	Kernel       string `json:"kernel"` // dispatched tier: "avx2" or "portable"
	// FlatMRows is the flat count_1f kernel baseline the grouped shapes
	// are held against.
	FlatMRows float64 `json:"flat_count_1f_mrows_per_s"`
	// FastPathRatio is gcount_1f_low / flat count_1f — the acceptance
	// figure for the low-cardinality fast path (target >= 0.5), measured
	// differentially over alternating passes (see groupedVsFlatRatio).
	FastPathRatio float64             `json:"fastpath_ratio"`
	Shapes        []GroupByShapePoint `json:"shapes"`
}

// RunGroupBy measures grouped-aggregate scan throughput against the flat
// kernels: grouped COUNT and grouped SUM through one range filter, once
// on a low-cardinality group column (the equality-mask fast path) and
// once on a high-cardinality one (the generic dense-window path), per
// kernel tier. Before timing anything it cross-checks every shape's
// ScanRangeGrouped answer against the row-at-a-time scalar oracle and
// returns an error on any mismatch, so a wrong-answer kernel can never
// report a throughput number.
func RunGroupBy(o Options) (*GroupByResult, error) {
	o = o.fill()
	rows := o.Rows * 4 // raw scans are fast; more rows = steadier numbers
	// Floor the table at ~6MB per column even in -quick mode: the
	// acceptance ratio compares the grouped scan against the flat
	// count_1f kernel in the memory-bound regime, and a cache-resident
	// flat baseline (one 8B stream vs the grouped scan's two) would
	// overstate the gap by the LLC-to-DRAM bandwidth ratio.
	if rows < 3<<18 {
		rows = 3 << 18
	}
	const (
		filterDims   = 4
		lowCardKeys  = 8    // well under the fast-path key bound
		highCardKeys = 4096 // forces the generic dense-window path
	)
	rng := rand.New(rand.NewSource(o.Seed))
	cols := make([][]int64, filterDims+2)
	for j := 0; j < filterDims; j++ {
		c := make([]int64, rows)
		for i := range c {
			c[i] = rng.Int63n(1_000_000)
		}
		cols[j] = c
	}
	for j, card := range []int64{lowCardKeys, highCardKeys} {
		c := make([]int64, rows)
		for i := range c {
			c[i] = rng.Int63n(card)
		}
		cols[filterDims+j] = c
	}
	st, err := colstore.FromColumns(cols, nil)
	if err != nil {
		return nil, fmt.Errorf("groupby: %v", err)
	}

	// The filter is the canonical count_1f shape (KernelBenchShapes), so
	// the flat baseline here and the scan experiment measure the same
	// kernel by construction.
	f := query.Filter{Dim: 0, Lo: 250_000, Hi: 750_000}
	shapes := []struct {
		name string
		q    query.Query
	}{
		{"gcount_1f_low", query.NewCount(f).By(filterDims)},
		{"gsum_1f_low", query.NewSum(1, f).By(filterDims)},
		{"gcount_1f_high", query.NewCount(f).By(filterDims + 1)},
		{"gsum_1f_high", query.NewSum(1, f).By(filterDims + 1)},
	}

	res := &GroupByResult{
		Rows:         rows,
		LowCardKeys:  lowCardKeys,
		HighCardKeys: highCardKeys,
		Kernel:       colstore.KernelName(),
	}
	window := 120 * time.Millisecond
	if o.Quick {
		window = 60 * time.Millisecond
	}
	flatM, _ := scanMRows(st, query.NewCount(f), window, false)
	res.FlatMRows = flatM
	for _, sh := range shapes {
		if err := checkGroupedAgainstScalar(st, sh.q); err != nil {
			return nil, fmt.Errorf("groupby %s: %w", sh.name, err)
		}
		groups := groupedPass(st, sh.q)
		kernelM, kernelG := groupedMRows(st, sh.q, window, false)
		scalarM, _ := groupedMRows(st, sh.q, window, true)
		portableM := kernelM
		if colstore.SIMDAvailable() {
			// Restore the prior dispatch state, not `true` (see RunScanKernels).
			prev := colstore.SetSIMD(false)
			portableM, _ = groupedMRows(st, sh.q, window, false)
			colstore.SetSIMD(prev)
		}
		path := "fast"
		if len(groups.Groups) > colstore.MaxFastGroups() {
			path = "generic"
		}
		p := GroupByShapePoint{
			Shape:         sh.name,
			Groups:        len(groups.Groups),
			Path:          path,
			KernelMRows:   kernelM,
			KernelGBps:    kernelG,
			PortableMRows: portableM,
			ScalarMRows:   scalarM,
		}
		if scalarM > 0 {
			p.Speedup = kernelM / scalarM
		}
		if flatM > 0 {
			p.VsFlat = kernelM / flatM
		}
		if sh.name == "gcount_1f_low" {
			// The acceptance figure is a ratio, so measure it
			// differentially — alternating flat/grouped passes, median of
			// per-pair ratios — instead of dividing two windows timed
			// minutes apart, where machine drift (not the kernels) can
			// move either side by 20%.
			p.VsFlat = groupedVsFlatRatio(st, query.NewCount(f), sh.q, window)
			res.FastPathRatio = p.VsFlat
		}
		res.Shapes = append(res.Shapes, p)
	}
	return res, nil
}

// groupedVsFlatRatio measures grouped-vs-flat scan throughput as the
// median of per-pair ratios over alternating timed passes, which cancels
// drift that would skew two independently timed windows.
func groupedVsFlatRatio(st *colstore.Store, flatQ, groupedQ query.Query, window time.Duration) float64 {
	n := st.NumRows()
	flatPass := func() {
		var res colstore.ScanResult
		st.ScanRange(flatQ, 0, n, false, &res)
	}
	groupedPass := func() {
		acc := colstore.NewGroupAccumulator(groupedQ)
		st.ScanRangeGrouped(groupedQ, 0, n, false, acc)
	}
	flatPass()
	groupedPass() // warm-up (also builds the byte-code image)
	var ratios []float64
	start := time.Now()
	for time.Since(start) < window || len(ratios) < 3 {
		t0 := time.Now()
		flatPass()
		t1 := time.Now()
		groupedPass()
		t2 := time.Now()
		if g := t2.Sub(t1); g > 0 {
			ratios = append(ratios, float64(t1.Sub(t0))/float64(g))
		}
	}
	sort.Float64s(ratios)
	return ratios[len(ratios)/2]
}

// groupedPass runs one full-table grouped pass with the dispatched
// kernels and returns the answer.
func groupedPass(st *colstore.Store, q query.Query) colstore.GroupedResult {
	acc := colstore.NewGroupAccumulator(q)
	st.ScanRangeGrouped(q, 0, st.NumRows(), false, acc)
	return acc.Result()
}

// checkGroupedAgainstScalar compares a full-table ScanRangeGrouped pass
// against the row-at-a-time scalar oracle, group by group.
func checkGroupedAgainstScalar(st *colstore.Store, q query.Query) error {
	got := groupedPass(st, q)
	var want colstore.GroupedResult
	st.ScanRangeGroupedScalar(q, 0, st.NumRows(), false, &want)
	if len(got.Groups) != len(want.Groups) {
		return fmt.Errorf("kernel found %d groups, scalar oracle %d", len(got.Groups), len(want.Groups))
	}
	for i, g := range got.Groups {
		w := want.Groups[i]
		if g.Key != w.Key || g.Count != w.Count || g.Sum != w.Sum {
			return fmt.Errorf("group %d: kernel {key=%d count=%d sum=%d}, scalar oracle {key=%d count=%d sum=%d}",
				i, g.Key, g.Count, g.Sum, w.Key, w.Count, w.Sum)
		}
	}
	return nil
}

// groupedMRows measures single-thread full-table grouped-scan throughput,
// returning Mrows/s and effective GB/s (planned column bytes per second,
// the group column charged as one extra stream).
func groupedMRows(st *colstore.Store, q query.Query, window time.Duration, scalar bool) (float64, float64) {
	n := st.NumRows()
	bytesPerPass := groupedPass(st, q).BytesTouched
	scan := func() {
		if scalar {
			var res colstore.GroupedResult
			st.ScanRangeGroupedScalar(q, 0, n, false, &res)
		} else {
			acc := colstore.NewGroupAccumulator(q)
			st.ScanRangeGrouped(q, 0, n, false, acc)
		}
	}
	scan() // warm-up
	passes := 0
	start := time.Now()
	for time.Since(start) < window || passes < 2 {
		scan()
		passes++
	}
	secs := time.Since(start).Seconds()
	return float64(passes) * float64(n) / secs / 1e6,
		float64(passes) * float64(bytesPerPass) / secs / 1e9
}

// GroupBy prints the grouped-aggregate experiment: the GROUP BY kernels
// against their scalar oracle and the flat scan they decorate.
func GroupBy(w io.Writer, o Options) {
	r, err := RunGroupBy(o)
	if err != nil {
		fmt.Fprintf(w, "GroupBy: FAILED: %v\n", err)
		return
	}
	section(w, "GroupBy", fmt.Sprintf("Grouped aggregates (%s) vs scalar oracle and flat count_1f (%d rows; group cardinality %d and %d)",
		r.Kernel, r.Rows, r.LowCardKeys, r.HighCardKeys))
	t := newTable("shape", "groups", "path", "kernel (Mrows/s)", "kernel (GB/s)", "portable (Mrows/s)", "scalar (Mrows/s)", "vs scalar", "vs flat count_1f")
	for _, p := range r.Shapes {
		t.add(p.Shape,
			fmt.Sprintf("%d", p.Groups),
			p.Path,
			fmt.Sprintf("%.0f", p.KernelMRows),
			fmt.Sprintf("%.1f", p.KernelGBps),
			fmt.Sprintf("%.0f", p.PortableMRows),
			fmt.Sprintf("%.0f", p.ScalarMRows),
			fmt.Sprintf("%.2fx", p.Speedup),
			fmt.Sprintf("%.2fx", p.VsFlat))
	}
	t.print(w)
	fmt.Fprintf(w, "flat count_1f baseline: %.0f Mrows/s; low-cardinality fast-path ratio %.2f (acceptance >= 0.5)\n",
		r.FlatMRows, r.FastPathRatio)
}

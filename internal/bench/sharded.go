package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	tsunami "repro"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/sharded"
	"repro/internal/workload"
)

// IngestPoint is ingest throughput at one shard count. IngestP99Us is
// the tail of the per-batch publish latency histogram
// (tsunami_live_ingest_latency_seconds summed over shards): the figure
// that shows the serialized copy-on-write section shrinking as shards
// split it, even when GOMAXPROCS hides it from the throughput column.
type IngestPoint struct {
	Shards      int     `json:"shards"`
	RowsPS      float64 `json:"rows_per_s"`
	Speedup     float64 `json:"speedup_vs_1"`
	IngestP99Us float64 `json:"ingest_p99_us"`
}

// ShardedResult is the sharded experiment's machine-readable output.
type ShardedResult struct {
	Rows    int `json:"rows"`
	Writers int `json:"writers"`
	// ScalingUnreliable marks the ingest speedup-vs-shards numbers as
	// unable to support scaling claims: with GOMAXPROCS=1 the writer
	// fleet timeshares one CPU, so more shards only add partitioner and
	// scheduler overhead — BENCH_5.json recorded *inverse* scaling
	// (0.67x at 4 shards) for exactly this reason.
	ScalingUnreliable bool          `json:"scaling_unreliable,omitempty"`
	Ingest            []IngestPoint `json:"ingest"`
	ReadShards        int           `json:"read_shards"`
	ReadWorkers       int           `json:"read_workers"`
	ReadQPS           float64       `json:"scatter_gather_qps"`
	// ReadP50Us/ReadP99Us are end-to-end scatter-gather latency quantiles
	// from tsunami_sharded_query_latency_seconds.
	ReadP50Us  float64 `json:"read_p50_us"`
	ReadP99Us  float64 `json:"read_p99_us"`
	MeanFanout float64 `json:"mean_fanout_shards"`
	PrunedFrac float64 `json:"pruned_frac"`
}

// RunSharded measures the ShardedStore's two claims on the taxi dataset:
// ingest throughput scaling with shard count (writers to different shards
// never share a copy-on-write section, so rows/sec should grow with
// shards until cores run out), and scatter-gather reads with router
// pruning (range queries on the learned partition dimension touch few
// shards). The paper's single-node design (§8) has one serialized insert
// path; this experiment measures the reproduction's way past it.
func RunSharded(o Options) (*ShardedResult, error) {
	o = o.fill()
	ds := datasets.Taxi(o.Rows, o.Seed+1)
	work := workload.ForDataset(ds, o.QueriesPerType, o.Seed+101)

	// Ingest scaling: same writer fleet, growing shard counts. Merges are
	// disabled (huge threshold) so the numbers isolate the serialized
	// copy-on-write ingest section that sharding splits.
	writers := runtime.NumCPU()
	if writers < 4 {
		writers = 4
	}
	res := &ShardedResult{Rows: o.Rows, Writers: writers, ScalingUnreliable: effectiveParallelism() <= 1}
	base := 0.0
	for _, n := range dedupInts([]int{1, 2, 4, runtime.NumCPU()}) {
		m := tsunami.NewMetrics()
		st, err := sharded.Open(ds.Store, work, o.tsunamiConfig(core.FullTsunami), sharded.Config{
			Shards:  n,
			Learned: true,
			Metrics: m,
			Live:    live.Config{MergeThreshold: 1 << 30},
		})
		if err != nil {
			return nil, fmt.Errorf("build failure at %d shards: %w", n, err)
		}
		rps := ingestThroughput(st, ds, writers)
		st.Close()
		if base == 0 {
			base = rps
		}
		lat := m.Snapshot().Hists[obs.MLiveIngestLatency]
		res.Ingest = append(res.Ingest, IngestPoint{
			Shards: n, RowsPS: rps, Speedup: rps / base,
			IngestP99Us: lat.Quantile(0.99) * 1e6,
		})
	}

	// Scatter-gather reads: the full workload through an Executor over a
	// 4-shard store, with the router pruning shards per query.
	m := tsunami.NewMetrics()
	st, err := sharded.Open(ds.Store, work, o.tsunamiConfig(core.FullTsunami), sharded.Config{Shards: 4, Learned: true, Metrics: m})
	if err != nil {
		return nil, fmt.Errorf("build failure: %w", err)
	}
	defer st.Close()
	if err := checkCorrect(st, ds.Store, work); err != nil {
		return nil, err
	}
	// Anchor a snapshot after the correctness pass so the read quantiles
	// cover only the measured throughput window.
	pre := m.Snapshot()
	ex := tsunami.NewExecutorSource(st, tsunami.ExecutorOptions{Workers: runtime.NumCPU()})
	qps := batchThroughput(ex, work)
	ex.Close()
	lat := m.Snapshot().Diff(pre).Hists[obs.MShardedQueryLatency]
	s := st.Stats()
	res.ReadShards = 4
	res.ReadWorkers = runtime.NumCPU()
	res.ReadQPS = qps
	res.ReadP50Us = lat.Quantile(0.5) * 1e6
	res.ReadP99Us = lat.Quantile(0.99) * 1e6
	res.MeanFanout = float64(s.ShardsScanned) / float64(s.Queries)
	res.PrunedFrac = float64(s.ShardsPruned) / float64(s.ShardsScanned+s.ShardsPruned)
	return res, nil
}

// Sharded prints the ShardedStore experiment.
func Sharded(w io.Writer, o Options) {
	section(w, "Sharded", "ShardedStore ingest scaling and scatter-gather reads")
	r, err := RunSharded(o)
	if err != nil {
		fmt.Fprintf(w, "FAILURE: %v\n", err)
		return
	}
	t := newTable("shards", "ingest (rows/s)", "speedup vs 1 shard", "batch p99")
	for _, p := range r.Ingest {
		t.add(fmt.Sprintf("%d", p.Shards), fmt.Sprintf("%.0f", p.RowsPS), fmt.Sprintf("%.2fx", p.Speedup),
			fmt.Sprintf("%.0fµs", p.IngestP99Us))
	}
	t.print(w)
	fmt.Fprintf(w, "scatter-gather (%d shards, %d workers): %.0f q/s (p50 %.0fµs, p99 %.0fµs), mean fan-out %.2f shards (%.0f%% of shard scans pruned)\n",
		r.ReadShards, r.ReadWorkers, r.ReadQPS, r.ReadP50Us, r.ReadP99Us, r.MeanFanout, 100*r.PrunedFrac)
	if r.ScalingUnreliable {
		fmt.Fprintf(w, "NOTE: effective parallelism 1 (GOMAXPROCS or CPU count) — shard-scaling numbers cannot support scaling claims\n")
	}
}

// ingestThroughput streams perturbed copies of existing rows from a fixed
// writer fleet into st for a short window and reports rows/sec.
func ingestThroughput(st *sharded.Store, ds *datasets.Dataset, writers int) float64 {
	const (
		dur       = 200 * time.Millisecond
		batchSize = 64
	)
	// Warm-up plus steady state: writers reuse their batch buffers (the
	// serving layer copies rows defensively on ingest).
	var total atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for wr := 0; wr < writers; wr++ {
		wr := wr
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]int64, ds.Store.NumDims())
			batch := make([][]int64, batchSize)
			for k := range batch {
				batch[k] = make([]int64, ds.Store.NumDims())
			}
			for i := 0; time.Since(start) < dur; i++ {
				for k := range batch {
					copy(batch[k], ds.Store.Row((wr*7919+i*batchSize+k)%ds.Store.NumRows(), buf))
					batch[k][0] += int64(1 + wr)
				}
				if err := st.InsertBatch(batch); err != nil {
					return
				}
				total.Add(batchSize)
			}
		}()
	}
	wg.Wait()
	return float64(total.Load()) / time.Since(start).Seconds()
}

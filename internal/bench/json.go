package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/colstore"
)

// Report is the machine-readable BENCH artifact tsunami-bench -json emits.
// CI runs the JSON-capable experiments in -quick mode on every PR and
// uploads the result (and commits one per PR as BENCH_<n>.json), so the
// repo accumulates a benchmark trajectory tools can diff across PRs.
type Report struct {
	Schema        string `json:"schema"` // "tsunami-bench/v1"
	GeneratedUnix int64  `json:"generated_unix"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`
	// GOMAXPROCS is the effective parallelism of the run; scaling-
	// sensitive experiments flag themselves unreliable when it is 1.
	GOMAXPROCS int `json:"gomaxprocs"`
	// ScanKernel is the colstore kernel tier the run dispatched to
	// ("avx2" or "portable"), so artifacts from different hardware are
	// comparable.
	ScanKernel string `json:"scan_kernel"`

	Options struct {
		Rows           int   `json:"rows"`
		QueriesPerType int   `json:"queries_per_type"`
		Seed           int64 `json:"seed"`
		Quick          bool  `json:"quick"`
	} `json:"options"`

	// ObsOverheadPct is surfaced at the top level (duplicating
	// experiments.obs.overhead_pct) whenever the obs experiment ran, so
	// timeline tools can track the instrumentation tax without knowing
	// the experiment's internal shape. Omitted when obs did not run.
	ObsOverheadPct *float64 `json:"obs_overhead_pct,omitempty"`
	// WorkloadOverheadPct is the same surfacing for the metrics-plus-
	// workload-statistics store (experiments.obs.workload_overhead_pct).
	WorkloadOverheadPct *float64 `json:"workload_overhead_pct,omitempty"`

	// Experiments maps experiment id to its typed result struct
	// (ScanKernelsResult, ConcurrencyResult, ShardedResult, ObsResult).
	Experiments map[string]any `json:"experiments"`
}

// jsonRunners are the experiments with machine-readable reporters. The
// table-printing experiments reproduce paper figures for humans; these
// three measure the serving-layer claims CI tracks over time.
var jsonRunners = map[string]func(Options) (any, error){
	"scan": func(o Options) (any, error) { return RunScanKernels(o), nil },
	"groupby": func(o Options) (any, error) {
		return RunGroupBy(o)
	},
	"concurrency": func(o Options) (any, error) {
		return RunConcurrency(o)
	},
	"sharded": func(o Options) (any, error) {
		return RunSharded(o)
	},
	"obs": func(o Options) (any, error) {
		return RunObs(o)
	},
	"traffic": func(o Options) (any, error) {
		return RunTraffic(o)
	},
}

// RunJSON runs the given experiment ids and writes one indented JSON
// Report to w. Unlike the text experiments, any failure (build or
// correctness) aborts with an error instead of printing a failure row, so
// CI can gate on the exit code.
func RunJSON(w io.Writer, ids []string, o Options) error {
	o = o.fill()
	rep := Report{
		Schema:        "tsunami-bench/v1",
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		ScanKernel:    colstore.KernelName(),
		Experiments:   make(map[string]any, len(ids)),
	}
	rep.Options.Rows = o.Rows
	rep.Options.QueriesPerType = o.QueriesPerType
	rep.Options.Seed = o.Seed
	rep.Options.Quick = o.Quick
	for _, id := range ids {
		run, ok := jsonRunners[id]
		if !ok {
			return fmt.Errorf("experiment %q has no JSON reporter (have: scan, groupby, concurrency, sharded, obs, traffic)", id)
		}
		res, err := run(o)
		if err != nil {
			return fmt.Errorf("experiment %q: %w", id, err)
		}
		rep.Experiments[id] = res
		if or, ok := res.(*ObsResult); ok {
			rep.ObsOverheadPct = &or.OverheadPct
			rep.WorkloadOverheadPct = &or.WorkloadOverheadPct
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	tsunami "repro"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/query"
	"repro/internal/workload"
)

// Concurrency reports batch query throughput through the public Executor
// worker pool at 1, 4, and NumCPU workers, on the Fig 7 taxi query mix
// against one shared Tsunami index (no per-goroutine cloning). The paper's
// evaluation is single-threaded (§6.1); this experiment measures the
// concurrent serving path the reproduction adds on top of it, alongside an
// intra-query row where each single query's regions are split across the
// pool.
func Concurrency(w io.Writer, o Options) {
	o = o.fill()
	section(w, "Concurrency", "Executor throughput vs worker count (Fig 7 taxi mix)")
	ds := datasets.Taxi(o.Rows, o.Seed+1)
	work := workload.ForDataset(ds, o.QueriesPerType, o.Seed+101)
	idx := core.Build(ds.Store, work, o.tsunamiConfig(core.FullTsunami))
	if err := checkCorrect(idx, ds.Store, work); err != nil {
		fmt.Fprintf(w, "CORRECTNESS FAILURE: %v\n", err)
		return
	}

	counts := dedupInts([]int{1, 4, runtime.NumCPU()})
	t := newTable("workers", "throughput (q/s)", "speedup vs 1 worker")
	base := 0.0
	for _, n := range counts {
		ex := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{Workers: n})
		qps := batchThroughput(ex, work)
		ex.Close()
		if base == 0 {
			base = qps
		}
		t.add(fmt.Sprintf("%d", n), fmt.Sprintf("%.0f", qps), fmt.Sprintf("%.2fx", qps/base))
	}
	t.print(w)

	// Intra-query parallelism: one query at a time, its regions spread
	// across the pool. Wins on queries routed to many regions; the table
	// shows how much of the batch speedup a single large query can recover.
	ex := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{Workers: runtime.NumCPU(), IntraQuery: true})
	start := time.Now()
	passes := 0
	for time.Since(start) < 150*time.Millisecond || passes < 2 {
		for _, q := range work {
			ex.Execute(q)
		}
		passes++
	}
	qps := float64(passes*len(work)) / time.Since(start).Seconds()
	ex.Close()
	fmt.Fprintf(w, "intra-query (%d workers, one query at a time): %.0f q/s (%.2fx vs 1 worker)\n",
		runtime.NumCPU(), qps, qps/base)
}

// dedupInts drops repeated values, preserving order (NumCPU may equal one
// of the fixed worker counts).
func dedupInts(in []int) []int {
	out := in[:0]
	for _, v := range in {
		seen := false
		for _, o := range out {
			seen = seen || o == v
		}
		if !seen {
			out = append(out, v)
		}
	}
	return out
}

// batchThroughput measures steady-state queries/sec of repeated
// ExecuteBatch calls over the workload.
func batchThroughput(ex *tsunami.Executor, qs []query.Query) float64 {
	ex.ExecuteBatch(qs) // warm-up
	const minDuration = 150 * time.Millisecond
	batches := 0
	start := time.Now()
	for time.Since(start) < minDuration || batches < 2 {
		ex.ExecuteBatch(qs)
		batches++
	}
	return float64(batches*len(qs)) / time.Since(start).Seconds()
}

package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	tsunami "repro"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/workload"
)

// PoolPoint is batch throughput at one worker count. The latency
// quantiles come from the executor's per-query histogram
// (tsunami_exec_latency_seconds), not from dividing wall time by query
// count, so tail behavior under queueing is visible per point.
type PoolPoint struct {
	Workers int     `json:"workers"`
	QPS     float64 `json:"qps"`
	Speedup float64 `json:"speedup_vs_1"`
	P50Us   float64 `json:"p50_us"`
	P99Us   float64 `json:"p99_us"`
}

// ConcurrencyResult is the concurrency experiment's machine-readable
// output.
type ConcurrencyResult struct {
	Rows    int `json:"rows"`
	Queries int `json:"queries"`
	// ScalingUnreliable marks this run's speedup-vs-workers numbers as
	// unable to support scaling claims: with effective parallelism 1
	// (GOMAXPROCS=1, or one CPU regardless of GOMAXPROCS) every worker
	// count timeshares one CPU, so "speedups" are scheduler noise (the
	// trap the committed BENCH_5.json fell into).
	ScalingUnreliable bool        `json:"scaling_unreliable,omitempty"`
	Pool              []PoolPoint `json:"pool"`
	// Intra-query: one query at a time, its regions and sub-region chunks
	// spread across the full pool.
	IntraWorkers int     `json:"intra_query_workers"`
	IntraQPS     float64 `json:"intra_query_qps"`
	IntraSpeedup float64 `json:"intra_query_speedup_vs_1"`
}

// RunConcurrency measures batch query throughput through the public
// Executor worker pool at 1, 4, and NumCPU workers, on the Fig 7 taxi
// query mix against one shared Tsunami index (no per-goroutine cloning).
// The paper's evaluation is single-threaded (§6.1); this experiment
// measures the concurrent serving path the reproduction adds on top of it,
// alongside an intra-query run where each single query's regions — and,
// below that, block-granular chunks of each region's planned scan ranges —
// are split across the pool.
func RunConcurrency(o Options) (*ConcurrencyResult, error) {
	o = o.fill()
	ds := datasets.Taxi(o.Rows, o.Seed+1)
	work := workload.ForDataset(ds, o.QueriesPerType, o.Seed+101)
	idx := core.Build(ds.Store, work, o.tsunamiConfig(core.FullTsunami))
	if err := checkCorrect(idx, ds.Store, work); err != nil {
		return nil, err
	}

	res := &ConcurrencyResult{Rows: o.Rows, Queries: len(work), ScalingUnreliable: effectiveParallelism() <= 1}
	base := 0.0
	for _, n := range dedupInts([]int{1, 4, runtime.NumCPU()}) {
		m := tsunami.NewMetrics()
		ex := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{Workers: n, Metrics: m})
		qps := batchThroughput(ex, work)
		ex.Close()
		if base == 0 {
			base = qps
		}
		lat := m.Snapshot().Hists[obs.MExecLatency]
		res.Pool = append(res.Pool, PoolPoint{
			Workers: n, QPS: qps, Speedup: qps / base,
			P50Us: lat.Quantile(0.5) * 1e6, P99Us: lat.Quantile(0.99) * 1e6,
		})
	}

	// Intra-query parallelism: one query at a time, its work spread across
	// the pool. Wins on queries routed to many regions or to few huge ones
	// (the chunked sub-region path); the number shows how much of the
	// batch speedup a single query can recover.
	ex := tsunami.NewExecutor(idx, tsunami.ExecutorOptions{Workers: runtime.NumCPU(), IntraQuery: true})
	start := time.Now()
	passes := 0
	for time.Since(start) < 150*time.Millisecond || passes < 2 {
		for _, q := range work {
			ex.Execute(q)
		}
		passes++
	}
	res.IntraWorkers = runtime.NumCPU()
	res.IntraQPS = float64(passes*len(work)) / time.Since(start).Seconds()
	res.IntraSpeedup = res.IntraQPS / base
	ex.Close()
	return res, nil
}

// Concurrency prints the Executor throughput experiment.
func Concurrency(w io.Writer, o Options) {
	section(w, "Concurrency", "Executor throughput vs worker count (Fig 7 taxi mix)")
	r, err := RunConcurrency(o)
	if err != nil {
		fmt.Fprintf(w, "CORRECTNESS FAILURE: %v\n", err)
		return
	}
	t := newTable("workers", "throughput (q/s)", "speedup vs 1 worker", "p50", "p99")
	for _, p := range r.Pool {
		t.add(fmt.Sprintf("%d", p.Workers), fmt.Sprintf("%.0f", p.QPS), fmt.Sprintf("%.2fx", p.Speedup),
			fmt.Sprintf("%.0fµs", p.P50Us), fmt.Sprintf("%.0fµs", p.P99Us))
	}
	t.print(w)
	fmt.Fprintf(w, "intra-query (%d workers, one query at a time): %.0f q/s (%.2fx vs 1 worker)\n",
		r.IntraWorkers, r.IntraQPS, r.IntraSpeedup)
	if r.ScalingUnreliable {
		fmt.Fprintf(w, "NOTE: effective parallelism 1 (GOMAXPROCS or CPU count) — worker-scaling numbers cannot support scaling claims\n")
	}
}

// effectiveParallelism is how many goroutines can truly run at once:
// GOMAXPROCS capped by the machine's CPU count. Raising GOMAXPROCS above
// NumCPU adds scheduler thrash, not parallelism — a GOMAXPROCS=4 run on
// a 1-CPU container must still flag its scaling numbers as unreliable
// (the committed BENCH_6.json escaped the flag exactly this way).
func effectiveParallelism() int {
	n := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c < n {
		n = c
	}
	return n
}

// dedupInts drops repeated values, preserving order (NumCPU may equal one
// of the fixed worker counts).
func dedupInts(in []int) []int {
	out := in[:0]
	for _, v := range in {
		seen := false
		for _, o := range out {
			seen = seen || o == v
		}
		if !seen {
			out = append(out, v)
		}
	}
	return out
}

// batchThroughput measures steady-state queries/sec of repeated
// ExecuteBatch calls over the workload.
func batchThroughput(ex *tsunami.Executor, qs []query.Query) float64 {
	ex.ExecuteBatch(qs) // warm-up
	const minDuration = 150 * time.Millisecond
	batches := 0
	start := time.Now()
	for time.Since(start) < minDuration || batches < 2 {
		ex.ExecuteBatch(qs)
		batches++
	}
	return float64(batches*len(qs)) / time.Since(start).Seconds()
}

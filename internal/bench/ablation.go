package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// Ablations benchmarks the design choices DESIGN.md calls out by switching
// each off in isolation and re-measuring Tsunami on the paper's datasets:
//
//   - the within-cell sort dimension and its binary-search refinement
//     (Flood's §2.2 refinement, kept by the Augmented Grid);
//   - functional mappings (§5.2.1);
//   - conditional CDFs (§5.2.2);
//   - the additive merge epsilon that keeps low-cardinality dimensions
//     from shattering the Grid Tree (a scale guard added by this
//     implementation);
//   - outlier-robust functional mappings (§8), measured in the ON
//     direction since the base configuration disables them.
func Ablations(w io.Writer, o Options) {
	o = o.fill()
	section(w, "Ablation", "Design-choice ablations (Tsunami variants)")

	variants := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"Tsunami (full)", func(c *core.Config) {}},
		{"no sort-dim refinement", func(c *core.Config) { c.DisableSortDim = true }},
		{"no functional mappings", func(c *core.Config) { c.Grid.FMErrFrac = -1 }},
		{"no conditional CDFs", func(c *core.Config) { c.Grid.CCDFEmptyFrac = 2 }},
		{"no FMs, no CCDFs", func(c *core.Config) {
			c.Grid.FMErrFrac = -1
			c.Grid.CCDFEmptyFrac = 2
		}},
		{"no merge epsilon", func(c *core.Config) { c.GridTree.MergeEps = -1e-12 }},
		{"robust mappings (1% buffer)", func(c *core.Config) { c.Grid.OutlierFrac = 0.01 }},
	}

	for _, dc := range paperDatasets(o) {
		fmt.Fprintf(w, "\n%s:\n", dc.ds.Name)
		t := newTable("variant", "avg query", "vs full", "index size")
		var fullNs float64
		for _, v := range variants {
			cfg := o.tsunamiConfig(core.FullTsunami)
			v.mut(&cfg)
			idx := core.Build(dc.ds.Store, dc.work, cfg)
			if err := checkCorrect(idx, dc.ds.Store, dc.work); err != nil {
				fmt.Fprintf(w, "CORRECTNESS FAILURE (%s): %v\n", v.name, err)
				return
			}
			ns := avgQueryNs(idx, dc.work)
			if v.name == "Tsunami (full)" {
				fullNs = ns
			}
			t.add(v.name, ms(ns), fmt.Sprintf("%.2fx", ns/fullNs), human(idx.SizeBytes()))
		}
		t.print(w)
	}
}

package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colstore"
	"repro/internal/query"
)

// ScanShapePoint is the measured scan throughput of one (agg x
// filter-count) kernel shape, in millions of rows per second and — from
// the ScanResult's BytesTouched model — effective column bandwidth in
// GB/s, the number to hold against the machine's STREAM bandwidth to see
// how far from the memory wall the scan runs.
type ScanShapePoint struct {
	Shape string `json:"shape"`
	// KernelMRows/KernelGBps are single-thread throughputs of the
	// dispatched kernel tier (AVX2 where available, otherwise the
	// portable branch-free kernels).
	KernelMRows float64 `json:"kernel_mrows_per_s"`
	KernelGBps  float64 `json:"kernel_gb_per_s"`
	// PortableMRows/PortableGBps are the portable branch-free kernels
	// with SIMD dispatch forced off (equal to the kernel numbers when no
	// SIMD tier is compiled in or supported).
	PortableMRows float64 `json:"portable_mrows_per_s"`
	PortableGBps  float64 `json:"portable_gb_per_s"`
	// ScalarMRows/ScalarGBps are the retained row-at-a-time oracle.
	ScalarMRows float64 `json:"scalar_mrows_per_s"`
	ScalarGBps  float64 `json:"scalar_gb_per_s"`
	// Speedup is kernel vs scalar; SIMDSpeedup is kernel vs portable.
	Speedup     float64 `json:"kernel_speedup"`
	SIMDSpeedup float64 `json:"simd_speedup"`
	// SaturatedMRows/SaturatedGBps are aggregate kernel throughput with
	// one scanning goroutine per CPU — the memory-bottleneck regime the
	// kernels target.
	SaturatedMRows float64 `json:"kernel_mrows_per_s_saturated"`
	SaturatedGBps  float64 `json:"kernel_gb_per_s_saturated"`
}

// ScanKernelsResult is the scan experiment's machine-readable output.
type ScanKernelsResult struct {
	Rows    int    `json:"rows"`
	Dims    int    `json:"dims"`
	Threads int    `json:"saturated_threads"`
	Kernel  string `json:"kernel"` // dispatched tier: "avx2" or "portable"
	// ScalingUnreliable marks the saturated numbers as unable to support
	// scaling claims: with GOMAXPROCS=1 the "saturated pool" is one
	// thread plus scheduler overhead.
	ScalingUnreliable bool             `json:"scaling_unreliable,omitempty"`
	Shapes            []ScanShapePoint `json:"shapes"`
}

// RunScanKernels measures raw colstore scan throughput — the dispatched
// SIMD tier, the portable kernels, and the scalar oracle per shape,
// single-thread and with every CPU scanning.
func RunScanKernels(o Options) *ScanKernelsResult {
	o = o.fill()
	rows := o.Rows * 4 // raw scans are fast; more rows = steadier numbers
	if rows < 1<<17 {
		rows = 1 << 17
	}
	const dims = 4
	rng := rand.New(rand.NewSource(o.Seed))
	cols := make([][]int64, dims)
	for j := range cols {
		c := make([]int64, rows)
		for i := range c {
			c[i] = rng.Int63n(1_000_000)
		}
		cols[j] = c
	}
	st, err := colstore.FromColumns(cols, nil)
	if err != nil {
		panic("bench: " + err.Error()) // columns are equal-length by construction
	}

	threads := runtime.GOMAXPROCS(0)
	res := &ScanKernelsResult{
		Rows:              rows,
		Dims:              dims,
		Threads:           threads,
		Kernel:            colstore.KernelName(),
		ScalingUnreliable: effectiveParallelism() <= 1,
	}
	window := 120 * time.Millisecond
	if o.Quick {
		window = 60 * time.Millisecond
	}
	// The shapes are the canonical colstore.KernelBenchShapes, so this
	// experiment and the CI-gated BenchmarkScanKernels measure the same
	// thing by construction.
	for _, sh := range colstore.KernelBenchShapes() {
		kernelM, kernelG := scanMRows(st, sh.Query, window, false)
		scalarM, scalarG := scanMRows(st, sh.Query, window, true)
		portableM, portableG := kernelM, kernelG
		if colstore.SIMDAvailable() {
			// Restore the prior dispatch state, not `true`: the run may
			// have SIMD disabled via TSUNAMI_PUREGO, and the kernel
			// column must keep measuring what ScanRange actually does.
			prev := colstore.SetSIMD(false)
			portableM, portableG = scanMRows(st, sh.Query, window, false)
			colstore.SetSIMD(prev)
		}
		satM, satG := scanMRowsParallel(st, sh.Query, window, threads)
		p := ScanShapePoint{
			Shape:          sh.Name,
			KernelMRows:    kernelM,
			KernelGBps:     kernelG,
			PortableMRows:  portableM,
			PortableGBps:   portableG,
			ScalarMRows:    scalarM,
			ScalarGBps:     scalarG,
			SaturatedMRows: satM,
			SaturatedGBps:  satG,
		}
		if scalarM > 0 {
			p.Speedup = kernelM / scalarM
		}
		if portableM > 0 {
			p.SIMDSpeedup = kernelM / portableM
		}
		res.Shapes = append(res.Shapes, p)
	}
	return res
}

// scanBytes returns the BytesTouched of one full-table pass of q.
func scanBytes(st *colstore.Store, q query.Query) uint64 {
	var res colstore.ScanResult
	st.ScanRange(q, 0, st.NumRows(), false, &res)
	return res.BytesTouched
}

// scanMRows measures single-thread full-table scan throughput, returning
// Mrows/s and effective GB/s (modeled column bytes moved per second).
func scanMRows(st *colstore.Store, q query.Query, window time.Duration, scalar bool) (float64, float64) {
	n := st.NumRows()
	bytesPerPass := scanBytes(st, q)
	scan := func() {
		var res colstore.ScanResult
		if scalar {
			st.ScanRangeScalar(q, 0, n, false, &res)
		} else {
			st.ScanRange(q, 0, n, false, &res)
		}
	}
	scan() // warm-up
	passes := 0
	start := time.Now()
	for time.Since(start) < window || passes < 2 {
		scan()
		passes++
	}
	secs := time.Since(start).Seconds()
	return float64(passes) * float64(n) / secs / 1e6,
		float64(passes) * float64(bytesPerPass) / secs / 1e9
}

// scanMRowsParallel measures aggregate kernel throughput with `threads`
// goroutines scanning concurrently (each its own full pass, the
// saturated-pool regime), returning Mrows/s and effective GB/s.
func scanMRowsParallel(st *colstore.Store, q query.Query, window time.Duration, threads int) (float64, float64) {
	n := st.NumRows()
	bytesPerPass := scanBytes(st, q)
	var total atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Since(start) < window {
				var res colstore.ScanResult
				st.ScanRange(q, 0, n, false, &res)
				total.Add(int64(n))
			}
		}()
	}
	wg.Wait()
	secs := time.Since(start).Seconds()
	passes := float64(total.Load()) / float64(n)
	return float64(total.Load()) / secs / 1e6,
		passes * float64(bytesPerPass) / secs / 1e9
}

// Scan prints the scan-kernel experiment: the microbenchmark behind the
// vectorized ScanRange tiers, at harness scale.
func Scan(w io.Writer, o Options) {
	r := RunScanKernels(o)
	section(w, "Scan", fmt.Sprintf("Scan kernels (%s) vs portable vs scalar oracle (%d rows, %d dims)", r.Kernel, r.Rows, r.Dims))
	t := newTable("shape", "kernel (Mrows/s)", "kernel (GB/s)", "portable (Mrows/s)", "scalar (Mrows/s)", "simd", "total", fmt.Sprintf("saturated x%d (GB/s)", r.Threads))
	for _, p := range r.Shapes {
		t.add(p.Shape,
			fmt.Sprintf("%.0f", p.KernelMRows),
			fmt.Sprintf("%.1f", p.KernelGBps),
			fmt.Sprintf("%.0f", p.PortableMRows),
			fmt.Sprintf("%.0f", p.ScalarMRows),
			fmt.Sprintf("%.2fx", p.SIMDSpeedup),
			fmt.Sprintf("%.2fx", p.Speedup),
			fmt.Sprintf("%.1f", p.SaturatedGBps))
	}
	t.print(w)
	if r.ScalingUnreliable {
		fmt.Fprintf(w, "NOTE: effective parallelism 1 (GOMAXPROCS or CPU count) — saturated-pool numbers cannot support scaling claims\n")
	}
}

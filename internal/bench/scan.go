package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colstore"
	"repro/internal/query"
)

// ScanShapePoint is the measured scan throughput of one (agg x
// filter-count) kernel shape, in millions of rows per second.
type ScanShapePoint struct {
	Shape string `json:"shape"`
	// KernelMRows and ScalarMRows are single-thread throughputs of the
	// branch-free block kernels and the retained scalar oracle.
	KernelMRows float64 `json:"kernel_mrows_per_s"`
	ScalarMRows float64 `json:"scalar_mrows_per_s"`
	Speedup     float64 `json:"kernel_speedup"`
	// SaturatedMRows is aggregate kernel throughput with one scanning
	// goroutine per CPU — the memory-bottleneck regime the kernels target.
	SaturatedMRows float64 `json:"kernel_mrows_per_s_saturated"`
}

// ScanKernelsResult is the scan experiment's machine-readable output.
type ScanKernelsResult struct {
	Rows    int              `json:"rows"`
	Dims    int              `json:"dims"`
	Threads int              `json:"saturated_threads"`
	Shapes  []ScanShapePoint `json:"shapes"`
}

// RunScanKernels measures raw colstore scan throughput — kernels vs the
// scalar oracle per shape, single-thread and with every CPU scanning.
func RunScanKernels(o Options) *ScanKernelsResult {
	o = o.fill()
	rows := o.Rows * 4 // raw scans are fast; more rows = steadier numbers
	if rows < 1<<17 {
		rows = 1 << 17
	}
	const dims = 4
	rng := rand.New(rand.NewSource(o.Seed))
	cols := make([][]int64, dims)
	for j := range cols {
		c := make([]int64, rows)
		for i := range c {
			c[i] = rng.Int63n(1_000_000)
		}
		cols[j] = c
	}
	st, err := colstore.FromColumns(cols, nil)
	if err != nil {
		panic("bench: " + err.Error()) // columns are equal-length by construction
	}

	threads := runtime.GOMAXPROCS(0)
	res := &ScanKernelsResult{Rows: rows, Dims: dims, Threads: threads}
	window := 120 * time.Millisecond
	if o.Quick {
		window = 60 * time.Millisecond
	}
	// The shapes are the canonical colstore.KernelBenchShapes, so this
	// experiment and the CI-gated BenchmarkScanKernels measure the same
	// thing by construction.
	for _, sh := range colstore.KernelBenchShapes() {
		kernel := scanMRows(st, sh.Query, window, false)
		scalar := scanMRows(st, sh.Query, window, true)
		p := ScanShapePoint{
			Shape:          sh.Name,
			KernelMRows:    kernel,
			ScalarMRows:    scalar,
			SaturatedMRows: scanMRowsParallel(st, sh.Query, window, threads),
		}
		if scalar > 0 {
			p.Speedup = kernel / scalar
		}
		res.Shapes = append(res.Shapes, p)
	}
	return res
}

// scanMRows measures single-thread full-table scan throughput in Mrows/s.
func scanMRows(st *colstore.Store, q query.Query, window time.Duration, scalar bool) float64 {
	n := st.NumRows()
	scan := func() {
		var res colstore.ScanResult
		if scalar {
			st.ScanRangeScalar(q, 0, n, false, &res)
		} else {
			st.ScanRange(q, 0, n, false, &res)
		}
	}
	scan() // warm-up
	passes := 0
	start := time.Now()
	for time.Since(start) < window || passes < 2 {
		scan()
		passes++
	}
	return float64(passes) * float64(n) / time.Since(start).Seconds() / 1e6
}

// scanMRowsParallel measures aggregate kernel throughput with `threads`
// goroutines scanning concurrently (each its own full pass, the
// saturated-pool regime).
func scanMRowsParallel(st *colstore.Store, q query.Query, window time.Duration, threads int) float64 {
	n := st.NumRows()
	var total atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Since(start) < window {
				var res colstore.ScanResult
				st.ScanRange(q, 0, n, false, &res)
				total.Add(int64(n))
			}
		}()
	}
	wg.Wait()
	return float64(total.Load()) / time.Since(start).Seconds() / 1e6
}

// Scan prints the scan-kernel experiment: the microbenchmark behind the
// branch-free ScanRange rewrite, at harness scale.
func Scan(w io.Writer, o Options) {
	r := RunScanKernels(o)
	section(w, "Scan", fmt.Sprintf("Branch-free scan kernels vs scalar oracle (%d rows, %d dims)", r.Rows, r.Dims))
	t := newTable("shape", "kernel (Mrows/s)", "scalar (Mrows/s)", "speedup", fmt.Sprintf("saturated x%d (Mrows/s)", r.Threads))
	for _, p := range r.Shapes {
		t.add(p.Shape,
			fmt.Sprintf("%.0f", p.KernelMRows),
			fmt.Sprintf("%.0f", p.ScalarMRows),
			fmt.Sprintf("%.2fx", p.Speedup),
			fmt.Sprintf("%.0f", p.SaturatedMRows))
	}
	t.print(w)
}

package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	tsunami "repro"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/workload"
)

// ObsResult is the observability-overhead experiment's machine-readable
// output: the instrumentation tax on the serving hot path, measured as
// bare-vs-instrumented throughput over the same index.
type ObsResult struct {
	Rows    int `json:"rows"`
	Queries int `json:"queries"`
	// Pairs is how many bare/instrumented timed pass pairs fed the median.
	Pairs int `json:"pairs"`
	// BareQPS / InstrumentedQPS are each side's median-pass throughput.
	BareQPS         float64 `json:"bare_qps"`
	InstrumentedQPS float64 `json:"instrumented_qps"`
	// OverheadPct is the median per-pair slowdown, as a percentage: how
	// much slower the instrumented path is. Negative values are noise.
	OverheadPct float64 `json:"overhead_pct"`
	// WorkloadQPS and WorkloadOverheadPct are the same measurements for a
	// third store carrying the metrics registry plus a workload-statistics
	// collector (fingerprints, heavy hitters, SLO counters, slow-query
	// log) — the full instrumented path, against the same bare baseline.
	WorkloadQPS         float64 `json:"workload_qps"`
	WorkloadOverheadPct float64 `json:"workload_overhead_pct"`
	// P50Us/P99Us are the instrumented run's own latency histogram
	// (tsunami_query_latency_seconds) — the quantiles the overhead buys.
	P50Us float64 `json:"p50_us"`
	P99Us float64 `json:"p99_us"`
}

// RunObs measures what the metrics layer costs the query hot path: two
// LiveStores serve the same immutable index — one with a registry, one
// with nil metrics (whose hot path compiles to the uninstrumented code).
// The comparison is differential: alternating short timed passes pair a
// bare reading with an instrumented reading taken milliseconds later, and
// the overhead is the median per-pair ratio — machine noise (thermal, GC,
// scheduler, a noisy neighbor) hits both sides of a pair equally and
// outlier pairs get discarded by the median, where comparing two separate
// aggregate runs would let noise several times the real overhead decide.
// CI gates on the benchmark twin of this experiment (BenchmarkObsOverhead)
// at 2%.
func RunObs(o Options) (*ObsResult, error) {
	o = o.fill()
	ds := datasets.Taxi(o.Rows, o.Seed+1)
	work := workload.ForDataset(ds, o.QueriesPerType, o.Seed+101)
	idx := core.Build(ds.Store, work, o.tsunamiConfig(core.FullTsunami))
	if err := checkCorrect(idx, ds.Store, work); err != nil {
		return nil, err
	}

	// No sample workload → no shift detector; huge threshold → no merges.
	// Nothing runs in the background to steal cycles from either side.
	quiet := live.Config{MergeThreshold: 1 << 30}
	bare := live.Open(idx, nil, quiet)
	defer bare.Close()
	instrCfg := quiet
	m := tsunami.NewMetrics()
	instrCfg.Metrics = m
	instr := live.Open(idx, nil, instrCfg)
	defer instr.Close()
	wlCfg := instrCfg
	wl := tsunami.NewWorkloadStats(tsunami.WorkloadOptions{})
	defer wl.Close()
	wlCfg.Workload = wl
	wstore := live.Open(idx, nil, wlCfg)
	defer wstore.Close()

	const pairs = 96
	res := &ObsResult{Rows: o.Rows, Queries: len(work), Pairs: pairs}
	timedPass(bare, work) // joint warm-up: page in all stores' code and data
	timedPass(instr, work)
	timedPass(wstore, work)
	ratios := make([]float64, 0, pairs)
	wlRatios := make([]float64, 0, pairs)
	bareNs := make([]float64, 0, pairs)
	instrNs := make([]float64, 0, pairs)
	wlNs := make([]float64, 0, pairs)
	for r := 0; r < pairs; r++ {
		bn := timedPass(bare, work)
		in := timedPass(instr, work)
		wn := timedPass(wstore, work)
		// Drain the collector's consumer between pairs, outside the timed
		// windows, so its bursty backlog processing can't land inside the
		// next bare baseline (or a later wstore pass) at random.
		wl.Sync()
		ratios = append(ratios, float64(in)/float64(bn))
		wlRatios = append(wlRatios, float64(wn)/float64(bn))
		bareNs = append(bareNs, float64(bn))
		instrNs = append(instrNs, float64(in))
		wlNs = append(wlNs, float64(wn))
	}
	res.OverheadPct = (median(ratios) - 1) * 100
	res.WorkloadOverheadPct = (median(wlRatios) - 1) * 100
	perPass := float64(len(work)) * 1e9
	res.BareQPS = perPass / median(bareNs)
	res.InstrumentedQPS = perPass / median(instrNs)
	res.WorkloadQPS = perPass / median(wlNs)
	lat := m.Snapshot().Hists[obs.MQueryLatency]
	res.P50Us = lat.Quantile(0.5) * 1e6
	res.P99Us = lat.Quantile(0.99) * 1e6
	return res, nil
}

// Obs prints the observability-overhead experiment.
func Obs(w io.Writer, o Options) {
	section(w, "Observability", "metrics overhead on the LiveStore query path")
	r, err := RunObs(o)
	if err != nil {
		fmt.Fprintf(w, "FAILURE: %v\n", err)
		return
	}
	fmt.Fprintf(w, "bare %.0f q/s vs instrumented %.0f q/s: overhead %.2f%% (median of %d pairs; instrumented p50 %.0fµs, p99 %.0fµs)\n",
		r.BareQPS, r.InstrumentedQPS, r.OverheadPct, r.Pairs, r.P50Us, r.P99Us)
	fmt.Fprintf(w, "with workload stats %.0f q/s: overhead %.2f%% over bare (metrics + fingerprints, heavy hitters, SLO, slow-query log)\n",
		r.WorkloadQPS, r.WorkloadOverheadPct)
}

// timedPass runs the workload through a LiveStore once and reports the
// wall time — one side of one differential pair.
func timedPass(s *live.Store, qs []query.Query) time.Duration {
	start := time.Now()
	for _, q := range qs {
		s.Execute(q)
	}
	return time.Since(start)
}

// median of a sample set; the input slice is reordered.
func median(vals []float64) float64 {
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 0 {
		return (vals[n/2-1] + vals[n/2]) / 2
	}
	return vals[n/2]
}

// Package bench is the experiment harness: one runner per table and figure
// in the paper's evaluation (§6), each printing the same rows/series the
// paper reports. Absolute numbers differ from the paper (its testbed ran
// C++ on 184M–300M-row datasets; this harness defaults to laptop-scale
// generated data), but the shapes — who wins, by what factor, where
// crossovers fall — are the reproduction target (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/auggrid"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/flood"
	"repro/internal/gridtree"
	"repro/internal/index"
	"repro/internal/kdtree"
	"repro/internal/octree"
	"repro/internal/query"
	"repro/internal/singledim"
	"repro/internal/workload"
	"repro/internal/zindex"
)

// Options sizes an experiment run.
type Options struct {
	// Rows is the base dataset size (default 200_000; Quick 30_000).
	Rows int
	// QueriesPerType matches the paper's 100 (Quick 40).
	QueriesPerType int
	// Seed drives all generators (default 42).
	Seed int64
	// Quick shrinks everything for CI and `go test -bench`.
	Quick bool
}

func (o Options) fill() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Rows == 0 {
		if o.Quick {
			o.Rows = 30_000
		} else {
			o.Rows = 200_000
		}
	}
	if o.QueriesPerType == 0 {
		if o.Quick {
			o.QueriesPerType = 40
		} else {
			o.QueriesPerType = 100
		}
	}
	return o
}

func (o Options) tsunamiConfig(v core.Variant) core.Config {
	iters, sample, maxq := 4, 2048, 64
	if o.Quick {
		iters, sample, maxq = 2, 1024, 32
	}
	return core.Config{
		Variant:  v,
		GridTree: gridtree.Config{MaxNodes: 64},
		Grid: auggrid.OptimizeConfig{
			Eval:     auggrid.EvalConfig{SampleSize: sample, MaxQueries: maxq, Seed: o.Seed},
			MaxCells: 1 << 16,
			MaxIters: iters,
			Seed:     o.Seed,
		},
	}
}

func (o Options) floodConfig() flood.Config {
	c := o.tsunamiConfig(core.FullTsunami)
	return flood.Config{Grid: c.Grid}
}

// built pairs an index with its build timings.
type built struct {
	idx   index.Index
	stats index.BuildStats
	wall  float64
}

// datasetCase is one dataset plus its workload.
type datasetCase struct {
	ds   *datasets.Dataset
	work []query.Query
}

// paperDatasets generates the four §6.2 datasets and workloads at the
// configured scale.
func paperDatasets(o Options) []datasetCase {
	gens := []func(int, int64) *datasets.Dataset{
		datasets.TPCH, datasets.Taxi, datasets.Perfmon, datasets.Stocks,
	}
	out := make([]datasetCase, 0, len(gens))
	for i, gen := range gens {
		ds := gen(o.Rows, o.Seed+int64(i))
		out = append(out, datasetCase{ds: ds, work: workload.ForDataset(ds, o.QueriesPerType, o.Seed+100+int64(i))})
	}
	return out
}

// pageCandidates are the page sizes the non-learned baselines are tuned
// over ("we tuned the page size to achieve best performance", §6.3).
func (o Options) pageCandidates() []int {
	if o.Quick {
		return []int{2048}
	}
	return []int{512, 2048, 8192}
}

// buildTsunami times a full Tsunami build.
func buildTsunami(dc datasetCase, o Options) built {
	start := time.Now()
	idx := core.Build(dc.ds.Store, dc.work, o.tsunamiConfig(core.FullTsunami))
	return built{idx: idx, stats: idx.BuildStats(), wall: time.Since(start).Seconds()}
}

func buildFlood(dc datasetCase, o Options) built {
	start := time.Now()
	idx := flood.Build(dc.ds.Store, dc.work, o.floodConfig())
	return built{idx: idx, stats: idx.BuildStats(), wall: time.Since(start).Seconds()}
}

// buildTuned builds a non-learned baseline at each candidate page size and
// keeps the fastest on a probe subset of the workload.
func buildTuned(name string, dc datasetCase, o Options, mk func(page int) (index.Index, index.BuildStats)) built {
	probe := dc.work
	if len(probe) > 25 {
		probe = probe[:25]
	}
	var best built
	bestNs := 0.0
	for _, page := range o.pageCandidates() {
		start := time.Now()
		idx, stats := mk(page)
		wall := time.Since(start).Seconds()
		ns := avgQueryNs(idx, probe)
		if best.idx == nil || ns < bestNs {
			best = built{idx: idx, stats: stats, wall: wall}
			bestNs = ns
		}
	}
	_ = name // reserved for verbose logging
	return best
}

// buildSuite builds every index of Fig 7/8 for one dataset, in the paper's
// order: Tsunami, Flood, then the tuned non-learned baselines.
func buildSuite(dc datasetCase, o Options) []built {
	out := []built{buildTsunami(dc, o), buildFlood(dc, o)}
	out = append(out, buildTuned("KDTree", dc, o, func(p int) (index.Index, index.BuildStats) {
		x := kdtree.Build(dc.ds.Store, dc.work, kdtree.Config{PageSize: p})
		return x, x.BuildStats()
	}))
	out = append(out, buildTuned("ZOrder", dc, o, func(p int) (index.Index, index.BuildStats) {
		x := zindex.Build(dc.ds.Store, zindex.Config{PageSize: p})
		return x, x.BuildStats()
	}))
	out = append(out, buildTuned("Hyperoctree", dc, o, func(p int) (index.Index, index.BuildStats) {
		x := octree.Build(dc.ds.Store, octree.Config{PageSize: p})
		return x, x.BuildStats()
	}))
	start := time.Now()
	sd := singledim.Build(dc.ds.Store, dc.work, -1)
	out = append(out, built{idx: sd, stats: sd.BuildStats(), wall: time.Since(start).Seconds()})
	return out
}

// avgQueryNs measures the average per-query latency in nanoseconds by
// replaying the workload (at least twice, with a warm-up pass).
func avgQueryNs(idx index.Index, qs []query.Query) float64 {
	if len(qs) == 0 {
		return 0
	}
	// Warm-up.
	for _, q := range qs {
		idx.Execute(q)
	}
	const minDuration = 20 * time.Millisecond
	passes := 0
	start := time.Now()
	for time.Since(start) < minDuration || passes < 1 {
		for _, q := range qs {
			idx.Execute(q)
		}
		passes++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(passes*len(qs))
}

// throughput converts average latency to queries/second.
func throughput(avgNs float64) float64 {
	if avgNs <= 0 {
		return 0
	}
	return 1e9 / avgNs
}

// checkCorrect validates an index against a full scan on a probe subset;
// experiments abort loudly rather than report numbers from a wrong index.
func checkCorrect(idx index.Index, truth *colstore.Store, qs []query.Query) error {
	full := index.NewFullScan(truth)
	n := len(qs)
	if n > 20 {
		n = 20
	}
	for _, q := range qs[:n] {
		want := full.Execute(q)
		got := idx.Execute(q)
		if got.Count != want.Count || got.Sum != want.Sum {
			return fmt.Errorf("%s disagrees with full scan on %s: got %d, want %d",
				idx.Name(), q, got.Count, want.Count)
		}
	}
	return nil
}

// section prints an experiment header.
func section(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n=== %s — %s ===\n", id, title)
}

// Package integration_test cross-validates every index in the repository
// against a full scan on pathological data distributions: negative values,
// constant columns, two-valued columns, monotone sequences, duplicated
// rows, and single-row tables. Each index must agree with the full scan on
// every query, whatever the data looks like.
package integration_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/auggrid"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/flood"
	"repro/internal/gridtree"
	"repro/internal/index"
	"repro/internal/kdtree"
	"repro/internal/octree"
	"repro/internal/query"
	"repro/internal/singledim"
	"repro/internal/testutil"
	"repro/internal/zindex"
)

// pathological datasets, each 4-dimensional.
func pathologicalStores(n int) map[string]*colstore.Store {
	rng := rand.New(rand.NewSource(99))
	out := make(map[string]*colstore.Store)

	mk := func(name string, gen func(i int) []int64) {
		cols := make([][]int64, 4)
		for j := range cols {
			cols[j] = make([]int64, n)
		}
		for i := 0; i < n; i++ {
			row := gen(i)
			for j := range cols {
				cols[j][i] = row[j]
			}
		}
		st, err := colstore.FromColumns(cols, nil)
		if err != nil {
			panic(err)
		}
		out[name] = st
	}

	mk("negative", func(i int) []int64 {
		return []int64{rng.Int63n(2000) - 1000, -rng.Int63n(1_000_000), rng.Int63n(100) - 50, -1 * rng.Int63n(10)}
	})
	mk("constant-column", func(i int) []int64 {
		return []int64{42, rng.Int63n(1000), 42, rng.Int63n(1000)}
	})
	mk("two-valued", func(i int) []int64 {
		return []int64{rng.Int63n(2), rng.Int63n(2) * 1000, rng.Int63n(1000), rng.Int63n(2)}
	})
	mk("monotone", func(i int) []int64 {
		return []int64{int64(i), int64(i) * 2, int64(n - i), int64(i % 7)}
	})
	mk("duplicate-rows", func(i int) []int64 {
		k := int64(i / 50) // 50 copies of each row
		return []int64{k, k * 3, k % 11, k % 3}
	})
	return out
}

func smallTsunamiConfig() core.Config {
	return core.Config{
		GridTree: gridtree.Config{MaxDepth: 4},
		Grid: auggrid.OptimizeConfig{
			Eval:     auggrid.EvalConfig{SampleSize: 512, MaxQueries: 16},
			MaxCells: 1 << 10,
			MaxIters: 2,
		},
		MinRowsForGrid: 256,
	}
}

func TestAllIndexesOnPathologicalData(t *testing.T) {
	const n = 4000
	for name, st := range pathologicalStores(n) {
		t.Run(name, func(t *testing.T) {
			work := testutil.RandomQueries(st, 40, 7)
			probe := testutil.RandomQueries(st, 60, 8)
			indexes := []index.Index{
				core.Build(st, work, smallTsunamiConfig()),
				flood.Build(st, work, flood.Config{Grid: smallTsunamiConfig().Grid}),
				kdtree.Build(st, work, kdtree.Config{PageSize: 128}),
				octree.Build(st, octree.Config{PageSize: 128}),
				zindex.Build(st, zindex.Config{PageSize: 128}),
				singledim.Build(st, work, -1),
			}
			for _, idx := range indexes {
				testutil.CheckMatchesFullScan(t, idx, st, probe)
			}
		})
	}
}

func TestSingleRowTable(t *testing.T) {
	st, err := colstore.FromRows([][]int64{{7, -3, 0, 9}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	probe := []query.Query{
		query.NewCount(query.Filter{Dim: 0, Lo: 7, Hi: 7}),
		query.NewCount(query.Filter{Dim: 1, Lo: -10, Hi: 0}),
		query.NewCount(query.Filter{Dim: 2, Lo: 1, Hi: 5}),
		query.NewSum(3, query.Filter{Dim: 0, Lo: 0, Hi: 100}),
	}
	indexes := []index.Index{
		core.Build(st, nil, smallTsunamiConfig()),
		flood.Build(st, nil, flood.Config{Grid: smallTsunamiConfig().Grid}),
		kdtree.Build(st, nil, kdtree.Config{PageSize: 16}),
		octree.Build(st, octree.Config{PageSize: 16}),
		zindex.Build(st, zindex.Config{PageSize: 16}),
		singledim.Build(st, nil, 0),
	}
	for _, idx := range indexes {
		testutil.CheckMatchesFullScan(t, idx, st, probe)
	}
}

// TestQuickRandomTables drives all indexes with property-based random
// tables: arbitrary shapes, value ranges, and query mixes.
func TestQuickRandomTables(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(2000)
		d := 2 + rng.Intn(4)
		cols := make([][]int64, d)
		for j := range cols {
			cols[j] = make([]int64, n)
			scale := int64(1) << uint(rng.Intn(40))
			off := rng.Int63n(1000) - 500
			for i := range cols[j] {
				cols[j][i] = rng.Int63n(scale+1) + off
			}
		}
		st, err := colstore.FromColumns(cols, nil)
		if err != nil {
			return false
		}
		work := testutil.RandomQueries(st, 15, seed+1)
		probe := testutil.RandomQueries(st, 25, seed+2)
		full := index.NewFullScan(st)
		indexes := []index.Index{
			core.Build(st, work, smallTsunamiConfig()),
			flood.Build(st, work, flood.Config{Grid: smallTsunamiConfig().Grid}),
			kdtree.Build(st, work, kdtree.Config{PageSize: 64}),
			zindex.Build(st, zindex.Config{PageSize: 64}),
		}
		for _, q := range probe {
			want := full.Execute(q)
			for _, idx := range indexes {
				got := idx.Execute(q)
				if got.Count != want.Count || got.Sum != want.Sum {
					t.Logf("seed %d: %s on %s: got (%d,%d), want (%d,%d)",
						seed, idx.Name(), q, got.Count, got.Sum, want.Count, want.Sum)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

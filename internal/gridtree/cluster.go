// Package gridtree implements the Grid Tree (§4): a lightweight k-ary
// space-partitioning decision tree that divides the data space into
// non-overlapping regions so that query skew — the Earth Mover's Distance
// between the empirical query PDF and the uniform distribution, summed per
// query type — is low inside every region.
package gridtree

import (
	"repro/internal/colstore"
	"repro/internal/query"
	"repro/internal/stats"
)

// ClusterQueryTypes groups queries into types (§4.3.1): queries filtering
// different dimension sets are always separate types; within a set, queries
// are embedded by per-dimension filter selectivity and clustered with
// DBSCAN (eps 0.2). It returns a copy of the queries with Type assigned,
// plus the number of types.
func ClusterQueryTypes(st *colstore.Store, queries []query.Query, eps float64) ([]query.Query, int) {
	if eps <= 0 {
		eps = 0.2
	}
	out := make([]query.Query, len(queries))
	copy(out, queries)

	groups := make(map[string][]int)
	for i, q := range out {
		groups[q.DimSetKey()] = append(groups[q.DimSetKey()], i)
	}

	sample := sampleRowIdx(st.NumRows(), 2000)
	nextType := 0
	for _, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		dims := out[idxs[0]].FilteredDims()
		emb := make([][]float64, len(idxs))
		for k, qi := range idxs {
			e := make([]float64, len(dims))
			for di, dim := range dims {
				f, _ := out[qi].Filter(dim)
				e[di] = selectivityOnSample(st, sample, f)
			}
			emb[k] = e
		}
		labels := stats.DBSCAN(emb, eps, 2)
		for k, qi := range idxs {
			out[qi].Type = nextType + labels[k]
		}
		nextType += stats.NumClusters(labels)
	}
	return out, nextType
}

func sampleRowIdx(n, want int) []int {
	if n <= want {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, want)
	stride := n / want
	for i := range out {
		out[i] = i * stride
	}
	return out
}

func selectivityOnSample(st *colstore.Store, rows []int, f query.Filter) float64 {
	if len(rows) == 0 {
		return 1
	}
	col := st.Column(f.Dim)
	match := 0
	for _, r := range rows {
		if v := col[r]; v >= f.Lo && v <= f.Hi {
			match++
		}
	}
	return float64(match) / float64(len(rows))
}

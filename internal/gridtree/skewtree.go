package gridtree

import (
	"repro/internal/query"
	"repro/internal/stats"
)

// typeHists holds, for one candidate split dimension, one skew histogram
// per query type over the node's range in that dimension (§4.2.1: skew is
// computed independently per type and summed).
type typeHists struct {
	hists []*stats.Histogram // indexed by query type; nil when type absent
}

// buildTypeHists builds per-type histograms over [lo, hi] of dimension dim.
// Each query contributes unit mass spread uniformly over the bins its
// (clipped) filter range intersects; unfiltered queries spread over the
// whole range. Bin layout: one bin per unique value if the dimension has at
// most maxBins uniques (then per-bin skew is truly zero), else maxBins
// equi-width bins (§4.3.2).
func buildTypeHists(values []int64, dim int, lo, hi int64, queries []query.Query, numTypes, maxBins int) *typeHists {
	proto := stats.NewFromValues(values, maxBins)
	th := &typeHists{hists: make([]*stats.Histogram, numTypes)}
	for _, q := range queries {
		ty := q.Type
		if ty < 0 || ty >= numTypes {
			ty = 0
		}
		h := th.hists[ty]
		if h == nil {
			h = &stats.Histogram{Bounds: proto.Bounds, Mass: make([]float64, proto.NumBins())}
			th.hists[ty] = h
		}
		flo, fhi := lo, hi
		if f, ok := q.Filter(dim); ok {
			if f.Lo > flo {
				flo = f.Lo
			}
			if f.Hi < fhi {
				fhi = f.Hi
			}
		}
		if flo > fhi {
			continue // query does not intersect this node in dim
		}
		h.AddRange(flo, fhi, 1)
	}
	return th
}

// numBins returns the shared bin count.
func (t *typeHists) numBins() int {
	for _, h := range t.hists {
		if h != nil {
			return h.NumBins()
		}
	}
	return 0
}

// skewOver returns the combined query skew over bins [x, y): the sum over
// query types of each type's skew (§4.3.1).
func (t *typeHists) skewOver(x, y int) float64 {
	total := 0.0
	for _, h := range t.hists {
		if h != nil {
			total += h.SkewOver(x, y)
		}
	}
	return total
}

// binBoundary returns the value at the left edge of bin x.
func (t *typeHists) binBoundary(x int) int64 {
	for _, h := range t.hists {
		if h != nil {
			return h.Bounds[x]
		}
	}
	return 0
}

// skewTreeNode is a node of the balanced binary skew tree (§4.3.2, Fig 4).
// Each node represents bins [x, y) and stores the skew over that range plus
// the minimum combined skew achievable by any covering set of its subtree.
type skewTreeNode struct {
	x, y        int
	skew        float64
	minCombined float64
	left, right *skewTreeNode
}

// buildSkewTree builds the tree over bins [x, y). Leaves cover leafBins
// bins each (2 by default: the skew over a single bin is always zero, so a
// 128-bin histogram yields 64 leaves as in §4.3.2).
func buildSkewTree(t *typeHists, x, y, leafBins int) *skewTreeNode {
	n := &skewTreeNode{x: x, y: y, skew: t.skewOver(x, y)}
	if y-x <= leafBins {
		n.minCombined = n.skew
		return n
	}
	mid := x + (y-x+1)/2
	n.left = buildSkewTree(t, x, mid, leafBins)
	n.right = buildSkewTree(t, mid, y, leafBins)
	// First DP pass (bottom-up): the best covering of this subtree either
	// keeps the node whole or splits into the children's best coverings.
	childBest := n.left.minCombined + n.right.minCombined
	if n.skew <= childBest {
		n.minCombined = n.skew
	} else {
		n.minCombined = childBest
	}
	return n
}

// coveringSet extracts the minimum-skew covering set (second DP pass,
// top-down): a node joins the set when keeping it whole is at least as good
// as its children's coverings.
func (n *skewTreeNode) coveringSet(out []*skewTreeNode) []*skewTreeNode {
	if n.left == nil || n.skew <= n.left.minCombined+n.right.minCombined {
		return append(out, n)
	}
	out = n.left.coveringSet(out)
	return n.right.coveringSet(out)
}

// mergeCovering performs the final ordered merge pass (§4.3.2): adjacent
// covering ranges merge when the combined skew is at most mergeFactor times
// the sum of their individual skews, counteracting superfluous binary-tree
// splits and regularizing the number of split values.
//
// epsMass is a small additive tolerance (a fraction of the node's query
// mass). Without it, zero-skew ranges — one-bin-per-unique-value leaves
// always have zero skew — could never merge under the purely multiplicative
// rule (1.1 × 0 = 0), and low-cardinality dimensions would shatter into one
// child per value.
func mergeCovering(t *typeHists, cover []*skewTreeNode, mergeFactor, epsMass float64) []*skewTreeNode {
	if len(cover) <= 1 {
		return cover
	}
	out := []*skewTreeNode{cover[0]}
	for _, nd := range cover[1:] {
		last := out[len(out)-1]
		merged := t.skewOver(last.x, nd.y)
		if merged <= mergeFactor*(last.skew+nd.skew)+epsMass {
			out[len(out)-1] = &skewTreeNode{x: last.x, y: nd.y, skew: merged}
			continue
		}
		out = append(out, nd)
	}
	return out
}

// splitPlan is the outcome of the split search for one dimension.
type splitPlan struct {
	dim       int
	values    []int64 // split values V (boundaries between covering ranges)
	reduction float64 // R_dim: whole-range skew minus covering skew (§4.3.2)
}

// planSplit runs the full §4.3.2 pipeline for one dimension: histogram →
// skew tree → DP covering set → merge pass → split values and reduction.
func planSplit(values []int64, dim int, lo, hi int64, queries []query.Query, numTypes int, cfg Config) splitPlan {
	t := buildTypeHists(values, dim, lo, hi, queries, numTypes, cfg.HistBins)
	nb := t.numBins()
	plan := splitPlan{dim: dim}
	if nb == 0 {
		return plan
	}
	whole := t.skewOver(0, nb)
	if whole <= 0 {
		return plan
	}
	leafBins := 2
	if nb < cfg.HistBins {
		// One bin per unique value: there is truly no intra-bin skew, so
		// leaves may cover single bins (§4.3.2).
		leafBins = 1
	}
	root := buildSkewTree(t, 0, nb, leafBins)
	cover := root.coveringSet(nil)
	epsMass := cfg.MergeEps * float64(len(queries))
	cover = mergeCovering(t, cover, cfg.MergeFactor, epsMass)

	covered := 0.0
	for _, nd := range cover {
		covered += nd.skew
	}
	plan.reduction = whole - covered
	for i := 1; i < len(cover); i++ {
		plan.values = append(plan.values, t.binBoundary(cover[i].x))
	}
	return plan
}

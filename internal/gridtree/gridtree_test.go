package gridtree

import (
	"testing"

	"repro/internal/query"
	"repro/internal/testutil"
)

func TestClusterQueryTypesSeparatesDimSets(t *testing.T) {
	st := testutil.SmallTaxi(2000, 1)
	qs := []query.Query{
		query.NewCount(query.Filter{Dim: 0, Lo: 0, Hi: 100}),
		query.NewCount(query.Filter{Dim: 1, Lo: 0, Hi: 100}),
		query.NewCount(query.Filter{Dim: 0, Lo: 50, Hi: 150}),
	}
	typed, n := ClusterQueryTypes(st, qs, 0.2)
	if n < 2 {
		t.Fatalf("types = %d, want >= 2 (different dim sets)", n)
	}
	if typed[0].Type == typed[1].Type {
		t.Error("queries over different dim sets share a type")
	}
	if typed[0].Type != typed[2].Type {
		t.Error("similar queries over the same dim set should share a type")
	}
}

func TestClusterQueryTypesBySelectivity(t *testing.T) {
	st := testutil.SmallTaxi(4000, 2)
	lo, hi := st.MinMax(0)
	span := hi - lo
	var qs []query.Query
	// Narrow type: ~1% of the domain; wide type: ~60%.
	for i := 0; i < 10; i++ {
		qs = append(qs, query.NewCount(query.Filter{Dim: 0, Lo: lo + int64(i)*span/20, Hi: lo + int64(i)*span/20 + span/100}))
		qs = append(qs, query.NewCount(query.Filter{Dim: 0, Lo: lo, Hi: lo + span*6/10}))
	}
	typed, n := ClusterQueryTypes(st, qs, 0.2)
	if n != 2 {
		t.Fatalf("types = %d, want 2", n)
	}
	if typed[0].Type == typed[1].Type {
		t.Error("narrow and wide queries should be different types")
	}
}

func TestTreeSplitsOnSkewedWorkload(t *testing.T) {
	st := testutil.SmallTaxi(20000, 3)
	qs := testutil.SkewedQueries(st, 200, 4)
	tree := Build(st, qs, Config{})
	if len(tree.Regions) < 2 {
		t.Fatalf("regions = %d, want >= 2 for a skewed workload", len(tree.Regions))
	}
	if tree.Depth < 2 {
		t.Errorf("depth = %d, want >= 2", tree.Depth)
	}
}

func TestTreeUniformSingleTypeStaysTiny(t *testing.T) {
	// One query type, uniformly positioned: no skew, so no splits.
	st := testutil.SmallTaxi(20000, 5)
	rng := int64(6)
	lo, hi := st.MinMax(0)
	span := hi - lo
	var qs []query.Query
	for i := 0; i < 100; i++ {
		a := lo + (span*int64(i*37%100))/100
		w := span / 10
		b := a + w
		if b > hi {
			b = hi
		}
		qs = append(qs, query.NewCount(query.Filter{Dim: 0, Lo: a, Hi: b}))
	}
	_ = rng
	tree := Build(st, qs, Config{})
	if tree.NumNodes > 8 {
		t.Errorf("nodes = %d; a skew-free single-type workload should stay tiny", tree.NumNodes)
	}
}

func TestTreeNodeBudgetRespected(t *testing.T) {
	st := testutil.SmallTaxi(20000, 5)
	qs := testutil.RandomQueries(st, 100, 6) // patternless: many noisy types
	tree := Build(st, qs, Config{MaxNodes: 64})
	if tree.NumNodes > 64 {
		t.Errorf("nodes = %d, budget 64", tree.NumNodes)
	}
}

func TestRegionsPartitionAllRows(t *testing.T) {
	st := testutil.SmallTaxi(10000, 7)
	qs := testutil.SkewedQueries(st, 200, 8)
	tree := Build(st, qs, Config{})
	seen := make([]bool, st.NumRows())
	total := 0
	for _, r := range tree.Regions {
		total += len(r.Rows)
		for _, row := range r.Rows {
			if seen[row] {
				t.Fatalf("row %d in more than one region", row)
			}
			seen[row] = true
		}
	}
	if total != st.NumRows() {
		t.Fatalf("regions cover %d rows, want %d", total, st.NumRows())
	}
}

func TestRegionsBoundsContainTheirRows(t *testing.T) {
	st := testutil.SmallTaxi(10000, 9)
	qs := testutil.SkewedQueries(st, 200, 10)
	tree := Build(st, qs, Config{})
	for ri, r := range tree.Regions {
		for _, row := range r.Rows {
			for j := 0; j < st.NumDims(); j++ {
				v := st.Value(row, j)
				if v < r.Lo[j] || v > r.Hi[j] {
					t.Fatalf("region %d row %d dim %d: value %d outside [%d, %d]",
						ri, row, j, v, r.Lo[j], r.Hi[j])
				}
			}
		}
	}
}

func TestFindRegionsCoversMatchingPoints(t *testing.T) {
	st := testutil.SmallTaxi(10000, 11)
	work := testutil.SkewedQueries(st, 200, 12)
	tree := Build(st, work, Config{})
	probe := testutil.RandomQueries(st, 60, 13)
	for _, q := range probe {
		regions := tree.FindRegions(q, nil)
		inRegion := make(map[int]bool)
		for _, r := range regions {
			for _, row := range r.Rows {
				inRegion[row] = true
			}
		}
		// Every matching row must be inside some returned region.
		row := make([]int64, st.NumDims())
		for i := 0; i < st.NumRows(); i++ {
			st.Row(i, row)
			if q.MatchesRow(row) && !inRegion[i] {
				t.Fatalf("matching row %d missed by FindRegions(%s)", i, q)
			}
		}
	}
}

func TestSkewTreeCoveringSetIsCovering(t *testing.T) {
	st := testutil.SmallTaxi(5000, 14)
	qs := testutil.SkewedQueries(st, 100, 15)
	lo, hi := st.MinMax(0)
	vals := st.Column(0)
	th := buildTypeHists(vals, 0, lo, hi, qs, 2, 128)
	nb := th.numBins()
	root := buildSkewTree(th, 0, nb, 2)
	cover := root.coveringSet(nil)
	// Ranges must tile [0, nb) without gaps or overlaps.
	pos := 0
	for _, nd := range cover {
		if nd.x != pos {
			t.Fatalf("covering set gap/overlap at bin %d (node starts at %d)", pos, nd.x)
		}
		pos = nd.y
	}
	if pos != nb {
		t.Fatalf("covering set ends at %d, want %d", pos, nb)
	}
	// DP optimality lower bound: combined skew <= root skew.
	combined := 0.0
	for _, nd := range cover {
		combined += nd.skew
	}
	if combined > root.skew+1e-9 {
		t.Errorf("covering skew %f exceeds root skew %f", combined, root.skew)
	}
}

func TestPlanSplitFindsSkewBoundary(t *testing.T) {
	// The Fig 2/3 scenario: green queries only over the last ~10% of dim 0.
	st := testutil.SmallTaxi(20000, 16)
	qs := testutil.SkewedQueries(st, 400, 17)
	lo, hi := st.MinMax(0)
	plan := planSplit(st.Column(0), 0, lo, hi, qs, 2, Config{HistBins: 128, MergeFactor: 1.1})
	if plan.reduction <= 0 {
		t.Fatal("expected positive skew reduction on skewed dim")
	}
	if len(plan.values) == 0 {
		t.Fatal("expected split values")
	}
	// At least one split should land near the 90th percentile boundary.
	want := hi - (hi-lo)/10
	tol := (hi - lo) / 8
	found := false
	for _, v := range plan.values {
		if v > want-tol && v < want+tol {
			found = true
		}
	}
	if !found {
		t.Errorf("no split near %d (±%d); got %v", want, tol, plan.values)
	}
}

func TestHighSkewThresholdForbidsSplitting(t *testing.T) {
	st := testutil.SmallTaxi(5000, 18)
	qs := testutil.SkewedQueries(st, 100, 19)
	// Requiring a skew reduction of 1000x the query mass rejects every
	// split at the root.
	tree := Build(st, qs, Config{MinSkewReduction: 1000})
	if len(tree.Regions) != 1 {
		t.Errorf("regions = %d, want 1 when the skew threshold forbids splitting", len(tree.Regions))
	}
}

func TestMinFractionsLimitDepth(t *testing.T) {
	st := testutil.SmallTaxi(5000, 18)
	qs := testutil.SkewedQueries(st, 100, 19)
	// The root always holds 100% of points, so it may split once; its
	// children fall below 90% and must all become leaves.
	tree := Build(st, qs, Config{MinPointFrac: 0.9, MinQueryFrac: 0.9})
	if tree.Depth > 2 {
		t.Errorf("depth = %d, want <= 2 with 90%% fraction thresholds", tree.Depth)
	}
}

package gridtree

import (
	"math"
	"sort"

	"repro/internal/colstore"
	"repro/internal/query"
)

// Config holds the Grid Tree optimization parameters; zero values take the
// paper's defaults (§4.3).
type Config struct {
	// HistBins is the skew-histogram resolution (default 128).
	HistBins int
	// MergeFactor is the covering-set merge tolerance (default 1.1, i.e.
	// merge when combined skew is within 10% of the parts' sum).
	MergeFactor float64
	// MergeEps is an additive merge tolerance as a fraction of the node's
	// query mass (default 0.005), letting zero-skew unique-value ranges
	// merge; see mergeCovering.
	MergeEps float64
	// MinSkewReduction rejects splits reducing skew by less than this
	// fraction of the node's query mass (default 0.05).
	MinSkewReduction float64
	// NoiseFactor scales the sampling-noise floor added to the split
	// threshold. m uniformly-placed narrow queries have an expected EMD
	// from uniform of ≈0.67·√m (a random walk over bins), so a reduction
	// must beat NoiseFactor·Σ_types √m_t on top of MinSkewReduction to
	// count as real skew rather than Poisson noise. Disabled by default
	// (negative): at the paper's 100-queries-per-type scale genuine skew
	// reductions are comparable to the noise floor, and suppressing them
	// costs more than the occasional noise split. Set to ~1.0 for
	// patternless high-volume workloads. Zero means "default" (disabled).
	NoiseFactor float64
	// MinPointFrac and MinQueryFrac stop recursion when a node holds fewer
	// than this fraction of all points / queries (default 0.01 each).
	MinPointFrac float64
	MinQueryFrac float64
	// MinPointsFloor and MinQueriesFloor are absolute lower bounds on the
	// fraction thresholds (defaults 1024 points, 8 queries). At the paper's
	// scale (184M–300M rows, 500+ queries) the 1% fractions dominate and
	// the floors never bind; at small scale they stop the tree from
	// shattering into statistically meaningless micro-regions.
	MinPointsFloor  int
	MinQueriesFloor int
	// MaxDepth caps recursion depth (default 8).
	MaxDepth int
	// MaxNodes caps the total node count, keeping the tree lightweight as
	// §4.2.2 intends even on patternless workloads (default 64; the
	// paper's optimized trees have 35–54 nodes).
	MaxNodes int
	// DBSCANEps is the query-type clustering radius (default 0.2).
	DBSCANEps float64
	// SampleValues caps the number of values used to lay out skew-histogram
	// bins per node and dimension (default 8192).
	SampleValues int
}

func (c *Config) fill() {
	if c.HistBins <= 0 {
		c.HistBins = 128
	}
	if c.MergeFactor == 0 {
		c.MergeFactor = 1.1
	}
	if c.MergeEps == 0 {
		c.MergeEps = 0.005
	}
	if c.MinSkewReduction == 0 {
		c.MinSkewReduction = 0.05
	}
	if c.NoiseFactor == 0 {
		c.NoiseFactor = -1 // disabled by default; see Config docs
	}
	if c.MinPointFrac == 0 {
		c.MinPointFrac = 0.01
	}
	if c.MinQueryFrac == 0 {
		c.MinQueryFrac = 0.01
	}
	if c.MinPointsFloor == 0 {
		c.MinPointsFloor = 1024
	}
	if c.MinQueriesFloor == 0 {
		c.MinQueriesFloor = 8
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 64
	}
	if c.DBSCANEps == 0 {
		c.DBSCANEps = 0.2
	}
	if c.SampleValues <= 0 {
		c.SampleValues = 8192
	}
}

// Region is a leaf of the Grid Tree: a box of data space, the rows that
// fall in it, and the workload queries that intersect it.
type Region struct {
	// Lo and Hi are the region's inclusive per-dimension bounds.
	Lo, Hi []int64
	// Rows are the store row ids inside the region (pre-reorder).
	Rows []int
	// Queries are the sample-workload queries intersecting the region.
	Queries []query.Query
	// ID is the region's index in Tree.Regions (DFS order).
	ID int
}

// Node is an internal or leaf Grid Tree node. An internal node splitting on
// k values has k+1 children covering [lo, v1), [v1, v2), ..., [vk, hi]
// along SplitDim (§4.2.2).
type Node struct {
	SplitDim  int
	SplitVals []int64
	Children  []*Node
	Region    *Region // non-nil iff leaf
}

// Tree is a built Grid Tree.
type Tree struct {
	Root     *Node
	Regions  []*Region
	NumNodes int
	Depth    int
	NumTypes int
	cfg      Config
	// committed counts nodes that exist or are promised to pending
	// recursion, enforcing MaxNodes without DFS-order overshoot.
	committed int
}

// Build optimizes a Grid Tree for the dataset and sample workload (§4.3):
// cluster queries into types, then greedily split nodes on the (dimension,
// values) pair with the largest skew reduction found via skew trees.
func Build(st *colstore.Store, queries []query.Query, cfg Config) *Tree {
	cfg.fill()
	typed, numTypes := ClusterQueryTypes(st, queries, cfg.DBSCANEps)

	n := st.NumRows()
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	d := st.NumDims()
	lo := make([]int64, d)
	hi := make([]int64, d)
	for j := 0; j < d; j++ {
		lo[j], hi[j] = st.MinMax(j)
	}

	t := &Tree{NumTypes: numTypes, cfg: cfg, committed: 1}
	minPoints := int(cfg.MinPointFrac * float64(n))
	if minPoints < cfg.MinPointsFloor {
		minPoints = cfg.MinPointsFloor
	}
	minQueries := int(cfg.MinQueryFrac * float64(len(typed)))
	if minQueries < cfg.MinQueriesFloor {
		minQueries = cfg.MinQueriesFloor
	}
	t.Root = t.build(st, rows, typed, lo, hi, 1, minPoints, minQueries)
	return t
}

func (t *Tree) build(st *colstore.Store, rows []int, queries []query.Query, lo, hi []int64, depth, minPoints, minQueries int) *Node {
	t.NumNodes++
	if depth > t.Depth {
		t.Depth = depth
	}
	makeLeaf := func() *Node {
		r := &Region{
			Lo:      append([]int64(nil), lo...),
			Hi:      append([]int64(nil), hi...),
			Rows:    rows,
			Queries: queries,
			ID:      len(t.Regions),
		}
		t.Regions = append(t.Regions, r)
		return &Node{Region: r}
	}

	if depth >= t.cfg.MaxDepth || t.committed >= t.cfg.MaxNodes ||
		len(rows) <= minPoints || len(queries) <= minQueries {
		return makeLeaf()
	}

	// Find the best split dimension: the one whose optimal covering set
	// achieves the largest skew reduction (§4.3.2).
	best := splitPlan{reduction: -1}
	for dim := 0; dim < st.NumDims(); dim++ {
		if hi[dim] <= lo[dim] {
			continue
		}
		vals := sampleValues(st.Column(dim), rows, t.cfg.SampleValues)
		plan := planSplit(vals, dim, lo[dim], hi[dim], queries, t.NumTypes, t.cfg)
		if plan.reduction > best.reduction {
			best = plan
		}
	}
	// Reject when the reduction is below 5% of the node's query mass plus
	// the sampling-noise floor (≈√m expected EMD per type of m queries).
	threshold := t.cfg.MinSkewReduction * float64(len(queries))
	if t.cfg.NoiseFactor > 0 {
		perType := make(map[int]int)
		for _, q := range queries {
			perType[q.Type]++
		}
		noise := 0.0
		for _, m := range perType {
			noise += sqrtf(m)
		}
		threshold += t.cfg.NoiseFactor * noise
	}
	if len(best.values) == 0 || best.reduction < threshold {
		return makeLeaf()
	}

	// Clean split values: strictly inside (lo, hi], sorted, deduped.
	vals := cleanSplitVals(best.values, lo[best.dim], hi[best.dim])
	if len(vals) == 0 {
		return makeLeaf()
	}
	if t.committed+len(vals)+1 > t.cfg.MaxNodes {
		return makeLeaf()
	}
	t.committed += len(vals) + 1

	nd := &Node{SplitDim: best.dim, SplitVals: vals}
	nd.Children = make([]*Node, len(vals)+1)

	// Partition rows into children: child i covers [prev, vals[i]) with
	// prev = lo for i = 0, and the last child covers [vals[k-1], hi].
	col := st.Column(best.dim)
	buckets := make([][]int, len(vals)+1)
	for _, r := range rows {
		v := col[r]
		i := sort.Search(len(vals), func(i int) bool { return vals[i] > v })
		buckets[i] = append(buckets[i], r)
	}

	for i := range nd.Children {
		clo := append([]int64(nil), lo...)
		chi := append([]int64(nil), hi...)
		if i > 0 {
			clo[best.dim] = vals[i-1]
		}
		if i < len(vals) {
			chi[best.dim] = vals[i] - 1
		}
		var cq []query.Query
		for _, q := range queries {
			if queryIntersects(q, best.dim, clo[best.dim], chi[best.dim]) {
				cq = append(cq, q)
			}
		}
		nd.Children[i] = t.build(st, buckets[i], cq, clo, chi, depth+1, minPoints, minQueries)
	}
	return nd
}

func sqrtf(m int) float64 {
	return math.Sqrt(float64(m))
}

func cleanSplitVals(vals []int64, lo, hi int64) []int64 {
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := sorted[:0]
	for _, v := range sorted {
		if v <= lo || v > hi {
			continue
		}
		if len(out) > 0 && out[len(out)-1] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

func queryIntersects(q query.Query, dim int, lo, hi int64) bool {
	f, ok := q.Filter(dim)
	if !ok {
		return true
	}
	return f.Hi >= lo && f.Lo <= hi
}

// sampleValues gathers up to max values of col at rows (strided).
func sampleValues(col []int64, rows []int, max int) []int64 {
	if len(rows) <= max {
		return gatherRows(col, rows)
	}
	out := make([]int64, max)
	stride := len(rows) / max
	for i := range out {
		out[i] = col[rows[i*stride]]
	}
	return out
}

func gatherRows(col []int64, rows []int) []int64 {
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = col[r]
	}
	return out
}

// FindRegions appends to dst every leaf region intersecting q and returns
// the result (§4.2.2 query processing).
func (t *Tree) FindRegions(q query.Query, dst []*Region) []*Region {
	return findRegions(t.Root, q, dst)
}

func findRegions(nd *Node, q query.Query, dst []*Region) []*Region {
	if nd.Region != nil {
		return append(dst, nd.Region)
	}
	f, ok := q.Filter(nd.SplitDim)
	if !ok {
		for _, c := range nd.Children {
			dst = findRegions(c, q, dst)
		}
		return dst
	}
	// Children i covers [v_{i-1}, v_i): find the child range intersecting
	// [f.Lo, f.Hi].
	first := sort.Search(len(nd.SplitVals), func(i int) bool { return nd.SplitVals[i] > f.Lo })
	last := sort.Search(len(nd.SplitVals), func(i int) bool { return nd.SplitVals[i] > f.Hi })
	for i := first; i <= last; i++ {
		dst = findRegions(nd.Children[i], q, dst)
	}
	return dst
}

// SizeBytes reports the tree's memory footprint: per internal node the
// split dim, values, and child pointers; regions' bounds.
func (t *Tree) SizeBytes() uint64 {
	var size uint64
	var walk func(nd *Node)
	walk = func(nd *Node) {
		if nd.Region != nil {
			size += uint64(len(nd.Region.Lo)) * 16
			return
		}
		size += 8 + uint64(len(nd.SplitVals))*8 + uint64(len(nd.Children))*8
		for _, c := range nd.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return size
}

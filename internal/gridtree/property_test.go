package gridtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/colstore"
	"repro/internal/query"
)

// TestTreePropertiesUnderRandomWorkloads drives the Grid Tree with random
// data and workloads and checks structural invariants that must hold for
// any input: regions partition the rows, every region's box contains its
// rows, FindRegions routes every matching row somewhere, and the node
// budget holds.
func TestTreePropertiesUnderRandomWorkloads(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2000 + rng.Intn(6000)
		d := 2 + rng.Intn(3)
		cols := make([][]int64, d)
		for j := range cols {
			cols[j] = make([]int64, n)
			span := int64(1) << uint(4+rng.Intn(28))
			for i := range cols[j] {
				cols[j][i] = rng.Int63n(span) - span/2
			}
		}
		st, err := colstore.FromColumns(cols, nil)
		if err != nil {
			return false
		}
		var qs []query.Query
		numQ := 30 + rng.Intn(120)
		for i := 0; i < numQ; i++ {
			j := rng.Intn(d)
			lo, hi := st.MinMax(j)
			span := hi - lo
			a := lo + rng.Int63n(span+1)
			w := span / int64(4+rng.Intn(40))
			q := query.NewCount(query.Filter{Dim: j, Lo: a, Hi: a + w})
			q.Type = i % 3
			qs = append(qs, q)
		}
		cfg := Config{MaxNodes: 48, MinPointsFloor: 64, MinQueriesFloor: 4}
		tree := Build(st, qs, cfg)

		if tree.NumNodes > 48 {
			t.Logf("seed %d: %d nodes over budget", seed, tree.NumNodes)
			return false
		}
		// Partition invariant.
		seen := make([]bool, n)
		total := 0
		for _, r := range tree.Regions {
			total += len(r.Rows)
			for _, row := range r.Rows {
				if seen[row] {
					t.Logf("seed %d: row %d duplicated", seed, row)
					return false
				}
				seen[row] = true
				for j := 0; j < d; j++ {
					v := st.Value(row, j)
					if v < r.Lo[j] || v > r.Hi[j] {
						t.Logf("seed %d: row %d outside region box", seed, row)
						return false
					}
				}
			}
		}
		if total != n {
			t.Logf("seed %d: regions cover %d of %d rows", seed, total, n)
			return false
		}
		// Routing invariant on a few probes.
		for k := 0; k < 10; k++ {
			q := qs[rng.Intn(len(qs))]
			regions := tree.FindRegions(q, nil)
			covered := make(map[int]bool)
			for _, r := range regions {
				covered[r.ID] = true
			}
			for _, r := range tree.Regions {
				if covered[r.ID] {
					continue
				}
				// Unreturned regions must contain no matching rows.
				for _, row := range r.Rows {
					match := true
					for _, f := range q.Filters {
						v := st.Value(row, f.Dim)
						if v < f.Lo || v > f.Hi {
							match = false
							break
						}
					}
					if match {
						t.Logf("seed %d: matching row %d in unrouted region %d", seed, row, r.ID)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

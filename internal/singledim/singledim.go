// Package singledim implements the clustered single-dimensional index
// baseline (§6.1): points are sorted by the most selective dimension in the
// query workload; a query that filters this dimension locates its endpoints
// by binary search, anything else falls back to a full scan.
package singledim

import (
	"sort"
	"time"

	"repro/internal/colstore"
	"repro/internal/index"
	"repro/internal/query"
)

// Index is a clustered single-dimensional index.
type Index struct {
	store   *colstore.Store
	sortDim int
	stats   index.BuildStats
}

// Build clones the store, sorts it by the workload's most selective filtered
// dimension (or byDim if >= 0), and returns the index.
func Build(s *colstore.Store, workload []query.Query, byDim int) *Index {
	optStart := time.Now()
	dim := byDim
	if dim < 0 {
		dim = MostSelectiveDim(s, workload)
	}
	opt := time.Since(optStart).Seconds()

	sortStart := time.Now()
	clone := s.Clone()
	col := clone.Column(dim)
	perm := make([]int, clone.NumRows())
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return col[perm[a]] < col[perm[b]] })
	if err := clone.Reorder(perm); err != nil {
		panic("singledim: " + err.Error()) // perm is a permutation by construction
	}
	return &Index{
		store:   clone,
		sortDim: dim,
		stats: index.BuildStats{
			SortSeconds:     time.Since(sortStart).Seconds(),
			OptimizeSeconds: opt,
		},
	}
}

// MostSelectiveDim returns the dimension with the lowest average per-filter
// selectivity across the workload, estimated on a sample of rows.
func MostSelectiveDim(s *colstore.Store, workload []query.Query) int {
	d := s.NumDims()
	sum := make([]float64, d)
	cnt := make([]int, d)
	sample := sampleRows(s, 2000)
	for _, q := range workload {
		for _, f := range q.Filters {
			sum[f.Dim] += sampleSelectivity(s, sample, f)
			cnt[f.Dim]++
		}
	}
	best, bestSel := 0, 2.0
	for i := 0; i < d; i++ {
		if cnt[i] == 0 {
			continue
		}
		sel := sum[i] / float64(cnt[i])
		if sel < bestSel {
			best, bestSel = i, sel
		}
	}
	return best
}

func sampleRows(s *colstore.Store, n int) []int {
	total := s.NumRows()
	if total <= n {
		out := make([]int, total)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, n)
	stride := total / n
	for i := range out {
		out[i] = i * stride
	}
	return out
}

func sampleSelectivity(s *colstore.Store, rows []int, f query.Filter) float64 {
	if len(rows) == 0 {
		return 1
	}
	col := s.Column(f.Dim)
	match := 0
	for _, r := range rows {
		if v := col[r]; v >= f.Lo && v <= f.Hi {
			match++
		}
	}
	return float64(match) / float64(len(rows))
}

// Name implements index.Index.
func (x *Index) Name() string { return "SingleDim" }

// SortDim returns the clustered dimension.
func (x *Index) SortDim() int { return x.sortDim }

// BuildStats returns the build timing split.
func (x *Index) BuildStats() index.BuildStats { return x.stats }

// Execute implements index.Index. Queries filtering the sort dimension
// binary-search their physical range; others scan the whole table on the
// store's branch-free block kernels, which is what keeps this baseline's
// fallback path honest at scale. The sorted store is immutable after
// Build, so Execute is safe for concurrent callers sharing one index.
func (x *Index) Execute(q query.Query) colstore.ScanResult {
	var res colstore.ScanResult
	n := x.store.NumRows()
	f, ok := q.Filter(x.sortDim)
	if !ok {
		x.store.ScanRange(q, 0, n, false, &res)
		return res
	}
	col := x.store.Column(x.sortDim)
	start := sort.Search(n, func(i int) bool { return col[i] >= f.Lo })
	end := sort.Search(n, func(i int) bool { return col[i] > f.Hi })
	// If the sort dimension is the only filter, the range is exact.
	exact := len(q.Filters) == 1
	x.store.ScanRange(q, start, end, exact, &res)
	return res
}

// SizeBytes implements index.Index: one int for the sort dimension; the
// sorted data itself is the clustered layout, not index structure.
func (x *Index) SizeBytes() uint64 { return 8 }

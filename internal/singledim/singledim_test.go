package singledim

import (
	"sort"
	"testing"

	"repro/internal/query"
	"repro/internal/testutil"
)

func TestSingleDimMatchesFullScan(t *testing.T) {
	st := testutil.SmallTaxi(8000, 1)
	qs := testutil.RandomQueries(st, 150, 2)
	idx := Build(st, qs[:50], -1)
	testutil.CheckMatchesFullScan(t, idx, st, qs)
}

func TestSingleDimExplicitDim(t *testing.T) {
	st := testutil.SmallTaxi(3000, 3)
	qs := testutil.RandomQueries(st, 100, 4)
	for dim := 0; dim < st.NumDims(); dim++ {
		idx := Build(st, nil, dim)
		if idx.SortDim() != dim {
			t.Fatalf("sort dim = %d, want %d", idx.SortDim(), dim)
		}
		testutil.CheckMatchesFullScan(t, idx, st, qs)
	}
}

func TestSingleDimDataSorted(t *testing.T) {
	st := testutil.SmallTaxi(2000, 5)
	idx := Build(st, nil, 2)
	col := idx.store.Column(2)
	if !sort.SliceIsSorted(col, func(a, b int) bool { return col[a] < col[b] }) {
		t.Error("store not sorted by sort dimension")
	}
}

func TestSingleDimOnlySortFilterIsExact(t *testing.T) {
	st := testutil.SmallTaxi(2000, 6)
	idx := Build(st, nil, 0)
	lo, hi := st.MinMax(0)
	q := query.NewCount(query.Filter{Dim: 0, Lo: lo, Hi: (lo + hi) / 2})
	res := idx.Execute(q)
	// Exact range: COUNT should touch no column data.
	if res.PointsScanned != 0 {
		t.Errorf("sort-dim-only COUNT scanned %d points, want 0 (exact range)", res.PointsScanned)
	}
	if res.Count == 0 {
		t.Error("expected nonzero count")
	}
}

func TestMostSelectiveDimPrefersEqualityDim(t *testing.T) {
	st := testutil.SmallTaxi(4000, 7)
	lo, hi := st.MinMax(0)
	wide := query.Filter{Dim: 0, Lo: lo, Hi: hi} // selects everything
	narrow := query.Filter{Dim: 4, Lo: 1, Hi: 1} // pax == 1, ~1/6
	qs := []query.Query{query.NewCount(wide), query.NewCount(narrow)}
	if dim := MostSelectiveDim(st, qs); dim != 4 {
		t.Errorf("most selective dim = %d, want 4", dim)
	}
}

func TestSingleDimUnfilteredSortDimFallsBack(t *testing.T) {
	st := testutil.SmallTaxi(1000, 8)
	idx := Build(st, nil, 0)
	q := query.NewCount(query.Filter{Dim: 2, Lo: 0, Hi: 100})
	res := idx.Execute(q)
	if res.PointsScanned != 1000 {
		t.Errorf("fallback should scan all rows, scanned %d", res.PointsScanned)
	}
}

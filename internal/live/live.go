// Package live turns a built, read-optimized Tsunami index into a
// concurrently-writable serving system — the epoch-based read-write mode
// the paper's §8 sketches around its insert and shift extensions.
//
// The design is RCU-style: the current index is an immutable *core.Tsunami
// behind an atomic pointer. Readers load the pointer and execute lock-free
// (the read path keeps all per-query state in pooled contexts, so any
// number of readers share one epoch). Writers go through a short serialized
// ingest section that derives a copy-on-write successor (core.
// CopyWithInserts shares the clustered data and grids, replacing only the
// affected delta buffers) and publishes it with one atomic swap. A single
// background maintenance goroutine keeps the hot path clean: when buffered
// rows cross a threshold it folds them into a fresh clustered copy
// (core.MergedCopy), when the served query stream drifts from the optimized
// workload (shift.Detector) it re-optimizes the most-drifted region grids
// into a copy (core.ReoptimizeRegionsCopy) — closing the §8 adaptivity loop
// end to end — and it periodically snapshots the current epoch (including
// not-yet-merged rows) for crash recovery. Every maintenance result is
// published the same way: one atomic swap; old epochs drain as their
// readers finish and are reclaimed by the GC.
//
// Nothing on the query path ever takes a lock or waits for maintenance,
// which keeps index upkeep off the memory-bound hot loop (cf. the memory
// bottleneck argument of PIMDAL, arXiv:2504.01948).
package live

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/query"
	"repro/internal/shift"
	"repro/internal/wstats"
)

// Config tunes a live store; zero values take defaults.
type Config struct {
	// MergeThreshold is the buffered-row count that triggers a background
	// merge into a fresh clustered copy (default 4096).
	MergeThreshold int
	// RegionMergeThreshold, when > 0, makes threshold-triggered merges
	// partial: only regions whose own delta buffer holds at least this
	// many rows are folded into the clustered layout; colder regions keep
	// their rows buffered (and scanned alongside) until they cross it.
	// The store copy is still O(table), but the per-region sort and grid
	// rebuild — the dominant merge cost — is paid only for the hot
	// regions, cutting maintenance on skewed ingest. If no region
	// qualifies while the global MergeThreshold is exceeded, the merge
	// falls back to folding everything, keeping delta scans bounded on
	// perfectly uniform ingest. Flush always folds everything.
	RegionMergeThreshold int
	// MaxReoptRegions caps how many region grids one shift-triggered
	// re-optimization rebuilds (default: core's 1 + regions/10).
	MaxReoptRegions int
	// Shift tunes the drift detector (see shift.Config). Detection only
	// runs when the store was opened with the optimized workload.
	Shift shift.Config
	// DisableShift turns shift detection off even when a workload is
	// available.
	DisableShift bool
	// SnapshotInterval enables periodic crash-recovery snapshots of the
	// current epoch — including buffered-but-unmerged rows — to
	// SnapshotPath (0 disables).
	SnapshotInterval time.Duration
	// SnapshotPath is where periodic snapshots are written (atomically,
	// via a temp file + rename). Required when SnapshotInterval > 0.
	SnapshotPath string
	// OnEvent, when non-nil, is called after each merge, re-optimization,
	// snapshot, or maintenance error — usually from the maintenance
	// goroutine, but a Flush caller emits its own merge event.
	// Invocations are serialized, so the callback needs no locking of its
	// own. It must not call back into the Store (except Stats).
	OnEvent func(Event)
	// Metrics, when non-nil, records the store's telemetry into the
	// registry: the shared query-path metrics (tsunami_query_latency_
	// seconds, rows/bytes scanned) plus ingest latency, merge/reoptimize/
	// snapshot durations, detector fires, and buffered-rows/epoch gauges
	// (tsunami_live_*). Shard stores sharing one registry share the
	// counter and histogram instances, so cross-shard aggregation happens
	// by construction. Nil disables instrumentation with zero hot-path
	// cost.
	Metrics *obs.Registry
	// MetricsLabel, when non-empty, is appended to this store's gauge
	// names (e.g. `{shard="3"}`) so per-shard levels stay distinguishable
	// on a shared registry. Counters and histograms are never labeled —
	// sharing those instances is what makes shard metrics aggregate.
	MetricsLabel string
	// Workload, when non-nil, records every served query's shape,
	// latency, and result selectivity into the workload-statistics
	// collector (internal/wstats): heavy-hitter fingerprints, per-dim
	// selectivity, SLO counters, and the slow-query log. Open binds the
	// collector to this store (column names, domains, live row count, and
	// a trace function for slow-query exemplars). Same contract as
	// Metrics: nil keeps the hot path bare. A ShardedStore records at the
	// router instead and clears this per shard — set sharded.Config.
	// Workload there.
	Workload *wstats.Collector
	// CacheEntries, when > 0, enables the epoch-keyed query-result cache
	// (internal/qcache) with roughly that many entries. A hit serves a
	// previously computed result for the exact same canonical query at the
	// current epoch — invalidation is free because every publish bumps the
	// epoch, so a stale entry's key can never match again. 0 disables the
	// cache. A ShardedStore caches at the router instead and clears this
	// per shard — set sharded.Config.CacheEntries there.
	CacheEntries int
}

func (c *Config) fill() {
	if c.MergeThreshold <= 0 {
		c.MergeThreshold = 4096
	}
	if c.Shift.WindowSize <= 0 {
		c.Shift.WindowSize = 256
	}
}

// EventKind labels a maintenance event.
type EventKind int

const (
	// EventMerge: buffered rows were folded into a fresh clustered copy.
	EventMerge EventKind = iota
	// EventReoptimize: drifted region grids were rebuilt for the observed
	// workload.
	EventReoptimize
	// EventSnapshot: the current epoch was persisted.
	EventSnapshot
	// EventError: a maintenance operation failed; the previous epoch
	// keeps serving.
	EventError
	// EventRebalance: rows migrated between shards. Emitted by the sharded
	// rebalancer (the event kinds are shared with the sharded layer), never
	// by a LiveStore itself.
	EventRebalance
)

func (k EventKind) String() string {
	switch k {
	case EventMerge:
		return "merge"
	case EventReoptimize:
		return "reoptimize"
	case EventSnapshot:
		return "snapshot"
	case EventError:
		return "error"
	case EventRebalance:
		return "rebalance"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event describes one completed maintenance operation.
type Event struct {
	Kind  EventKind
	Epoch uint64 // epoch published by the operation (0 for snapshots/errors)
	// MergedRows is how many buffered rows the operation clustered.
	MergedRows int
	// RegionsRebuilt is how many region grids a re-optimization rebuilt.
	RegionsRebuilt int
	Seconds        float64
	Err            error // non-nil only for EventError
}

// errClosed reports writes or maintenance requested after Close.
var errClosed = errors.New("live: store is closed")

// liveMetrics caches the store's resolved instruments so the query and
// ingest paths never touch the registry.
type liveMetrics struct {
	qm            *obs.QueryMetrics
	ingestLatency *obs.Histogram
	ingestRows    *obs.Counter
	merges        *obs.Counter
	mergeSeconds  *obs.Histogram
	reopts        *obs.Counter
	reoptSeconds  *obs.Histogram
	snaps         *obs.Counter
	snapSeconds   *obs.Histogram
	detectorFires *obs.Counter
}

func newLiveMetrics(s *Store, r *obs.Registry, label string) *liveMetrics {
	if r == nil {
		return nil
	}
	m := &liveMetrics{
		qm:            obs.NewQueryMetrics(r),
		ingestLatency: r.DurationHistogram(obs.MLiveIngestLatency),
		ingestRows:    r.Counter(obs.MLiveIngestRows),
		merges:        r.Counter(obs.MLiveMerges),
		mergeSeconds:  r.DurationHistogram(obs.MLiveMergeSeconds),
		reopts:        r.Counter(obs.MLiveReoptimizes),
		reoptSeconds:  r.DurationHistogram(obs.MLiveReoptSeconds),
		snaps:         r.Counter(obs.MLiveSnapshots),
		snapSeconds:   r.DurationHistogram(obs.MLiveSnapSeconds),
		detectorFires: r.Counter(obs.MLiveDetectorFires),
	}
	// Level gauges read the current epoch at scrape time instead of being
	// pushed on every swap; labeled per shard when stores share a registry.
	r.GaugeFunc(obs.MLiveBufferedRows+label, func() float64 {
		return float64(s.cur.Load().idx.NumBuffered())
	})
	r.GaugeFunc(obs.MLiveEpoch+label, func() float64 {
		return float64(s.cur.Load().epoch)
	})
	return m
}

// obsItem is one served query on its way to the shift detector: the
// query plus the result selectivity it observed (matched rows over the
// rows served), which feeds the detector's ObserveResult drift signal.
type obsItem struct {
	q   query.Query
	sel float64
}

// version is one published epoch: an immutable index plus how much of the
// store's replay log its delta buffers already reflect.
type version struct {
	idx    *core.Tsunami
	epoch  uint64
	logLen int
}

// Store is an epoch-based read-write serving layer over a Tsunami index.
//
// Concurrency: Execute/ExecuteParallelOn/CurrentIndex/Stats may be called
// from any number of goroutines, and never block on writers or
// maintenance. Insert/InsertBatch may be called from any number of
// goroutines; they serialize on a short critical section (derive + swap)
// whose cost is proportional to the batch, not the data. All maintenance
// runs on one background goroutine owned by the Store.
type Store struct {
	cfg Config

	cur atomic.Pointer[version]

	// mu guards ingest and epoch publication: the log, the closed flag,
	// and the compare-free cur.Store calls (publication order = lock
	// order). Held only for copy-on-write derivation and replay, never
	// during merges or re-optimizations.
	mu     sync.Mutex
	log    [][]int64 // rows in the current epoch's delta buffers, oldest first
	closed bool

	// maintMu serializes the maintenance operations themselves (background
	// goroutine, Flush, Snapshot), so at most one rebuild runs at a time.
	maintMu sync.Mutex

	// emitMu serializes OnEvent invocations (events are emitted from the
	// maintenance goroutine and from Flush callers).
	emitMu sync.Mutex

	obs  chan obsItem  // sampled feed of served queries to the detector
	wake chan struct{} // nudges maintenance when the threshold trips
	quit chan struct{}
	done chan struct{}

	// Close is funneled through closeOnce; every caller waits on
	// closeDone so all of them return only after the final snapshot (if
	// configured) is on disk.
	closeOnce sync.Once
	closeDone chan struct{}
	closeErr  error

	// Maintenance-goroutine-only state.
	detector  *shift.Detector
	recent    []query.Query // ring of recently served queries
	recentPos int
	recentN   int
	observed  int // queries observed since the detector was (re)built

	metrics *liveMetrics // nil when instrumentation is off

	// cache is the epoch-keyed result cache; nil when disabled. The
	// counters alongside it are nil-safe obs instruments resolved once at
	// Open (nil when metrics are off).
	cache          *qcache.Cache
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter

	queries       atomic.Uint64
	inserts       atomic.Uint64
	merges        atomic.Uint64
	reopts        atomic.Uint64
	snapshots     atomic.Uint64
	droppedObs    atomic.Uint64
	detectorTypes atomic.Int64 // mirrored from the detector for Stats
}

// Open starts serving idx. optimized is the sample workload the index was
// built for; it seeds the shift detector's fingerprint (pass nil to serve
// without shift detection). The Store owns idx from here on: it must not
// be mutated by the caller anymore (reads through the Store are fine).
func Open(idx *core.Tsunami, optimized []query.Query, cfg Config) *Store {
	cfg.fill()
	s := &Store{
		cfg:       cfg,
		wake:      make(chan struct{}, 1),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		closeDone: make(chan struct{}),
	}
	// Rows already buffered in the index (e.g. restored from a snapshot
	// taken mid-stream) seed the replay log, so the first merge accounts
	// for them exactly like rows ingested through the Store.
	s.log = idx.BufferedRows()
	s.cur.Store(&version{idx: idx, epoch: 1, logLen: len(s.log)})
	s.metrics = newLiveMetrics(s, cfg.Metrics, cfg.MetricsLabel)
	if cfg.CacheEntries > 0 {
		s.cache = qcache.New(cfg.CacheEntries)
		if r := cfg.Metrics; r != nil {
			s.cacheHits = r.Counter(obs.MCacheHits)
			s.cacheMisses = r.Counter(obs.MCacheMisses)
			s.cacheEvictions = r.Counter(obs.MCacheEvictions)
			r.GaugeFunc(obs.MCacheEntries+cfg.MetricsLabel, func() float64 {
				return float64(s.cache.Len())
			})
		}
	}
	if len(optimized) > 0 && !cfg.DisableShift {
		s.detector = shift.NewDetector(idx.Store(), optimized, cfg.Shift)
		s.detectorTypes.Store(int64(s.detector.NumTypes()))
		s.recent = make([]query.Query, cfg.Shift.WindowSize)
		s.obs = make(chan obsItem, 4*cfg.Shift.WindowSize)
	}
	if cfg.Workload != nil {
		st := idx.Store()
		lo := make([]int64, st.NumDims())
		hi := make([]int64, st.NumDims())
		for d := range lo {
			lo[d], hi[d] = st.MinMax(d)
		}
		cfg.Workload.Bind(wstats.Binding{
			DimNames: st.Names(),
			DomainLo: lo,
			DomainHi: hi,
			Rows: func() uint64 {
				idx := s.cur.Load().idx
				return uint64(idx.Store().NumRows() + idx.NumBuffered())
			},
			// Slow-query exemplars trace through the current epoch's core
			// index directly — not Store.ExecuteTrace — so a capture never
			// re-records into the collector or the detector feed.
			Trace: func(q query.Query) *obs.QueryTrace {
				_, tr := s.cur.Load().idx.ExecuteTrace(q)
				return tr
			},
		})
	}
	go s.maintain()
	// A restored index may already hold a threshold's worth of buffered
	// rows; nudge the maintainer so a read-only workload doesn't pay the
	// delta-scan penalty forever.
	if idx.NumBuffered() >= cfg.MergeThreshold {
		s.wake <- struct{}{}
	}
	// Surface the one silent misconfiguration: an interval with no path
	// would otherwise disable every snapshot, including the final one on
	// Close, while the operator believes crash recovery is on.
	if cfg.SnapshotInterval > 0 && cfg.SnapshotPath == "" {
		s.emit(Event{Kind: EventError, Err: errors.New("live: SnapshotInterval set without SnapshotPath; snapshots are disabled")})
	}
	return s
}

// Recover reopens a store from a snapshot written by Snapshot (or
// core.Tsunami.Save): clustered data, grids, and any rows that were
// buffered but not yet merged at snapshot time.
func Recover(r io.Reader, optimized []query.Query, cfg Config) (*Store, error) {
	idx, err := core.Load(r)
	if err != nil {
		return nil, fmt.Errorf("live: recover: %w", err)
	}
	return Open(idx, optimized, cfg), nil
}

// Execute answers one query against the current epoch, lock-free, and
// feeds the shift detector (sampled: observations are dropped, not
// waited for, when the detector falls behind) and the workload-
// statistics collector when one is configured.
func (s *Store) Execute(q query.Query) colstore.ScanResult {
	v := s.cur.Load()
	s.queries.Add(1)
	if res, ok := s.cacheGet(v, q); ok {
		return res
	}
	m, w := s.metrics, s.cfg.Workload
	if m == nil && w == nil {
		res := v.idx.Execute(q)
		s.cachePut(v, q, res)
		s.observeAsync(q, res.Count, v)
		return res
	}
	start := time.Now()
	res := v.idx.Execute(q)
	d := time.Since(start)
	if m != nil {
		m.qm.Observe(d, res.PointsScanned, res.BytesTouched)
	}
	w.Record(q, d, res.Count, res.PointsScanned, res.BytesTouched)
	s.cachePut(v, q, res)
	s.observeAsync(q, res.Count, v)
	return res
}

// ExecuteParallelOn exposes the index's intra-query parallelism against
// the current epoch (see core.Tsunami.ExecuteParallelOn), so a Store can
// sit directly behind an Executor with IntraQuery enabled.
func (s *Store) ExecuteParallelOn(q query.Query, workers int, submit func(task func())) colstore.ScanResult {
	v := s.cur.Load()
	s.queries.Add(1)
	if res, ok := s.cacheGet(v, q); ok {
		return res
	}
	m, w := s.metrics, s.cfg.Workload
	if m == nil && w == nil {
		res := v.idx.ExecuteParallelOn(q, workers, submit)
		s.cachePut(v, q, res)
		s.observeAsync(q, res.Count, v)
		return res
	}
	start := time.Now()
	res := v.idx.ExecuteParallelOn(q, workers, submit)
	d := time.Since(start)
	if m != nil {
		m.qm.Observe(d, res.PointsScanned, res.BytesTouched)
	}
	w.Record(q, d, res.Count, res.PointsScanned, res.BytesTouched)
	s.cachePut(v, q, res)
	s.observeAsync(q, res.Count, v)
	return res
}

// cacheGet serves q from the result cache at v's epoch when possible. A
// hit is recorded into metrics and workload stats like any served query
// (with zero rows/bytes scanned — the point of the hit) and still feeds
// the shift detector, so cached traffic cannot blind the adaptivity loop.
func (s *Store) cacheGet(v *version, q query.Query) (colstore.ScanResult, bool) {
	if s.cache == nil {
		return colstore.ScanResult{}, false
	}
	start := time.Now()
	res, ok := s.cache.Get(v.epoch, nil, q)
	if !ok {
		s.cacheMisses.Add(1)
		return colstore.ScanResult{}, false
	}
	s.cacheHits.Add(1)
	if m, w := s.metrics, s.cfg.Workload; m != nil || w != nil {
		d := time.Since(start)
		if m != nil {
			m.qm.Observe(d, 0, 0)
		}
		w.Record(q, d, res.Count, 0, 0)
	}
	s.observeAsync(q, res.Count, v)
	return res, true
}

// cachePut stores a freshly computed result under v's epoch. v.idx is
// immutable, so res is exactly epoch v's answer even if a newer epoch
// published mid-execution — the entry is then merely unreachable (its
// epoch is no longer current), never wrong.
func (s *Store) cachePut(v *version, q query.Query, res colstore.ScanResult) {
	if s.cache == nil {
		return
	}
	if s.cache.Put(v.epoch, nil, q, res) {
		s.cacheEvictions.Add(1)
	}
}

// observeAsync feeds the detector one served query and the result
// selectivity it observed against the epoch it was served from.
func (s *Store) observeAsync(q query.Query, matched uint64, v *version) {
	if s.obs == nil {
		return
	}
	sel := 1.0
	if rows := v.idx.Store().NumRows() + v.idx.NumBuffered(); rows > 0 {
		sel = float64(matched) / float64(rows)
		if sel > 1 {
			sel = 1
		}
	}
	select {
	case s.obs <- obsItem{q: q, sel: sel}:
	default:
		s.droppedObs.Add(1)
	}
}

// Name implements index.Index.
func (s *Store) Name() string { return "LiveStore[" + s.cur.Load().idx.Name() + "]" }

// SizeBytes implements index.Index for the current epoch.
func (s *Store) SizeBytes() uint64 { return s.cur.Load().idx.SizeBytes() }

// Index returns the latest published epoch's index. The returned index is
// immutable; it stays valid (and consistent) for as long as the caller
// holds it, even across later swaps.
func (s *Store) Index() *core.Tsunami { return s.cur.Load().idx }

// CurrentIndex implements the executor's IndexSource. It returns the
// Store itself, not the raw epoch handle: Execute resolves the current
// epoch per call anyway, and routing through the Store keeps query
// accounting and the shift-detector feed identical to direct Execute
// calls (use Index for the raw epoch handle).
func (s *Store) CurrentIndex() index.Index { return s }

// Epoch returns the current epoch number; it advances by one per
// published version (ingest batch, merge, or re-optimization).
func (s *Store) Epoch() uint64 { return s.cur.Load().epoch }

// EstimateCost bounds q's plan-time scan cost against the current epoch
// (see core.Tsunami.EstimateCost); the Executor's admission budgets use
// it to reject over-budget queries before they scan.
func (s *Store) EstimateCost(q query.Query) (rows, bytes uint64) {
	return s.cur.Load().idx.EstimateCost(q)
}

// Insert ingests one row. It becomes visible to queries as soon as Insert
// returns.
func (s *Store) Insert(row []int64) error { return s.InsertBatch([][]int64{row}) }

// InsertBatch ingests rows as one copy-on-write step — one derived
// version and one epoch swap for the whole batch — and returns once they
// are visible to queries.
func (s *Store) InsertBatch(rows [][]int64) error {
	if len(rows) == 0 {
		return nil
	}
	var start time.Time
	if s.metrics != nil {
		start = time.Now()
	}
	// One defensive copy per row, shared by the index's delta buffers and
	// the replay log (both treat rows as immutable once ingested).
	copied := make([][]int64, len(rows))
	for i, row := range rows {
		copied[i] = append([]int64(nil), row...)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errClosed
	}
	v := s.cur.Load()
	nidx, err := v.idx.CopyWithInserts(copied)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.log = append(s.log, copied...)
	buffered := nidx.NumBuffered()
	s.publishLocked(nidx, len(s.log))
	s.mu.Unlock()

	s.inserts.Add(uint64(len(rows)))
	if m := s.metrics; m != nil {
		m.ingestLatency.RecordDuration(time.Since(start))
		m.ingestRows.Add(uint64(len(rows)))
	}
	if buffered >= s.cfg.MergeThreshold {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
	return nil
}

// publishLocked swaps in idx as the next epoch. Callers hold s.mu.
func (s *Store) publishLocked(idx *core.Tsunami, logLen int) {
	old := s.cur.Load()
	s.cur.Store(&version{idx: idx, epoch: old.epoch + 1, logLen: logLen})
}

// Flush synchronously folds every buffered row into a fresh clustered
// copy and publishes it, like a threshold-triggered background merge.
// Concurrent inserts remain buffered in the published epoch. Flush on a
// closed store returns an error.
func (s *Store) Flush() error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	return s.mergeLocked(0)
}

// Snapshot writes the current epoch — including buffered-but-unmerged
// rows — to w. It never blocks readers or writers (Save is a pure read of
// an immutable epoch).
func (s *Store) Snapshot(w io.Writer) error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	if err := s.cur.Load().idx.Save(w); err != nil {
		return err
	}
	s.snapshots.Add(1)
	return nil
}

// Stats is a point-in-time summary of a live store.
type Stats struct {
	Epoch         uint64
	ClusteredRows int
	BufferedRows  int
	// DetectorTypes is the number of fingerprinted query types (0 when
	// shift detection is off).
	DetectorTypes int

	Queries             uint64
	Inserts             uint64
	Merges              uint64
	Reoptimizations     uint64
	Snapshots           uint64
	DroppedObservations uint64
	// Cache is the result cache's counters; all-zero when disabled.
	Cache qcache.Stats
}

// Stats reports current counters. Safe from any goroutine.
func (s *Store) Stats() Stats {
	v := s.cur.Load()
	st := Stats{
		Epoch:               v.epoch,
		ClusteredRows:       v.idx.Store().NumRows(),
		BufferedRows:        v.idx.NumBuffered(),
		Queries:             s.queries.Load(),
		Inserts:             s.inserts.Load(),
		Merges:              s.merges.Load(),
		Reoptimizations:     s.reopts.Load(),
		Snapshots:           s.snapshots.Load(),
		DroppedObservations: s.droppedObs.Load(),
	}
	st.DetectorTypes = int(s.detectorTypes.Load())
	st.Cache = s.cache.Stats()
	return st
}

// CacheStats reports the result cache's counters (all-zero when the
// cache is disabled). Safe from any goroutine.
func (s *Store) CacheStats() qcache.Stats { return s.cache.Stats() }

// Close stops ingest and maintenance and waits for the maintenance
// goroutine to exit. If periodic snapshots are configured, a final
// snapshot is written first; concurrent Close calls all block until it
// is on disk. Reads against the Store remain valid after Close (they
// serve the last published epoch).
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		close(s.quit)
		<-s.done
		if s.cfg.SnapshotInterval > 0 && s.cfg.SnapshotPath != "" {
			s.closeErr = s.snapshotToPath()
		}
		close(s.closeDone)
	})
	<-s.closeDone
	return s.closeErr
}

// ---------------------------------------------------------------------------
// Maintenance goroutine.

func (s *Store) maintain() {
	defer close(s.done)
	var tick <-chan time.Time
	if s.cfg.SnapshotInterval > 0 && s.cfg.SnapshotPath != "" {
		t := time.NewTicker(s.cfg.SnapshotInterval)
		defer t.Stop()
		tick = t.C
	}
	var obs <-chan obsItem = s.obs // nil when shift detection is off
	for {
		select {
		case <-s.quit:
			return
		case it := <-obs:
			s.observe(it)
		case <-s.wake:
			s.runMerge()
		case <-tick:
			s.runSnapshot()
		}
	}
}

// observe feeds one served query — and the result selectivity it
// observed — to the detector and, periodically, analyzes the window; a
// detected shift re-optimizes the most-drifted regions for the recently
// observed workload.
func (s *Store) observe(it obsItem) {
	q := it.q
	ty := s.detector.Observe(q)
	s.detector.ObserveResult(ty, it.sel)
	s.recent[s.recentPos] = q
	s.recentPos = (s.recentPos + 1) % len(s.recent)
	if s.recentN < len(s.recent) {
		s.recentN++
	}
	s.observed++
	// Analyze every few observations: Analyze is cheap relative to
	// Observe's selectivity probes, but there is no point re-scoring the
	// window per query.
	if s.observed%16 != 0 {
		return
	}
	if rep := s.detector.Analyze(); rep.ShiftDetected {
		if m := s.metrics; m != nil {
			m.detectorFires.Inc()
		}
		s.runReoptimize()
	}
}

// recentWorkload snapshots the observation ring, oldest first.
func (s *Store) recentWorkload() []query.Query {
	out := make([]query.Query, 0, s.recentN)
	start := s.recentPos - s.recentN
	for i := 0; i < s.recentN; i++ {
		out = append(out, s.recent[(start+i+len(s.recent))%len(s.recent)])
	}
	return out
}

func (s *Store) runMerge() {
	s.maintMu.Lock()
	err := s.mergeLocked(s.cfg.RegionMergeThreshold)
	s.maintMu.Unlock()
	// A merge losing the race with Close is a normal shutdown, not an
	// error worth reporting.
	if err != nil && !errors.Is(err, errClosed) {
		s.emit(Event{Kind: EventError, Err: err})
	}
}

// mergeLocked rebuilds the clustered layout with buffered rows folded in,
// replays rows ingested while the rebuild ran, and publishes the result.
// minPerRegion > 0 folds only regions whose delta buffers crossed that
// per-region threshold (falling back to a full fold when none did, so the
// global threshold still bounds delta scans); 0 folds everything. Readers
// are never blocked; writers only during the short replay.
func (s *Store) mergeLocked(minPerRegion int) error {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return errClosed
	}
	v := s.cur.Load()
	if v.idx.NumBuffered() == 0 {
		return nil
	}
	start := time.Now()
	// Long: runs against the immutable epoch.
	merged, folded, err := v.idx.MergedCopyOver(minPerRegion)
	if err != nil {
		return fmt.Errorf("live: merge: %w", err)
	}
	if folded == 0 {
		// Nothing crossed the per-region bar; fold everything so buffered
		// rows can't accumulate past MergeThreshold indefinitely.
		merged, folded, err = v.idx.MergedCopyOver(0)
		if err != nil {
			return fmt.Errorf("live: merge: %w", err)
		}
		if folded == 0 {
			return nil // raced with another merge; nothing left to fold
		}
	}
	s.mu.Lock()
	if s.closed { // lost the race with Close during the rebuild
		s.mu.Unlock()
		return errClosed
	}
	// Rows ingested since v was captured are not in the merged copy's
	// clustered data; replay them into its (private, unpublished) delta
	// buffers before the swap.
	tail := s.log[v.logLen:]
	for _, row := range tail {
		if err := merged.Insert(row); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("live: merge replay: %w", err)
		}
	}
	s.log = append([][]int64(nil), tail...)
	s.publishLocked(merged, len(s.log))
	epoch := s.cur.Load().epoch
	s.mu.Unlock()

	s.merges.Add(1)
	if m := s.metrics; m != nil {
		m.merges.Inc()
		m.mergeSeconds.RecordDuration(time.Since(start))
	}
	s.emit(Event{Kind: EventMerge, Epoch: epoch, MergedRows: folded, Seconds: time.Since(start).Seconds()})
	return nil
}

// runReoptimize rebuilds the most-drifted region grids for the recently
// observed workload (buffered rows are merged as part of the rebuild),
// publishes the result, and re-fingerprints the detector on the new
// workload so one shift triggers one re-optimization.
func (s *Store) runReoptimize() {
	work := s.recentWorkload()
	if len(work) == 0 {
		return
	}
	s.maintMu.Lock()
	v := s.cur.Load()
	start := time.Now()
	reopt, n, _, err := v.idx.ReoptimizeRegionsCopy(work, s.cfg.MaxReoptRegions)
	if err != nil {
		s.maintMu.Unlock()
		s.emit(Event{Kind: EventError, Err: fmt.Errorf("live: reoptimize: %w", err)})
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.maintMu.Unlock()
		return
	}
	tail := s.log[v.logLen:]
	for _, row := range tail {
		if err := reopt.Insert(row); err != nil {
			s.mu.Unlock()
			s.maintMu.Unlock()
			s.emit(Event{Kind: EventError, Err: fmt.Errorf("live: reoptimize replay: %w", err)})
			return
		}
	}
	s.log = append([][]int64(nil), tail...)
	s.publishLocked(reopt, len(s.log))
	epoch := s.cur.Load().epoch
	s.mu.Unlock()
	s.maintMu.Unlock()

	s.reopts.Add(1)
	if m := s.metrics; m != nil {
		m.reopts.Inc()
		m.reoptSeconds.RecordDuration(time.Since(start))
	}
	// Re-fingerprint on the workload we just optimized for, over the new
	// clustered store, and restart the window: drift is now measured
	// against the post-shift baseline.
	s.detector = shift.NewDetector(reopt.Store(), work, s.cfg.Shift)
	s.detectorTypes.Store(int64(s.detector.NumTypes()))
	s.recentN, s.recentPos, s.observed = 0, 0, 0
	s.emit(Event{Kind: EventReoptimize, Epoch: epoch, RegionsRebuilt: n, Seconds: time.Since(start).Seconds()})
}

func (s *Store) runSnapshot() {
	s.maintMu.Lock()
	err := s.snapshotLocked()
	s.maintMu.Unlock()
	if err != nil {
		s.emit(Event{Kind: EventError, Err: err})
	}
}

func (s *Store) snapshotToPath() error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	return s.snapshotLocked()
}

// snapshotLocked persists the current epoch atomically: write a temp file
// in the target directory, fsync-free rename over the destination. Crash
// mid-write leaves the previous snapshot intact.
func (s *Store) snapshotLocked() error {
	start := time.Now()
	v := s.cur.Load()
	dir := filepath.Dir(s.cfg.SnapshotPath)
	f, err := os.CreateTemp(dir, ".live-snapshot-*")
	if err != nil {
		return fmt.Errorf("live: snapshot: %w", err)
	}
	if err := v.idx.Save(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("live: snapshot: %w", err)
	}
	// Flush to stable storage before the rename: without it a power loss
	// can journal the rename ahead of the data blocks, destroying the
	// previous good snapshot along with the new one.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("live: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("live: snapshot: %w", err)
	}
	if err := os.Rename(f.Name(), s.cfg.SnapshotPath); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("live: snapshot: %w", err)
	}
	s.snapshots.Add(1)
	if m := s.metrics; m != nil {
		m.snaps.Inc()
		m.snapSeconds.RecordDuration(time.Since(start))
	}
	s.emit(Event{Kind: EventSnapshot, Seconds: time.Since(start).Seconds()})
	return nil
}

func (s *Store) emit(ev Event) {
	if s.cfg.OnEvent == nil {
		return
	}
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	s.cfg.OnEvent(ev)
}

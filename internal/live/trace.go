package live

import (
	"fmt"
	"time"

	"repro/internal/colstore"
	"repro/internal/obs"
	"repro/internal/query"
)

// ExecuteTrace answers q exactly like Execute while recording an
// explain-analyze trace of the underlying index execution, prefixed with
// the epoch the query was served against. Query accounting (Stats
// counters, shift-detector feed, registry metrics) is identical to
// Execute, so traced queries do not skew the aggregates they are
// debugging.
func (s *Store) ExecuteTrace(q query.Query) (colstore.ScanResult, *obs.QueryTrace) {
	v := s.cur.Load()
	s.queries.Add(1)
	s.observeAsync(q)
	start := time.Now()
	res, tr := v.idx.ExecuteTrace(q)
	if m := s.metrics; m != nil {
		m.qm.Observe(time.Since(start), res.PointsScanned, res.BytesTouched)
	}
	tr.Stages = append([]obs.TraceStage{{
		Name:   "epoch",
		Detail: fmt.Sprintf("serving epoch %d (%d buffered rows)", v.epoch, v.idx.NumBuffered()),
	}}, tr.Stages...)
	return res, tr
}

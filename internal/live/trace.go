package live

import (
	"fmt"
	"time"

	"repro/internal/colstore"
	"repro/internal/obs"
	"repro/internal/query"
)

// ExecuteTrace answers q exactly like Execute while recording an
// explain-analyze trace of the underlying index execution, prefixed with
// the epoch the query was served against. Query accounting (Stats
// counters, shift-detector feed, registry metrics) is identical to
// Execute, so traced queries do not skew the aggregates they are
// debugging.
func (s *Store) ExecuteTrace(q query.Query) (colstore.ScanResult, *obs.QueryTrace) {
	v := s.cur.Load()
	s.queries.Add(1)
	start := time.Now()
	res, tr := v.idx.ExecuteTrace(q)
	d := time.Since(start)
	if m := s.metrics; m != nil {
		m.qm.Observe(d, res.PointsScanned, res.BytesTouched)
	}
	s.cfg.Workload.Record(q, d, res.Count, res.PointsScanned, res.BytesTouched)
	s.observeAsync(q, res.Count, v)
	tr.Stages = append([]obs.TraceStage{{
		Name:   "epoch",
		Detail: fmt.Sprintf("serving epoch %d (%d buffered rows)", v.epoch, v.idx.NumBuffered()),
	}}, tr.Stages...)
	return res, tr
}

package live

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/auggrid"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/gridtree"
	"repro/internal/query"
	"repro/internal/shift"
	"repro/internal/testutil"
)

func smallConfig() core.Config {
	return core.Config{
		GridTree: gridtree.Config{MaxDepth: 4},
		Grid: auggrid.OptimizeConfig{
			Eval:     auggrid.EvalConfig{SampleSize: 1024, MaxQueries: 30},
			MaxCells: 1 << 12,
			MaxIters: 2,
		},
		MinRowsForGrid: 256,
	}
}

// shiftedQuery builds a query type absent from the optimized workload
// (testutil.SkewedQueries filters dims 0 and 1; this filters dims 2 and 3),
// so the detector sees it as novel.
func shiftedQuery(st *colstore.Store, k int64) query.Query {
	lo2, hi2 := st.MinMax(2)
	lo3, hi3 := st.MinMax(3)
	w2 := (hi2 - lo2) / 4
	w3 := (hi3 - lo3) / 4
	a := lo2 + (k*37)%(hi2-lo2-w2+1)
	b := lo3 + (k*53)%(hi3-lo3-w3+1)
	return query.NewCount(
		query.Filter{Dim: 2, Lo: a, Hi: a + w2},
		query.Filter{Dim: 3, Lo: b, Hi: b + w3},
	)
}

// TestLiveConcurrentReadWriteWithMaintenance is the acceptance test for
// the epoch-based serving mode: 4 writer goroutines and 4 reader
// goroutines run against one LiveStore until at least one background
// merge and one shift-triggered re-optimization have completed under
// them. Readers continuously check a monotonicity invariant (a fixed
// query's count never decreases: inserts only add matches and
// maintenance never loses rows). After quiescing, every answer must
// equal a full scan and an offline-rebuilt index over the same rows.
func TestLiveConcurrentReadWriteWithMaintenance(t *testing.T) {
	const (
		writers = 4
		readers = 4
	)
	st := testutil.SmallTaxi(8000, 1)
	work := testutil.SkewedQueries(st, 120, 2)
	idx := core.Build(st, work, smallConfig())

	s := Open(idx, work, Config{
		MergeThreshold: 500,
		Shift: shift.Config{
			WindowSize:  64,
			MinObserved: 32,
		},
	})

	probes := work[:4] // original-type queries, also used for monotonicity
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writers: each owns its slice of inserted rows (perturbed copies of
	// existing rows, so they land across regions), paced so maintenance
	// interleaves with ingest rather than trailing it.
	inserted := make([][][]int64, writers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]int64, st.NumDims())
			for i := 0; !stop.Load() && i < 3000; i += 4 {
				batch := make([][]int64, 0, 4)
				for k := 0; k < 4; k++ {
					src := st.Row((w*2711+i+k)%st.NumRows(), buf)
					row := append([]int64(nil), src...)
					row[0]++ // perturb so rows are distinguishable from originals
					batch = append(batch, row)
					inserted[w] = append(inserted[w], row)
				}
				if err := s.InsertBatch(batch); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	// Readers: issue a 3:1 mix of novel-type queries (driving the shift
	// detector) and original probes (checked for monotonic counts).
	readerErrs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := make([]uint64, len(probes))
			for k := int64(0); !stop.Load(); k++ {
				if k%4 != 3 {
					s.Execute(shiftedQuery(st, k*int64(readers)+int64(r)))
					continue
				}
				i := int(k/4) % len(probes)
				got := s.Execute(probes[i]).Count
				if got < last[i] {
					readerErrs <- probes[i].String()
					return
				}
				last[i] = got
			}
		}()
	}

	// Let the fleet run until both maintenance kinds completed under it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		stats := s.Stats()
		if stats.Merges >= 1 && stats.Reoptimizations >= 1 {
			break
		}
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("maintenance did not complete under load: %+v", stats)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	close(readerErrs)
	for q := range readerErrs {
		t.Errorf("reader saw a non-monotonic count on %s", q)
	}

	// Quiesce: fold everything into the clustered layout.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().BufferedRows; got != 0 {
		t.Fatalf("%d rows still buffered after quiesce", got)
	}

	// Offline references over the same rows: the shared full-scan oracle
	// and a rebuilt Tsunami index.
	var all [][]int64
	for _, rows := range inserted {
		all = append(all, rows...)
	}
	combined := testutil.CombineRows(st, all)
	rebuilt := core.Build(combined, work, smallConfig())

	check := append(append([]query.Query(nil), probes...), testutil.RandomQueries(st, 60, 3)...)
	for k := int64(0); k < 10; k++ {
		check = append(check, shiftedQuery(st, k))
	}
	testutil.CheckMatchesFullScan(t, s, combined, check)
	for _, q := range check {
		got := s.Execute(q)
		ref := rebuilt.Execute(q)
		if got.Count != ref.Count || got.Sum != ref.Sum {
			t.Errorf("post-quiesce vs offline rebuild on %s: (%d, %d), want (%d, %d)",
				q, got.Count, got.Sum, ref.Count, ref.Sum)
		}
	}

	t.Logf("final stats: %+v", s.Stats())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(make([]int64, st.NumDims())); err == nil {
		t.Error("Insert after Close should fail")
	}
	if err := s.Flush(); err == nil {
		t.Error("Flush after Close should fail")
	}
}

// TestLiveRecoverMidStream is the crash-recovery test: a snapshot taken
// while rows are buffered but not yet merged must restore those rows.
func TestLiveRecoverMidStream(t *testing.T) {
	st := testutil.SmallTaxi(6000, 11)
	work := testutil.SkewedQueries(st, 100, 12)
	idx := core.Build(st, work, smallConfig())

	// MergeThreshold high enough that nothing merges: rows stay in delta
	// buffers, the state a crash is most likely to lose.
	s := Open(idx, nil, Config{MergeThreshold: 1 << 20})
	var rows [][]int64
	for i := 0; i < 57; i++ {
		row := []int64{9_100_000 + int64(i), 9_100_050, 2, 2, 2}
		rows = append(rows, row)
		if err := s.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := s.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Snapshots; got != 1 {
		t.Errorf("manual snapshot not counted: %d, want 1", got)
	}
	snapData := append([]byte(nil), snap.Bytes()...) // reading Recover drains snap
	// Rows inserted after the snapshot are lost by the "crash".
	if err := s.Insert([]int64{9_200_000, 9_200_000, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Recover(&snap, nil, Config{MergeThreshold: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Stats().BufferedRows; got != 57 {
		t.Fatalf("recovered %d buffered rows, want 57", got)
	}
	q := query.NewCount(query.Filter{Dim: 0, Lo: 9_100_000, Hi: 9_199_999})
	if got := r.Execute(q).Count; got != 57 {
		t.Errorf("recovered count = %d, want 57", got)
	}
	// The recovered store resumes normal life: more inserts, then a merge
	// that folds snapshot-buffered and new rows together.
	if err := r.Insert([]int64{9_100_900, 9_100_950, 3, 3, 3}); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().BufferedRows; got != 0 {
		t.Errorf("%d rows buffered after flush", got)
	}
	q2 := query.NewCount(query.Filter{Dim: 0, Lo: 9_100_000, Hi: 9_299_999})
	if got := r.Execute(q2).Count; got != 58 {
		t.Errorf("post-merge count = %d, want 58", got)
	}
	if got := r.Index().Store().NumRows(); got != 6058 {
		t.Errorf("clustered rows = %d, want 6058", got)
	}

	// Recovering with a threshold already exceeded must merge on its own,
	// even if no further insert ever arrives to trip the check.
	r2, err := Recover(bytes.NewReader(snapData), nil, Config{MergeThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	deadline := time.Now().Add(10 * time.Second)
	for r2.Stats().BufferedRows != 0 {
		if time.Now().After(deadline) {
			t.Fatal("recovery merge of over-threshold buffered rows never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := r2.Execute(q).Count; got != 57 {
		t.Errorf("recovery-merged count = %d, want 57", got)
	}
}

// TestLivePeriodicSnapshot checks the background snapshot loop and the
// final snapshot on Close, then recovers from the file on disk.
func TestLivePeriodicSnapshot(t *testing.T) {
	st := testutil.SmallTaxi(4000, 21)
	work := testutil.SkewedQueries(st, 80, 22)
	idx := core.Build(st, work, smallConfig())

	path := filepath.Join(t.TempDir(), "live.idx")
	s := Open(idx, nil, Config{
		MergeThreshold:   1 << 20,
		SnapshotInterval: 20 * time.Millisecond,
		SnapshotPath:     path,
	})
	for i := 0; i < 31; i++ {
		if err := s.Insert([]int64{9_300_000 + int64(i), 9_300_050, 4, 4, 4}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Snapshots == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no periodic snapshot within deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Close writes a final snapshot, so the file reflects all 31 rows —
	// including from concurrent Close calls, which all wait for it.
	var closeWG sync.WaitGroup
	for i := 0; i < 3; i++ {
		closeWG.Add(1)
		go func() {
			defer closeWG.Done()
			if err := s.Close(); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
		}()
	}
	closeWG.Wait()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := Recover(f, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	q := query.NewCount(query.Filter{Dim: 0, Lo: 9_300_000, Hi: 9_399_999})
	if got := r.Execute(q).Count; got != 31 {
		t.Errorf("recovered count = %d, want 31", got)
	}
}

// TestLivePartialMerge drives skewed ingest with a per-region merge
// threshold: the triggered merge must fold only the hot region's buffer
// (reported via the merge event), keep the cold rows buffered yet visible,
// and Flush must still fold everything.
func TestLivePartialMerge(t *testing.T) {
	st := testutil.SmallTaxi(6000, 41)
	work := testutil.SkewedQueries(st, 100, 42)
	idx := core.Build(st, work, smallConfig())

	var mu sync.Mutex
	var merges []Event
	s := Open(idx, nil, Config{
		MergeThreshold:       200,
		RegionMergeThreshold: 100,
		OnEvent: func(ev Event) {
			if ev.Kind == EventMerge {
				mu.Lock()
				merges = append(merges, ev)
				mu.Unlock()
			}
			if ev.Kind == EventError {
				t.Errorf("maintenance error: %v", ev.Err)
			}
		},
	})
	defer s.Close()

	// Hot: 190 rows in one spot of the domain; cold: 20 spread rows. The
	// global threshold (200) trips with only the hot region over the
	// per-region bar (100).
	hot := make([][]int64, 190)
	for i := range hot {
		hot[i] = []int64{9_500_000 + int64(i), 9_500_050, 7, 7, 7}
	}
	if err := s.InsertBatch(hot); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Insert([]int64{int64(i) * 40_000, int64(i)*40_000 + 60, 3, 3, 3}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Merges == 0 {
		if time.Now().After(deadline) {
			t.Fatal("threshold merge did not run")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	first := merges[0]
	mu.Unlock()
	if first.MergedRows == 0 || first.MergedRows >= 210 {
		t.Errorf("partial merge folded %d rows, want some but not all of 210", first.MergedRows)
	}
	if got := s.Stats().BufferedRows; got == 0 || got >= 210 {
		t.Errorf("buffered = %d after partial merge, want the cold remainder", got)
	}
	// Both folded and still-buffered rows stay visible.
	if got := s.Execute(query.NewCount(query.Filter{Dim: 0, Lo: 9_500_000, Hi: 9_500_189})).Count; got != 190 {
		t.Errorf("hot rows visible = %d, want 190", got)
	}
	if got := s.Execute(query.NewCount(query.Filter{Dim: 3, Lo: 3, Hi: 3})).Count; got != 20 {
		t.Errorf("cold rows visible = %d, want 20", got)
	}

	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().BufferedRows; got != 0 {
		t.Errorf("buffered = %d after Flush, want 0", got)
	}
	if got := s.Execute(query.NewCount(query.Filter{Dim: 3, Lo: 3, Hi: 3})).Count; got != 20 {
		t.Errorf("cold rows visible after Flush = %d, want 20", got)
	}
}

// TestLiveEventsAndFlushNoBuffered covers the event hook and Flush
// fast-path (no buffered rows → no new epoch).
func TestLiveEventsAndFlushNoBuffered(t *testing.T) {
	st := testutil.SmallTaxi(4000, 31)
	work := testutil.SkewedQueries(st, 80, 32)
	idx := core.Build(st, work, smallConfig())

	var mu sync.Mutex
	var events []Event
	s := Open(idx, work, Config{
		MergeThreshold: 100,
		OnEvent: func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	defer s.Close()

	epoch := s.Epoch()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != epoch {
		t.Errorf("empty Flush advanced the epoch: %d -> %d", epoch, got)
	}
	for i := 0; i < 120; i++ {
		if err := s.Insert([]int64{9_400_000 + int64(i), 9_400_050, 5, 5, 5}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Merges == 0 {
		if time.Now().After(deadline) {
			t.Fatal("threshold merge did not run")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	var sawMerge bool
	for _, ev := range events {
		if ev.Kind == EventMerge && ev.MergedRows > 0 && ev.Epoch > epoch {
			sawMerge = true
		}
		if ev.Kind == EventError {
			t.Errorf("maintenance error: %v", ev.Err)
		}
	}
	if !sawMerge {
		t.Error("no merge event emitted")
	}
}

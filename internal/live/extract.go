package live

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
)

// Range extraction: the live half of an online shard migration. A caller
// (the sharded rebalancer) prepares an extraction off the hot path — the
// store keeps serving and ingesting while the successor index is built —
// then commits it inside its own critical section, atomically removing the
// moving rows from this store so it can drain them into another store's
// ingest path. Maintenance (merges, re-optimizations, snapshots) stays
// paused from Prepare until Release, because the migration protocol owns
// what this store's snapshot file is allowed to contain until the move is
// fully persisted.

// Extraction is a prepared range split of a live store's rows: a successor
// index holding every row outside [lo, hi] on dim, plus the rows inside.
// Between PrepareExtract and Release the store's maintenance is paused;
// reads and writes proceed normally.
type Extraction struct {
	s         *Store
	v         *version
	remaining *core.Tsunami
	moved     [][]int64
	dim       int
	lo, hi    int64

	committed bool
	release   sync.Once
}

// PrepareExtract builds, off the hot path, a successor index holding every
// row of the current epoch outside [lo, hi] (inclusive) on dim, and
// collects the rows inside — from the clustered layout and the delta
// buffers alike (surviving buffered rows are folded into the successor,
// like a merge). The store keeps serving reads and accepting writes while
// the rebuild runs; rows ingested in the meantime are accounted for by
// Commit. Maintenance is paused until Release is called.
func (s *Store) PrepareExtract(dim int, lo, hi int64) (*Extraction, error) {
	s.maintMu.Lock()
	s.mu.Lock()
	closed := s.closed
	v := s.cur.Load()
	s.mu.Unlock()
	if closed {
		s.maintMu.Unlock()
		return nil, errClosed
	}
	remaining, moved, err := v.idx.SplitRange(dim, lo, hi)
	if err != nil {
		s.maintMu.Unlock()
		return nil, fmt.Errorf("live: extract: %w", err)
	}
	return &Extraction{s: s, v: v, remaining: remaining, moved: moved, dim: dim, lo: lo, hi: hi}, nil
}

// Commit publishes the prepared remainder as the store's next epoch,
// replaying every row ingested since PrepareExtract (in-range tail rows
// join the moved set instead), and returns all moved rows. The critical
// section is proportional to the rows ingested during preparation, not to
// the data. After Commit the store no longer serves the moved rows; the
// caller is responsible for landing them somewhere before making the
// removal observable to its own readers. Maintenance stays paused until
// Release.
func (e *Extraction) Commit() ([][]int64, error) {
	s := e.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errClosed
	}
	if e.committed {
		return nil, errors.New("live: extraction committed twice")
	}
	tail := s.log[e.v.logLen:]
	kept := make([][]int64, 0, len(tail))
	for _, row := range tail {
		if row[e.dim] >= e.lo && row[e.dim] <= e.hi {
			e.moved = append(e.moved, row)
			continue
		}
		if err := e.remaining.Insert(row); err != nil {
			return nil, fmt.Errorf("live: extract replay: %w", err)
		}
		kept = append(kept, row)
	}
	s.log = kept
	s.publishLocked(e.remaining, len(s.log))
	e.committed = true
	return e.moved, nil
}

// Release resumes the store's maintenance. It must be called exactly once
// per prepared extraction — after Commit, or instead of it to abort (an
// aborted extraction leaves the store untouched). Safe to call from a
// defer alongside an explicit call.
func (e *Extraction) Release() {
	e.release.Do(e.s.maintMu.Unlock)
}

// HoldMaintenance waits for any in-flight maintenance operation (merge,
// re-optimization, snapshot — including the periodic snapshot loop and
// Flush) to finish and keeps further ones paused until the returned
// release func is called. Reads and writes proceed normally. The sharded
// rebalancer holds the destination shard's maintenance across a migration
// so the shard's snapshot file cannot change under the crash protocol.
func (s *Store) HoldMaintenance() (release func()) {
	s.maintMu.Lock()
	var once sync.Once
	return func() { once.Do(s.maintMu.Unlock) }
}

package live

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/testutil"
)

// TestExtractionMovesRangeWithConcurrentIngest drives the migration
// primitive the way the sharded rebalancer does: prepare an extraction
// while writers keep inserting (into and out of the moving range), commit,
// and verify the store plus the moved set together hold every row exactly
// once.
func TestExtractionMovesRangeWithConcurrentIngest(t *testing.T) {
	st := testutil.SmallTaxi(6000, 301)
	work := testutil.SkewedQueries(st, 100, 302)
	idx := core.Build(st, work, smallConfig())
	s := Open(idx, nil, Config{MergeThreshold: 1 << 20})
	defer s.Close()

	lo, hi := st.MinMax(0)
	cut := lo + (hi-lo)/2

	ext, err := s.PrepareExtract(0, cut, hi)
	if err != nil {
		t.Fatal(err)
	}

	// Rows ingested after Prepare: half inside the moving range, half
	// outside. Commit must route them accordingly.
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				v := lo + int64(i)      // outside the moving range
				if (i+w)%2 == 0 {
					v = cut + int64(i) // inside
				}
				if err := s.Insert([]int64{v, v + 10, 1, 1, 1}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	totalBefore := s.Execute(query.NewCount()).Count
	moved, err := ext.Commit()
	ext.Release()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range moved {
		if row[0] < cut || row[0] > hi {
			t.Fatalf("moved row %d has dim0=%d outside [%d, %d]", i, row[0], cut, hi)
		}
	}
	after := s.Execute(query.NewCount()).Count
	if after+uint64(len(moved)) != totalBefore {
		t.Fatalf("rows lost or duplicated: %d remaining + %d moved != %d before",
			after, len(moved), totalBefore)
	}
	if got := s.Execute(query.NewCount(query.Filter{Dim: 0, Lo: cut, Hi: hi})).Count; got != 0 {
		t.Fatalf("store still serves %d in-range rows after commit", got)
	}

	// The store resumes normal life: maintenance unblocked, ingest works.
	if err := s.Insert([]int64{cut + 5, cut + 15, 2, 2, 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Execute(query.NewCount(query.Filter{Dim: 0, Lo: cut, Hi: hi})).Count; got != 1 {
		t.Fatalf("post-extract insert not visible after flush: %d, want 1", got)
	}
}

// TestExtractionAbort checks Release without Commit leaves the store
// untouched and maintenance unblocked.
func TestExtractionAbort(t *testing.T) {
	st := testutil.SmallTaxi(3000, 311)
	idx := core.Build(st, testutil.SkewedQueries(st, 60, 312), smallConfig())
	s := Open(idx, nil, Config{MergeThreshold: 1 << 20})
	defer s.Close()

	before := s.Execute(query.NewCount()).Count
	epoch := s.Epoch()
	lo, hi := st.MinMax(0)
	ext, err := s.PrepareExtract(0, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	ext.Release()
	ext.Release() // idempotent
	if got := s.Execute(query.NewCount()).Count; got != before {
		t.Fatalf("aborted extraction changed the store: %d, want %d", got, before)
	}
	if got := s.Epoch(); got != epoch {
		t.Fatalf("aborted extraction advanced the epoch: %d -> %d", epoch, got)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err) // would deadlock if Release leaked the maintenance lock
	}

	// HoldMaintenance pauses and resumes cleanly too.
	release := s.HoldMaintenance()
	release()
	release()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

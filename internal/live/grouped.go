package live

import (
	"fmt"
	"time"

	"repro/internal/colstore"
	"repro/internal/obs"
	"repro/internal/query"
)

// ExecuteGrouped answers one grouped aggregate (GROUP BY) against the
// current epoch with the same serving discipline as Execute: lock-free
// epoch load, result-cache probe, metrics/workload recording, and the
// shift-detector feed. Buffered-but-unmerged rows are folded in by the
// core layer's delta scan, so grouped results see exactly the rows a
// flat aggregate at the same epoch would.
func (s *Store) ExecuteGrouped(q query.Query) colstore.GroupedResult {
	v := s.cur.Load()
	s.queries.Add(1)
	if res, ok := s.cacheGetGrouped(v, q); ok {
		return res
	}
	m, w := s.metrics, s.cfg.Workload
	if m == nil && w == nil {
		res := v.idx.ExecuteGrouped(q)
		s.cachePutGrouped(v, q, res)
		s.observeAsync(q, res.TotalCount(), v)
		return res
	}
	start := time.Now()
	res := v.idx.ExecuteGrouped(q)
	d := time.Since(start)
	if m != nil {
		m.qm.Observe(d, res.PointsScanned, res.BytesTouched)
	}
	w.Record(q, d, res.TotalCount(), res.PointsScanned, res.BytesTouched)
	s.cachePutGrouped(v, q, res)
	s.observeAsync(q, res.TotalCount(), v)
	return res
}

// ExecuteGroupedParallelOn is ExecuteGrouped with the index's intra-query
// parallelism (see core.Tsunami.ExecuteGroupedParallelOn), so grouped
// queries can sit behind an Executor with IntraQuery enabled.
func (s *Store) ExecuteGroupedParallelOn(q query.Query, workers int, submit func(task func())) colstore.GroupedResult {
	v := s.cur.Load()
	s.queries.Add(1)
	if res, ok := s.cacheGetGrouped(v, q); ok {
		return res
	}
	m, w := s.metrics, s.cfg.Workload
	if m == nil && w == nil {
		res := v.idx.ExecuteGroupedParallelOn(q, workers, submit)
		s.cachePutGrouped(v, q, res)
		s.observeAsync(q, res.TotalCount(), v)
		return res
	}
	start := time.Now()
	res := v.idx.ExecuteGroupedParallelOn(q, workers, submit)
	d := time.Since(start)
	if m != nil {
		m.qm.Observe(d, res.PointsScanned, res.BytesTouched)
	}
	w.Record(q, d, res.TotalCount(), res.PointsScanned, res.BytesTouched)
	s.cachePutGrouped(v, q, res)
	s.observeAsync(q, res.TotalCount(), v)
	return res
}

// cacheGetGrouped serves a grouped query from the result cache at v's
// epoch, with the same accounting contract as cacheGet: a hit is
// recorded into metrics and workload stats at zero rows/bytes scanned
// and still feeds the shift detector.
func (s *Store) cacheGetGrouped(v *version, q query.Query) (colstore.GroupedResult, bool) {
	if s.cache == nil {
		return colstore.GroupedResult{}, false
	}
	start := time.Now()
	res, ok := s.cache.GetGrouped(v.epoch, nil, q)
	if !ok {
		s.cacheMisses.Add(1)
		return colstore.GroupedResult{}, false
	}
	s.cacheHits.Add(1)
	if m, w := s.metrics, s.cfg.Workload; m != nil || w != nil {
		d := time.Since(start)
		if m != nil {
			m.qm.Observe(d, 0, 0)
		}
		w.Record(q, d, res.TotalCount(), 0, 0)
	}
	s.observeAsync(q, res.TotalCount(), v)
	return res, true
}

// cachePutGrouped stores a freshly computed grouped result under v's
// epoch; same correctness argument as cachePut (v.idx is immutable, so
// the entry can be unreachable but never wrong).
func (s *Store) cachePutGrouped(v *version, q query.Query, res colstore.GroupedResult) {
	if s.cache == nil {
		return
	}
	if s.cache.PutGrouped(v.epoch, nil, q, res) {
		s.cacheEvictions.Add(1)
	}
}

// ExecuteGroupedTrace answers q exactly like ExecuteGrouped while
// recording an explain-analyze trace of the underlying grouped
// execution, prefixed with the epoch the query was served against (the
// same framing as ExecuteTrace). Query accounting is identical to
// ExecuteGrouped, so traced queries do not skew the aggregates they are
// debugging.
func (s *Store) ExecuteGroupedTrace(q query.Query) (colstore.GroupedResult, *obs.QueryTrace) {
	v := s.cur.Load()
	s.queries.Add(1)
	start := time.Now()
	res, tr := v.idx.ExecuteGroupedTrace(q)
	d := time.Since(start)
	if m := s.metrics; m != nil {
		m.qm.Observe(d, res.PointsScanned, res.BytesTouched)
	}
	s.cfg.Workload.Record(q, d, res.TotalCount(), res.PointsScanned, res.BytesTouched)
	s.observeAsync(q, res.TotalCount(), v)
	tr.Stages = append([]obs.TraceStage{{
		Name:   "epoch",
		Detail: fmt.Sprintf("serving epoch %d (%d buffered rows)", v.epoch, v.idx.NumBuffered()),
	}}, tr.Stages...)
	return res, tr
}

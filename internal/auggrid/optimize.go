package auggrid

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/colstore"
	"repro/internal/query"
)

// OptimizeConfig controls layout search.
type OptimizeConfig struct {
	Eval EvalConfig
	// MaxCells caps the lookup-table size (default 1<<20).
	MaxCells int
	// MaxIters bounds AGD's outer loop (default 6).
	MaxIters int
	// CellsPerBlock sets the initial cell budget to roughly one cell per
	// this many points (default 1024).
	CellsPerBlock int
	// UseSortDim enables a within-cell sort dimension chosen as the most
	// selective filtered dim (Flood's sort dimension).
	UseSortDim bool
	// FMErrFrac is the functional-mapping initialization threshold: map X
	// onto Y when the regression error band is below this fraction of Y's
	// domain (paper default 0.10, §5.3.2).
	FMErrFrac float64
	// CCDFEmptyFrac is the conditional-CDF initialization threshold: use
	// CDF(X|Y) when independent partitioning would leave more than this
	// fraction of XY-hyperplane cells empty (paper default 0.25, §5.3.2).
	CCDFEmptyFrac float64
	// OutlierFrac enables outlier-robust functional mappings (§8): the
	// mapping error band is trimmed to exclude up to this fraction of
	// rows, which are diverted to a scanned-always buffer. Zero (the
	// default) keeps the paper's base design.
	OutlierFrac float64
	// Seed drives stochastic pieces (black box); default 1.
	Seed int64
}

func (c *OptimizeConfig) fill() {
	c.Eval.fill()
	if c.MaxCells <= 0 {
		c.MaxCells = 1 << 20
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 6
	}
	if c.CellsPerBlock <= 0 {
		c.CellsPerBlock = 1024
	}
	if c.FMErrFrac == 0 {
		c.FMErrFrac = 0.10
	}
	if c.CCDFEmptyFrac == 0 {
		c.CCDFEmptyFrac = 0.25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Optimizer is a named layout-search strategy, so experiment code can
// compare AGD against the paper's three alternatives (Fig 12b).
type Optimizer struct {
	// Name matches the paper: "AGD", "GD", "BlackBox", "AGD-NI".
	Name string
	fn   func(*searchCtx) Layout
}

// AGD is Adaptive Gradient Descent (§5.3.2): heuristic initialization, then
// alternating gradient steps over P and one-hop local search over skeletons.
func AGD() Optimizer { return Optimizer{Name: "AGD", fn: runAGD} }

// GD keeps the initial skeleton fixed and only descends over P.
func GD() Optimizer { return Optimizer{Name: "GD", fn: runGD} }

// BlackBox is a gradient-free joint search (simulated annealing standing in
// for SciPy basin hopping, 50 iterations as in §6.6).
func BlackBox() Optimizer { return Optimizer{Name: "BlackBox", fn: runBlackBox} }

// AGDNI is AGD from the naive all-Independent initial skeleton.
func AGDNI() Optimizer { return Optimizer{Name: "AGD-NI", fn: runAGDNI} }

// searchCtx carries everything a search strategy needs.
type searchCtx struct {
	st      *colstore.Store
	rows    []int
	queries []query.Query
	eval    *Evaluator
	cfg     OptimizeConfig
	rng     *rand.Rand
	d       int
	sortDim int
	// avgSel[j] is the average selectivity of filters over dim j (1 if
	// never filtered); filtered[j] reports whether any query filters j.
	avgSel   []float64
	filtered []bool
}

// Optimize searches for a low-cost layout for the rows of st under the
// query workload, using the given strategy. It returns the layout and its
// predicted cost.
func Optimize(st *colstore.Store, rows []int, queries []query.Query, opt Optimizer, cfg OptimizeConfig) (Layout, float64) {
	cfg.fill()
	// Scale the cell budget with the region: a lookup table larger than
	// ~1/32 of the rows only adds overhead. (Tab 4 ratios are far below
	// this: Flood uses one cell per ~220-700 points.)
	if budget := len(rows) / 32; budget < cfg.MaxCells {
		if budget < 16 {
			budget = 16
		}
		cfg.MaxCells = budget
	}
	ctx := newSearchCtx(st, rows, queries, cfg)
	l := opt.fn(ctx)
	return l, ctx.eval.Cost(l)
}

// NewEvaluatorFor exposes the evaluator used by Optimize so experiments can
// report predicted costs (Fig 12b).
func NewEvaluatorFor(st *colstore.Store, rows []int, queries []query.Query, cfg OptimizeConfig) *Evaluator {
	cfg.fill()
	return NewEvaluator(st, rows, queries, cfg.Eval)
}

func newSearchCtx(st *colstore.Store, rows []int, queries []query.Query, cfg OptimizeConfig) *searchCtx {
	ctx := &searchCtx{
		st:      st,
		rows:    rows,
		queries: queries,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		d:       st.NumDims(),
		sortDim: -1,
	}
	ctx.eval = NewEvaluator(st, rows, queries, cfg.Eval)
	ctx.computeSelectivities()
	if cfg.UseSortDim {
		ctx.sortDim = ctx.pickSortDim()
	}
	return ctx
}

// computeSelectivities estimates per-dimension filter selectivity on the
// evaluation sample.
func (c *searchCtx) computeSelectivities() {
	c.avgSel = make([]float64, c.d)
	c.filtered = make([]bool, c.d)
	cnt := make([]int, c.d)
	sum := make([]float64, c.d)
	n := c.eval.sample.NumRows()
	for _, q := range c.eval.queries {
		for _, f := range q.Filters {
			col := c.eval.sample.Column(f.Dim)
			match := 0
			for _, v := range col {
				if v >= f.Lo && v <= f.Hi {
					match++
				}
			}
			sel := 1.0
			if n > 0 {
				sel = float64(match) / float64(n)
			}
			sum[f.Dim] += sel
			cnt[f.Dim]++
			c.filtered[f.Dim] = true
		}
	}
	for j := 0; j < c.d; j++ {
		if cnt[j] > 0 {
			c.avgSel[j] = sum[j] / float64(cnt[j])
		} else {
			c.avgSel[j] = 1.0
		}
	}
}

// pickSortDim returns the most selective filtered dimension.
func (c *searchCtx) pickSortDim() int {
	best, bestSel := -1, 2.0
	for j := 0; j < c.d; j++ {
		if c.filtered[j] && c.avgSel[j] < bestSel {
			best, bestSel = j, c.avgSel[j]
		}
	}
	return best
}

// newLayout builds a layout bound to the search context's sort dim and
// outlier-buffer setting.
func (c *searchCtx) newLayout(s Skeleton, p []int) Layout {
	l := NewLayout(s, p, c.sortDim)
	l.OutlierFrac = c.cfg.OutlierFrac
	return l
}

// ---------------------------------------------------------------------------
// Initialization heuristics (§5.3.2 step 1).

// heuristicSkeleton makes the paper's best-guess initial skeleton: for each
// dimension X, map onto Y if the regression error band is under FMErrFrac of
// Y's domain; else partition with CDF(X|Y) if independent partitioning would
// leave more than CCDFEmptyFrac of the XY hyperplane empty; else partition
// independently.
func (c *searchCtx) heuristicSkeleton() Skeleton {
	s := IndependentSkeleton(c.d)
	sample := c.eval.sample

	type fmCand struct {
		x, y   int
		relErr float64
	}
	var fms []fmCand
	for x := 0; x < c.d; x++ {
		if x == c.sortDim {
			continue
		}
		for y := 0; y < c.d; y++ {
			if y == x || y == c.sortDim {
				continue
			}
			// With robust mappings enabled, eligibility uses the trimmed
			// error band (§8): a few outliers no longer disqualify a pair.
			lr, _ := robustFit(sample.Column(x), sample.Column(y), c.cfg.OutlierFrac)
			lo, hi := minMax(sample.Column(y))
			domain := float64(hi - lo)
			if domain <= 0 {
				continue
			}
			rel := lr.ErrSpan() / domain
			if rel < c.cfg.FMErrFrac {
				fms = append(fms, fmCand{x: x, y: y, relErr: rel})
			}
		}
	}
	// Prefer removing dims the workload constrains least: mapping an
	// unfiltered dim onto a filtered one is free, while removing a
	// selectively-filtered dim forces its filters through the mapping
	// error. Tie-break by mapping tightness.
	weight := func(j int) float64 {
		if !c.filtered[j] {
			return 0
		}
		return -math.Log2(math.Max(c.avgSel[j], 1e-6))
	}
	sort.Slice(fms, func(a, b int) bool {
		wa, wb := weight(fms[a].x), weight(fms[b].x)
		if wa != wb {
			return wa < wb
		}
		return fms[a].relErr < fms[b].relErr
	})
	isTarget := make([]bool, c.d)
	for _, f := range fms {
		if s[f.x].Kind != Independent || isTarget[f.x] {
			continue // already mapped, or someone maps onto it
		}
		if s[f.y].Kind == Mapped {
			continue // target cannot be mapped
		}
		s[f.x] = DimStrategy{Kind: Mapped, Other: f.y}
		isTarget[f.y] = true
	}

	// Conditional CDFs for remaining independent dims.
	type ccCand struct {
		x, y  int
		empty float64
	}
	var ccs []ccCand
	for x := 0; x < c.d; x++ {
		if s[x].Kind != Independent || x == c.sortDim || isTarget[x] {
			continue
		}
		for y := 0; y < c.d; y++ {
			if y == x || y == c.sortDim || s[y].Kind != Independent {
				continue
			}
			e := emptyCellFraction(sample.Column(x), sample.Column(y), 16)
			if e > c.cfg.CCDFEmptyFrac {
				ccs = append(ccs, ccCand{x: x, y: y, empty: e})
			}
		}
	}
	sort.Slice(ccs, func(a, b int) bool { return ccs[a].empty > ccs[b].empty })
	isBase := make([]bool, c.d)
	for _, cc := range ccs {
		if s[cc.x].Kind != Independent || isBase[cc.x] {
			continue // dim already dependent, or it is someone's base
		}
		if s[cc.y].Kind != Independent {
			continue // base must stay independent
		}
		s[cc.x] = DimStrategy{Kind: Conditional, Other: cc.y}
		isBase[cc.y] = true
	}
	return s
}

// emptyCellFraction imposes a p×p equi-depth grid over dims (x, y) of the
// sample and returns the fraction of empty cells — the §5.3.2 signal for
// conditional CDFs.
func emptyCellFraction(xs, ys []int64, p int) float64 {
	if len(xs) == 0 {
		return 0
	}
	bx := equiDepthBounds(xs, p)
	by := equiDepthBounds(ys, p)
	occupied := make([]bool, p*p)
	for i := range xs {
		ix := clampPart(searchBounds(bx, xs[i]), p)
		iy := clampPart(searchBounds(by, ys[i]), p)
		occupied[ix*p+iy] = true
	}
	full := 0
	for _, o := range occupied {
		if o {
			full++
		}
	}
	return 1 - float64(full)/float64(p*p)
}

func equiDepthBounds(vals []int64, p int) []int64 {
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	b := make([]int64, p+1)
	for i := 0; i <= p; i++ {
		idx := i * len(sorted) / p
		if idx >= len(sorted) {
			b[i] = sorted[len(sorted)-1] + 1
		} else {
			b[i] = sorted[idx]
		}
	}
	for i := 1; i <= p; i++ {
		if b[i] < b[i-1] {
			b[i] = b[i-1]
		}
	}
	return b
}

func searchBounds(b []int64, v int64) int {
	return sort.Search(len(b), func(i int) bool { return b[i] > v }) - 1
}

func minMax(vals []int64) (int64, int64) {
	if len(vals) == 0 {
		return 0, 0
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// effectiveFiltered reports which grid dims the workload constrains under
// skeleton s: a dim is effectively filtered if queries filter it directly
// or if a filtered dim is mapped onto it (the functional mapping rewrites
// those filters onto the target, which therefore needs partitions).
func (c *searchCtx) effectiveFiltered(s Skeleton) []bool {
	out := append([]bool(nil), c.filtered...)
	for m, st := range s {
		if st.Kind == Mapped && c.filtered[m] {
			out[st.Other] = true
		}
	}
	return out
}

// effectiveSel returns the selectivity weight of dim j under s, taking the
// tightest of its own filters and any filters mapped onto it.
func (c *searchCtx) effectiveSel(s Skeleton, j int) float64 {
	sel := c.avgSel[j]
	for m, st := range s {
		if st.Kind == Mapped && st.Other == j && c.filtered[m] && c.avgSel[m] < sel {
			sel = c.avgSel[m]
		}
	}
	return sel
}

// initialP distributes a cell budget across grid dims proportionally to how
// selective the workload is in each (§5.3.2: "initialize P proportionally
// to the average query filter selectivity in each grid dimension").
func (c *searchCtx) initialP(s Skeleton) []int {
	p := make([]int, c.d)
	for j := range p {
		p[j] = 1
	}
	budget := float64(len(c.rows)) / float64(c.cfg.CellsPerBlock)
	if budget < 16 {
		budget = 16
	}
	if budget > float64(c.cfg.MaxCells) {
		budget = float64(c.cfg.MaxCells)
	}
	logBudget := math.Log2(budget)

	layout := NewLayout(s, p, c.sortDim)
	gd := layout.GridDims()
	eff := c.effectiveFiltered(s)
	weights := make([]float64, 0, len(gd))
	dims := make([]int, 0, len(gd))
	var wsum float64
	for _, j := range gd {
		if !eff[j] {
			continue // never-constrained dims keep one partition
		}
		w := -math.Log2(math.Max(c.effectiveSel(s, j), 1e-6))
		if w < 0.1 {
			w = 0.1
		}
		weights = append(weights, w)
		dims = append(dims, j)
		wsum += w
	}
	if wsum == 0 {
		return p
	}
	for i, j := range dims {
		p[j] = int(math.Round(math.Exp2(logBudget * weights[i] / wsum)))
		if p[j] < 1 {
			p[j] = 1
		}
	}
	return p
}

// ---------------------------------------------------------------------------
// Search strategies.

func runAGD(c *searchCtx) Layout {
	s := c.heuristicSkeleton()
	return c.agdLoop(s)
}

func runAGDNI(c *searchCtx) Layout {
	return c.agdLoop(IndependentSkeleton(c.d))
}

func runGD(c *searchCtx) Layout {
	s := c.heuristicSkeleton()
	l := c.newLayout(s, c.initialP(s))
	l, _ = c.gdStep(l, c.eval.Cost(l))
	return l
}

// agdLoop alternates gradient steps over P with one-hop skeleton search
// (§5.3.2 steps 2–4).
func (c *searchCtx) agdLoop(s Skeleton) Layout {
	l := c.newLayout(s, c.initialP(s))
	cost := c.eval.Cost(l)
	for iter := 0; iter < c.cfg.MaxIters; iter++ {
		improved := false
		l2, cost2 := c.gdStep(l, cost)
		if cost2 < cost {
			l, cost = l2, cost2
			improved = true
		}
		l3, cost3 := c.bestSkeletonHop(l)
		if cost3 < cost {
			l, cost = l3, cost3
			improved = true
		}
		if !improved {
			break
		}
	}
	return l
}

// gdStep performs coordinate descent over P with multiplicative moves,
// exploiting that the cost model is smooth in P (§5.3.2 step 2).
func (c *searchCtx) gdStep(l Layout, cost float64) (Layout, float64) {
	factors := []float64{2, 0.5, 1.3, 0.77}
	eff := c.effectiveFiltered(l.Skeleton)
	for pass := 0; pass < 8; pass++ {
		improved := false
		for _, j := range l.GridDims() {
			if !eff[j] && l.P[j] == 1 {
				continue
			}
			for _, f := range factors {
				np := int(math.Round(float64(l.P[j]) * f))
				if np == l.P[j] {
					np = l.P[j] + sign(f-1)
				}
				if np < 1 {
					continue
				}
				cand := l.Clone()
				cand.P[j] = np
				cand.normalize()
				if cand.NumCells() > c.cfg.MaxCells {
					continue
				}
				if cc := c.eval.Cost(cand); cc < cost {
					l, cost = cand, cc
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return l, cost
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// bestSkeletonHop evaluates every skeleton one hop away (changing the
// strategy of a single dimension, §5.3.2 step 3) and returns the cheapest.
func (c *searchCtx) bestSkeletonHop(l Layout) (Layout, float64) {
	best := l
	bestCost := c.eval.Cost(l)
	for j := 0; j < c.d; j++ {
		if j == c.sortDim {
			continue
		}
		for _, alt := range c.hopsForDim(l.Skeleton, j) {
			cand := l.Clone()
			cand.Skeleton[j] = alt
			if alt.Kind != Mapped && cand.P[j] <= 1 && c.effectiveFiltered(cand.Skeleton)[j] {
				cand.P[j] = 4 // give a newly un-mapped dim some partitions
			}
			cand.normalize()
			if cand.Validate() != nil || cand.NumCells() > c.cfg.MaxCells {
				continue
			}
			if cc := c.eval.Cost(cand); cc < bestCost {
				best, bestCost = cand, cc
			}
		}
	}
	return best, bestCost
}

// hopsForDim lists alternative strategies for dim j consistent with the
// rest of the skeleton.
func (c *searchCtx) hopsForDim(s Skeleton, j int) []DimStrategy {
	var out []DimStrategy
	cur := s[j]
	// Dim j must not be referenced by others if it would stop being a valid
	// base/target.
	referenced := false
	for i, st := range s {
		if i != j && st.Kind != Independent && st.Other == j {
			referenced = true
		}
	}
	if cur.Kind != Independent {
		out = append(out, DimStrategy{Kind: Independent, Other: -1})
	}
	if referenced {
		// Bases/targets can only become Independent (handled above) —
		// anything else would break the referencing dim.
		return out
	}
	for o := 0; o < c.d; o++ {
		if o == j || o == c.sortDim {
			continue
		}
		if s[o].Kind != Mapped && (cur.Kind != Mapped || cur.Other != o) {
			out = append(out, DimStrategy{Kind: Mapped, Other: o})
		}
		if s[o].Kind == Independent && (cur.Kind != Conditional || cur.Other != o) {
			out = append(out, DimStrategy{Kind: Conditional, Other: o})
		}
	}
	return out
}

// runBlackBox is the gradient-free baseline of §6.6: simulated annealing
// over (S, P) from the heuristic start, 50 iterations.
func runBlackBox(c *searchCtx) Layout {
	s := c.heuristicSkeleton()
	cur := c.newLayout(s, c.initialP(s))
	curCost := c.eval.Cost(cur)
	best, bestCost := cur, curCost
	temp := curCost * 0.3
	for iter := 0; iter < 50; iter++ {
		cand := c.randomNeighbor(cur)
		candCost := c.eval.Cost(cand)
		accept := candCost < curCost
		if !accept && temp > 0 {
			accept = c.rng.Float64() < math.Exp((curCost-candCost)/temp)
		}
		if accept {
			cur, curCost = cand, candCost
			if curCost < bestCost {
				best, bestCost = cur, curCost
			}
		}
		temp *= 0.93
	}
	return best
}

func (c *searchCtx) randomNeighbor(l Layout) Layout {
	for attempt := 0; attempt < 32; attempt++ {
		cand := l.Clone()
		if c.rng.Intn(2) == 0 {
			// Perturb a partition count.
			gd := cand.GridDims()
			if len(gd) == 0 {
				continue
			}
			j := gd[c.rng.Intn(len(gd))]
			f := []float64{0.5, 0.8, 1.25, 2}[c.rng.Intn(4)]
			np := int(math.Round(float64(cand.P[j]) * f))
			if np < 1 {
				np = 1
			}
			cand.P[j] = np
		} else {
			// Change a random dim's strategy.
			j := c.rng.Intn(c.d)
			if j == c.sortDim {
				continue
			}
			hops := c.hopsForDim(cand.Skeleton, j)
			if len(hops) == 0 {
				continue
			}
			cand.Skeleton[j] = hops[c.rng.Intn(len(hops))]
			if cand.Skeleton[j].Kind != Mapped && cand.P[j] <= 1 && c.filtered[j] {
				cand.P[j] = 4
			}
		}
		cand.normalize()
		if cand.Validate() == nil && cand.NumCells() <= c.cfg.MaxCells {
			return cand
		}
	}
	return l.Clone()
}

package auggrid

import "sync"

// ExecContext holds all per-query scratch a Grid needs to answer a query:
// the effective-filter bounds produced by functional-mapping transformation,
// the per-grid-dim partition ranges and indices used by cell enumeration,
// and the run buffer runs are emitted into.
//
// A built Grid is immutable, so any number of goroutines may Execute against
// the same Grid as long as each passes its own ExecContext (or nil, which
// borrows one from a shared pool). Contexts are plain reusable buffers:
// reusing one across sequential queries amortizes all per-query allocation,
// but a single context must never be used by two queries at once.
type ExecContext struct {
	effLo, effHi []int64
	ranges       []dimRange
	idx          []int
	runs         []run
	phys         []PhysRange
}

// NewExecContext returns an empty context. Buffers grow on first use and are
// retained across queries.
func NewExecContext() *ExecContext { return &ExecContext{} }

// effBounds returns the context's effective-filter arrays sized for d dims.
func (ctx *ExecContext) effBounds(d int) ([]int64, []int64) {
	if cap(ctx.effLo) < d {
		ctx.effLo = make([]int64, d)
		ctx.effHi = make([]int64, d)
	}
	return ctx.effLo[:d], ctx.effHi[:d]
}

// dimScratch returns the context's range and index arrays sized for nd grid
// dims.
func (ctx *ExecContext) dimScratch(nd int) ([]dimRange, []int) {
	if cap(ctx.ranges) < nd {
		ctx.ranges = make([]dimRange, nd)
		ctx.idx = make([]int, nd)
	}
	return ctx.ranges[:nd], ctx.idx[:nd]
}

// ctxPool serves Execute calls that pass a nil context. Pooling keeps the
// zero-setup path allocation-free in steady state without forcing every
// caller to manage contexts explicitly.
var ctxPool = sync.Pool{New: func() any { return NewExecContext() }}

// GetExecContext borrows a context from the package pool. Callers that issue
// many queries (worker loops, region-parallel execution) should borrow once,
// reuse it per query, and return it with PutExecContext when done.
func GetExecContext() *ExecContext { return ctxPool.Get().(*ExecContext) }

// PutExecContext returns a borrowed context to the pool.
func PutExecContext(ctx *ExecContext) { ctxPool.Put(ctx) }

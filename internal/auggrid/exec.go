package auggrid

import (
	"math"
	"sort"

	"repro/internal/colstore"
	"repro/internal/query"
)

// ExecStats reports the cost-model features observed while executing a
// query (§5.3.1): the number of physical cell ranges visited (each a lookup
// plus likely cache miss) and the number of cells those ranges covered.
type ExecStats struct {
	CellRanges   int
	CellsVisited int
}

// run is a maximal range of consecutive cell ids scheduled for scanning.
type run struct {
	start, end int // inclusive cell ids
	exact      bool
}

// PhysRange is one contiguous physical row range [Start, End) a query's
// execution scans, with the exactness flag colstore.ScanRange consumes.
// Ranges are absolute positions in the finalized store, so callers may
// scan them directly — in any order, or split across goroutines — and
// merge the partial ScanResults.
type PhysRange struct {
	Start, End int
	Exact      bool
}

// Execute answers q against the grid's physical range. A built Grid is
// immutable; all per-query state lives in ctx, so any number of goroutines
// may Execute concurrently against the same Grid as long as each uses its
// own ExecContext. A nil ctx borrows one from the package pool.
func (g *Grid) Execute(q query.Query, ctx *ExecContext) (colstore.ScanResult, ExecStats) {
	if ctx == nil {
		ctx = GetExecContext()
		defer PutExecContext(ctx)
	}
	var res colstore.ScanResult
	var st ExecStats
	ctx.phys = g.planInto(q, ctx, ctx.phys[:0], &st)
	for _, pr := range ctx.phys {
		g.store.ScanRange(q, pr.Start, pr.End, pr.Exact, &res)
	}
	return res, st
}

// ExecuteGrouped answers a grouped aggregate against the grid's physical
// range, folding matching rows into acc grouped by q.GroupDim(). The
// plan is identical to Execute's — the same physical ranges with the
// same exactness flags — only the per-range scan differs: each range
// runs the selection-vector grouped kernel instead of the fused flat
// one. The concurrency contract matches Execute (acc is the caller's
// per-query state, like ctx).
func (g *Grid) ExecuteGrouped(q query.Query, ctx *ExecContext, acc *colstore.GroupAccumulator) ExecStats {
	if ctx == nil {
		ctx = GetExecContext()
		defer PutExecContext(ctx)
	}
	var st ExecStats
	ctx.phys = g.planInto(q, ctx, ctx.phys[:0], &st)
	for _, pr := range ctx.phys {
		g.store.ScanRangeGrouped(q, pr.Start, pr.End, pr.Exact, acc)
	}
	return st
}

// PlanRanges appends to dst the physical row ranges Execute would scan for
// q and returns the extended slice plus the traversal stats. Scanning every
// returned range with q and merging the results is exactly Execute; the
// parallel executor uses this to split one grid's scan work across workers
// at sub-region granularity.
func (g *Grid) PlanRanges(q query.Query, ctx *ExecContext, dst []PhysRange) ([]PhysRange, ExecStats) {
	if ctx == nil {
		ctx = GetExecContext()
		defer PutExecContext(ctx)
	}
	var st ExecStats
	return g.planInto(q, ctx, dst, &st), st
}

// planInto computes the ranges Execute scans: enumerate intersecting cell
// runs, refine per cell by the sort dimension when applicable, and append
// the outlier buffer.
func (g *Grid) planInto(q query.Query, ctx *ExecContext, dst []PhysRange, st *ExecStats) []PhysRange {
	if g.n == 0 {
		return dst
	}

	effLo, effHi, ok := g.effectiveFilters(q, ctx)
	if !ok {
		// The functional-mapping bounds prove no INLIER can match, but the
		// bounds do not cover the outlier buffer — scan it regardless.
		return g.planOutliers(dst, st)
	}

	runs := g.enumerate(q, effLo, effHi, ctx)
	if len(runs) == 0 {
		return g.planOutliers(dst, st)
	}
	// walk emits runs in row-major order, so they are already sorted except
	// in rare conditional-boundary cases; sort only when needed.
	for i := 1; i < len(runs); i++ {
		if runs[i].start < runs[i-1].start {
			sort.Slice(runs, func(a, b int) bool { return runs[a].start < runs[b].start })
			break
		}
	}
	runs = mergeRuns(runs)

	sortFilter, refine := query.Filter{}, false
	if g.layout.SortDim >= 0 {
		sortFilter, refine = q.Filter(g.layout.SortDim)
	}

	for _, r := range runs {
		if refine {
			// Rows within each cell are sorted by the sort dimension:
			// binary-search the exact sub-range per cell (§2.2 refinement).
			col := g.store.Column(g.layout.SortDim)
			for c := r.start; c <= r.end; c++ {
				s, e := g.offsets[c], g.offsets[c+1]
				if s >= e {
					continue
				}
				lo := s + sort.Search(e-s, func(i int) bool { return col[s+i] >= sortFilter.Lo })
				hi := s + sort.Search(e-s, func(i int) bool { return col[s+i] > sortFilter.Hi })
				if lo >= hi {
					continue
				}
				dst = append(dst, PhysRange{Start: lo, End: hi, Exact: r.exact})
				st.CellRanges++
				st.CellsVisited++
			}
			continue
		}
		s, e := g.offsets[r.start], g.offsets[r.end+1]
		if s >= e {
			continue
		}
		dst = append(dst, PhysRange{Start: s, End: e, Exact: r.exact})
		st.CellRanges++
		st.CellsVisited += r.end - r.start + 1
	}
	return g.planOutliers(dst, st)
}

// planOutliers appends the rows diverted by robust functional mappings
// (§8); they live after the last cell and must be checked by every query.
func (g *Grid) planOutliers(dst []PhysRange, st *ExecStats) []PhysRange {
	if g.nOutliers == 0 {
		return dst
	}
	s := g.offsets[len(g.offsets)-1]
	st.CellRanges++
	return append(dst, PhysRange{Start: s, End: s + g.nOutliers})
}

// effectiveFilters combines the query's own filters with ranges induced by
// functional mappings (§5.2.1): a filter over a mapped dimension is
// transformed into a filter over the target dimension and intersected with
// any existing filter there. Returns ok=false when an intersection is
// provably empty.
func (g *Grid) effectiveFilters(q query.Query, ctx *ExecContext) ([]int64, []int64, bool) {
	d := len(g.layout.Skeleton)
	lo, hi := ctx.effBounds(d)
	for j := 0; j < d; j++ {
		lo[j], hi[j] = query.NoLo, query.NoHi
	}
	for _, f := range q.Filters {
		lo[f.Dim], hi[f.Dim] = f.Lo, f.Hi
	}
	for j, strat := range g.layout.Skeleton {
		if strat.Kind != Mapped {
			continue
		}
		if lo[j] == query.NoLo && hi[j] == query.NoHi {
			continue // mapped dim unfiltered: nothing to transform
		}
		flo, fhi := lo[j], hi[j]
		if flo < g.dimLo[j] {
			flo = g.dimLo[j]
		}
		if fhi > g.dimHi[j] {
			fhi = g.dimHi[j]
		}
		if flo > fhi {
			return nil, nil, false // filter excludes the whole domain
		}
		m := g.mappings[j]
		blo, bhi := m.Bounds(float64(flo), float64(fhi))
		t := strat.Other
		tlo := int64(math.Floor(blo))
		thi := int64(math.Ceil(bhi))
		if tlo > lo[t] {
			lo[t] = tlo
		}
		if thi < hi[t] {
			hi[t] = thi
		}
		if lo[t] > hi[t] {
			return nil, nil, false
		}
	}
	return lo, hi, true
}

// dimRange holds a per-grid-dim partition index range plus the endpoint
// exactness needed to split runs (§5.3.1 counts the resulting ranges).
type dimRange struct {
	a, b             int
	filtered         bool
	exactLo, exactHi bool // endpoint partitions contained in the filter
	conditional      bool
	basePos          int // position of the base dim in gridDims (conditional only)
	condLo, condHi   int64
}

// enumerate produces the cell-id runs intersecting the query.
//
// Grid dims are walked in stride order (gridDims is topological: bases
// before dependents). Trailing dims that the query leaves unconstrained —
// full partition range, and not the base of any filtered conditional dim —
// form a suffix whose cells are contiguous per prefix combination, so
// recursion stops at the last constrained position e and emits runs of
// strides[e] cells at a time. This keeps enumeration cost proportional to
// the number of constrained combinations, not total intersecting cells.
func (g *Grid) enumerate(q query.Query, effLo, effHi []int64, ctx *ExecContext) []run {
	nd := len(g.gridDims)
	ctx.runs = ctx.runs[:0]
	if nd == 0 {
		// No grid dims at all: one run over the single cell.
		return append(ctx.runs, run{start: 0, end: 0, exact: len(q.Filters) == 0})
	}

	ranges, idx := ctx.dimScratch(nd)

	for k, j := range g.gridDims {
		filtered := effLo[j] != query.NoLo || effHi[j] != query.NoHi
		switch g.layout.Skeleton[j].Kind {
		case Independent:
			r := dimRange{filtered: filtered}
			if filtered {
				r.a, r.b, r.exactLo, r.exactHi = g.indepRange(j, effLo[j], effHi[j])
			} else {
				r.a, r.b, r.exactLo, r.exactHi = 0, g.layout.P[j]-1, true, true
			}
			ranges[k] = r
		case Conditional:
			ranges[k] = dimRange{
				filtered:    filtered,
				conditional: true,
				basePos:     g.posOf[g.layout.Skeleton[j].Other],
				condLo:      effLo[j],
				condHi:      effHi[j],
			}
		}
	}

	// A filter over a mapped dim makes every cell inexact (cell geometry
	// says nothing about the mapped value, so the scan re-checks it); the
	// sort dim does not gate exactness because refinement restores it
	// during the scan.
	baseExact := true
	for _, f := range q.Filters {
		if g.layout.Skeleton[f.Dim].Kind == Mapped {
			baseExact = false
		}
	}

	// Find the emission position e: the last position that is filtered or
	// that a filtered conditional dim depends on.
	e := -1
	for k := nd - 1; k >= 0; k-- {
		if ranges[k].filtered {
			e = k
			break
		}
	}
	for k := range ranges {
		if ranges[k].conditional && ranges[k].filtered && ranges[k].basePos > e {
			e = ranges[k].basePos
		}
	}
	if e < 0 {
		// Fully unconstrained over grid dims: one run over everything.
		return append(ctx.runs, run{start: 0, end: len(g.offsets) - 2, exact: baseExact})
	}

	g.walk(ctx, ranges, idx, 0, e, 0, baseExact)
	return ctx.runs
}

// walk recursively enumerates positions [k, e] of the grid; position e
// emits runs covering its partition range times the unconstrained suffix.
func (g *Grid) walk(ctx *ExecContext, ranges []dimRange, idx []int, k, e, cellBase int, exact bool) {
	r := &ranges[k]
	a, b := r.a, r.b
	exLo, exHi := r.exactLo, r.exactHi
	if r.conditional {
		j := g.gridDims[k]
		a, b, exLo, exHi = g.condRange(j, idx[r.basePos], r.condLo, r.condHi, r.filtered)
	}
	stride := g.strides[k]
	if k == e {
		g.emitRuns(ctx, cellBase, stride, a, b, exact, exLo, exHi, r.filtered)
		return
	}
	for i := a; i <= b; i++ {
		idx[k] = i
		ex := exact
		if r.filtered {
			if i == a && !exLo {
				ex = false
			}
			if i == b && !exHi {
				ex = false
			}
		}
		g.walk(ctx, ranges, idx, k+1, e, cellBase+i*stride, ex)
	}
}

// emitRuns emits the (up to three) runs covering partitions [a, b] at the
// emission position: each partition spans stride consecutive cells (the
// unconstrained suffix), and inexact endpoint partitions are split off so
// interior cells can use the exact-range scan optimization.
func (g *Grid) emitRuns(ctx *ExecContext, base, stride, a, b int, exact, exLo, exHi, filtered bool) {
	if !filtered {
		exLo, exHi = true, true
	}
	block := func(p0, p1 int, ex bool) run {
		return run{start: base + p0*stride, end: base + (p1+1)*stride - 1, exact: ex}
	}
	if a == b {
		ctx.runs = append(ctx.runs, block(a, a, exact && exLo && exHi))
		return
	}
	lo, hi := a, b
	if !exLo {
		ctx.runs = append(ctx.runs, block(a, a, false))
		lo = a + 1
	}
	endSplit := !exHi
	if endSplit {
		hi = b - 1
	}
	if lo <= hi {
		ctx.runs = append(ctx.runs, block(lo, hi, exact))
	}
	if endSplit {
		ctx.runs = append(ctx.runs, block(b, b, false))
	}
}

// indepRange returns the intersecting partition range of an independent dim
// for filter [lo, hi], plus endpoint exactness.
func (g *Grid) indepRange(j int, lo, hi int64) (int, int, bool, bool) {
	return boundsRange(g.bounds[j], g.layout.P[j], lo, hi)
}

// condRange is indepRange for a conditional dim given the base partition.
func (g *Grid) condRange(j, bp int, lo, hi int64, filtered bool) (int, int, bool, bool) {
	if !filtered {
		return 0, g.layout.P[j] - 1, true, true
	}
	return boundsRange(g.condBounds[j][bp], g.layout.P[j], lo, hi)
}

// boundsRange computes the partition index range [a, b] intersecting value
// range [lo, hi] under boundary array bounds (p+1 long), with endpoint
// exactness: whether the endpoint partitions' slabs are contained in
// [lo, hi].
func boundsRange(bounds []int64, p int, lo, hi int64) (int, int, bool, bool) {
	a := clampPart(sort.Search(len(bounds), func(i int) bool { return bounds[i] > lo })-1, p)
	b := clampPart(sort.Search(len(bounds), func(i int) bool { return bounds[i] > hi })-1, p)
	if b < a {
		b = a
	}
	exLo := lo <= bounds[a]
	exHi := hi >= bounds[b+1]-1
	return a, b, exLo, exHi
}

// mergeRuns merges sorted runs whose cell ranges are adjacent and share the
// same exactness.
func mergeRuns(runs []run) []run {
	out := runs[:1]
	for _, r := range runs[1:] {
		last := &out[len(out)-1]
		if r.start <= last.end+1 && r.exact == last.exact {
			if r.end > last.end {
				last.end = r.end
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

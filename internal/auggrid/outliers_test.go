package auggrid

import (
	"math/rand"
	"testing"

	"repro/internal/colstore"
	"repro/internal/query"
)

// outlierStore: d1 tightly follows d0 except for ~1% wild outliers that
// ruin a plain least-squares error band.
func outlierStore(n int, seed int64) *colstore.Store {
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]int64, 3)
	for j := range cols {
		cols[j] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		x := rng.Int63n(100000)
		y := 2*x + rng.Int63n(400)
		if rng.Float64() < 0.01 {
			y = rng.Int63n(1_000_000) // outlier
		}
		cols[0][i] = x
		cols[1][i] = y
		cols[2][i] = rng.Int63n(100000)
	}
	st, err := colstore.FromColumns(cols, nil)
	if err != nil {
		panic(err)
	}
	return st
}

func TestRobustFitTightensBand(t *testing.T) {
	st := outlierStore(20000, 1)
	plain, _ := robustFit(st.Column(0), st.Column(1), 0)
	robust, out := robustFit(st.Column(0), st.Column(1), 0.02)
	if robust.ErrSpan() >= plain.ErrSpan()/5 {
		t.Errorf("robust band %.0f not much tighter than plain %.0f",
			robust.ErrSpan(), plain.ErrSpan())
	}
	marked := 0
	for _, o := range out {
		if o {
			marked++
		}
	}
	if marked == 0 || marked > 20000*3/100 {
		t.Errorf("marked %d outliers, want ≈1-2%%", marked)
	}
}

func TestRobustFitDisabledMarksNothing(t *testing.T) {
	st := outlierStore(5000, 2)
	_, out := robustFit(st.Column(0), st.Column(1), 0)
	if out != nil {
		t.Error("disabled robust fit should mark nothing")
	}
}

func TestOutlierBufferGridMatchesFullScan(t *testing.T) {
	st := outlierStore(10000, 3)
	sk := IndependentSkeleton(3)
	sk[1] = DimStrategy{Kind: Mapped, Other: 0}
	l := NewLayout(sk, []int{16, 1, 4}, -1)
	l.OutlierFrac = 0.02
	g, store, err := buildAndFinalize(st, l)
	if err != nil {
		t.Fatal(err)
	}
	if g.nOutliers == 0 {
		t.Fatal("expected a populated outlier buffer")
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		var fs []query.Filter
		for j := 0; j < 3; j++ {
			if rng.Intn(2) == 0 {
				continue
			}
			lo, hi := store.MinMax(j)
			a := lo + rng.Int63n(hi-lo+1)
			fs = append(fs, query.Filter{Dim: j, Lo: a, Hi: a + (hi-lo)/20})
		}
		if len(fs) == 0 {
			fs = append(fs, query.Filter{Dim: 1, Lo: 0, Hi: 200000})
		}
		q := query.NewCount(fs...)
		var want colstore.ScanResult
		store.ScanRange(q, 0, store.NumRows(), false, &want)
		got, _ := g.Execute(q, nil)
		if got.Count != want.Count {
			t.Fatalf("query %s: got %d, want %d", q, got.Count, want.Count)
		}
	}
}

func TestOutlierBufferReducesScans(t *testing.T) {
	st := outlierStore(20000, 5)
	sk := IndependentSkeleton(3)
	sk[1] = DimStrategy{Kind: Mapped, Other: 0}

	plain := NewLayout(sk, []int{32, 1, 4}, -1)
	gPlain, storePlain, err := buildAndFinalize(st, plain)
	if err != nil {
		t.Fatal(err)
	}
	robust := plain.Clone()
	robust.OutlierFrac = 0.02
	gRobust, storeRobust, err := buildAndFinalize(st, robust)
	if err != nil {
		t.Fatal(err)
	}

	// Queries over the mapped dimension d1: the plain mapping's error band
	// spans nearly the whole domain, so the rewritten filters prune
	// nothing; the robust band prunes hard.
	rng := rand.New(rand.NewSource(6))
	var plainScanned, robustScanned uint64
	for i := 0; i < 50; i++ {
		a := rng.Int63n(190000)
		q := query.NewCount(query.Filter{Dim: 1, Lo: a, Hi: a + 5000})
		rp, _ := gPlain.Execute(q, nil)
		rr, _ := gRobust.Execute(q, nil)
		if rp.Count != rr.Count {
			t.Fatalf("plain and robust disagree on %s: %d vs %d", q, rp.Count, rr.Count)
		}
		plainScanned += rp.PointsScanned
		robustScanned += rr.PointsScanned
	}
	_ = storePlain
	_ = storeRobust
	if robustScanned*2 >= plainScanned {
		t.Errorf("outlier buffer should cut scans at least 2x: robust=%d plain=%d",
			robustScanned, plainScanned)
	}
}

func TestOutlierFracSurvivesCloneAndBuild(t *testing.T) {
	l := NewLayout(IndependentSkeleton(3), []int{2, 2, 2}, -1)
	l.OutlierFrac = 0.05
	if c := l.Clone(); c.OutlierFrac != 0.05 {
		t.Error("Clone dropped OutlierFrac")
	}
}

package auggrid

import (
	"math/rand"
	"testing"

	"repro/internal/colstore"
	"repro/internal/query"
)

func TestExecuteUnboundedFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := makeCorrelatedStore(3000, rng)
	l := NewLayout(IndependentSkeleton(4), []int{4, 4, 4, 4}, -1)
	g, st := buildGrid(t, s, l)
	// One-sided filters exercise the NoLo/NoHi paths.
	for _, q := range []query.Query{
		query.NewCount(query.Filter{Dim: 0, Lo: query.NoLo, Hi: 50000}),
		query.NewCount(query.Filter{Dim: 1, Lo: 100000, Hi: query.NoHi}),
		query.NewCount(query.Filter{Dim: 2, Lo: query.NoLo, Hi: query.NoHi}),
	} {
		var want colstore.ScanResult
		st.ScanRange(q, 0, st.NumRows(), false, &want)
		got, _ := g.Execute(q, nil)
		if got.Count != want.Count {
			t.Errorf("%s: got %d, want %d", q, got.Count, want.Count)
		}
	}
}

func TestExecuteFilterOutsideDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := makeCorrelatedStore(2000, rng)
	l := NewLayout(IndependentSkeleton(4), []int{4, 4, 2, 2}, 3)
	g, _ := buildGrid(t, s, l)
	res, _ := g.Execute(query.NewCount(query.Filter{Dim: 0, Lo: -500, Hi: -100}), nil)
	if res.Count != 0 {
		t.Errorf("below-domain filter matched %d rows", res.Count)
	}
	res, _ = g.Execute(query.NewCount(query.Filter{Dim: 0, Lo: 1 << 40, Hi: 1 << 41}), nil)
	if res.Count != 0 {
		t.Errorf("above-domain filter matched %d rows", res.Count)
	}
}

func TestExecuteMappedFilterOutsideDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := makeCorrelatedStore(2000, rng)
	sk := IndependentSkeleton(4)
	sk[1] = DimStrategy{Kind: Mapped, Other: 0}
	l := NewLayout(sk, []int{8, 1, 2, 2}, -1)
	g, _ := buildGrid(t, s, l)
	// d1 = 2*d0 + [1000, 1500); values below 1000 are impossible.
	res, _ := g.Execute(query.NewCount(query.Filter{Dim: 1, Lo: 0, Hi: 500}), nil)
	if res.Count != 0 {
		t.Errorf("impossible mapped filter matched %d rows", res.Count)
	}
}

func TestExecuteAllDimsEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := makeCorrelatedStore(3000, rng)
	l := NewLayout(IndependentSkeleton(4), []int{6, 6, 3, 3}, 2)
	g, st := buildGrid(t, s, l)
	// Pick an existing row and query it exactly.
	row := st.Row(1234, nil)
	q := query.NewCount(
		query.Filter{Dim: 0, Lo: row[0], Hi: row[0]},
		query.Filter{Dim: 1, Lo: row[1], Hi: row[1]},
		query.Filter{Dim: 2, Lo: row[2], Hi: row[2]},
		query.Filter{Dim: 3, Lo: row[3], Hi: row[3]},
	)
	var want colstore.ScanResult
	st.ScanRange(q, 0, st.NumRows(), false, &want)
	got, _ := g.Execute(q, nil)
	if got.Count != want.Count || got.Count == 0 {
		t.Errorf("point query: got %d, want %d (>0)", got.Count, want.Count)
	}
}

func TestExecStatsCountRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := makeCorrelatedStore(5000, rng)
	l := NewLayout(IndependentSkeleton(4), []int{8, 1, 1, 1}, -1)
	g, _ := buildGrid(t, s, l)
	lo, hi := s.MinMax(0)
	// A contiguous partition range in the only partitioned dim yields at
	// most two physical ranges: the exact interior plus an inexact
	// endpoint partition split off so the interior can skip checks.
	_, st := g.Execute(query.NewCount(query.Filter{Dim: 0, Lo: lo, Hi: (lo + hi) / 2}), nil)
	if st.CellRanges > 2 {
		t.Errorf("contiguous cells produced %d ranges, want <= 2", st.CellRanges)
	}
	// A filter aligned exactly on partition boundaries is one exact range.
	b := g.bounds[0]
	_, st2 := g.Execute(query.NewCount(query.Filter{Dim: 0, Lo: b[1], Hi: b[4] - 1}), nil)
	if st2.CellRanges != 1 {
		t.Errorf("boundary-aligned filter produced %d ranges, want 1", st2.CellRanges)
	}
}

func TestExecuteExactRangeSkipsChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := makeCorrelatedStore(5000, rng)
	l := NewLayout(IndependentSkeleton(4), []int{8, 1, 1, 1}, -1)
	g, _ := buildGrid(t, s, l)
	// A filter exactly on partition boundaries covers cells exactly: a
	// COUNT should then touch (almost) no data.
	b := g.bounds[0]
	q := query.NewCount(query.Filter{Dim: 0, Lo: b[2], Hi: b[5] - 1})
	res, _ := g.Execute(q, nil)
	if res.Count == 0 {
		t.Fatal("expected matches")
	}
	// Only the endpoint partitions may be scanned; interior is exact.
	if res.PointsScanned > res.Count/2 {
		t.Errorf("exact-range scan touched %d points for %d matches", res.PointsScanned, res.Count)
	}
}

func TestConditionalGuaranteedEmptyRegions(t *testing.T) {
	// Fig 6's claim: with CDF(Y|X), regions outside the staggered cells
	// hold no points, so per-base ranges skip them. Verify per-base
	// boundaries cover exactly the points of that base partition.
	rng := rand.New(rand.NewSource(7))
	s := makeCorrelatedStore(10000, rng)
	sk := IndependentSkeleton(4)
	sk[2] = DimStrategy{Kind: Conditional, Other: 0}
	l := NewLayout(sk, []int{8, 1, 8, 1}, -1)
	g, st := buildGrid(t, s, l)
	col0, col2 := st.Column(0), st.Column(2)
	for i := 0; i < st.NumRows(); i++ {
		bp := g.partIndep(0, col0[i])
		cb := g.condBounds[2][bp]
		if col2[i] < cb[0]-0 && col2[i] > cb[len(cb)-1] {
			t.Fatalf("row %d outside its base partition's conditional bounds", i)
		}
	}
	// And the paper's efficiency claim: conditional partitioning scans
	// fewer points than independent for a correlated pair query.
	indep := NewLayout(IndependentSkeleton(4), []int{8, 1, 8, 1}, -1)
	gi, _ := buildGrid(t, s, indep)
	q := query.NewCount(
		query.Filter{Dim: 0, Lo: 20000, Hi: 40000},
		query.Filter{Dim: 2, Lo: 1000, Hi: 3000},
	)
	rc, _ := g.Execute(q, nil)
	ri, _ := gi.Execute(q, nil)
	if rc.Count != ri.Count {
		t.Fatalf("conditional and independent disagree: %d vs %d", rc.Count, ri.Count)
	}
}

func TestGridSizeAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := makeCorrelatedStore(3000, rng)
	sk := IndependentSkeleton(4)
	sk[1] = DimStrategy{Kind: Mapped, Other: 0}
	sk[2] = DimStrategy{Kind: Conditional, Other: 0}
	l := NewLayout(sk, []int{8, 1, 4, 2}, -1)
	g, _ := buildGrid(t, s, l)
	size := g.SizeBytes()
	// Lookup table alone: (numCells+1)*8.
	min := uint64(g.NumCells()+1) * 8
	if size < min {
		t.Errorf("size %d below lookup table size %d", size, min)
	}
	if size > min+1<<20 {
		t.Errorf("size %d implausibly large", size)
	}
}

func TestSkeletonStringNotation(t *testing.T) {
	sk := IndependentSkeleton(3)
	sk[1] = DimStrategy{Kind: Mapped, Other: 0}
	sk[2] = DimStrategy{Kind: Conditional, Other: 0}
	got := sk.String()
	want := "[d0,d1→d0,d2|d0]"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	fms, ccdfs := sk.CountKinds()
	if fms != 1 || ccdfs != 1 {
		t.Errorf("CountKinds = (%d, %d), want (1, 1)", fms, ccdfs)
	}
}

func TestGridDimsExcludeMappedAndSort(t *testing.T) {
	sk := IndependentSkeleton(4)
	sk[1] = DimStrategy{Kind: Mapped, Other: 0}
	l := NewLayout(sk, []int{2, 2, 2, 2}, 3)
	gd := l.GridDims()
	if len(gd) != 2 || gd[0] != 0 || gd[1] != 2 {
		t.Errorf("GridDims = %v, want [0 2]", gd)
	}
	if l.NumCells() != 4 {
		t.Errorf("NumCells = %d, want 4", l.NumCells())
	}
}

func TestCalibrateWeightsSane(t *testing.T) {
	w := CalibrateWeights()
	if w.W0 <= 0 || w.W1 <= 0 || w.W2 <= 0 {
		t.Errorf("calibrated weights not positive: %+v", w)
	}
	if w.W1 > 50 {
		t.Errorf("per-value scan cost %v ns implausible", w.W1)
	}
	if w.W0 < w.W1 {
		t.Errorf("range jump (%v) should cost more than one value scan (%v)", w.W0, w.W1)
	}
}

package auggrid

import (
	"fmt"
	"sort"

	"repro/internal/cdfmodel"
	"repro/internal/colstore"
	"repro/internal/stats"
)

// Grid is a built Augmented Grid over a contiguous physical range of a
// column store. Construction is two-phase so a parent structure (the Grid
// Tree) can compose multiple grids into one global clustered layout:
//
//  1. Build computes all layout structures and returns the region's rows in
//     grid order; the caller concatenates row orders, reorders the store.
//  2. Finalize binds the grid to the reordered store at its start offset.
//
// After Finalize a Grid is immutable: all per-query state lives in the
// ExecContext passed to Execute, so one Grid serves any number of
// concurrent readers with no cloning (provided the underlying store is not
// mutated while readers are active).
type Grid struct {
	layout Layout
	store  *colstore.Store
	start  int // physical offset of this grid's first row
	n      int // number of rows

	// gridDims is the row-major cell ordering of the grid's dims, arranged
	// so every conditional dim comes after its base (bases are independent,
	// so independents-then-conditionals suffices). This lets query
	// enumeration fix base partitions before dependents while walking in
	// stride order.
	gridDims []int
	strides  []int // stride per grid dim (aligned with gridDims)
	posOf    []int // dim -> position in gridDims, -1 if not a grid dim

	// Independent dims: partition boundaries, len P[d]+1.
	bounds map[int][]int64
	// Conditional dims: per-base-partition boundaries, [pBase][P[d]+1].
	condBounds map[int][][]int64
	// Mapped dims: functional mapping predicting target value from this
	// dim's value.
	mappings map[int]stats.LinReg
	// Observed per-dim min/max, used to clamp unbounded filters before
	// applying functional mappings.
	dimLo, dimHi []int64

	// offsets[c] is the physical start (absolute, after Finalize) of cell c;
	// len NumCells+1. Offsets cover only inlier rows; the nOutliers rows
	// diverted by robust functional mappings (§8) sit immediately after
	// the last cell and are scanned by every query.
	offsets   []int
	nOutliers int
}

// Build computes the grid structures for layout over the given rows of st
// (st not yet reordered) and returns the rows sorted into grid order:
// by cell id, then by the sort dimension within each cell.
func Build(st *colstore.Store, rows []int, layout Layout) (*Grid, []int, error) {
	if err := layout.Validate(); err != nil {
		return nil, nil, err
	}
	if len(layout.Skeleton) != st.NumDims() {
		return nil, nil, fmt.Errorf("auggrid: layout has %d dims, store has %d", len(layout.Skeleton), st.NumDims())
	}
	g := &Grid{
		layout:     layout.Clone(),
		n:          len(rows),
		gridDims:   gridDimsTopological(layout),
		bounds:     make(map[int][]int64),
		condBounds: make(map[int][][]int64),
		mappings:   make(map[int]stats.LinReg),
	}
	g.layout.normalize()
	g.posOf = make([]int, st.NumDims())
	for j := range g.posOf {
		g.posOf[j] = -1
	}
	for k, j := range g.gridDims {
		g.posOf[j] = k
	}

	d := st.NumDims()
	g.dimLo = make([]int64, d)
	g.dimHi = make([]int64, d)
	for j := 0; j < d; j++ {
		lo, hi := minMaxRows(st.Column(j), rows)
		g.dimLo[j], g.dimHi[j] = lo, hi
	}

	// Strides for row-major cell ids over grid dims.
	g.strides = make([]int, len(g.gridDims))
	stride := 1
	for i := len(g.gridDims) - 1; i >= 0; i-- {
		g.strides[i] = stride
		stride *= g.layout.P[g.gridDims[i]]
	}
	numCells := stride

	// Phase 1: independent boundaries and functional mappings. With
	// OutlierFrac > 0 the mappings are fit robustly and the rows outside
	// the trimmed error band are diverted to the outlier buffer (§8).
	var outlier []bool
	for j := 0; j < d; j++ {
		switch g.layout.Skeleton[j].Kind {
		case Independent:
			p := g.layout.P[j]
			vals := gather(st.Column(j), rows)
			m := cdfmodel.NewSample(vals, sampleFor(len(rows), p))
			g.bounds[j] = cdfmodel.Boundaries(m, p)
		case Mapped:
			target := g.layout.Skeleton[j].Other
			x := gather(st.Column(j), rows)
			y := gather(st.Column(target), rows)
			lr, out := robustFit(x, y, g.layout.OutlierFrac)
			g.mappings[j] = lr
			for i, o := range out {
				if o {
					if outlier == nil {
						outlier = make([]bool, len(rows))
					}
					outlier[i] = true
				}
			}
		}
	}
	inlierRows := rows
	var outlierRows []int
	if outlier != nil {
		inlierRows = make([]int, 0, len(rows))
		for i, r := range rows {
			if outlier[i] {
				outlierRows = append(outlierRows, r)
			} else {
				inlierRows = append(inlierRows, r)
			}
		}
		g.nOutliers = len(outlierRows)
	}

	// Phase 2: conditional boundaries (bases are Independent, so their
	// boundaries exist now).
	for j := 0; j < d; j++ {
		if g.layout.Skeleton[j].Kind != Conditional {
			continue
		}
		base := g.layout.Skeleton[j].Other
		pBase := g.layout.P[base]
		p := g.layout.P[j]
		groups := make([][]int64, pBase)
		baseCol := st.Column(base)
		col := st.Column(j)
		for _, r := range inlierRows {
			b := g.partIndep(base, baseCol[r])
			groups[b] = append(groups[b], col[r])
		}
		cb := make([][]int64, pBase)
		for b, vals := range groups {
			if len(vals) == 0 {
				// Empty base partition: degenerate single-point boundaries.
				cb[b] = make([]int64, p+1)
				continue
			}
			m := cdfmodel.NewSample(vals, sampleFor(len(vals), p))
			cb[b] = cdfmodel.Boundaries(m, p)
		}
		g.condBounds[j] = cb
	}

	// Phase 3: assign cells to inlier rows, order them (cell-major, sort
	// dim within cells), count offsets, and append the outlier buffer.
	cells := make([]int, len(inlierRows))
	for i, r := range inlierRows {
		cells[i] = g.cellOfRow(st, r)
	}
	order := make([]int, len(inlierRows))
	for i := range order {
		order[i] = i
	}
	var sortCol []int64
	if g.layout.SortDim >= 0 {
		sortCol = st.Column(g.layout.SortDim)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := cells[order[a]], cells[order[b]]
		if ca != cb {
			return ca < cb
		}
		if sortCol != nil {
			return sortCol[inlierRows[order[a]]] < sortCol[inlierRows[order[b]]]
		}
		return false
	})
	orderedRows := make([]int, 0, len(rows))
	for _, o := range order {
		orderedRows = append(orderedRows, inlierRows[o])
	}
	orderedRows = append(orderedRows, outlierRows...)

	g.offsets = make([]int, numCells+1)
	for _, c := range cells {
		g.offsets[c+1]++
	}
	for c := 1; c <= numCells; c++ {
		g.offsets[c] += g.offsets[c-1]
	}
	return g, orderedRows, nil
}

// Finalize binds the grid to the physically reordered store. Rows
// [start, start+n) of st must be this grid's rows in the order returned by
// Build.
func (g *Grid) Finalize(st *colstore.Store, start int) {
	g.store = st
	g.start = start
	for i := range g.offsets {
		g.offsets[i] += start
	}
}

// Rebase returns a copy of a finalized grid bound to st with its physical
// segment starting at start. The segment's rows must be identical to the
// ones g was finalized over, in the same order — Rebase only rebinds the
// store pointer and shifts cell offsets, so a partial merge can carry an
// untouched region's grid into a rewritten store without re-sorting the
// region (layout, boundaries, and mappings are shared with g, which keeps
// serving its own store unchanged).
func (g *Grid) Rebase(st *colstore.Store, start int) *Grid {
	ng := *g
	ng.offsets = make([]int, len(g.offsets))
	for i, o := range g.offsets {
		ng.offsets[i] = o - g.start + start
	}
	ng.store = st
	ng.start = start
	return &ng
}

// gridDimsTopological returns the grid dims (not mapped, not the sort dim)
// ordered with independents first, then conditionals, so bases always
// precede their dependents in stride order.
func gridDimsTopological(l Layout) []int {
	var out []int
	for i, st := range l.Skeleton {
		if st.Kind == Independent && i != l.SortDim {
			out = append(out, i)
		}
	}
	for i, st := range l.Skeleton {
		if st.Kind == Conditional && i != l.SortDim {
			out = append(out, i)
		}
	}
	return out
}

// sampleFor picks a CDF sample size: enough resolution for p partitions
// without sorting more than needed.
func sampleFor(n, p int) int {
	s := 16 * p
	if s < 1024 {
		s = 1024
	}
	if s >= n {
		return 0 // exact
	}
	return s
}

func gather(col []int64, rows []int) []int64 {
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = col[r]
	}
	return out
}

func minMaxRows(col []int64, rows []int) (int64, int64) {
	if len(rows) == 0 {
		return 0, 0
	}
	lo, hi := col[rows[0]], col[rows[0]]
	for _, r := range rows[1:] {
		v := col[r]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// partIndep returns the partition of value v in independent dim j by binary
// search over the boundary array, clamped to [0, P[j]-1].
func (g *Grid) partIndep(j int, v int64) int {
	b := g.bounds[j]
	i := sort.Search(len(b), func(i int) bool { return b[i] > v }) - 1
	return clampPart(i, g.layout.P[j])
}

// partCond returns the partition of value v in conditional dim j given the
// base partition bp.
func (g *Grid) partCond(j, bp int, v int64) int {
	b := g.condBounds[j][bp]
	i := sort.Search(len(b), func(i int) bool { return b[i] > v }) - 1
	return clampPart(i, g.layout.P[j])
}

func clampPart(i, p int) int {
	if i < 0 {
		return 0
	}
	if i >= p {
		return p - 1
	}
	return i
}

// cellOfRow computes the row-major cell id of store row r.
func (g *Grid) cellOfRow(st *colstore.Store, r int) int {
	cell := 0
	for k, j := range g.gridDims {
		var idx int
		switch g.layout.Skeleton[j].Kind {
		case Independent:
			idx = g.partIndep(j, st.Value(r, j))
		case Conditional:
			base := g.layout.Skeleton[j].Other
			bp := g.partIndep(base, st.Value(r, base))
			idx = g.partCond(j, bp, st.Value(r, j))
		}
		cell += idx * g.strides[k]
	}
	return cell
}

// Layout returns the grid's layout.
func (g *Grid) Layout() Layout { return g.layout }

// NumCells returns the total number of grid cells.
func (g *Grid) NumCells() int { return len(g.offsets) - 1 }

// NumRows returns the number of rows the grid indexes.
func (g *Grid) NumRows() int { return g.n }

// Start returns the grid's physical start offset.
func (g *Grid) Start() int { return g.start }

// SizeBytes reports the structure footprint: the cell lookup table (which
// dominates, §6.3), partition boundaries, conditional CDF tables, and the
// four floats of each functional mapping.
func (g *Grid) SizeBytes() uint64 {
	size := uint64(len(g.offsets)) * 8 // lookup table
	for _, b := range g.bounds {
		size += uint64(len(b)) * 8
	}
	for _, cb := range g.condBounds {
		for _, b := range cb {
			size += uint64(len(b)) * 8
		}
	}
	size += uint64(len(g.mappings)) * 32 // slope, intercept, el, eu (§5.2.1)
	size += uint64(len(g.dimLo)) * 16
	return size
}

package auggrid

import (
	"math/rand"
	"testing"

	"repro/internal/colstore"
	"repro/internal/index"
	"repro/internal/query"
)

// makeCorrelatedStore builds a 4-dim store: d0 uniform, d1 tightly linearly
// correlated with d0, d2 generically correlated with d0, d3 independent.
func makeCorrelatedStore(n int, rng *rand.Rand) *colstore.Store {
	cols := make([][]int64, 4)
	for j := range cols {
		cols[j] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		x := rng.Int63n(100000)
		cols[0][i] = x
		cols[1][i] = 2*x + 1000 + rng.Int63n(500)         // tight monotone
		cols[2][i] = x/10 + int64(rng.NormFloat64()*3000) // loose correlation
		cols[3][i] = rng.Int63n(50000)                    // independent
	}
	s, err := colstore.FromColumns(cols, nil)
	if err != nil {
		panic(err)
	}
	return s
}

func randomQuery(s *colstore.Store, rng *rand.Rand) query.Query {
	var fs []query.Filter
	for j := 0; j < s.NumDims(); j++ {
		if rng.Float64() < 0.5 {
			continue
		}
		lo, hi := s.MinMax(j)
		span := hi - lo
		a := lo + rng.Int63n(span+1)
		w := span / int64(2+rng.Intn(20))
		fs = append(fs, query.Filter{Dim: j, Lo: a, Hi: a + w})
	}
	if len(fs) == 0 {
		fs = append(fs, query.Filter{Dim: 0, Lo: 0, Hi: 50000})
	}
	if rng.Intn(2) == 0 {
		return query.NewCount(fs...)
	}
	return query.NewSum(rng.Intn(s.NumDims()), fs...)
}

// buildGrid builds a standalone grid over the full store.
func buildGrid(t *testing.T, s *colstore.Store, l Layout) (*Grid, *colstore.Store) {
	t.Helper()
	clone := s.Clone()
	rows := make([]int, clone.NumRows())
	for i := range rows {
		rows[i] = i
	}
	g, ordered, err := Build(clone, rows, l)
	if err != nil {
		t.Fatalf("Build(%v): %v", l, err)
	}
	if err := clone.Reorder(ordered); err != nil {
		t.Fatal(err)
	}
	g.Finalize(clone, 0)
	return g, clone
}

func checkAgainstFullScan(t *testing.T, s *colstore.Store, g *Grid, qs []query.Query, label string) {
	t.Helper()
	full := index.NewFullScan(s)
	for i, q := range qs {
		want := full.Execute(q)
		got, _ := g.Execute(q, nil)
		if got.Count != want.Count || got.Sum != want.Sum {
			t.Fatalf("%s query %d (%s): got (count=%d sum=%d), want (count=%d sum=%d)\nlayout: %v",
				label, i, q, got.Count, got.Sum, want.Count, want.Sum, g.Layout())
		}
	}
}

func TestGridIndependentMatchesFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := makeCorrelatedStore(5000, rng)
	l := NewLayout(IndependentSkeleton(4), []int{8, 4, 4, 2}, -1)
	g, st := buildGrid(t, s, l)
	qs := make([]query.Query, 50)
	for i := range qs {
		qs[i] = randomQuery(s, rng)
	}
	checkAgainstFullScan(t, st, g, qs, "independent")
}

func TestGridWithSortDimMatchesFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := makeCorrelatedStore(5000, rng)
	l := NewLayout(IndependentSkeleton(4), []int{8, 4, 4, 1}, 3)
	g, st := buildGrid(t, s, l)
	qs := make([]query.Query, 50)
	for i := range qs {
		qs[i] = randomQuery(s, rng)
	}
	checkAgainstFullScan(t, st, g, qs, "sortdim")
}

func TestGridFunctionalMappingMatchesFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := makeCorrelatedStore(5000, rng)
	sk := IndependentSkeleton(4)
	sk[1] = DimStrategy{Kind: Mapped, Other: 0} // d1 tightly correlated with d0
	l := NewLayout(sk, []int{16, 1, 4, 2}, -1)
	g, st := buildGrid(t, s, l)
	qs := make([]query.Query, 80)
	for i := range qs {
		qs[i] = randomQuery(s, rng)
	}
	checkAgainstFullScan(t, st, g, qs, "mapped")
}

func TestGridConditionalMatchesFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := makeCorrelatedStore(5000, rng)
	sk := IndependentSkeleton(4)
	sk[2] = DimStrategy{Kind: Conditional, Other: 0}
	l := NewLayout(sk, []int{8, 2, 6, 2}, -1)
	g, st := buildGrid(t, s, l)
	qs := make([]query.Query, 80)
	for i := range qs {
		qs[i] = randomQuery(s, rng)
	}
	checkAgainstFullScan(t, st, g, qs, "conditional")
}

func TestGridCombinedSkeletonMatchesFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := makeCorrelatedStore(5000, rng)
	sk := IndependentSkeleton(4)
	sk[1] = DimStrategy{Kind: Mapped, Other: 0}
	sk[2] = DimStrategy{Kind: Conditional, Other: 0}
	l := NewLayout(sk, []int{8, 1, 6, 1}, 3)
	g, st := buildGrid(t, s, l)
	qs := make([]query.Query, 80)
	for i := range qs {
		qs[i] = randomQuery(s, rng)
	}
	checkAgainstFullScan(t, st, g, qs, "combined")
}

// TestGridRandomLayoutsProperty is the big property test: any valid layout
// must answer any query exactly like a full scan.
func TestGridRandomLayoutsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := makeCorrelatedStore(3000, rng)
	for trial := 0; trial < 30; trial++ {
		l := randomLayout(4, rng)
		if l.Validate() != nil {
			continue
		}
		g, st := buildGrid(t, s, l)
		fullT := index.NewFullScan(st)
		for i := 0; i < 20; i++ {
			q := randomQuery(s, rng)
			want := fullT.Execute(q)
			got, _ := g.Execute(q, nil)
			if got.Count != want.Count || got.Sum != want.Sum {
				t.Fatalf("trial %d query %s: got (%d, %d), want (%d, %d)\nlayout: %v",
					trial, q, got.Count, got.Sum, want.Count, want.Sum, l)
			}
		}
	}
}

func randomLayout(d int, rng *rand.Rand) Layout {
	sk := IndependentSkeleton(d)
	// Random sort dim (or none).
	sortDim := rng.Intn(d+1) - 1
	// Random strategy per dim with restrictions applied greedily.
	for j := 0; j < d; j++ {
		if j == sortDim {
			continue
		}
		switch rng.Intn(3) {
		case 1: // mapped
			o := rng.Intn(d)
			if o != j && o != sortDim && sk[o].Kind != Mapped {
				referenced := false
				for i, st := range sk {
					if i != j && st.Kind != Independent && st.Other == j {
						referenced = true
					}
				}
				if !referenced {
					sk[j] = DimStrategy{Kind: Mapped, Other: o}
				}
			}
		case 2: // conditional
			o := rng.Intn(d)
			if o != j && o != sortDim && sk[o].Kind == Independent {
				referenced := false
				for i, st := range sk {
					if i != j && st.Kind == Conditional && st.Other == j {
						referenced = true
					}
				}
				if !referenced && sk[j].Kind == Independent {
					sk[j] = DimStrategy{Kind: Conditional, Other: o}
				}
			}
		}
	}
	p := make([]int, d)
	for j := range p {
		p[j] = 1 + rng.Intn(8)
	}
	return NewLayout(sk, p, sortDim)
}

func TestGridEmptyRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := makeCorrelatedStore(100, rng)
	l := NewLayout(IndependentSkeleton(4), []int{2, 2, 2, 2}, -1)
	g, _, err := Build(s.Clone(), nil, l)
	if err != nil {
		t.Fatal(err)
	}
	g.Finalize(s, 0)
	res, _ := g.Execute(query.NewCount(query.Filter{Dim: 0, Lo: 0, Hi: 100}), nil)
	if res.Count != 0 {
		t.Errorf("empty grid count = %d, want 0", res.Count)
	}
}

func TestGridCellCountMatchesLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := makeCorrelatedStore(2000, rng)
	l := NewLayout(IndependentSkeleton(4), []int{3, 4, 5, 2}, -1)
	g, _ := buildGrid(t, s, l)
	if g.NumCells() != 3*4*5*2 {
		t.Errorf("cells = %d, want %d", g.NumCells(), 3*4*5*2)
	}
	if l.NumCells() != g.NumCells() {
		t.Errorf("layout cells %d != grid cells %d", l.NumCells(), g.NumCells())
	}
}

func TestGridOffsetsPartitionAllRows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := makeCorrelatedStore(2000, rng)
	for trial := 0; trial < 10; trial++ {
		l := randomLayout(4, rng)
		g, _ := buildGrid(t, s, l)
		if g.offsets[0] != 0 {
			t.Fatalf("first offset = %d, want 0", g.offsets[0])
		}
		if g.offsets[len(g.offsets)-1] != 2000 {
			t.Fatalf("last offset = %d, want 2000", g.offsets[len(g.offsets)-1])
		}
		for i := 1; i < len(g.offsets); i++ {
			if g.offsets[i] < g.offsets[i-1] {
				t.Fatalf("offsets not monotone at %d", i)
			}
		}
	}
}

// TestGridEquallySizedCellsUnderCorrelation checks the core claim of §5:
// with a functional mapping, the (remaining) grid has balanced cells even
// though d0 and d1 are tightly correlated, whereas independent partitioning
// of both leaves many cells empty.
func TestGridEquallySizedCellsUnderCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := makeCorrelatedStore(20000, rng)

	indep := NewLayout(IndependentSkeleton(4), []int{8, 8, 1, 1}, -1)
	gi, _ := buildGrid(t, s, indep)
	emptyIndep := countEmptyCells(gi)

	sk := IndependentSkeleton(4)
	sk[1] = DimStrategy{Kind: Mapped, Other: 0}
	mapped := NewLayout(sk, []int{64, 1, 1, 1}, -1)
	gm, _ := buildGrid(t, s, mapped)
	emptyMapped := countEmptyCells(gm)

	// Independent partitioning of tightly correlated dims leaves most of
	// the 8x8 plane empty; the mapped grid's 64 cells are all occupied.
	if emptyIndep <= gi.NumCells()/2 {
		t.Errorf("expected >half empty cells under independent partitioning, got %d/%d",
			emptyIndep, gi.NumCells())
	}
	if emptyMapped != 0 {
		t.Errorf("mapped grid should have no empty cells, got %d/%d", emptyMapped, gm.NumCells())
	}
}

func countEmptyCells(g *Grid) int {
	empty := 0
	for c := 0; c < g.NumCells(); c++ {
		if g.offsets[c+1] == g.offsets[c] {
			empty++
		}
	}
	return empty
}

package auggrid

import "repro/internal/stats"

// GridSnapshot is the serializable form of a built Grid (§8 "Persistence":
// Tsunami's structures are not inherently in-memory-only; this snapshot
// plus the reordered column data fully reconstruct a queryable index).
// Offsets are stored relative to the grid's start so the snapshot is
// position-independent.
type GridSnapshot struct {
	Layout     Layout
	Bounds     map[int][]int64
	CondBounds map[int][][]int64
	Mappings   map[int]stats.LinReg
	DimLo      []int64
	DimHi      []int64
	Offsets    []int
	NOutliers  int
	N          int
}

// Snapshot extracts the grid's serializable state.
func (g *Grid) Snapshot() GridSnapshot {
	offsets := make([]int, len(g.offsets))
	for i, o := range g.offsets {
		offsets[i] = o - g.start
	}
	return GridSnapshot{
		Layout:     g.layout.Clone(),
		Bounds:     g.bounds,
		CondBounds: g.condBounds,
		Mappings:   g.mappings,
		DimLo:      g.dimLo,
		DimHi:      g.dimHi,
		Offsets:    offsets,
		NOutliers:  g.nOutliers,
		N:          g.n,
	}
}

// FromSnapshot reconstructs a Grid. The caller must Finalize it against
// the (already correctly ordered) store at the grid's physical start.
func FromSnapshot(s GridSnapshot) (*Grid, error) {
	if err := s.Layout.Validate(); err != nil {
		return nil, err
	}
	g := &Grid{
		layout:     s.Layout.Clone(),
		n:          s.N,
		gridDims:   gridDimsTopological(s.Layout),
		bounds:     s.Bounds,
		condBounds: s.CondBounds,
		mappings:   s.Mappings,
		dimLo:      s.DimLo,
		dimHi:      s.DimHi,
		nOutliers:  s.NOutliers,
	}
	g.offsets = append([]int(nil), s.Offsets...)
	g.posOf = make([]int, len(s.Layout.Skeleton))
	for j := range g.posOf {
		g.posOf[j] = -1
	}
	for k, j := range g.gridDims {
		g.posOf[j] = k
	}
	g.strides = make([]int, len(g.gridDims))
	stride := 1
	for i := len(g.gridDims) - 1; i >= 0; i-- {
		g.strides[i] = stride
		stride *= g.layout.P[g.gridDims[i]]
	}
	return g, nil
}

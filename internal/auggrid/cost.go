package auggrid

import (
	"math/rand"

	"repro/internal/colstore"
	"repro/internal/query"
)

// CostWeights are the coefficients of the analytic cost model (§5.3.1):
//
//	Time = W0*(#cell ranges) + W1*(#scanned points)*(#filtered dims)
//	     + W2*(#cells visited)
//
// W0 is the cost of one lookup-table access plus the cache miss of jumping
// to a new physical range; W1 is the cost of scanning one dimension of one
// point. W2 is a small per-visited-cell charge for partition-range
// computation and run emission — a term the paper's two-weight model can
// ignore at 184M+ rows (scan time dwarfs it) but that matters at small
// scale, where the two-term model drives partition counts toward absurd
// values because scans look free. Values are in nanoseconds.
//
// The defaults are anchored to the dispatched vectorized ScanRange
// kernels: the AVX2 tier streams a memory-resident column at ~0.4-0.5
// ns/row·dim where the pre-vectorization scan path cost ~0.9, so W1 is
// 0.45 (pricing scans at the old rate would overstate scan cost 2x and
// the predicted times Fig 12b compares against measurement would drift).
// W0 and W2 keep their validated ratios to W1 — layout choice minimizes
// cost, and the argmin only sees relative weights, so the default
// *layouts* are identical to the pre-SIMD calibration that the
// scanned-points claims tests pinned. CalibrateWeights re-measures all
// three on the host (and through the dispatcher, so a machine without
// AVX2 calibrates to its own portable-kernel scan rate).
type CostWeights struct {
	W0 float64
	W1 float64
	W2 float64
}

// DefaultCostWeights returns the built-in calibration.
func DefaultCostWeights() CostWeights { return CostWeights{W0: 60, W1: 0.45, W2: 3} }

// Evaluator predicts average query time for candidate layouts by building a
// miniature Augmented Grid over a row sample and replaying the workload
// against it. Running the real query path on the sample grid yields exactly
// the features the cost model needs — cell ranges and (scaled) scanned
// points — with no separate estimation code to drift out of sync.
type Evaluator struct {
	sample  *colstore.Store
	queries []query.Query
	weights CostWeights
	scale   float64 // full rows per sample row
	ctx     *ExecContext
	// Evals counts cost-model evaluations, for optimizer comparisons.
	Evals int
}

// EvalConfig bounds the evaluator's work.
type EvalConfig struct {
	// SampleSize is the number of rows in the evaluation sample
	// (default 2048).
	SampleSize int
	// MaxQueries caps the replayed workload (default 100).
	MaxQueries int
	// Weights are the cost-model coefficients (default DefaultCostWeights).
	Weights CostWeights
	// Seed drives sampling (default 1).
	Seed int64
}

func (c *EvalConfig) fill() {
	if c.SampleSize <= 0 {
		c.SampleSize = 2048
	}
	if c.MaxQueries <= 0 {
		c.MaxQueries = 100
	}
	if c.Weights == (CostWeights{}) {
		c.Weights = DefaultCostWeights()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// NewEvaluator samples rows of st (restricted to rows) and the workload.
func NewEvaluator(st *colstore.Store, rows []int, queries []query.Query, cfg EvalConfig) *Evaluator {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))

	n := len(rows)
	sampleRows := rows
	if n > cfg.SampleSize {
		sampleRows = make([]int, cfg.SampleSize)
		for i := range sampleRows {
			sampleRows[i] = rows[rng.Intn(n)]
		}
	}
	d := st.NumDims()
	cols := make([][]int64, d)
	for j := 0; j < d; j++ {
		cols[j] = gather(st.Column(j), sampleRows)
	}
	sample, err := colstore.FromColumns(cols, st.Names())
	if err != nil {
		panic("auggrid: " + err.Error()) // sample columns are consistent by construction
	}

	qs := queries
	if len(qs) > cfg.MaxQueries {
		qs = make([]query.Query, cfg.MaxQueries)
		perm := rng.Perm(len(queries))
		for i := range qs {
			qs[i] = queries[perm[i]]
		}
	}
	scale := 1.0
	if len(sampleRows) > 0 {
		scale = float64(n) / float64(len(sampleRows))
	}
	return &Evaluator{sample: sample, queries: qs, weights: cfg.Weights, scale: scale, ctx: NewExecContext()}
}

// NumQueries returns the size of the replayed workload.
func (e *Evaluator) NumQueries() int { return len(e.queries) }

// Cost returns the predicted average query time (ns) for the layout, or
// +Inf if the layout cannot be built.
func (e *Evaluator) Cost(l Layout) float64 {
	e.Evals++
	g, err := e.buildSampleGrid(l)
	if err != nil {
		return inf()
	}
	total := 0.0
	for _, q := range e.queries {
		total += e.queryCost(g, q)
	}
	if len(e.queries) == 0 {
		return 0
	}
	return total / float64(len(e.queries))
}

// PredictQuery returns the predicted time (ns) of one query under layout l;
// Fig 12b compares this against measured time.
func (e *Evaluator) PredictQuery(l Layout, q query.Query) float64 {
	g, err := e.buildSampleGrid(l)
	if err != nil {
		return inf()
	}
	return e.queryCost(g, q)
}

func (e *Evaluator) buildSampleGrid(l Layout) (*Grid, error) {
	rows := make([]int, e.sample.NumRows())
	for i := range rows {
		rows[i] = i
	}
	st := e.sample.Clone()
	g, ordered, err := Build(st, rows, l)
	if err != nil {
		return nil, err
	}
	if err := st.Reorder(ordered); err != nil {
		return nil, err
	}
	g.Finalize(st, 0)
	return g, nil
}

// queryCost replays one query through the real execution path. The
// evaluator owns a private ExecContext, so an Evaluator is single-goroutine
// (each concurrently optimized region builds its own).
func (e *Evaluator) queryCost(g *Grid, q query.Query) float64 {
	res, st := g.Execute(q, e.ctx)
	scanned := float64(res.PointsScanned) * e.scale
	nf := float64(len(q.Filters))
	if nf == 0 {
		nf = 1
	}
	return e.weights.W0*float64(st.CellRanges) +
		e.weights.W1*scanned*nf +
		e.weights.W2*float64(st.CellsVisited)
}

func inf() float64 { return 1e300 }

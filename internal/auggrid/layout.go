// Package auggrid implements the Augmented Grid (§5), the correlation-aware
// generalization of Flood's grid that Tsunami places in every Grid Tree
// region. Each dimension is partitioned by one of three strategies:
//
//   - Independent: uniformly in CDF(X) — Flood's strategy (§2.2);
//   - Mapped: the dimension is removed from the grid and its filters are
//     rewritten over a target dimension through a functional mapping, a
//     linear regression with residual error bounds (§5.2.1);
//   - Conditional: partitioned uniformly in CDF(X|B) for a base dimension B,
//     i.e. per-base-partition boundaries (§5.2.2).
//
// A full assignment of strategies is a skeleton; skeleton plus per-dimension
// partition counts is a Layout (§5.2). Layouts are chosen by the optimizers
// in optimize.go against the cost model in cost.go. Flood is exactly the
// all-Independent special case, which internal/flood wraps.
package auggrid

import (
	"fmt"
	"strings"
)

// Kind is a per-dimension partitioning strategy.
type Kind int

const (
	// Independent partitions the dimension uniformly in its own CDF.
	Independent Kind = iota
	// Mapped removes the dimension from the grid; filters over it are
	// transformed onto the target dimension via a functional mapping.
	Mapped
	// Conditional partitions the dimension uniformly in CDF(dim | base),
	// with boundaries that differ per base partition.
	Conditional
)

func (k Kind) String() string {
	switch k {
	case Independent:
		return "indep"
	case Mapped:
		return "mapped"
	case Conditional:
		return "conditional"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DimStrategy is the strategy of one dimension. Other is the functional
// mapping target (Mapped) or the base dimension (Conditional); -1 otherwise.
type DimStrategy struct {
	Kind  Kind
	Other int
}

// Skeleton assigns a strategy to every dimension (§5.2).
type Skeleton []DimStrategy

// IndependentSkeleton returns the all-Independent skeleton over d dims —
// Flood's skeleton.
func IndependentSkeleton(d int) Skeleton {
	s := make(Skeleton, d)
	for i := range s {
		s[i] = DimStrategy{Kind: Independent, Other: -1}
	}
	return s
}

// Clone deep-copies the skeleton.
func (s Skeleton) Clone() Skeleton { return append(Skeleton(nil), s...) }

// Validate enforces the paper's restrictions (§5.2.1, §5.2.2): a mapping
// target cannot itself be mapped; a conditional base must be Independent
// (it cannot be mapped or dependent); no self references.
func (s Skeleton) Validate() error {
	for i, st := range s {
		switch st.Kind {
		case Independent:
			if st.Other != -1 {
				return fmt.Errorf("auggrid: dim %d independent but Other=%d", i, st.Other)
			}
		case Mapped:
			if st.Other < 0 || st.Other >= len(s) || st.Other == i {
				return fmt.Errorf("auggrid: dim %d mapped to invalid target %d", i, st.Other)
			}
			if s[st.Other].Kind == Mapped {
				return fmt.Errorf("auggrid: dim %d mapped to dim %d which is itself mapped", i, st.Other)
			}
		case Conditional:
			if st.Other < 0 || st.Other >= len(s) || st.Other == i {
				return fmt.Errorf("auggrid: dim %d conditional on invalid base %d", i, st.Other)
			}
			if s[st.Other].Kind != Independent {
				return fmt.Errorf("auggrid: dim %d conditional on dim %d which is not independent", i, st.Other)
			}
		default:
			return fmt.Errorf("auggrid: dim %d has unknown kind %d", i, st.Kind)
		}
	}
	return nil
}

// String renders the skeleton in the paper's notation, e.g. "[X,Y|X,Z→X]".
func (s Skeleton) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, st := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		switch st.Kind {
		case Independent:
			fmt.Fprintf(&b, "d%d", i)
		case Mapped:
			fmt.Fprintf(&b, "d%d→d%d", i, st.Other)
		case Conditional:
			fmt.Fprintf(&b, "d%d|d%d", i, st.Other)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// Layout is a concrete Augmented Grid instantiation: skeleton, partition
// counts, and an optional within-cell sort dimension refined by binary
// search at query time (Flood's sort dimension, which §6.1's modified Flood
// retains; the Augmented Grid keeps it too).
type Layout struct {
	Skeleton Skeleton
	// P is the number of partitions per dimension. Mapped dims and the sort
	// dim are forced to 1.
	P []int
	// SortDim is the within-cell sort dimension, or -1 for none.
	SortDim int
	// OutlierFrac enables outlier-robust functional mappings (§8): up to
	// this fraction of rows may be excluded from the mappings' error bands
	// and diverted to a per-grid outlier buffer that every query scans.
	// Zero disables the buffer (the paper's base design).
	OutlierFrac float64
}

// NewLayout builds a layout, normalizing P entries for non-grid dims to 1.
func NewLayout(s Skeleton, p []int, sortDim int) Layout {
	l := Layout{Skeleton: s.Clone(), P: append([]int(nil), p...), SortDim: sortDim}
	l.normalize()
	return l
}

func (l *Layout) normalize() {
	for i := range l.P {
		if l.P[i] < 1 {
			l.P[i] = 1
		}
		if l.Skeleton[i].Kind == Mapped || i == l.SortDim {
			l.P[i] = 1
		}
	}
}

// Clone deep-copies the layout.
func (l Layout) Clone() Layout {
	return Layout{
		Skeleton:    l.Skeleton.Clone(),
		P:           append([]int(nil), l.P...),
		SortDim:     l.SortDim,
		OutlierFrac: l.OutlierFrac,
	}
}

// GridDims returns the dims that participate in the grid (not mapped, not
// the sort dim), in dimension order — the row-major cell ordering.
func (l Layout) GridDims() []int {
	var out []int
	for i, st := range l.Skeleton {
		if st.Kind == Mapped || i == l.SortDim {
			continue
		}
		out = append(out, i)
	}
	return out
}

// NumCells returns the total cell count ∏ P[i] over grid dims.
func (l Layout) NumCells() int {
	n := 1
	for _, d := range l.GridDims() {
		n *= l.P[d]
	}
	return n
}

// Validate checks the skeleton and that the sort dim is not mapped or used
// as a base or target.
func (l Layout) Validate() error {
	if err := l.Skeleton.Validate(); err != nil {
		return err
	}
	if len(l.P) != len(l.Skeleton) {
		return fmt.Errorf("auggrid: %d partition counts for %d dims", len(l.P), len(l.Skeleton))
	}
	if l.SortDim >= len(l.Skeleton) {
		return fmt.Errorf("auggrid: sort dim %d out of range", l.SortDim)
	}
	if l.SortDim >= 0 {
		if l.Skeleton[l.SortDim].Kind != Independent {
			return fmt.Errorf("auggrid: sort dim %d must be independent", l.SortDim)
		}
		for i, st := range l.Skeleton {
			if st.Kind != Independent && st.Other == l.SortDim {
				return fmt.Errorf("auggrid: dim %d references sort dim %d", i, l.SortDim)
			}
		}
	}
	return nil
}

// String renders the layout compactly.
func (l Layout) String() string {
	var b strings.Builder
	b.WriteString(l.Skeleton.String())
	b.WriteString(" P=")
	fmt.Fprintf(&b, "%v", l.P)
	if l.SortDim >= 0 {
		fmt.Fprintf(&b, " sort=d%d", l.SortDim)
	}
	return b.String()
}

// CountKinds returns the number of functional mappings and conditional CDFs
// in the skeleton (reported per region in Tab 4).
func (s Skeleton) CountKinds() (fms, ccdfs int) {
	for _, st := range s {
		switch st.Kind {
		case Mapped:
			fms++
		case Conditional:
			ccdfs++
		}
	}
	return
}

package auggrid

import (
	"sort"

	"repro/internal/stats"
)

// Outlier-robust functional mappings (§8 "Complex Correlations"): a plain
// least-squares mapping's error band is set by its worst residual, so one
// outlier can make the mapping useless. Following the paper's proposed fix
// (and Hermit [Wu et al. 2019]), the mapping can instead be fit on the
// central mass of residuals, with the outlying rows diverted to a separate
// buffer that every query scans. The buffer is tiny (a configurable
// fraction of rows), so the scan cost is negligible while the error band —
// and with it the number of points scanned through the grid — shrinks
// dramatically.

// robustFit fits y≈ax+b and tightens the residual band to exclude up to
// outlierFrac of the points; the boolean slice marks the excluded rows.
// With outlierFrac <= 0 it degenerates to the plain fit and marks nothing.
func robustFit(x, y []int64, outlierFrac float64) (stats.LinReg, []bool) {
	lr := stats.FitLinReg(x, y)
	n := len(x)
	if outlierFrac <= 0 || n == 0 {
		return lr, nil
	}
	res := make([]float64, n)
	for i := 0; i < n; i++ {
		res[i] = float64(y[i]) - lr.Predict(float64(x[i]))
	}
	sorted := append([]float64(nil), res...)
	sort.Float64s(sorted)
	// Trim half the budget from each tail.
	k := int(outlierFrac * float64(n) / 2)
	if k >= n/2 {
		k = n/2 - 1
	}
	if k < 0 {
		k = 0
	}
	lo, hi := sorted[k], sorted[n-1-k]
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	trimmed := lr
	trimmed.ErrLo, trimmed.ErrHi = lo, hi
	out := make([]bool, n)
	for i, r := range res {
		if r < lo || r > hi {
			out[i] = true
		}
	}
	return trimmed, out
}

package auggrid

import (
	"math/rand"
	"testing"

	"repro/internal/colstore"
	"repro/internal/query"
)

// optStore builds a store with one tight pair (d1 ≈ 2*d0), one generic
// pair (d2 correlated with d0), and one independent dim (d3).
func optStore(n int, seed int64) *colstore.Store {
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]int64, 4)
	for j := range cols {
		cols[j] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		x := rng.Int63n(100000)
		cols[0][i] = x
		cols[1][i] = 2*x + rng.Int63n(800)              // tight: err ~0.4% of domain
		cols[2][i] = x + int64(rng.NormFloat64()*20000) // generic
		cols[3][i] = rng.Int63n(100000)                 // independent
	}
	st, err := colstore.FromColumns(cols, nil)
	if err != nil {
		panic(err)
	}
	return st
}

func optQueries(st *colstore.Store, n int, seed int64) []query.Query {
	rng := rand.New(rand.NewSource(seed))
	out := make([]query.Query, n)
	for i := range out {
		var fs []query.Filter
		for j := 0; j < st.NumDims(); j++ {
			if rng.Float64() < 0.5 {
				continue
			}
			lo, hi := st.MinMax(j)
			span := hi - lo
			a := lo + rng.Int63n(span)
			fs = append(fs, query.Filter{Dim: j, Lo: a, Hi: a + span/25})
		}
		if len(fs) == 0 {
			fs = append(fs, query.Filter{Dim: 0, Lo: 0, Hi: 5000})
		}
		out[i] = query.NewCount(fs...)
	}
	return out
}

func optCfg() OptimizeConfig {
	return OptimizeConfig{
		Eval:     EvalConfig{SampleSize: 1024, MaxQueries: 30, Seed: 3},
		MaxCells: 1 << 10,
		MaxIters: 3,
		Seed:     3,
	}
}

func allRowsOf(st *colstore.Store) []int {
	rows := make([]int, st.NumRows())
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func TestHeuristicSkeletonFindsCorrelations(t *testing.T) {
	st := optStore(20000, 1)
	qs := optQueries(st, 60, 2)
	cfg := optCfg()
	cfg.fill()
	ctx := newSearchCtx(st, allRowsOf(st), qs, cfg)
	s := ctx.heuristicSkeleton()
	if err := s.Validate(); err != nil {
		t.Fatalf("heuristic skeleton invalid: %v", err)
	}
	// The tight pair (d0, d1) should produce a functional mapping one way
	// or the other.
	fms, _ := s.CountKinds()
	if fms == 0 {
		t.Errorf("expected at least one functional mapping in %v", s)
	}
	hasPairMapping := (s[0].Kind == Mapped && s[0].Other == 1) ||
		(s[1].Kind == Mapped && s[1].Other == 0)
	if !hasPairMapping {
		t.Errorf("expected d0↔d1 mapping, got %v", s)
	}
}

func TestHeuristicSkeletonDisabledThresholds(t *testing.T) {
	st := optStore(10000, 3)
	qs := optQueries(st, 40, 4)
	cfg := optCfg()
	cfg.FMErrFrac = -1
	cfg.CCDFEmptyFrac = 2
	cfg.fill()
	ctx := newSearchCtx(st, allRowsOf(st), qs, cfg)
	s := ctx.heuristicSkeleton()
	for j, strat := range s {
		if strat.Kind != Independent {
			t.Errorf("dim %d: disabled heuristics still produced %v", j, strat.Kind)
		}
	}
}

func TestAllOptimizersProduceValidLayouts(t *testing.T) {
	st := optStore(10000, 5)
	qs := optQueries(st, 50, 6)
	rows := allRowsOf(st)
	for _, opt := range []Optimizer{AGD(), GD(), BlackBox(), AGDNI()} {
		layout, cost := Optimize(st, rows, qs, opt, optCfg())
		if err := layout.Validate(); err != nil {
			t.Errorf("%s produced invalid layout: %v", opt.Name, err)
		}
		if cost <= 0 || cost >= 1e300 {
			t.Errorf("%s cost = %v", opt.Name, cost)
		}
		// The layout must actually build and answer queries correctly.
		g, store, err := buildAndFinalize(st, layout)
		if err != nil {
			t.Fatalf("%s layout failed to build: %v", opt.Name, err)
		}
		checkGridCorrect(t, g, store, qs[:20], opt.Name)
	}
}

func buildAndFinalize(st *colstore.Store, l Layout) (*Grid, *colstore.Store, error) {
	clone := st.Clone()
	g, ordered, err := Build(clone, allRowsOf(clone), l)
	if err != nil {
		return nil, nil, err
	}
	if err := clone.Reorder(ordered); err != nil {
		return nil, nil, err
	}
	g.Finalize(clone, 0)
	return g, clone, nil
}

func checkGridCorrect(t *testing.T, g *Grid, st *colstore.Store, qs []query.Query, label string) {
	t.Helper()
	for _, q := range qs {
		var want colstore.ScanResult
		st.ScanRange(q, 0, st.NumRows(), false, &want)
		got, _ := g.Execute(q, nil)
		if got.Count != want.Count {
			t.Fatalf("%s: %s got %d want %d", label, q, got.Count, want.Count)
		}
	}
}

func TestAGDImprovesOnInitialLayout(t *testing.T) {
	st := optStore(20000, 7)
	qs := optQueries(st, 60, 8)
	cfg := optCfg()
	cfg.fill()
	ctx := newSearchCtx(st, allRowsOf(st), qs, cfg)
	s0 := ctx.heuristicSkeleton()
	init := NewLayout(s0, ctx.initialP(s0), ctx.sortDim)
	initCost := ctx.eval.Cost(init)
	final := runAGD(ctx)
	finalCost := ctx.eval.Cost(final)
	if finalCost > initCost*1.001 {
		t.Errorf("AGD made things worse: %.0f -> %.0f", initCost, finalCost)
	}
}

func TestAGDNIRecoversFromNaiveStart(t *testing.T) {
	// §6.6: AGD from the naive all-independent skeleton should still find
	// correlation-aware layouts via the one-hop local search.
	st := optStore(20000, 9)
	qs := optQueries(st, 60, 10)
	cfg := optCfg()
	layoutNI, costNI := Optimize(st, allRowsOf(st), qs, AGDNI(), cfg)
	_, costAGD := Optimize(st, allRowsOf(st), qs, AGD(), cfg)
	if err := layoutNI.Validate(); err != nil {
		t.Fatal(err)
	}
	// AGD-NI should land within a small factor of AGD (the paper's Fig 12b
	// shows them comparable; on Taxi AGD-NI even wins).
	if costNI > costAGD*3 {
		t.Errorf("AGD-NI cost %.0f far above AGD cost %.0f", costNI, costAGD)
	}
}

func TestCellBudgetScalesWithRows(t *testing.T) {
	st := optStore(4000, 11)
	qs := optQueries(st, 40, 12)
	cfg := optCfg()
	cfg.MaxCells = 1 << 20
	layout, _ := Optimize(st, allRowsOf(st), qs, AGD(), cfg)
	if layout.NumCells() > 4000/32 {
		t.Errorf("cells = %d exceed rows/32 budget", layout.NumCells())
	}
}

func TestCostModelPrefersPartitionedOverUnpartitioned(t *testing.T) {
	st := optStore(20000, 13)
	qs := []query.Query{}
	for i := 0; i < 30; i++ {
		lo := int64(i * 3000)
		qs = append(qs, query.NewCount(query.Filter{Dim: 3, Lo: lo, Hi: lo + 1000}))
	}
	cfg := optCfg()
	cfg.fill()
	e := NewEvaluator(st, allRowsOf(st), qs, cfg.Eval)
	sk := IndependentSkeleton(4)
	coarse := NewLayout(sk, []int{1, 1, 1, 1}, -1)
	fine := NewLayout(sk, []int{1, 1, 1, 16}, -1)
	if e.Cost(fine) >= e.Cost(coarse) {
		t.Errorf("cost model should favor partitioning the filtered dim: fine=%.0f coarse=%.0f",
			e.Cost(fine), e.Cost(coarse))
	}
}

func TestCostModelMonotoneInScannedWork(t *testing.T) {
	// More partitions on a never-filtered dim adds overhead with no scan
	// savings; the W2 term must make that strictly worse.
	st := optStore(20000, 14)
	qs := []query.Query{}
	for i := 0; i < 20; i++ {
		lo := int64(i * 4000)
		qs = append(qs, query.NewCount(query.Filter{Dim: 0, Lo: lo, Hi: lo + 2000}))
	}
	cfg := optCfg()
	cfg.fill()
	e := NewEvaluator(st, allRowsOf(st), qs, cfg.Eval)
	sk := IndependentSkeleton(4)
	lean := NewLayout(sk, []int{8, 1, 1, 1}, -1)
	bloated := NewLayout(sk, []int{8, 1, 1, 32}, -1)
	if e.Cost(bloated) <= e.Cost(lean) {
		t.Errorf("useless partitions should cost: bloated=%.0f lean=%.0f",
			e.Cost(bloated), e.Cost(lean))
	}
}

func TestHopsForDimRespectRestrictions(t *testing.T) {
	cfg := optCfg()
	cfg.fill()
	st := optStore(2000, 15)
	ctx := newSearchCtx(st, allRowsOf(st), optQueries(st, 20, 16), cfg)
	s := IndependentSkeleton(4)
	s[1] = DimStrategy{Kind: Conditional, Other: 0} // d0 is a base
	// d0 is referenced: it may only become Independent (it already is), so
	// no mapped/conditional hops are allowed for it.
	for _, h := range ctx.hopsForDim(s, 0) {
		if h.Kind != Independent {
			t.Errorf("base dim offered non-independent hop %v", h)
		}
	}
	// Hops for d2 must never target d1 with Conditional (d1 not
	// independent) and never map onto a mapped dim.
	s[3] = DimStrategy{Kind: Mapped, Other: 0}
	for _, h := range ctx.hopsForDim(s, 2) {
		if h.Kind == Conditional && h.Other == 1 {
			t.Errorf("conditional on dependent dim offered: %v", h)
		}
		if h.Kind == Mapped && h.Other == 3 {
			t.Errorf("mapping onto mapped dim offered: %v", h)
		}
	}
}

func TestRandomNeighborAlwaysValid(t *testing.T) {
	cfg := optCfg()
	cfg.fill()
	st := optStore(4000, 17)
	ctx := newSearchCtx(st, allRowsOf(st), optQueries(st, 30, 18), cfg)
	s := ctx.heuristicSkeleton()
	l := NewLayout(s, ctx.initialP(s), ctx.sortDim)
	for i := 0; i < 200; i++ {
		l = ctx.randomNeighbor(l)
		if err := l.Validate(); err != nil {
			t.Fatalf("random neighbor %d invalid: %v\n%v", i, err, l)
		}
		if l.NumCells() > ctx.cfg.MaxCells {
			t.Fatalf("random neighbor %d over budget", i)
		}
	}
}

func TestEmptyCellFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n := 10000
	x := make([]int64, n)
	yTight := make([]int64, n)
	yIndep := make([]int64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Int63n(100000)
		yTight[i] = x[i] + rng.Int63n(100)
		yIndep[i] = rng.Int63n(100000)
	}
	tight := emptyCellFraction(x, yTight, 16)
	indep := emptyCellFraction(x, yIndep, 16)
	if tight < 0.5 {
		t.Errorf("tight correlation empty fraction = %.2f, want > 0.5", tight)
	}
	if indep > 0.2 {
		t.Errorf("independent empty fraction = %.2f, want ≈0", indep)
	}
}

func TestLayoutValidateRejections(t *testing.T) {
	s := IndependentSkeleton(3)
	s[0] = DimStrategy{Kind: Mapped, Other: 1}
	s[1] = DimStrategy{Kind: Mapped, Other: 2}
	if err := s.Validate(); err == nil {
		t.Error("mapping onto a mapped dim must be rejected")
	}
	s2 := IndependentSkeleton(3)
	s2[0] = DimStrategy{Kind: Conditional, Other: 1}
	s2[1] = DimStrategy{Kind: Conditional, Other: 2}
	if err := s2.Validate(); err == nil {
		t.Error("conditional base must be independent")
	}
	s3 := IndependentSkeleton(3)
	s3[2] = DimStrategy{Kind: Mapped, Other: 2}
	if err := s3.Validate(); err == nil {
		t.Error("self-mapping must be rejected")
	}
	l := NewLayout(IndependentSkeleton(3), []int{2, 2, 2}, 1)
	l.Skeleton[0] = DimStrategy{Kind: Conditional, Other: 1}
	if err := l.Validate(); err == nil {
		t.Error("referencing the sort dim must be rejected")
	}
}

func TestEvaluatorEvalsCounted(t *testing.T) {
	st := optStore(2000, 20)
	qs := optQueries(st, 20, 21)
	cfg := optCfg()
	cfg.fill()
	e := NewEvaluator(st, allRowsOf(st), qs, cfg.Eval)
	before := e.Evals
	e.Cost(NewLayout(IndependentSkeleton(4), []int{2, 2, 2, 2}, -1))
	if e.Evals != before+1 {
		t.Errorf("eval counter not incremented")
	}
}

package auggrid

import (
	"math/rand"
	"time"
)

// CalibrateWeights micro-measures the cost model's coefficients on the
// current machine (§5.3.1: w0 is a lookup plus the cache miss of jumping
// to a new physical range, w1 is the per-value scan cost). The measurement
// takes a few milliseconds. DefaultCostWeights is used when calibration is
// skipped; calibrating tightens the Fig 12b predicted-vs-actual agreement
// on machines that differ a lot from the defaults.
func CalibrateWeights() CostWeights {
	const n = 1 << 20
	data := make([]int64, n)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = rng.Int63n(1000)
	}

	// W1: sequential scan cost per value, with a filter check like
	// colstore.ScanRange's inner loop.
	var sink int64
	start := time.Now()
	passes := 0
	for time.Since(start) < 10*time.Millisecond {
		for _, v := range data {
			if v >= 100 && v <= 900 {
				sink++
			}
		}
		passes++
	}
	w1 := float64(time.Since(start).Nanoseconds()) / float64(passes*n)

	// W0: random-range jump cost — a dependent random access per jump,
	// defeating the prefetcher like a fresh cell range does.
	jumps := make([]int, 1<<14)
	for i := range jumps {
		jumps[i] = rng.Intn(n)
	}
	start = time.Now()
	passes = 0
	for time.Since(start) < 10*time.Millisecond {
		idx := 0
		for range jumps {
			idx = int(data[jumps[idx&(len(jumps)-1)]]) & (len(jumps) - 1)
			sink += int64(idx)
		}
		passes++
	}
	w0 := float64(time.Since(start).Nanoseconds()) / float64(passes*len(jumps))
	// A range costs a lookup-table access plus the miss itself.
	w0 *= 2

	_ = sink
	if w1 <= 0 {
		w1 = DefaultCostWeights().W1
	}
	if w0 <= 0 {
		w0 = DefaultCostWeights().W0
	}
	return CostWeights{W0: w0, W1: w1, W2: w0 / 20}
}

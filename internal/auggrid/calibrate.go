package auggrid

import (
	"math/rand"
	"time"

	"repro/internal/colstore"
	"repro/internal/query"
)

// CalibrateWeights micro-measures the cost model's coefficients on the
// current machine (§5.3.1: w0 is a lookup plus the cache miss of jumping
// to a new physical range, w1 is the per-value scan cost). The measurement
// takes a few milliseconds. DefaultCostWeights is used when calibration is
// skipped; calibrating tightens the Fig 12b predicted-vs-actual agreement
// on machines that differ a lot from the defaults.
func CalibrateWeights() CostWeights {
	const n = 1 << 20
	data := make([]int64, n)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = rng.Int63n(1000)
	}

	// W1: per-row-per-dimension scan cost of the production path. The model
	// prices what Execute actually runs — colstore.ScanRange through its
	// kernel dispatcher (AVX2 where supported, portable branch-free
	// otherwise) — not a hand-rolled branchy loop, which since the
	// vectorized kernels landed would overprice scans by 5-20x and push the
	// optimizer toward layouts with too many cell ranges. A 1-filter COUNT
	// at ~50% selectivity exercises the mask kernel without the aggregate
	// column, matching the single-dim unit the W1 term multiplies.
	st, err := colstore.FromColumns([][]int64{data}, nil)
	if err != nil {
		panic("auggrid: " + err.Error()) // one well-formed column by construction
	}
	q := query.Query{
		Agg:     query.Count,
		Filters: []query.Filter{{Dim: 0, Lo: 250, Hi: 749}},
	}
	var res colstore.ScanResult
	st.ScanRange(q, 0, n, false, &res) // warm-up
	start := time.Now()
	passes := 0
	for time.Since(start) < 10*time.Millisecond {
		res = colstore.ScanResult{}
		st.ScanRange(q, 0, n, false, &res)
		passes++
	}
	w1 := float64(time.Since(start).Nanoseconds()) / float64(passes*n)

	// W0: random-range jump cost — a dependent random access per jump,
	// defeating the prefetcher like a fresh cell range does.
	jumps := make([]int, 1<<14)
	for i := range jumps {
		jumps[i] = rng.Intn(n)
	}
	var sink int64
	start = time.Now()
	passes = 0
	for time.Since(start) < 10*time.Millisecond {
		idx := 0
		for range jumps {
			idx = int(data[jumps[idx&(len(jumps)-1)]]) & (len(jumps) - 1)
			sink += int64(idx)
		}
		passes++
	}
	w0 := float64(time.Since(start).Nanoseconds()) / float64(passes*len(jumps))
	// A range costs a lookup-table access plus the miss itself.
	w0 *= 2

	_ = sink
	if w1 <= 0 {
		w1 = DefaultCostWeights().W1
	}
	if w0 <= 0 {
		w0 = DefaultCostWeights().W0
	}
	return CostWeights{W0: w0, W1: w1, W2: w0 / 20}
}

package octree

import (
	"testing"

	"repro/internal/query"
	"repro/internal/testutil"
)

func TestOctreeMatchesFullScan(t *testing.T) {
	st := testutil.SmallTaxi(8000, 1)
	qs := testutil.RandomQueries(st, 150, 2)
	idx := Build(st, Config{PageSize: 256})
	testutil.CheckMatchesFullScan(t, idx, st, qs)
}

func TestOctreeSmallPages(t *testing.T) {
	st := testutil.SmallTaxi(2000, 3)
	qs := testutil.RandomQueries(st, 80, 4)
	idx := Build(st, Config{PageSize: 32})
	testutil.CheckMatchesFullScan(t, idx, st, qs)
}

func TestOctreeLeavesCoverAllPoints(t *testing.T) {
	st := testutil.SmallTaxi(4000, 5)
	idx := Build(st, Config{PageSize: 128})
	total := 0
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd.leaf {
			total += nd.end - nd.start
			return
		}
		for _, c := range nd.children {
			walk(c)
		}
	}
	walk(idx.root)
	if total != 4000 {
		t.Errorf("leaves cover %d points, want 4000", total)
	}
}

func TestOctreeUnfiltered(t *testing.T) {
	st := testutil.SmallTaxi(1000, 6)
	idx := Build(st, Config{PageSize: 64})
	if res := idx.Execute(query.NewCount()); res.Count != 1000 {
		t.Errorf("count = %d, want 1000", res.Count)
	}
}

func TestOctreeConstantColumn(t *testing.T) {
	st := testutil.SmallTaxi(2000, 7)
	for j := 0; j < st.NumDims(); j++ {
		col := st.Column(j)
		for i := range col {
			col[i] = 42 // fully degenerate: a single point value
		}
	}
	idx := Build(st, Config{PageSize: 100})
	res := idx.Execute(query.NewCount(query.Filter{Dim: 0, Lo: 42, Hi: 42}))
	if res.Count != 2000 {
		t.Errorf("count = %d, want 2000", res.Count)
	}
}

func TestOctreeMaxDepthBounds(t *testing.T) {
	st := testutil.SmallTaxi(4000, 8)
	idx := Build(st, Config{PageSize: 1, MaxDepth: 3})
	var depth func(nd *node) int
	depth = func(nd *node) int {
		if nd.leaf {
			return 1
		}
		max := 0
		for _, c := range nd.children {
			if d := depth(c); d > max {
				max = d
			}
		}
		return max + 1
	}
	if d := depth(idx.root); d > 4 {
		t.Errorf("depth = %d, want <= 4 with MaxDepth 3", d)
	}
}

// Package octree implements the hyperoctree baseline (§6.1): space is
// recursively subdivided equally into hyperoctants (the d-dimensional
// analog of quadrants) until each leaf holds at most pageSize points.
//
// Children are kept sparsely — only non-empty octants materialize — so the
// structure stays feasible at high dimensionality (2^d potential children
// per node, Fig 10 goes to d=20).
package octree

import (
	"sort"
	"time"

	"repro/internal/colstore"
	"repro/internal/index"
	"repro/internal/query"
)

// Index is a clustered hyperoctree.
type Index struct {
	store    *colstore.Store
	root     *node
	pageSize int
	numNodes int
	maxDepth int
	stats    index.BuildStats
}

type node struct {
	lo, hi   []int64 // inclusive region bounds
	children map[uint32]*node
	// Leaf range [start, end) in physical storage.
	start, end int
	leaf       bool
}

// Config controls the build.
type Config struct {
	// PageSize is the maximum points per leaf (default 4096).
	PageSize int
	// MaxDepth bounds recursion; beyond it oversized leaves are accepted
	// (default 24).
	MaxDepth int
}

// Build constructs the hyperoctree over a clone of s.
func Build(s *colstore.Store, cfg Config) *Index {
	if cfg.PageSize <= 0 {
		cfg.PageSize = 4096
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 24
	}
	if s.NumDims() > 32 {
		panic("octree: more than 32 dimensions not supported")
	}
	sortStart := time.Now()
	clone := s.Clone()
	x := &Index{store: clone, pageSize: cfg.PageSize, maxDepth: cfg.MaxDepth}
	n := clone.NumRows()
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	d := clone.NumDims()
	lo := make([]int64, d)
	hi := make([]int64, d)
	for j := 0; j < d; j++ {
		lo[j], hi[j] = clone.MinMax(j)
	}
	x.root = x.build(rows, 0, 0, lo, hi)
	if err := clone.Reorder(rows); err != nil {
		panic("octree: " + err.Error())
	}
	x.stats = index.BuildStats{SortSeconds: time.Since(sortStart).Seconds()}
	return x
}

func (x *Index) build(rows []int, offset, depth int, lo, hi []int64) *node {
	x.numNodes++
	nd := &node{lo: append([]int64(nil), lo...), hi: append([]int64(nil), hi...)}
	if len(rows) <= x.pageSize || depth >= x.maxDepth || !splittable(lo, hi) {
		nd.leaf = true
		nd.start, nd.end = offset, offset+len(rows)
		return nd
	}
	d := x.store.NumDims()
	mid := make([]int64, d)
	for j := 0; j < d; j++ {
		// Midpoint; for a one-value extent the dimension contributes no bit.
		mid[j] = lo[j] + (hi[j]-lo[j])/2
	}
	// Bucket rows by octant key: bit j set iff value > mid[j].
	buckets := make(map[uint32][]int)
	for _, r := range rows {
		var key uint32
		for j := 0; j < d; j++ {
			if x.store.Value(r, j) > mid[j] {
				key |= 1 << uint(j)
			}
		}
		buckets[key] = append(buckets[key], r)
	}
	if len(buckets) == 1 {
		// Degenerate: all points in one octant of a splittable box — recurse
		// directly into the shrunken box to avoid infinite same-size loops.
		for key, b := range buckets {
			clo, chi := octantBounds(lo, hi, mid, key)
			copy(rows, b)
			nd.children = map[uint32]*node{key: x.build(rows, offset, depth+1, clo, chi)}
		}
		return nd
	}
	nd.children = make(map[uint32]*node, len(buckets))
	// Deterministic order: ascending key.
	keys := make([]uint32, 0, len(buckets))
	for key := range buckets {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	cur := offset
	pos := 0
	for _, key := range keys {
		b := buckets[key]
		clo, chi := octantBounds(lo, hi, mid, key)
		copy(rows[pos:pos+len(b)], b)
		nd.children[key] = x.build(rows[pos:pos+len(b)], cur, depth+1, clo, chi)
		cur += len(b)
		pos += len(b)
	}
	return nd
}

func splittable(lo, hi []int64) bool {
	for j := range lo {
		if hi[j] > lo[j] {
			return true
		}
	}
	return false
}

func octantBounds(lo, hi, mid []int64, key uint32) ([]int64, []int64) {
	d := len(lo)
	clo := make([]int64, d)
	chi := make([]int64, d)
	for j := 0; j < d; j++ {
		if key&(1<<uint(j)) != 0 {
			clo[j], chi[j] = mid[j]+1, hi[j]
		} else {
			clo[j], chi[j] = lo[j], mid[j]
		}
	}
	return clo, chi
}

// Name implements index.Index.
func (x *Index) Name() string { return "Hyperoctree" }

// NumNodes returns the total node count.
func (x *Index) NumNodes() int { return x.numNodes }

// BuildStats returns the build timing split.
func (x *Index) BuildStats() index.BuildStats { return x.stats }

// Execute implements index.Index: intersecting leaves scan their physical
// ranges, with partially-covered octants filtered on the store's
// branch-free block kernels. The tree is immutable after Build and
// traversal state is on the stack, so Execute is safe for concurrent
// callers sharing one index.
func (x *Index) Execute(q query.Query) colstore.ScanResult {
	var res colstore.ScanResult
	x.visit(x.root, q, &res)
	return res
}

func (x *Index) visit(nd *node, q query.Query, res *colstore.ScanResult) {
	if !boxIntersects(q, nd.lo, nd.hi) {
		return
	}
	if nd.leaf {
		exact := boxContained(q, nd.lo, nd.hi)
		x.store.ScanRange(q, nd.start, nd.end, exact, res)
		return
	}
	for _, c := range nd.children {
		x.visit(c, q, res)
	}
}

func boxIntersects(q query.Query, lo, hi []int64) bool {
	for _, f := range q.Filters {
		if hi[f.Dim] < f.Lo || lo[f.Dim] > f.Hi {
			return false
		}
	}
	return true
}

func boxContained(q query.Query, lo, hi []int64) bool {
	for _, f := range q.Filters {
		if lo[f.Dim] < f.Lo || hi[f.Dim] > f.Hi {
			return false
		}
	}
	return true
}

// SizeBytes implements index.Index: per-node bounds plus child map entries.
func (x *Index) SizeBytes() uint64 {
	d := uint64(x.store.NumDims())
	return uint64(x.numNodes) * (48 + 16*d)
}

// Package query defines the multi-dimensional range query model shared by
// every index in this repository.
//
// A query is a conjunction of per-dimension range predicates over a table of
// int64 attributes, matching the paper's workload model (§2):
//
//	SELECT AGG(col) FROM t WHERE a <= X <= b AND c <= Y <= d
//
// Equality predicates are ranges with Lo == Hi. All bounds are inclusive.
package query

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// NoBound marks one side of a filter as unbounded.
const (
	NoLo = math.MinInt64
	NoHi = math.MaxInt64
)

// Filter is an inclusive range predicate over a single dimension.
type Filter struct {
	Dim int   // column index
	Lo  int64 // inclusive lower bound (NoLo if absent)
	Hi  int64 // inclusive upper bound (NoHi if absent)
}

// Matches reports whether value v satisfies the filter.
func (f Filter) Matches(v int64) bool { return v >= f.Lo && v <= f.Hi }

// IsEquality reports whether the filter pins the dimension to a single value.
func (f Filter) IsEquality() bool { return f.Lo == f.Hi }

// Agg identifies the aggregation a query performs.
type Agg int

const (
	// Count is COUNT(*).
	Count Agg = iota
	// Sum is SUM over AggDim.
	Sum
)

// Query is a conjunctive multi-dimensional range query.
type Query struct {
	Filters []Filter
	Agg     Agg
	AggDim  int // dimension summed when Agg == Sum

	// GroupBy holds 1 + the grouping dimension when the query is a
	// grouped aggregate (GROUP BY <dim>), and 0 for a flat aggregate.
	// The +1 bias makes the zero value of Query — and every existing
	// composite literal that omits the field — an ungrouped query;
	// read it through Grouped and GroupDim, set it through By.
	GroupBy int

	// Type is the workload-assigned query type id (§4.3.1); -1 if unknown.
	Type int
}

// NewCount builds a COUNT(*) query over the given filters.
func NewCount(filters ...Filter) Query {
	return Query{Filters: normalize(filters), Agg: Count, Type: -1}
}

// NewSum builds a SUM(dim) query over the given filters.
func NewSum(dim int, filters ...Filter) Query {
	return Query{Filters: normalize(filters), Agg: Sum, AggDim: dim, Type: -1}
}

// By returns a copy of the query grouped by dim: the aggregate is
// computed per distinct value of column dim instead of once over all
// matching rows. Filters are untouched — GROUP BY composes with any
// predicate set.
func (q Query) By(dim int) Query {
	q.GroupBy = 1 + dim
	return q
}

// Grouped reports whether the query is a grouped aggregate.
func (q Query) Grouped() bool { return q.GroupBy != 0 }

// GroupDim returns the grouping dimension. Only meaningful when
// Grouped() is true.
func (q Query) GroupDim() int { return q.GroupBy - 1 }

// normalize sorts filters by dimension and merges duplicates on the same
// dimension into their intersection.
func normalize(fs []Filter) []Filter {
	if len(fs) == 0 {
		return nil
	}
	out := make([]Filter, len(fs))
	copy(out, fs)
	sort.Slice(out, func(i, j int) bool { return out[i].Dim < out[j].Dim })
	merged := out[:1]
	for _, f := range out[1:] {
		last := &merged[len(merged)-1]
		if f.Dim == last.Dim {
			if f.Lo > last.Lo {
				last.Lo = f.Lo
			}
			if f.Hi < last.Hi {
				last.Hi = f.Hi
			}
			continue
		}
		merged = append(merged, f)
	}
	return merged
}

// Filter returns the filter over dim and whether one exists.
func (q Query) Filter(dim int) (Filter, bool) {
	for _, f := range q.Filters {
		if f.Dim == dim {
			return f, true
		}
	}
	return Filter{}, false
}

// FilteredDims returns the sorted set of dimensions the query filters.
func (q Query) FilteredDims() []int {
	dims := make([]int, len(q.Filters))
	for i, f := range q.Filters {
		dims[i] = f.Dim
	}
	return dims
}

// DimSetKey returns a canonical string key for the set of filtered
// dimensions, used to group queries that filter the same dimensions (§4.3.1).
func (q Query) DimSetKey() string {
	var b strings.Builder
	for i, f := range q.Filters {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", f.Dim)
	}
	return b.String()
}

// Matches reports whether the d-dimensional point (given as a row accessor)
// satisfies every filter. at(dim) must return the point's value in dim.
func (q Query) Matches(at func(dim int) int64) bool {
	for _, f := range q.Filters {
		if !f.Matches(at(f.Dim)) {
			return false
		}
	}
	return true
}

// MatchesRow reports whether the row vector satisfies every filter.
func (q Query) MatchesRow(row []int64) bool {
	for _, f := range q.Filters {
		v := row[f.Dim]
		if v < f.Lo || v > f.Hi {
			return false
		}
	}
	return true
}

// Clip returns a copy of the query whose filters are intersected with the
// per-dimension bounds lo/hi (inclusive), e.g. to restrict a query to a Grid
// Tree region. The boolean is false when the intersection is empty.
func (q Query) Clip(lo, hi []int64) (Query, bool) {
	out := q
	out.Filters = make([]Filter, 0, len(q.Filters))
	for _, f := range q.Filters {
		if f.Dim < len(lo) {
			if l := lo[f.Dim]; l > f.Lo {
				f.Lo = l
			}
			if h := hi[f.Dim]; h < f.Hi {
				f.Hi = h
			}
		}
		if f.Lo > f.Hi {
			return Query{}, false
		}
		out.Filters = append(out.Filters, f)
	}
	return out, true
}

// String renders the query compactly for logs and tests.
func (q Query) String() string {
	var b strings.Builder
	switch q.Agg {
	case Count:
		b.WriteString("COUNT(*)")
	case Sum:
		fmt.Fprintf(&b, "SUM(d%d)", q.AggDim)
	}
	b.WriteString(" WHERE ")
	for i, f := range q.Filters {
		if i > 0 {
			b.WriteString(" AND ")
		}
		switch {
		case f.IsEquality():
			fmt.Fprintf(&b, "d%d=%d", f.Dim, f.Lo)
		case f.Lo == NoLo:
			fmt.Fprintf(&b, "d%d<=%d", f.Dim, f.Hi)
		case f.Hi == NoHi:
			fmt.Fprintf(&b, "d%d>=%d", f.Dim, f.Lo)
		default:
			fmt.Fprintf(&b, "%d<=d%d<=%d", f.Lo, f.Dim, f.Hi)
		}
	}
	if q.Grouped() {
		fmt.Fprintf(&b, " GROUP BY d%d", q.GroupDim())
	}
	return b.String()
}

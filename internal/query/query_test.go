package query

import (
	"testing"
	"testing/quick"
)

func TestFilterMatches(t *testing.T) {
	f := Filter{Dim: 0, Lo: 10, Hi: 20}
	for _, tc := range []struct {
		v    int64
		want bool
	}{{9, false}, {10, true}, {15, true}, {20, true}, {21, false}} {
		if got := f.Matches(tc.v); got != tc.want {
			t.Errorf("Matches(%d) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestFilterEquality(t *testing.T) {
	if !(Filter{Dim: 0, Lo: 5, Hi: 5}).IsEquality() {
		t.Error("Lo==Hi should be equality")
	}
	if (Filter{Dim: 0, Lo: 5, Hi: 6}).IsEquality() {
		t.Error("Lo<Hi should not be equality")
	}
}

func TestNormalizeMergesDuplicateDims(t *testing.T) {
	q := NewCount(
		Filter{Dim: 1, Lo: 0, Hi: 100},
		Filter{Dim: 0, Lo: 5, Hi: 50},
		Filter{Dim: 1, Lo: 10, Hi: 200},
	)
	if len(q.Filters) != 2 {
		t.Fatalf("got %d filters, want 2", len(q.Filters))
	}
	if q.Filters[0].Dim != 0 || q.Filters[1].Dim != 1 {
		t.Errorf("filters not sorted by dim: %+v", q.Filters)
	}
	if q.Filters[1].Lo != 10 || q.Filters[1].Hi != 100 {
		t.Errorf("duplicate filters not intersected: %+v", q.Filters[1])
	}
}

func TestFilterLookup(t *testing.T) {
	q := NewCount(Filter{Dim: 2, Lo: 1, Hi: 2})
	if _, ok := q.Filter(0); ok {
		t.Error("found filter for unfiltered dim")
	}
	f, ok := q.Filter(2)
	if !ok || f.Lo != 1 || f.Hi != 2 {
		t.Errorf("Filter(2) = %+v, %v", f, ok)
	}
}

func TestDimSetKey(t *testing.T) {
	a := NewCount(Filter{Dim: 0, Lo: 1, Hi: 2}, Filter{Dim: 3, Lo: 1, Hi: 2})
	b := NewCount(Filter{Dim: 3, Lo: 9, Hi: 9}, Filter{Dim: 0, Lo: 0, Hi: 0})
	c := NewCount(Filter{Dim: 0, Lo: 1, Hi: 2})
	if a.DimSetKey() != b.DimSetKey() {
		t.Errorf("same dim sets, different keys: %q vs %q", a.DimSetKey(), b.DimSetKey())
	}
	if a.DimSetKey() == c.DimSetKey() {
		t.Errorf("different dim sets, same key: %q", a.DimSetKey())
	}
}

func TestMatchesRow(t *testing.T) {
	q := NewCount(Filter{Dim: 0, Lo: 0, Hi: 9}, Filter{Dim: 2, Lo: 100, Hi: 100})
	if !q.MatchesRow([]int64{5, 77, 100}) {
		t.Error("row should match")
	}
	if q.MatchesRow([]int64{5, 77, 101}) {
		t.Error("row should not match (equality fails)")
	}
	if q.MatchesRow([]int64{10, 77, 100}) {
		t.Error("row should not match (range fails)")
	}
}

func TestClip(t *testing.T) {
	q := NewCount(Filter{Dim: 0, Lo: 0, Hi: 100}, Filter{Dim: 1, Lo: 50, Hi: 60})
	clipped, ok := q.Clip([]int64{20, 0}, []int64{80, 100})
	if !ok {
		t.Fatal("clip should succeed")
	}
	f0, _ := clipped.Filter(0)
	if f0.Lo != 20 || f0.Hi != 80 {
		t.Errorf("dim 0 clip = %+v", f0)
	}
	f1, _ := clipped.Filter(1)
	if f1.Lo != 50 || f1.Hi != 60 {
		t.Errorf("dim 1 should be unchanged, got %+v", f1)
	}
	if _, ok := q.Clip([]int64{0, 90}, []int64{100, 100}); ok {
		t.Error("clip to empty intersection should fail")
	}
}

func TestClipPropertyNeverWidens(t *testing.T) {
	prop := func(lo, hi, clo, chi int16) bool {
		l, h := int64(lo), int64(hi)
		if l > h {
			l, h = h, l
		}
		cl, ch := int64(clo), int64(chi)
		if cl > ch {
			cl, ch = ch, cl
		}
		q := NewCount(Filter{Dim: 0, Lo: l, Hi: h})
		clipped, ok := q.Clip([]int64{cl}, []int64{ch})
		if !ok {
			// Empty intersection is only legal when ranges are disjoint.
			return h < cl || l > ch
		}
		f, _ := clipped.Filter(0)
		return f.Lo >= l && f.Hi <= h && f.Lo >= cl && f.Hi <= ch && f.Lo <= f.Hi
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	q := NewSum(1, Filter{Dim: 0, Lo: 3, Hi: 3}, Filter{Dim: 2, Lo: 1, Hi: 5})
	got := q.String()
	want := "SUM(d1) WHERE d0=3 AND 1<=d2<=5"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
